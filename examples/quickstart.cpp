// Quickstart: build a tiny database, define fine-grained access control
// policies, and run queries through the Sieve middleware.
//
//   $ ./example_quickstart

#include <cstdio>

#include "engine/database.h"
#include "sieve/middleware.h"

using namespace sieve;  // NOLINT — example brevity

int main() {
  // 1. An embedded database with one sensor table and secondary indexes.
  Database db(EngineProfile::MySqlLike());
  Schema schema({{"id", DataType::kInt},
                 {"wifiAP", DataType::kInt},
                 {"owner", DataType::kInt},
                 {"ts_time", DataType::kTime},
                 {"ts_date", DataType::kDate}});
  if (!db.CreateTable("WiFi_Dataset", std::move(schema)).ok()) return 1;

  int64_t day0 = Value::ParseDate("2019-09-25")->raw();
  int64_t id = 0;
  for (int owner = 0; owner < 20; ++owner) {
    for (int hour = 7; hour < 20; ++hour) {
      Row row{Value::Int(id++), Value::Int(owner % 4), Value::Int(owner),
              Value::Time(hour * 3600), Value::Date(day0 + owner % 7)};
      (void)db.Insert("WiFi_Dataset", std::move(row));
    }
  }
  for (const char* col : {"owner", "wifiAP", "ts_time", "ts_date"}) {
    (void)db.CreateIndex("WiFi_Dataset", col);
  }
  (void)db.Analyze();

  // 2. Group memberships used by querier conditions.
  MapGroupResolver groups;
  groups.AddMembership("prof_smith", "faculty");

  // 3. The middleware: policy tables, guard tables, Δ UDF.
  SieveMiddleware sieve(&db, &groups);
  if (!sieve.Init().ok()) return 1;

  // 4. John (owner 3) lets Prof. Smith see his data in the classroom
  //    (AP 3) between 09:00 and 10:00, for attendance control.
  Policy john;
  john.table_name = "WiFi_Dataset";
  john.owner = Value::Int(3);
  john.querier = "prof_smith";
  john.purpose = "Attendance";
  john.object_conditions = {
      ObjectCondition::Eq("owner", Value::Int(3)),
      ObjectCondition::Range("ts_time", Value::Time(9 * 3600),
                             Value::Time(10 * 3600)),
      ObjectCondition::Eq("wifiAP", Value::Int(3)),
  };
  (void)sieve.AddPolicy(john);

  // Mary (owner 7) shares everything with the faculty group.
  Policy mary;
  mary.table_name = "WiFi_Dataset";
  mary.owner = Value::Int(7);
  mary.querier = "faculty";
  mary.purpose = "any";
  mary.object_conditions = {ObjectCondition::Eq("owner", Value::Int(7))};
  (void)sieve.AddPolicy(mary);

  // 5. Prof. Smith queries; Sieve rewrites and enforces.
  QueryMetadata md{"prof_smith", "Attendance"};
  const char* sql = "SELECT * FROM WiFi_Dataset AS W WHERE W.ts_date >= "
                    "'2019-09-25'";

  auto rewrite = sieve.Rewrite(sql, md);
  if (!rewrite.ok()) {
    std::printf("rewrite failed: %s\n", rewrite.status().ToString().c_str());
    return 1;
  }
  std::printf("-- original query --\n%s\n\n-- rewritten by Sieve --\n%s\n\n",
              sql, rewrite->sql.c_str());
  for (const auto& info : rewrite->tables) {
    std::printf("-- strategy: %s\n", info.ToString().c_str());
  }

  auto result = sieve.Execute(sql, md);
  if (!result.ok()) {
    std::printf("execution failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n-- result (%zu rows; policies restricted it to John 9-10am "
              "@AP3 and all of Mary) --\n%s\n",
              result->size(), result->ToString(10).c_str());

  // An unknown querier gets nothing: default deny.
  auto denied = sieve.Execute(sql, {"eve", "Attendance"});
  std::printf("-- eve (no policies) sees %zu rows --\n",
              denied.ok() ? denied->size() : 0);
  return 0;
}
