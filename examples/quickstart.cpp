// Quickstart: build a tiny database, define fine-grained access control
// policies, and query through the session API — prepare once, execute
// many times with bound parameters.
//
//   $ ./example_quickstart

#include <cstdio>

#include "engine/database.h"
#include "sieve/middleware.h"
#include "sieve/session.h"

using namespace sieve;  // NOLINT — example brevity

int main() {
  // 1. An embedded database with one sensor table and secondary indexes.
  Database db(EngineProfile::MySqlLike());
  Schema schema({{"id", DataType::kInt},
                 {"wifiAP", DataType::kInt},
                 {"owner", DataType::kInt},
                 {"ts_time", DataType::kTime},
                 {"ts_date", DataType::kDate}});
  if (!db.CreateTable("WiFi_Dataset", std::move(schema)).ok()) return 1;

  int64_t day0 = Value::ParseDate("2019-09-25")->raw();
  int64_t id = 0;
  for (int owner = 0; owner < 20; ++owner) {
    for (int hour = 7; hour < 20; ++hour) {
      Row row{Value::Int(id++), Value::Int(owner % 4), Value::Int(owner),
              Value::Time(hour * 3600), Value::Date(day0 + owner % 7)};
      (void)db.Insert("WiFi_Dataset", std::move(row));
    }
  }
  for (const char* col : {"owner", "wifiAP", "ts_time", "ts_date"}) {
    (void)db.CreateIndex("WiFi_Dataset", col);
  }
  (void)db.Analyze();

  // 2. Group memberships used by querier conditions.
  MapGroupResolver groups;
  groups.AddMembership("prof_smith", "faculty");

  // 3. The middleware: policy tables, guard tables, Δ UDF.
  SieveMiddleware sieve(&db, &groups);
  if (!sieve.Init().ok()) return 1;

  // 4. John (owner 3) lets Prof. Smith see his data in the classroom
  //    (AP 3) between 09:00 and 10:00, for attendance control.
  Policy john;
  john.table_name = "WiFi_Dataset";
  john.owner = Value::Int(3);
  john.querier = "prof_smith";
  john.purpose = "Attendance";
  john.object_conditions = {
      ObjectCondition::Eq("owner", Value::Int(3)),
      ObjectCondition::Range("ts_time", Value::Time(9 * 3600),
                             Value::Time(10 * 3600)),
      ObjectCondition::Eq("wifiAP", Value::Int(3)),
  };
  (void)sieve.AddPolicy(john);

  // Mary (owner 7) shares everything with the faculty group.
  Policy mary;
  mary.table_name = "WiFi_Dataset";
  mary.owner = Value::Int(7);
  mary.querier = "faculty";
  mary.purpose = "any";
  mary.object_conditions = {ObjectCondition::Eq("owner", Value::Int(7))};
  (void)sieve.AddPolicy(mary);

  // 5. Prof. Smith opens a session (one per querier/connection) and
  //    prepares the query ONCE: it is parsed and rewritten against the
  //    professor's policies here, and the rewrite is cached. The `?` is a
  //    parameter slot bound at execute time.
  SieveSession session(&sieve, {"prof_smith", "Attendance"});
  const char* sql =
      "SELECT * FROM WiFi_Dataset AS W WHERE W.ts_date >= ?";
  auto prepared = session.Prepare(sql);
  if (!prepared.ok()) {
    std::printf("prepare failed: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("-- original query --\n%s\n\n-- rewritten by Sieve (once, at "
              "Prepare) --\n%s\n\n",
              sql, prepared->rewrite()->rewritten_sql.c_str());
  for (const auto& info : prepared->rewrite()->tables) {
    std::printf("-- strategy: %s\n", info.ToString().c_str());
  }

  // 6. Execute MANY times with different bindings: no re-parse, no
  //    re-rewrite, no guard selection — just bind and run.
  for (const char* day : {"2019-09-25", "2019-09-27"}) {
    auto result = prepared->Execute({Value::String(day)});
    if (!result.ok()) {
      std::printf("execution failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n-- ts_date >= %s: %zu rows (policies restrict to John "
                "9-10am @AP3 and all of Mary) --\n%s",
                day, result->size(), result->ToString(5).c_str());
  }

  // 7. Large results can stream in chunks instead of materializing.
  auto cursor = prepared->OpenCursor({Value::String("2019-09-25")});
  if (cursor.ok()) {
    std::vector<Row> batch;
    size_t batches = 0, rows = 0;
    while (true) {
      auto more = cursor->Next(&batch, /*max_rows=*/8);
      if (!more.ok() || !*more) break;
      ++batches;
      rows += batch.size();
      batch.clear();
    }
    std::printf("\n-- cursor streamed %zu rows in %zu batches of <= 8 --\n",
                rows, batches);
  }

  // 8. AddPolicy bumps the policy epoch: the prepared query transparently
  //    re-prepares on its next execute, so new policies apply immediately.
  Policy john_afternoon = john;
  john_afternoon.object_conditions[1] = ObjectCondition::Range(
      "ts_time", Value::Time(14 * 3600), Value::Time(16 * 3600));
  (void)sieve.AddPolicy(john_afternoon);
  auto after = prepared->Execute({Value::String("2019-09-25")});
  std::printf("\n-- after AddPolicy (epoch %llu, cache invalidated): %zu "
              "rows --\n",
              static_cast<unsigned long long>(sieve.policy_epoch()),
              after.ok() ? after->size() : 0);

  // An unknown querier gets nothing: default deny. (The one-shot
  // SieveMiddleware::Execute facade still works — it is a temporary
  // session under the hood.)
  auto denied = sieve.Execute("SELECT * FROM WiFi_Dataset AS W",
                              {"eve", "Attendance"});
  std::printf("-- eve (no policies) sees %zu rows --\n",
              denied.ok() ? denied->size() : 0);
  return 0;
}
