// Smart-campus scenario (Section 2.1): a professor runs an attendance
// analysis over WiFi connectivity data, with hundreds of student policies
// enforced by Sieve. Compares Sieve against the traditional query-rewrite
// baseline (BaselineP).
//
//   $ ./example_smart_campus

#include <cstdio>

#include "common/string_util.h"
#include "common/timer.h"
#include "engine/database.h"
#include "sieve/middleware.h"
#include "workload/baselines.h"
#include "workload/policy_gen.h"
#include "workload/query_gen.h"
#include "workload/tippers.h"

using namespace sieve;  // NOLINT — example brevity

int main() {
  std::printf("Generating the campus (devices, APs, connectivity events)...\n");
  Database db(EngineProfile::MySqlLike());
  TippersConfig config;
  config.num_devices = 1200;
  config.num_aps = 64;
  config.num_days = 60;
  config.target_events = 120000;
  TippersGenerator generator(config);
  auto ds = generator.Populate(&db);
  if (!ds.ok()) {
    std::printf("populate failed: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  std::printf("  %zu connectivity events, %d devices, %d APs\n\n",
              ds->num_events, config.num_devices, config.num_aps);

  SieveMiddleware sieve(&db, &ds->groups);
  if (!sieve.Init().ok()) return 1;

  std::printf("Generating profile-based policies (unconcerned + advanced)...\n");
  TippersPolicyGenerator policy_gen;
  auto count = policy_gen.Generate(*ds, &sieve.policies());
  if (!count.ok()) return 1;
  std::printf("  %zu policies stored in rP/rOC\n\n", *count);

  // The professor: the faculty device with the most policies naming them.
  auto faculty = ds->DevicesWithProfile("faculty");
  std::string prof = TippersDataset::UserName(faculty.empty() ? 0 : faculty[0]);
  size_t best = 0;
  for (int f : faculty) {
    std::string name = TippersDataset::UserName(f);
    size_t n = 0;
    for (const Policy& p : sieve.policies().policies()) {
      if (p.querier == name) ++n;
    }
    if (n > best) {
      best = n;
      prof = name;
    }
  }
  QueryMetadata md{prof, "Analytics"};
  std::printf("Professor %s has %zu policies granting them access\n\n",
              prof.c_str(), best);

  // Attendance-style analysis: events per student in the CS lecture slot.
  int64_t day0 = ds->first_day;
  std::string sql = StrFormat(
      "SELECT W.owner AS student, COUNT(*) AS attended FROM WiFi_Dataset AS W "
      "WHERE W.ts_time BETWEEN '09:00' AND '10:00' AND W.ts_date BETWEEN '%s' "
      "AND '%s' AND W.wifiAP = 12 GROUP BY W.owner",
      Value::Date(day0).ToString().c_str(),
      Value::Date(day0 + 59).ToString().c_str());
  std::printf("Query:\n  %s\n\n", sql.c_str());

  Baselines baselines(&db, &sieve.policies(), &ds->groups);
  (void)baselines.Init();

  Timer t1;
  auto with_sieve = sieve.Execute(sql, md);
  double sieve_ms = t1.ElapsedMillis();
  Timer t2;
  auto with_baseline = baselines.Execute(BaselineKind::kP, sql, md, 30.0);
  double baseline_ms = t2.ElapsedMillis();

  if (!with_sieve.ok() || !with_baseline.ok()) {
    std::printf("execution failed\n");
    return 1;
  }
  std::printf("SIEVE:     %7.1f ms, %4zu students, stats: %s\n", sieve_ms,
              with_sieve->size(), with_sieve->stats.ToString().c_str());
  std::printf("BaselineP: %7.1f ms, %4zu students, stats: %s\n", baseline_ms,
              with_baseline->size(), with_baseline->stats.ToString().c_str());
  std::printf("speedup: %.1fx, identical results: %s\n\n",
              baseline_ms / (sieve_ms > 0 ? sieve_ms : 1),
              with_sieve->size() == with_baseline->size() ? "yes" : "NO");

  std::printf("Attendance sample:\n%s\n", with_sieve->ToString(8).c_str());
  return 0;
}
