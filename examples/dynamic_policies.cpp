// Dynamic policy management (Section 6): policies arrive while queries run;
// guarded expressions are regenerated lazily (outdated flag) or eagerly
// every k insertions, with k from Eq. 19.
//
//   $ ./example_dynamic_policies

#include <cstdio>

#include "common/timer.h"
#include "engine/database.h"
#include "sieve/middleware.h"
#include "workload/policy_gen.h"
#include "workload/tippers.h"

using namespace sieve;  // NOLINT — example brevity

int main() {
  Database db;
  TippersConfig config;
  config.num_devices = 600;
  config.num_days = 30;
  config.target_events = 50000;
  TippersGenerator generator(config);
  auto ds = generator.Populate(&db);
  if (!ds.ok()) return 1;

  SieveOptions options;
  options.regeneration_mode = RegenerationMode::kLazy;
  SieveMiddleware sieve(&db, &ds->groups, options);
  if (!sieve.Init().ok()) return 1;

  // One querier; policies stream in while they keep querying.
  QueryMetadata md{"auditor", "Safety"};
  Rng rng(3);
  auto make_policy = [&](int owner) {
    Policy p;
    p.table_name = "WiFi_Dataset";
    p.owner = Value::Int(owner);
    p.querier = "auditor";
    p.purpose = "Safety";
    p.object_conditions.push_back(
        ObjectCondition::Eq("owner", Value::Int(owner)));
    int64_t h = rng.Uniform(7, 16);
    p.object_conditions.push_back(ObjectCondition::Range(
        "ts_time", Value::Time(h * 3600), Value::Time((h + 3) * 3600)));
    return p;
  };

  std::printf("interleaving policy inserts with queries (lazy mode)...\n");
  std::printf("%8s %10s %12s %14s\n", "inserts", "rows", "query ms",
              "regenerated");
  auto residents = ds->ResidentDevices();
  for (int batch = 0; batch < 6; ++batch) {
    for (int i = 0; i < 25; ++i) {
      int owner = residents[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(residents.size()) - 1))];
      (void)sieve.AddPolicy(make_policy(owner));
    }
    Timer t;
    auto rewrite = sieve.Rewrite("SELECT * FROM WiFi_Dataset", md);
    auto result = sieve.Execute("SELECT * FROM WiFi_Dataset", md);
    if (!result.ok() || !rewrite.ok()) return 1;
    std::printf("%8d %10zu %12.1f %14s\n", (batch + 1) * 25, result->size(),
                t.ElapsedMillis(),
                rewrite->tables[0].regenerated_guards ? "yes" : "no");
  }

  double k = sieve.dynamics().CurrentOptimalK("auditor", "Safety",
                                              "WiFi_Dataset");
  std::printf("\nEq. 19 optimal regeneration interval k* ≈ %.1f policy "
              "insertions\n",
              k);

  std::printf("\nswitching to eager regeneration (every k)...\n");
  sieve.dynamics().set_mode(RegenerationMode::kEagerEveryK);
  for (int i = 0; i < 30; ++i) {
    int owner = residents[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(residents.size()) - 1))];
    (void)sieve.AddPolicy(make_policy(owner));
  }
  std::printf("pending insertions since last regeneration: %lld\n",
              static_cast<long long>(sieve.dynamics().PendingInsertions(
                  "auditor", "Safety", "WiFi_Dataset")));
  auto final_result = sieve.Execute("SELECT * FROM WiFi_Dataset", md);
  if (final_result.ok()) {
    std::printf("final visible rows: %zu\n", final_result->size());
  }
  return 0;
}
