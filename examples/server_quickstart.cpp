// Server quickstart: run the TCP front-end in-process on an ephemeral
// port and talk to it with the reference client — HELLO authentication,
// prepared statements with bound parameters, chunked cursor fetches,
// the STATS document, and a rate-limited querier getting a clean
// RATE_LIMITED reply.
//
//   $ ./example_server_quickstart

#include <cstdio>

#include "engine/database.h"
#include "server/client.h"
#include "server/server.h"
#include "sieve/middleware.h"

using namespace sieve;          // NOLINT — example brevity
using namespace sieve::server;  // NOLINT

int main() {
  // 1. The same tiny campus as example_quickstart: one sensor table,
  //    20 owners x 13 hourly connection events.
  Database db(EngineProfile::MySqlLike());
  Schema schema({{"id", DataType::kInt},
                 {"wifiAP", DataType::kInt},
                 {"owner", DataType::kInt},
                 {"ts_time", DataType::kTime}});
  if (!db.CreateTable("WiFi_Dataset", std::move(schema)).ok()) return 1;
  int64_t id = 0;
  for (int owner = 0; owner < 20; ++owner) {
    for (int hour = 7; hour < 20; ++hour) {
      (void)db.Insert("WiFi_Dataset",
                      {Value::Int(id++), Value::Int(owner % 4),
                       Value::Int(owner), Value::Time(hour * 3600)});
    }
  }
  for (const char* col : {"owner", "wifiAP", "ts_time"}) {
    (void)db.CreateIndex("WiFi_Dataset", col);
  }
  (void)db.Analyze();

  MapGroupResolver groups;
  SieveMiddleware sieve(&db, &groups);
  if (!sieve.Init().ok()) return 1;

  // Owners 3 and 7 share their data with Prof. Smith for attendance.
  for (int owner : {3, 7}) {
    Policy p;
    p.table_name = "WiFi_Dataset";
    p.owner = Value::Int(owner);
    p.querier = "prof_smith";
    p.purpose = "Attendance";
    p.object_conditions = {
        ObjectCondition::Eq("owner", Value::Int(owner))};
    (void)sieve.AddPolicy(std::move(p));
  }

  // 2. Tokens are the wire credential: each maps to a querier/purpose
  //    identity (which must be a known policy subject) plus admission
  //    limits. The "slow" token gets a 1-query burst.
  AuthRegistry auth;
  auth.RegisterToken("secret-smith", {"prof_smith", "Attendance"});
  AdmissionLimits tight;
  tight.rate_per_sec = 1.0;
  tight.burst = 1.0;
  auth.RegisterToken("secret-smith-slow", {"prof_smith", "Attendance"},
                     tight);

  // 3. Start the server on an ephemeral loopback port.
  ServerOptions options;
  options.port = 0;
  SieveServer server(&sieve, &auth, options);
  if (!server.Start().ok()) return 1;
  std::printf("server listening on 127.0.0.1:%u\n", server.port());

  // 4. Connect + authenticate. A bad token is default-denied.
  {
    SieveClient nosy;
    (void)nosy.Connect("127.0.0.1", server.port());
    auto denied = nosy.Hello("wrong-token");
    std::printf("bad token -> %s\n", denied.status().ToString().c_str());
  }
  SieveClient client;
  if (!client.Connect("127.0.0.1", server.port()).ok()) return 1;
  auto ident = client.Hello("secret-smith");
  if (!ident.ok()) return 1;
  std::printf("authenticated as %s/%s\n", ident->querier.c_str(),
              ident->purpose.c_str());

  // 5. Prepare once, execute with different bindings. The rewrite
  //    (policy guards) happened server-side at PREPARE.
  auto stmt = client.Prepare(
      "SELECT id, owner, ts_time FROM WiFi_Dataset AS W "
      "WHERE W.ts_time >= ?");
  if (!stmt.ok()) return 1;
  for (int hour : {7, 12}) {
    auto res = client.Execute(stmt->id, {Value::Time(hour * 3600)});
    if (!res.ok()) return 1;
    std::printf("ts_time >= %02d:00 -> %zu rows (policies restrict to "
                "owners 3 and 7)\n",
                hour, res->rows.size());
  }

  // 6. Large results stream as cursor chunks under server backpressure.
  auto chunk = client.Execute(stmt->id, {Value::Time(7 * 3600)},
                              /*chunk_rows=*/5);
  if (!chunk.ok()) return 1;
  size_t streamed = chunk->rows.size(), batches = 1;
  while (!chunk->done) {
    auto next = client.Fetch(chunk->cursor_id, 5);
    if (!next.ok()) return 1;
    streamed += next->rows.size();
    chunk->done = next->done;
    ++batches;
  }
  std::printf("cursor streamed %zu rows in %zu chunks of <= 5\n", streamed,
              batches);

  // 7. STATS: the operator's one-frame view of server + middleware.
  auto stats = client.Stats();
  if (stats.ok()) std::printf("STATS %s\n", stats->c_str());

  // 8. Admission control: the slow token's second immediate query gets
  //    a clean RATE_LIMITED reply — the connection stays usable.
  SieveClient slow;
  (void)slow.Connect("127.0.0.1", server.port());
  if (!slow.Hello("secret-smith-slow").ok()) return 1;
  auto slow_stmt = slow.Prepare("SELECT COUNT(*) FROM WiFi_Dataset AS W");
  if (!slow_stmt.ok()) return 1;
  (void)slow.Execute(slow_stmt->id);
  auto limited = slow.Execute(slow_stmt->id);
  std::printf("rate-limited querier -> %s (connection still usable: %s)\n",
              limited.status().ToString().c_str(),
              slow.Stats().ok() ? "yes" : "no");

  client.Close();
  slow.Close();
  server.Stop();
  std::printf("done\n");
  return 0;
}
