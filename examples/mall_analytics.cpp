// Mall scenario (Section 7.1): shops query customer connectivity under
// customer-defined policies, on a PostgreSQL-like engine (no index hints,
// bitmap-OR index unions).
//
//   $ ./example_mall_analytics

#include <cstdio>

#include "engine/database.h"
#include "sieve/middleware.h"
#include "workload/mall.h"

using namespace sieve;  // NOLINT — example brevity

int main() {
  std::printf("Generating the mall (shops, customers, connectivity)...\n");
  Database db(EngineProfile::PostgresLike());
  MallConfig config;
  config.num_customers = 800;
  config.target_events = 60000;
  MallGenerator generator(config);
  auto ds = generator.Populate(&db);
  if (!ds.ok()) {
    std::printf("populate failed: %s\n", ds.status().ToString().c_str());
    return 1;
  }

  MapGroupResolver no_groups;  // shops are direct queriers
  SieveMiddleware sieve(&db, &no_groups);
  if (!sieve.Init().ok()) return 1;

  MallPolicyGenerator policy_gen;
  auto count = policy_gen.Generate(*ds, &sieve.policies());
  if (!count.ok()) return 1;
  std::printf("  %zu events, %zu customer policies for %d shops\n\n",
              ds->num_events, *count, config.num_shops);

  // The shop with the most policies runs a marketing dwell-time analysis.
  std::string shop;
  size_t best = 0;
  for (int s = 0; s < config.num_shops; ++s) {
    std::string name = MallDataset::ShopName(s);
    size_t n = 0;
    for (const Policy& p : sieve.policies().policies()) {
      if (p.querier == name) ++n;
    }
    if (n > best) {
      best = n;
      shop = name;
    }
  }
  QueryMetadata md{shop, "Marketing"};
  std::printf("%s holds %zu policies; analysing visible foot traffic...\n\n",
              shop.c_str(), best);

  auto rewrite = sieve.Rewrite(
      "SELECT owner, COUNT(*) AS visits FROM WiFi_Connectivity GROUP BY owner",
      md);
  if (rewrite.ok()) {
    std::printf("strategy: %s\n\n", rewrite->tables[0].ToString().c_str());
  }

  auto per_customer = sieve.Execute(
      "SELECT owner, COUNT(*) AS visits FROM WiFi_Connectivity GROUP BY owner",
      md);
  if (!per_customer.ok()) {
    std::printf("query failed: %s\n",
                per_customer.status().ToString().c_str());
    return 1;
  }
  std::printf("visible customers: %zu (of %d total — policies hide the rest)\n",
              per_customer->size(), config.num_customers);
  std::printf("%s\n", per_customer->ToString(8).c_str());

  // Hourly traffic the shop is allowed to see.
  auto hourly = sieve.Execute(
      "SELECT obs_time, COUNT(*) AS n FROM WiFi_Connectivity WHERE obs_time "
      "BETWEEN '16:00' AND '19:00' GROUP BY obs_time",
      md);
  if (hourly.ok()) {
    std::printf("peak-hour observations visible to %s: %zu distinct times\n",
                shop.c_str(), hourly->size());
  }
  return 0;
}
