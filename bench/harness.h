#ifndef SIEVE_BENCH_HARNESS_H_
#define SIEVE_BENCH_HARNESS_H_

// Shared infrastructure for the experiment harnesses that regenerate the
// paper's tables and figures. Absolute milliseconds differ from the paper's
// Xeon testbed; the shapes (who wins, crossovers, scaling trends) are the
// reproduction target. See EXPERIMENTS.md.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "engine/database.h"
#include "sieve/middleware.h"
#include "workload/baselines.h"
#include "workload/mall.h"
#include "workload/policy_gen.h"
#include "workload/query_gen.h"
#include "workload/tippers.h"

namespace sieve::bench {

/// The paper's experiment timeout (Section 7.2).
inline constexpr double kTimeoutSeconds = 30.0;
/// Warm repetitions per measurement (paper: 5; 3 keeps the suite quick).
inline constexpr int kRepetitions = 1;

/// Milliseconds or "TO".
inline std::string FormatMs(double ms) {
  if (ms < 0) return "TO";
  return StrFormat("%.1f", ms);
}

/// Times `fn` (a callable returning Result<ResultSet>) over warm reps;
/// returns average ms, or -1 on timeout.
template <typename Fn>
double TimeQuery(Fn&& fn) {
  double total = 0;
  for (int i = 0; i < kRepetitions; ++i) {
    Timer t;
    auto result = fn();
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kTimeout) return -1.0;
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return -2.0;
    }
    total += t.ElapsedMillis();
  }
  return total / kRepetitions;
}

/// The TIPPERS benchmark world: engine, dataset, middleware, baselines.
struct TippersWorld {
  std::unique_ptr<Database> db;
  TippersDataset dataset;
  std::unique_ptr<SieveMiddleware> sieve;
  std::unique_ptr<Baselines> baselines;

  /// Queriers of a profile sorted by how many policies name them
  /// (descending), as (name, policy count).
  std::vector<std::pair<std::string, size_t>> TopQueriers(
      const std::string& profile, size_t k) const;
};

/// Builds the standard bench-scale TIPPERS world. `scale` multiplies the
/// default sizes (1.0 ≈ 3,000 devices / 250k events / ~6k policies).
inline std::unique_ptr<TippersWorld> MakeTippersWorld(
    EngineProfile profile = EngineProfile::MySqlLike(), double scale = 1.0,
    int advanced_policies = 40) {
  auto world = std::make_unique<TippersWorld>();
  world->db = std::make_unique<Database>(profile);
  TippersConfig config;
  config.num_devices = static_cast<int>(3000 * scale);
  config.num_aps = 64;
  config.num_days = 90;
  config.target_events = static_cast<int>(250000 * scale);
  config.num_groups = 28;
  TippersGenerator generator(config);
  auto ds = generator.Populate(world->db.get());
  if (!ds.ok()) {
    std::fprintf(stderr, "TIPPERS populate failed: %s\n",
                 ds.status().ToString().c_str());
    return nullptr;
  }
  world->dataset = std::move(ds).value();

  SieveOptions options;
  options.timeout_seconds = kTimeoutSeconds;
  world->sieve = std::make_unique<SieveMiddleware>(
      world->db.get(), &world->dataset.groups, options);
  if (!world->sieve->Init().ok()) return nullptr;

  PolicyGenConfig pg;
  pg.advanced_policies_per_user = advanced_policies;
  TippersPolicyGenerator policy_gen(pg);
  auto count = policy_gen.Generate(world->dataset, &world->sieve->policies());
  if (!count.ok()) {
    std::fprintf(stderr, "policy gen failed: %s\n",
                 count.status().ToString().c_str());
    return nullptr;
  }

  world->baselines = std::make_unique<Baselines>(
      world->db.get(), &world->sieve->policies(), &world->dataset.groups);
  if (!world->baselines->Init().ok()) return nullptr;
  return world;
}

inline std::vector<std::pair<std::string, size_t>> TippersWorld::TopQueriers(
    const std::string& profile, size_t k) const {
  std::vector<std::pair<std::string, size_t>> counted;
  for (int device : dataset.DevicesWithProfile(profile)) {
    std::string name = TippersDataset::UserName(device);
    size_t n = 0;
    for (const Policy& p : sieve->policies().policies()) {
      if (EqualsIgnoreCase(p.querier, name)) ++n;
    }
    if (n > 0) counted.emplace_back(std::move(name), n);
  }
  std::sort(counted.begin(), counted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (counted.size() > k) counted.resize(k);
  return counted;
}

// ---------------------------------------------------------------------------
// Machine-readable output
// ---------------------------------------------------------------------------

/// One benchmark record, rendered as a JSON object. Keys keep insertion
/// order; values are numbers or strings.
class JsonRow {
 public:
  JsonRow& Set(const std::string& key, double v) {
    fields_.emplace_back(key, StrFormat("%.6g", v));
    return *this;
  }
  JsonRow& Set(const std::string& key, int64_t v) {
    fields_.emplace_back(key, StrFormat("%lld", static_cast<long long>(v)));
    return *this;
  }
  JsonRow& Set(const std::string& key, int v) {
    return Set(key, static_cast<int64_t>(v));
  }
  JsonRow& Set(const std::string& key, const std::string& v) {
    std::string escaped = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    escaped += "\"";
    fields_.emplace_back(key, std::move(escaped));
    return *this;
  }

  std::string ToJson() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Widest SIMD register width (bits) the compiler could auto-vectorize
/// the guard kernels to, probed from the target macros of this build.
/// Recorded in bench JSON metadata so perf numbers are attributable to
/// the instruction set they ran with.
inline int SimdVectorWidthBits() {
#if defined(__AVX512F__)
  return 512;
#elif defined(__AVX2__) || defined(__AVX__)
  return 256;
#elif defined(__SSE2__) || defined(__aarch64__) || defined(__ARM_NEON)
  return 128;
#else
  return 64;
#endif
}

/// The -march the tree was built with (CMake's SIEVE_MARCH cache entry,
/// exported as SIEVE_MARCH_FLAG); "default" when unset.
inline const char* MarchFlag() {
#ifdef SIEVE_MARCH_FLAG
  if (SIEVE_MARCH_FLAG[0] != '\0') return SIEVE_MARCH_FLAG;
#endif
  return "default";
}

/// Writes `rows` to `path` as {"bench": <name>, "metadata": {...},
/// "rows": [...]}, so the perf trajectory of a harness can accumulate
/// across commits and be diffed by tooling. The metadata object always
/// records the build's -march, SIMD width (see above) and the machine's
/// hardware_concurrency (so parallel-scaling numbers are attributable to
/// the core count they ran with); `extra` fields are appended to it.
/// Returns false on IO failure.
inline bool WriteBenchJson(const std::string& bench_name,
                           const std::string& path,
                           const std::vector<JsonRow>& rows,
                           const JsonRow& extra_metadata = JsonRow()) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  JsonRow metadata = extra_metadata;
  metadata.Set("march", std::string(MarchFlag()))
      .Set("vector_width_bits", SimdVectorWidthBits())
      .Set("hardware_concurrency",
           static_cast<int64_t>(std::thread::hardware_concurrency()));
  std::fprintf(f, "{\"bench\": \"%s\", \"metadata\": %s, \"rows\": [",
               bench_name.c_str(), metadata.ToJson().c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "%s%s", i > 0 ? ",\n  " : "\n  ",
                 rows[i].ToJson().c_str());
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

/// Simple fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) widths_.push_back(h.size() + 2);
  }

  void AddRow(std::vector<std::string> cells) {
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size() + 2);
    }
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    PrintRow(headers_);
    std::string rule;
    for (size_t w : widths_) rule += std::string(w, '-') + "+";
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintRow(row);
  }

 private:
  void PrintRow(const std::vector<std::string>& cells) const {
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i) {
      std::string cell = cells[i];
      cell.resize(widths_[i], ' ');
      line += cell + "|";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sieve::bench

#endif  // SIEVE_BENCH_HARNESS_H_
