// Experiment 3 / Table 8: overall comparison of BaselineP, BaselineI,
// BaselineU and SIEVE on Q1/Q2/Q3 at three query cardinalities (averaged
// over queriers). Paper shape: BaselineP/BaselineU degrade with cardinality
// (TO at high), BaselineI is flat ~0.9-1 s, SIEVE is flat and fastest
// (~0.4-0.5 s) everywhere.

#include "bench/harness.h"

using namespace sieve;         // NOLINT
using namespace sieve::bench;  // NOLINT

int main() {
  std::printf("=== Table 8: Q1/Q2/Q3 x cardinality x enforcement method "
              "(ms) ===\n\n");
  auto world = MakeTippersWorld();
  if (world == nullptr) return 1;
  std::printf("events=%zu policies=%zu\n\n", world->dataset.num_events,
              world->sieve->policies().size());

  // Five queriers across profiles (as in the paper), weighted to ones that
  // actually have policies.
  std::vector<QueryMetadata> queriers;
  for (const char* profile : {"faculty", "grad", "undergrad", "staff"}) {
    for (auto& [name, count] : world->TopQueriers(profile, 2)) {
      queriers.push_back({name, "Analytics"});
      if (queriers.size() >= 2) break;
    }
    if (queriers.size() >= 2) break;
  }
  if (queriers.empty()) return 1;

  TippersQueryGenerator gen(world->dataset, 23);
  TablePrinter table({"query", "rho(Q)", "BaselineP", "BaselineI", "BaselineU",
                      "SIEVE"});

  for (int q = 1; q <= 3; ++q) {
    for (QuerySelectivity sel :
         {QuerySelectivity::kLow, QuerySelectivity::kMid,
          QuerySelectivity::kHigh}) {
      std::string sql = q == 1   ? gen.Q1(sel)
                        : q == 2 ? gen.Q2(sel)
                                 : gen.Q3(sel, 3);
      double sums[4] = {0, 0, 0, 0};
      bool timed_out[4] = {false, false, false, false};
      for (const auto& md : queriers) {
        // Once a method times out for this cell, skip it for the remaining
        // queriers (a single TO already costs the full timeout budget).
        double ts[4];
        ts[0] = timed_out[0] ? -1 : TimeQuery([&] {
          return world->baselines->Execute(BaselineKind::kP, sql, md,
                                           kTimeoutSeconds);
        });
        ts[1] = timed_out[1] ? -1 : TimeQuery([&] {
          return world->baselines->Execute(BaselineKind::kI, sql, md,
                                           kTimeoutSeconds);
        });
        ts[2] = timed_out[2] ? -1 : TimeQuery([&] {
          return world->baselines->Execute(BaselineKind::kU, sql, md,
                                           kTimeoutSeconds);
        });
        ts[3] = timed_out[3]
                    ? -1
                    : TimeQuery([&] { return world->sieve->Execute(sql, md); });
        for (int k = 0; k < 4; ++k) {
          if (ts[k] < 0) {
            timed_out[k] = true;
          } else {
            sums[k] += ts[k];
          }
        }
      }
      auto cell = [&](int k) {
        return timed_out[k]
                   ? std::string("TO")
                   : StrFormat("%.1f", sums[k] /
                                           static_cast<double>(queriers.size()));
      };
      table.AddRow({StrFormat("Q%d", q), QuerySelectivityName(sel), cell(0),
                    cell(1), cell(2), cell(3)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Table 8): BaselineP and BaselineU degrade "
      "sharply with\nquery cardinality (timeouts at high); BaselineI is flat; "
      "SIEVE is flat and the\nfastest in every cell.\n");
  return 0;
}
