// Section 6 validation (beyond the paper's evaluation), in two parts.
//
// Part 1 — keyed invalidation under churn: a mixed policy/query stream
// where every insertion targets one hot querier while seven bystander
// queriers keep executing the same prepared SQL. With per-key invalidation
// only the hot querier's cached rewrite drops, so bystanders keep hitting
// the rewrite cache (expected hit rate ~100%, acceptance floor 80%). The
// same stream re-runs with the cache wholesale-cleared after every insert
// — the pre-keyed behavior — where bystanders miss every round (~0%).
//
// Part 2 — total system time (query evaluation + guard regeneration) for
// a stream of policy insertions and queries, as a function of the
// regeneration interval k. Eq. 19 predicts the optimal k; the measured
// minimum should fall near it. Queries posed between regenerations run
// against the stale guarded expression plus the pending policies appended
// inline (the cost model of Eq. 16).
//
// Both parts are recorded in BENCH_dynamic.json (phase = "churn_keyed" /
// "churn_wholesale" / "ksweep") for cross-commit diffing.

#include <string>
#include <vector>

#include "bench/harness.h"
#include "sieve/guard_selection.h"
#include "sieve/session.h"

using namespace sieve;         // NOLINT
using namespace sieve::bench;  // NOLINT

namespace {

Policy MakeStreamPolicy(const TippersDataset& ds, Rng* rng,
                        const std::string& querier) {
  auto residents = ds.ResidentDevices();
  int owner = residents[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(residents.size()) - 1))];
  Policy p;
  p.table_name = "WiFi_Dataset";
  p.owner = Value::Int(owner);
  p.querier = querier;
  p.purpose = "Safety";
  p.object_conditions.push_back(
      ObjectCondition::Eq("owner", Value::Int(owner)));
  int64_t h = rng->Uniform(7, 16);
  p.object_conditions.push_back(ObjectCondition::Range(
      "ts_time", Value::Time(h * 3600), Value::Time((h + 2) * 3600)));
  return p;
}

struct ChurnResult {
  bool ok = false;
  int rounds = 0;
  int queriers = 0;
  uint64_t bystander_hits = 0;
  uint64_t bystander_lookups = 0;
  uint64_t target_hits = 0;
  uint64_t target_lookups = 0;
  uint64_t invalidations = 0;
  double stream_ms = 0;

  double BystanderHitRate() const {
    return bystander_lookups == 0
               ? 0.0
               : static_cast<double>(bystander_hits) /
                     static_cast<double>(bystander_lookups);
  }
};

// Runs the mixed stream: each round inserts one policy for queriers[0]
// (the hot querier) through the middleware, then every querier executes
// its SQL through a session (cache-through). With `wholesale` the rewrite
// cache is cleared after each insert, emulating invalidation-by-clearing;
// otherwise the keyed listeners decide what drops. Hit/miss attribution
// is per-execute via stats diffs (the stream is single-threaded).
ChurnResult RunChurnStream(TippersWorld* world, const std::string& prefix,
                           int n_queriers, int rounds, bool wholesale) {
  ChurnResult out;
  out.rounds = rounds;
  out.queriers = n_queriers;
  SieveMiddleware& sieve = *world->sieve;
  Rng rng(7);

  std::vector<std::string> queriers;
  for (int q = 0; q < n_queriers; ++q) {
    queriers.push_back(StrFormat("%s%d", prefix.c_str(), q));
  }
  for (const auto& querier : queriers) {
    for (int i = 0; i < 3; ++i) {
      if (!sieve.AddPolicy(MakeStreamPolicy(world->dataset, &rng, querier))
               .ok()) {
        return out;
      }
    }
  }

  const std::string sql = "SELECT COUNT(*) FROM WiFi_Dataset";
  std::vector<SieveSession> sessions;
  sessions.reserve(queriers.size());
  for (const auto& querier : queriers) {
    sessions.emplace_back(&sieve, QueryMetadata{querier, "Safety"});
  }
  // Warm twice: the first execution regenerates guards (whose Put fires a
  // keyed invalidation for that querier), the second caches against the
  // settled corpus.
  for (int warm = 0; warm < 2; ++warm) {
    for (auto& s : sessions) {
      if (!s.Execute(sql).ok()) return out;
    }
  }

  RewriteCacheStats at_start = sieve.rewrite_cache_stats();
  Timer stream;
  for (int round = 0; round < rounds; ++round) {
    if (!sieve.AddPolicy(MakeStreamPolicy(world->dataset, &rng, queriers[0]))
             .ok()) {
      return out;
    }
    if (wholesale) sieve.rewrite_cache().Clear();
    for (int q = 0; q < n_queriers; ++q) {
      RewriteCacheStats before = sieve.rewrite_cache_stats();
      if (!sessions[static_cast<size_t>(q)].Execute(sql).ok()) return out;
      RewriteCacheStats after = sieve.rewrite_cache_stats();
      uint64_t hits = after.hits - before.hits;
      uint64_t lookups = hits + (after.misses - before.misses);
      if (q == 0) {
        out.target_hits += hits;
        out.target_lookups += lookups;
      } else {
        out.bystander_hits += hits;
        out.bystander_lookups += lookups;
      }
    }
  }
  out.stream_ms = stream.ElapsedMillis();
  out.invalidations =
      sieve.rewrite_cache_stats().invalidations - at_start.invalidations;
  out.ok = true;
  return out;
}

}  // namespace

int main() {
  auto world = MakeTippersWorld(EngineProfile::MySqlLike(), 1.0, 0);
  if (world == nullptr) return 1;
  std::vector<JsonRow> json_rows;

  std::printf(
      "=== Mixed churn stream: keyed invalidation vs wholesale clear ===\n\n");
  const int kChurnQueriers = 8;
  const int kChurnRounds = 40;
  ChurnResult keyed =
      RunChurnStream(world.get(), "churn_", kChurnQueriers, kChurnRounds,
                     /*wholesale=*/false);
  ChurnResult wholesale =
      RunChurnStream(world.get(), "whole_", kChurnQueriers, kChurnRounds,
                     /*wholesale=*/true);
  if (!keyed.ok || !wholesale.ok) {
    std::fprintf(stderr, "churn stream failed\n");
    return 1;
  }

  TablePrinter churn_table({"invalidation", "bystander hit rate",
                            "target hit rate", "entries invalidated",
                            "stream ms"});
  for (const auto* r : {&keyed, &wholesale}) {
    churn_table.AddRow(
        {r == &keyed ? "keyed (per dependency key)" : "wholesale clear",
         StrFormat("%.1f%%", 100.0 * r->BystanderHitRate()),
         StrFormat("%.1f%%",
                   r->target_lookups == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(r->target_hits) /
                             static_cast<double>(r->target_lookups)),
         StrFormat("%llu", static_cast<unsigned long long>(r->invalidations)),
         StrFormat("%.1f", r->stream_ms)});
    json_rows.push_back(
        JsonRow()
            .Set("phase", std::string(r == &keyed ? "churn_keyed"
                                                  : "churn_wholesale"))
            .Set("rounds", r->rounds)
            .Set("queriers", r->queriers)
            .Set("bystander_hits", static_cast<int64_t>(r->bystander_hits))
            .Set("bystander_lookups",
                 static_cast<int64_t>(r->bystander_lookups))
            .Set("bystander_hit_rate", r->BystanderHitRate())
            .Set("target_hits", static_cast<int64_t>(r->target_hits))
            .Set("target_lookups", static_cast<int64_t>(r->target_lookups))
            .Set("invalidations", static_cast<int64_t>(r->invalidations))
            .Set("stream_ms", r->stream_ms));
  }
  churn_table.Print();
  std::printf(
      "\nExpected shape: keyed bystanders stay >= 80%% hits (their "
      "dependency keys\nnever mutate); wholesale clearing forces every "
      "querier to re-prepare every\nround (~0%%).\n\n");

  std::printf("=== Section 6: optimal guard regeneration interval k ===\n\n");
  const int kInserts = 120;   // N
  const double kRpq = 0.5;    // queries per policy insertion
  PolicyStore& store = world->sieve->policies();
  GuardStore& guards = world->sieve->guards();
  GuardedExpressionBuilder builder(world->db.get(), &store,
                                   &world->sieve->cost_model(),
                                   &world->dataset.groups);

  TablePrinter table({"k (regen interval)", "regens", "queries",
                      "regen ms", "query ms", "total ms"});
  double best_total = 1e18;
  int best_k = 0;

  for (int k : {1, 5, 10, 20, 40, 80, 120}) {
    std::string querier = StrFormat("dyn_k%d", k);
    QueryMetadata md{querier, "Safety"};
    Rng rng(99);  // identical streams across k values

    std::vector<int64_t> pending_ids;
    double regen_ms = 0, query_ms = 0;
    int regens = 0, queries = 0;
    double query_credit = 0;

    for (int i = 1; i <= kInserts; ++i) {
      auto id = store.AddPolicy(MakeStreamPolicy(world->dataset, &rng, querier));
      if (!id.ok()) return 1;
      pending_ids.push_back(*id);

      if (i % k == 0) {
        Timer t;
        auto ge = builder.Build(md, "WiFi_Dataset");
        if (!ge.ok()) return 1;
        if (!guards.Put(std::move(ge).value()).ok()) return 1;
        regen_ms += t.ElapsedMillis();
        ++regens;
        pending_ids.clear();
      }

      query_credit += kRpq;
      while (query_credit >= 1.0) {
        query_credit -= 1.0;
        ++queries;
        // Query against the stale guards plus pending policies appended
        // inline (Section 6's evaluation model).
        std::vector<std::string> disjuncts;
        const GuardedExpression* ge =
            guards.Get(querier, "Safety", "WiFi_Dataset");
        if (ge != nullptr) {
          for (const Guard& g : ge->guards) {
            disjuncts.push_back(
                "(" +
                world->sieve->rewriter().GuardArmExpr(g, false)->ToSql() +
                ")");
          }
        }
        for (int64_t pid : pending_ids) {
          const Policy* p = store.FindPolicy(pid);
          if (p != nullptr) {
            disjuncts.push_back("(" + p->ObjectExpr()->ToSql() + ")");
          }
        }
        if (disjuncts.empty()) continue;
        std::string sql = "SELECT COUNT(*) FROM WiFi_Dataset WHERE " +
                          Join(disjuncts, " OR ");
        Timer t;
        auto result = world->db->ExecuteSql(sql, &md, kTimeoutSeconds);
        if (!result.ok()) return 1;
        query_ms += t.ElapsedMillis();
      }
    }
    double total = regen_ms + query_ms;
    if (total < best_total) {
      best_total = total;
      best_k = k;
    }
    table.AddRow({StrFormat("%d", k), StrFormat("%d", regens),
                  StrFormat("%d", queries), StrFormat("%.1f", regen_ms),
                  StrFormat("%.1f", query_ms), StrFormat("%.1f", total)});
    json_rows.push_back(JsonRow()
                            .Set("phase", std::string("ksweep"))
                            .Set("k", k)
                            .Set("regens", regens)
                            .Set("queries", queries)
                            .Set("regen_ms", regen_ms)
                            .Set("query_ms", query_ms)
                            .Set("total_ms", total));
  }
  table.Print();

  double k_star = world->sieve->dynamics().CurrentOptimalK(
      StrFormat("dyn_k%d", best_k), "Safety", "WiFi_Dataset");
  std::printf("\nmeasured best k = %d; Eq. 19 estimate for this workload "
              "k* ~= %.1f\n",
              best_k, k_star);
  std::printf("Expected shape: total time is U-shaped in k — regenerating "
              "every insert pays\nregeneration over and over; never "
              "regenerating pays growing query costs.\n");

  if (!WriteBenchJson("dynamic_regeneration", "BENCH_dynamic.json", json_rows,
                      JsonRow()
                          .Set("best_k", best_k)
                          .Set("k_star_estimate", k_star)
                          .Set("churn_rounds", kChurnRounds)
                          .Set("churn_queriers", kChurnQueriers))) {
    std::fprintf(stderr, "warning: could not write BENCH_dynamic.json\n");
  } else {
    std::printf("\nwrote BENCH_dynamic.json (%zu rows)\n", json_rows.size());
  }
  return 0;
}
