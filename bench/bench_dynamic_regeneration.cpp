// Section 6 validation (beyond the paper's evaluation): total system time
// (query evaluation + guard regeneration) for a stream of policy insertions
// and queries, as a function of the regeneration interval k. Eq. 19 predicts
// the optimal k; the measured minimum should fall near it. Queries posed
// between regenerations run against the stale guarded expression plus the
// pending policies appended inline (the cost model of Eq. 16).

#include "bench/harness.h"
#include "sieve/guard_selection.h"

using namespace sieve;         // NOLINT
using namespace sieve::bench;  // NOLINT

namespace {

Policy MakeStreamPolicy(const TippersDataset& ds, Rng* rng,
                        const std::string& querier) {
  auto residents = ds.ResidentDevices();
  int owner = residents[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(residents.size()) - 1))];
  Policy p;
  p.table_name = "WiFi_Dataset";
  p.owner = Value::Int(owner);
  p.querier = querier;
  p.purpose = "Safety";
  p.object_conditions.push_back(
      ObjectCondition::Eq("owner", Value::Int(owner)));
  int64_t h = rng->Uniform(7, 16);
  p.object_conditions.push_back(ObjectCondition::Range(
      "ts_time", Value::Time(h * 3600), Value::Time((h + 2) * 3600)));
  return p;
}

}  // namespace

int main() {
  std::printf("=== Section 6: optimal guard regeneration interval k ===\n\n");
  auto world = MakeTippersWorld(EngineProfile::MySqlLike(), 1.0, 0);
  if (world == nullptr) return 1;

  const int kInserts = 120;   // N
  const double kRpq = 0.5;    // queries per policy insertion
  PolicyStore& store = world->sieve->policies();
  GuardStore& guards = world->sieve->guards();
  GuardedExpressionBuilder builder(world->db.get(), &store,
                                   &world->sieve->cost_model(),
                                   &world->dataset.groups);

  TablePrinter table({"k (regen interval)", "regens", "queries",
                      "regen ms", "query ms", "total ms"});
  double best_total = 1e18;
  int best_k = 0;

  for (int k : {1, 5, 10, 20, 40, 80, 120}) {
    std::string querier = StrFormat("dyn_k%d", k);
    QueryMetadata md{querier, "Safety"};
    Rng rng(99);  // identical streams across k values

    std::vector<int64_t> pending_ids;
    double regen_ms = 0, query_ms = 0;
    int regens = 0, queries = 0;
    double query_credit = 0;

    for (int i = 1; i <= kInserts; ++i) {
      auto id = store.AddPolicy(MakeStreamPolicy(world->dataset, &rng, querier));
      if (!id.ok()) return 1;
      pending_ids.push_back(*id);

      if (i % k == 0) {
        Timer t;
        auto ge = builder.Build(md, "WiFi_Dataset");
        if (!ge.ok()) return 1;
        if (!guards.Put(std::move(ge).value()).ok()) return 1;
        regen_ms += t.ElapsedMillis();
        ++regens;
        pending_ids.clear();
      }

      query_credit += kRpq;
      while (query_credit >= 1.0) {
        query_credit -= 1.0;
        ++queries;
        // Query against the stale guards plus pending policies appended
        // inline (Section 6's evaluation model).
        std::vector<std::string> disjuncts;
        const GuardedExpression* ge =
            guards.Get(querier, "Safety", "WiFi_Dataset");
        if (ge != nullptr) {
          for (const Guard& g : ge->guards) {
            disjuncts.push_back(
                "(" +
                world->sieve->rewriter().GuardArmExpr(g, false)->ToSql() +
                ")");
          }
        }
        for (int64_t pid : pending_ids) {
          const Policy* p = store.FindPolicy(pid);
          if (p != nullptr) {
            disjuncts.push_back("(" + p->ObjectExpr()->ToSql() + ")");
          }
        }
        if (disjuncts.empty()) continue;
        std::string sql = "SELECT COUNT(*) FROM WiFi_Dataset WHERE " +
                          Join(disjuncts, " OR ");
        Timer t;
        auto result = world->db->ExecuteSql(sql, &md, kTimeoutSeconds);
        if (!result.ok()) return 1;
        query_ms += t.ElapsedMillis();
      }
    }
    double total = regen_ms + query_ms;
    if (total < best_total) {
      best_total = total;
      best_k = k;
    }
    table.AddRow({StrFormat("%d", k), StrFormat("%d", regens),
                  StrFormat("%d", queries), StrFormat("%.1f", regen_ms),
                  StrFormat("%.1f", query_ms), StrFormat("%.1f", total)});
  }
  table.Print();

  double k_star = world->sieve->dynamics().CurrentOptimalK(
      StrFormat("dyn_k%d", best_k), "Safety", "WiFi_Dataset");
  std::printf("\nmeasured best k = %d; Eq. 19 estimate for this workload "
              "k* ~= %.1f\n",
              best_k, k_star);
  std::printf("Expected shape: total time is U-shaped in k — regenerating "
              "every insert pays\nregeneration over and over; never "
              "regenerating pays growing query costs.\n");
  return 0;
}
