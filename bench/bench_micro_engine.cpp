// Google-benchmark micro-benchmarks of the minidb substrate: the unit costs
// (tuple read, predicate evaluation, UDF invocation) that the paper's cost
// model calibrates (cr, ce, UDFinv).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "engine/database.h"
#include "index/bptree.h"
#include "index/histogram.h"
#include "parser/parser.h"

namespace sieve {
namespace {

void BM_BPTreeInsert(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    BPlusTree tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      tree.Insert(Value::Int(rng.Uniform(0, 1 << 20)), i);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BPTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BPTreePointLookup(benchmark::State& state) {
  BPlusTree tree;
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) {
    tree.Insert(Value::Int(rng.Uniform(0, 1 << 20)), i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(Value::Int(rng.Uniform(0, 1 << 20))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPTreePointLookup);

void BM_BPTreeRangeScan(benchmark::State& state) {
  BPlusTree tree;
  for (int i = 0; i < 200000; ++i) tree.Insert(Value::Int(i), i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.CountRange(
        Value::Int(1000), true, Value::Int(1000 + state.range(0)), true));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BPTreeRangeScan)->Arg(100)->Arg(10000);

void BM_HistogramEstimate(benchmark::State& state) {
  Rng rng(3);
  std::vector<Value> values;
  for (int i = 0; i < 100000; ++i) {
    values.push_back(Value::Int(rng.Uniform(0, 9999)));
  }
  auto h = EquiDepthHistogram::Build(std::move(values), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        h.EstimateRange(Value::Int(100), true, Value::Int(500), true));
  }
}
BENCHMARK(BM_HistogramEstimate);

void BM_ParseQ1(benchmark::State& state) {
  const std::string sql =
      "SELECT * FROM WiFi_Dataset AS W WHERE W.wifiAP IN (1, 2, 3) AND "
      "W.ts_time BETWEEN '09:00' AND '10:00' AND W.ts_date BETWEEN "
      "'2019-09-25' AND '2019-12-12'";
  for (auto _ : state) {
    auto stmt = Parser::Parse(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseQ1);

// Per-tuple costs on a real table: the constants behind cr / ce / UDFinv.
class ScanFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (db_ != nullptr) return;
    db_ = new Database();
    (void)db_->CreateTable("t", Schema({{"id", DataType::kInt},
                                        {"owner", DataType::kInt},
                                        {"v", DataType::kInt}}));
    Rng rng(4);
    for (int i = 0; i < 100000; ++i) {
      (void)db_->Insert("t", Row{Value::Int(i), Value::Int(rng.Uniform(0, 499)),
                                 Value::Int(rng.Uniform(0, 99999))});
    }
    (void)db_->CreateIndex("t", "owner");
    (void)db_->Analyze();
    (void)db_->udfs().Register(
        "noop", [](const std::vector<Value>&, UdfContext&) -> Result<Value> {
          return Value::Bool(true);
        });
  }
  static Database* db_;
};
Database* ScanFixture::db_ = nullptr;

BENCHMARK_F(ScanFixture, SeqScan100k)(benchmark::State& state) {
  for (auto _ : state) {
    auto r = db_->ExecuteSql("SELECT COUNT(*) FROM t USE INDEX () WHERE v >= 0");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}

BENCHMARK_F(ScanFixture, IndexProbe)(benchmark::State& state) {
  for (auto _ : state) {
    auto r = db_->ExecuteSql(
        "SELECT COUNT(*) FROM t FORCE INDEX (owner) WHERE owner = 7");
    benchmark::DoNotOptimize(r);
  }
}

BENCHMARK_F(ScanFixture, PolicyDnf32)(benchmark::State& state) {
  std::string arms;
  for (int i = 0; i < 32; ++i) {
    if (i > 0) arms += " OR ";
    arms += "(owner = " + std::to_string(1000 + i) + " AND v < 0)";
  }
  std::string sql = "SELECT COUNT(*) FROM t USE INDEX () WHERE " + arms;
  for (auto _ : state) {
    auto r = db_->ExecuteSql(sql);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 100000 * 32);
}

BENCHMARK_F(ScanFixture, UdfPerTuple)(benchmark::State& state) {
  for (auto _ : state) {
    auto r = db_->ExecuteSql(
        "SELECT COUNT(*) FROM t USE INDEX () WHERE noop() = true AND v < 0");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}

}  // namespace
}  // namespace sieve

BENCHMARK_MAIN();
