// Experiment 1 / Table 7: query evaluation cost as a function of the number
// of guards |G| and their total cardinality ρ(G). Paper (ms):
//                 ρ low    ρ high
//   |G| low       227.2     537.0
//   |G| high      469.0   1,406.7
// The reproduction target is the ordering: cost grows with both dimensions
// and the high/high cell dominates.

#include "bench/harness.h"

using namespace sieve;         // NOLINT
using namespace sieve::bench;  // NOLINT

namespace {

// Builds a synthetic corpus with exactly `num_guards` disjoint owner-range
// guards whose union covers `rho` of the table, then times SELECT-ALL
// through Sieve.
double RunCell(TippersWorld* world, int num_guards, double rho, int cell_id) {
  const int num_devices = world->dataset.config.num_devices;
  std::string querier = StrFormat("table7_q%d", cell_id);
  // Owners are uniform-ish over devices; granting access to a contiguous
  // owner range of width w covers ≈ w/num_devices of the table.
  int span_total = static_cast<int>(rho * num_devices);
  int span_per_guard = std::max(1, span_total / num_guards);
  int stride = num_devices / num_guards;
  for (int g = 0; g < num_guards; ++g) {
    int lo = g * stride;
    int hi = std::min(num_devices - 1, lo + span_per_guard - 1);
    // A handful of policies per guard so partitions are non-trivial.
    for (int k = 0; k < 4; ++k) {
      Policy p;
      p.table_name = "WiFi_Dataset";
      p.owner = Value::Int(lo + k);
      p.querier = querier;
      p.purpose = "Analytics";
      p.object_conditions.push_back(ObjectCondition::Range(
          "owner", Value::Int(lo), Value::Int(hi)));
      p.object_conditions.push_back(ObjectCondition::Range(
          "ts_time", Value::Time(6 * 3600), Value::Time((8 + 3 * k) * 3600)));
      if (!world->sieve->AddPolicy(std::move(p)).ok()) return -2;
    }
  }
  QueryMetadata md{querier, "Analytics"};
  return TimeQuery([&] {
    return world->sieve->Execute("SELECT * FROM WiFi_Dataset", md);
  });
}

}  // namespace

int main() {
  std::printf("=== Table 7: evaluation cost vs |G| and total guard "
              "cardinality ===\n\n");
  auto world = MakeTippersWorld(EngineProfile::MySqlLike(), 1.0,
                                /*advanced_policies=*/0);
  if (world == nullptr) return 1;

  const int kLowGuards = 8, kHighGuards = 64;
  const double kLowRho = 0.05, kHighRho = 0.4;

  double ll = RunCell(world.get(), kLowGuards, kLowRho, 1);
  double lh = RunCell(world.get(), kLowGuards, kHighRho, 2);
  double hl = RunCell(world.get(), kHighGuards, kLowRho, 3);
  double hh = RunCell(world.get(), kHighGuards, kHighRho, 4);

  TablePrinter table({"", "rho(G) low (5%)", "rho(G) high (40%)"});
  table.AddRow({StrFormat("|G| low (%d)", kLowGuards), FormatMs(ll),
                FormatMs(lh)});
  table.AddRow({StrFormat("|G| high (%d)", kHighGuards), FormatMs(hl),
                FormatMs(hh)});
  table.Print();

  std::printf("\nExpected shape (paper Table 7): cost increases along both "
              "axes; the high-|G|/high-rho cell is the most expensive "
              "(paper: 227 / 537 / 469 / 1407 ms).\n");
  return 0;
}
