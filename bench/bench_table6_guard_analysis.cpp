// Experiment 1 / Table 6: analysis of policies and generated guards —
// per-querier policy counts, number of guards, partition cardinality, guard
// selectivity ρ(Gi) and the fraction of policy checks eliminated (Savings).
// Paper: |p_uk| avg 187, |G| avg 31, |p_Gi| avg 7, ρ(Gi) avg 3%,
// savings ≈ 0.99.

#include <cmath>

#include "bench/harness.h"

using namespace sieve;         // NOLINT
using namespace sieve::bench;  // NOLINT

namespace {

struct Stat {
  std::vector<double> xs;
  void Add(double x) { xs.push_back(x); }
  double Min() const { return *std::min_element(xs.begin(), xs.end()); }
  double Max() const { return *std::max_element(xs.begin(), xs.end()); }
  double Avg() const {
    double s = 0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
  }
  double SD() const {
    double m = Avg(), s = 0;
    for (double x : xs) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size()));
  }
};

std::vector<std::string> RowFor(const char* name, const Stat& s,
                                const char* fmt = "%.2f") {
  return {name, StrFormat(fmt, s.Min()), StrFormat(fmt, s.Avg()),
          StrFormat(fmt, s.Max()), StrFormat(fmt, s.SD())};
}

}  // namespace

int main() {
  std::printf("=== Table 6: analysis of policies and generated guards ===\n\n");
  auto world = MakeTippersWorld();
  if (world == nullptr) return 1;

  GuardedExpressionBuilder builder(world->db.get(), &world->sieve->policies(),
                                   &world->sieve->cost_model(),
                                   &world->dataset.groups);

  Stat policies_per_querier, guards_per_querier, partition_size, guard_rho,
      savings;
  const TableEntry* wifi = world->db->catalog().Find("WiFi_Dataset");
  const double n_rows = static_cast<double>(wifi->table->size());

  size_t queriers_done = 0;
  for (const auto& md :
       world->sieve->policies().DistinctQueriers("WiFi_Dataset")) {
    auto ge = builder.Build(md, "WiFi_Dataset");
    if (!ge.ok() || ge->guards.empty()) continue;
    size_t total_policies = ge->TotalPolicies();
    if (total_policies < 2) continue;
    policies_per_querier.Add(static_cast<double>(total_policies));
    guards_per_querier.Add(static_cast<double>(ge->guards.size()));

    // Savings: policy checks avoided by guards. Without guards every tuple
    // is checked against the whole policy set (|r|·|P| checks, modulo
    // short-circuit); with guards only ρ(Gi)·|r| tuples meet partition i.
    double without_guards = n_rows * static_cast<double>(total_policies);
    double with_guards = 0;
    for (const Guard& g : ge->guards) {
      partition_size.Add(static_cast<double>(g.guard.policy_ids.size()));
      guard_rho.Add(g.guard.selectivity * 100.0);
      with_guards += g.guard.selectivity * n_rows *
                     static_cast<double>(g.guard.policy_ids.size());
    }
    savings.Add((without_guards - with_guards) / without_guards);
    ++queriers_done;
  }

  std::printf("queriers analysed: %zu, table rows: %.0f\n\n", queriers_done,
              n_rows);
  TablePrinter table({"metric", "min", "avg", "max", "SD"});
  table.AddRow(RowFor("|p_uk| (policies/querier)", policies_per_querier,
                      "%.0f"));
  table.AddRow(RowFor("|G| (guards/querier)", guards_per_querier, "%.0f"));
  table.AddRow(RowFor("|p_Gi| (partition size)", partition_size, "%.1f"));
  table.AddRow(RowFor("rho(Gi) %% of table", guard_rho, "%.2f"));
  table.AddRow(RowFor("Savings (fraction of checks cut)", savings, "%.4f"));
  table.Print();

  std::printf("\nExpected shape (paper): tens of guards per querier with "
              "small partitions,\nlow per-guard cardinality, and ~0.99 of "
              "policy evaluations eliminated.\n");
  return 0;
}
