// Experiment 2.2 / Figure 4: IndexQuery vs IndexGuards as query cardinality
// grows, for three guard cardinalities. Paper: IndexQuery wins at low query
// cardinality; IndexGuards wins beyond ≈0.07, at every guard cardinality.

#include "bench/harness.h"

using namespace sieve;         // NOLINT
using namespace sieve::bench;  // NOLINT

namespace {

// Installs a corpus whose guards cover `guard_rho` of the table for
// `querier` and returns the querier name.
std::string InstallPolicies(TippersWorld* world, double guard_rho, int tag) {
  const int num_devices = world->dataset.config.num_devices;
  std::string querier = StrFormat("fig4_q%d", tag);
  int covered = static_cast<int>(guard_rho * num_devices);
  int num_guards = 24;
  int stride = num_devices / num_guards;
  int span = std::max(1, covered / num_guards);
  for (int guard = 0; guard < num_guards; ++guard) {
    int lo = guard * stride;
    int hi = std::min(num_devices - 1, lo + span - 1);
    for (int k = 0; k < 3; ++k) {
      Policy p;
      p.table_name = "WiFi_Dataset";
      p.owner = Value::Int(lo);
      p.querier = querier;
      p.purpose = "Analytics";
      p.object_conditions.push_back(
          ObjectCondition::Range("owner", Value::Int(lo), Value::Int(hi)));
      p.object_conditions.push_back(ObjectCondition::Range(
          "ts_time", Value::Time((6 + 4 * k) * 3600),
          Value::Time((10 + 4 * k) * 3600)));
      (void)world->sieve->AddPolicy(std::move(p));
    }
  }
  return querier;
}

// Times the query with a forced strategy by constructing the WITH body by
// hand from the stored guarded expression.
double TimeStrategy(TippersWorld* world, const std::string& querier,
                    const std::string& query_pred, bool index_guards) {
  QueryMetadata md{querier, "Analytics"};
  const GuardedExpression* ge =
      world->sieve->guards().Get(querier, "Analytics", "WiFi_Dataset");
  if (ge == nullptr) {
    // Populate the guard store through a rewrite.
    (void)world->sieve->Rewrite("SELECT * FROM WiFi_Dataset", md);
    ge = world->sieve->guards().Get(querier, "Analytics", "WiFi_Dataset");
    if (ge == nullptr) return -2;
  }

  std::string sql;
  if (index_guards) {
    // One UNION arm per guard, FORCE INDEX on the guard attribute.
    std::vector<std::string> arms;
    for (const Guard& g : ge->guards) {
      ExprPtr arm = world->sieve->rewriter().GuardArmExpr(g, g.use_delta);
      arms.push_back(StrFormat(
          "SELECT * FROM WiFi_Dataset FORCE INDEX (%s) WHERE %s AND %s",
          g.guard.attr.c_str(), arm->ToSql().c_str(), query_pred.c_str()));
    }
    sql = Join(arms, " UNION ");
  } else {
    // Index on the query predicate, guards as residual filter.
    std::vector<std::string> guard_exprs;
    for (const Guard& g : ge->guards) {
      guard_exprs.push_back(
          "(" +
          world->sieve->rewriter().GuardArmExpr(g, g.use_delta)->ToSql() + ")");
    }
    sql = StrFormat(
        "SELECT * FROM WiFi_Dataset FORCE INDEX (ts_date) WHERE %s AND (%s)",
        query_pred.c_str(), Join(guard_exprs, " OR ").c_str());
  }
  return TimeQuery(
      [&] { return world->db->ExecuteSql(sql, &md, kTimeoutSeconds); });
}

}  // namespace

int main() {
  std::printf("=== Figure 4: IndexQuery vs IndexGuards across query "
              "cardinalities ===\n\n");
  auto world = MakeTippersWorld(EngineProfile::MySqlLike(), 1.0,
                                /*advanced_policies=*/0);
  if (world == nullptr) return 1;
  int64_t day0 = world->dataset.first_day;

  struct GuardSetting {
    const char* label;
    double rho;
  } guard_settings[] = {{"low", 0.05}, {"mid", 0.15}, {"high", 0.35}};

  // Query cardinality: widen the ts_date window.
  struct QuerySetting {
    const char* label;
    int days;
  } query_settings[] = {{"0.01", 1}, {"0.03", 3}, {"0.07", 6},
                        {"0.15", 13}, {"0.3", 27}, {"0.6", 54}};

  TablePrinter table({"query card.", "guard card.", "IndexQuery ms",
                      "IndexGuards ms", "winner"});
  int tag = 0;
  for (const auto& gs : guard_settings) {
    std::string querier = InstallPolicies(world.get(), gs.rho, ++tag);
    for (const auto& qs : query_settings) {
      std::string pred = StrFormat(
          "ts_date BETWEEN '%s' AND '%s'",
          Value::Date(day0).ToString().c_str(),
          Value::Date(day0 + qs.days).ToString().c_str());
      double iq = TimeStrategy(world.get(), querier, pred, false);
      double ig = TimeStrategy(world.get(), querier, pred, true);
      table.AddRow({qs.label, gs.label, FormatMs(iq), FormatMs(ig),
                    (iq >= 0 && (ig < 0 || iq < ig)) ? "IndexQuery"
                                                     : "IndexGuards"});
    }
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 4): IndexQuery wins at low query "
              "cardinality;\nIndexGuards wins from roughly 0.07 upward since "
              "its cost is independent of the query predicate.\n");
  return 0;
}
