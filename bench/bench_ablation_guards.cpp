// Ablations of Sieve's design choices (DESIGN.md §4):
//   A. guard selection (Algorithm 1 over merged candidates) vs naive
//      owner-equality guards only;
//   B. bitmap-OR index unions on vs off (PostgreSQL-like profile);
//   C. the Δ operator forced off (always inline) vs cost-based choice.

#include "bench/harness.h"
#include "sieve/guard_selection.h"

using namespace sieve;         // NOLINT
using namespace sieve::bench;  // NOLINT

namespace {

// SELECT-ALL time using an explicitly provided guarded expression, with
// per-guard FORCE INDEX arms (MySQL-like path).
double TimeWithGuards(TippersWorld* world, const GuardedExpression& ge,
                      const QueryMetadata& md, bool force_inline) {
  std::vector<std::string> arms;
  for (const Guard& g : ge.guards) {
    bool use_delta = force_inline ? false : g.use_delta;
    ExprPtr arm = world->sieve->rewriter().GuardArmExpr(g, use_delta);
    arms.push_back(StrFormat("SELECT * FROM WiFi_Dataset FORCE INDEX (%s) "
                             "WHERE %s",
                             g.guard.attr.c_str(), arm->ToSql().c_str()));
  }
  std::string sql = Join(arms, " UNION ");
  return TimeQuery(
      [&] { return world->db->ExecuteSql(sql, &md, kTimeoutSeconds); });
}

// Owner-only guarded expression: one guard per distinct owner (the trivial
// candidate set, no merging, no non-owner attributes).
GuardedExpression OwnerOnlyGuards(TippersWorld* world,
                                  const std::vector<const Policy*>& policies,
                                  const QueryMetadata& md) {
  GuardedExpression ge;
  ge.querier = md.querier;
  ge.purpose = md.purpose;
  ge.table_name = "WiFi_Dataset";
  std::map<std::string, Guard> by_owner;
  const TableEntry* entry = world->db->catalog().Find("WiFi_Dataset");
  const Index* owner_index = entry->indexes.Find("owner");
  for (const Policy* p : policies) {
    std::string key = p->owner.ToString();
    auto it = by_owner.find(key);
    if (it == by_owner.end()) {
      Guard g;
      g.guard.attr = "owner";
      g.guard.lo = p->owner;
      g.guard.hi = p->owner;
      g.guard.selectivity = owner_index->EstimateEqSelectivity(p->owner);
      it = by_owner.emplace(key, std::move(g)).first;
    }
    it->second.guard.policy_ids.push_back(p->id);
  }
  for (auto& [key, guard] : by_owner) ge.guards.push_back(std::move(guard));
  return ge;
}

}  // namespace

int main() {
  std::printf("=== Ablations: guard selection, bitmap-OR, Delta ===\n\n");
  auto world = MakeTippersWorld();
  if (world == nullptr) return 1;

  auto top = world->TopQueriers("faculty", 1);
  if (top.empty()) return 1;
  QueryMetadata md{top[0].first, "Analytics"};
  std::printf("querier %s with %zu policies\n\n", md.querier.c_str(),
              top[0].second);

  std::vector<const Policy*> policies =
      world->sieve->policies().FilterByMetadata(md, "WiFi_Dataset",
                                                &world->dataset.groups);

  // --- A: Algorithm 1 vs owner-only guards ---
  GuardedExpressionBuilder builder(world->db.get(), &world->sieve->policies(),
                                   &world->sieve->cost_model(),
                                   &world->dataset.groups);
  auto full = builder.Build(md, "WiFi_Dataset");
  if (!full.ok()) return 1;
  // Give the full guards persisted ids so Δ arms resolve.
  GuardedExpression full_copy = *full;
  if (!world->sieve->guards().Put(std::move(full_copy)).ok()) return 1;
  const GuardedExpression* stored =
      world->sieve->guards().Get(md.querier, md.purpose, "WiFi_Dataset");

  GuardedExpression naive = OwnerOnlyGuards(world.get(), policies, md);

  double t_full = TimeWithGuards(world.get(), *stored, md, false);
  double t_naive = TimeWithGuards(world.get(), naive, md, true);
  TablePrinter a({"guard construction", "#guards", "time ms"});
  a.AddRow({"Algorithm 1 (merged candidates)",
            StrFormat("%zu", stored->guards.size()), FormatMs(t_full)});
  a.AddRow({"owner-equality only",
            StrFormat("%zu", naive.guards.size()), FormatMs(t_naive)});
  a.Print();

  // --- B: bitmap-OR on vs off (PostgreSQL-like profile) ---
  std::printf("\n");
  {
    auto pg_on = MakeTippersWorld(EngineProfile::PostgresLike(), 0.5, 12);
    EngineProfile no_bitmap = EngineProfile::PostgresLike();
    no_bitmap.enable_bitmap_or = false;
    auto pg_off = MakeTippersWorld(no_bitmap, 0.5, 12);
    if (pg_on == nullptr || pg_off == nullptr) return 1;
    auto pg_top = pg_on->TopQueriers("faculty", 1);
    if (pg_top.empty()) return 1;
    QueryMetadata pg_md{pg_top[0].first, "Analytics"};
    double on_ms = TimeQuery([&] {
      return pg_on->sieve->Execute("SELECT * FROM WiFi_Dataset", pg_md);
    });
    double off_ms = TimeQuery([&] {
      return pg_off->sieve->Execute("SELECT * FROM WiFi_Dataset", pg_md);
    });
    TablePrinter b({"bitmap-OR index unions", "time ms"});
    b.AddRow({"enabled (PostgreSQL behaviour)", FormatMs(on_ms)});
    b.AddRow({"disabled", FormatMs(off_ms)});
    b.Print();
  }

  // --- C: Δ forced off vs cost-based ---
  std::printf("\n");
  double t_auto = TimeWithGuards(world.get(), *stored, md, false);
  double t_inline = TimeWithGuards(world.get(), *stored, md, true);
  size_t delta_guards = 0;
  for (const Guard& g : stored->guards) {
    if (g.use_delta) ++delta_guards;
  }
  TablePrinter c({"partition evaluation", "delta guards", "time ms"});
  c.AddRow({"cost-based inline/Delta", StrFormat("%zu", delta_guards),
            FormatMs(t_auto)});
  c.AddRow({"always inline", "0", FormatMs(t_inline)});
  c.Print();

  std::printf("\nExpected: Algorithm 1 needs far fewer guards than the naive "
              "per-owner cover at\ncomparable or better latency; bitmap-OR "
              "cuts duplicate index fetches; Delta only\nmatters when "
              "partitions exceed the crossover (~%zu policies here).\n",
              world->sieve->cost_model().DeltaCrossover());
  return 0;
}
