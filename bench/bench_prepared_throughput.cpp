// Prepared-query throughput: how much of the per-query middleware cost the
// session API amortizes away. Three paths run the same hot query:
//
//   unprepared — fresh parse + rewrite (guard selection, EXPLAIN-based
//                strategy choice) every iteration, then execute: the
//                pre-session middleware behavior.
//   one-shot   — SieveMiddleware::Execute, which re-prepares per call but
//                is served by the policy-epoch rewrite cache after the
//                first iteration.
//   prepared   — SieveSession::Prepare once, PreparedQuery::Execute with
//                bound parameters per iteration: no cache lookup at all.
//
// Also reports the rewrite-cache hit rate of the one-shot loop (expected
// >= 90% on a repeated query) and that an AddPolicy mid-stream invalidates
// the affected querier's cached rewrite (keyed invalidation). Emits
// BENCH_prepared.json.

#include "bench/harness.h"
#include "sieve/session.h"

using namespace sieve;         // NOLINT
using namespace sieve::bench;  // NOLINT

int main() {
  std::printf("=== Prepared-query throughput (session API vs per-query "
              "rewrite) ===\n\n");
  // Small world: the point is middleware overhead, not scan time, and a
  // smaller table makes the rewrite share of each query visible.
  auto world = MakeTippersWorld(EngineProfile::MySqlLike(), /*scale=*/0.1,
                                /*advanced_policies=*/20);
  if (world == nullptr) return 1;
  std::printf("events=%zu policies=%zu\n\n", world->dataset.num_events,
              world->sieve->policies().size());

  QueryMetadata md;
  for (const char* profile : {"faculty", "grad", "staff", "undergrad"}) {
    auto top = world->TopQueriers(profile, 1);
    if (!top.empty()) {
      md = {top.front().first, "Analytics"};
      break;
    }
  }
  if (md.querier.empty()) return 1;
  std::printf("querier=%s\n\n", md.querier.c_str());

  SieveMiddleware& sieve = *world->sieve;
  const std::string param_sql =
      "SELECT * FROM WiFi_Dataset AS W WHERE W.wifiAP = :ap AND "
      "W.ts_time BETWEEN :lo AND :hi";
  const std::string literal_sql =
      "SELECT * FROM WiFi_Dataset AS W WHERE W.wifiAP = 3 AND "
      "W.ts_time BETWEEN '09:00' AND '17:00'";
  const std::vector<std::pair<std::string, Value>> binds = {
      {"ap", Value::Int(3)},
      {"lo", Value::String("09:00")},
      {"hi", Value::String("17:00")}};

  constexpr int kIters = 60;
  std::vector<JsonRow> json_rows;
  TablePrinter table({"path", "iters", "total ms", "queries/s", "speedup"});

  auto run_mode = [&](const char* label, auto&& once) -> double {
    // One warm-up execution outside the timed loop.
    if (!once()) {
      std::fprintf(stderr, "%s: warm-up failed\n", label);
      return -1;
    }
    Timer t;
    for (int i = 0; i < kIters; ++i) {
      if (!once()) {
        std::fprintf(stderr, "%s: iteration failed\n", label);
        return -1;
      }
    }
    return t.ElapsedMillis();
  };

  // Path 1: fresh rewrite every iteration (cache bypassed by design).
  double unprepared_ms = run_mode("unprepared", [&] {
    auto rewrite = sieve.Rewrite(literal_sql, md);
    if (!rewrite.ok()) return false;
    auto result =
        sieve.db().ExecuteStmt(*rewrite->stmt, &md,
                               sieve.options().timeout_seconds,
                               sieve.options().num_threads);
    return result.ok();
  });

  // Path 2: one-shot Execute, amortized by the rewrite cache.
  RewriteCacheStats cache_before = sieve.rewrite_cache_stats();
  double oneshot_ms = run_mode("one-shot", [&] {
    return sieve.Execute(literal_sql, md).ok();
  });
  RewriteCacheStats cache_after = sieve.rewrite_cache_stats();

  // Path 3: prepare once, execute many with bound parameters.
  SieveSession session(&sieve, md);
  auto prepared = session.Prepare(param_sql);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }
  double prepared_ms =
      run_mode("prepared", [&] { return prepared->ExecuteNamed(binds).ok(); });

  if (unprepared_ms < 0 || oneshot_ms < 0 || prepared_ms < 0) return 1;

  auto add_row = [&](const char* label, double ms) {
    double qps = ms > 0 ? 1e3 * kIters / ms : 0;
    table.AddRow({label, StrFormat("%d", kIters), StrFormat("%.1f", ms),
                  StrFormat("%.0f", qps),
                  StrFormat("%.2fx", unprepared_ms / ms)});
    json_rows.push_back(JsonRow()
                            .Set("section", std::string("throughput"))
                            .Set("path", std::string(label))
                            .Set("iters", kIters)
                            .Set("total_ms", ms)
                            .Set("qps", qps)
                            .Set("speedup_vs_unprepared", unprepared_ms / ms));
  };
  add_row("unprepared", unprepared_ms);
  add_row("one-shot (cached)", oneshot_ms);
  add_row("prepared", prepared_ms);
  table.Print();

  uint64_t lookups = (cache_after.hits - cache_before.hits) +
                     (cache_after.misses - cache_before.misses);
  double hit_rate =
      lookups == 0
          ? 0.0
          : static_cast<double>(cache_after.hits - cache_before.hits) /
                static_cast<double>(lookups);
  std::printf("\nrewrite cache over the one-shot loop: %llu hits / %llu "
              "lookups (%.1f%% hit rate; expected >= 90%% on a repeated "
              "query)\n",
              static_cast<unsigned long long>(cache_after.hits -
                                              cache_before.hits),
              static_cast<unsigned long long>(lookups), 1e2 * hit_rate);
  json_rows.push_back(
      JsonRow()
          .Set("section", std::string("cache"))
          .Set("hits", static_cast<int64_t>(cache_after.hits -
                                            cache_before.hits))
          .Set("lookups", static_cast<int64_t>(lookups))
          .Set("hit_rate", hit_rate));

  // Mid-stream policy insert: keyed invalidation must stale this
  // querier's cached rewrite, and the next execute must still answer
  // correctly (transparent re-prepare).
  RewriteCacheStats before_insert = sieve.rewrite_cache_stats();
  uint64_t epoch_before = sieve.policy_epoch();
  Policy p;
  p.table_name = "WiFi_Dataset";
  p.owner = Value::Int(0);
  p.querier = md.querier;
  p.purpose = md.purpose;
  p.object_conditions.push_back(ObjectCondition::Eq("owner", Value::Int(0)));
  if (!sieve.AddPolicy(std::move(p)).ok()) return 1;
  bool post_ok = prepared->ExecuteNamed(binds).ok();
  RewriteCacheStats after_insert = sieve.rewrite_cache_stats();
  std::printf("\nAddPolicy mid-stream: epoch %llu -> %llu, invalidations "
              "%llu -> %llu, post-insert execute %s\n",
              static_cast<unsigned long long>(epoch_before),
              static_cast<unsigned long long>(sieve.policy_epoch()),
              static_cast<unsigned long long>(before_insert.invalidations),
              static_cast<unsigned long long>(after_insert.invalidations),
              post_ok ? "ok" : "FAILED");
  json_rows.push_back(
      JsonRow()
          .Set("section", std::string("invalidation"))
          .Set("epoch_before", static_cast<int64_t>(epoch_before))
          .Set("epoch_after", static_cast<int64_t>(sieve.policy_epoch()))
          .Set("invalidations",
               static_cast<int64_t>(after_insert.invalidations -
                                    before_insert.invalidations))
          .Set("post_insert_ok", std::string(post_ok ? "true" : "false")));

  if (!WriteBenchJson("prepared_throughput", "BENCH_prepared.json",
                      json_rows)) {
    std::fprintf(stderr, "warning: could not write BENCH_prepared.json\n");
  }
  std::printf("\nExpected shape: prepared >= one-shot (cached) > unprepared "
              "in queries/s; the\ngap is the amortized parse+rewrite cost "
              "(guard selection and EXPLAIN-based\nstrategy choice).\n");
  return post_ok ? 0 : 1;
}
