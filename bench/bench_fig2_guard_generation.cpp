// Experiment 1 / Figure 2: cost of generating guarded expressions as a
// function of the number of policies per querier. The paper reports linear
// growth and ~150 ms for a querier with 160 policies (on their testbed);
// the reproduction target is the linear shape.

#include "bench/harness.h"

using namespace sieve;         // NOLINT
using namespace sieve::bench;  // NOLINT

int main() {
  std::printf("=== Figure 2: guard generation cost vs. number of policies "
              "===\n\n");
  auto world = MakeTippersWorld();
  if (world == nullptr) return 1;
  std::printf("policies in corpus: %zu\n\n", world->sieve->policies().size());

  // Generate guarded expressions for every distinct querier of the WiFi
  // table; bucket by policy count and average the generation latency.
  GuardedExpressionBuilder builder(world->db.get(), &world->sieve->policies(),
                                   &world->sieve->cost_model(),
                                   &world->dataset.groups);
  std::vector<std::pair<size_t, double>> samples;  // (|P_QM|, ms)
  auto queriers =
      world->sieve->policies().DistinctQueriers("WiFi_Dataset");
  for (const auto& md : queriers) {
    auto ge = builder.Build(md, "WiFi_Dataset");
    if (!ge.ok()) continue;
    size_t n = ge->TotalPolicies();
    if (n == 0) continue;
    samples.emplace_back(n, ge->generation_ms);
  }
  std::sort(samples.begin(), samples.end());

  // Buckets of queriers ordered by policy count (the paper averages groups
  // of 50 users; we bucket by policy-count decade for readability).
  TablePrinter table({"policies (bucket)", "queriers", "avg generation ms",
                      "max ms"});
  size_t i = 0;
  while (i < samples.size()) {
    size_t bucket_lo = samples[i].first / 25 * 25;
    size_t bucket_hi = bucket_lo + 24;
    double total = 0, mx = 0;
    size_t count = 0;
    while (i < samples.size() && samples[i].first <= bucket_hi) {
      total += samples[i].second;
      mx = std::max(mx, samples[i].second);
      ++count;
      ++i;
    }
    table.AddRow({StrFormat("%zu-%zu", bucket_lo, bucket_hi),
                  StrFormat("%zu", count), StrFormat("%.2f", total / count),
                  StrFormat("%.2f", mx)});
  }
  table.Print();

  std::printf("\nExpected shape (paper): generation cost grows ~linearly "
              "with the policy count and stays in the low hundreds of ms\n"
              "even for the largest queriers — cheap enough to regenerate "
              "at query time.\n");
  return 0;
}
