// Experiment 4 / Figure 5: SIEVE vs the best baseline on the MySQL-like and
// PostgreSQL-like engine profiles, for cumulative policy-set sizes, on
// SELECT-ALL queries. Paper: SIEVE beats the baseline on both engines; the
// speedup factor is larger on PostgreSQL and grows with the policy count
// (bitmap-OR index unions).

#include "bench/harness.h"

using namespace sieve;         // NOLINT
using namespace sieve::bench;  // NOLINT

namespace {

constexpr int kNumQueriers = 5;
const int kSizes[] = {75, 150, 300};

// Deterministic synthetic policy list for querier i (same on both engines).
std::vector<Policy> MakePolicyList(const TippersDataset& ds, int querier_tag,
                                   int count) {
  Rng rng(1000 + static_cast<uint64_t>(querier_tag));
  std::vector<Policy> out;
  auto residents = ds.ResidentDevices();
  for (int k = 0; k < count; ++k) {
    int owner = residents[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(residents.size()) - 1))];
    Policy p;
    p.table_name = "WiFi_Dataset";
    p.owner = Value::Int(owner);
    p.purpose = "Analytics";
    p.object_conditions.push_back(
        ObjectCondition::Eq("owner", Value::Int(owner)));
    if (rng.Chance(0.7)) {
      int64_t h = rng.Uniform(7, 16);
      p.object_conditions.push_back(ObjectCondition::Range(
          "ts_time", Value::Time(h * 3600), Value::Time((h + 3) * 3600)));
    }
    if (rng.Chance(0.4)) {
      p.object_conditions.push_back(ObjectCondition::Eq(
          "wifiAP", Value::Int(rng.Uniform(0, ds.config.num_aps - 1))));
    }
    out.push_back(std::move(p));
  }
  return out;
}

// Installs cumulative subsets as separate querier identities:
// fig5_q<i>_s<size> owns the first `size` policies of querier i's stream.
void InstallCorpus(TippersWorld* world) {
  for (int i = 0; i < kNumQueriers; ++i) {
    std::vector<Policy> stream =
        MakePolicyList(world->dataset, i, kSizes[2]);
    for (int size : kSizes) {
      std::string querier = StrFormat("fig5_q%d_s%d", i, size);
      for (int k = 0; k < size; ++k) {
        Policy copy = stream[static_cast<size_t>(k)];
        copy.id = -1;
        copy.querier = querier;
        (void)world->sieve->AddPolicy(std::move(copy));
      }
    }
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 5: SIEVE vs baselines on MySQL-like and "
              "PostgreSQL-like engines ===\n\n");
  auto mysql = MakeTippersWorld(EngineProfile::MySqlLike(), 1.0, 0);
  auto postgres = MakeTippersWorld(EngineProfile::PostgresLike(), 1.0, 0);
  if (mysql == nullptr || postgres == nullptr) return 1;
  InstallCorpus(mysql.get());
  InstallCorpus(postgres.get());

  const std::string sql = TippersQueryGenerator::SelectAll();
  TablePrinter table({"|P|", "BaselineI (M)", "SIEVE (M)", "speedup (M)",
                      "BaselineP (P)", "SIEVE (P)", "speedup (P)"});

  for (int size : kSizes) {
    double sum_bi_m = 0, sum_sv_m = 0, sum_bp_p = 0, sum_sv_p = 0;
    int n = 0;
    for (int i = 0; i < kNumQueriers; ++i) {
      QueryMetadata md{StrFormat("fig5_q%d_s%d", i, size), "Analytics"};
      double bi_m = TimeQuery([&] {
        return mysql->baselines->Execute(BaselineKind::kI, sql, md,
                                         kTimeoutSeconds);
      });
      double sv_m =
          TimeQuery([&] { return mysql->sieve->Execute(sql, md); });
      double bp_p = TimeQuery([&] {
        return postgres->baselines->Execute(BaselineKind::kP, sql, md,
                                            kTimeoutSeconds);
      });
      double sv_p =
          TimeQuery([&] { return postgres->sieve->Execute(sql, md); });
      if (bi_m < 0 || sv_m < 0 || bp_p < 0 || sv_p < 0) continue;
      sum_bi_m += bi_m;
      sum_sv_m += sv_m;
      sum_bp_p += bp_p;
      sum_sv_p += sv_p;
      ++n;
    }
    if (n == 0) continue;
    table.AddRow({StrFormat("%d", size), StrFormat("%.1f", sum_bi_m / n),
                  StrFormat("%.1f", sum_sv_m / n),
                  StrFormat("%.2fx", sum_bi_m / std::max(1e-9, sum_sv_m)),
                  StrFormat("%.1f", sum_bp_p / n),
                  StrFormat("%.1f", sum_sv_p / n),
                  StrFormat("%.2fx", sum_bp_p / std::max(1e-9, sum_sv_p))});
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 5): SIEVE outperforms the "
              "baseline on both engines;\nthe PostgreSQL-profile speedup is "
              "the larger one and grows with |P| thanks to\nbitmap-OR index "
              "unions over the guards.\n");
  return 0;
}
