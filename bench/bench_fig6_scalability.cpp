// Experiment 5 / Figure 6: scalability on the Mall dataset (PostgreSQL-like
// profile): speedup of SIEVE over the baseline as the number of policies
// per querier grows from 100 to 1200. Paper: speedup grows ~linearly from
// 1.6x (100 policies) to 5.6x (1200 policies).
//
// Extensions: a partition-parallel thread sweep on the same guarded-scan
// workload (num_threads 1, 2, 4, 8) showing how guarded-expression
// enforcement scales with cores; an interior-operator sweep (UNION / join
// / aggregate tops); and a batch-size sweep comparing the vectorized
// executor (native batches) against row-at-a-time execution
// (batch_size = 1) per operator shape; and a columnar section recording
// the typed-column guard kernels (fixed 1024 and adaptive batch sizing)
// against the row-at-a-time reference on the guard-dominated scan. All
// sections are emitted to BENCH_fig6.json — with the build's -march and
// SIMD width in the metadata object — so the perf trajectory accumulates
// across commits.

#include <thread>

#include "bench/harness.h"

using namespace sieve;         // NOLINT
using namespace sieve::bench;  // NOLINT

namespace {

constexpr int kNumShops = 5;
const int kSizes[] = {100, 400, 1200};

std::vector<Policy> MakePolicyStream(const MallDataset& ds, int tag,
                                     int count) {
  Rng rng(7000 + static_cast<uint64_t>(tag));
  std::vector<Policy> out;
  for (int k = 0; k < count; ++k) {
    int customer = static_cast<int>(
        rng.Uniform(0, ds.config.num_customers - 1));
    Policy p;
    p.table_name = "WiFi_Connectivity";
    p.owner = Value::Int(customer);
    p.purpose = "Marketing";
    p.object_conditions.push_back(
        ObjectCondition::Eq("owner", Value::Int(customer)));
    if (rng.Chance(0.6)) {
      int64_t h = rng.Uniform(10, 18);
      p.object_conditions.push_back(ObjectCondition::Range(
          "obs_time", Value::Time(h * 3600), Value::Time((h + 2) * 3600)));
    }
    if (rng.Chance(0.4)) {
      int64_t d = rng.Uniform(0, ds.config.num_days - 3);
      p.object_conditions.push_back(ObjectCondition::Range(
          "obs_date", Value::Date(ds.first_day + d),
          Value::Date(ds.first_day + d + 2)));
    }
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Figure 6: scalability on the Mall dataset "
              "(PostgreSQL-like profile) ===\n\n");
  Database db(EngineProfile::PostgresLike());
  MallConfig config;
  config.num_customers = 1500;
  config.target_events = 150000;
  MallGenerator generator(config);
  auto ds = generator.Populate(&db);
  if (!ds.ok()) return 1;

  MapGroupResolver no_groups;
  SieveOptions options;
  options.timeout_seconds = kTimeoutSeconds;
  SieveMiddleware sieve(&db, &no_groups, options);
  if (!sieve.Init().ok()) return 1;
  Baselines baselines(&db, &sieve.policies(), &no_groups);
  if (!baselines.Init().ok()) return 1;

  // Cumulative policy sets per querier, installed as distinct identities.
  for (int shop = 0; shop < kNumShops; ++shop) {
    std::vector<Policy> stream = MakePolicyStream(*ds, shop, kSizes[2]);
    for (int size : kSizes) {
      std::string querier = StrFormat("fig6_shop%d_s%d", shop, size);
      for (int k = 0; k < size; ++k) {
        Policy copy = stream[static_cast<size_t>(k)];
        copy.id = -1;
        copy.querier = querier;
        (void)sieve.AddPolicy(std::move(copy));
      }
    }
  }
  std::printf("events=%zu total-policies=%zu\n\n", ds->num_events,
              sieve.policies().size());

  const std::string sql = "SELECT * FROM WiFi_Connectivity";
  std::vector<JsonRow> json_rows;
  TablePrinter table({"|P| per querier", "BaselineP ms", "SIEVE ms",
                      "speedup"});
  for (int size : kSizes) {
    double sum_base = 0, sum_sieve = 0;
    int n = 0;
    for (int shop = 0; shop < kNumShops; ++shop) {
      QueryMetadata md{StrFormat("fig6_shop%d_s%d", shop, size), "Marketing"};
      double b = TimeQuery([&] {
        return baselines.Execute(BaselineKind::kP, sql, md, kTimeoutSeconds);
      });
      double s = TimeQuery([&] { return sieve.Execute(sql, md); });
      if (b < 0 || s < 0) continue;
      sum_base += b;
      sum_sieve += s;
      ++n;
    }
    if (n == 0) continue;
    table.AddRow({StrFormat("%d", size), StrFormat("%.1f", sum_base / n),
                  StrFormat("%.1f", sum_sieve / n),
                  StrFormat("%.2fx", sum_base / std::max(1e-9, sum_sieve))});
    json_rows.push_back(JsonRow()
                            .Set("section", std::string("policy_scaling"))
                            .Set("policies", size)
                            .Set("threads", 1)
                            .Set("baseline_ms", sum_base / n)
                            .Set("sieve_ms", sum_sieve / n));
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 6): the SIEVE-vs-baseline "
              "speedup grows with the\nnumber of policies (paper: 1.6x at "
              "100 policies to 5.6x at 1200).\n");

  // ---- Thread sweep: partition-parallel guarded scans ----
  std::printf("\n=== Extension: thread scaling of the guarded scan "
              "(|P|=%d per querier, %u hardware threads) ===\n\n",
              kSizes[2], std::thread::hardware_concurrency());
  TablePrinter threads_table({"threads", "SIEVE ms", "speedup vs 1T"});
  auto set_threads = [&sieve](int threads) {
    SieveOptions options = sieve.options();
    options.num_threads = threads;
    if (!sieve.set_options(options).ok()) std::abort();  // validated knob
  };
  double one_thread_ms = -1;
  for (int threads : {1, 2, 4, 8}) {
    set_threads(threads);
    double sum_sieve = 0;
    int n = 0;
    for (int shop = 0; shop < kNumShops; ++shop) {
      QueryMetadata md{StrFormat("fig6_shop%d_s%d", shop, kSizes[2]),
                       "Marketing"};
      double s = TimeQuery([&] { return sieve.Execute(sql, md); });
      if (s < 0) continue;
      sum_sieve += s;
      ++n;
    }
    if (n == 0) continue;
    double ms = sum_sieve / n;
    if (threads == 1) one_thread_ms = ms;
    threads_table.AddRow(
        {StrFormat("%d", threads), StrFormat("%.1f", ms),
         one_thread_ms > 0 ? StrFormat("%.2fx", one_thread_ms / ms)
                           : std::string("-")});
    json_rows.push_back(JsonRow()
                            .Set("section", std::string("thread_scaling"))
                            .Set("policies", kSizes[2])
                            .Set("threads", threads)
                            .Set("sieve_ms", ms));
  }
  set_threads(1);
  threads_table.Print();
  std::printf("\nExpected shape: near-linear scaling while the Δ-heavy "
              "guarded scan dominates.\nOn machines with fewer cores than "
              "threads the sweep degrades to oversubscription\noverhead — "
              "results and stats stay identical to serial either way.\n");

  // ---- Interior-operator sweep: UNION / join / aggregate tops ----
  // The scan sweep above parallelizes the policy-filtered CTE; these
  // queries additionally exercise the parallel operator interiors that sit
  // on top of it: concurrent UNION arms, the partitioned hash-join probe
  // of the CTE against the unprotected Shops table, and merged partial
  // aggregates.
  std::printf("\n=== Extension: interior-operator thread scaling "
              "(|P|=%d per querier) ===\n\n",
              kSizes[2]);
  struct InteriorQuery {
    const char* label;
    std::string sql;
  };
  const InteriorQuery interior_queries[] = {
      {"union",
       "SELECT * FROM WiFi_Connectivity WHERE obs_time BETWEEN '10:00' AND "
       "'12:00' UNION SELECT * FROM WiFi_Connectivity WHERE shop_id = 1"},
      {"join",
       "SELECT w.id, w.owner, s.type FROM WiFi_Connectivity w, Shops s "
       "WHERE w.shop_id = s.id"},
      {"aggregate",
       "SELECT shop_id, COUNT(*) AS n, MIN(obs_time) AS mn, "
       "MAX(obs_time) AS mx, AVG(owner) AS av FROM WiFi_Connectivity "
       "GROUP BY shop_id"},
  };
  TablePrinter interior_table({"query", "threads", "SIEVE ms",
                               "speedup vs 1T"});
  for (const InteriorQuery& q : interior_queries) {
    double base_ms = -1;
    for (int threads : {1, 2, 4, 8}) {
      set_threads(threads);
      double sum_sieve = 0;
      int n = 0;
      for (int shop = 0; shop < kNumShops; ++shop) {
        QueryMetadata md{StrFormat("fig6_shop%d_s%d", shop, kSizes[2]),
                         "Marketing"};
        double s = TimeQuery([&] { return sieve.Execute(q.sql, md); });
        if (s < 0) continue;
        sum_sieve += s;
        ++n;
      }
      if (n == 0) continue;
      double ms = sum_sieve / n;
      if (threads == 1) base_ms = ms;
      interior_table.AddRow(
          {q.label, StrFormat("%d", threads), StrFormat("%.1f", ms),
           base_ms > 0 ? StrFormat("%.2fx", base_ms / ms) : std::string("-")});
      json_rows.push_back(JsonRow()
                              .Set("section", std::string("interior_operators"))
                              .Set("query", std::string(q.label))
                              .Set("policies", kSizes[2])
                              .Set("threads", threads)
                              .Set("sieve_ms", ms));
    }
  }
  set_threads(1);
  interior_table.Print();
  std::printf("\nExpected shape: the union/aggregate rows track the scan "
              "sweep (their input is\nthe same guarded CTE); the join row "
              "adds the partitioned probe on top. On a\n1-core container "
              "all rows are flat — correctness (rows, order, stats) is\n"
              "asserted by the test suite, not here.\n");

  // ---- Batch-size sweep: vectorized vs row-at-a-time execution ----
  // Single-threaded on purpose: this isolates the interpretation overhead
  // the batch executor amortizes (virtual Next dispatch, per-row predicate
  // walks, per-row timeout checks) from parallel speedup. batch_size = 1
  // is the legacy Volcano behavior; 1024 is the default vectorized path.
  std::printf("\n=== Extension: batch-size sweep (vectorized vs "
              "row-at-a-time, 1 thread, |P|=%d per querier) ===\n\n",
              kSizes[2]);
  struct ShapeQuery {
    const char* label;
    std::string sql;
  };
  const ShapeQuery shape_queries[] = {
      {"scan_filter", sql},  // the guarded scan: Filter(guards) over the CTE
      {"union", interior_queries[0].sql},
      {"join", interior_queries[1].sql},
      {"aggregate", interior_queries[2].sql},
  };
  auto set_batch = [&sieve](int batch) {
    SieveOptions options = sieve.options();
    options.num_threads = 1;
    options.batch_size = batch;
    if (!sieve.set_options(options).ok()) std::abort();  // validated knob
  };
  TablePrinter batch_table({"query", "batch_size", "SIEVE ms",
                            "speedup vs batch=1"});
  double scan_filter_speedup = 0;
  double scan_filter_row_ms = -1;
  for (const ShapeQuery& q : shape_queries) {
    double row_at_a_time_ms = -1;
    for (int batch : {1, 64, 1024}) {
      if (batch != 1 && row_at_a_time_ms <= 0) {
        // No batch=1 baseline (timeout/failure): a speedup would be
        // meaningless, so skip the shape instead of recording 0x rows
        // into the accumulated perf trajectory.
        std::fprintf(stderr,
                     "warning: no batch=1 baseline for %s; skipping\n",
                     q.label);
        break;
      }
      set_batch(batch);
      double sum_sieve = 0;
      int n = 0;
      for (int shop = 0; shop < kNumShops; ++shop) {
        QueryMetadata md{StrFormat("fig6_shop%d_s%d", shop, kSizes[2]),
                         "Marketing"};
        double s = TimeQuery([&] { return sieve.Execute(q.sql, md); });
        if (s < 0) continue;
        sum_sieve += s;
        ++n;
      }
      if (n == 0) continue;
      double ms = sum_sieve / n;
      if (batch == 1) row_at_a_time_ms = ms;
      double speedup = row_at_a_time_ms > 0 ? row_at_a_time_ms / ms : 0;
      if (std::string(q.label) == "scan_filter") {
        if (batch == 1) scan_filter_row_ms = ms;
        if (batch == 1024) scan_filter_speedup = speedup;
      }
      batch_table.AddRow(
          {q.label, StrFormat("%d", batch), StrFormat("%.1f", ms),
           batch == 1 ? std::string("-") : StrFormat("%.2fx", speedup)});
      json_rows.push_back(JsonRow()
                              .Set("section", std::string("batch_size"))
                              .Set("query", std::string(q.label))
                              .Set("policies", kSizes[2])
                              .Set("threads", 1)
                              .Set("batch_size", batch)
                              .Set("sieve_ms", ms)
                              .Set("speedup_vs_batch1", speedup));
    }
  }
  set_batch(1024);
  batch_table.Print();
  std::printf("\nExpected shape: native batches (1024) >= 2x the "
              "batch_size=1 row-at-a-time path\non the scan_filter guard "
              "sweep (measured: %.2fx); the other shapes gain\nwherever "
              "their input pipeline dominates. Unlike the thread sweeps, "
              "this one\nholds on 1-core machines too — it amortizes "
              "interpretation, not hardware.\n",
              scan_filter_speedup);

  // ---- Columnar guard kernels: fixed + adaptive batch vs row-at-a-time ----
  // The acceptance bar for the columnar RowBatch layout: the guard-dominated
  // scan_filter shape, where the comparison/AND/OR predicate tree compiles to
  // branch-free typed-column loops, at the default vectorized batch (1024)
  // and at the adaptive width (batch_size = 0: sized from the operator's
  // column count to a ~48KB working set), both against the batch_size = 1
  // row-at-a-time reference measured above. The build's -march and SIMD
  // width land in the JSON metadata so regressions are attributable to the
  // instruction set they ran with.
  std::printf("\n=== Extension: columnar guard kernels (scan_filter, "
              "1 thread, -march=%s, %d-bit SIMD) ===\n\n",
              MarchFlag(), SimdVectorWidthBits());
  TablePrinter columnar_table({"batch_size", "SIEVE ms",
                               "speedup vs row-at-a-time"});
  double columnar_speedup = 0;
  if (scan_filter_row_ms > 0) {
    for (int batch : {1024, 0}) {
      set_batch(batch);
      double sum_sieve = 0;
      int n = 0;
      for (int shop = 0; shop < kNumShops; ++shop) {
        QueryMetadata md{StrFormat("fig6_shop%d_s%d", shop, kSizes[2]),
                         "Marketing"};
        double s = TimeQuery([&] { return sieve.Execute(sql, md); });
        if (s < 0) continue;
        sum_sieve += s;
        ++n;
      }
      if (n == 0) continue;
      double ms = sum_sieve / n;
      double speedup = scan_filter_row_ms / ms;
      if (batch == 1024) columnar_speedup = speedup;
      columnar_table.AddRow(
          {batch == 0 ? std::string("adaptive") : StrFormat("%d", batch),
           StrFormat("%.1f", ms), StrFormat("%.2fx", speedup)});
      json_rows.push_back(JsonRow()
                              .Set("section", std::string("columnar"))
                              .Set("query", std::string("scan_filter"))
                              .Set("policies", kSizes[2])
                              .Set("threads", 1)
                              .Set("batch_size", batch)
                              .Set("row_at_a_time_ms", scan_filter_row_ms)
                              .Set("sieve_ms", ms)
                              .Set("speedup_vs_row", speedup));
    }
    set_batch(1024);
    columnar_table.Print();
    std::printf("\nTarget: >= 1.5x over row-at-a-time on the guard-dominated "
                "scan (measured:\n%.2fx at batch 1024). The adaptive row "
                "sizes each operator's batch from its\ncolumn count, trading "
                "peak amortization for cache residency on wide rows.\n",
                columnar_speedup);
  } else {
    std::fprintf(stderr,
                 "warning: no scan_filter row-at-a-time baseline; "
                 "skipping the columnar section\n");
  }

  if (!WriteBenchJson("fig6_scalability", "BENCH_fig6.json", json_rows)) {
    std::fprintf(stderr, "warning: could not write BENCH_fig6.json\n");
  } else {
    std::printf("\nwrote BENCH_fig6.json (%zu rows)\n", json_rows.size());
  }
  return 0;
}
