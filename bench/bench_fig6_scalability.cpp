// Experiment 5 / Figure 6: scalability on the Mall dataset (PostgreSQL-like
// profile): speedup of SIEVE over the baseline as the number of policies
// per querier grows from 100 to 1200. Paper: speedup grows ~linearly from
// 1.6x (100 policies) to 5.6x (1200 policies).

#include "bench/harness.h"

using namespace sieve;         // NOLINT
using namespace sieve::bench;  // NOLINT

namespace {

constexpr int kNumShops = 5;
const int kSizes[] = {100, 400, 1200};

std::vector<Policy> MakePolicyStream(const MallDataset& ds, int tag,
                                     int count) {
  Rng rng(7000 + static_cast<uint64_t>(tag));
  std::vector<Policy> out;
  for (int k = 0; k < count; ++k) {
    int customer = static_cast<int>(
        rng.Uniform(0, ds.config.num_customers - 1));
    Policy p;
    p.table_name = "WiFi_Connectivity";
    p.owner = Value::Int(customer);
    p.purpose = "Marketing";
    p.object_conditions.push_back(
        ObjectCondition::Eq("owner", Value::Int(customer)));
    if (rng.Chance(0.6)) {
      int64_t h = rng.Uniform(10, 18);
      p.object_conditions.push_back(ObjectCondition::Range(
          "obs_time", Value::Time(h * 3600), Value::Time((h + 2) * 3600)));
    }
    if (rng.Chance(0.4)) {
      int64_t d = rng.Uniform(0, ds.config.num_days - 3);
      p.object_conditions.push_back(ObjectCondition::Range(
          "obs_date", Value::Date(ds.first_day + d),
          Value::Date(ds.first_day + d + 2)));
    }
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Figure 6: scalability on the Mall dataset "
              "(PostgreSQL-like profile) ===\n\n");
  Database db(EngineProfile::PostgresLike());
  MallConfig config;
  config.num_customers = 1500;
  config.target_events = 150000;
  MallGenerator generator(config);
  auto ds = generator.Populate(&db);
  if (!ds.ok()) return 1;

  MapGroupResolver no_groups;
  SieveOptions options;
  options.timeout_seconds = kTimeoutSeconds;
  SieveMiddleware sieve(&db, &no_groups, options);
  if (!sieve.Init().ok()) return 1;
  Baselines baselines(&db, &sieve.policies(), &no_groups);
  if (!baselines.Init().ok()) return 1;

  // Cumulative policy sets per querier, installed as distinct identities.
  for (int shop = 0; shop < kNumShops; ++shop) {
    std::vector<Policy> stream = MakePolicyStream(*ds, shop, kSizes[2]);
    for (int size : kSizes) {
      std::string querier = StrFormat("fig6_shop%d_s%d", shop, size);
      for (int k = 0; k < size; ++k) {
        Policy copy = stream[static_cast<size_t>(k)];
        copy.id = -1;
        copy.querier = querier;
        (void)sieve.AddPolicy(std::move(copy));
      }
    }
  }
  std::printf("events=%zu total-policies=%zu\n\n", ds->num_events,
              sieve.policies().size());

  const std::string sql = "SELECT * FROM WiFi_Connectivity";
  TablePrinter table({"|P| per querier", "BaselineP ms", "SIEVE ms",
                      "speedup"});
  for (int size : kSizes) {
    double sum_base = 0, sum_sieve = 0;
    int n = 0;
    for (int shop = 0; shop < kNumShops; ++shop) {
      QueryMetadata md{StrFormat("fig6_shop%d_s%d", shop, size), "Marketing"};
      double b = TimeQuery([&] {
        return baselines.Execute(BaselineKind::kP, sql, md, kTimeoutSeconds);
      });
      double s = TimeQuery([&] { return sieve.Execute(sql, md); });
      if (b < 0 || s < 0) continue;
      sum_base += b;
      sum_sieve += s;
      ++n;
    }
    if (n == 0) continue;
    table.AddRow({StrFormat("%d", size), StrFormat("%.1f", sum_base / n),
                  StrFormat("%.1f", sum_sieve / n),
                  StrFormat("%.2fx", sum_base / std::max(1e-9, sum_sieve))});
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 6): the SIEVE-vs-baseline "
              "speedup grows with the\nnumber of policies (paper: 1.6x at "
              "100 policies to 5.6x at 1200).\n");
  return 0;
}
