// Closed-loop multi-client benchmark of the network front-end: 64
// concurrent TCP connections multiplexed onto 8 server workers, each
// client issuing the next request the moment the previous reply lands.
//
// Two querier classes share the server:
//   gold   — 32 connections, unlimited admission: the throughput and
//            latency numbers of interest.
//   bronze — 32 connections behind a tight token bucket: their job is
//            to hammer the admission controller and show that (a) they
//            get clean RATE_LIMITED replies rather than errors and (b)
//            gold latency stays bounded while they do.
//
// Reports per-class qps and p50/p95/p99 latency, exercises the wire
// STATS round-trip once, and emits BENCH_server.json (metadata records
// workers, connections, cache/audit/admission counters). The timed
// window is SIEVE_BENCH_SECONDS (default 5).
//
// After the clean window a chaos phase re-runs the gold loop with the
// fault catalog armed at fixed seeds (transport faults, worker stalls,
// rewrite failures, execution interrupts) and retry-enabled clients,
// reporting availability (successes / attempts) and p99-under-faults as
// the degradation numbers of the robustness story.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "bench/harness.h"
#include "common/fault_injection.h"
#include "server/client.h"
#include "server/server.h"

using namespace sieve;          // NOLINT
using namespace sieve::bench;   // NOLINT
using namespace sieve::server;  // NOLINT

namespace {

constexpr int kWorkers = 8;
constexpr int kGoldClients = 32;
constexpr int kBronzeClients = 32;
constexpr int kChaosClients = 16;

// Fixed-seed fault mix for the chaos phase: reproducible run to run.
// read_eintr / short_read are transparent retries inside the IO loop;
// the rest surface as reconnects or clean error replies that the retry
// clients absorb. Disconnect/write_error stay rare — each recv/send
// rolls the dice, and short reads multiply the recv count.
constexpr const char* kChaosSpec =
    "server.io.short_read=prob:0.02:101;"
    "server.io.read_eintr=prob:0.05:102;"
    "server.io.disconnect=prob:0.001:103;"
    "server.io.write_error=prob:0.001:104;"
    "server.accept.fail=prob:0.05:105;"
    "server.worker.stall=prob:0.05:106;"
    "mw.rewrite.fail=prob:0.02:107;"
    "exec.interrupt=prob:0.002:108;"
    "exec.stall=prob:0.01:109";

double BenchSeconds() {
  const char* v = std::getenv("SIEVE_BENCH_SECONDS");
  if (v == nullptr || v[0] == '\0') return 5.0;
  double parsed = std::atof(v);
  return parsed > 0 ? parsed : 5.0;
}

struct ClientTally {
  std::vector<double> latencies_ms;  // admitted requests only
  uint64_t admitted = 0;
  uint64_t rate_limited = 0;
  uint64_t errors = 0;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

/// One closed-loop client: connect, HELLO, prepare once, then execute
/// with rotating bindings until the deadline. Rate-limited replies are
/// counted and retried after a short backoff (so bronze doesn't turn
/// into a pure spin loop that starves the machine).
void RunClient(uint16_t port, const std::string& token, int seed,
               std::atomic<bool>* stop_flag, ClientTally* tally) {
  SieveClient c;
  if (!c.Connect("127.0.0.1", port).ok() || !c.Hello(token).ok()) {
    tally->errors += 1;
    return;
  }
  auto stmt = c.Prepare(
      "SELECT COUNT(*) FROM WiFi_Dataset AS W WHERE W.wifiAP = ? AND "
      "W.ts_time >= ? AND W.ts_time <= ?");
  if (!stmt.ok()) {
    tally->errors += 1;
    return;
  }
  int iter = seed;
  while (!stop_flag->load(std::memory_order_relaxed)) {
    std::vector<Value> params = {Value::Int(iter % 64),
                                 Value::Time(8 * 3600),
                                 Value::Time((10 + iter % 8) * 3600)};
    Timer t;
    auto res = c.Execute(stmt->id, params);
    if (res.ok()) {
      tally->latencies_ms.push_back(t.ElapsedMillis());
      tally->admitted += 1;
    } else if (c.last_wire_error() ==
                   static_cast<uint16_t>(WireError::kRateLimited) ||
               c.last_wire_error() ==
                   static_cast<uint16_t>(WireError::kTooManyInFlight)) {
      tally->rate_limited += 1;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    } else {
      tally->errors += 1;
      if (!c.connected()) return;
    }
    ++iter;
  }
}

/// Chaos-phase client: the same closed loop, but with reconnect-and-
/// retry enabled so injected transport faults become reconnects instead
/// of client deaths, and with the prepare retried inside the loop (a
/// rewrite fault can fail it transiently).
void RunChaosClient(uint16_t port, const std::string& token, int seed,
                    std::atomic<bool>* stop_flag, ClientTally* tally) {
  SieveClient c;
  RetryPolicy rp;
  rp.max_attempts = 4;
  rp.initial_backoff_ms = 1.0;
  rp.max_backoff_ms = 20.0;
  rp.seed = static_cast<uint64_t>(seed) * 7919 + 1;
  c.enable_retry(rp);
  if (!c.Connect("127.0.0.1", port).ok() || !c.Hello(token).ok()) {
    tally->errors += 1;
    return;
  }
  uint32_t handle = 0;
  int iter = seed;
  while (!stop_flag->load(std::memory_order_relaxed)) {
    if (handle == 0) {
      auto stmt = c.Prepare(
          "SELECT COUNT(*) FROM WiFi_Dataset AS W WHERE W.wifiAP = ? AND "
          "W.ts_time >= ? AND W.ts_time <= ?");
      if (!stmt.ok()) {
        tally->errors += 1;
        ++iter;
        continue;
      }
      handle = stmt->id;
    }
    std::vector<Value> params = {Value::Int(iter % 64),
                                 Value::Time(8 * 3600),
                                 Value::Time((10 + iter % 8) * 3600)};
    Timer t;
    auto res = c.Execute(handle, params);
    if (res.ok()) {
      tally->latencies_ms.push_back(t.ElapsedMillis());
      tally->admitted += 1;
    } else if (c.last_wire_error() ==
                   static_cast<uint16_t>(WireError::kRateLimited) ||
               c.last_wire_error() ==
                   static_cast<uint16_t>(WireError::kTooManyInFlight)) {
      tally->rate_limited += 1;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    } else {
      tally->errors += 1;
    }
    ++iter;
  }
}

struct ClassSummary {
  uint64_t admitted = 0, rate_limited = 0, errors = 0;
  double qps = 0, p50 = 0, p95 = 0, p99 = 0;
};

ClassSummary Summarize(std::vector<ClientTally>& tallies, double seconds) {
  ClassSummary s;
  std::vector<double> all;
  for (ClientTally& t : tallies) {
    s.admitted += t.admitted;
    s.rate_limited += t.rate_limited;
    s.errors += t.errors;
    all.insert(all.end(), t.latencies_ms.begin(), t.latencies_ms.end());
  }
  std::sort(all.begin(), all.end());
  s.qps = seconds > 0 ? static_cast<double>(s.admitted) / seconds : 0;
  s.p50 = Percentile(all, 0.50);
  s.p95 = Percentile(all, 0.95);
  s.p99 = Percentile(all, 0.99);
  return s;
}

}  // namespace

int main() {
  const double seconds = BenchSeconds();
  std::printf("=== Server closed loop: %d connections on %d workers, "
              "%.1fs window ===\n\n",
              kGoldClients + kBronzeClients, kWorkers, seconds);

  auto world = MakeTippersWorld(EngineProfile::MySqlLike(), /*scale=*/0.1,
                                /*advanced_policies=*/20);
  if (world == nullptr) return 1;

  // Tokens: distinct queriers per class — admission buckets are keyed by
  // querier, so gold and bronze must not share identities.
  std::vector<std::pair<std::string, size_t>> queriers;
  for (const char* profile : {"faculty", "grad", "staff", "undergrad"}) {
    for (auto& q : world->TopQueriers(profile, 4)) {
      queriers.push_back(std::move(q));
    }
  }
  if (queriers.size() < 2) {
    std::fprintf(stderr, "not enough policy subjects in the world\n");
    return 1;
  }
  AuthRegistry auth;
  std::vector<std::string> gold_tokens, bronze_tokens;
  AdmissionLimits bronze_limits;
  bronze_limits.rate_per_sec = 10.0;
  bronze_limits.burst = 5.0;
  bronze_limits.max_in_flight = 2;
  for (size_t i = 0; i < queriers.size(); ++i) {
    QueryMetadata md;
    md.querier = queriers[i].first;
    md.purpose = "Analytics";
    std::string token = StrFormat("tok-%zu", i);
    if (i % 2 == 0) {
      auth.RegisterToken(token, md);  // gold: unlimited
      gold_tokens.push_back(token);
    } else {
      auth.RegisterToken(token, md, bronze_limits);
      bronze_tokens.push_back(token);
    }
  }

  ServerOptions opts;
  opts.num_workers = kWorkers;
  opts.max_connections = 256;
  SieveServer srv(world->sieve.get(), &auth, opts);
  if (!srv.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }
  std::printf("server on 127.0.0.1:%u  gold queriers=%zu  bronze "
              "queriers=%zu\n\n",
              srv.port(), gold_tokens.size(), bronze_tokens.size());

  std::atomic<bool> stop{false};
  std::vector<ClientTally> gold(kGoldClients), bronze(kBronzeClients);
  std::vector<std::thread> threads;
  threads.reserve(kGoldClients + kBronzeClients);
  for (int i = 0; i < kGoldClients; ++i) {
    threads.emplace_back(RunClient, srv.port(),
                         gold_tokens[i % gold_tokens.size()], i, &stop,
                         &gold[i]);
  }
  for (int i = 0; i < kBronzeClients; ++i) {
    threads.emplace_back(RunClient, srv.port(),
                         bronze_tokens[i % bronze_tokens.size()], i, &stop,
                         &bronze[i]);
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  stop.store(true);
  for (auto& t : threads) t.join();

  ClassSummary g = Summarize(gold, seconds);
  ClassSummary b = Summarize(bronze, seconds);

  // --- Chaos phase: gold loop again, fault catalog armed ---------------
  const double chaos_seconds = std::min(seconds, 3.0);
  std::printf("chaos phase: %.1fs with faults armed (%s)\n\n", chaos_seconds,
              kChaosSpec);
  if (!FaultInjector::Instance().LoadSpec(kChaosSpec).ok()) {
    std::fprintf(stderr, "chaos spec failed to parse\n");
    return 1;
  }
  std::atomic<bool> chaos_stop{false};
  std::vector<ClientTally> chaos(kChaosClients);
  std::vector<std::thread> chaos_threads;
  chaos_threads.reserve(kChaosClients);
  for (int i = 0; i < kChaosClients; ++i) {
    chaos_threads.emplace_back(RunChaosClient, srv.port(),
                               gold_tokens[i % gold_tokens.size()], i,
                               &chaos_stop, &chaos[i]);
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(chaos_seconds * 1000)));
  chaos_stop.store(true);
  for (auto& t : chaos_threads) t.join();
  FaultInjector::Instance().DisarmAll();
  ClassSummary ch = Summarize(chaos, chaos_seconds);
  const double chaos_attempts =
      static_cast<double>(ch.admitted + ch.errors);
  const double availability =
      chaos_attempts > 0 ? static_cast<double>(ch.admitted) / chaos_attempts
                         : 0.0;

  // One wire STATS round-trip: the operator's view of the same run.
  {
    SieveClient c;
    if (c.Connect("127.0.0.1", srv.port()).ok() &&
        c.Hello(gold_tokens[0]).ok()) {
      auto stats = c.Stats();
      if (stats.ok()) std::printf("wire STATS: %s\n\n", stats->c_str());
    }
  }

  TablePrinter table({"class", "conns", "admitted", "rate_limited", "errors",
                      "qps", "p50 ms", "p95 ms", "p99 ms"});
  std::vector<JsonRow> rows;
  auto add = [&](const char* cls, int conns, const ClassSummary& s) {
    table.AddRow({cls, StrFormat("%d", conns),
                  StrFormat("%llu", static_cast<unsigned long long>(s.admitted)),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(s.rate_limited)),
                  StrFormat("%llu", static_cast<unsigned long long>(s.errors)),
                  StrFormat("%.0f", s.qps), StrFormat("%.2f", s.p50),
                  StrFormat("%.2f", s.p95), StrFormat("%.2f", s.p99)});
    rows.push_back(JsonRow()
                       .Set("class", std::string(cls))
                       .Set("connections", conns)
                       .Set("admitted", static_cast<int64_t>(s.admitted))
                       .Set("rate_limited",
                            static_cast<int64_t>(s.rate_limited))
                       .Set("errors", static_cast<int64_t>(s.errors))
                       .Set("qps", s.qps)
                       .Set("p50_ms", s.p50)
                       .Set("p95_ms", s.p95)
                       .Set("p99_ms", s.p99));
  };
  add("gold", kGoldClients, g);
  add("bronze", kBronzeClients, b);
  add("gold-chaos", kChaosClients, ch);
  rows.back().Set("availability", availability);
  table.Print();
  std::printf("\nchaos availability: %.4f (%llu ok / %.0f attempts), "
              "p99 under faults: %.2f ms\n",
              availability, static_cast<unsigned long long>(ch.admitted),
              chaos_attempts, ch.p99);

  SieveServer::Stats ss = srv.stats();
  srv.Stop();
  // Post-stop snapshot: drain outcomes and the flushed audit state.
  SieveServer::Stats post = srv.stats();
  MiddlewareHealth health = world->sieve->Health();

  JsonRow extra;
  extra.Set("workers", kWorkers)
      .Set("connections", kGoldClients + kBronzeClients)
      .Set("seconds", seconds)
      .Set("chaos_seconds", chaos_seconds)
      .Set("chaos_availability", availability)
      .Set("chaos_p99_ms", ch.p99)
      .Set("chaos_errors", static_cast<int64_t>(ch.errors))
      .Set("write_timeouts", static_cast<int64_t>(post.write_timeouts))
      .Set("drain_rejected", static_cast<int64_t>(post.drain_rejected))
      .Set("cursors_drained", static_cast<int64_t>(post.cursors_drained))
      .Set("cursors_aborted", static_cast<int64_t>(post.cursors_aborted))
      .Set("queries_executed", static_cast<int64_t>(ss.queries_executed))
      .Set("rate_limited", static_cast<int64_t>(ss.rate_limited))
      .Set("in_flight_rejected",
           static_cast<int64_t>(ss.in_flight_rejected))
      .Set("cache_hits", static_cast<int64_t>(health.cache.hits))
      .Set("cache_misses", static_cast<int64_t>(health.cache.misses))
      .Set("cache_invalidations",
           static_cast<int64_t>(health.cache.invalidations))
      .Set("audit_dropped", static_cast<int64_t>(health.audit_dropped))
      .Set("audit_truncated", static_cast<int64_t>(health.audit_truncated));
  if (!WriteBenchJson("server_closed_loop", "BENCH_server.json", rows,
                      extra)) {
    std::fprintf(stderr, "warning: could not write BENCH_server.json\n");
  }

  std::printf("\nExpected shape: gold sustains the bulk of the qps with "
              "bounded tail latency;\nbronze is mostly RATE_LIMITED (clean "
              "replies, zero errors) and cannot degrade\ngold's p99 beyond "
              "the shared-worker floor. Under the chaos mix the retry\n"
              "clients keep availability high — failures are clean errors "
              "and reconnects,\nnever wrong rows or leaked resources.\n");
  bool ok = g.errors == 0 && b.errors == 0 && g.admitted > 0 &&
            b.rate_limited > 0 && ch.admitted > 0 && availability > 0.5;
  return ok ? 0 : 1;
}
