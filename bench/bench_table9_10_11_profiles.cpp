// Experiment 3 / Tables 9-11: the Table-8 comparison broken down by querier
// profile (Faculty / Grad / Undergrad / Staff) for Q1, Q2 and Q3.

#include "bench/harness.h"

using namespace sieve;         // NOLINT
using namespace sieve::bench;  // NOLINT

int main() {
  std::printf("=== Tables 9-11: per-profile comparison for Q1/Q2/Q3 (ms) "
              "===\n\n");
  auto world = MakeTippersWorld();
  if (world == nullptr) return 1;

  TippersQueryGenerator gen(world->dataset, 31);
  const struct {
    const char* tag;
    const char* profile;
  } kProfiles[] = {
      {"F", "faculty"}, {"G", "grad"}, {"U", "undergrad"}, {"S", "staff"}};

  for (int q = 1; q <= 3; ++q) {
    std::printf("--- Table %d: Q%d ---\n", 8 + q, q);
    TablePrinter table({"Pr.", "rho(Q)", "BaselineP", "BaselineI", "BaselineU",
                        "SIEVE"});
    for (const auto& pr : kProfiles) {
      auto top = world->TopQueriers(pr.profile, 1);
      if (top.empty()) continue;
      QueryMetadata md{top[0].first, "Analytics"};
      for (QuerySelectivity sel :
           {QuerySelectivity::kLow, QuerySelectivity::kHigh}) {
        std::string sql = q == 1   ? gen.Q1(sel)
                          : q == 2 ? gen.Q2(sel)
                                   : gen.Q3(sel, 5);
        double t_p = TimeQuery([&] {
          return world->baselines->Execute(BaselineKind::kP, sql, md,
                                           kTimeoutSeconds);
        });
        double t_i = TimeQuery([&] {
          return world->baselines->Execute(BaselineKind::kI, sql, md,
                                           kTimeoutSeconds);
        });
        double t_u = TimeQuery([&] {
          return world->baselines->Execute(BaselineKind::kU, sql, md,
                                           kTimeoutSeconds);
        });
        double t_s = TimeQuery([&] { return world->sieve->Execute(sql, md); });
        const char* sel_tag = sel == QuerySelectivity::kLow ? "l" : "h";
        table.AddRow({pr.tag, sel_tag, FormatMs(t_p), FormatMs(t_i),
                      FormatMs(t_u), FormatMs(t_s)});
      }
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("Expected shape (paper Tables 9-11): SIEVE is the fastest "
              "method for every\nprofile and every cardinality; the profile "
              "changes the constant, not the order.\n");
  return 0;
}
