// Experiment 2.1 / Figure 3: inline policy evaluation vs the Δ operator as
// the policy partition of one guard grows. The paper finds the UDF's
// invocation overhead is amortised by context filtering at ≈120 policies.

#include "bench/harness.h"
#include "sieve/delta.h"
#include "sieve/guard_selection.h"

using namespace sieve;         // NOLINT
using namespace sieve::bench;  // NOLINT

int main() {
  std::printf("=== Figure 3: inline evaluation vs the Delta operator ===\n\n");
  auto world = MakeTippersWorld(EngineProfile::MySqlLike(), 1.0,
                                /*advanced_policies=*/0);
  if (world == nullptr) return 1;

  PolicyStore& store = world->sieve->policies();
  GuardStore& guards = world->sieve->guards();
  const int num_devices = world->dataset.config.num_devices;
  Rng rng(17);

  TablePrinter table({"|P_Gi|", "inline ms", "delta ms", "delta wins",
                      "model prefers delta"});
  const CostModel& cost = world->sieve->cost_model();

  for (int partition : {10, 50, 150, 300}) {
    std::string querier = StrFormat("fig3_q%d", partition);
    QueryMetadata md{querier, "Analytics"};

    // `partition` policies, all under one guard: every owner in a fixed
    // range, extra time conditions so evaluation is non-trivial.
    std::vector<int64_t> ids;
    for (int k = 0; k < partition; ++k) {
      Policy p;
      p.table_name = "WiFi_Dataset";
      int owner = static_cast<int>(rng.Uniform(0, num_devices - 1));
      p.owner = Value::Int(owner);
      p.querier = querier;
      p.purpose = "Analytics";
      p.object_conditions.push_back(ObjectCondition::Range(
          "owner", Value::Int(0), Value::Int(num_devices - 1)));
      p.object_conditions.push_back(
          ObjectCondition::Eq("owner", Value::Int(owner)));
      int64_t h = rng.Uniform(7, 16);
      p.object_conditions.push_back(ObjectCondition::Range(
          "ts_time", Value::Time(h * 3600), Value::Time((h + 2) * 3600)));
      auto id = store.AddPolicy(std::move(p));
      if (!id.ok()) return 1;
      ids.push_back(*id);
    }
    std::vector<const Policy*> policies;
    for (int64_t id : ids) policies.push_back(store.FindPolicy(id));

    // One guard covering the whole owner domain -> partition = all policies.
    GuardedExpression ge;
    ge.querier = querier;
    ge.purpose = "Analytics";
    ge.table_name = "WiFi_Dataset";
    Guard g;
    g.guard.attr = "owner";
    g.guard.lo = Value::Int(0);
    g.guard.hi = Value::Int(num_devices - 1);
    g.guard.selectivity = 1.0;
    for (int64_t id : ids) g.guard.policy_ids.push_back(id);
    ge.guards.push_back(std::move(g));
    auto put = guards.Put(std::move(ge));
    if (!put.ok()) return 1;
    int64_t guard_id = guards.Get(querier, "Analytics", "WiFi_Dataset")
                           ->guards.front()
                           .id;

    // Inline: DNF of the partition as a filter over a full scan.
    std::vector<ExprPtr> exprs;
    for (const Policy* p : policies) exprs.push_back(p->ObjectExpr());
    std::string inline_sql =
        "SELECT COUNT(*) FROM WiFi_Dataset USE INDEX () WHERE " +
        MakeOr(std::move(exprs))->ToSql();
    // A single warm measurement per point keeps the sweep affordable.
    auto time_once = [&](const std::string& sql) -> double {
      Timer t;
      auto r = world->db->ExecuteSql(sql, &md, kTimeoutSeconds);
      if (!r.ok()) return -1.0;
      return t.ElapsedMillis();
    };
    double inline_ms = time_once(inline_sql);

    // Δ: same scan, policies evaluated through the UDF.
    std::string delta_sql = StrFormat(
        "SELECT COUNT(*) FROM WiFi_Dataset USE INDEX () WHERE delta(%lld) = "
        "true",
        static_cast<long long>(guard_id));
    double delta_ms = time_once(delta_sql);

    bool delta_wins =
        delta_ms >= 0 && (inline_ms < 0 || delta_ms < inline_ms);
    table.AddRow({StrFormat("%d", partition), FormatMs(inline_ms),
                  FormatMs(delta_ms), delta_wins ? "yes" : "no",
                  cost.PreferDelta(static_cast<size_t>(partition)) ? "yes"
                                                                   : "no"});
  }
  table.Print();
  std::printf("\nCost-model crossover |P_Gi| > %zu (paper: ~120).\n",
              cost.DeltaCrossover());
  std::printf("Expected shape (paper Fig. 3): inline grows linearly with the "
              "partition size;\nDelta stays nearly flat (context filter), "
              "overtaking inline around the crossover.\n");
  return 0;
}
