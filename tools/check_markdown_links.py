#!/usr/bin/env python3
"""Checks intra-repo markdown links and file references.

Two checks, run over every tracked *.md file in the repo:

1. Markdown links `[text](target)` whose target is not an absolute URL or
   a pure in-page anchor must resolve to an existing file or directory
   (anchors after '#' are stripped; they are not validated).
2. Inline-code path references (backtick spans) that look like repo paths
   — contain a '/' and start with a known top-level directory, or name a
   top-level *.md file — must exist. Trailing globs/wildcards and the
   `.{h,cc}`-style brace shorthand are expanded.

Exit code 0 when everything resolves, 1 otherwise (one line per problem).
Run from anywhere: paths resolve against the repo root (the parent of
this script's directory).
"""

import glob
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_RE = re.compile(r"`([^`\n]+)`")
TOP_DIRS = ("src/", "tests/", "bench/", "examples/", "tools/", ".github/")


# ISSUE.md is the per-PR task brief injected by the growth driver, not
# repo documentation.
SKIP = {"ISSUE.md"}


def md_files():
    for entry in sorted(os.listdir(REPO)):
        if entry.endswith(".md") and entry not in SKIP:
            yield os.path.join(REPO, entry)


def expand_braces(path):
    """a.{h,cc} -> [a.h, a.cc]; {x,y}.h -> [x.h, y.h]."""
    m = re.search(r"\{([^}]+)\}", path)
    if not m:
        return [path]
    out = []
    for alt in m.group(1).split(","):
        out.extend(expand_braces(path[: m.start()] + alt + path[m.end():]))
    return out


def exists(path):
    if glob.glob(os.path.join(REPO, path)):
        return True
    return os.path.exists(os.path.join(REPO, path))


def check_file(md_path):
    problems = []
    rel = os.path.relpath(md_path, REPO)
    with open(md_path, encoding="utf-8") as f:
        text = f.read()

    for lineno, line in enumerate(text.splitlines(), 1):
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if path and not exists(path):
                problems.append(f"{rel}:{lineno}: broken link -> {target}")

        for span in CODE_RE.findall(line):
            # Path-shaped spans only: skip code snippets, commands, flags.
            if any(ch in span for ch in " ()<>$=*"):
                continue
            candidates = None
            if span.startswith(TOP_DIRS):
                candidates = expand_braces(span)
            elif re.fullmatch(r"[A-Za-z0-9_.-]+\.md", span):
                candidates = [span]
            if not candidates:
                continue
            for path in candidates:
                if not exists(path):
                    problems.append(
                        f"{rel}:{lineno}: missing file reference -> {path}")
    return problems


def main():
    all_problems = []
    count = 0
    for md in md_files():
        count += 1
        all_problems.extend(check_file(md))
    for p in all_problems:
        print(p)
    print(f"checked {count} markdown files: "
          f"{'OK' if not all_problems else f'{len(all_problems)} problem(s)'}")
    return 1 if all_problems else 0


if __name__ == "__main__":
    sys.exit(main())
