// Admission control: deterministic token-bucket behavior (injected
// clock), the per-querier in-flight ceiling (cursors hold their slot
// until drained/closed), clean RATE_LIMITED replies that leave the
// connection usable, bystander isolation, and cursor backpressure
// (chunks clamped to max_fetch_rows, totals exact).

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/auth.h"
#include "tests/server_test_util.h"

namespace sieve::server {
namespace {

TEST(AdmissionControllerTest, TokenBucketIsDeterministic) {
  double now = 0.0;
  AdmissionController ac([&] { return now; });
  AdmissionLimits limits;
  limits.rate_per_sec = 1.0;
  limits.burst = 2.0;
  // Bucket starts full: the burst is admitted, the next request is not.
  EXPECT_EQ(ac.TryAdmit("q", limits), AdmissionController::Verdict::kAdmit);
  EXPECT_EQ(ac.TryAdmit("q", limits), AdmissionController::Verdict::kAdmit);
  EXPECT_EQ(ac.TryAdmit("q", limits),
            AdmissionController::Verdict::kRateLimited);
  // One second refills exactly one token.
  now = 1.0;
  EXPECT_EQ(ac.TryAdmit("q", limits), AdmissionController::Verdict::kAdmit);
  EXPECT_EQ(ac.TryAdmit("q", limits),
            AdmissionController::Verdict::kRateLimited);
  // Refill is capped at the burst, not unbounded.
  now = 100.0;
  EXPECT_EQ(ac.TryAdmit("q", limits), AdmissionController::Verdict::kAdmit);
  EXPECT_EQ(ac.TryAdmit("q", limits), AdmissionController::Verdict::kAdmit);
  EXPECT_EQ(ac.TryAdmit("q", limits),
            AdmissionController::Verdict::kRateLimited);
  EXPECT_EQ(ac.stats().rate_limited, 3u);
  EXPECT_EQ(ac.stats().admitted, 5u);
}

TEST(AdmissionControllerTest, InFlightCeilingAndRelease) {
  AdmissionController ac;
  AdmissionLimits limits;
  limits.max_in_flight = 1;
  EXPECT_EQ(ac.TryAdmit("q", limits), AdmissionController::Verdict::kAdmit);
  EXPECT_EQ(ac.TryAdmit("q", limits),
            AdmissionController::Verdict::kTooManyInFlight);
  ac.Release("q");
  EXPECT_EQ(ac.TryAdmit("q", limits), AdmissionController::Verdict::kAdmit);
  EXPECT_EQ(ac.InFlight("q"), 1);
  // Queriers are independent.
  EXPECT_EQ(ac.TryAdmit("other", limits),
            AdmissionController::Verdict::kAdmit);
}

TEST(AdmissionControllerTest, QuerierKeyIsCaseInsensitive) {
  AdmissionController ac;
  AdmissionLimits limits;
  limits.max_in_flight = 1;
  EXPECT_EQ(ac.TryAdmit("Alice", limits), AdmissionController::Verdict::kAdmit);
  EXPECT_EQ(ac.TryAdmit("alice", limits),
            AdmissionController::Verdict::kTooManyInFlight);
}

TEST(ServerAdmissionTest, OverLimitQuerierGetsCleanRateLimitedReply) {
  auto now = std::make_shared<std::atomic<double>>(0.0);
  ServerOptions opts;
  opts.admission_clock = [now] { return now->load(); };
  ServerHarness h(opts);
  AdmissionLimits bronze;
  bronze.rate_per_sec = 1.0;
  bronze.burst = 2.0;
  h.auth().RegisterToken("tok-bronze", MakeMd("alice", "any"), bronze);

  auto c = h.Client("tok-bronze");
  auto stmt = c->Prepare("SELECT COUNT(*) FROM wifi");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_TRUE(c->Execute(stmt->id).ok());
  ASSERT_TRUE(c->Execute(stmt->id).ok());
  // Third execute within the same instant: clean RATE_LIMITED reply, no
  // drop, no crash — and the connection stays fully usable.
  auto limited = c->Execute(stmt->id);
  ASSERT_FALSE(limited.ok());
  EXPECT_EQ(static_cast<WireError>(c->last_wire_error()),
            WireError::kRateLimited);
  EXPECT_TRUE(c->Stats().ok());
  // After a refill the same statement executes again.
  now->store(1.5);
  auto retry = c->Execute(stmt->id);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  ASSERT_EQ(retry->rows.size(), 1u);
  EXPECT_EQ(retry->rows[0][0], Value::Int(300));
  EXPECT_EQ(h.server().stats().rate_limited, 1u);
}

TEST(ServerAdmissionTest, BystanderUnaffectedByRateLimitedSpammer) {
  ServerOptions opts;
  ServerHarness h(opts);
  AdmissionLimits bronze;
  bronze.rate_per_sec = 5.0;
  bronze.burst = 5.0;
  h.auth().RegisterToken("tok-bronze", MakeMd("bob", "Analytics"), bronze);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> spam_attempts{0};
  std::thread spammer([&] {
    auto c = h.Client("tok-bronze");
    auto stmt = c->Prepare("SELECT COUNT(*) FROM wifi");
    if (!stmt.ok()) return;
    while (!stop.load()) {
      (void)c->Execute(stmt->id);  // mostly RATE_LIMITED
      spam_attempts.fetch_add(1);
    }
  });

  // The unlimited bystander (alice) keeps executing successfully, with
  // latency bounded well below anything a starved worker pool would show.
  auto c = h.Client("tok-alice");
  auto stmt = c->Prepare("SELECT COUNT(*) FROM wifi WHERE owner = ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  double worst_ms = 0.0;
  for (int i = 0; i < 25; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto res = c->Execute(stmt->id, {Value::Int(i % 5)});
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    worst_ms = std::max(worst_ms, ms);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_EQ(res->rows.size(), 1u);
    EXPECT_EQ(res->rows[0][0], Value::Int(60));
  }
  stop.store(true);
  spammer.join();
  EXPECT_GT(spam_attempts.load(), 0u);
  EXPECT_GE(h.server().stats().rate_limited, 1u);
  // Generous CI-safe bound: each query is a 600-row indexed count.
  EXPECT_LT(worst_ms, 2000.0);
}

TEST(ServerAdmissionTest, OpenCursorHoldsInFlightSlotUntilClosed) {
  ServerHarness h;
  AdmissionLimits solo;
  solo.max_in_flight = 1;
  h.auth().RegisterToken("tok-solo", MakeMd("alice", "any"), solo);

  auto c1 = h.Client("tok-solo");
  auto stmt1 = c1->Prepare("SELECT id FROM wifi");
  ASSERT_TRUE(stmt1.ok()) << stmt1.status().ToString();
  auto first = c1->Execute(stmt1->id, {}, /*chunk_rows=*/10);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_FALSE(first->done);

  // The open cursor still occupies alice's single in-flight slot: a
  // second connection under the same querier is refused.
  auto c2 = h.Client("tok-solo");
  auto stmt2 = c2->Prepare("SELECT id FROM wifi");
  ASSERT_TRUE(stmt2.ok()) << stmt2.status().ToString();
  auto refused = c2->Execute(stmt2->id);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(static_cast<WireError>(c2->last_wire_error()),
            WireError::kTooManyInFlight);

  ASSERT_TRUE(c1->CloseCursor(first->cursor_id).ok());
  auto admitted = c2->Execute(stmt2->id);
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_EQ(admitted->rows.size(), 300u);
}

TEST(ServerBackpressureTest, FetchIsClampedToMaxFetchRows) {
  ServerOptions opts;
  opts.max_fetch_rows = 7;
  ServerHarness h(opts);
  auto c = h.Client("tok-alice");
  auto stmt = c->Prepare("SELECT id FROM wifi");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  // Both the EXECUTE chunk and every FETCH are clamped server-side.
  auto chunk = c->Execute(stmt->id, {}, /*chunk_rows=*/100);
  ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
  EXPECT_EQ(chunk->rows.size(), 7u);
  auto more = c->Fetch(chunk->cursor_id, 100);
  ASSERT_TRUE(more.ok()) << more.status().ToString();
  EXPECT_EQ(more->rows.size(), 7u);
  ASSERT_TRUE(c->CloseCursor(chunk->cursor_id).ok());
}

TEST(ServerBackpressureTest, ChunkedFetchSumsToExactTotal) {
  ServerHarness h;
  auto c = h.Client("tok-alice");
  auto stmt = c->Prepare("SELECT id, owner FROM wifi WHERE owner <= 2");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  // In-process ground truth.
  SieveSession session(&h.mw(), MakeMd("alice", "any"));
  auto expected = session.Execute("SELECT id, owner FROM wifi WHERE owner <= 2");
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  auto chunk = c->Execute(stmt->id, {}, /*chunk_rows=*/13);
  ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
  std::vector<Row> all = chunk->rows;
  size_t outstanding_max = chunk->rows.size();
  while (!chunk->done) {
    auto next = c->Fetch(chunk->cursor_id, 13);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    // Bounded outstanding batches: the server never hands back more than
    // the requested chunk.
    EXPECT_LE(next->rows.size(), 13u);
    outstanding_max = std::max(outstanding_max, next->rows.size());
    all.insert(all.end(), next->rows.begin(), next->rows.end());
    chunk->done = next->done;
  }
  EXPECT_LE(outstanding_max, 13u);
  ASSERT_EQ(all.size(), expected->rows.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], expected->rows[i]) << "row " << i;
  }
  EXPECT_EQ(h.server().stats().open_cursors, 0u);
}

TEST(ServerAdmissionTest, CursorOpenRuleRejectsInterleavedExecute) {
  ServerHarness h;
  auto c = h.Client("tok-alice");
  auto stmt = c->Prepare("SELECT id FROM wifi");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto chunk = c->Execute(stmt->id, {}, /*chunk_rows=*/5);
  ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
  ASSERT_FALSE(chunk->done);
  // With a cursor open, PREPARE and EXECUTE are refused (CURSOR_OPEN) —
  // the protocol rule that makes self-deadlock unrepresentable.
  auto p = c->Prepare("SELECT owner FROM wifi");
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(static_cast<WireError>(c->last_wire_error()),
            WireError::kCursorOpen);
  auto e = c->Execute(stmt->id);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(static_cast<WireError>(c->last_wire_error()),
            WireError::kCursorOpen);
  // STATS stays allowed (cursor lane), and draining restores normal use.
  EXPECT_TRUE(c->Stats().ok());
  ASSERT_TRUE(c->CloseCursor(chunk->cursor_id).ok());
  EXPECT_TRUE(c->Execute(stmt->id).ok());
}

}  // namespace
}  // namespace sieve::server
