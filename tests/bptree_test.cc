#include "index/bptree.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sieve {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Lookup(Value::Int(1)).empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, SingleInsertLookup) {
  BPlusTree tree;
  tree.Insert(Value::Int(42), 7);
  auto rows = tree.Lookup(Value::Int(42));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 7);
  EXPECT_TRUE(tree.Lookup(Value::Int(41)).empty());
}

TEST(BPlusTreeTest, DuplicateKeys) {
  BPlusTree tree;
  for (RowId r = 0; r < 200; ++r) tree.Insert(Value::Int(5), r);
  auto rows = tree.Lookup(Value::Int(5));
  EXPECT_EQ(rows.size(), 200u);
  // Row ids come back sorted (composite key order).
  for (size_t i = 1; i < rows.size(); ++i) EXPECT_LT(rows[i - 1], rows[i]);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, RangeScanInclusiveExclusive) {
  BPlusTree tree;
  for (int i = 0; i < 100; ++i) tree.Insert(Value::Int(i), i);
  EXPECT_EQ(tree.CountRange(Value::Int(10), true, Value::Int(20), true), 11u);
  EXPECT_EQ(tree.CountRange(Value::Int(10), false, Value::Int(20), true), 10u);
  EXPECT_EQ(tree.CountRange(Value::Int(10), true, Value::Int(20), false), 10u);
  EXPECT_EQ(tree.CountRange(Value::Int(10), false, Value::Int(20), false), 9u);
}

TEST(BPlusTreeTest, OpenEndedRanges) {
  BPlusTree tree;
  for (int i = 0; i < 50; ++i) tree.Insert(Value::Int(i), i);
  EXPECT_EQ(tree.CountRange(std::nullopt, true, Value::Int(9), true), 10u);
  EXPECT_EQ(tree.CountRange(Value::Int(40), true, std::nullopt, true), 10u);
  EXPECT_EQ(tree.CountRange(std::nullopt, true, std::nullopt, true), 50u);
}

TEST(BPlusTreeTest, EraseSpecificEntry) {
  BPlusTree tree;
  tree.Insert(Value::Int(1), 10);
  tree.Insert(Value::Int(1), 11);
  EXPECT_TRUE(tree.Erase(Value::Int(1), 10));
  EXPECT_FALSE(tree.Erase(Value::Int(1), 10));  // already gone
  auto rows = tree.Lookup(Value::Int(1));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 11);
}

TEST(BPlusTreeTest, StringKeys) {
  BPlusTree tree;
  tree.Insert(Value::String("banana"), 1);
  tree.Insert(Value::String("apple"), 2);
  tree.Insert(Value::String("cherry"), 3);
  auto rows = tree.LookupRange(Value::String("apple"), true,
                               Value::String("banana"), true);
  EXPECT_EQ(rows.size(), 2u);
}

TEST(BPlusTreeTest, EarlyStopVisitor) {
  BPlusTree tree;
  for (int i = 0; i < 1000; ++i) tree.Insert(Value::Int(i), i);
  int visited = 0;
  tree.ScanRange(std::nullopt, true, std::nullopt, true,
                 [&visited](const Value&, RowId) {
                   ++visited;
                   return visited < 10;
                 });
  EXPECT_EQ(visited, 10);
}

// Property test: the tree must agree with a std::multimap oracle under a
// random workload of inserts, erases and range scans.
class BPlusTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BPlusTreePropertyTest, MatchesMultimapOracle) {
  const int n_ops = GetParam();
  Rng rng(static_cast<uint64_t>(n_ops) * 7919);
  BPlusTree tree;
  std::multimap<int64_t, RowId> oracle;
  RowId next_row = 0;

  for (int op = 0; op < n_ops; ++op) {
    double roll = rng.NextDouble();
    if (roll < 0.7 || oracle.empty()) {
      int64_t key = rng.Uniform(0, 500);
      tree.Insert(Value::Int(key), next_row);
      oracle.emplace(key, next_row);
      ++next_row;
    } else {
      // Erase a random existing entry.
      auto it = oracle.begin();
      std::advance(it, rng.Uniform(0, static_cast<int64_t>(oracle.size()) - 1));
      EXPECT_TRUE(tree.Erase(Value::Int(it->first), it->second));
      oracle.erase(it);
    }

    if (op % 97 == 0) {
      int64_t lo = rng.Uniform(0, 400);
      int64_t hi = lo + rng.Uniform(0, 150);
      size_t expected = 0;
      for (auto it = oracle.lower_bound(lo);
           it != oracle.end() && it->first <= hi; ++it) {
        ++expected;
      }
      EXPECT_EQ(tree.CountRange(Value::Int(lo), true, Value::Int(hi), true),
                expected)
          << "range [" << lo << "," << hi << "] after op " << op;
    }
  }
  EXPECT_EQ(tree.size(), oracle.size());
  EXPECT_TRUE(tree.CheckInvariants());

  // Full scan agrees with the sorted oracle.
  std::vector<std::pair<int64_t, RowId>> scanned;
  tree.ScanRange(std::nullopt, true, std::nullopt, true,
                 [&scanned](const Value& k, RowId r) {
                   scanned.emplace_back(k.AsInt(), r);
                   return true;
                 });
  std::vector<std::pair<int64_t, RowId>> expected(oracle.begin(), oracle.end());
  // The oracle multimap preserves insertion order within a key; the tree
  // orders by row id. Sort both for comparison.
  std::sort(expected.begin(), expected.end());
  std::sort(scanned.begin(), scanned.end());
  EXPECT_EQ(scanned, expected);
}

INSTANTIATE_TEST_SUITE_P(Workloads, BPlusTreePropertyTest,
                         ::testing::Values(50, 500, 2000, 10000, 40000));

TEST(BPlusTreeTest, HeightGrowsLogarithmically) {
  BPlusTree tree;
  for (int i = 0; i < 100000; ++i) tree.Insert(Value::Int(i), i);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_LE(tree.height(), 5);
  EXPECT_EQ(tree.size(), 100000u);
}

TEST(BPlusTreeTest, DescendingInsertOrder) {
  BPlusTree tree;
  for (int i = 5000; i > 0; --i) tree.Insert(Value::Int(i), i);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.CountRange(Value::Int(1), true, Value::Int(5000), true),
            5000u);
}

}  // namespace
}  // namespace sieve
