#include "policy/policy.h"

#include <gtest/gtest.h>

#include "policy/policy_store.h"
#include "tests/test_fixtures.h"

namespace sieve {
namespace {

TEST(ObjectConditionTest, EqToExpr) {
  auto oc = ObjectCondition::Eq("owner", Value::Int(5));
  EXPECT_EQ(oc.ToExpr()->ToSql(), "owner = 5");
  Value lo, hi;
  ASSERT_TRUE(oc.AsInterval(&lo, &hi));
  EXPECT_EQ(lo.Compare(hi), 0);
}

TEST(ObjectConditionTest, RangeToExpr) {
  auto oc = ObjectCondition::Range("ts_time", Value::Time(9 * 3600),
                                   Value::Time(10 * 3600));
  EXPECT_EQ(oc.ToExpr()->ToSql(), "ts_time BETWEEN '09:00:00' AND '10:00:00'");
  Value lo, hi;
  ASSERT_TRUE(oc.AsInterval(&lo, &hi));
  EXPECT_EQ(lo.raw(), 9 * 3600);
  EXPECT_EQ(hi.raw(), 10 * 3600);
}

TEST(ObjectConditionTest, DerivedHasNoInterval) {
  auto oc = ObjectCondition::Derived("wifiAP", "SELECT 1 FROM t");
  Value lo, hi;
  EXPECT_FALSE(oc.AsInterval(&lo, &hi));
  EXPECT_EQ(oc.ToExpr()->kind(), ExprKind::kComparison);
}

TEST(PolicyTest, ObjectExprIsConjunction) {
  MiniCampus campus;
  Policy p = campus.MakePolicy(3, "alice", "Attendance", 9, 10, 2);
  EXPECT_EQ(p.ObjectExpr()->kind(), ExprKind::kAnd);
  EXPECT_NE(p.ToString().find("owner = 3"), std::string::npos);
}

TEST(PolicyTest, MetadataMatchingDirect) {
  MiniCampus campus;
  Policy p = campus.MakePolicy(3, "alice", "Attendance");
  EXPECT_TRUE(PolicyMatchesMetadata(p, {"alice", "Attendance"},
                                    &campus.groups()));
  EXPECT_FALSE(
      PolicyMatchesMetadata(p, {"alice", "Commercial"}, &campus.groups()));
  EXPECT_FALSE(
      PolicyMatchesMetadata(p, {"bob", "Attendance"}, &campus.groups()));
}

TEST(PolicyTest, MetadataMatchingViaGroup) {
  MiniCampus campus;
  Policy p = campus.MakePolicy(3, "students", "Social");
  EXPECT_TRUE(PolicyMatchesMetadata(p, {"bob", "Social"}, &campus.groups()));
  EXPECT_TRUE(PolicyMatchesMetadata(p, {"carol", "Social"}, &campus.groups()));
  EXPECT_FALSE(PolicyMatchesMetadata(p, {"alice", "Social"}, &campus.groups()));
}

TEST(PolicyTest, AnyPurposeMatchesEverything) {
  MiniCampus campus;
  Policy p = campus.MakePolicy(3, "alice", "any");
  EXPECT_TRUE(PolicyMatchesMetadata(p, {"alice", "Attendance"},
                                    &campus.groups()));
  EXPECT_TRUE(
      PolicyMatchesMetadata(p, {"alice", "whatever"}, &campus.groups()));
}

TEST(FoldDenyTest, DenyCutsMiddleOfAllowRange) {
  MiniCampus campus;
  Policy allow = campus.MakePolicy(3, "alice", "any", 9, 17);
  Policy deny = campus.MakePolicy(3, "alice", "any", 12, 13);
  deny.action = PolicyAction::kDeny;
  auto folded = FoldDenyIntoAllow(allow, deny);
  ASSERT_EQ(folded.size(), 2u);
  // Left remainder ends just before 12:00, right starts just after 13:00.
  Value lo, hi;
  ASSERT_TRUE(folded[0].object_conditions[1].AsInterval(&lo, &hi));
  EXPECT_EQ(lo.raw(), 9 * 3600);
  EXPECT_EQ(hi.raw(), 12 * 3600 - 1);
  ASSERT_TRUE(folded[1].object_conditions[1].AsInterval(&lo, &hi));
  EXPECT_EQ(lo.raw(), 13 * 3600 + 1);
  EXPECT_EQ(hi.raw(), 17 * 3600);
}

TEST(FoldDenyTest, DenyCoversAllow) {
  MiniCampus campus;
  Policy allow = campus.MakePolicy(3, "alice", "any", 10, 12);
  Policy deny = campus.MakePolicy(3, "alice", "any", 9, 13);
  deny.action = PolicyAction::kDeny;
  EXPECT_TRUE(FoldDenyIntoAllow(allow, deny).empty());
}

TEST(FoldDenyTest, DisjointDenyLeavesAllow) {
  MiniCampus campus;
  Policy allow = campus.MakePolicy(3, "alice", "any", 9, 10);
  Policy deny = campus.MakePolicy(3, "alice", "any", 15, 16);
  deny.action = PolicyAction::kDeny;
  auto folded = FoldDenyIntoAllow(allow, deny);
  ASSERT_EQ(folded.size(), 1u);
  Value lo, hi;
  ASSERT_TRUE(folded[0].object_conditions[1].AsInterval(&lo, &hi));
  EXPECT_EQ(lo.raw(), 9 * 3600);
}

TEST(FoldDenyTest, DifferentOwnerUntouched) {
  MiniCampus campus;
  Policy allow = campus.MakePolicy(3, "alice", "any", 9, 10);
  Policy deny = campus.MakePolicy(4, "alice", "any", 9, 10);
  deny.action = PolicyAction::kDeny;
  auto folded = FoldDenyIntoAllow(allow, deny);
  ASSERT_EQ(folded.size(), 1u);
}

class PolicyStoreTest : public ::testing::Test {
 protected:
  PolicyStoreTest() : store_(&campus_.db()) {
    EXPECT_TRUE(store_.Init().ok());
  }
  MiniCampus campus_;
  PolicyStore store_;
};

TEST_F(PolicyStoreTest, AddAssignsIds) {
  auto id1 = store_.AddPolicy(campus_.MakePolicy(1, "alice", "any"));
  auto id2 = store_.AddPolicy(campus_.MakePolicy(2, "alice", "any"));
  ASSERT_TRUE(id1.ok() && id2.ok());
  EXPECT_NE(*id1, *id2);
  EXPECT_EQ(store_.size(), 2u);
  EXPECT_NE(store_.FindPolicy(*id1), nullptr);
}

TEST_F(PolicyStoreTest, PersistsToCatalogTables) {
  ASSERT_TRUE(store_.AddPolicy(campus_.MakePolicy(1, "alice", "any", 9, 10, 2))
                  .ok());
  auto rp = campus_.db().ExecuteSql("SELECT COUNT(*) FROM rP");
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rp->rows[0][0].AsInt(), 1);
  // owner eq + time range (2 rows) + ap eq = 4 rOC rows.
  auto roc = campus_.db().ExecuteSql("SELECT COUNT(*) FROM rOC");
  ASSERT_TRUE(roc.ok());
  EXPECT_EQ(roc->rows[0][0].AsInt(), 4);
}

TEST_F(PolicyStoreTest, LoadFromTablesRoundTrip) {
  Policy original = campus_.MakePolicy(5, "alice", "Attendance", 9, 10, 2);
  ASSERT_TRUE(store_.AddPolicy(original).ok());
  ASSERT_TRUE(store_.LoadFromTables().ok());
  ASSERT_EQ(store_.size(), 1u);
  const Policy& loaded = store_.policies()[0];
  EXPECT_EQ(loaded.querier, "alice");
  EXPECT_EQ(loaded.purpose, "Attendance");
  ASSERT_EQ(loaded.object_conditions.size(), 3u);
  // The range condition must be reassembled from its two rOC rows.
  bool found_range = false;
  for (const auto& oc : loaded.object_conditions) {
    if (oc.is_range()) {
      found_range = true;
      EXPECT_EQ(oc.value.raw(), 9 * 3600);
      EXPECT_EQ(oc.value2->raw(), 10 * 3600);
    }
  }
  EXPECT_TRUE(found_range);
  // Semantics survive the round trip.
  EXPECT_EQ(loaded.ObjectExpr()->ToSql(), original.ObjectExpr()->ToSql());
}

TEST_F(PolicyStoreTest, RemovePolicy) {
  auto id = store_.AddPolicy(campus_.MakePolicy(1, "alice", "any"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_.RemovePolicy(*id).ok());
  EXPECT_EQ(store_.size(), 0u);
  EXPECT_EQ(store_.FindPolicy(*id), nullptr);
  EXPECT_FALSE(store_.RemovePolicy(*id).ok());
  auto rp = campus_.db().ExecuteSql("SELECT COUNT(*) FROM rP");
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rp->rows[0][0].AsInt(), 0);
}

TEST_F(PolicyStoreTest, FilterByMetadataAppliesGroupsAndPurpose) {
  ASSERT_TRUE(store_.AddPolicy(campus_.MakePolicy(1, "alice", "Attendance")).ok());
  ASSERT_TRUE(store_.AddPolicy(campus_.MakePolicy(2, "students", "Social")).ok());
  ASSERT_TRUE(store_.AddPolicy(campus_.MakePolicy(3, "bob", "Social")).ok());

  auto for_alice = store_.FilterByMetadata({"alice", "Attendance"}, "wifi",
                                           &campus_.groups());
  ASSERT_EQ(for_alice.size(), 1u);
  EXPECT_EQ(for_alice[0]->owner.AsInt(), 1);

  // bob matches his own policy and the students-group policy.
  auto for_bob =
      store_.FilterByMetadata({"bob", "Social"}, "wifi", &campus_.groups());
  EXPECT_EQ(for_bob.size(), 2u);

  // Different table: nothing.
  auto other = store_.FilterByMetadata({"alice", "Attendance"}, "other",
                                       &campus_.groups());
  EXPECT_TRUE(other.empty());
}

TEST_F(PolicyStoreTest, DistinctQueriers) {
  ASSERT_TRUE(store_.AddPolicy(campus_.MakePolicy(1, "alice", "A")).ok());
  ASSERT_TRUE(store_.AddPolicy(campus_.MakePolicy(2, "alice", "A")).ok());
  ASSERT_TRUE(store_.AddPolicy(campus_.MakePolicy(3, "bob", "B")).ok());
  EXPECT_EQ(store_.DistinctQueriers("wifi").size(), 2u);
}

TEST_F(PolicyStoreTest, DerivedConditionPersistence) {
  Policy p = campus_.MakePolicy(1, "alice", "any");
  p.object_conditions.push_back(ObjectCondition::Derived(
      "wifiAP", "SELECT w2.wifiAP FROM wifi AS w2 WHERE w2.id = 0"));
  ASSERT_TRUE(store_.AddPolicy(std::move(p)).ok());
  ASSERT_TRUE(store_.LoadFromTables().ok());
  ASSERT_EQ(store_.size(), 1u);
  bool found = false;
  for (const auto& oc : store_.policies()[0].object_conditions) {
    if (oc.is_derived()) {
      found = true;
      EXPECT_NE(oc.subquery_sql.find("SELECT w2.wifiAP"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sieve
