#include "workload/baselines.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "tests/test_fixtures.h"

namespace sieve {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest()
      : store_(&campus_.db()),
        baselines_(&campus_.db(), &store_, &campus_.groups()) {
    EXPECT_TRUE(store_.Init().ok());
    EXPECT_TRUE(baselines_.Init().ok());
    for (int owner = 0; owner < 4; ++owner) {
      EXPECT_TRUE(
          store_.AddPolicy(campus_.MakePolicy(owner, "alice", "any", 9, 12))
              .ok());
    }
  }

  MiniCampus campus_;
  PolicyStore store_;
  Baselines baselines_;
};

TEST_F(BaselinesTest, RewritePAppendsDnfToWhere) {
  auto stmt = Parser::Parse("SELECT * FROM wifi WHERE wifiAP = 1");
  ASSERT_TRUE(stmt.ok());
  auto rewritten = baselines_.Rewrite(BaselineKind::kP, **stmt, {"alice", "any"});
  ASSERT_TRUE(rewritten.ok());
  // WHERE becomes <orig> AND (P1 OR ... OR P4); no CTE.
  EXPECT_TRUE((*rewritten)->ctes.empty());
  ASSERT_NE((*rewritten)->where, nullptr);
  EXPECT_EQ((*rewritten)->where->kind(), ExprKind::kAnd);
  std::string sql = (*rewritten)->ToSql();
  EXPECT_NE(sql.find("owner = 0"), std::string::npos);
  EXPECT_NE(sql.find("owner = 3"), std::string::npos);
}

TEST_F(BaselinesTest, RewriteIBuildsUnionOfIndexScans) {
  auto stmt = Parser::Parse("SELECT * FROM wifi WHERE wifiAP = 1");
  ASSERT_TRUE(stmt.ok());
  auto rewritten = baselines_.Rewrite(BaselineKind::kI, **stmt, {"alice", "any"});
  ASSERT_TRUE(rewritten.ok());
  ASSERT_EQ((*rewritten)->ctes.size(), 1u);
  // One UNION arm per policy, each forcing the owner index.
  int arms = 0;
  for (const SelectStmt* arm = (*rewritten)->ctes[0].query.get();
       arm != nullptr; arm = arm->union_next.get()) {
    ++arms;
    ASSERT_EQ(arm->from.size(), 1u);
    EXPECT_EQ(arm->from[0].hint.kind, IndexHint::Kind::kForceIndex);
    ASSERT_EQ(arm->from[0].hint.columns.size(), 1u);
    EXPECT_EQ(arm->from[0].hint.columns[0], "owner");
  }
  EXPECT_EQ(arms, 4);
  // The outer query now reads from the CTE.
  EXPECT_EQ((*rewritten)->from[0].table_name, "bi_wifi");
}

TEST_F(BaselinesTest, RewriteUAddsPolicyCheckCall) {
  auto stmt = Parser::Parse("SELECT * FROM wifi");
  ASSERT_TRUE(stmt.ok());
  auto rewritten = baselines_.Rewrite(BaselineKind::kU, **stmt, {"alice", "any"});
  ASSERT_TRUE(rewritten.ok());
  std::string sql = (*rewritten)->ToSql();
  EXPECT_NE(sql.find("policy_check('wifi') = true"), std::string::npos);
}

TEST_F(BaselinesTest, AllBaselinesAgreeWithEachOther) {
  QueryMetadata md{"alice", "any"};
  const std::string sql = "SELECT * FROM wifi WHERE ts_time >= '08:00'";
  auto p = baselines_.Execute(BaselineKind::kP, sql, md, 30.0);
  auto i = baselines_.Execute(BaselineKind::kI, sql, md, 30.0);
  auto u = baselines_.Execute(BaselineKind::kU, sql, md, 30.0);
  ASSERT_TRUE(p.ok() && i.ok() && u.ok());
  EXPECT_GT(p->size(), 0u);
  EXPECT_EQ(p->size(), i->size());
  EXPECT_EQ(p->size(), u->size());
}

TEST_F(BaselinesTest, UnknownQuerierDeniedByAllBaselines) {
  QueryMetadata md{"mallory", "any"};
  for (BaselineKind kind :
       {BaselineKind::kP, BaselineKind::kI, BaselineKind::kU}) {
    auto result = baselines_.Execute(kind, "SELECT * FROM wifi", md, 30.0);
    ASSERT_TRUE(result.ok()) << BaselineName(kind);
    EXPECT_EQ(result->size(), 0u) << BaselineName(kind);
  }
}

TEST_F(BaselinesTest, GroupQuerierHonoredByAllBaselines) {
  ASSERT_TRUE(
      store_.AddPolicy(campus_.MakePolicy(7, "students", "Social")).ok());
  QueryMetadata md{"bob", "Social"};  // bob ∈ students
  for (BaselineKind kind :
       {BaselineKind::kP, BaselineKind::kI, BaselineKind::kU}) {
    auto result = baselines_.Execute(kind, "SELECT * FROM wifi", md, 30.0);
    ASSERT_TRUE(result.ok()) << BaselineName(kind);
    EXPECT_EQ(result->size(), 60u) << BaselineName(kind);
  }
}

TEST_F(BaselinesTest, UnprotectedTableUntouched) {
  ASSERT_TRUE(campus_.db()
                  .CreateTable("free", Schema({{"x", DataType::kInt}}))
                  .ok());
  ASSERT_TRUE(campus_.db().Insert("free", Row{Value::Int(1)}).ok());
  auto stmt = Parser::Parse("SELECT * FROM free");
  ASSERT_TRUE(stmt.ok());
  auto rewritten = baselines_.Rewrite(BaselineKind::kP, **stmt, {"alice", "any"});
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)->where, nullptr);
}

TEST_F(BaselinesTest, BaselineNames) {
  EXPECT_STREQ(BaselineName(BaselineKind::kP), "BaselineP");
  EXPECT_STREQ(BaselineName(BaselineKind::kI), "BaselineI");
  EXPECT_STREQ(BaselineName(BaselineKind::kU), "BaselineU");
}

}  // namespace
}  // namespace sieve
