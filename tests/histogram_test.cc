#include "index/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/bitmap.h"

namespace sieve {
namespace {

std::vector<Value> UniformInts(int n, int64_t lo, int64_t hi, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(Value::Int(rng.Uniform(lo, hi)));
  return out;
}

TEST(HistogramTest, EmptyInput) {
  auto h = EquiDepthHistogram::Build({}, 16);
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_DOUBLE_EQ(h.EstimateEq(Value::Int(5)), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateRange(Value::Int(0), true, Value::Int(9), true),
                   0.0);
}

TEST(HistogramTest, UniformRangeEstimateWithinTolerance) {
  auto h = EquiDepthHistogram::Build(UniformInts(50000, 0, 999, 1), 64);
  // ~10% of the domain.
  double est = h.EstimateRange(Value::Int(100), true, Value::Int(199), true);
  EXPECT_NEAR(est, 0.1, 0.02);
  // ~50%.
  est = h.EstimateRange(Value::Int(0), true, Value::Int(499), true);
  EXPECT_NEAR(est, 0.5, 0.03);
}

TEST(HistogramTest, EqualityEstimateUniform) {
  auto h = EquiDepthHistogram::Build(UniformInts(50000, 0, 99, 2), 32);
  double est = h.EstimateEq(Value::Int(50));
  EXPECT_NEAR(est, 0.01, 0.005);
  EXPECT_DOUBLE_EQ(h.EstimateEq(Value::Int(1000)), 0.0);  // out of domain
}

TEST(HistogramTest, SkewedDistribution) {
  // 90% of values are 0; the histogram must attribute ~0.9 to it.
  std::vector<Value> values;
  for (int i = 0; i < 9000; ++i) values.push_back(Value::Int(0));
  for (int i = 0; i < 1000; ++i) values.push_back(Value::Int(1 + i % 100));
  auto h = EquiDepthHistogram::Build(std::move(values), 32);
  EXPECT_NEAR(h.EstimateEq(Value::Int(0)), 0.9, 0.05);
}

TEST(HistogramTest, OpenRanges) {
  auto h = EquiDepthHistogram::Build(UniformInts(20000, 0, 999, 3), 64);
  EXPECT_NEAR(h.EstimateRange(std::nullopt, true, Value::Int(499), true), 0.5,
              0.03);
  EXPECT_NEAR(h.EstimateRange(Value::Int(500), true, std::nullopt, true), 0.5,
              0.03);
  EXPECT_DOUBLE_EQ(h.EstimateRange(std::nullopt, true, std::nullopt, true),
                   1.0);
}

TEST(HistogramTest, DistinctCount) {
  std::vector<Value> values;
  for (int i = 0; i < 100; ++i) values.push_back(Value::Int(i % 10));
  auto h = EquiDepthHistogram::Build(std::move(values), 8);
  EXPECT_EQ(h.distinct_count(), 10u);
  EXPECT_EQ(h.total_count(), 100u);
}

TEST(HistogramTest, TimeValues) {
  std::vector<Value> values;
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    values.push_back(Value::Time(rng.Uniform(6 * 3600, 22 * 3600)));
  }
  auto h = EquiDepthHistogram::Build(std::move(values), 48);
  // One hour of a 16-hour uniform span ≈ 1/16.
  double est = h.EstimateRange(Value::Time(9 * 3600), true,
                               Value::Time(10 * 3600), true);
  EXPECT_NEAR(est, 1.0 / 16, 0.02);
}

TEST(BitmapTest, SetTestCount) {
  Bitmap b(100);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(99);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
}

TEST(BitmapTest, OrGrowsUniverse) {
  Bitmap a(10);
  a.Set(3);
  Bitmap b(200);
  b.Set(150);
  a.Or(b);
  EXPECT_TRUE(a.Test(3));
  EXPECT_TRUE(a.Test(150));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(BitmapTest, AndIntersects) {
  Bitmap a(100), b(100);
  for (RowId i = 0; i < 100; i += 2) a.Set(i);
  for (RowId i = 0; i < 100; i += 3) b.Set(i);
  a.And(b);
  for (RowId i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Test(i), i % 6 == 0) << i;
  }
}

TEST(BitmapTest, ToVectorSorted) {
  Bitmap b(1000);
  b.Set(500);
  b.Set(2);
  b.Set(999);
  auto v = b.ToVector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 2);
  EXPECT_EQ(v[1], 500);
  EXPECT_EQ(v[2], 999);
}

TEST(BitmapTest, AutoGrowOnSet) {
  Bitmap b;
  b.Set(12345);
  EXPECT_TRUE(b.Test(12345));
  EXPECT_FALSE(b.Test(12344));
}

}  // namespace
}  // namespace sieve
