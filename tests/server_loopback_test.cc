// Loopback equivalence: results fetched over the wire protocol must be
// row-identical (values and order) to the same query executed through an
// in-process SieveSession — for materialized EXECUTE and for the chunked
// cursor path, across the equivalence-sweep query shapes (scans, set
// operations, joins, aggregates, parameter bindings) and both engine
// profiles.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tests/server_test_util.h"

namespace sieve::server {
namespace {

struct ShapedQuery {
  const char* label;
  const char* sql;
  std::vector<Value> params;
};

std::vector<ShapedQuery> EquivalenceShapes() {
  return {
      {"full_scan", "SELECT id, wifiAP, owner, ts_time FROM wifi", {}},
      {"pred_scan",
       "SELECT id, owner FROM wifi WHERE ts_time >= ? AND ts_time <= ?",
       {Value::Time(8 * 3600), Value::Time(15 * 3600)}},
      {"point_param", "SELECT id FROM wifi WHERE wifiAP = ?",
       {Value::Int(3)}},
      {"union_all",
       "SELECT id, owner FROM wifi WHERE wifiAP = 0 UNION ALL "
       "SELECT id, owner FROM wifi WHERE wifiAP = 1",
       {}},
      {"union_dedup",
       "SELECT owner FROM wifi WHERE wifiAP = 0 UNION "
       "SELECT owner FROM wifi WHERE wifiAP = 1",
       {}},
      {"except",
       "SELECT id FROM wifi WHERE ts_time >= 28800 EXCEPT "
       "SELECT id FROM wifi WHERE wifiAP = 2",
       {}},
      {"join",
       "SELECT w.id, a.building FROM wifi w, aps a WHERE w.wifiAP = a.ap "
       "AND w.ts_time >= 32400",
       {}},
      {"group_agg",
       "SELECT owner, COUNT(*), MIN(ts_time), MAX(ts_time) FROM wifi "
       "GROUP BY owner",
       {}},
      {"global_agg", "SELECT COUNT(*), SUM(owner), AVG(owner) FROM wifi", {}},
  };
}

void ExpectRowsEqual(const std::vector<Row>& got,
                     const std::vector<Row>& expected, const char* label,
                     const char* path) {
  ASSERT_EQ(got.size(), expected.size()) << label << " (" << path << ")";
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].size(), expected[i].size())
        << label << " (" << path << ") row " << i;
    for (size_t j = 0; j < got[i].size(); ++j) {
      EXPECT_EQ(got[i][j], expected[i][j])
          << label << " (" << path << ") row " << i << " col " << j;
    }
  }
}

void RunEquivalenceSweep(EngineProfile profile) {
  ServerHarness h({}, profile);
  auto wire = h.Client("tok-alice");
  SieveSession session(&h.mw(), MakeMd("alice", "any"));

  for (const ShapedQuery& q : EquivalenceShapes()) {
    SCOPED_TRACE(q.label);
    auto prepared = session.Prepare(q.sql);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    auto expected = prepared->Execute(q.params);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    auto stmt = wire->Prepare(q.sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    EXPECT_EQ(stmt->parameter_count, q.params.size());

    // Materialized path.
    auto materialized = wire->Execute(stmt->id, q.params);
    ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
    EXPECT_TRUE(materialized->done);
    EXPECT_EQ(materialized->cursor_id, 0u);
    ASSERT_EQ(materialized->columns.size(),
              expected->schema.num_columns());
    for (size_t i = 0; i < materialized->columns.size(); ++i) {
      EXPECT_EQ(materialized->columns[i].first,
                expected->schema.column(i).name);
      EXPECT_EQ(materialized->columns[i].second,
                expected->schema.column(i).type);
    }
    ExpectRowsEqual(materialized->rows, expected->rows, q.label,
                    "materialized");

    // Chunked cursor path (a chunk size that never divides evenly).
    auto chunk = wire->Execute(stmt->id, q.params, /*chunk_rows=*/13);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    std::vector<Row> streamed = chunk->rows;
    while (!chunk->done) {
      auto next = wire->Fetch(chunk->cursor_id, 13);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      streamed.insert(streamed.end(), next->rows.begin(), next->rows.end());
      chunk->done = next->done;
    }
    ExpectRowsEqual(streamed, expected->rows, q.label, "cursor");

    ASSERT_TRUE(wire->CloseStmt(stmt->id).ok());
  }
}

TEST(ServerLoopbackTest, WireMatchesInProcessMySqlLike) {
  RunEquivalenceSweep(EngineProfile::MySqlLike());
}

TEST(ServerLoopbackTest, WireMatchesInProcessPostgresLike) {
  RunEquivalenceSweep(EngineProfile::PostgresLike());
}

TEST(ServerLoopbackTest, EveryCampusIdentitySeesItsOwnRows) {
  ServerHarness h;
  struct Expectation {
    const char* token;
    int64_t distinct_owners;
  };
  // alice: owners 0..4; bob: owner 5; carol (via students): owner 6.
  for (const Expectation& e : {Expectation{"tok-alice", 5},
                               Expectation{"tok-bob", 1},
                               Expectation{"tok-carol", 1}}) {
    SCOPED_TRACE(e.token);
    auto c = h.Client(e.token);
    auto stmt = c->Prepare("SELECT owner FROM wifi GROUP BY owner");
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto res = c->Execute(stmt->id);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(static_cast<int64_t>(res->rows.size()), e.distinct_owners);
  }
}

TEST(ServerLoopbackTest, ManyConnectionsFewWorkersAllComplete) {
  // 24 concurrent connections multiplexed onto 3 workers: every querier
  // gets exact results (session-pool multiplexing correctness, small-
  // scale version of the closed-loop bench).
  ServerOptions opts;
  opts.num_workers = 3;
  ServerHarness h(opts);
  constexpr int kClients = 24;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&h, &failures, i] {
      SieveClient c;
      if (!c.Connect("127.0.0.1", h.port()).ok() ||
          !c.Hello("tok-alice").ok()) {
        failures.fetch_add(1);
        return;
      }
      auto stmt = c.Prepare("SELECT COUNT(*) FROM wifi WHERE owner = ?");
      if (!stmt.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int iter = 0; iter < 10; ++iter) {
        auto res = c.Execute(stmt->id, {Value::Int((i + iter) % 5)});
        if (!res.ok() || res->rows.size() != 1 ||
            !(res->rows[0][0] == Value::Int(60))) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(h.server().stats().queries_executed,
            static_cast<uint64_t>(kClients * 10));
}

}  // namespace
}  // namespace sieve::server
