#include "plan/optimizer.h"

#include <gtest/gtest.h>

#include "engine/database.h"
#include "parser/parser.h"

namespace sieve {
namespace {

// 10k rows, skewed `hot` column, uniform `a`, indexed a/hot/owner.
class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("t", Schema({{"id", DataType::kInt},
                                             {"a", DataType::kInt},
                                             {"hot", DataType::kInt},
                                             {"owner", DataType::kInt},
                                             {"s", DataType::kString}}))
                    .ok());
    for (int i = 0; i < 10000; ++i) {
      ASSERT_TRUE(db_.Insert("t", Row{Value::Int(i), Value::Int(i % 1000),
                                      Value::Int(i < 9000 ? 0 : i),
                                      Value::Int(i % 100),
                                      Value::String(i % 2 ? "x" : "y")})
                      .ok());
    }
    for (const char* col : {"a", "hot", "owner"}) {
      ASSERT_TRUE(db_.CreateIndex("t", col).ok());
    }
    ASSERT_TRUE(db_.Analyze().ok());
  }

  AccessPathInfo Explain(const std::string& sql) {
    auto info = db_.ExplainSql(sql);
    EXPECT_TRUE(info.ok()) << sql;
    EXPECT_EQ(info->tables.size(), 1u);
    return info->tables[0];
  }

  Database db_;
};

TEST_F(OptimizerTest, PicksMostSelectiveIndex) {
  // owner = k selects 1%, a = k selects 0.1%: must pick `a`.
  auto info = Explain("SELECT * FROM t WHERE owner = 5 AND a = 5");
  EXPECT_EQ(info.kind, AccessPathInfo::Kind::kIndexRange);
  EXPECT_EQ(info.index_column, "a");
}

TEST_F(OptimizerTest, SkewAwareEqualityEstimates) {
  // hot = 0 covers 90% of rows: a seq scan must win.
  auto info = Explain("SELECT * FROM t WHERE hot = 0");
  EXPECT_EQ(info.kind, AccessPathInfo::Kind::kSeqScan);
  // hot = 9500 is a singleton: index.
  auto rare = Explain("SELECT * FROM t WHERE hot = 9500");
  EXPECT_EQ(rare.kind, AccessPathInfo::Kind::kIndexRange);
  EXPECT_EQ(rare.index_column, "hot");
}

TEST_F(OptimizerTest, WideRangeFallsBackToSeqScan) {
  auto info = Explain("SELECT * FROM t WHERE a >= 0");
  EXPECT_EQ(info.kind, AccessPathInfo::Kind::kSeqScan);
}

TEST_F(OptimizerTest, InListUsesIndexUnion) {
  auto info = Explain("SELECT * FROM t WHERE a IN (1, 2, 3)");
  EXPECT_EQ(info.kind, AccessPathInfo::Kind::kIndexUnion);
  EXPECT_EQ(info.num_ranges, 3u);
}

TEST_F(OptimizerTest, ForceIndexOverridesCostChoice) {
  // `a = 5` is the better index, but the hint pins `owner`.
  auto info = Explain(
      "SELECT * FROM t FORCE INDEX (owner) WHERE owner = 5 AND a = 5");
  EXPECT_EQ(info.kind, AccessPathInfo::Kind::kIndexRange);
  EXPECT_EQ(info.index_column, "owner");
}

TEST_F(OptimizerTest, ForceIndexWithoutSargFallsBack) {
  // Hinted column has no usable predicate: seq scan.
  auto info = Explain("SELECT * FROM t FORCE INDEX (owner) WHERE s = 'x'");
  EXPECT_EQ(info.kind, AccessPathInfo::Kind::kSeqScan);
}

TEST_F(OptimizerTest, UseIndexEmptyForcesSeqScan) {
  auto info = Explain("SELECT * FROM t USE INDEX () WHERE a = 5");
  EXPECT_EQ(info.kind, AccessPathInfo::Kind::kSeqScan);
}

TEST_F(OptimizerTest, NotEqualIsNotSargable) {
  auto info = Explain("SELECT * FROM t WHERE a != 5");
  EXPECT_EQ(info.kind, AccessPathInfo::Kind::kSeqScan);
}

TEST_F(OptimizerTest, ReversedComparisonIsSargable) {
  auto info = Explain("SELECT * FROM t WHERE 5 >= a");
  EXPECT_EQ(info.kind, AccessPathInfo::Kind::kIndexRange);
  EXPECT_EQ(info.index_column, "a");
  auto result = db_.ExecuteSql("SELECT COUNT(*) FROM t WHERE 5 >= a");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt(), 60);  // a in {0..5}: 6 values x 10
}

TEST_F(OptimizerTest, EstimatePredicateSelectivity) {
  Optimizer optimizer(&db_.catalog(), &db_.profile());
  auto pred = Parser::ParseExpression("a BETWEEN 0 AND 99");
  ASSERT_TRUE(pred.ok());
  double sel = optimizer.EstimatePredicateSelectivity("t", **pred);
  EXPECT_NEAR(sel, 0.1, 0.03);
  auto unindexed = Parser::ParseExpression("s = 'x'");
  ASSERT_TRUE(unindexed.ok());
  EXPECT_DOUBLE_EQ(optimizer.EstimatePredicateSelectivity("t", **unindexed),
                   1.0);
}

TEST_F(OptimizerTest, ExplainSelectivityTracksRange) {
  auto narrow = Explain("SELECT * FROM t WHERE a BETWEEN 0 AND 9");
  auto wide = Explain("SELECT * FROM t WHERE a BETWEEN 0 AND 99");
  EXPECT_LT(narrow.selectivity, wide.selectivity);
  EXPECT_NEAR(narrow.estimated_rows, 100, 60);
}

TEST_F(OptimizerTest, BitmapOrRequiresPostgresProfile) {
  // MySQL-like: top-level OR cannot use the bitmap union.
  auto info =
      Explain("SELECT * FROM t WHERE (a = 1) OR (a = 2) OR (owner = 3)");
  EXPECT_EQ(info.kind, AccessPathInfo::Kind::kSeqScan);

  db_.set_profile(EngineProfile::PostgresLike());
  auto pg =
      Explain("SELECT * FROM t WHERE (a = 1) OR (a = 2) OR (owner = 3)");
  EXPECT_EQ(pg.kind, AccessPathInfo::Kind::kIndexUnion);
  EXPECT_EQ(pg.num_ranges, 3u);
  // Results identical under both plans.
  auto result =
      db_.ExecuteSql("SELECT * FROM t WHERE (a = 1) OR (a = 2) OR (owner = 3)");
  ASSERT_TRUE(result.ok());
  // a=1 and a=2 each select 10 rows (i % 1000), owner=3 selects 100
  // (i % 100); the residue classes cannot overlap.
  EXPECT_EQ(result->size(), 120u);
}

TEST_F(OptimizerTest, BitmapOrNotUsedWhenDisjunctUnindexable) {
  db_.set_profile(EngineProfile::PostgresLike());
  auto info = Explain("SELECT * FROM t WHERE (a = 1) OR (s = 'x')");
  EXPECT_EQ(info.kind, AccessPathInfo::Kind::kSeqScan);
}

}  // namespace
}  // namespace sieve
