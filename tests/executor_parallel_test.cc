// Unit tests for the parallel + vectorized execution subsystem: the
// thread pool itself (including nested fan-out from inside pool tasks),
// partition/morsel boundary edge cases on every partitionable scan,
// interior-operator parallelism (UNION children, hash-join probe,
// hash-aggregate partials, the EXCEPT minuend probe) with its edge cases,
// RowBatch/NextBatch semantics (batch boundaries at partition edges,
// empty morsels, batch_size = 1 degeneracy, mid-batch timeouts),
// race-free ExecStats merging, and cooperative timeout cancellation while
// a parallel scan is in flight.

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "tests/test_fixtures.h"

namespace sieve {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.Submit([&counter] { ++counter; });
    }
    // Destructor joins only after every queued task ran.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptionAfterBarrier) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  bool caught = false;
  try {
    pool.ParallelFor(8, [&completed](size_t i) {
      if (i == 3) throw std::runtime_error("partition 3");
      ++completed;
    });
  } catch (const ParallelForTaskError& e) {
    caught = true;
    // The wrapper names the failing task and carries the original message;
    // the original exception is recoverable as the nested exception.
    EXPECT_EQ(e.task_index(), 3u);
    EXPECT_NE(std::string(e.what()).find("parallel task 3 failed"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("partition 3"), std::string::npos)
        << e.what();
    EXPECT_THROW(std::rethrow_if_nested(e), std::runtime_error);
  }
  EXPECT_TRUE(caught);
  // Every non-throwing task still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 7);
}

TEST(ThreadPoolTest, ParallelForFirstFailureByIndexIsDeterministic) {
  // When several tasks throw, the barrier always rethrows the lowest
  // index regardless of scheduling order.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    try {
      pool.ParallelFor(16, [](size_t i) {
        throw std::runtime_error("task " + std::to_string(i));
      });
      FAIL() << "expected a ParallelForTaskError";
    } catch (const ParallelForTaskError& e) {
      EXPECT_EQ(e.task_index(), 0u) << e.what();
    }
  }
}

TEST(ThreadPoolTest, ParallelForWrapsNonStdExceptions) {
  ThreadPool pool(2);
  try {
    pool.ParallelFor(2, [](size_t i) {
      if (i == 1) throw 42;  // not a std::exception
    });
    FAIL() << "expected a ParallelForTaskError";
  } catch (const ParallelForTaskError& e) {
    EXPECT_EQ(e.task_index(), 1u);
    EXPECT_NE(std::string(e.what()).find("unknown exception"),
              std::string::npos)
        << e.what();
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Interior operators fan out from inside pool tasks; without the
  // help-running caller this would deadlock as soon as every worker is
  // occupied by an outer task. A 1-thread pool is the worst case.
  for (size_t pool_size : {size_t{1}, size_t{2}}) {
    ThreadPool pool(pool_size);
    std::atomic<int> inner_runs{0};
    pool.ParallelFor(4, [&pool, &inner_runs](size_t) {
      pool.ParallelFor(4, [&inner_runs](size_t) { ++inner_runs; });
    });
    EXPECT_EQ(inner_runs.load(), 16) << "pool_size=" << pool_size;
  }
}

TEST(ThreadPoolTest, NestedParallelForPropagatesInnerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(2,
                                [&pool](size_t) {
                                  pool.ParallelFor(2, [](size_t j) {
                                    if (j == 1) {
                                      throw std::runtime_error("inner");
                                    }
                                  });
                                }),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Partition boundary edge cases (operator level)
// ---------------------------------------------------------------------------

// Builds `num_rows` rows (id, id % 7) into table "t" of a fresh database,
// with an index on id, deleting every row whose id is in `deleted`.
std::unique_ptr<Database> MakeTable(int num_rows,
                                    const std::vector<RowId>& deleted = {}) {
  auto db = std::make_unique<Database>();
  Schema schema({{"id", DataType::kInt}, {"val", DataType::kInt}});
  EXPECT_TRUE(db->CreateTable("t", std::move(schema)).ok());
  for (int i = 0; i < num_rows; ++i) {
    EXPECT_TRUE(db->Insert("t", Row{Value::Int(i), Value::Int(i % 7)}).ok());
  }
  EXPECT_TRUE(db->CreateIndex("t", "id").ok());
  for (RowId id : deleted) EXPECT_TRUE(db->Delete("t", id).ok());
  EXPECT_TRUE(db->Analyze().ok());
  return db;
}

std::vector<std::string> DrainToStrings(Operator* op, ExecContext* ctx) {
  std::vector<std::string> out;
  Status open = op->Open(ctx);
  EXPECT_TRUE(open.ok()) << open.ToString();
  Row row;
  while (true) {
    auto has = op->Next(ctx, &row);
    EXPECT_TRUE(has.ok()) << has.status().ToString();
    if (!has.ok() || !*has) break;
    out.push_back(RowFingerprint(row));
  }
  return out;
}

// Drains the serial operator and `num_parts` partition clones of
// `partitioned`, asserting the concatenated partitions reproduce the
// serial stream exactly (same rows, same order) and that per-partition
// stats sum to the serial stats.
void ExpectPartitionsMatchSerial(Operator* serial, Operator* partitioned,
                                 size_t num_parts, Catalog* catalog) {
  ExecStats serial_stats;
  ExecContext serial_ctx;
  serial_ctx.catalog = catalog;
  serial_ctx.stats = &serial_stats;
  std::vector<std::string> expected = DrainToStrings(serial, &serial_ctx);

  std::vector<OperatorPtr> parts;
  ASSERT_TRUE(partitioned->CreatePartitions(num_parts, &parts));
  ASSERT_EQ(parts.size(), num_parts);
  ExecStats merged_stats;
  std::vector<std::string> merged;
  for (auto& part : parts) {
    ExecStats part_stats;
    ExecContext part_ctx;
    part_ctx.catalog = catalog;
    part_ctx.stats = &part_stats;
    for (auto& fp : DrainToStrings(part.get(), &part_ctx)) {
      merged.push_back(std::move(fp));
    }
    merged_stats.Add(part_stats);
  }
  EXPECT_EQ(merged, expected);
  EXPECT_EQ(merged_stats, serial_stats) << "merged=" << merged_stats.ToString()
                                        << " serial=" << serial_stats.ToString();
}

TEST(PartitionBoundaryTest, SeqScanEmptyTable) {
  auto db = MakeTable(0);
  TableEntry* entry = db->catalog().Get("t").value();
  SeqScanOperator serial(entry, "");
  SeqScanOperator partitioned(entry, "");
  ExpectPartitionsMatchSerial(&serial, &partitioned, 4, &db->catalog());
}

TEST(PartitionBoundaryTest, SeqScanFewerRowsThanPartitions) {
  auto db = MakeTable(3);
  TableEntry* entry = db->catalog().Get("t").value();
  SeqScanOperator serial(entry, "");
  SeqScanOperator partitioned(entry, "");
  ExpectPartitionsMatchSerial(&serial, &partitioned, 8, &db->catalog());
}

TEST(PartitionBoundaryTest, SeqScanNonDivisibleRowCount) {
  auto db = MakeTable(10);
  TableEntry* entry = db->catalog().Get("t").value();
  SeqScanOperator serial(entry, "");
  SeqScanOperator partitioned(entry, "");
  ExpectPartitionsMatchSerial(&serial, &partitioned, 4, &db->catalog());
}

TEST(PartitionBoundaryTest, SeqScanTombstonesAcrossBoundaries) {
  auto db = MakeTable(100, {0, 24, 25, 26, 49, 50, 74, 99});
  TableEntry* entry = db->catalog().Get("t").value();
  SeqScanOperator serial(entry, "");
  SeqScanOperator partitioned(entry, "");
  ExpectPartitionsMatchSerial(&serial, &partitioned, 4, &db->catalog());
}

TEST(PartitionBoundaryTest, IndexRangeScanSharedProbe) {
  auto db = MakeTable(1000, {150, 151, 200});
  TableEntry* entry = db->catalog().Get("t").value();
  IndexRange range;
  range.column = "id";
  range.lo = Value::Int(100);
  range.hi = Value::Int(333);
  IndexRangeScanOperator serial(entry, "", range);
  IndexRangeScanOperator partitioned(entry, "", range);
  ExpectPartitionsMatchSerial(&serial, &partitioned, 4, &db->catalog());
}

TEST(PartitionBoundaryTest, IndexRangeScanEmptyResult) {
  auto db = MakeTable(100);
  TableEntry* entry = db->catalog().Get("t").value();
  IndexRange range;
  range.column = "id";
  range.lo = Value::Int(5000);
  range.hi = Value::Int(6000);
  IndexRangeScanOperator serial(entry, "", range);
  IndexRangeScanOperator partitioned(entry, "", range);
  ExpectPartitionsMatchSerial(&serial, &partitioned, 4, &db->catalog());
}

TEST(PartitionBoundaryTest, IndexUnionBitmapScanSharedProbe) {
  auto db = MakeTable(1000, {42, 43});
  TableEntry* entry = db->catalog().Get("t").value();
  IndexRange r1;
  r1.column = "id";
  r1.lo = Value::Int(10);
  r1.hi = Value::Int(120);
  IndexRange r2;
  r2.column = "id";
  r2.lo = Value::Int(100);  // overlaps r1: the bitmap dedups
  r2.hi = Value::Int(400);
  IndexUnionBitmapScanOperator serial(entry, "", {r1, r2});
  IndexUnionBitmapScanOperator partitioned(entry, "", {r1, r2});
  ExpectPartitionsMatchSerial(&serial, &partitioned, 3, &db->catalog());
}

TEST(PartitionBoundaryTest, FilterAndProjectPartitionWithScan) {
  auto db = MakeTable(500);
  // Full pipeline through the SQL layer: Project(Filter(SeqScan)).
  auto serial = db->ExecuteSql("SELECT val FROM t WHERE val < 3");
  auto parallel = db->ExecuteSql("SELECT val FROM t WHERE val < 3", nullptr,
                                 0.0, 4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->rows.size(), parallel->rows.size());
  for (size_t i = 0; i < serial->rows.size(); ++i) {
    EXPECT_EQ(RowFingerprint(serial->rows[i]), RowFingerprint(parallel->rows[i]));
  }
  EXPECT_EQ(serial->stats, parallel->stats)
      << "serial=" << serial->stats.ToString()
      << " parallel=" << parallel->stats.ToString();
}

// ---------------------------------------------------------------------------
// Interior operators: UNION / hash join / hash aggregate edge cases
// ---------------------------------------------------------------------------

// Runs `sql` serially and at num_threads {2, 4, 8}; the parallel runs must
// reproduce the serial rows, row order and ExecStats totals exactly.
void ExpectParallelMatchesSerial(Database* db, const std::string& sql) {
  auto serial = db->ExecuteSql(sql);
  ASSERT_TRUE(serial.ok()) << sql << " -> " << serial.status().ToString();
  std::vector<std::string> expected;
  for (const auto& row : serial->rows) expected.push_back(RowFingerprint(row));
  for (int threads : {2, 4, 8}) {
    auto parallel = db->ExecuteSql(sql, nullptr, 0.0, threads);
    ASSERT_TRUE(parallel.ok())
        << sql << " threads=" << threads << " -> "
        << parallel.status().ToString();
    std::vector<std::string> got;
    for (const auto& row : parallel->rows) got.push_back(RowFingerprint(row));
    EXPECT_EQ(got, expected) << sql << " threads=" << threads;
    EXPECT_EQ(serial->stats, parallel->stats)
        << sql << " threads=" << threads
        << " serial=" << serial->stats.ToString()
        << " parallel=" << parallel->stats.ToString();
  }
}

TEST(InteriorOperatorTest, UnionWithEmptyBranch) {
  auto db = MakeTable(200);
  // Middle arm produces no rows; arms 1 and 3 overlap so UNION also dedups
  // across the empty branch.
  ExpectParallelMatchesSerial(
      db.get(),
      "SELECT val FROM t WHERE val < 2 UNION SELECT val FROM t WHERE id < 0 "
      "UNION SELECT val FROM t WHERE val < 4");
  ExpectParallelMatchesSerial(
      db.get(),
      "SELECT * FROM t WHERE id < 0 UNION ALL SELECT * FROM t WHERE val = 1");
}

TEST(InteriorOperatorTest, UnionDedupUnderThreadsIsFirstOccurrence) {
  // Projecting 5000 rows onto val ∈ [0, 7) makes every arm duplicate-heavy;
  // the concurrent dedup set must keep exactly the serial first occurrence
  // of each distinct row, in serial order.
  auto db = MakeTable(5000);
  ExpectParallelMatchesSerial(
      db.get(),
      "SELECT val FROM t WHERE val < 5 UNION SELECT val FROM t WHERE val > 1");
  ExpectParallelMatchesSerial(
      db.get(),
      "SELECT val FROM t WHERE val < 5 UNION ALL "
      "SELECT val FROM t WHERE val > 1");
}

TEST(InteriorOperatorTest, HashJoinZeroRowProbeSide) {
  auto db = MakeTable(100);
  Schema schema({{"id", DataType::kInt}, {"tag", DataType::kInt}});
  ASSERT_TRUE(db->CreateTable("e", std::move(schema)).ok());  // stays empty
  // Probe (left) side empty, build side populated — and the reverse.
  ExpectParallelMatchesSerial(
      db.get(), "SELECT * FROM e, t WHERE e.id = t.id");
  ExpectParallelMatchesSerial(
      db.get(), "SELECT * FROM t, e WHERE t.id = e.id");
}

TEST(InteriorOperatorTest, HashJoinParallelProbeMatchesSerial) {
  auto db = MakeTable(2000, {10, 999});
  Schema schema({{"v", DataType::kInt}, {"name", DataType::kString}});
  ASSERT_TRUE(db->CreateTable("names", std::move(schema)).ok());
  const char* names[] = {"zero", "one", "two", "three"};
  for (int v = 0; v < 4; ++v) {
    ASSERT_TRUE(
        db->Insert("names", Row{Value::Int(v), Value::String(names[v])}).ok());
  }
  ASSERT_TRUE(db->Analyze().ok());
  // Multiple probe rows share each build key; match order must survive.
  ExpectParallelMatchesSerial(
      db.get(), "SELECT t.id, names.name FROM t, names WHERE t.val = names.v");
}

TEST(InteriorOperatorTest, AggregateSingleGroup) {
  auto db = MakeTable(1000);
  ExpectParallelMatchesSerial(
      db.get(),
      "SELECT val, COUNT(*) AS n, SUM(id) AS s, MIN(id) AS mn, "
      "MAX(id) AS mx, AVG(id) AS av FROM t WHERE val = 3 GROUP BY val");
}

TEST(InteriorOperatorTest, AggregateEmptyInput) {
  auto db = MakeTable(500);
  // Global aggregate over zero rows still yields one row (COUNT = 0,
  // SUM/MIN/MAX/AVG NULL) — also under partial-state merge.
  ExpectParallelMatchesSerial(
      db.get(),
      "SELECT COUNT(*) AS n, SUM(val) AS s, MIN(val) AS mn, "
      "MAX(val) AS mx, AVG(val) AS av FROM t WHERE val > 100");
  // Grouped aggregate over zero rows yields zero rows.
  ExpectParallelMatchesSerial(
      db.get(),
      "SELECT val, COUNT(*) AS n FROM t WHERE val > 100 GROUP BY val");
}

TEST(InteriorOperatorTest, AggregateManyGroupsAcrossPartitions) {
  auto db = MakeTable(5000, {3, 4444});
  ExpectParallelMatchesSerial(
      db.get(),
      "SELECT val, COUNT(*) AS n, SUM(id) AS s, MIN(id) AS mn, "
      "MAX(id) AS mx, AVG(id) AS av FROM t GROUP BY val");
}

TEST(InteriorOperatorTest, CteMaterializesOnceAcrossWorkers) {
  auto db = MakeTable(3000);
  // The CTE is referenced by both UNION arms; the shared CteCache must
  // materialize it exactly once (the stats equality below would fail if a
  // worker re-materialized it).
  ExpectParallelMatchesSerial(
      db.get(),
      "WITH p AS (SELECT * FROM t WHERE val < 5) "
      "SELECT val FROM p WHERE id < 1000 UNION "
      "SELECT val FROM p WHERE id > 2000");
}

// ---------------------------------------------------------------------------
// Stats merging and timeout cancellation (engine level)
// ---------------------------------------------------------------------------

TEST(ParallelExecutionTest, StatsTotalsMatchSerialAcrossThreadCounts) {
  auto db = MakeTable(5000, {7, 1234, 4999});
  const std::string sql = "SELECT * FROM t WHERE val IN (1, 4, 6)";
  auto serial = db->ExecuteSql(sql);
  ASSERT_TRUE(serial.ok());
  ASSERT_GT(serial->rows.size(), 0u);
  for (int threads : {2, 4, 8}) {
    auto parallel = db->ExecuteSql(sql, nullptr, 0.0, threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_EQ(serial->rows.size(), parallel->rows.size());
    for (size_t i = 0; i < serial->rows.size(); ++i) {
      EXPECT_EQ(RowFingerprint(serial->rows[i]),
                RowFingerprint(parallel->rows[i]));
    }
    EXPECT_EQ(serial->stats, parallel->stats)
        << "threads=" << threads << " serial=" << serial->stats.ToString()
        << " parallel=" << parallel->stats.ToString();
  }
}

TEST(ParallelExecutionTest, TimeoutCancelsParallelScan) {
  auto db = MakeTable(50000);
  auto result =
      db->ExecuteSql("SELECT * FROM t WHERE val < 5", nullptr, 1e-9, 4);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST(ParallelExecutionTest, CancelFlagShortCircuitsCheckTimeout) {
  std::atomic<bool> cancel{true};
  ExecContext ctx;
  ctx.cancel = &cancel;
  Status st = ctx.CheckTimeout();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTimeout);
}

// ---------------------------------------------------------------------------
// Middleware: guarded execution (including the Δ operator) in parallel
// ---------------------------------------------------------------------------

std::multiset<std::string> Fingerprints(const ResultSet& rs) {
  std::multiset<std::string> out;
  for (const auto& row : rs.rows) out.insert(RowFingerprint(row));
  return out;
}

TEST(ParallelExecutionTest, DeltaGuardExecutionMatchesSerial) {
  // ~150 policies for the same owner pile onto one guard, pushing its
  // partition past the Δ crossover — so this exercises concurrent Δ UDF
  // evaluation (shared delta partition, once-bound object expressions).
  MiniCampus campus(EngineProfile::PostgresLike());
  SieveMiddleware sieve(&campus.db(), &campus.groups());
  ASSERT_TRUE(sieve.Init().ok());
  for (int i = 0; i < 150; ++i) {
    int t1 = 6 + i % 10;
    Policy p = campus.MakePolicy(0, "alice", "Analytics", t1, t1 + 2, i % 6);
    ASSERT_TRUE(sieve.AddPolicy(std::move(p)).ok());
  }
  ASSERT_TRUE(sieve.AddPolicy(campus.MakePolicy(3, "alice", "Analytics")).ok());

  QueryMetadata md{"alice", "Analytics"};
  const std::string sql = "SELECT * FROM wifi WHERE wifiAP = 2";
  auto rewrite = sieve.Rewrite(sql, md);
  ASSERT_TRUE(rewrite.ok());
  size_t delta_guards = 0;
  for (const auto& info : rewrite->tables) delta_guards += info.num_delta_guards;
  ASSERT_GT(delta_guards, 0u) << "test corpus failed to trigger the Δ path";

  auto serial = sieve.Execute(sql, md);
  ASSERT_TRUE(serial.ok());
  auto oracle = sieve.ExecuteReference(sql, md);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(Fingerprints(*serial), Fingerprints(*oracle));
  for (int threads : {2, 4, 8}) {
    SieveOptions options = sieve.options();
    options.num_threads = threads;
    ASSERT_TRUE(sieve.set_options(options).ok());
    auto parallel = sieve.Execute(sql, md);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(Fingerprints(*serial), Fingerprints(*parallel))
        << "threads=" << threads;
    EXPECT_EQ(serial->stats, parallel->stats)
        << "threads=" << threads << " serial=" << serial->stats.ToString()
        << " parallel=" << parallel->stats.ToString();
  }
}

// ---------------------------------------------------------------------------
// Vectorized batches and morsels
// ---------------------------------------------------------------------------

TEST(RowBatchTest, ColumnarAppendAndMaterialize) {
  RowBatch batch(2);
  EXPECT_EQ(batch.capacity(), 2u);
  EXPECT_TRUE(batch.empty());
  EXPECT_FALSE(batch.full());

  batch.PushRow(Row{Value::Int(7), Value::String("payload")});
  batch.PushRow(Row{Value::Null(), Value::String("other")});
  EXPECT_TRUE(batch.full());
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.num_columns(), 2u);

  // Cells come back bit-identical through ValueAt and MaterializeRow.
  EXPECT_EQ(batch.ValueAt(0, 0), Value::Int(7));
  EXPECT_EQ(batch.ValueAt(1, 0), Value::Null());
  EXPECT_EQ(batch.ValueAt(1, 1), Value::String("other"));
  Row row;
  batch.MaterializeRow(0, &row);
  EXPECT_EQ(row, (Row{Value::Int(7), Value::String("payload")}));

  // The int column decays to a typed vector readable by kernels.
  const RowBatch::Column& col0 = batch.column(0);
  ASSERT_FALSE(col0.generic);
  EXPECT_EQ(col0.type, DataType::kInt);
  EXPECT_EQ(col0.i64[0], 7);
  EXPECT_NE(col0.nulls[1], 0);

  // clear() keeps the arena; the batch is reusable with a fresh layout.
  batch.clear();
  EXPECT_TRUE(batch.empty());
  batch.PushRow(Row{Value::Double(1.5), Value::Null()});
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.ValueAt(0, 0), Value::Double(1.5));

  // Zero capacity clamps to one row.
  RowBatch clamped(0);
  EXPECT_EQ(clamped.capacity(), 1u);
}

TEST(RowBatchTest, SelectionVectorNarrowsWithoutCopying) {
  RowBatch batch(8);
  for (int i = 0; i < 8; ++i) {
    batch.PushRow(Row{Value::Int(i)});
  }
  EXPECT_EQ(batch.selection(), nullptr);  // dense until narrowed

  // Keep the odd rows; logical order must follow physical order.
  uint8_t pass1[] = {0, 1, 0, 1, 0, 1, 0, 1};
  batch.NarrowToPassing(pass1);
  ASSERT_EQ(batch.size(), 4u);
  ASSERT_NE(batch.selection(), nullptr);
  for (size_t k = 0; k < batch.size(); ++k) {
    EXPECT_EQ(batch.ValueAt(k, 0), Value::Int(static_cast<int>(2 * k + 1)));
  }

  // Narrowing an already-narrowed batch composes (selection of selection).
  uint8_t pass2[] = {1, 0, 1, 0};
  batch.NarrowToPassing(pass2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.ValueAt(0, 0), Value::Int(1));
  EXPECT_EQ(batch.ValueAt(1, 0), Value::Int(5));

  // All-filtered leaves a valid empty batch.
  uint8_t none[] = {0, 0};
  batch.NarrowToPassing(none);
  EXPECT_TRUE(batch.empty());
}

TEST(RowBatchTest, ExternalRowsShareStorage) {
  // AppendExternalRow serves string cells as views into the caller's
  // stable storage; MaterializeRow deep-copies them back out.
  std::vector<Row> stable;
  stable.push_back(Row{Value::String("alpha"), Value::Int(1)});
  stable.push_back(Row{Value::String("beta"), Value::Null()});

  RowBatch batch(4);
  for (const Row& r : stable) batch.AppendExternalRow(r);
  ASSERT_EQ(batch.size(), 2u);
  const RowBatch::Column& col0 = batch.column(0);
  ASSERT_FALSE(col0.generic);
  EXPECT_EQ(col0.type, DataType::kString);
  EXPECT_EQ(col0.str[0].data(), stable[0][0].AsString().data());  // a view
  Row out;
  batch.MaterializeRow(1, &out);
  EXPECT_EQ(out, stable[1]);
}

TEST(RowBatchTest, MixedTypeColumnDemotesToGenericCells) {
  // A column whose cells disagree on type falls back to generic Value
  // storage; reads must stay bit-identical.
  RowBatch batch(4);
  batch.PushRow(Row{Value::Int(1)});
  batch.PushRow(Row{Value::String("oops")});
  batch.PushRow(Row{Value::Double(2.5)});
  const RowBatch::Column& col = batch.column(0);
  EXPECT_TRUE(col.generic);
  EXPECT_EQ(batch.ValueAt(0, 0), Value::Int(1));
  EXPECT_EQ(batch.ValueAt(1, 0), Value::String("oops"));
  EXPECT_EQ(batch.ValueAt(2, 0), Value::Double(2.5));
}

TEST(RowBatchTest, EffectiveBatchSizePicksAdaptiveWidth) {
  // Explicit sizes pass through untouched.
  EXPECT_EQ(EffectiveBatchSize(1, 100), 1u);
  EXPECT_EQ(EffectiveBatchSize(777, 3), 777u);
  // Adaptive (0): narrow rows get big batches, wide rows small ones,
  // clamped to [64, 1024].
  EXPECT_EQ(EffectiveBatchSize(0, 1), 1024u);
  EXPECT_EQ(EffectiveBatchSize(0, 0), 1024u);  // width unknown -> max
  EXPECT_EQ(EffectiveBatchSize(0, 1000), 64u);
  size_t mid = EffectiveBatchSize(0, 8);
  EXPECT_GE(mid, 64u);
  EXPECT_LE(mid, 1024u);
}

TEST(PlanPartitionCountTest, SizesMorselsByInputRows) {
  ExecContext ctx;
  ctx.num_threads = 4;

  auto db = MakeTable(100);  // tiny: one morsel, not 4 near-empty ones
  TableEntry* entry = db->catalog().Get("t").value();
  SeqScanOperator tiny(entry, "");
  EXPECT_EQ(PlanPartitionCount(tiny, ctx), 1u);

  auto big_db = MakeTable(100000);  // large: capped at threads * 8
  TableEntry* big_entry = big_db->catalog().Get("t").value();
  SeqScanOperator big(big_entry, "");
  EXPECT_EQ(PlanPartitionCount(big, ctx), 32u);

  // Mid-size: one morsel per ~batch of rows.
  auto mid_db = MakeTable(5000);
  TableEntry* mid_entry = mid_db->catalog().Get("t").value();
  SeqScanOperator mid(mid_entry, "");
  EXPECT_EQ(PlanPartitionCount(mid, ctx), 4u);

  // Unknown size (a not-yet-materialized subtree): one slice per worker.
  MaterializedScanOperator unknown("k", "", nullptr);
  EXPECT_EQ(PlanPartitionCount(unknown, ctx), 4u);
}

// Compares ExecuteSql at (threads, batch) against the serial
// row-at-a-time reference (threads = 1, batch = 1): rows, order, stats.
void ExpectModeMatchesReference(Database* db, const std::string& sql,
                                int threads, int batch) {
  auto reference = db->ExecuteSql(sql, nullptr, 0.0, 1, 1);
  ASSERT_TRUE(reference.ok()) << sql << " -> "
                              << reference.status().ToString();
  auto swept = db->ExecuteSql(sql, nullptr, 0.0, threads, batch);
  ASSERT_TRUE(swept.ok()) << sql << " threads=" << threads
                          << " batch=" << batch << " -> "
                          << swept.status().ToString();
  ASSERT_EQ(reference->rows.size(), swept->rows.size())
      << sql << " threads=" << threads << " batch=" << batch;
  for (size_t i = 0; i < reference->rows.size(); ++i) {
    EXPECT_EQ(RowFingerprint(reference->rows[i]),
              RowFingerprint(swept->rows[i]))
        << sql << " threads=" << threads << " batch=" << batch << " row " << i;
  }
  EXPECT_EQ(reference->stats, swept->stats)
      << sql << " threads=" << threads << " batch=" << batch
      << " reference=" << reference->stats.ToString()
      << " swept=" << swept->stats.ToString();
}

TEST(BatchExecutionTest, BatchBoundaryExactlyAtPartitionEdge) {
  // 4096 slots split into 2 morsels of 2048 = exactly 2 batches of 1024
  // (and exactly 32 batches of 64): the end-of-morsel and end-of-batch
  // edges coincide, so an off-by-one in either loop shows up as a lost or
  // duplicated boundary row.
  auto db = MakeTable(4096);
  for (int batch : {64, 1024}) {
    ExpectModeMatchesReference(db.get(), "SELECT * FROM t WHERE val < 5", 2,
                               batch);
    ExpectModeMatchesReference(db.get(), "SELECT val FROM t", 2, batch);
  }
}

TEST(BatchExecutionTest, EmptyMorselsFromSparsePartitions) {
  // 3 live rows sliced into 8 partition clones: most morsels drain zero
  // rows, and their NextBatch must report exhaustion without emitting an
  // empty batch as data.
  auto db = MakeTable(3);
  TableEntry* entry = db->catalog().Get("t").value();
  SeqScanOperator serial(entry, "");
  SeqScanOperator partitioned(entry, "");
  ExpectPartitionsMatchSerial(&serial, &partitioned, 8, &db->catalog());

  // Whole-pipeline version: tombstone a slot so a mid-table morsel is
  // empty even though its slot range is not.
  auto sparse = MakeTable(4000, {1000, 1001, 1002, 1003});
  ExpectModeMatchesReference(sparse.get(), "SELECT * FROM t WHERE val = 1", 8,
                             1024);
}

TEST(BatchExecutionTest, BatchSizeOneReproducesLegacyRowAtATime) {
  auto db = MakeTable(3000, {5, 2999});
  const char* queries[] = {
      "SELECT * FROM t WHERE val IN (1, 4)",
      "SELECT val FROM t WHERE id < 100 UNION SELECT val FROM t",
      "SELECT val, COUNT(*) AS n FROM t GROUP BY val",
      "SELECT * FROM t WHERE val < 3 EXCEPT SELECT * FROM t WHERE id < 50",
  };
  for (const char* sql : queries) {
    // batch_size 1 must agree with the default batched path at every
    // thread count (both against the row-at-a-time reference).
    ExpectModeMatchesReference(db.get(), sql, 1, 1024);
    ExpectModeMatchesReference(db.get(), sql, 4, 1);
    ExpectModeMatchesReference(db.get(), sql, 4, 1024);
  }
}

TEST(BatchExecutionTest, MidBatchTimeoutSurfacesAsTimeout) {
  // The timeout epoch starts before the scan; with an effectively-zero
  // budget the first per-batch check (between batches, i.e. "mid-stream")
  // must abort the query — serial and parallel, big and degenerate
  // batches.
  auto db = MakeTable(50000);
  for (int threads : {1, 4}) {
    for (int batch : {1, 1024}) {
      auto result = db->ExecuteSql("SELECT * FROM t WHERE val < 5", nullptr,
                                   1e-9, threads, batch);
      ASSERT_FALSE(result.ok()) << "threads=" << threads << " batch=" << batch;
      EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
          << "threads=" << threads << " batch=" << batch;
    }
  }
}

TEST(BatchExecutionTest, ThrowingMorselFailsQueryDeterministically) {
  // A morsel whose guard evaluation throws (here: a UDF raising a C++
  // exception) must fail the whole query with an ExecutionError naming
  // the partition — and the same partition every run, regardless of
  // scheduling (lowest index wins at the merge barrier).
  auto db = MakeTable(6000);
  ASSERT_TRUE(db->udfs()
                  .Register("boom",
                            [](const std::vector<Value>&,
                               UdfContext&) -> Result<Value> {
                              throw std::runtime_error("udf exploded");
                            })
                  .ok());
  for (int threads : {2, 8}) {
    for (int batch : {1, 1024}) {
      auto result = db->ExecuteSql("SELECT * FROM t WHERE boom() = true",
                                   nullptr, 0.0, threads, batch);
      ASSERT_FALSE(result.ok()) << "threads=" << threads << " batch=" << batch;
      EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
      EXPECT_NE(result.status().message().find("partition worker 0 threw"),
                std::string::npos)
          << result.status().ToString();
      EXPECT_NE(result.status().message().find("udf exploded"),
                std::string::npos)
          << result.status().ToString();
    }
  }
}

TEST(InteriorOperatorTest, ExceptParallelProbeMatchesSerial) {
  // Large enough (> one morsel of rows) that the minuend really
  // partitions; duplicate-heavy projection so the distinct merge works.
  auto db = MakeTable(6000, {17, 4242});
  ExpectParallelMatchesSerial(
      db.get(),
      "SELECT * FROM t WHERE val < 4 EXCEPT SELECT * FROM t WHERE id < 2000");
  ExpectParallelMatchesSerial(
      db.get(),
      "SELECT val FROM t EXCEPT SELECT val FROM t WHERE val > 3");
  // Empty minuend and empty subtrahend.
  ExpectParallelMatchesSerial(
      db.get(),
      "SELECT * FROM t WHERE id < 0 EXCEPT SELECT * FROM t WHERE val = 1");
  ExpectParallelMatchesSerial(
      db.get(),
      "SELECT * FROM t WHERE val = 1 EXCEPT SELECT * FROM t WHERE id < 0");
}

TEST(BatchExecutionTest, AdapterCoversRowOnlyOperators) {
  // HashAggregate serves its buffered groups through the default
  // row-only NextBatch adapter, which must splice it into a batched
  // pipeline transparently.
  auto db = MakeTable(3000, {5, 2999});
  ExpectModeMatchesReference(
      db.get(), "SELECT val, COUNT(*) AS n FROM t GROUP BY val", 1, 1024);
  ExpectModeMatchesReference(
      db.get(), "SELECT val, COUNT(*) AS n FROM t GROUP BY val", 4, 64);
}

TEST(BatchExecutionTest, NestedLoopJoinNativeBatchPath) {
  // Non-equi predicate forces the nested-loop plan; its native NextBatch
  // crosses whole outer batches against the materialized right side, and
  // CreatePartitions splits the outer pipeline while sharing one
  // materialization of the inner side.
  auto db = MakeTable(300);
  Schema schema({{"v", DataType::kInt}, {"name", DataType::kString}});
  ASSERT_TRUE(db->CreateTable("names", std::move(schema)).ok());
  const char* names[] = {"zero", "one", "two", "three"};
  for (int v = 0; v < 4; ++v) {
    ASSERT_TRUE(
        db->Insert("names", Row{Value::Int(v), Value::String(names[v])}).ok());
  }
  const char* sql =
      "SELECT t.id, names.name FROM t, names WHERE t.val < names.v";
  ExpectModeMatchesReference(db.get(), sql, 1, 1024);
  ExpectModeMatchesReference(db.get(), sql, 1, 3);
  ExpectModeMatchesReference(db.get(), sql, 4, 64);
  ExpectModeMatchesReference(db.get(), sql, 8, 1);

  // Empty inner side: the outer must still drain (stats parity).
  const char* empty_inner =
      "SELECT t.id, names.name FROM t, names WHERE names.v > 100 AND t.val < "
      "names.v";
  ExpectModeMatchesReference(db.get(), empty_inner, 1, 1024);
  ExpectModeMatchesReference(db.get(), empty_inner, 4, 64);
}

}  // namespace
}  // namespace sieve
