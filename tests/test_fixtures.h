#ifndef SIEVE_TESTS_TEST_FIXTURES_H_
#define SIEVE_TESTS_TEST_FIXTURES_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "policy/policy_store.h"
#include "sieve/middleware.h"
#include "workload/policy_gen.h"
#include "workload/tippers.h"

namespace sieve {

/// Hand-built mini campus: one WiFi table with a handful of known rows, a
/// few users and policies with known semantics. Used by policy/guard/
/// rewriter unit tests where exact expected row sets matter.
class MiniCampus {
 public:
  explicit MiniCampus(EngineProfile profile = EngineProfile::MySqlLike())
      : db_(profile) {
    Setup();
  }

  Database& db() { return db_; }
  MapGroupResolver& groups() { return groups_; }
  int64_t day(int offset) const { return first_day_ + offset; }

  /// Policy: `owner`'s data visible to `querier` for `purpose`, optionally
  /// restricted to [t1h, t2h] hours and an AP.
  Policy MakePolicy(int owner, const std::string& querier,
                    const std::string& purpose, int t1h = -1, int t2h = -1,
                    int ap = -1) const {
    Policy p;
    p.table_name = "wifi";
    p.owner = Value::Int(owner);
    p.querier = querier;
    p.purpose = purpose;
    p.object_conditions.push_back(
        ObjectCondition::Eq("owner", Value::Int(owner)));
    if (t1h >= 0) {
      p.object_conditions.push_back(ObjectCondition::Range(
          "ts_time", Value::Time(t1h * 3600), Value::Time(t2h * 3600)));
    }
    if (ap >= 0) {
      p.object_conditions.push_back(
          ObjectCondition::Eq("wifiAP", Value::Int(ap)));
    }
    return p;
  }

 private:
  void Setup() {
    Schema schema({{"id", DataType::kInt},
                   {"wifiAP", DataType::kInt},
                   {"owner", DataType::kInt},
                   {"ts_time", DataType::kTime},
                   {"ts_date", DataType::kDate}});
    (void)db_.CreateTable("wifi", std::move(schema));
    first_day_ = Value::ParseDate("2019-09-25")->raw();
    // 600 rows: owners 0..9, APs 0..5, hours 6..17, days 0..9.
    int64_t id = 0;
    for (int owner = 0; owner < 10; ++owner) {
      for (int e = 0; e < 60; ++e) {
        int ap = e % 6;
        int hour = 6 + e % 12;
        int day = e % 10;
        (void)db_.Insert("wifi",
                         Row{Value::Int(id++), Value::Int(ap),
                             Value::Int(owner), Value::Time(hour * 3600),
                             Value::Date(first_day_ + day)});
      }
    }
    for (const char* col : {"owner", "wifiAP", "ts_time", "ts_date"}) {
      (void)db_.CreateIndex("wifi", col);
    }
    // Unprotected AP lookup table (no policies target it): lets tests join
    // the policy-filtered wifi CTE against a plain relation — the Δ-join
    // plan shape of rewritten multi-table queries.
    Schema aps({{"ap", DataType::kInt}, {"building", DataType::kString}});
    (void)db_.CreateTable("aps", std::move(aps));
    const char* buildings[] = {"DBH", "ICS", "Bren", "Lib", "Gym", "Cafe"};
    for (int ap = 0; ap < 6; ++ap) {
      (void)db_.Insert("aps", Row{Value::Int(ap), Value::String(buildings[ap])});
    }
    (void)db_.CreateIndex("aps", "ap");
    (void)db_.Analyze();
    groups_.AddMembership("alice", "faculty");
    groups_.AddMembership("bob", "students");
    groups_.AddMembership("carol", "students");
  }

  Database db_;
  MapGroupResolver groups_;
  int64_t first_day_ = 0;
};

/// Scaled-down TIPPERS world shared by integration tests: one dataset, a
/// policy corpus and a middleware. Built once per process (expensive).
struct TippersWorld {
  std::unique_ptr<Database> db;
  TippersDataset dataset;
  std::unique_ptr<SieveMiddleware> sieve;
  size_t num_policies = 0;

  static TippersWorld* Get(EngineProfile profile = EngineProfile::MySqlLike());
};

inline TippersWorld* TippersWorld::Get(EngineProfile profile) {
  static TippersWorld* mysql_world = nullptr;
  static TippersWorld* postgres_world = nullptr;
  TippersWorld** slot = profile.kind == EngineProfile::Kind::kMySqlLike
                            ? &mysql_world
                            : &postgres_world;
  if (*slot != nullptr) return *slot;

  auto* world = new TippersWorld();
  world->db = std::make_unique<Database>(profile);
  TippersConfig config;
  config.num_devices = 600;
  config.num_aps = 32;
  config.num_days = 30;
  config.target_events = 40000;
  config.num_groups = 8;
  TippersGenerator generator(config);
  auto ds = generator.Populate(world->db.get());
  if (!ds.ok()) {
    ADD_FAILURE() << "TIPPERS populate failed: " << ds.status().ToString();
    return nullptr;
  }
  world->dataset = std::move(ds).value();

  SieveOptions options;
  options.timeout_seconds = 30.0;
  world->sieve = std::make_unique<SieveMiddleware>(
      world->db.get(), &world->dataset.groups, options);
  if (!world->sieve->Init().ok()) {
    ADD_FAILURE() << "Sieve init failed";
    return nullptr;
  }

  PolicyGenConfig pg;
  pg.advanced_policies_per_user = 12;
  TippersPolicyGenerator policy_gen(pg);
  auto count =
      policy_gen.Generate(world->dataset, &world->sieve->policies());
  if (!count.ok()) {
    ADD_FAILURE() << "policy generation failed: " << count.status().ToString();
    return nullptr;
  }
  world->num_policies = *count;
  *slot = world;
  return world;
}

}  // namespace sieve

#endif  // SIEVE_TESTS_TEST_FIXTURES_H_
