#ifndef SIEVE_TESTS_TEST_FIXTURES_H_
#define SIEVE_TESTS_TEST_FIXTURES_H_

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/database.h"
#include "policy/policy_store.h"
#include "sieve/middleware.h"
#include "workload/hospital.h"
#include "workload/policy_gen.h"
#include "workload/tippers.h"

namespace sieve {

/// Hand-built mini campus: one WiFi table with a handful of known rows, a
/// few users and policies with known semantics. Used by policy/guard/
/// rewriter unit tests where exact expected row sets matter.
class MiniCampus {
 public:
  explicit MiniCampus(EngineProfile profile = EngineProfile::MySqlLike())
      : db_(profile) {
    Setup();
  }

  Database& db() { return db_; }
  MapGroupResolver& groups() { return groups_; }
  int64_t day(int offset) const { return first_day_ + offset; }

  /// Policy: `owner`'s data visible to `querier` for `purpose`, optionally
  /// restricted to [t1h, t2h] hours and an AP.
  Policy MakePolicy(int owner, const std::string& querier,
                    const std::string& purpose, int t1h = -1, int t2h = -1,
                    int ap = -1) const {
    Policy p;
    p.table_name = "wifi";
    p.owner = Value::Int(owner);
    p.querier = querier;
    p.purpose = purpose;
    p.object_conditions.push_back(
        ObjectCondition::Eq("owner", Value::Int(owner)));
    if (t1h >= 0) {
      p.object_conditions.push_back(ObjectCondition::Range(
          "ts_time", Value::Time(t1h * 3600), Value::Time(t2h * 3600)));
    }
    if (ap >= 0) {
      p.object_conditions.push_back(
          ObjectCondition::Eq("wifiAP", Value::Int(ap)));
    }
    return p;
  }

 private:
  void Setup() {
    Schema schema({{"id", DataType::kInt},
                   {"wifiAP", DataType::kInt},
                   {"owner", DataType::kInt},
                   {"ts_time", DataType::kTime},
                   {"ts_date", DataType::kDate}});
    (void)db_.CreateTable("wifi", std::move(schema));
    first_day_ = Value::ParseDate("2019-09-25")->raw();
    // 600 rows: owners 0..9, APs 0..5, hours 6..17, days 0..9.
    int64_t id = 0;
    for (int owner = 0; owner < 10; ++owner) {
      for (int e = 0; e < 60; ++e) {
        int ap = e % 6;
        int hour = 6 + e % 12;
        int day = e % 10;
        (void)db_.Insert("wifi",
                         Row{Value::Int(id++), Value::Int(ap),
                             Value::Int(owner), Value::Time(hour * 3600),
                             Value::Date(first_day_ + day)});
      }
    }
    for (const char* col : {"owner", "wifiAP", "ts_time", "ts_date"}) {
      (void)db_.CreateIndex("wifi", col);
    }
    // Unprotected AP lookup table (no policies target it): lets tests join
    // the policy-filtered wifi CTE against a plain relation — the Δ-join
    // plan shape of rewritten multi-table queries.
    Schema aps({{"ap", DataType::kInt}, {"building", DataType::kString}});
    (void)db_.CreateTable("aps", std::move(aps));
    const char* buildings[] = {"DBH", "ICS", "Bren", "Lib", "Gym", "Cafe"};
    for (int ap = 0; ap < 6; ++ap) {
      (void)db_.Insert("aps", Row{Value::Int(ap), Value::String(buildings[ap])});
    }
    (void)db_.CreateIndex("aps", "ap");
    (void)db_.Analyze();
    groups_.AddMembership("alice", "faculty");
    groups_.AddMembership("bob", "students");
    groups_.AddMembership("carol", "students");
  }

  Database db_;
  MapGroupResolver groups_;
  int64_t first_day_ = 0;
};

// ---------------------------------------------------------------------------
// Shared structural assertions for generated workload datasets. All three
// scenarios (TIPPERS, mall, hospital) assert the same three properties
// through these helpers: schema shape, referential integrity between fact
// and dimension tables, and per-owner skew of the fact table.
// ---------------------------------------------------------------------------

/// The table exists and carries at least the named columns with the
/// expected types.
inline void AssertTableSchema(
    Database& db, const std::string& table,
    const std::vector<std::pair<std::string, DataType>>& columns) {
  const TableEntry* entry = db.catalog().Find(table);
  ASSERT_NE(entry, nullptr) << "missing table " << table;
  const Schema& schema = entry->table->schema();
  for (const auto& [name, type] : columns) {
    int idx = schema.FindColumn(name);
    ASSERT_GE(idx, 0) << table << " lacks column " << name;
    EXPECT_EQ(schema.column(static_cast<size_t>(idx)).type, type)
        << table << "." << name;
  }
}

/// Secondary indexes the scenario's queries rely on exist.
inline void AssertIndexes(Database& db, const std::string& table,
                          const std::vector<std::string>& columns) {
  const TableEntry* entry = db.catalog().Find(table);
  ASSERT_NE(entry, nullptr) << table;
  for (const std::string& col : columns) {
    EXPECT_TRUE(entry->indexes.HasIndex(col)) << table << "." << col;
  }
}

/// Every `child`.`child_col` value appears among `parent`.`parent_col`
/// (the generators never emit dangling foreign keys).
inline void AssertReferentialIntegrity(Database& db, const std::string& child,
                                       const std::string& child_col,
                                       const std::string& parent,
                                       const std::string& parent_col) {
  auto parents = db.ExecuteSql("SELECT " + parent_col + " FROM " + parent);
  ASSERT_TRUE(parents.ok()) << parents.status().ToString();
  std::unordered_set<int64_t> keys;
  for (const Row& row : parents->rows) keys.insert(row[0].raw());
  auto children = db.ExecuteSql("SELECT " + child_col + " FROM " + child);
  ASSERT_TRUE(children.ok()) << children.status().ToString();
  size_t dangling = 0;
  for (const Row& row : children->rows) {
    if (keys.count(row[0].raw()) == 0) ++dangling;
  }
  EXPECT_EQ(dangling, 0u) << child << "." << child_col << " has " << dangling
                          << " values absent from " << parent << "."
                          << parent_col;
}

/// The fact table's per-owner distribution is skewed: the most active
/// `top_fraction` of owners account for at least `min_share` of all rows.
inline void AssertOwnerSkew(Database& db, const std::string& table,
                            const std::string& owner_col, double top_fraction,
                            double min_share) {
  auto rows = db.ExecuteSql("SELECT " + owner_col + " FROM " + table);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_FALSE(rows->rows.empty()) << table << " is empty";
  std::unordered_map<int64_t, size_t> counts;
  for (const Row& row : rows->rows) ++counts[row[0].raw()];
  std::vector<size_t> per_owner;
  per_owner.reserve(counts.size());
  for (const auto& [owner, n] : counts) per_owner.push_back(n);
  std::sort(per_owner.begin(), per_owner.end(), std::greater<size_t>());
  size_t top = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(per_owner.size()) *
                             top_fraction));
  size_t top_rows = 0;
  for (size_t i = 0; i < top && i < per_owner.size(); ++i)
    top_rows += per_owner[i];
  double share =
      static_cast<double>(top_rows) / static_cast<double>(rows->rows.size());
  EXPECT_GE(share, min_share)
      << table << ": top " << top << " of " << per_owner.size() << " owners ("
      << owner_col << ") hold only " << share << " of rows";
}

/// Scaled-down TIPPERS world shared by integration tests: one dataset, a
/// policy corpus and a middleware. Built once per process (expensive).
struct TippersWorld {
  std::unique_ptr<Database> db;
  TippersDataset dataset;
  std::unique_ptr<SieveMiddleware> sieve;
  size_t num_policies = 0;

  static TippersWorld* Get(EngineProfile profile = EngineProfile::MySqlLike());
};

inline TippersWorld* TippersWorld::Get(EngineProfile profile) {
  static TippersWorld* mysql_world = nullptr;
  static TippersWorld* postgres_world = nullptr;
  TippersWorld** slot = profile.kind == EngineProfile::Kind::kMySqlLike
                            ? &mysql_world
                            : &postgres_world;
  if (*slot != nullptr) return *slot;

  auto* world = new TippersWorld();
  world->db = std::make_unique<Database>(profile);
  TippersConfig config;
  config.num_devices = 600;
  config.num_aps = 32;
  config.num_days = 30;
  config.target_events = 40000;
  config.num_groups = 8;
  TippersGenerator generator(config);
  auto ds = generator.Populate(world->db.get());
  if (!ds.ok()) {
    ADD_FAILURE() << "TIPPERS populate failed: " << ds.status().ToString();
    return nullptr;
  }
  world->dataset = std::move(ds).value();

  SieveOptions options;
  options.timeout_seconds = 30.0;
  world->sieve = std::make_unique<SieveMiddleware>(
      world->db.get(), &world->dataset.groups, options);
  if (!world->sieve->Init().ok()) {
    ADD_FAILURE() << "Sieve init failed";
    return nullptr;
  }

  PolicyGenConfig pg;
  pg.advanced_policies_per_user = 12;
  TippersPolicyGenerator policy_gen(pg);
  auto count =
      policy_gen.Generate(world->dataset, &world->sieve->policies());
  if (!count.ok()) {
    ADD_FAILURE() << "policy generation failed: " << count.status().ToString();
    return nullptr;
  }
  world->num_policies = *count;
  *slot = world;
  return world;
}

/// Scaled-down hospital world shared by integration tests (same shape as
/// TippersWorld): dataset, GDPR-style policy corpus and middleware, built
/// once per process and profile.
struct HospitalWorld {
  std::unique_ptr<Database> db;
  HospitalDataset dataset;
  std::unique_ptr<SieveMiddleware> sieve;
  size_t num_policies = 0;

  static HospitalWorld* Get(EngineProfile profile = EngineProfile::MySqlLike());
};

inline HospitalWorld* HospitalWorld::Get(EngineProfile profile) {
  static HospitalWorld* mysql_world = nullptr;
  static HospitalWorld* postgres_world = nullptr;
  HospitalWorld** slot = profile.kind == EngineProfile::Kind::kMySqlLike
                             ? &mysql_world
                             : &postgres_world;
  if (*slot != nullptr) return *slot;

  auto* world = new HospitalWorld();
  world->db = std::make_unique<Database>(profile);
  HospitalConfig config;
  config.num_patients = 150;
  config.num_staff = 24;
  config.num_wards = 6;
  config.num_days = 30;
  config.target_encounters = 8000;
  HospitalGenerator generator(config);
  auto ds = generator.Populate(world->db.get());
  if (!ds.ok()) {
    ADD_FAILURE() << "hospital populate failed: " << ds.status().ToString();
    return nullptr;
  }
  world->dataset = std::move(ds).value();

  SieveOptions options;
  options.timeout_seconds = 30.0;
  world->sieve = std::make_unique<SieveMiddleware>(
      world->db.get(), &world->dataset.groups, options);
  if (!world->sieve->Init().ok()) {
    ADD_FAILURE() << "Sieve init failed";
    return nullptr;
  }

  HospitalPolicyGenerator policy_gen;
  auto count =
      policy_gen.Generate(world->dataset, &world->sieve->policies());
  if (!count.ok()) {
    ADD_FAILURE() << "policy generation failed: " << count.status().ToString();
    return nullptr;
  }
  world->num_policies = *count;
  *slot = world;
  return world;
}

}  // namespace sieve

#endif  // SIEVE_TESTS_TEST_FIXTURES_H_
