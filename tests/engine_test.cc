#include "engine/database.h"

#include <gtest/gtest.h>

namespace sieve {
namespace {

// Small two-table fixture: events (with indexes) and users.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("events", Schema({{"id", DataType::kInt},
                                                  {"owner", DataType::kInt},
                                                  {"ap", DataType::kInt},
                                                  {"t", DataType::kTime}}))
                    .ok());
    ASSERT_TRUE(db_.CreateTable("users", Schema({{"id", DataType::kInt},
                                                 {"name", DataType::kString}}))
                    .ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db_.Insert("events", Row{Value::Int(i), Value::Int(i % 10),
                                           Value::Int(i % 5),
                                           Value::Time((6 + i % 12) * 3600)})
                      .ok());
    }
    for (int u = 0; u < 10; ++u) {
      ASSERT_TRUE(db_.Insert("users", Row{Value::Int(u),
                                          Value::String("user" +
                                                        std::to_string(u))})
                      .ok());
    }
    ASSERT_TRUE(db_.CreateIndex("events", "owner").ok());
    ASSERT_TRUE(db_.CreateIndex("events", "ap").ok());
    ASSERT_TRUE(db_.CreateIndex("events", "t").ok());
    ASSERT_TRUE(db_.Analyze().ok());
  }

  size_t Count(const std::string& sql) {
    auto result = db_.ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? result->size() : 0;
  }

  Database db_;
};

TEST_F(EngineTest, SelectAll) {
  EXPECT_EQ(Count("SELECT * FROM events"), 100u);
}

TEST_F(EngineTest, FilterEquality) {
  EXPECT_EQ(Count("SELECT * FROM events WHERE owner = 3"), 10u);
}

TEST_F(EngineTest, FilterRange) {
  EXPECT_EQ(Count("SELECT * FROM events WHERE id BETWEEN 10 AND 19"), 10u);
}

TEST_F(EngineTest, FilterInList) {
  EXPECT_EQ(Count("SELECT * FROM events WHERE owner IN (1, 2)"), 20u);
}

TEST_F(EngineTest, TimeLiterals) {
  // Hours 6, 7, 8 <=> i%12 in {0,1,2}: residues 0..2 occur 9 times each in
  // [0, 100).
  EXPECT_EQ(Count("SELECT * FROM events WHERE t BETWEEN '06:00' AND '08:00'"),
            27u);
}

TEST_F(EngineTest, Projection) {
  auto result = db_.ExecuteSql("SELECT owner, ap FROM events WHERE id = 5");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->schema.num_columns(), 2u);
  EXPECT_EQ(result->rows[0][0].AsInt(), 5);
  EXPECT_EQ(result->rows[0][1].AsInt(), 0);
}

TEST_F(EngineTest, AggregateCountStar) {
  auto result = db_.ExecuteSql("SELECT COUNT(*) FROM events WHERE owner = 1");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt(), 10);
}

TEST_F(EngineTest, AggregateEmptyInputYieldsZero) {
  auto result = db_.ExecuteSql("SELECT COUNT(*) FROM events WHERE owner = 999");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt(), 0);
}

TEST_F(EngineTest, GroupBy) {
  auto result = db_.ExecuteSql(
      "SELECT owner, COUNT(*) AS n FROM events GROUP BY owner");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 10u);
  for (const auto& row : result->rows) {
    EXPECT_EQ(row[1].AsInt(), 10);
  }
}

TEST_F(EngineTest, GroupByMinMaxSumAvg) {
  auto result = db_.ExecuteSql(
      "SELECT owner, MIN(id), MAX(id), SUM(id), AVG(id) FROM events "
      "WHERE owner = 2 GROUP BY owner");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->rows[0][1].AsInt(), 2);
  EXPECT_EQ(result->rows[0][2].AsInt(), 92);
  EXPECT_DOUBLE_EQ(result->rows[0][3].AsDouble(), 470.0);
  EXPECT_DOUBLE_EQ(result->rows[0][4].AsDouble(), 47.0);
}

TEST_F(EngineTest, HashJoin) {
  auto result = db_.ExecuteSql(
      "SELECT * FROM events AS e, users AS u WHERE e.owner = u.id AND u.name "
      "= 'user3'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 10u);
  EXPECT_EQ(result->schema.num_columns(), 6u);
}

TEST_F(EngineTest, QualifiedColumnsAcrossJoin) {
  auto result = db_.ExecuteSql(
      "SELECT e.id, u.name FROM events AS e, users AS u WHERE e.owner = u.id "
      "AND e.id = 42");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->rows[0][1].AsString(), "user2");
}

TEST_F(EngineTest, CrossJoinWithoutKeys) {
  EXPECT_EQ(Count("SELECT * FROM users AS a, users AS b"), 100u);
}

TEST_F(EngineTest, UnionDedup) {
  EXPECT_EQ(Count("SELECT * FROM events WHERE owner = 1 UNION SELECT * FROM "
                  "events WHERE owner = 1"),
            10u);
}

TEST_F(EngineTest, UnionAllKeepsDuplicates) {
  EXPECT_EQ(Count("SELECT * FROM events WHERE owner = 1 UNION ALL SELECT * "
                  "FROM events WHERE owner = 1"),
            20u);
}

TEST_F(EngineTest, WithClause) {
  EXPECT_EQ(Count("WITH mine AS (SELECT * FROM events WHERE owner = 4) "
                  "SELECT * FROM mine WHERE ap = 4"),
            10u);
}

TEST_F(EngineTest, WithClauseAliasBinding) {
  EXPECT_EQ(Count("WITH mine AS (SELECT * FROM events WHERE owner = 4) "
                  "SELECT * FROM mine AS m WHERE m.ap = 4"),
            10u);
}

TEST_F(EngineTest, DerivedTable) {
  EXPECT_EQ(
      Count("SELECT * FROM (SELECT * FROM events WHERE owner = 1) AS sub "
            "WHERE sub.ap = 1"),
      10u);
}

TEST_F(EngineTest, IndexHintsDoNotChangeResults) {
  size_t base = Count("SELECT * FROM events WHERE owner = 5");
  EXPECT_EQ(Count("SELECT * FROM events FORCE INDEX (owner) WHERE owner = 5"),
            base);
  EXPECT_EQ(Count("SELECT * FROM events USE INDEX () WHERE owner = 5"), base);
}

TEST_F(EngineTest, ScalarSubqueryUncorrelated) {
  auto result = db_.ExecuteSql(
      "SELECT * FROM events WHERE id = (SELECT MAX(id) FROM events)");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt(), 99);
}

TEST_F(EngineTest, ScalarSubqueryCorrelated) {
  // Events whose ap equals the ap of event id 7 (which is 2).
  auto result = db_.ExecuteSql(
      "SELECT * FROM events AS e WHERE e.ap = (SELECT f.ap FROM events AS f "
      "WHERE f.id = 7) AND e.owner = 7");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 10u);  // owner 7 rows all have ap = 2
}

TEST_F(EngineTest, DeleteMaintainsIndexes) {
  ASSERT_TRUE(db_.Delete("events", 0).ok());
  EXPECT_EQ(Count("SELECT * FROM events WHERE owner = 0"), 9u);
  EXPECT_EQ(Count("SELECT * FROM events FORCE INDEX (owner) WHERE owner = 0"),
            9u);
}

TEST_F(EngineTest, InsertMaintainsIndexes) {
  ASSERT_TRUE(db_.Insert("events", Row{Value::Int(1000), Value::Int(3),
                                       Value::Int(0), Value::Time(0)})
                  .ok());
  EXPECT_EQ(Count("SELECT * FROM events FORCE INDEX (owner) WHERE owner = 3"),
            11u);
}

TEST_F(EngineTest, ExplainReportsAccessPath) {
  auto explain = db_.ExplainSql("SELECT * FROM events WHERE owner = 1");
  ASSERT_TRUE(explain.ok());
  ASSERT_EQ(explain->tables.size(), 1u);
  EXPECT_EQ(explain->tables[0].kind, AccessPathInfo::Kind::kIndexRange);
  EXPECT_EQ(explain->tables[0].index_column, "owner");
  EXPECT_NEAR(explain->tables[0].selectivity, 0.1, 0.03);
}

TEST_F(EngineTest, ExplainSeqScanWithoutPredicate) {
  auto explain = db_.ExplainSql("SELECT * FROM events");
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->tables[0].kind, AccessPathInfo::Kind::kSeqScan);
}

TEST_F(EngineTest, UdfRegistrationAndCall) {
  ASSERT_TRUE(db_.udfs()
                  .Register("always_true",
                            [](const std::vector<Value>&, UdfContext&)
                                -> Result<Value> { return Value::Bool(true); })
                  .ok());
  EXPECT_EQ(Count("SELECT * FROM events WHERE always_true() = true"), 100u);
  EXPECT_FALSE(db_.ExecuteSql("SELECT * FROM events WHERE nosuch() = true").ok());
}

TEST_F(EngineTest, StatsCounters) {
  auto result = db_.ExecuteSql("SELECT * FROM events USE INDEX () WHERE owner = 1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.tuples_scanned, 100u);
  auto indexed =
      db_.ExecuteSql("SELECT * FROM events FORCE INDEX (owner) WHERE owner = 1");
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(indexed->stats.index_probe_rows, 10u);
}

TEST_F(EngineTest, ErrorOnUnknownTable) {
  EXPECT_FALSE(db_.ExecuteSql("SELECT * FROM nope").ok());
}

TEST_F(EngineTest, ErrorOnUnknownColumn) {
  EXPECT_FALSE(db_.ExecuteSql("SELECT * FROM events WHERE nope = 1").ok());
}

TEST(EngineProfileTest, PostgresIgnoresHints) {
  Database db(EngineProfile::PostgresLike());
  ASSERT_TRUE(db.CreateTable("t", Schema({{"a", DataType::kInt}})).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Insert("t", Row{Value::Int(i)}).ok());
  }
  ASSERT_TRUE(db.CreateIndex("t", "a").ok());
  ASSERT_TRUE(db.Analyze().ok());
  // USE INDEX () would force a seq scan on MySQL-like engines; the
  // postgres-like profile ignores it and picks the index.
  auto explain = db.ExplainSql("SELECT * FROM t USE INDEX () WHERE a = 3");
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->tables[0].kind, AccessPathInfo::Kind::kIndexRange);
}

TEST(EngineProfileTest, BitmapOrOnPostgres) {
  Database db(EngineProfile::PostgresLike());
  ASSERT_TRUE(db.CreateTable("t", Schema({{"a", DataType::kInt},
                                          {"b", DataType::kInt}}))
                  .ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(db.Insert("t", Row{Value::Int(i), Value::Int(i % 7)}).ok());
  }
  ASSERT_TRUE(db.CreateIndex("t", "a").ok());
  ASSERT_TRUE(db.Analyze().ok());
  auto explain =
      db.ExplainSql("SELECT * FROM t WHERE (a = 1 AND b = 0) OR (a = 500) OR "
                    "(a BETWEEN 10 AND 20)");
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->tables[0].kind, AccessPathInfo::Kind::kIndexUnion);
  auto result = db.ExecuteSql(
      "SELECT * FROM t WHERE (a = 1 AND b = 0) OR (a = 500) OR (a BETWEEN 10 "
      "AND 20)");
  ASSERT_TRUE(result.ok());
  // a=1 has b=1 so the first disjunct rejects it; a=500 contributes 1 row
  // and the 10..20 range contributes 11.
  EXPECT_EQ(result->size(), 12u);
}

TEST(EngineTimeoutTest, TimesOut) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema({{"a", DataType::kInt}})).ok());
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(db.Insert("t", Row{Value::Int(i)}).ok());
  }
  // Cross join of 20000 x 20000 rows cannot finish in 1 ms.
  auto result = db.ExecuteSql(
      "SELECT COUNT(*) FROM t AS a, t AS b WHERE a.a < b.a", nullptr,
      /*timeout_seconds=*/0.001);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

}  // namespace
}  // namespace sieve
