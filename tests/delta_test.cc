#include "sieve/delta.h"

#include <gtest/gtest.h>

#include "sieve/guard_selection.h"
#include "tests/test_fixtures.h"

namespace sieve {
namespace {

class DeltaTest : public ::testing::Test {
 protected:
  DeltaTest() : store_(&campus_.db()), guards_(&campus_.db(), &store_) {
    EXPECT_TRUE(store_.Init().ok());
    EXPECT_TRUE(guards_.Init().ok());
    EXPECT_TRUE(RegisterDeltaUdf(&campus_.db(), &guards_).ok());
  }

  // Builds and stores a guarded expression for the given policies; returns
  // the ids of its guards.
  std::vector<int64_t> BuildGuards(std::vector<Policy> policies) {
    std::vector<int64_t> ids;
    for (auto& p : policies) {
      auto id = store_.AddPolicy(std::move(p));
      EXPECT_TRUE(id.ok());
      ids.push_back(*id);
    }
    std::vector<const Policy*> stored;
    for (int64_t id : ids) stored.push_back(store_.FindPolicy(id));
    CostModel cost;
    GuardedExpressionBuilder builder(&campus_.db(), &store_, &cost, nullptr);
    auto ge = builder.BuildFromPolicies(stored, {"alice", "any"}, "wifi");
    EXPECT_TRUE(ge.ok());
    EXPECT_TRUE(guards_.Put(std::move(ge).value()).ok());
    std::vector<int64_t> guard_ids;
    for (const auto& g : guards_.Get("alice", "any", "wifi")->guards) {
      guard_ids.push_back(g.id);
    }
    return guard_ids;
  }

  MiniCampus campus_;
  PolicyStore store_;
  GuardStore guards_;
};

TEST_F(DeltaTest, MatchesInlineEvaluation) {
  auto guard_ids = BuildGuards({campus_.MakePolicy(1, "alice", "any", 9, 11),
                                campus_.MakePolicy(2, "alice", "any", 9, 11)});
  ASSERT_FALSE(guard_ids.empty());

  // For each guard: delta(gid) over the whole table must select exactly the
  // rows the inlined partition DNF selects.
  for (int64_t gid : guard_ids) {
    const Guard* guard = guards_.FindGuard(gid);
    ASSERT_NE(guard, nullptr);
    std::vector<ExprPtr> partition;
    for (int64_t pid : guard->guard.policy_ids) {
      partition.push_back(store_.FindPolicy(pid)->ObjectExpr());
    }
    std::string inline_sql = "SELECT COUNT(*) FROM wifi WHERE " +
                             MakeOr(std::move(partition))->ToSql();
    std::string delta_sql = "SELECT COUNT(*) FROM wifi WHERE delta(" +
                            std::to_string(gid) + ") = true";
    QueryMetadata md{"alice", "any"};
    auto inline_result = campus_.db().ExecuteSql(inline_sql, &md);
    auto delta_result = campus_.db().ExecuteSql(delta_sql, &md);
    ASSERT_TRUE(inline_result.ok()) << inline_result.status().ToString();
    ASSERT_TRUE(delta_result.ok()) << delta_result.status().ToString();
    EXPECT_EQ(inline_result->rows[0][0].AsInt(),
              delta_result->rows[0][0].AsInt());
  }
}

TEST_F(DeltaTest, CountsUdfInvocationsAndPolicyChecks) {
  auto guard_ids = BuildGuards({campus_.MakePolicy(3, "alice", "any")});
  ASSERT_FALSE(guard_ids.empty());
  QueryMetadata md{"alice", "any"};
  auto result = campus_.db().ExecuteSql(
      "SELECT * FROM wifi USE INDEX () WHERE delta(" +
          std::to_string(guard_ids[0]) + ") = true",
      &md);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.udf_invocations, 600u);  // once per tuple
  // Context filter: only owner 3's 60 tuples reach policy evaluation.
  EXPECT_EQ(result->stats.udf_policy_checks, 60u);
  EXPECT_EQ(result->size(), 60u);
}

TEST_F(DeltaTest, UnknownGuardIdFails) {
  QueryMetadata md{"alice", "any"};
  auto result =
      campus_.db().ExecuteSql("SELECT * FROM wifi WHERE delta(9999) = true", &md);
  EXPECT_FALSE(result.ok());
}

TEST_F(DeltaTest, BadArgumentsFail) {
  QueryMetadata md{"alice", "any"};
  EXPECT_FALSE(
      campus_.db()
          .ExecuteSql("SELECT * FROM wifi WHERE delta('x') = true", &md)
          .ok());
  EXPECT_FALSE(campus_.db()
                   .ExecuteSql("SELECT * FROM wifi WHERE delta() = true", &md)
                   .ok());
}

TEST_F(DeltaTest, RespectsOwnerContextFilter) {
  auto guard_ids = BuildGuards({campus_.MakePolicy(1, "alice", "any"),
                                campus_.MakePolicy(2, "alice", "any", 9, 10)});
  QueryMetadata md{"alice", "any"};
  // Rows of owner 5 never match: no policy with owner 5 in any partition.
  for (int64_t gid : guard_ids) {
    auto result = campus_.db().ExecuteSql(
        "SELECT COUNT(*) FROM wifi WHERE owner = 5 AND delta(" +
            std::to_string(gid) + ") = true",
        &md);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->rows[0][0].AsInt(), 0);
  }
}

}  // namespace
}  // namespace sieve
