// Randomized equivalence sweep: for random policy corpora and random
// queries, the Sieve rewrite must return exactly the tuple set of the
// reference semantics eval(E(P), t) — on both engine profiles. This is the
// paper's sound+secure correctness criterion as a property test.
//
// The sweep is also differential across execution modes: every query's
// reference is the legacy serial row-at-a-time run (num_threads = 1,
// batch_size = 1), and every (batch_size ∈ {0 (adaptive), 1, 3, 64,
// 1024}) ×
// (num_threads ∈ {1, 2, 4, 8}) combination — vectorized batches, morsel-
// parallel drains, and both together — must reproduce the reference rows
// *in the reference order* and the reference ExecStats totals exactly
// (per-worker counters merged at the barrier; batched predicate walks
// counting comparison for comparison with the short-circuit interpreter).
// The query mix covers every parallel interior: plain guarded scans,
// UNION / UNION ALL over guard branches, the hash join of the policy-
// filtered CTE against an unprotected table, grouped + global aggregates
// (COUNT/SUM/MIN/MAX/AVG partial-state merge), and EXCEPT (parallel
// minuend probe + ordered distinct merge).
//
// On top of that, the sweep is differential across *API surfaces*: every
// query also runs through SieveSession::Prepare + repeated
// PreparedQuery::Execute (second run hits the rewrite cache) and through a
// small-batch ResultCursor, and both must reproduce the one-shot rows,
// row order and ExecStats byte-identically in serial and parallel mode.

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "sieve/session.h"
#include "tests/test_fixtures.h"
#include "workload/query_gen.h"

namespace sieve {
namespace {

std::multiset<std::string> Fingerprints(const ResultSet& rs) {
  std::multiset<std::string> out;
  for (const auto& row : rs.rows) {
    std::string fp;
    for (const auto& v : row) fp += v.ToString() + "|";
    out.insert(fp);
  }
  return out;
}

// Ordered fingerprints: serial-vs-parallel equivalence is exact, including
// row order (sieve-vs-reference only compares multisets, since the rewrite
// legitimately reorders).
std::vector<std::string> OrderedFingerprints(const ResultSet& rs) {
  std::vector<std::string> out;
  out.reserve(rs.rows.size());
  for (const auto& row : rs.rows) out.push_back(RowFingerprint(row));
  return out;
}

// Random WHERE clause over the wifi columns; `alias` optionally qualifies
// every predicate (used to keep join predicates unambiguous).
std::vector<std::string> RandomPreds(Rng& rng, const std::string& alias) {
  std::string p = alias.empty() ? "" : alias + ".";
  std::vector<std::string> preds;
  if (rng.Chance(0.5)) {
    preds.push_back(p + "wifiAP = " + std::to_string(rng.Uniform(0, 5)));
  }
  if (rng.Chance(0.5)) {
    int h = static_cast<int>(rng.Uniform(6, 14));
    preds.push_back(StrFormat("%sts_time BETWEEN '%02d:00' AND '%02d:00'",
                              p.c_str(), h,
                              h + static_cast<int>(rng.Uniform(1, 6))));
  }
  if (rng.Chance(0.3)) {
    preds.push_back(StrFormat("%sowner IN (%lld, %lld, %lld)", p.c_str(),
                              (long long)rng.Uniform(0, 9),
                              (long long)rng.Uniform(0, 9),
                              (long long)rng.Uniform(0, 9)));
  }
  return preds;
}

// The query mix: plain guarded scans plus the three interior-operator
// shapes the parallel executor must reproduce exactly.
std::vector<std::string> MakeQueries(Rng& rng) {
  std::vector<std::string> queries;

  // Plain scans (the PR-2 shapes).
  for (int q = 0; q < 4; ++q) {
    std::string sql = "SELECT * FROM wifi";
    std::vector<std::string> preds = RandomPreds(rng, "");
    if (!preds.empty()) sql += " WHERE " + Join(preds, " AND ");
    queries.push_back(std::move(sql));
  }

  // UNION / UNION ALL of two guarded arms (duplicate-prone: the arms
  // overlap whenever the same row satisfies both predicates).
  {
    const char* op = rng.Chance(0.5) ? "UNION" : "UNION ALL";
    queries.push_back(StrFormat(
        "SELECT * FROM wifi WHERE wifiAP = %lld %s "
        "SELECT * FROM wifi WHERE owner IN (%lld, %lld)",
        (long long)rng.Uniform(0, 5), op, (long long)rng.Uniform(0, 9),
        (long long)rng.Uniform(0, 9)));
  }

  // EXCEPT: the non-monotonic Section-3.1 operator — parallel minuend
  // probe against the once-built subtrahend set, distinct first-occurrence
  // merge.
  {
    queries.push_back(StrFormat(
        "SELECT * FROM wifi WHERE wifiAP < %lld EXCEPT "
        "SELECT * FROM wifi WHERE owner = %lld",
        (long long)rng.Uniform(1, 5), (long long)rng.Uniform(0, 9)));
  }

  // Hash join: probe side is the policy-filtered wifi CTE, build side the
  // unprotected aps lookup table — the Δ-join shape of rewritten
  // multi-table queries.
  {
    std::string sql =
        "SELECT w.id, w.owner, w.wifiAP, a.building FROM wifi w, aps a "
        "WHERE w.wifiAP = a.ap";
    std::vector<std::string> preds = RandomPreds(rng, "w");
    if (!preds.empty()) sql += " AND " + Join(preds, " AND ");
    queries.push_back(std::move(sql));
  }

  // Grouped aggregate over every merge rule (COUNT/SUM/MIN/MAX/AVG).
  {
    std::string sql =
        "SELECT owner, COUNT(*) AS n, SUM(wifiAP) AS s, MIN(ts_time) AS mn, "
        "MAX(ts_time) AS mx, AVG(wifiAP) AS av FROM wifi";
    std::vector<std::string> preds = RandomPreds(rng, "");
    if (!preds.empty()) sql += " WHERE " + Join(preds, " AND ");
    sql += " GROUP BY owner";
    queries.push_back(std::move(sql));
  }

  // Global aggregate (no GROUP BY): exercises the one-row-on-empty-input
  // rule under partial-state merge.
  {
    std::string sql = "SELECT COUNT(*) AS n, AVG(owner) AS av FROM wifi";
    std::vector<std::string> preds = RandomPreds(rng, "");
    if (!preds.empty()) sql += " WHERE " + Join(preds, " AND ");
    queries.push_back(std::move(sql));
  }

  return queries;
}

// Unprotected side table stressing the columnar kernels' NULL handling:
// `reading` is NULL-heavy (~half the rows), `status` is a sometimes-NULL
// string column, and `flag` stays in [0, 10) so `flag > 100` filters
// every row (an all-rows-filtered batch at every batch size).
void AddSensorsTable(Database* db, Rng& rng) {
  Schema schema({{"id", DataType::kInt},
                 {"reading", DataType::kDouble},
                 {"status", DataType::kString},
                 {"flag", DataType::kInt}});
  ASSERT_TRUE(db->CreateTable("sensors", std::move(schema)).ok());
  const char* statuses[] = {"ok", "bad", "warn"};
  for (int i = 0; i < 700; ++i) {
    Value reading = rng.Chance(0.5)
                        ? Value::Null()
                        : Value::Double(rng.Uniform(0, 100) / 100.0);
    Value status = rng.Chance(0.2)
                       ? Value::Null()
                       : Value::String(statuses[rng.Uniform(0, 2)]);
    ASSERT_TRUE(db->Insert("sensors",
                           Row{Value::Int(i), std::move(reading),
                               std::move(status),
                               Value::Int(static_cast<int64_t>(
                                   rng.Uniform(0, 9)))})
                    .ok());
  }
  ASSERT_TRUE(db->Analyze().ok());
}

// Queries over the sensors table: NULL-heavy comparisons (a NULL operand
// makes the predicate false, never an error), an all-rows-filtered
// column, OR/NOT over tri-state inputs, and every comparison operator.
std::vector<std::string> SensorQueries() {
  return {
      "SELECT * FROM sensors WHERE reading > 0.5",
      "SELECT * FROM sensors WHERE reading <= 0.25",
      "SELECT * FROM sensors WHERE flag > 100",          // filters all rows
      "SELECT id FROM sensors WHERE flag > 100",         // and projected
      "SELECT * FROM sensors WHERE status = 'ok'",
      "SELECT * FROM sensors WHERE status <> 'bad'",     // NULLs drop out
      "SELECT * FROM sensors WHERE NOT (reading < 0.9)"
      " UNION ALL SELECT * FROM sensors WHERE reading >= 0.9",
      "SELECT id, flag FROM sensors WHERE reading BETWEEN 0.2 AND 0.8 AND "
      "flag IN (1, 2, 3)",
      "SELECT flag, COUNT(*) AS n FROM sensors WHERE reading > 0.1 OR "
      "status = 'warn' GROUP BY flag",
  };
}

struct SweepConfig {
  uint64_t seed;
  bool postgres;
};

class EquivalenceSweep : public ::testing::TestWithParam<SweepConfig> {};

TEST_P(EquivalenceSweep, SieveMatchesReference) {
  const SweepConfig& cfg = GetParam();
  MiniCampus campus(cfg.postgres ? EngineProfile::PostgresLike()
                                 : EngineProfile::MySqlLike());
  SieveMiddleware sieve(&campus.db(), &campus.groups());
  ASSERT_TRUE(sieve.Init().ok());

  Rng rng(cfg.seed);
  AddSensorsTable(&campus.db(), rng);
  // Random corpus: 5-40 policies across queriers alice/bob/students.
  const char* queriers[] = {"alice", "bob", "students"};
  const char* purposes[] = {"any", "Analytics", "Social"};
  int n_policies = static_cast<int>(rng.Uniform(5, 40));
  for (int i = 0; i < n_policies; ++i) {
    int owner = static_cast<int>(rng.Uniform(0, 9));
    int t1 = -1, t2 = -1, ap = -1;
    if (rng.Chance(0.6)) {
      t1 = static_cast<int>(rng.Uniform(6, 15));
      t2 = t1 + static_cast<int>(rng.Uniform(1, 5));
    }
    if (rng.Chance(0.4)) ap = static_cast<int>(rng.Uniform(0, 5));
    Policy p = campus.MakePolicy(
        owner, queriers[rng.Uniform(0, 2)], purposes[rng.Uniform(0, 2)], t1,
        t2, ap);
    ASSERT_TRUE(sieve.AddPolicy(std::move(p)).ok());
  }

  auto set_exec = [&sieve](int threads, int batch) {
    SieveOptions options = sieve.options();
    options.num_threads = threads;
    options.batch_size = batch;
    ASSERT_TRUE(sieve.set_options(options).ok());
  };

  std::vector<std::string> queries = MakeQueries(rng);
  for (const std::string& q : SensorQueries()) queries.push_back(q);
  for (const std::string& sql : queries) {
    QueryMetadata md{queriers[rng.Uniform(0, 2)], purposes[rng.Uniform(0, 2)]};
    // Group queriers are not people; querier "students" never queries.
    if (md.querier == std::string("students")) md.querier = "carol";

    // Reference: the legacy serial row-at-a-time interpreter.
    set_exec(1, 1);
    auto fast = sieve.Execute(sql, md);
    auto oracle = sieve.ExecuteReference(sql, md);
    ASSERT_TRUE(fast.ok()) << sql << " -> " << fast.status().ToString();
    ASSERT_TRUE(oracle.ok()) << sql;
    EXPECT_EQ(Fingerprints(*fast), Fingerprints(*oracle))
        << "querier=" << md.querier << " purpose=" << md.purpose
        << " sql=" << sql;

    // Differential across execution modes: every batch-size × thread
    // combination must reproduce the row-at-a-time reference rows, row
    // order and ExecStats totals exactly.
    std::vector<std::string> serial_rows = OrderedFingerprints(*fast);
    for (int batch : {0, 1, 3, 64, 1024}) {  // 0 = adaptive per-operator size
      for (int threads : {1, 2, 4, 8}) {
        if (batch == 1 && threads == 1) continue;  // the reference itself
        set_exec(threads, batch);
        auto swept = sieve.Execute(sql, md);
        ASSERT_TRUE(swept.ok())
            << "batch=" << batch << " threads=" << threads << " sql=" << sql
            << " -> " << swept.status().ToString();
        EXPECT_EQ(serial_rows, OrderedFingerprints(*swept))
            << "batch=" << batch << " threads=" << threads
            << " querier=" << md.querier << " purpose=" << md.purpose
            << " sql=" << sql;
        EXPECT_EQ(fast->stats, swept->stats)
            << "batch=" << batch << " threads=" << threads << " sql=" << sql
            << " reference=" << fast->stats.ToString()
            << " swept=" << swept->stats.ToString();
      }
    }
    set_exec(1, 1024);

    // Differential across API surfaces: prepare once, execute twice (the
    // second run is served by the rewrite cache) and drain a small-batch
    // cursor — all must be byte-identical to the one-shot path (which the
    // sweep above proved identical to the row-at-a-time reference).
    {
      SieveSession session(&sieve, md);
      auto prepared = session.Prepare(sql);
      ASSERT_TRUE(prepared.ok()) << sql << " -> "
                                 << prepared.status().ToString();
      for (int run = 0; run < 2; ++run) {
        auto repeated = prepared->Execute();
        ASSERT_TRUE(repeated.ok())
            << "run=" << run << " sql=" << sql << " -> "
            << repeated.status().ToString();
        EXPECT_EQ(serial_rows, OrderedFingerprints(*repeated))
            << "prepared run=" << run << " sql=" << sql;
        EXPECT_EQ(fast->stats, repeated->stats)
            << "prepared run=" << run << " sql=" << sql;
      }
      auto cursor = prepared->OpenCursor();
      ASSERT_TRUE(cursor.ok()) << sql;
      ResultSet chunked;
      chunked.schema = cursor->schema();
      while (true) {
        auto more = cursor->Next(&chunked.rows, /*max_rows=*/3);
        ASSERT_TRUE(more.ok()) << sql << " -> " << more.status().ToString();
        if (!*more) break;
      }
      EXPECT_EQ(serial_rows, OrderedFingerprints(chunked))
          << "cursor sql=" << sql;
      EXPECT_EQ(fast->stats, cursor->stats()) << "cursor sql=" << sql;
    }

    // Differential across thread counts for the reference semantics and
    // the prepared path too (both at the default batch size — the grid
    // above already covered the one-shot Sieve path).
    for (int threads : {2, 4, 8}) {
      set_exec(threads, 1024);
      auto parallel_oracle = sieve.ExecuteReference(sql, md);
      ASSERT_TRUE(parallel_oracle.ok()) << "threads=" << threads;
      EXPECT_EQ(Fingerprints(*oracle), Fingerprints(*parallel_oracle))
          << "threads=" << threads << " sql=" << sql;

      SieveSession session(&sieve, md);
      auto prepared = session.Prepare(sql);
      ASSERT_TRUE(prepared.ok()) << "threads=" << threads << " sql=" << sql;
      auto repeated = prepared->Execute();
      ASSERT_TRUE(repeated.ok()) << "threads=" << threads << " sql=" << sql;
      EXPECT_EQ(serial_rows, OrderedFingerprints(*repeated))
          << "prepared threads=" << threads << " sql=" << sql;
      EXPECT_EQ(fast->stats, repeated->stats)
          << "prepared threads=" << threads << " sql=" << sql;
    }
    set_exec(1, 1024);
  }
}

// Churn sweep: the policy corpus mutates mid-stream (direct-querier
// inserts, group grants, removals) while every querier holds prepared
// queries. After each mutation, exactly the affected queriers' snapshots
// may go stale — a grant to "students" touches bob and carol but never
// alice — and every execution, refreshed or cached, must match the
// reference answer for the corpus in force at that moment.
TEST_P(EquivalenceSweep, MidStreamChurnKeepsResultsEquivalent) {
  const SweepConfig& cfg = GetParam();
  MiniCampus campus(cfg.postgres ? EngineProfile::PostgresLike()
                                 : EngineProfile::MySqlLike());
  SieveMiddleware sieve(&campus.db(), &campus.groups());
  ASSERT_TRUE(sieve.Init().ok());
  Rng rng(cfg.seed * 7 + 13);

  const std::vector<std::string> queriers = {"alice", "bob", "carol"};
  // bob and carol are students; a grant to the group affects both.
  auto affected_by = [](const std::string& grantee,
                        const std::string& querier) {
    return grantee == querier ||
           (grantee == "students" && (querier == "bob" || querier == "carol"));
  };

  std::vector<std::vector<int64_t>> removable(queriers.size());
  for (size_t q = 0; q < queriers.size(); ++q) {
    auto id = sieve.AddPolicy(
        campus.MakePolicy(static_cast<int>(q), queriers[q], "Analytics"));
    ASSERT_TRUE(id.ok());
    removable[q].push_back(*id);
  }

  // Two prepared shapes per querier: a guarded scan and an aggregate.
  const std::vector<std::string> shapes = {
      "SELECT * FROM wifi WHERE wifiAP <= 3",
      "SELECT owner, COUNT(*) AS n FROM wifi GROUP BY owner",
  };
  std::vector<SieveSession> sessions;
  std::vector<std::vector<PreparedQuery>> prepared(queriers.size());
  for (size_t q = 0; q < queriers.size(); ++q) {
    sessions.emplace_back(&sieve, QueryMetadata{queriers[q], "Analytics"});
  }
  for (size_t q = 0; q < queriers.size(); ++q) {
    for (const auto& sql : shapes) {
      auto p = sessions[q].Prepare(sql);
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      prepared[q].push_back(std::move(*p));
    }
  }

  for (int round = 0; round < 10; ++round) {
    std::vector<std::vector<std::shared_ptr<const PreparedRewrite>>> snaps(
        queriers.size());
    for (size_t q = 0; q < queriers.size(); ++q) {
      for (auto& p : prepared[q]) snaps[q].push_back(p.rewrite());
    }

    std::string grantee;
    size_t target = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(queriers.size()) - 1));
    bool remove = round >= 4 && rng.Chance(0.4) && !removable[target].empty();
    if (remove) {
      // Removal bypasses the middleware on purpose: the store listeners
      // alone must invalidate the affected cache entries.
      grantee = queriers[target];
      int64_t id = removable[target].back();
      removable[target].pop_back();
      ASSERT_TRUE(sieve.policies().RemovePolicy(id).ok());
      sieve.guards().MarkOutdated(grantee, "Analytics", "wifi");
    } else if (rng.Chance(0.25)) {
      grantee = "students";
      ASSERT_TRUE(
          sieve
              .AddPolicy(campus.MakePolicy(
                  static_cast<int>(rng.Uniform(0, 9)), "students", "Analytics"))
              .ok());
    } else {
      grantee = queriers[target];
      auto id = sieve.AddPolicy(campus.MakePolicy(
          static_cast<int>(rng.Uniform(0, 9)), grantee, "Analytics"));
      ASSERT_TRUE(id.ok());
      removable[target].push_back(*id);
    }

    for (size_t q = 0; q < queriers.size(); ++q) {
      for (const auto& snap : snaps[q]) {
        if (affected_by(grantee, queriers[q])) {
          EXPECT_TRUE(snap->stale())
              << "round " << round << " grantee " << grantee << " querier "
              << queriers[q];
        } else {
          EXPECT_FALSE(snap->stale())
              << "round " << round << " grantee " << grantee << " querier "
              << queriers[q];
        }
      }
    }

    for (size_t q = 0; q < queriers.size(); ++q) {
      for (size_t s = 0; s < shapes.size(); ++s) {
        auto result = prepared[q][s].Execute();
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        auto oracle = sieve.ExecuteReference(
            shapes[s], QueryMetadata{queriers[q], "Analytics"});
        ASSERT_TRUE(oracle.ok());
        EXPECT_EQ(Fingerprints(*result), Fingerprints(*oracle))
            << "round " << round << " querier " << queriers[q] << " sql "
            << shapes[s];
        if (!affected_by(grantee, queriers[q])) {
          EXPECT_EQ(prepared[q][s].rewrite().get(), snaps[q][s].get())
              << "round " << round << " bystander " << queriers[q]
              << " must keep its cached rewrite";
        }
      }
    }
  }
}

// Hospital scenario sweep: the GDPR-style corpus (purpose-limited role/
// ward/attending grants over Encounters and Diagnoses) runs the same
// serial-vs-parallel/batch differential as the campus sweep — every
// (num_threads ∈ {1, 2, 4, 8}) × (batch_size ∈ {0, 1, 64, 1024}) combo
// must reproduce the serial (1, 1) reference rows in order, with exactly
// the reference ExecStats.
class HospitalSweep : public ::testing::TestWithParam<SweepConfig> {};

TEST_P(HospitalSweep, SerialParallelBatchEquivalence) {
  const SweepConfig& cfg = GetParam();
  HospitalWorld* world = HospitalWorld::Get(
      cfg.postgres ? EngineProfile::PostgresLike()
                   : EngineProfile::MySqlLike());
  ASSERT_NE(world, nullptr);
  SieveMiddleware& sieve = *world->sieve;
  const SieveOptions saved = sieve.options();

  auto set_exec = [&sieve](int threads, int batch) {
    SieveOptions options = sieve.options();
    options.num_threads = threads;
    options.batch_size = batch;
    ASSERT_TRUE(sieve.set_options(options).ok());
  };

  // Staff queriers covering every purpose-limited role plus an attending
  // physician queried by name.
  std::vector<QueryMetadata> staff;
  const HospitalDataset& ds = world->dataset;
  auto add_staff = [&staff, &ds](const char* role, const char* purpose) {
    auto ids = ds.StaffWithRole(role);
    ASSERT_FALSE(ids.empty()) << role;
    staff.push_back({HospitalDataset::StaffName(ids[0]), purpose});
  };
  add_staff("doctor", "Treatment");
  add_staff("nurse", "Treatment");
  add_staff("researcher", "Research");
  add_staff("billing", "Billing");
  staff.push_back({HospitalDataset::StaffName(ds.attending_of[0]),
                   "Treatment"});

  HospitalQueryGenerator gen(ds, cfg.seed);
  std::vector<std::string> queries;
  for (QuerySelectivity sel : {QuerySelectivity::kLow, QuerySelectivity::kMid,
                               QuerySelectivity::kHigh}) {
    queries.push_back(gen.HQ1(sel));
    queries.push_back(gen.HQ2(sel));
    queries.push_back(gen.HQ3(sel));
  }
  queries.push_back(HospitalQueryGenerator::SelectAllEncounters());
  queries.push_back(HospitalQueryGenerator::SelectAllDiagnoses());

  for (size_t i = 0; i < queries.size(); ++i) {
    const std::string& sql = queries[i];
    const QueryMetadata& md = staff[i % staff.size()];

    set_exec(1, 1);
    auto serial = sieve.Execute(sql, md);
    ASSERT_TRUE(serial.ok()) << sql << " -> " << serial.status().ToString();
    auto oracle = sieve.ExecuteReference(sql, md);
    ASSERT_TRUE(oracle.ok()) << sql;
    EXPECT_EQ(Fingerprints(*serial), Fingerprints(*oracle))
        << "querier=" << md.querier << " purpose=" << md.purpose
        << " sql=" << sql;

    std::vector<std::string> serial_rows = OrderedFingerprints(*serial);
    for (int batch : {0, 1, 64, 1024}) {
      for (int threads : {1, 2, 4, 8}) {
        if (batch == 1 && threads == 1) continue;  // the reference itself
        set_exec(threads, batch);
        auto swept = sieve.Execute(sql, md);
        ASSERT_TRUE(swept.ok())
            << "batch=" << batch << " threads=" << threads << " sql=" << sql
            << " -> " << swept.status().ToString();
        EXPECT_EQ(serial_rows, OrderedFingerprints(*swept))
            << "batch=" << batch << " threads=" << threads
            << " querier=" << md.querier << " sql=" << sql;
        EXPECT_EQ(serial->stats, swept->stats)
            << "batch=" << batch << " threads=" << threads << " sql=" << sql
            << " reference=" << serial->stats.ToString()
            << " swept=" << swept->stats.ToString();
      }
    }
  }
  ASSERT_TRUE(sieve.set_options(saved).ok());
}

INSTANTIATE_TEST_SUITE_P(
    HospitalCorpora, HospitalSweep,
    ::testing::Values(SweepConfig{301, false}, SweepConfig{302, true}),
    [](const ::testing::TestParamInfo<SweepConfig>& info) {
      return (info.param.postgres ? std::string("pg_") : std::string("my_")) +
             std::to_string(info.param.seed);
    });

INSTANTIATE_TEST_SUITE_P(
    RandomCorpora, EquivalenceSweep,
    ::testing::Values(SweepConfig{101, false}, SweepConfig{102, false},
                      SweepConfig{103, false}, SweepConfig{104, false},
                      SweepConfig{105, false}, SweepConfig{201, true},
                      SweepConfig{202, true}, SweepConfig{203, true},
                      SweepConfig{204, true}, SweepConfig{205, true}),
    [](const ::testing::TestParamInfo<SweepConfig>& info) {
      return (info.param.postgres ? std::string("pg_") : std::string("my_")) +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace sieve
