// Randomized equivalence sweep: for random policy corpora and random
// queries, the Sieve rewrite must return exactly the tuple set of the
// reference semantics eval(E(P), t) — on both engine profiles. This is the
// paper's sound+secure correctness criterion as a property test.
//
// The sweep is also differential across execution modes: every query runs
// serially and partition-parallel at num_threads ∈ {2, 4, 8}, and the
// parallel runs must reproduce the serial row multiset and the serial
// ExecStats totals exactly (per-worker counters merged at the barrier).

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "tests/test_fixtures.h"

namespace sieve {
namespace {

std::multiset<std::string> Fingerprints(const ResultSet& rs) {
  std::multiset<std::string> out;
  for (const auto& row : rs.rows) {
    std::string fp;
    for (const auto& v : row) fp += v.ToString() + "|";
    out.insert(fp);
  }
  return out;
}

struct SweepConfig {
  uint64_t seed;
  bool postgres;
};

class EquivalenceSweep : public ::testing::TestWithParam<SweepConfig> {};

TEST_P(EquivalenceSweep, SieveMatchesReference) {
  const SweepConfig& cfg = GetParam();
  MiniCampus campus(cfg.postgres ? EngineProfile::PostgresLike()
                                 : EngineProfile::MySqlLike());
  SieveMiddleware sieve(&campus.db(), &campus.groups());
  ASSERT_TRUE(sieve.Init().ok());

  Rng rng(cfg.seed);
  // Random corpus: 5-40 policies across queriers alice/bob/students.
  const char* queriers[] = {"alice", "bob", "students"};
  const char* purposes[] = {"any", "Analytics", "Social"};
  int n_policies = static_cast<int>(rng.Uniform(5, 40));
  for (int i = 0; i < n_policies; ++i) {
    int owner = static_cast<int>(rng.Uniform(0, 9));
    int t1 = -1, t2 = -1, ap = -1;
    if (rng.Chance(0.6)) {
      t1 = static_cast<int>(rng.Uniform(6, 15));
      t2 = t1 + static_cast<int>(rng.Uniform(1, 5));
    }
    if (rng.Chance(0.4)) ap = static_cast<int>(rng.Uniform(0, 5));
    Policy p = campus.MakePolicy(
        owner, queriers[rng.Uniform(0, 2)], purposes[rng.Uniform(0, 2)], t1,
        t2, ap);
    ASSERT_TRUE(sieve.AddPolicy(std::move(p)).ok());
  }

  // Random queries: filters over any column mix, sometimes aggregates.
  for (int q = 0; q < 6; ++q) {
    std::string sql = "SELECT * FROM wifi";
    std::vector<std::string> preds;
    if (rng.Chance(0.5)) {
      preds.push_back("wifiAP = " + std::to_string(rng.Uniform(0, 5)));
    }
    if (rng.Chance(0.5)) {
      int h = static_cast<int>(rng.Uniform(6, 14));
      preds.push_back(StrFormat("ts_time BETWEEN '%02d:00' AND '%02d:00'", h,
                                h + static_cast<int>(rng.Uniform(1, 6))));
    }
    if (rng.Chance(0.3)) {
      preds.push_back(StrFormat("owner IN (%lld, %lld, %lld)",
                                (long long)rng.Uniform(0, 9),
                                (long long)rng.Uniform(0, 9),
                                (long long)rng.Uniform(0, 9)));
    }
    if (!preds.empty()) sql += " WHERE " + Join(preds, " AND ");

    QueryMetadata md{queriers[rng.Uniform(0, 2)], purposes[rng.Uniform(0, 2)]};
    // Group queriers are not people; querier "students" never queries.
    if (md.querier == std::string("students")) md.querier = "carol";

    sieve.set_num_threads(1);
    auto fast = sieve.Execute(sql, md);
    auto oracle = sieve.ExecuteReference(sql, md);
    ASSERT_TRUE(fast.ok()) << sql << " -> " << fast.status().ToString();
    ASSERT_TRUE(oracle.ok()) << sql;
    EXPECT_EQ(Fingerprints(*fast), Fingerprints(*oracle))
        << "querier=" << md.querier << " purpose=" << md.purpose
        << " sql=" << sql;

    // Differential: partition-parallel execution must reproduce the serial
    // rows and stat totals exactly, for both the Sieve rewrite and the
    // reference semantics.
    for (int threads : {2, 4, 8}) {
      sieve.set_num_threads(threads);
      auto parallel = sieve.Execute(sql, md);
      ASSERT_TRUE(parallel.ok())
          << "threads=" << threads << " sql=" << sql << " -> "
          << parallel.status().ToString();
      EXPECT_EQ(Fingerprints(*fast), Fingerprints(*parallel))
          << "threads=" << threads << " querier=" << md.querier
          << " purpose=" << md.purpose << " sql=" << sql;
      EXPECT_EQ(fast->stats, parallel->stats)
          << "threads=" << threads << " sql=" << sql
          << " serial=" << fast->stats.ToString()
          << " parallel=" << parallel->stats.ToString();
      auto parallel_oracle = sieve.ExecuteReference(sql, md);
      ASSERT_TRUE(parallel_oracle.ok()) << "threads=" << threads;
      EXPECT_EQ(Fingerprints(*oracle), Fingerprints(*parallel_oracle))
          << "threads=" << threads << " sql=" << sql;
    }
    sieve.set_num_threads(1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomCorpora, EquivalenceSweep,
    ::testing::Values(SweepConfig{101, false}, SweepConfig{102, false},
                      SweepConfig{103, false}, SweepConfig{104, false},
                      SweepConfig{105, false}, SweepConfig{201, true},
                      SweepConfig{202, true}, SweepConfig{203, true},
                      SweepConfig{204, true}, SweepConfig{205, true}),
    [](const ::testing::TestParamInfo<SweepConfig>& info) {
      return (info.param.postgres ? std::string("pg_") : std::string("my_")) +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace sieve
