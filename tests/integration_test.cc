// End-to-end tests over the scaled-down TIPPERS world: Sieve, the three
// baselines and the reference semantics must all agree on every query type
// and querier profile.

#include <set>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "tests/test_fixtures.h"
#include "workload/baselines.h"
#include "workload/query_gen.h"

namespace sieve {
namespace {

std::multiset<std::string> Fingerprints(const ResultSet& rs) {
  std::multiset<std::string> out;
  for (const auto& row : rs.rows) {
    std::string fp;
    for (const auto& v : row) fp += v.ToString() + "|";
    out.insert(fp);
  }
  return out;
}

class TippersIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = TippersWorld::Get();
    ASSERT_NE(world_, nullptr);
    baselines_ = std::make_unique<Baselines>(
        world_->db.get(), &world_->sieve->policies(), &world_->dataset.groups);
    ASSERT_TRUE(baselines_->Init().ok());
  }

  // A faculty querier with a decent number of policies defined for them.
  QueryMetadata FacultyQuerier() {
    auto faculty = world_->dataset.DevicesWithProfile("faculty");
    // Pick the faculty member with the most policies.
    int best = faculty.empty() ? 0 : faculty[0];
    size_t best_count = 0;
    for (int f : faculty) {
      std::string name = TippersDataset::UserName(f);
      size_t count = 0;
      for (const Policy& p : world_->sieve->policies().policies()) {
        if (EqualsIgnoreCase(p.querier, name)) ++count;
      }
      if (count > best_count) {
        best_count = count;
        best = f;
      }
    }
    return {TippersDataset::UserName(best), "Analytics"};
  }

  TippersWorld* world_ = nullptr;
  std::unique_ptr<Baselines> baselines_;
};

TEST_F(TippersIntegrationTest, WorldSanity) {
  EXPECT_GT(world_->dataset.num_events, 10000u);
  EXPECT_GT(world_->num_policies, 300u);
  auto count = world_->db->ExecuteSql("SELECT COUNT(*) FROM WiFi_Dataset");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(static_cast<size_t>(count->rows[0][0].AsInt()),
            world_->dataset.num_events);
}

TEST_F(TippersIntegrationTest, AllEnforcementPathsAgree) {
  QueryMetadata md = FacultyQuerier();
  TippersQueryGenerator queries(world_->dataset, 5);
  std::vector<std::string> sqls = {
      queries.Q1(QuerySelectivity::kLow), queries.Q1(QuerySelectivity::kMid),
      queries.Q2(QuerySelectivity::kLow), queries.Q2(QuerySelectivity::kMid),
      queries.Q3(QuerySelectivity::kLow, 2),
      TippersQueryGenerator::SelectAll()};

  for (const std::string& sql : sqls) {
    auto reference = world_->sieve->ExecuteReference(sql, md);
    ASSERT_TRUE(reference.ok()) << sql << ": " << reference.status().ToString();
    auto fingerprint = Fingerprints(*reference);

    auto with_sieve = world_->sieve->Execute(sql, md);
    ASSERT_TRUE(with_sieve.ok()) << sql << ": "
                                 << with_sieve.status().ToString();
    EXPECT_EQ(Fingerprints(*with_sieve), fingerprint) << "SIEVE vs ref: " << sql;

    for (BaselineKind kind :
         {BaselineKind::kP, BaselineKind::kI, BaselineKind::kU}) {
      auto result = baselines_->Execute(kind, sql, md, /*timeout=*/120.0);
      ASSERT_TRUE(result.ok())
          << BaselineName(kind) << " " << sql << ": "
          << result.status().ToString();
      EXPECT_EQ(Fingerprints(*result), fingerprint)
          << BaselineName(kind) << " vs ref: " << sql;
    }
  }
}

TEST_F(TippersIntegrationTest, SieveNeverLeaksForeignTuples) {
  // Every tuple Sieve returns must satisfy at least one policy of the
  // querier (sound); checked for several queriers including group grants.
  TippersQueryGenerator queries(world_->dataset, 6);
  std::string sql = queries.Q1(QuerySelectivity::kMid);

  auto residents = world_->dataset.ResidentDevices();
  for (int i = 0; i < 3 && i < static_cast<int>(residents.size()); ++i) {
    QueryMetadata md{TippersDataset::UserName(residents[static_cast<size_t>(i)]),
                     "any"};
    auto with_sieve = world_->sieve->Execute(sql, md);
    ASSERT_TRUE(with_sieve.ok());
    auto reference = world_->sieve->ExecuteReference(sql, md);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(Fingerprints(*with_sieve), Fingerprints(*reference))
        << "querier " << md.querier;
  }
}

TEST_F(TippersIntegrationTest, GroupPoliciesGrantAccessToMembers) {
  // Unconcerned users' default policy shares working-hours data with their
  // affinity group; a member of that group must see strictly more than an
  // outsider with no policies.
  QueryMetadata outsider{"u999999", "any"};
  auto denied = world_->sieve->Execute("SELECT * FROM WiFi_Dataset", outsider);
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied->size(), 0u);
}

TEST_F(TippersIntegrationTest, SieveReadsFewerTuplesThanBaselineP) {
  QueryMetadata md = FacultyQuerier();
  std::string sql = TippersQueryGenerator::SelectAll();

  auto with_sieve = world_->sieve->Execute(sql, md);
  ASSERT_TRUE(with_sieve.ok());
  auto base_p = baselines_->Execute(BaselineKind::kP, sql, md, 120.0);
  ASSERT_TRUE(base_p.ok());

  uint64_t sieve_read = with_sieve->stats.tuples_scanned +
                        with_sieve->stats.index_probe_rows;
  uint64_t base_read =
      base_p->stats.tuples_scanned + base_p->stats.index_probe_rows;
  EXPECT_LT(sieve_read, base_read)
      << "guards should cut tuples read (sieve=" << sieve_read
      << " baseline=" << base_read << ")";

  // And dramatically fewer policy predicate evaluations.
  EXPECT_LT(with_sieve->stats.comparisons, base_p->stats.comparisons);
}

TEST_F(TippersIntegrationTest, GuardSavingsMatchTable6Shape) {
  // Table 6's "Savings" row: guards eliminate ~99% of policy checks versus
  // inline DNF over a full scan. We approximate with comparison counts.
  QueryMetadata md = FacultyQuerier();
  std::string sql = TippersQueryGenerator::SelectAll();
  auto with_sieve = world_->sieve->Execute(sql, md);
  auto base_p = baselines_->Execute(BaselineKind::kP, sql, md, 120.0);
  ASSERT_TRUE(with_sieve.ok() && base_p.ok());
  double ratio = static_cast<double>(with_sieve->stats.comparisons) /
                 static_cast<double>(base_p->stats.comparisons + 1);
  EXPECT_LT(ratio, 0.2) << "expected ≥80% fewer predicate evaluations";
}

}  // namespace
}  // namespace sieve
