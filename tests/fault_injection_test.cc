// Fault-injection framework semantics: trigger kinds are deterministic,
// spec parsing is strict (a malformed entry arms nothing), counters track
// hits vs fires, and the compiled-in macro honors arming state.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"

namespace sieve {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().DisarmAll(); }
  void TearDown() override { FaultInjector::Instance().DisarmAll(); }

  /// Runs `hits` hits of `point` and returns which (1-based) hits fired.
  std::vector<uint64_t> FiringHits(const char* point, int hits) {
    std::vector<uint64_t> fired;
    for (int i = 1; i <= hits; ++i) {
      if (SIEVE_FAULT_POINT(point)) fired.push_back(static_cast<uint64_t>(i));
    }
    return fired;
  }
};

TEST_F(FaultInjectionTest, UnarmedNeverFires) {
  EXPECT_FALSE(FaultInjector::Enabled());
  EXPECT_TRUE(FiringHits("test.point", 100).empty());
  // Unarmed hits are not even recorded.
  EXPECT_EQ(FaultInjector::Instance().stats("test.point").hits, 0u);
}

TEST_F(FaultInjectionTest, AlwaysFiresEveryHit) {
  FaultInjector::Instance().Arm("test.point", FaultTrigger::Always());
  EXPECT_TRUE(FaultInjector::Enabled());
  EXPECT_EQ(FiringHits("test.point", 5),
            (std::vector<uint64_t>{1, 2, 3, 4, 5}));
  FaultPointStats s = FaultInjector::Instance().stats("test.point");
  EXPECT_EQ(s.hits, 5u);
  EXPECT_EQ(s.fires, 5u);
}

TEST_F(FaultInjectionTest, OffIsEquivalentToDisarmed) {
  FaultInjector::Instance().Arm("test.point", FaultTrigger::Off());
  EXPECT_FALSE(FaultInjector::Enabled());
  EXPECT_TRUE(FiringHits("test.point", 10).empty());
}

TEST_F(FaultInjectionTest, NthFiresExactlyOnce) {
  FaultInjector::Instance().Arm("test.point", FaultTrigger::Nth(3));
  EXPECT_EQ(FiringHits("test.point", 10), (std::vector<uint64_t>{3}));
}

TEST_F(FaultInjectionTest, EveryNthFiresPeriodically) {
  FaultInjector::Instance().Arm("test.point", FaultTrigger::EveryNth(4));
  EXPECT_EQ(FiringHits("test.point", 12), (std::vector<uint64_t>{4, 8, 12}));
}

TEST_F(FaultInjectionTest, FromNthFiresFromThenOn) {
  FaultInjector::Instance().Arm("test.point", FaultTrigger::FromNth(7));
  EXPECT_EQ(FiringHits("test.point", 9), (std::vector<uint64_t>{7, 8, 9}));
}

TEST_F(FaultInjectionTest, RangeFiresInclusive) {
  FaultInjector::Instance().Arm("test.point", FaultTrigger::Range(2, 4));
  EXPECT_EQ(FiringHits("test.point", 8), (std::vector<uint64_t>{2, 3, 4}));
}

TEST_F(FaultInjectionTest, ProbabilityIsDeterministicPerSeed) {
  FaultInjector::Instance().Arm("test.point",
                                FaultTrigger::Probability(0.3, 7));
  std::vector<uint64_t> first = FiringHits("test.point", 200);
  EXPECT_GT(first.size(), 20u);   // ~60 expected
  EXPECT_LT(first.size(), 120u);
  // Re-arming with the same seed replays the identical firing sequence.
  FaultInjector::Instance().Arm("test.point",
                                FaultTrigger::Probability(0.3, 7));
  EXPECT_EQ(FiringHits("test.point", 200), first);
  FaultInjector::Instance().Arm("test.point",
                                FaultTrigger::Probability(0.3, 8));
  EXPECT_NE(FiringHits("test.point", 200), first);
}

TEST_F(FaultInjectionTest, ProbabilityExtremes) {
  FaultInjector::Instance().Arm("p0", FaultTrigger::Probability(0.0));
  EXPECT_TRUE(FiringHits("p0", 50).empty());
  FaultInjector::Instance().Arm("p1", FaultTrigger::Probability(1.0));
  EXPECT_EQ(FiringHits("p1", 3), (std::vector<uint64_t>{1, 2, 3}));
}

TEST_F(FaultInjectionTest, ReArmResetsCounters) {
  FaultInjector::Instance().Arm("test.point", FaultTrigger::Nth(2));
  (void)FiringHits("test.point", 5);
  EXPECT_EQ(FaultInjector::Instance().stats("test.point").hits, 5u);
  FaultInjector::Instance().Arm("test.point", FaultTrigger::Nth(2));
  EXPECT_EQ(FaultInjector::Instance().stats("test.point").hits, 0u);
  // The Nth counter restarted too: hit 2 fires again.
  EXPECT_EQ(FiringHits("test.point", 3), (std::vector<uint64_t>{2}));
}

TEST_F(FaultInjectionTest, DisarmAndDisarmAll) {
  FaultInjector::Instance().Arm("a", FaultTrigger::Always());
  FaultInjector::Instance().Arm("b", FaultTrigger::Always());
  EXPECT_EQ(FaultInjector::Instance().ArmedPoints().size(), 2u);
  FaultInjector::Instance().Disarm("a");
  EXPECT_TRUE(FiringHits("a", 3).empty());
  EXPECT_EQ(FiringHits("b", 1), (std::vector<uint64_t>{1}));
  FaultInjector::Instance().DisarmAll();
  EXPECT_FALSE(FaultInjector::Enabled());
  EXPECT_TRUE(FaultInjector::Instance().ArmedPoints().empty());
}

TEST_F(FaultInjectionTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault f("scoped.point", FaultTrigger::Always());
    EXPECT_EQ(FiringHits("scoped.point", 1), (std::vector<uint64_t>{1}));
  }
  EXPECT_FALSE(FaultInjector::Enabled());
  EXPECT_TRUE(FiringHits("scoped.point", 3).empty());
}

TEST_F(FaultInjectionTest, LoadSpecArmsEveryEntry) {
  Status st = FaultInjector::Instance().LoadSpec(
      "a=always;b=nth:3;c=prob:0.5:9;d=every:2;e=from:4;f=range:2-5;g=off");
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(FiringHits("a", 2), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(FiringHits("b", 4), (std::vector<uint64_t>{3}));
  EXPECT_EQ(FiringHits("d", 4), (std::vector<uint64_t>{2, 4}));
  EXPECT_EQ(FiringHits("e", 5), (std::vector<uint64_t>{4, 5}));
  EXPECT_EQ(FiringHits("f", 6), (std::vector<uint64_t>{2, 3, 4, 5}));
  EXPECT_TRUE(FiringHits("g", 5).empty());
}

TEST_F(FaultInjectionTest, MalformedSpecArmsNothing) {
  for (const char* bad :
       {"a", "a=", "=always", "a=nope", "a=nth", "a=nth:x", "a=prob:2.0",
        "a=prob:-0.1", "a=range:5-2", "a=range:0-3", "a=nth:0",
        "a=always;b=bogus"}) {
    Status st = FaultInjector::Instance().LoadSpec(bad);
    EXPECT_FALSE(st.ok()) << "spec '" << bad << "' should be rejected";
    EXPECT_TRUE(FaultInjector::Instance().ArmedPoints().empty())
        << "spec '" << bad << "' armed something";
  }
}

TEST_F(FaultInjectionTest, EmptySpecIsNoop) {
  EXPECT_TRUE(FaultInjector::Instance().LoadSpec("").ok());
  EXPECT_TRUE(FaultInjector::Instance().ArmedPoints().empty());
}

TEST_F(FaultInjectionTest, LoadFromEnvUnsetIsNoop) {
  Status st = FaultInjector::Instance().LoadFromEnv(
      "SIEVE_FAULT_SPEC_TEST_DOES_NOT_EXIST");
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(FaultInjector::Instance().ArmedPoints().empty());
}

TEST_F(FaultInjectionTest, InjectFaultStatusNamesThePoint) {
  Status st = SIEVE_INJECT_FAULT("some.point");
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
  EXPECT_NE(st.message().find("some.point"), std::string::npos);
}

}  // namespace
}  // namespace sieve
