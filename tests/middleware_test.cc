#include "sieve/middleware.h"

#include <gtest/gtest.h>

#include "sieve/cost_model.h"
#include "tests/test_fixtures.h"

namespace sieve {
namespace {

TEST(MiddlewareTest, InitIsIdempotent) {
  MiniCampus campus;
  SieveMiddleware sieve(&campus.db(), &campus.groups());
  ASSERT_TRUE(sieve.Init().ok());
  ASSERT_TRUE(sieve.Init().ok());  // second init must not fail
}

TEST(MiddlewareTest, TimeoutFlowsThrough) {
  MiniCampus campus;
  SieveOptions options;
  options.timeout_seconds = 1e-7;  // effectively instant
  SieveMiddleware sieve(&campus.db(), &campus.groups(), options);
  ASSERT_TRUE(sieve.Init().ok());
  ASSERT_TRUE(sieve.AddPolicy(campus.MakePolicy(1, "alice", "any")).ok());
  auto result = sieve.Execute("SELECT * FROM wifi", {"alice", "any"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST(MiddlewareTest, DerivedValuePolicyEnforced) {
  // The paper's "John allows access only when he is with Prof. Smith"
  // policy: the object condition's value is a correlated subquery.
  MiniCampus campus;
  SieveMiddleware sieve(&campus.db(), &campus.groups());
  ASSERT_TRUE(sieve.Init().ok());

  // Put the professor (owner 9) at a known AP/time footprint; John is
  // owner 1. John's rows are visible iff the professor was at the same AP
  // at the same time on the same date.
  Policy p;
  p.table_name = "wifi";
  p.owner = Value::Int(1);
  p.querier = "alice";
  p.purpose = "any";
  p.object_conditions.push_back(ObjectCondition::Eq("owner", Value::Int(1)));
  // Correlated refs are written with the outer table's qualifier so they
  // do not resolve against w2 inside the subquery scope.
  p.object_conditions.push_back(ObjectCondition::Derived(
      "wifiAP",
      "SELECT MAX(w2.wifiAP) FROM wifi AS w2 WHERE w2.owner = 9 AND "
      "w2.ts_time = wifi.ts_time AND w2.ts_date = wifi.ts_date"));
  ASSERT_TRUE(sieve.AddPolicy(std::move(p)).ok());

  auto result = sieve.Execute("SELECT * FROM wifi", {"alice", "any"});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // MiniCampus generates identical schedules per owner, so John and the
  // professor share every (ap, time, date) slot: all 60 rows visible.
  EXPECT_EQ(result->size(), 60u);
  for (const auto& row : result->rows) {
    EXPECT_EQ(row[2].AsInt(), 1);  // only John's rows
  }

  // Against the reference semantics too.
  auto reference = sieve.ExecuteReference("SELECT * FROM wifi", {"alice", "any"});
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(result->size(), reference->size());
}

TEST(MiddlewareTest, MultipleProtectedTables) {
  MiniCampus campus;
  // Second protected table with its own policies.
  ASSERT_TRUE(campus.db()
                  .CreateTable("badges", Schema({{"id", DataType::kInt},
                                                 {"owner", DataType::kInt}}))
                  .ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        campus.db().Insert("badges", Row{Value::Int(i), Value::Int(i % 3)}).ok());
  }
  ASSERT_TRUE(campus.db().CreateIndex("badges", "owner").ok());
  ASSERT_TRUE(campus.db().Analyze().ok());

  SieveMiddleware sieve(&campus.db(), &campus.groups());
  ASSERT_TRUE(sieve.Init().ok());
  ASSERT_TRUE(sieve.AddPolicy(campus.MakePolicy(1, "alice", "any")).ok());
  Policy badge_policy;
  badge_policy.table_name = "badges";
  badge_policy.owner = Value::Int(2);
  badge_policy.querier = "alice";
  badge_policy.purpose = "any";
  badge_policy.object_conditions.push_back(
      ObjectCondition::Eq("owner", Value::Int(2)));
  ASSERT_TRUE(sieve.AddPolicy(std::move(badge_policy)).ok());

  auto rewrite = sieve.Rewrite(
      "SELECT * FROM wifi AS w, badges AS b WHERE w.owner = b.owner",
      {"alice", "any"});
  ASSERT_TRUE(rewrite.ok());
  EXPECT_EQ(rewrite->stmt->ctes.size(), 2u);  // one CTE per protected table

  auto result = sieve.Execute(
      "SELECT * FROM wifi AS w, badges AS b WHERE w.owner = b.owner",
      {"alice", "any"});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // wifi restricted to owner 1, badges to owner 2: join on owner is empty.
  EXPECT_EQ(result->size(), 0u);
}

TEST(MiddlewareTest, OrderSensitivityPolicyBeforeAggregation) {
  // Section 3.1: policies must be applied before aggregation — an
  // aggregate over the rewritten table must only see permitted rows.
  MiniCampus campus;
  SieveMiddleware sieve(&campus.db(), &campus.groups());
  ASSERT_TRUE(sieve.Init().ok());
  ASSERT_TRUE(sieve.AddPolicy(campus.MakePolicy(2, "alice", "any")).ok());
  auto result = sieve.Execute("SELECT COUNT(*) FROM wifi", {"alice", "any"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt(), 60);  // not 600
}

TEST(MiddlewareTest, CalibrationProducesSaneParams) {
  Database db;
  auto params = CostModel::Calibrate(&db);
  ASSERT_TRUE(params.ok()) << params.status().ToString();
  EXPECT_GT(params->cr_seq, 0.0);
  EXPECT_GE(params->cr_random, params->cr_seq);
  EXPECT_GT(params->ce, 0.0);
  EXPECT_GT(params->udf_invocation, params->ce);
  // The UDF boundary must dominate a single predicate evaluation by orders
  // of magnitude (that is what makes Fig. 3's trade-off exist).
  EXPECT_GT(params->udf_invocation / params->ce, 10.0);
}

TEST(MiddlewareTest, MeasureAlphaOnKnownWorkload) {
  MiniCampus campus;
  // Two policies; the first matches owner 0 (1/10 of rows), so for 90% of
  // tuples both policies are checked.
  std::vector<ExprPtr> exprs;
  exprs.push_back(campus.MakePolicy(0, "a", "b").ObjectExpr());
  exprs.push_back(campus.MakePolicy(1, "a", "b").ObjectExpr());
  auto alpha = CostModel::MeasureAlpha(&campus.db(), "wifi", exprs, 600);
  ASSERT_TRUE(alpha.ok()) << alpha.status().ToString();
  // owner 0 rows: check 1 of 2 (0.5); owner 1 rows: check 2 of 2 (1.0);
  // others: 2 of 2 (1.0). Expected ≈ 0.95.
  EXPECT_NEAR(*alpha, 0.95, 0.02);
}

TEST(MiddlewareTest, RewriteSqlRoundTripsThroughParser) {
  MiniCampus campus;
  SieveMiddleware sieve(&campus.db(), &campus.groups());
  ASSERT_TRUE(sieve.Init().ok());
  for (int owner = 0; owner < 3; ++owner) {
    ASSERT_TRUE(
        sieve.AddPolicy(campus.MakePolicy(owner, "alice", "any", 9, 11)).ok());
  }
  auto rewrite = sieve.Rewrite("SELECT * FROM wifi WHERE wifiAP = 2",
                               {"alice", "any"});
  ASSERT_TRUE(rewrite.ok());
  // The emitted SQL must be parseable and produce identical results.
  auto reparsed = campus.db().ExecuteSql(rewrite->sql,
                                         nullptr /* no delta in this corpus */);
  ASSERT_TRUE(reparsed.ok()) << rewrite->sql;
  auto direct = campus.db().ExecuteStmt(*rewrite->stmt);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(reparsed->size(), direct->size());
}

}  // namespace
}  // namespace sieve
