// SharedGate edge cases: thread-agnostic ownership (a shared pin taken on
// one thread and released on another — the property the server's cursor
// hand-off depends on), writer preference, try_* semantics, and a mixed
// reader/writer/cross-thread stress test (runs under TSan in CI via the
// "unit" label).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/shared_gate.h"

namespace sieve {
namespace {

using namespace std::chrono_literals;

TEST(SharedGateTest, SharedAcquireOnOneThreadReleaseOnAnother) {
  SharedGate gate;
  gate.lock_shared();  // pin taken on the main thread

  // A writer queues behind the pin.
  std::atomic<bool> writer_in{false};
  std::thread writer([&] {
    gate.lock();
    writer_in.store(true);
    gate.unlock();
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(writer_in.load());

  // A different thread releases the pin; the writer must proceed.
  std::thread releaser([&] { gate.unlock_shared(); });
  releaser.join();
  writer.join();
  EXPECT_TRUE(writer_in.load());
}

TEST(SharedGateTest, ExclusiveAcquireOnOneThreadReleaseOnAnother) {
  SharedGate gate;
  gate.lock();
  std::atomic<bool> reader_in{false};
  std::thread reader([&] {
    gate.lock_shared();
    reader_in.store(true);
    gate.unlock_shared();
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(reader_in.load());
  std::thread releaser([&] { gate.unlock(); });
  releaser.join();
  reader.join();
  EXPECT_TRUE(reader_in.load());
}

TEST(SharedGateTest, WaitingWriterBlocksNewReaders) {
  SharedGate gate;
  gate.lock_shared();
  // Writer queues behind the reader...
  std::thread writer([&] {
    gate.lock();
    gate.unlock();
  });
  // ...and once it waits, new readers must queue behind the writer
  // (writer preference): try_lock_shared refuses.
  bool blocked = false;
  for (int i = 0; i < 200; ++i) {
    if (!gate.try_lock_shared()) {
      blocked = true;
      break;
    }
    gate.unlock_shared();
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(blocked);
  gate.unlock_shared();
  writer.join();
  // Writer gone: readers flow again.
  EXPECT_TRUE(gate.try_lock_shared());
  gate.unlock_shared();
}

TEST(SharedGateTest, TrySemantics) {
  SharedGate gate;
  EXPECT_TRUE(gate.try_lock());
  EXPECT_FALSE(gate.try_lock());
  EXPECT_FALSE(gate.try_lock_shared());
  gate.unlock();
  EXPECT_TRUE(gate.try_lock_shared());
  EXPECT_TRUE(gate.try_lock_shared());  // shared is reentrant across holders
  EXPECT_FALSE(gate.try_lock());
  gate.unlock_shared();
  gate.unlock_shared();
  EXPECT_TRUE(gate.try_lock());
  gate.unlock();
}

TEST(SharedGateTest, StdLockAdaptersWork) {
  SharedGate gate;
  {
    std::shared_lock<SharedGate> r1(gate);
    std::shared_lock<SharedGate> r2(gate);
  }
  {
    std::unique_lock<SharedGate> w(gate);
  }
  SUCCEED();
}

// Stress: pins are created on producer threads, handed through a queue
// and released on consumer threads, while writers bump a guarded counter.
// Invariant (checked by the writers): no reader observes a torn write —
// modeled here by `shared_value` being stable while any pin exists.
TEST(SharedGateTest, CrossThreadPinStress) {
  SharedGate gate;
  constexpr int kProducers = 3;
  constexpr int kWriters = 2;
  constexpr int kPinsPerProducer = 200;
  constexpr int kWritesPerWriter = 50;

  std::mutex qmu;
  std::condition_variable qcv;
  std::deque<int> pins;  // tokens for pins currently held by the gate
  std::atomic<bool> done_producing{false};

  int shared_value = 0;          // mutated only under the exclusive gate
  std::atomic<int> torn_reads{0};

  std::vector<std::thread> threads;
  // Producers: take a shared pin, observe the guarded value twice, queue
  // the pin for a consumer to release.
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPinsPerProducer; ++i) {
        gate.lock_shared();
        int v1 = shared_value;
        std::this_thread::yield();
        int v2 = shared_value;
        if (v1 != v2) torn_reads.fetch_add(1);
        {
          std::lock_guard<std::mutex> l(qmu);
          pins.push_back(1);
        }
        qcv.notify_one();
      }
    });
  }
  // Consumers: release pins they did not acquire.
  std::atomic<int> released{0};
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        std::unique_lock<std::mutex> l(qmu);
        qcv.wait(l, [&] {
          return !pins.empty() || done_producing.load();
        });
        if (pins.empty()) return;
        pins.pop_front();
        l.unlock();
        gate.unlock_shared();
        released.fetch_add(1);
      }
    });
  }
  // Writers: exclusive increments.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kWritesPerWriter; ++i) {
        gate.lock();
        ++shared_value;
        gate.unlock();
      }
    });
  }

  for (int p = 0; p < kProducers; ++p) threads[static_cast<size_t>(p)].join();
  done_producing.store(true);
  qcv.notify_all();
  for (size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(released.load(), kProducers * kPinsPerProducer);
  EXPECT_EQ(shared_value, kWriters * kWritesPerWriter);
  // Everything released: an exclusive acquire succeeds immediately.
  EXPECT_TRUE(gate.try_lock());
  gate.unlock();
}

}  // namespace
}  // namespace sieve
