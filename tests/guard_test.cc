#include "sieve/candidate_guards.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "sieve/guard_selection.h"
#include "tests/test_fixtures.h"

namespace sieve {
namespace {

class GuardTest : public ::testing::Test {
 protected:
  GuardTest() : store_(&campus_.db()) {
    EXPECT_TRUE(store_.Init().ok());
  }

  std::vector<const Policy*> StorePolicies(std::vector<Policy> policies) {
    std::vector<int64_t> ids;
    for (auto& p : policies) {
      auto id = store_.AddPolicy(std::move(p));
      EXPECT_TRUE(id.ok());
      ids.push_back(*id);
    }
    std::vector<const Policy*> out;
    for (int64_t id : ids) out.push_back(store_.FindPolicy(id));
    return out;
  }

  MiniCampus campus_;
  PolicyStore store_;
  CostModel cost_;
};

TEST_F(GuardTest, OwnerConditionsAlwaysYieldCandidates) {
  auto policies = StorePolicies({campus_.MakePolicy(1, "alice", "any"),
                                 campus_.MakePolicy(2, "alice", "any")});
  CandidateGuardGenerator generator(&campus_.db(), &cost_);
  auto candidates = generator.Generate(policies, "wifi");
  ASSERT_GE(candidates.size(), 2u);
  // Each policy is covered by at least one candidate.
  std::unordered_set<int64_t> covered;
  for (const auto& c : candidates) {
    for (int64_t id : c.policy_ids) covered.insert(id);
  }
  EXPECT_EQ(covered.size(), 2u);
}

TEST_F(GuardTest, IdenticalConditionsCoalesce) {
  // Both policies share wifiAP = 2: one candidate groups them.
  auto policies =
      StorePolicies({campus_.MakePolicy(1, "alice", "any", -1, -1, 2),
                     campus_.MakePolicy(2, "alice", "any", -1, -1, 2)});
  CandidateGuardGenerator generator(&campus_.db(), &cost_);
  auto candidates = generator.Generate(policies, "wifi");
  bool found_shared = false;
  for (const auto& c : candidates) {
    if (c.attr == "wifiap" && c.policy_ids.size() == 2) found_shared = true;
  }
  EXPECT_TRUE(found_shared);
}

TEST_F(GuardTest, DisjointRangesNeverMerge) {
  // Theorem 1: [9,10] and [15,16] on ts_time are disjoint.
  auto policies = StorePolicies({campus_.MakePolicy(1, "alice", "any", 9, 10),
                                 campus_.MakePolicy(2, "alice", "any", 15, 16)});
  CandidateGuardGenerator generator(&campus_.db(), &cost_);
  auto candidates = generator.Generate(policies, "wifi");
  for (const auto& c : candidates) {
    if (c.attr != "ts_time") continue;
    // No candidate may span both original ranges.
    EXPECT_FALSE(c.lo.raw() <= 10 * 3600 && c.hi.raw() >= 15 * 3600)
        << c.ToString();
  }
}

TEST_F(GuardTest, HeavilyOverlappingRangesMerge) {
  // [9,13] and [10,13] overlap by 3/4 of the union, above the default
  // ce/(cr+ce) threshold, so Theorem 1 says merging is beneficial.
  ASSERT_LT(cost_.MergeThreshold(), 0.75);
  auto policies = StorePolicies({campus_.MakePolicy(1, "alice", "any", 9, 13),
                                 campus_.MakePolicy(2, "alice", "any", 10, 13)});
  CandidateGuardGenerator generator(&campus_.db(), &cost_);
  auto candidates = generator.Generate(policies, "wifi");
  bool merged = false;
  for (const auto& c : candidates) {
    if (c.attr == "ts_time" && c.policy_ids.size() == 2 &&
        c.lo.raw() == 9 * 3600 && c.hi.raw() == 13 * 3600) {
      merged = true;
    }
  }
  EXPECT_TRUE(merged);
}

TEST_F(GuardTest, MergeBeneficialRespectsThreshold) {
  // With an artificially high merge threshold (ce >> cr), overlapping
  // candidates should not merge.
  CostParams params;
  params.ce = 1.0;
  params.cr_random = 1e-9;
  CostModel expensive_eval(params);
  ASSERT_GT(expensive_eval.MergeThreshold(), 0.99);

  auto policies = StorePolicies({campus_.MakePolicy(1, "alice", "any", 9, 12),
                                 campus_.MakePolicy(2, "alice", "any", 10, 13)});
  CandidateGuardGenerator generator(&campus_.db(), &expensive_eval);
  auto candidates = generator.Generate(policies, "wifi");
  for (const auto& c : candidates) {
    if (c.attr == "ts_time") {
      EXPECT_LE(c.policy_ids.size(), 1u) << c.ToString();
    }
  }
}

TEST_F(GuardTest, SelectionCoversEveryPolicyExactlyOnce) {
  std::vector<Policy> policies;
  for (int owner = 0; owner < 10; ++owner) {
    policies.push_back(campus_.MakePolicy(owner, "alice", "any", 9, 11, 2));
    policies.push_back(
        campus_.MakePolicy(owner, "alice", "any", 14, 16, owner % 6));
  }
  auto stored = StorePolicies(std::move(policies));

  GuardedExpressionBuilder builder(&campus_.db(), &store_, &cost_, nullptr);
  auto ge = builder.BuildFromPolicies(stored, {"alice", "any"}, "wifi");
  ASSERT_TRUE(ge.ok());

  std::multiset<int64_t> covered;
  for (const auto& guard : ge->guards) {
    for (int64_t id : guard.guard.policy_ids) covered.insert(id);
  }
  EXPECT_EQ(covered.size(), stored.size());
  for (const Policy* p : stored) {
    EXPECT_EQ(covered.count(p->id), 1u) << "policy " << p->id;
  }
}

TEST_F(GuardTest, GuardsImplyTheirPartitionPolicies) {
  // Soundness of guards: every tuple matching a partition policy must match
  // the guard (oc_j => oc_guard), i.e. guard ∧ partition ≡ partition.
  std::vector<Policy> policies;
  for (int owner = 0; owner < 8; ++owner) {
    policies.push_back(
        campus_.MakePolicy(owner, "alice", "any", 8 + owner % 3, 12));
  }
  auto stored = StorePolicies(std::move(policies));
  GuardedExpressionBuilder builder(&campus_.db(), &store_, &cost_, nullptr);
  auto ge = builder.BuildFromPolicies(stored, {"alice", "any"}, "wifi");
  ASSERT_TRUE(ge.ok());

  // For each guard, filter by partition-only and by guard ∧ partition; row
  // counts must agree.
  for (const auto& guard : ge->guards) {
    std::vector<ExprPtr> partition_exprs;
    for (int64_t id : guard.guard.policy_ids) {
      partition_exprs.push_back(store_.FindPolicy(id)->ObjectExpr());
    }
    ExprPtr partition = MakeOr(std::move(partition_exprs));
    ExprPtr guarded = MakeAnd({guard.guard.ToExpr(), partition->Clone()});

    std::string q1 = "SELECT COUNT(*) FROM wifi WHERE " + partition->ToSql();
    std::string q2 = "SELECT COUNT(*) FROM wifi WHERE " + guarded->ToSql();
    auto r1 = campus_.db().ExecuteSql(q1);
    auto r2 = campus_.db().ExecuteSql(q2);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    EXPECT_EQ(r1->rows[0][0].AsInt(), r2->rows[0][0].AsInt())
        << "guard is not implied by its partition: "
        << guard.guard.ToString();
  }
}

TEST_F(GuardTest, DeltaChoiceFollowsCrossover) {
  CostModel cost;  // defaults
  size_t crossover = cost.DeltaCrossover();
  EXPECT_GT(crossover, 10u);
  EXPECT_LT(crossover, 10000u);
  EXPECT_FALSE(cost.PreferDelta(crossover > 0 ? crossover - 5 : 0));
  EXPECT_TRUE(cost.PreferDelta(crossover + 5));
}

TEST_F(GuardTest, UtilityPrefersSelectiveGuardsWithBigPartitions) {
  CostModel cost;
  // Selective guard with many policies beats broad guard with few.
  double good = cost.GuardUtility(10000, 100, 50);
  double bad = cost.GuardUtility(10000, 5000, 2);
  EXPECT_GT(good, bad);
}

TEST_F(GuardTest, GeneratedGuardSelectivitiesAreFractions) {
  auto stored = StorePolicies({campus_.MakePolicy(1, "alice", "any", 9, 10)});
  CandidateGuardGenerator generator(&campus_.db(), &cost_);
  auto candidates = generator.Generate(stored, "wifi");
  for (const auto& c : candidates) {
    EXPECT_GE(c.selectivity, 0.0);
    EXPECT_LE(c.selectivity, 1.0);
  }
}

TEST_F(GuardTest, GuardStoreRoundTrip) {
  GuardStore guards(&campus_.db(), &store_);
  ASSERT_TRUE(guards.Init().ok());
  auto stored = StorePolicies({campus_.MakePolicy(1, "alice", "any", 9, 10),
                               campus_.MakePolicy(2, "alice", "any")});
  GuardedExpressionBuilder builder(&campus_.db(), &store_, &cost_, nullptr);
  auto ge = builder.BuildFromPolicies(stored, {"alice", "any"}, "wifi");
  ASSERT_TRUE(ge.ok());
  ASSERT_TRUE(guards.Put(std::move(ge).value()).ok());

  const GuardedExpression* fetched = guards.Get("alice", "any", "wifi");
  ASSERT_NE(fetched, nullptr);
  EXPECT_FALSE(guards.IsOutdated("alice", "any", "wifi"));
  EXPECT_GE(fetched->guards.size(), 1u);
  // Every guard is findable by id.
  for (const auto& g : fetched->guards) {
    EXPECT_EQ(guards.FindGuard(g.id), &g);
  }
  // Persisted rows exist.
  auto rge = campus_.db().ExecuteSql("SELECT COUNT(*) FROM rGE");
  ASSERT_TRUE(rge.ok());
  EXPECT_EQ(rge->rows[0][0].AsInt(), 1);
  auto rgp = campus_.db().ExecuteSql("SELECT COUNT(*) FROM rGP");
  ASSERT_TRUE(rgp.ok());
  EXPECT_EQ(static_cast<size_t>(rgp->rows[0][0].AsInt()),
            fetched->TotalPolicies());
}

TEST_F(GuardTest, OutdatedFlagLifecycle) {
  GuardStore guards(&campus_.db(), &store_);
  ASSERT_TRUE(guards.Init().ok());
  EXPECT_TRUE(guards.IsOutdated("alice", "any", "wifi"));  // never generated
  auto stored = StorePolicies({campus_.MakePolicy(1, "alice", "any")});
  GuardedExpressionBuilder builder(&campus_.db(), &store_, &cost_, nullptr);
  auto ge = builder.BuildFromPolicies(stored, {"alice", "any"}, "wifi");
  ASSERT_TRUE(ge.ok());
  ASSERT_TRUE(guards.Put(std::move(ge).value()).ok());
  EXPECT_FALSE(guards.IsOutdated("alice", "any", "wifi"));
  guards.MarkOutdated("alice", "any", "wifi");
  EXPECT_TRUE(guards.IsOutdated("alice", "any", "wifi"));
}

TEST(CostModelTest, OptimalKDecreasesWithQueryRate) {
  CostModel cost;
  double k_low_rate = cost.OptimalRegenerationK(1000, 0.1, 0.1);
  double k_high_rate = cost.OptimalRegenerationK(1000, 0.1, 10.0);
  EXPECT_GT(k_low_rate, k_high_rate);
}

TEST(CostModelTest, OptimalKGrowsWithRegenCost) {
  CostModel cost;
  EXPECT_GT(cost.OptimalRegenerationK(1000, 10.0, 1.0),
            cost.OptimalRegenerationK(1000, 0.01, 1.0));
}

}  // namespace
}  // namespace sieve
