#ifndef SIEVE_TESTS_SERVER_TEST_UTIL_H_
#define SIEVE_TESTS_SERVER_TEST_UTIL_H_

// Shared harness for the network front-end tests: a MiniCampus dataset
// behind a SieveMiddleware, a token registry with one token per campus
// identity, and a loopback SieveServer on an ephemeral port.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "server/client.h"
#include "server/server.h"
#include "sieve/middleware.h"
#include "tests/test_fixtures.h"

namespace sieve::server {

/// Grants used across the server tests:
///   alice  — owners 0..4, any purpose (sees 300 of 600 wifi rows);
///   bob    — owner 5, Analytics only;
///   carol  — via the `students` group, owner 6, Social.
inline void AddCampusPolicies(MiniCampus* campus, SieveMiddleware* mw) {
  for (int owner = 0; owner < 5; ++owner) {
    ASSERT_TRUE(mw->AddPolicy(campus->MakePolicy(owner, "alice", "any")).ok());
  }
  ASSERT_TRUE(mw->AddPolicy(campus->MakePolicy(5, "bob", "Analytics")).ok());
  ASSERT_TRUE(
      mw->AddPolicy(campus->MakePolicy(6, "students", "Social")).ok());
}

inline QueryMetadata MakeMd(const std::string& querier,
                            const std::string& purpose) {
  QueryMetadata md;
  md.querier = querier;
  md.purpose = purpose;
  return md;
}

class ServerHarness {
 public:
  explicit ServerHarness(ServerOptions options = {},
                         EngineProfile profile = EngineProfile::MySqlLike(),
                         SieveOptions sieve_options = {})
      : campus_(profile) {
    mw_ = std::make_unique<SieveMiddleware>(&campus_.db(), &campus_.groups(),
                                            sieve_options);
    EXPECT_TRUE(mw_->Init().ok());
    AddCampusPolicies(&campus_, mw_.get());
    auth_.RegisterToken("tok-alice", MakeMd("alice", "any"));
    auth_.RegisterToken("tok-bob", MakeMd("bob", "Analytics"));
    auth_.RegisterToken("tok-carol", MakeMd("carol", "Social"));
    server_ = std::make_unique<SieveServer>(mw_.get(), &auth_, options);
    EXPECT_TRUE(server_->Start().ok());
  }

  ~ServerHarness() { server_->Stop(); }

  MiniCampus& campus() { return campus_; }
  SieveMiddleware& mw() { return *mw_; }
  AuthRegistry& auth() { return auth_; }
  SieveServer& server() { return *server_; }
  uint16_t port() const { return server_->port(); }

  /// A connected + authenticated client, failing the test on error.
  std::unique_ptr<SieveClient> Client(const std::string& token) {
    auto c = std::make_unique<SieveClient>();
    EXPECT_TRUE(c->Connect("127.0.0.1", port()).ok());
    auto md = c->Hello(token);
    EXPECT_TRUE(md.ok()) << md.status().ToString();
    return c;
  }

 private:
  MiniCampus campus_;
  std::unique_ptr<SieveMiddleware> mw_;
  AuthRegistry auth_;
  std::unique_ptr<SieveServer> server_;
};

/// Raw blocking TCP connection for protocol-level (mis)behavior tests.
inline int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

/// Sends raw bytes (not necessarily a whole frame).
inline void RawSend(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
}

}  // namespace sieve::server

#endif  // SIEVE_TESTS_SERVER_TEST_UTIL_H_
