#include "sieve/dynamic.h"

#include <gtest/gtest.h>

#include "tests/test_fixtures.h"

namespace sieve {
namespace {

class DynamicTest : public ::testing::Test {
 protected:
  DynamicTest() : sieve_(&campus_.db(), &campus_.groups(), Options()) {
    EXPECT_TRUE(sieve_.Init().ok());
  }

  static SieveOptions Options() {
    SieveOptions o;
    o.regeneration_mode = RegenerationMode::kLazy;
    return o;
  }

  MiniCampus campus_;
  SieveMiddleware sieve_;
};

TEST_F(DynamicTest, LazyModeOnlyFlipsFlag) {
  ASSERT_TRUE(
      sieve_.AddPolicy(campus_.MakePolicy(1, "alice", "Analytics")).ok());
  // Nothing generated yet; the flag lifecycle starts at query time.
  ASSERT_TRUE(sieve_.Execute("SELECT * FROM wifi", {"alice", "Analytics"}).ok());
  EXPECT_FALSE(sieve_.guards().IsOutdated("alice", "Analytics", "wifi"));
  ASSERT_TRUE(
      sieve_.AddPolicy(campus_.MakePolicy(2, "alice", "Analytics")).ok());
  EXPECT_TRUE(sieve_.guards().IsOutdated("alice", "Analytics", "wifi"));
  EXPECT_EQ(sieve_.dynamics().PendingInsertions("alice", "Analytics", "wifi"),
            2);
}

TEST_F(DynamicTest, EagerModeRegenerates) {
  sieve_.dynamics().set_mode(RegenerationMode::kEagerEveryK);
  for (int owner = 0; owner < 6; ++owner) {
    ASSERT_TRUE(
        sieve_.AddPolicy(campus_.MakePolicy(owner, "carol", "Social")).ok());
  }
  // Eager mode must have produced a guarded expression without any query.
  const GuardedExpression* ge = sieve_.guards().Get("carol", "Social", "wifi");
  ASSERT_NE(ge, nullptr);
  EXPECT_GE(ge->guards.size(), 1u);
}

TEST_F(DynamicTest, ResultsStayCorrectUnderInsertions) {
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(
        sieve_
            .AddPolicy(campus_.MakePolicy(round, "alice", "Analytics", 8, 15))
            .ok());
    auto fast = sieve_.Execute("SELECT * FROM wifi", {"alice", "Analytics"});
    auto oracle =
        sieve_.ExecuteReference("SELECT * FROM wifi", {"alice", "Analytics"});
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(fast->size(), oracle->size()) << "round " << round;
  }
}

TEST_F(DynamicTest, PolicyRemovalAfterRegenerationIsEnforced) {
  auto id1 = sieve_.AddPolicy(campus_.MakePolicy(1, "alice", "Analytics"));
  auto id2 = sieve_.AddPolicy(campus_.MakePolicy(2, "alice", "Analytics"));
  ASSERT_TRUE(id1.ok() && id2.ok());
  auto before = sieve_.Execute("SELECT * FROM wifi", {"alice", "Analytics"});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 120u);

  ASSERT_TRUE(sieve_.policies().RemovePolicy(*id2).ok());
  sieve_.guards().MarkOutdated("alice", "Analytics", "wifi");
  auto after = sieve_.Execute("SELECT * FROM wifi", {"alice", "Analytics"});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 60u);
}

TEST_F(DynamicTest, CurrentOptimalKIsFinitePositive) {
  ASSERT_TRUE(
      sieve_.AddPolicy(campus_.MakePolicy(1, "alice", "Analytics")).ok());
  ASSERT_TRUE(sieve_.Execute("SELECT * FROM wifi", {"alice", "Analytics"}).ok());
  double k = sieve_.dynamics().CurrentOptimalK("alice", "Analytics", "wifi");
  EXPECT_GE(k, 1.0);
  EXPECT_LT(k, 1e9);
}

}  // namespace
}  // namespace sieve
