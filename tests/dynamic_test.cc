#include "sieve/dynamic.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sieve/session.h"
#include "tests/test_fixtures.h"

namespace sieve {
namespace {

class DynamicTest : public ::testing::Test {
 protected:
  DynamicTest() : sieve_(&campus_.db(), &campus_.groups(), Options()) {
    EXPECT_TRUE(sieve_.Init().ok());
  }

  static SieveOptions Options() {
    SieveOptions o;
    o.regeneration_mode = RegenerationMode::kLazy;
    return o;
  }

  MiniCampus campus_;
  SieveMiddleware sieve_;
};

TEST_F(DynamicTest, LazyModeOnlyFlipsFlag) {
  ASSERT_TRUE(
      sieve_.AddPolicy(campus_.MakePolicy(1, "alice", "Analytics")).ok());
  // Nothing generated yet; the flag lifecycle starts at query time.
  ASSERT_TRUE(sieve_.Execute("SELECT * FROM wifi", {"alice", "Analytics"}).ok());
  EXPECT_FALSE(sieve_.guards().IsOutdated("alice", "Analytics", "wifi"));
  ASSERT_TRUE(
      sieve_.AddPolicy(campus_.MakePolicy(2, "alice", "Analytics")).ok());
  EXPECT_TRUE(sieve_.guards().IsOutdated("alice", "Analytics", "wifi"));
  EXPECT_EQ(sieve_.dynamics().PendingInsertions("alice", "Analytics", "wifi"),
            2);
}

TEST_F(DynamicTest, EagerModeRegenerates) {
  sieve_.dynamics().set_mode(RegenerationMode::kEagerEveryK);
  for (int owner = 0; owner < 6; ++owner) {
    ASSERT_TRUE(
        sieve_.AddPolicy(campus_.MakePolicy(owner, "carol", "Social")).ok());
  }
  // Eager mode must have produced a guarded expression without any query.
  const GuardedExpression* ge = sieve_.guards().Get("carol", "Social", "wifi");
  ASSERT_NE(ge, nullptr);
  EXPECT_GE(ge->guards.size(), 1u);
}

TEST_F(DynamicTest, ResultsStayCorrectUnderInsertions) {
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(
        sieve_
            .AddPolicy(campus_.MakePolicy(round, "alice", "Analytics", 8, 15))
            .ok());
    auto fast = sieve_.Execute("SELECT * FROM wifi", {"alice", "Analytics"});
    auto oracle =
        sieve_.ExecuteReference("SELECT * FROM wifi", {"alice", "Analytics"});
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(fast->size(), oracle->size()) << "round " << round;
  }
}

TEST_F(DynamicTest, PolicyRemovalAfterRegenerationIsEnforced) {
  auto id1 = sieve_.AddPolicy(campus_.MakePolicy(1, "alice", "Analytics"));
  auto id2 = sieve_.AddPolicy(campus_.MakePolicy(2, "alice", "Analytics"));
  ASSERT_TRUE(id1.ok() && id2.ok());
  auto before = sieve_.Execute("SELECT * FROM wifi", {"alice", "Analytics"});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 120u);

  ASSERT_TRUE(sieve_.policies().RemovePolicy(*id2).ok());
  sieve_.guards().MarkOutdated("alice", "Analytics", "wifi");
  auto after = sieve_.Execute("SELECT * FROM wifi", {"alice", "Analytics"});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 60u);
}

TEST_F(DynamicTest, CurrentOptimalKIsFinitePositive) {
  ASSERT_TRUE(
      sieve_.AddPolicy(campus_.MakePolicy(1, "alice", "Analytics")).ok());
  ASSERT_TRUE(sieve_.Execute("SELECT * FROM wifi", {"alice", "Analytics"}).ok());
  double k = sieve_.dynamics().CurrentOptimalK("alice", "Analytics", "wifi");
  EXPECT_GE(k, 1.0);
  EXPECT_LT(k, 1e9);
}

TEST_F(DynamicTest, CaseMismatchedMarkOutdatedFlipsSameEntry) {
  // Regression: GuardStore keys used to compare case-sensitively while the
  // rewriter matches identifiers with EqualsIgnoreCase — MarkOutdated with
  // a differently-cased spelling missed the entry IsOutdated checks, so
  // stale guards were served.
  ASSERT_TRUE(
      sieve_.AddPolicy(campus_.MakePolicy(1, "alice", "Analytics")).ok());
  ASSERT_TRUE(
      sieve_.Execute("SELECT * FROM wifi", {"alice", "Analytics"}).ok());
  ASSERT_FALSE(sieve_.guards().IsOutdated("alice", "Analytics", "wifi"));

  sieve_.guards().MarkOutdated("ALICE", "analytics", "WIFI");
  EXPECT_TRUE(sieve_.guards().IsOutdated("alice", "Analytics", "wifi"));
  EXPECT_NE(sieve_.guards().Get("Alice", "ANALYTICS", "wifi"), nullptr);
}

TEST_F(DynamicTest, CaseMismatchedPolicyInsertIsEnforcedImmediately) {
  // Regression: a policy whose table_name is spelled with different casing
  // than the query's must still outdate the (same) guarded expression —
  // otherwise the next query executes against stale guards and silently
  // drops the new grant.
  ASSERT_TRUE(
      sieve_.AddPolicy(campus_.MakePolicy(1, "alice", "Analytics")).ok());
  auto before = sieve_.Execute("SELECT * FROM wifi", {"alice", "Analytics"});
  ASSERT_TRUE(before.ok());
  size_t rows_before = before->size();

  Policy p = campus_.MakePolicy(2, "alice", "Analytics");
  p.table_name = "WIFI";  // same relation, different casing
  ASSERT_TRUE(sieve_.AddPolicy(std::move(p)).ok());

  auto after = sieve_.Execute("SELECT * FROM wifi", {"alice", "Analytics"});
  auto oracle =
      sieve_.ExecuteReference("SELECT * FROM wifi", {"alice", "Analytics"});
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(after->size(), oracle->size());
  EXPECT_GT(after->size(), rows_before)
      << "the differently-cased grant must widen the result";
}

TEST_F(DynamicTest, GroupGrantOutdatesMemberGuards) {
  // bob ∈ students. bob's guarded expression lives under key
  // (bob, Social, wifi); a policy granted to the *group* changes bob's
  // candidate set, so it must outdate that member GE — a same-key
  // MarkOutdated(policy.querier, ...) would miss it entirely.
  ASSERT_TRUE(sieve_.AddPolicy(campus_.MakePolicy(1, "bob", "Social")).ok());
  ASSERT_TRUE(sieve_.Execute("SELECT * FROM wifi", {"bob", "Social"}).ok());
  ASSERT_FALSE(sieve_.guards().IsOutdated("bob", "Social", "wifi"));

  ASSERT_TRUE(
      sieve_.AddPolicy(campus_.MakePolicy(2, "students", "Social")).ok());
  EXPECT_TRUE(sieve_.guards().IsOutdated("bob", "Social", "wifi"));

  auto after = sieve_.Execute("SELECT * FROM wifi", {"bob", "Social"});
  auto oracle =
      sieve_.ExecuteReference("SELECT * FROM wifi", {"bob", "Social"});
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(after->size(), oracle->size());
}

TEST_F(DynamicTest, MixedChurnStreamOnlyInvalidatesAffectedQueriers) {
  // Sustained mixed stream: three queriers hold prepared queries while
  // policies churn (AddPolicy via the middleware, RemovePolicy directly on
  // the store). Each round must invalidate exactly the targeted querier's
  // snapshot, the other two must keep executing their cached rewrites, and
  // every result must match the reference oracle for the current corpus.
  const std::vector<std::string> queriers = {"alice", "bob", "carol"};
  for (const auto& q : queriers) {
    ASSERT_TRUE(sieve_.AddPolicy(campus_.MakePolicy(0, q, "Analytics")).ok());
  }

  const std::string sql = "SELECT * FROM wifi WHERE wifiAP <= 4";
  std::vector<SieveSession> sessions;
  std::vector<PreparedQuery> prepared;
  for (const auto& q : queriers) {
    sessions.emplace_back(&sieve_, QueryMetadata{q, "Analytics"});
  }
  for (auto& s : sessions) {
    auto p = s.Prepare(sql);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    prepared.push_back(std::move(*p));
  }

  std::vector<std::vector<int64_t>> removable(queriers.size());
  for (int round = 0; round < 9; ++round) {
    const size_t target = static_cast<size_t>(round % 3);
    std::vector<std::shared_ptr<const PreparedRewrite>> snapshots;
    for (auto& p : prepared) snapshots.push_back(p.rewrite());

    if (round >= 5 && !removable[target].empty()) {
      // Mid-stream removal, bypassing the middleware: the store listeners
      // must still invalidate the affected key.
      int64_t id = removable[target].back();
      removable[target].pop_back();
      ASSERT_TRUE(sieve_.policies().RemovePolicy(id).ok());
      sieve_.guards().MarkOutdated(queriers[target], "Analytics", "wifi");
    } else {
      auto id = sieve_.AddPolicy(
          campus_.MakePolicy(1 + round % 5, queriers[target], "Analytics"));
      ASSERT_TRUE(id.ok());
      removable[target].push_back(*id);
    }

    for (size_t i = 0; i < prepared.size(); ++i) {
      if (i == target) {
        EXPECT_TRUE(snapshots[i]->stale())
            << "round " << round << ": target " << queriers[i]
            << " must be invalidated";
      } else {
        EXPECT_FALSE(snapshots[i]->stale())
            << "round " << round << ": bystander " << queriers[i]
            << " must keep its rewrite";
      }
    }

    RewriteCacheStats before = sieve_.rewrite_cache_stats();
    for (size_t i = 0; i < prepared.size(); ++i) {
      auto result = prepared[i].Execute();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      auto oracle = sieve_.ExecuteReference(
          sql, QueryMetadata{queriers[i], "Analytics"});
      ASSERT_TRUE(oracle.ok());
      EXPECT_EQ(result->size(), oracle->size())
          << "round " << round << " querier " << queriers[i];
      if (i != target) {
        EXPECT_EQ(prepared[i].rewrite().get(), snapshots[i].get())
            << "bystander must not have re-prepared";
      }
    }
    RewriteCacheStats after = sieve_.rewrite_cache_stats();
    EXPECT_EQ(after.misses, before.misses + 1)
        << "round " << round
        << ": exactly the target's re-prepare may miss the cache";
  }
}

}  // namespace
}  // namespace sieve
