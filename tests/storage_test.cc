#include "storage/catalog.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace sieve {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  Result<int> bad(Status::InvalidArgument("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ConvertibleValueTypes) {
  // shared_ptr<Derived> -> Result<shared_ptr<Base>> must work (exercised by
  // the parser's expression factories).
  struct Base {
    virtual ~Base() = default;
  };
  struct Derived : Base {};
  auto make = []() -> Result<std::shared_ptr<Base>> {
    return std::make_shared<Derived>();
  };
  EXPECT_TRUE(make().ok());
}

TEST(SchemaTest, CaseInsensitiveLookup) {
  Schema s({{"Owner", DataType::kInt}, {"wifiAP", DataType::kInt}});
  EXPECT_EQ(s.FindColumn("owner"), 0);
  EXPECT_EQ(s.FindColumn("WIFIAP"), 1);
  EXPECT_EQ(s.FindColumn("nope"), -1);
  EXPECT_FALSE(s.ColumnIndex("nope").ok());
  EXPECT_EQ(*s.ColumnIndex("OWNER"), 0u);
}

TEST(TableTest, InsertRejectsWrongArity) {
  Table t("t", Schema({{"a", DataType::kInt}, {"b", DataType::kInt}}));
  EXPECT_FALSE(t.Insert(Row{Value::Int(1)}).ok());
  EXPECT_TRUE(t.Insert(Row{Value::Int(1), Value::Int(2)}).ok());
  EXPECT_EQ(t.size(), 1u);
}

TEST(TableTest, DeleteTombstonesAndForEachSkips) {
  Table t("t", Schema({{"a", DataType::kInt}}));
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(t.Insert(Row{Value::Int(i)}).ok());
  ASSERT_TRUE(t.Delete(2).ok());
  ASSERT_TRUE(t.Delete(2).ok());  // idempotent
  EXPECT_FALSE(t.Delete(99).ok());
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.num_slots(), 5u);
  EXPECT_FALSE(t.IsLive(2));
  std::vector<int64_t> seen;
  t.ForEach([&](RowId, const Row& row) { seen.push_back(row[0].AsInt()); });
  EXPECT_EQ(seen, (std::vector<int64_t>{0, 1, 3, 4}));
}

TEST(CatalogTest, CreateFindDrop) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable("T1", Schema({{"a", DataType::kInt}})).ok());
  EXPECT_FALSE(c.CreateTable("t1", Schema({{"a", DataType::kInt}})).ok());
  EXPECT_NE(c.Find("t1"), nullptr);  // case insensitive
  EXPECT_EQ(c.TableNames().size(), 1u);
  ASSERT_TRUE(c.DropTable("T1").ok());
  EXPECT_EQ(c.Find("T1"), nullptr);
  EXPECT_FALSE(c.DropTable("T1").ok());
}

TEST(CatalogTest, GetReportsMissingTable) {
  Catalog c;
  auto entry = c.Get("nope");
  ASSERT_FALSE(entry.ok());
  EXPECT_EQ(entry.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace sieve
