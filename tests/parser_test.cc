#include "parser/parser.h"

#include <gtest/gtest.h>

namespace sieve {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Lexer::Tokenize("SELECT a, b FROM t WHERE x >= 10.5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[2].text, ",");
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Lexer::Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Lexer::Tokenize("'oops").ok());
}

TEST(LexerTest, LineComments) {
  auto tokens = Lexer::Tokenize("SELECT -- comment\n 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "1");
}

TEST(LexerTest, BlockComments) {
  auto tokens = Lexer::Tokenize("SELECT /* comment */ 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "1");

  // Multi-line, and a comment that glues no tokens together.
  auto multi = Lexer::Tokenize("SELECT a/* spans\n lines */, b FROM t");
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ((*multi)[1].text, "a");
  EXPECT_EQ((*multi)[2].text, ",");

  // Comment markers inside string literals are data, not comments.
  auto quoted = Lexer::Tokenize("SELECT '/* not a comment */'");
  ASSERT_TRUE(quoted.ok());
  EXPECT_EQ((*quoted)[1].type, TokenType::kString);
  EXPECT_EQ((*quoted)[1].text, "/* not a comment */");

  // Non-nesting (standard SQL): the first */ ends the comment.
  auto nested = Lexer::Tokenize("SELECT /* a /* b */ 1");
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ((*nested)[1].text, "1");
}

TEST(LexerTest, UnterminatedBlockComment) {
  EXPECT_FALSE(Lexer::Tokenize("SELECT 1 /* oops").ok());
  EXPECT_FALSE(Lexer::Tokenize("SELECT 1 /*").ok());
  EXPECT_FALSE(Lexer::Tokenize("SELECT 1 /* almost *").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = Parser::Parse("SELECT * FROM WiFi_Dataset");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE((*stmt)->select_star);
  ASSERT_EQ((*stmt)->from.size(), 1u);
  EXPECT_EQ((*stmt)->from[0].table_name, "WiFi_Dataset");
}

TEST(ParserTest, AliasForms) {
  auto a = Parser::Parse("SELECT * FROM t AS x");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->from[0].alias, "x");
  auto b = Parser::Parse("SELECT * FROM t x");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)->from[0].alias, "x");
}

TEST(ParserTest, WhereExpressionPrecedence) {
  auto stmt = Parser::Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(stmt.ok());
  // OR at the top, AND nested.
  ASSERT_NE((*stmt)->where, nullptr);
  EXPECT_EQ((*stmt)->where->kind(), ExprKind::kOr);
}

TEST(ParserTest, BetweenAndIn) {
  auto stmt = Parser::Parse(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3) AND c NOT "
      "IN (7)");
  ASSERT_TRUE(stmt.ok());
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts((*stmt)->where, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[0]->kind(), ExprKind::kBetween);
  EXPECT_EQ(conjuncts[1]->kind(), ExprKind::kInList);
  EXPECT_TRUE(static_cast<InListExpr&>(*conjuncts[2]).negated());
}

TEST(ParserTest, ForceIndexHint) {
  auto stmt =
      Parser::Parse("SELECT * FROM t FORCE INDEX (owner, ts_time) WHERE a=1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->from[0].hint.kind, IndexHint::Kind::kForceIndex);
  ASSERT_EQ((*stmt)->from[0].hint.columns.size(), 2u);
  EXPECT_EQ((*stmt)->from[0].hint.columns[1], "ts_time");
}

TEST(ParserTest, UseIndexEmpty) {
  auto stmt = Parser::Parse("SELECT * FROM t USE INDEX () WHERE a = 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->from[0].hint.kind, IndexHint::Kind::kIgnoreAllIndexes);
}

TEST(ParserTest, WithClauseAndUnion) {
  auto stmt = Parser::Parse(
      "WITH p AS (SELECT * FROM t WHERE a = 1 UNION SELECT * FROM t WHERE a = "
      "2) SELECT * FROM p");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->ctes.size(), 1u);
  EXPECT_EQ((*stmt)->ctes[0].name, "p");
  EXPECT_NE((*stmt)->ctes[0].query->union_next, nullptr);
}

TEST(ParserTest, Aggregates) {
  auto stmt = Parser::Parse(
      "SELECT owner, COUNT(*), SUM(x) AS total FROM t GROUP BY owner");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->items.size(), 3u);
  EXPECT_EQ((*stmt)->items[1].agg, AggFn::kCountStar);
  EXPECT_EQ((*stmt)->items[2].agg, AggFn::kSum);
  EXPECT_EQ((*stmt)->items[2].alias, "total");
  ASSERT_EQ((*stmt)->group_by.size(), 1u);
}

TEST(ParserTest, ScalarSubqueryCapturedAsText) {
  auto stmt = Parser::Parse(
      "SELECT * FROM W WHERE wifiAP = (SELECT W2.wifiAP FROM W AS W2 WHERE "
      "W2.owner = 5)");
  ASSERT_TRUE(stmt.ok());
  const auto& cmp = static_cast<const ComparisonExpr&>(*(*stmt)->where);
  ASSERT_EQ(cmp.right()->kind(), ExprKind::kSubquery);
  const auto& sub = static_cast<const SubqueryExpr&>(*cmp.right());
  EXPECT_NE(sub.sql().find("SELECT W2.wifiAP"), std::string::npos);
}

TEST(ParserTest, NestedParensInSubquery) {
  auto stmt = Parser::Parse(
      "SELECT * FROM W WHERE x = (SELECT max(y) FROM t WHERE (a = 1 OR b = "
      "2))");
  ASSERT_TRUE(stmt.ok());
}

TEST(ParserTest, UdfCall) {
  auto stmt = Parser::Parse("SELECT * FROM t WHERE delta(32) = true");
  ASSERT_TRUE(stmt.ok());
  const auto& cmp = static_cast<const ComparisonExpr&>(*(*stmt)->where);
  EXPECT_EQ(cmp.left()->kind(), ExprKind::kUdfCall);
}

TEST(ParserTest, DerivedTable) {
  auto stmt =
      Parser::Parse("SELECT * FROM (SELECT * FROM t WHERE a = 1) AS sub");
  ASSERT_TRUE(stmt.ok());
  ASSERT_NE((*stmt)->from[0].subquery, nullptr);
  EXPECT_EQ((*stmt)->from[0].alias, "sub");
}

TEST(ParserTest, ErrorMessages) {
  EXPECT_FALSE(Parser::Parse("SELECT").ok());
  EXPECT_FALSE(Parser::Parse("SELECT * FROM").ok());
  EXPECT_FALSE(Parser::Parse("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(Parser::Parse("SELECT * FROM t WHERE a IN (SELECT b FROM x)").ok());
  EXPECT_FALSE(Parser::Parse("SELECT * FROM t extra garbage !").ok());
}

TEST(ParserTest, ExpressionEntryPoint) {
  auto e = Parser::ParseExpression("owner = 5 AND ts_time BETWEEN '09:00' AND '10:00'");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), ExprKind::kAnd);
}

// Round-trip property: parse(print(parse(sql))) == parse(sql).
class ParserRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRoundTripTest, PrintParseIdentity) {
  auto first = Parser::Parse(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam();
  std::string printed = (*first)->ToSql();
  auto second = Parser::Parse(printed);
  ASSERT_TRUE(second.ok()) << printed;
  EXPECT_EQ(printed, (*second)->ToSql());
}

INSTANTIATE_TEST_SUITE_P(
    Statements, ParserRoundTripTest,
    ::testing::Values(
        "SELECT * FROM t",
        "SELECT a, b AS c FROM t WHERE x = 1 AND y BETWEEN 2 AND 3",
        "SELECT * FROM t FORCE INDEX (owner) WHERE owner IN (1, 2, 3)",
        "SELECT * FROM t USE INDEX () WHERE a = 'x''y'",
        "WITH w AS (SELECT * FROM t WHERE a = 1) SELECT * FROM w AS z",
        "SELECT owner, COUNT(*) FROM t GROUP BY owner",
        "SELECT * FROM t WHERE a = 1 UNION SELECT * FROM t WHERE b = 2",
        "SELECT * FROM t WHERE NOT (a = 1 OR b = 2)",
        "SELECT * FROM t AS x, u AS y WHERE x.id = y.id",
        "SELECT * FROM t WHERE delta(7) = true AND wifiAP = 1200"));

}  // namespace
}  // namespace sieve
