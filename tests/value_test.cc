#include "common/value.h"

#include <gtest/gtest.h>

namespace sieve {
namespace {

TEST(ValueTest, IntComparison) {
  EXPECT_EQ(Value::Int(1).Compare(Value::Int(2)), -1);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(3).Compare(Value::Int(2)), 1);
}

TEST(ValueTest, IntDoubleCrossFamilyComparison) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, TimeAndDateStayInTheirFamilies) {
  // Time(5) must not equal Int(5): different type families.
  EXPECT_NE(Value::Time(5).Compare(Value::Int(5)), 0);
  EXPECT_NE(Value::Date(5).Compare(Value::Time(5)), 0);
}

TEST(ValueTest, ParseTimeValid) {
  auto t = Value::ParseTime("09:30");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->raw(), 9 * 3600 + 30 * 60);
  auto t2 = Value::ParseTime("23:59:59");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->raw(), 23 * 3600 + 59 * 60 + 59);
}

TEST(ValueTest, ParseTimeInvalid) {
  EXPECT_FALSE(Value::ParseTime("25:00").ok());
  EXPECT_FALSE(Value::ParseTime("abc").ok());
  EXPECT_FALSE(Value::ParseTime("12:61").ok());
}

TEST(ValueTest, ParseDateRoundTrip) {
  auto d = Value::ParseDate("2019-09-25");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->ToString(), "2019-09-25");
  auto epoch = Value::ParseDate("1970-01-01");
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(epoch->raw(), 0);
}

TEST(ValueTest, DateOrdering) {
  auto a = Value::ParseDate("2019-09-25");
  auto b = Value::ParseDate("2019-12-12");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(a->Compare(*b), 0);
}

TEST(ValueTest, TimeToString) {
  EXPECT_EQ(Value::Time(9 * 3600 + 5 * 60 + 7).ToString(), "09:05:07");
}

TEST(ValueTest, SqlLiteralQuoting) {
  EXPECT_EQ(Value::String("O'Brien").ToSqlLiteral(), "'O''Brien'");
  EXPECT_EQ(Value::Int(42).ToSqlLiteral(), "42");
  EXPECT_EQ(Value::Time(3600).ToSqlLiteral(), "'01:00:00'");
}

TEST(ValueTest, HashDistinguishesFamilies) {
  EXPECT_NE(Value::Int(5).Hash(), Value::Time(5).Hash());
}

TEST(ValueTest, LeapYearDates) {
  auto d = Value::ParseDate("2020-02-29");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->ToString(), "2020-02-29");
  auto next = Value::Date(d->raw() + 1);
  EXPECT_EQ(next.ToString(), "2020-03-01");
}

}  // namespace
}  // namespace sieve
