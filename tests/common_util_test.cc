#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_stats.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace sieve {
namespace {

// ---------------------------------------------------------------------------
// string_util
// ---------------------------------------------------------------------------

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("WiFi_AP", "wifi_ap"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("select", "selec"));
  EXPECT_FALSE(EqualsIgnoreCase("select", "selectx"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("SeLeCt * FROM T1"), "select * from t1");
  EXPECT_EQ(ToLower(""), "");
  EXPECT_EQ(ToLower("already lower 123"), "already lower 123");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"x", "", "y"}, "-"), "x--y");
}

TEST(StringUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("n=%d s=%s", 7, "ok"), "n=7 s=ok");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, StrFormatLongOutput) {
  // Longer than any plausible internal stack buffer.
  std::string big(4096, 'x');
  std::string out = StrFormat("[%s]", big.c_str());
  EXPECT_EQ(out.size(), big.size() + 2);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

// ---------------------------------------------------------------------------
// timer
// ---------------------------------------------------------------------------

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  Timer t;
  double a = t.ElapsedSeconds();
  double b = t.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(TimerTest, UnitConversionsAgree) {
  Timer t;
  // Snapshot once per unit; later snapshots can only be larger, so the
  // scaled earlier reading must not exceed the later one.
  double s = t.ElapsedSeconds();
  double ms = t.ElapsedMillis();
  double us = t.ElapsedMicros();
  EXPECT_LE(s * 1e3, ms + 1e-9);
  EXPECT_LE(ms * 1e3, us + 1e-9);
}

TEST(TimerTest, ResetRestartsTheClock) {
  Timer t;
  // Burn a little time so the pre-reset reading is strictly positive.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  double before = t.ElapsedSeconds();
  t.Reset();
  double after = t.ElapsedSeconds();
  EXPECT_GT(before, 0.0);
  EXPECT_LT(after, before);
}

// ---------------------------------------------------------------------------
// exec_stats
// ---------------------------------------------------------------------------

TEST(ExecStatsTest, AddSumsEveryCounter) {
  ExecStats a;
  a.tuples_scanned = 1;
  a.index_probe_rows = 2;
  a.comparisons = 3;
  a.policy_evals = 4;
  a.udf_invocations = 5;
  a.udf_policy_checks = 6;
  a.subquery_execs = 7;
  a.rows_output = 8;

  ExecStats b = a;
  b.Add(a);
  EXPECT_EQ(b.tuples_scanned, 2u);
  EXPECT_EQ(b.index_probe_rows, 4u);
  EXPECT_EQ(b.comparisons, 6u);
  EXPECT_EQ(b.policy_evals, 8u);
  EXPECT_EQ(b.udf_invocations, 10u);
  EXPECT_EQ(b.udf_policy_checks, 12u);
  EXPECT_EQ(b.subquery_execs, 14u);
  EXPECT_EQ(b.rows_output, 16u);
}

TEST(ExecStatsTest, AddIdentity) {
  ExecStats a;
  a.tuples_scanned = 42;
  ExecStats zero;
  a.Add(zero);
  EXPECT_EQ(a.tuples_scanned, 42u);
  EXPECT_EQ(a.rows_output, 0u);
}

TEST(ExecStatsTest, ToStringReportsCounters) {
  ExecStats s;
  s.tuples_scanned = 11;
  s.udf_invocations = 22;
  s.rows_output = 33;
  std::string str = s.ToString();
  EXPECT_NE(str.find("scanned=11"), std::string::npos) << str;
  EXPECT_NE(str.find("udf=22"), std::string::npos) << str;
  EXPECT_NE(str.find("out=33"), std::string::npos) << str;
}

// ---------------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------------

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differed = false;
  for (int i = 0; i < 20 && !differed; ++i) {
    differed = a.Uniform(0, 1000000) != b.Uniform(0, 1000000);
  }
  EXPECT_TRUE(differed);
}

TEST(RngTest, UniformStaysInClosedRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.Uniform(3, 3), 3);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceDegenerateProbabilities) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, SkewedStaysInRangeAndFavorsLowRanks) {
  Rng rng(7);
  int64_t low = 0, high = 0;
  const int64_t n = 100;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.Skewed(n);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n);
    if (v < n / 2) ++low; else ++high;
  }
  EXPECT_GT(low, high);
}

TEST(RngTest, SampleReturnsDistinctElements) {
  Rng rng(7);
  std::vector<int64_t> s = rng.Sample(50, 10);
  ASSERT_EQ(s.size(), 10u);
  std::set<int64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), s.size());
  for (int64_t v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, SampleClampsKToN) {
  Rng rng(7);
  std::vector<int64_t> s = rng.Sample(3, 10);
  ASSERT_EQ(s.size(), 3u);
  std::set<int64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 3u);
}

TEST(RngTest, GaussianRoughlyCentered) {
  Rng rng(7);
  double sum = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Gaussian(10.0, 2.0);
  double mean = sum / kSamples;
  EXPECT_NEAR(mean, 10.0, 0.1);
}

}  // namespace
}  // namespace sieve
