// Wire-layer robustness: payload encoding round-trips, incremental frame
// extraction, malformed/truncated/oversized frames, default-deny
// authentication, random-bytes fuzzing, and connection teardown that
// releases middleware resources (the mid-cursor disconnect case).

#include <atomic>
#include <chrono>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/wire.h"
#include "tests/server_test_util.h"

namespace sieve::server {
namespace {

TEST(WireEncodingTest, ValueRoundTrip) {
  std::vector<Value> values = {
      Value::Null(),          Value::Bool(true),
      Value::Bool(false),     Value::Int(-42),
      Value::Int(1) ,         Value::Double(3.25),
      Value::String(""),      Value::String("héllo wörld"),
      Value::Time(9 * 3600),  Value::Date(18345),
  };
  WireWriter w;
  for (const Value& v : values) w.PutValue(v);
  WireReader rd(w.payload());
  for (const Value& expected : values) {
    auto got = rd.ReadValue();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, expected);
    EXPECT_EQ(got->type(), expected.type());
  }
  EXPECT_TRUE(rd.AtEnd());
}

TEST(WireEncodingTest, ReaderRejectsTruncation) {
  WireWriter w;
  w.PutU32(7);
  w.PutString("abcdef");
  std::string payload = w.payload();
  // Every strict prefix must fail cleanly, never read out of bounds.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WireReader rd(std::string_view(payload).substr(0, cut));
    auto u = rd.U32();
    if (!u.ok()) continue;
    auto s = rd.String();
    EXPECT_FALSE(s.ok()) << "prefix of " << cut << " bytes decoded fully";
  }
}

TEST(WireFramingTest, ExtractFrameByteAtATime) {
  std::string wire = EncodeFrame(MsgType::kPrepare, "SELECT 1") +
                     EncodeFrame(MsgType::kStats, "");
  std::string buf;
  std::vector<Frame> frames;
  for (char c : wire) {
    buf.push_back(c);
    Frame f;
    FrameParse p = ExtractFrame(&buf, kMaxFrameBytes, &f);
    if (p == FrameParse::kFrame) frames.push_back(std::move(f));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MsgType::kPrepare);
  EXPECT_EQ(frames[0].payload, "SELECT 1");
  EXPECT_EQ(frames[1].type, MsgType::kStats);
  EXPECT_TRUE(frames[1].payload.empty());
  EXPECT_TRUE(buf.empty());
}

TEST(WireFramingTest, ZeroLengthAndOversizedFrames) {
  Frame f;
  std::string zero(4, '\0');  // len == 0
  EXPECT_EQ(ExtractFrame(&zero, kMaxFrameBytes, &f), FrameParse::kMalformed);

  std::string huge;
  uint32_t len = 512;
  for (int i = 0; i < 4; ++i) huge.push_back(static_cast<char>(len >> (8 * i)));
  EXPECT_EQ(ExtractFrame(&huge, 256, &f), FrameParse::kTooLarge);
}

TEST(ServerAuthTest, CommandBeforeHelloIsRejectedAndClosed) {
  ServerHarness h;
  int fd = RawConnect(h.port());
  ASSERT_TRUE(WriteFrame(fd, MsgType::kStats, "").ok());
  auto reply = ReadFrame(fd);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, MsgType::kError);
  WireReader rd(reply->payload);
  auto code = rd.U16();
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(static_cast<WireError>(*code), WireError::kAuthRequired);
  // The server closes after the error: next read sees EOF.
  auto next = ReadFrame(fd);
  EXPECT_FALSE(next.ok());
  ::close(fd);
}

TEST(ServerAuthTest, UnknownTokenIsDefaultDenied) {
  ServerHarness h;
  SieveClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());
  auto md = c.Hello("no-such-token");
  ASSERT_FALSE(md.ok());
  EXPECT_EQ(md.status().code(), StatusCode::kAccessDenied);
  EXPECT_EQ(static_cast<WireError>(c.last_wire_error()),
            WireError::kAuthFailed);
  EXPECT_GE(h.server().stats().auth_failures, 1u);
}

TEST(ServerAuthTest, RegisteredTokenWithUnknownSubjectIsDenied) {
  ServerHarness h;
  // mallory has a valid token but no policy in the corpus addresses her.
  h.auth().RegisterToken("tok-mallory", MakeMd("mallory", "any"));
  SieveClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());
  auto md = c.Hello("tok-mallory");
  ASSERT_FALSE(md.ok());
  EXPECT_EQ(md.status().code(), StatusCode::kAccessDenied);
  EXPECT_EQ(static_cast<WireError>(c.last_wire_error()),
            WireError::kAuthFailed);
}

TEST(ServerAuthTest, UnknownSubjectAdmittedWhenCheckDisabled) {
  ServerOptions opts;
  opts.require_known_subject = false;
  ServerHarness h(opts);
  h.auth().RegisterToken("tok-mallory", MakeMd("mallory", "any"));
  SieveClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());
  auto md = c.Hello("tok-mallory");
  ASSERT_TRUE(md.ok()) << md.status().ToString();
  // She authenticates, but enforcement still default-denies her rows.
  auto stmt = c.Prepare("SELECT id FROM wifi");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto res = c.Execute(stmt->id);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->rows.empty());
}

TEST(ServerAuthTest, GroupMemberAuthenticatesThroughGroupPolicy) {
  ServerHarness h;
  // carol has no direct policy — only `students` group membership.
  auto c = h.Client("tok-carol");
  auto stmt = c->Prepare("SELECT owner FROM wifi GROUP BY owner");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto res = c->Execute(stmt->id);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0][0], Value::Int(6));
}

TEST(ServerProtocolTest, BadVersionIsRejected) {
  ServerHarness h;
  int fd = RawConnect(h.port());
  WireWriter w;
  w.PutU8(99);
  w.PutString("tok-alice");
  ASSERT_TRUE(WriteFrame(fd, MsgType::kHello, w.payload()).ok());
  auto reply = ReadFrame(fd);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, MsgType::kError);
  ::close(fd);
}

TEST(ServerProtocolTest, TruncatedPayloadKeepsConnectionUsable) {
  ServerHarness h;
  int fd = RawConnect(h.port());
  WireWriter hello;
  hello.PutU8(kProtocolVersion);
  hello.PutString("tok-alice");
  ASSERT_TRUE(WriteFrame(fd, MsgType::kHello, hello.payload()).ok());
  auto ok = ReadFrame(fd);
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok->type, MsgType::kHelloOk);

  // EXECUTE with a truncated payload (only 2 of 10 header bytes): a
  // payload-level error, not a framing error — the reply is MALFORMED and
  // the connection survives.
  ASSERT_TRUE(WriteFrame(fd, MsgType::kExecute, std::string(2, '\x01')).ok());
  auto err = ReadFrame(fd);
  ASSERT_TRUE(err.ok());
  ASSERT_EQ(err->type, MsgType::kError);
  WireReader rd(err->payload);
  auto code = rd.U16();
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(static_cast<WireError>(*code), WireError::kMalformed);

  ASSERT_TRUE(WriteFrame(fd, MsgType::kStats, "").ok());
  auto stats = ReadFrame(fd);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->type, MsgType::kStatsOk);
  ::close(fd);
}

TEST(ServerProtocolTest, OversizedFrameGetsErrorThenClose) {
  ServerOptions opts;
  opts.max_frame_bytes = 1024;
  ServerHarness h(opts);
  int fd = RawConnect(h.port());
  // Announce a 1 MiB frame; send only the header.
  uint32_t len = 1u << 20;
  std::string hdr;
  for (int i = 0; i < 4; ++i) hdr.push_back(static_cast<char>(len >> (8 * i)));
  RawSend(fd, hdr);
  auto reply = ReadFrame(fd);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, MsgType::kError);
  WireReader rd(reply->payload);
  auto code = rd.U16();
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(static_cast<WireError>(*code), WireError::kFrameTooLarge);
  auto next = ReadFrame(fd);
  EXPECT_FALSE(next.ok());
  ::close(fd);
}

TEST(ServerProtocolTest, UnknownMessageTypeGetsMalformedReply) {
  ServerHarness h;
  auto c = h.Client("tok-alice");
  // Borrow the client's socket indirectly: raw connection instead.
  int fd = RawConnect(h.port());
  WireWriter hello;
  hello.PutU8(kProtocolVersion);
  hello.PutString("tok-alice");
  ASSERT_TRUE(WriteFrame(fd, MsgType::kHello, hello.payload()).ok());
  ASSERT_TRUE(ReadFrame(fd).ok());
  ASSERT_TRUE(WriteFrame(fd, static_cast<MsgType>(0x6f), "junk").ok());
  auto reply = ReadFrame(fd);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, MsgType::kError);
  ::close(fd);
}

TEST(ServerFuzzTest, RandomBytesNeverKillTheServer) {
  ServerHarness h;
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<int> len_dist(1, 512);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int iter = 0; iter < 50; ++iter) {
    int fd = RawConnect(h.port());
    std::string garbage;
    int n = len_dist(rng);
    garbage.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      garbage.push_back(static_cast<char>(byte_dist(rng)));
    }
    RawSend(fd, garbage);
    ::close(fd);
  }
  // The server survives and still serves a well-behaved client.
  auto c = h.Client("tok-alice");
  auto stmt = c->Prepare("SELECT COUNT(*) FROM wifi");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto res = c->Execute(stmt->id);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0][0], Value::Int(300));  // alice: owners 0..4
}

TEST(ServerTeardownTest, MidCursorDisconnectReleasesSessionAndPin) {
  ServerHarness h;
  {
    auto c = h.Client("tok-alice");
    auto stmt = c->Prepare("SELECT id, owner FROM wifi");
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto first = c->Execute(stmt->id, {}, /*chunk_rows=*/10);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_FALSE(first->done);
    EXPECT_EQ(first->rows.size(), 10u);
    EXPECT_EQ(h.server().stats().open_cursors, 1u);
    // Abrupt disconnect with the cursor open.
    c->Close();
  }
  // The reaper must close the cursor and release its shared pin on the
  // middleware state gate; AddPolicy (exclusive) then completes. Run it
  // with a deadline so a leaked pin fails the test instead of hanging it.
  auto fut = std::async(std::launch::async, [&] {
    return h.mw().AddPolicy(h.campus().MakePolicy(7, "alice", "any")).ok();
  });
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "cursor pin leaked: AddPolicy still blocked 10s after disconnect";
  EXPECT_TRUE(fut.get());
  // And the connection itself is gone.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (h.server().stats().active_connections != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(h.server().stats().active_connections, 0u);
  EXPECT_EQ(h.server().stats().open_cursors, 0u);
}

TEST(ServerStatsTest, StatsJsonSurfacesCacheAndAuditCounters) {
  ServerHarness h;
  auto c = h.Client("tok-alice");
  auto stmt = c->Prepare("SELECT id FROM wifi WHERE owner = 1");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(c->Execute(stmt->id).ok());
  auto json = c->Stats();
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json->find("\"queries_executed\":1"), std::string::npos) << *json;
  EXPECT_NE(json->find("\"cache\""), std::string::npos);
  EXPECT_NE(json->find("\"misses\""), std::string::npos);
  EXPECT_NE(json->find("\"audit\""), std::string::npos);
  EXPECT_NE(json->find("\"dropped\""), std::string::npos);
  EXPECT_NE(json->find("\"policy_epoch\""), std::string::npos);
}

TEST(ServerLimitsTest, PreparedStatementCapIsEnforced) {
  ServerOptions opts;
  opts.max_prepared_per_conn = 2;
  ServerHarness h(opts);
  auto c = h.Client("tok-alice");
  ASSERT_TRUE(c->Prepare("SELECT id FROM wifi").ok());
  ASSERT_TRUE(c->Prepare("SELECT owner FROM wifi").ok());
  auto third = c->Prepare("SELECT wifiAP FROM wifi");
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(static_cast<WireError>(c->last_wire_error()),
            WireError::kTooManyStatements);
  // Closing one makes room again.
}

TEST(ServerLimitsTest, ConnectionCapRejectsWithCleanError) {
  ServerOptions opts;
  opts.max_connections = 2;
  ServerHarness h(opts);
  auto c1 = h.Client("tok-alice");
  auto c2 = h.Client("tok-bob");
  int fd = RawConnect(h.port());
  auto reply = ReadFrame(fd);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, MsgType::kError);
  WireReader rd(reply->payload);
  auto code = rd.U16();
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(static_cast<WireError>(*code), WireError::kTooManyConnections);
  ::close(fd);
  EXPECT_GE(h.server().stats().connections_rejected, 1u);
}

}  // namespace
}  // namespace sieve::server
