#include "workload/tippers.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "parser/parser.h"
#include "sieve/middleware.h"
#include "tests/test_fixtures.h"
#include "workload/hospital.h"
#include "workload/mall.h"
#include "workload/policy_gen.h"
#include "workload/query_gen.h"

namespace sieve {
namespace {

class TippersGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    TippersConfig config;
    config.num_devices = 500;
    config.num_aps = 16;
    config.num_days = 20;
    config.target_events = 20000;
    config.num_groups = 6;
    TippersGenerator gen(config);
    auto ds = gen.Populate(db_);
    ASSERT_TRUE(ds.ok());
    ds_ = new TippersDataset(std::move(ds).value());
  }
  static Database* db_;
  static TippersDataset* ds_;
};
Database* TippersGenTest::db_ = nullptr;
TippersDataset* TippersGenTest::ds_ = nullptr;

TEST_F(TippersGenTest, SchemaMatchesPaperTable2) {
  for (const char* table : {"Users", "User_Groups", "User_Group_Membership",
                            "Location", "WiFi_Dataset"}) {
    EXPECT_NE(db_->catalog().Find(table), nullptr) << table;
  }
  const TableEntry* wifi = db_->catalog().Find("WiFi_Dataset");
  EXPECT_EQ(wifi->table->schema().num_columns(), 5u);
  EXPECT_GE(wifi->table->schema().FindColumn("owner"), 0);
  EXPECT_GE(wifi->table->schema().FindColumn("wifiAP"), 0);
}

TEST_F(TippersGenTest, EventCountNearTarget) {
  EXPECT_NEAR(static_cast<double>(ds_->num_events), 20000.0, 2000.0);
  const TableEntry* wifi = db_->catalog().Find("WiFi_Dataset");
  EXPECT_EQ(wifi->table->size(), ds_->num_events);
}

TEST_F(TippersGenTest, ProfileMixFollowsPaper) {
  // Paper: ~87% visitors of all devices.
  size_t visitors = ds_->DevicesWithProfile("visitor").size();
  double fraction = static_cast<double>(visitors) / 500.0;
  EXPECT_NEAR(fraction, 0.873, 0.06);
  EXPECT_FALSE(ds_->DevicesWithProfile("faculty").empty());
  EXPECT_FALSE(ds_->DevicesWithProfile("staff").empty());
}

TEST_F(TippersGenTest, ResidentsBelongToGroups) {
  for (int d : ds_->ResidentDevices()) {
    EXPECT_GE(ds_->group_of[static_cast<size_t>(d)], 0);
    auto groups = ds_->groups.GroupsOf(TippersDataset::UserName(d));
    EXPECT_GE(groups.size(), 2u);  // affinity group + profile group
  }
}

TEST_F(TippersGenTest, RequiredIndexesExist) {
  const TableEntry* wifi = db_->catalog().Find("WiFi_Dataset");
  for (const char* col : {"owner", "wifiAP", "ts_time", "ts_date"}) {
    EXPECT_TRUE(wifi->indexes.HasIndex(col)) << col;
  }
}

TEST_F(TippersGenTest, SchemaSkewAndReferentialIntegrity) {
  AssertTableSchema(*db_, "WiFi_Dataset",
                    {{"id", DataType::kInt},
                     {"wifiAP", DataType::kInt},
                     {"owner", DataType::kInt},
                     {"ts_time", DataType::kTime},
                     {"ts_date", DataType::kDate}});
  AssertTableSchema(*db_, "Users",
                    {{"id", DataType::kInt}, {"device", DataType::kString}});
  AssertIndexes(*db_, "WiFi_Dataset", {"owner", "wifiAP"});
  // Every event belongs to a known device; every membership row names a
  // known device and group.
  AssertReferentialIntegrity(*db_, "WiFi_Dataset", "owner", "Users", "id");
  AssertReferentialIntegrity(*db_, "User_Group_Membership", "user_id", "Users",
                             "id");
  AssertReferentialIntegrity(*db_, "User_Group_Membership", "user_group_id",
                             "User_Groups", "id");
  AssertReferentialIntegrity(*db_, "WiFi_Dataset", "wifiAP", "Location", "id");
  // Resident affinity skew: the busiest 20% of devices dominate traffic.
  AssertOwnerSkew(*db_, "WiFi_Dataset", "owner", 0.2, 0.3);
}

TEST_F(TippersGenTest, EventsWithinConfiguredWindow) {
  auto result = db_->ExecuteSql(
      "SELECT MIN(ts_date), MAX(ts_date), MIN(ts_time), MAX(ts_time) FROM "
      "WiFi_Dataset");
  ASSERT_TRUE(result.ok());
  const Row& row = result->rows[0];
  EXPECT_GE(row[0].raw(), ds_->first_day);
  EXPECT_LT(row[1].raw(), ds_->first_day + 20);
  EXPECT_GE(row[2].raw(), 6 * 3600);
  EXPECT_LE(row[3].raw(), 22 * 3600);
}

TEST_F(TippersGenTest, PolicyGeneratorInvariants) {
  Database db2;
  TippersConfig config;
  config.num_devices = 300;
  config.target_events = 5000;
  config.num_groups = 4;
  TippersGenerator gen(config);
  auto ds = gen.Populate(&db2);
  ASSERT_TRUE(ds.ok());

  PolicyStore store(&db2);
  ASSERT_TRUE(store.Init().ok());
  TippersPolicyGenerator pg;
  auto count = pg.Generate(*ds, &store);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, store.size());
  EXPECT_GT(*count, 0u);

  for (const Policy& p : store.policies()) {
    EXPECT_EQ(p.table_name, "WiFi_Dataset");
    EXPECT_FALSE(p.querier.empty());
    EXPECT_FALSE(p.purpose.empty());
    EXPECT_EQ(p.action, PolicyAction::kAllow);
    // Every policy carries the indexed owner condition (the model's
    // oc_owner guarantee).
    bool has_owner = false;
    for (const auto& oc : p.object_conditions) {
      if (oc.attr == "owner" && oc.op == CompareOp::kEq &&
          oc.value == p.owner) {
        has_owner = true;
      }
    }
    EXPECT_TRUE(has_owner) << p.ToString();
  }
}

TEST_F(TippersGenTest, QueryGeneratorSqlParsesAndOrdersSelectivity) {
  TippersQueryGenerator gen(*ds_, 3);
  size_t counts[3];
  int i = 0;
  for (QuerySelectivity sel : {QuerySelectivity::kLow, QuerySelectivity::kMid,
                               QuerySelectivity::kHigh}) {
    std::string sql = gen.Q1(sel);
    ASSERT_TRUE(Parser::Parse(sql).ok()) << sql;
    auto result = db_->ExecuteSql(sql);
    ASSERT_TRUE(result.ok()) << sql;
    counts[i++] = result->size();
  }
  EXPECT_LE(counts[0], counts[1]);
  EXPECT_LE(counts[1], counts[2]);

  for (QuerySelectivity sel : {QuerySelectivity::kLow, QuerySelectivity::kMid,
                               QuerySelectivity::kHigh}) {
    ASSERT_TRUE(Parser::Parse(gen.Q2(sel)).ok());
    ASSERT_TRUE(Parser::Parse(gen.Q3(sel, 1)).ok());
  }
}

TEST(MallGenTest, PopulateAndPolicies) {
  Database db(EngineProfile::PostgresLike());
  MallConfig config;
  config.num_customers = 300;
  config.num_shops = 12;
  config.num_days = 20;
  config.target_events = 10000;
  MallGenerator gen(config);
  auto ds = gen.Populate(&db);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_events, 10000u);
  for (const char* table : {"Shops", "Mall_Users", "WiFi_Connectivity"}) {
    EXPECT_NE(db.catalog().Find(table), nullptr) << table;
  }
  // Shared structural assertions (same three properties as TIPPERS and
  // hospital): schema shape, referential integrity, owner skew.
  AssertTableSchema(db, "WiFi_Connectivity",
                    {{"owner", DataType::kInt},
                     {"shop_id", DataType::kInt},
                     {"obs_time", DataType::kTime},
                     {"obs_date", DataType::kDate}});
  AssertReferentialIntegrity(db, "WiFi_Connectivity", "owner", "Mall_Users",
                             "id");
  AssertReferentialIntegrity(db, "WiFi_Connectivity", "shop_id", "Shops",
                             "id");
  AssertOwnerSkew(db, "WiFi_Connectivity", "owner", 0.2, 0.28);

  PolicyStore store(&db);
  ASSERT_TRUE(store.Init().ok());
  MallPolicyGenerator pg;
  auto count = pg.Generate(*ds, &store);
  ASSERT_TRUE(count.ok());
  EXPECT_GT(*count, 300u);  // at least ~1 policy per customer

  // Every policy names a shop as querier and the owning customer.
  for (const Policy& p : store.policies()) {
    EXPECT_EQ(p.table_name, "WiFi_Connectivity");
    EXPECT_EQ(p.querier.rfind("shop", 0), 0u) << p.querier;
  }

  // Queriers see only rows allowed by policies: enforcement sanity check.
  MapGroupResolver no_groups;
  SieveMiddleware sieve(&db, &no_groups);
  ASSERT_TRUE(sieve.Init().ok());
  // Re-add policies through the middleware store.
  for (const Policy& p : store.policies()) {
    Policy copy = p;
    copy.id = -1;
    ASSERT_TRUE(sieve.AddPolicy(std::move(copy)).ok());
  }
  auto visible = sieve.Execute("SELECT * FROM WiFi_Connectivity",
                               {MallDataset::ShopName(0), "Marketing"});
  ASSERT_TRUE(visible.ok());
  auto reference = sieve.ExecuteReference("SELECT * FROM WiFi_Connectivity",
                                          {MallDataset::ShopName(0),
                                           "Marketing"});
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(visible->size(), reference->size());
  EXPECT_LT(visible->size(), ds->num_events);  // policies hide data
}

// ---------------------------------------------------------------------------
// Hospital scenario (GDPR-style purpose limitation).
// ---------------------------------------------------------------------------

class HospitalGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    HospitalConfig config;
    config.num_patients = 200;
    config.num_staff = 30;
    config.num_wards = 6;
    config.num_days = 40;
    config.target_encounters = 10000;
    HospitalGenerator gen(config);
    auto ds = gen.Populate(db_);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    ds_ = new HospitalDataset(std::move(ds).value());
  }
  static Database* db_;
  static HospitalDataset* ds_;
};
Database* HospitalGenTest::db_ = nullptr;
HospitalDataset* HospitalGenTest::ds_ = nullptr;

TEST_F(HospitalGenTest, SchemaAndIndexes) {
  AssertTableSchema(*db_, "Patients",
                    {{"id", DataType::kInt},
                     {"mrn", DataType::kString},
                     {"ward", DataType::kInt},
                     {"consent", DataType::kInt}});
  AssertTableSchema(*db_, "Staff",
                    {{"id", DataType::kInt},
                     {"name", DataType::kString},
                     {"role", DataType::kString},
                     {"ward", DataType::kInt}});
  AssertTableSchema(*db_, "Encounters",
                    {{"id", DataType::kInt},
                     {"patient_id", DataType::kInt},
                     {"staff_id", DataType::kInt},
                     {"ward", DataType::kInt},
                     {"enc_time", DataType::kTime},
                     {"enc_date", DataType::kDate}});
  AssertTableSchema(*db_, "Diagnoses",
                    {{"id", DataType::kInt},
                     {"encounter_id", DataType::kInt},
                     {"patient_id", DataType::kInt},
                     {"code", DataType::kString},
                     {"severity", DataType::kInt},
                     {"diag_date", DataType::kDate}});
  AssertIndexes(*db_, "Encounters",
                {"patient_id", "staff_id", "ward", "enc_time", "enc_date"});
  AssertIndexes(*db_, "Diagnoses", {"patient_id", "encounter_id", "diag_date"});
}

TEST_F(HospitalGenTest, CountsMatchDataset) {
  EXPECT_EQ(ds_->num_encounters, 10000u);
  const TableEntry* enc = db_->catalog().Find("Encounters");
  EXPECT_EQ(enc->table->size(), ds_->num_encounters);
  const TableEntry* diag = db_->catalog().Find("Diagnoses");
  EXPECT_EQ(diag->table->size(), ds_->num_diagnoses);
  EXPECT_GT(ds_->num_diagnoses, 0u);
  // Every policy-relevant role exists even at small scale.
  for (const char* role : {"doctor", "nurse", "researcher", "billing"}) {
    EXPECT_FALSE(ds_->StaffWithRole(role).empty()) << role;
  }
  EXPECT_FALSE(ds_->ConsentedPatients().empty());
  EXPECT_FALSE(ds_->ChronicPatients().empty());
}

TEST_F(HospitalGenTest, ReferentialIntegrityAndSkew) {
  AssertReferentialIntegrity(*db_, "Encounters", "patient_id", "Patients",
                             "id");
  AssertReferentialIntegrity(*db_, "Encounters", "staff_id", "Staff", "id");
  AssertReferentialIntegrity(*db_, "Diagnoses", "patient_id", "Patients",
                             "id");
  AssertReferentialIntegrity(*db_, "Diagnoses", "encounter_id", "Encounters",
                             "id");
  // The chronic cohort (20% of patients) receives ~60% of encounters.
  AssertOwnerSkew(*db_, "Encounters", "patient_id", 0.2, 0.45);
}

TEST_F(HospitalGenTest, EncountersWithinClinicHours) {
  auto result = db_->ExecuteSql(
      "SELECT MIN(enc_time), MAX(enc_time), MIN(enc_date), MAX(enc_date) "
      "FROM Encounters");
  ASSERT_TRUE(result.ok());
  const Row& row = result->rows[0];
  EXPECT_GE(row[0].raw(), 7 * 3600);
  EXPECT_LE(row[1].raw(), 20 * 3600);
  EXPECT_GE(row[2].raw(), ds_->first_day);
  EXPECT_LT(row[3].raw(), ds_->first_day + 40);
}

TEST_F(HospitalGenTest, StaffBelongToRoleAndWardGroups) {
  for (size_t s = 0; s < ds_->staff_role.size(); ++s) {
    auto groups =
        ds_->groups.GroupsOf(HospitalDataset::StaffName(static_cast<int>(s)));
    ASSERT_EQ(groups.size(), 2u);
    bool has_role = false, has_ward = false;
    for (const std::string& g : groups) {
      if (g == HospitalDataset::RoleGroupName(ds_->staff_role[s]))
        has_role = true;
      if (g == HospitalDataset::WardGroupName(ds_->staff_ward[s]))
        has_ward = true;
    }
    EXPECT_TRUE(has_role && has_ward) << HospitalDataset::StaffName(
        static_cast<int>(s));
  }
}

TEST_F(HospitalGenTest, PolicyGeneratorInvariants) {
  PolicyStore store(db_);
  ASSERT_TRUE(store.Init().ok());
  HospitalPolicyGenerator pg;
  auto count = pg.Generate(*ds_, &store);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, store.size());
  // At least the 4+ baseline grants per patient.
  EXPECT_GE(*count, static_cast<size_t>(ds_->config.num_patients) * 4);

  size_t research = 0;
  for (const Policy& p : store.policies()) {
    EXPECT_TRUE(p.table_name == "Encounters" || p.table_name == "Diagnoses")
        << p.table_name;
    EXPECT_FALSE(p.querier.empty());
    // GDPR purpose limitation: every grant names a concrete purpose.
    EXPECT_FALSE(p.purpose.empty());
    EXPECT_NE(p.purpose, "any");
    EXPECT_EQ(p.action, PolicyAction::kAllow);
    // oc_owner guarantee on the hospital owner column.
    bool has_owner = false;
    for (const auto& oc : p.object_conditions) {
      if (oc.attr == "patient_id" && oc.op == CompareOp::kEq &&
          oc.value == p.owner) {
        has_owner = true;
      }
    }
    EXPECT_TRUE(has_owner) << p.ToString();
    if (EqualsIgnoreCase(p.purpose, "Research")) {
      ++research;
      // Research grants exist only for consented patients.
      EXPECT_TRUE(ds_->consented[static_cast<size_t>(p.owner.raw())])
          << p.ToString();
    }
  }
  EXPECT_EQ(research, ds_->ConsentedPatients().size());

  // ResearchPolicyIds enumerates exactly the revocable subset.
  for (int patient : ds_->ConsentedPatients()) {
    EXPECT_FALSE(ResearchPolicyIds(store, patient).empty()) << patient;
  }
  for (int p = 0; p < ds_->config.num_patients; ++p) {
    if (!ds_->consented[static_cast<size_t>(p)]) {
      EXPECT_TRUE(ResearchPolicyIds(store, p).empty()) << p;
    }
  }
}

TEST_F(HospitalGenTest, QueryGeneratorSqlParsesAndOrdersSelectivity) {
  HospitalQueryGenerator gen(*ds_, 5);
  size_t counts[3];
  int i = 0;
  for (QuerySelectivity sel : {QuerySelectivity::kLow, QuerySelectivity::kMid,
                               QuerySelectivity::kHigh}) {
    std::string sql = gen.HQ1(sel);
    ASSERT_TRUE(Parser::Parse(sql).ok()) << sql;
    auto result = db_->ExecuteSql(sql);
    ASSERT_TRUE(result.ok()) << sql;
    counts[i++] = result->size();
  }
  EXPECT_LE(counts[0], counts[1]);
  EXPECT_LE(counts[1], counts[2]);

  for (QuerySelectivity sel : {QuerySelectivity::kLow, QuerySelectivity::kMid,
                               QuerySelectivity::kHigh}) {
    for (const std::string& sql : {gen.HQ2(sel), gen.HQ3(sel)}) {
      ASSERT_TRUE(Parser::Parse(sql).ok()) << sql;
      ASSERT_TRUE(db_->ExecuteSql(sql).ok()) << sql;
    }
  }
  ASSERT_TRUE(
      Parser::Parse(HospitalQueryGenerator::SelectAllEncounters()).ok());
  ASSERT_TRUE(
      Parser::Parse(HospitalQueryGenerator::SelectAllDiagnoses()).ok());
}

TEST_F(HospitalGenTest, EnforcementSanity) {
  // A fresh middleware over the shared dataset: the ward-nurse view is
  // policy-limited and matches the reference oracle.
  HospitalWorld* world = HospitalWorld::Get();
  ASSERT_NE(world, nullptr);
  const auto nurses = world->dataset.StaffWithRole("nurse");
  ASSERT_FALSE(nurses.empty());
  QueryMetadata md{HospitalDataset::StaffName(nurses[0]), "Treatment"};
  auto visible =
      world->sieve->Execute("SELECT * FROM Encounters AS E", md);
  ASSERT_TRUE(visible.ok()) << visible.status().ToString();
  auto reference =
      world->sieve->ExecuteReference("SELECT * FROM Encounters AS E", md);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(visible->size(), reference->size());
  EXPECT_LT(visible->size(), world->dataset.num_encounters);
  EXPECT_GT(visible->size(), 0u);

  // Purpose limitation: the same nurse under Research sees nothing (no
  // nurse-facing research grants exist).
  auto research = world->sieve->Execute(
      "SELECT * FROM Encounters AS E",
      {HospitalDataset::StaffName(nurses[0]), "Research"});
  ASSERT_TRUE(research.ok());
  EXPECT_EQ(research->size(), 0u);
}

}  // namespace
}  // namespace sieve
