#include "workload/tippers.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "workload/mall.h"
#include "workload/policy_gen.h"
#include "sieve/middleware.h"
#include "workload/query_gen.h"

namespace sieve {
namespace {

class TippersGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    TippersConfig config;
    config.num_devices = 500;
    config.num_aps = 16;
    config.num_days = 20;
    config.target_events = 20000;
    config.num_groups = 6;
    TippersGenerator gen(config);
    auto ds = gen.Populate(db_);
    ASSERT_TRUE(ds.ok());
    ds_ = new TippersDataset(std::move(ds).value());
  }
  static Database* db_;
  static TippersDataset* ds_;
};
Database* TippersGenTest::db_ = nullptr;
TippersDataset* TippersGenTest::ds_ = nullptr;

TEST_F(TippersGenTest, SchemaMatchesPaperTable2) {
  for (const char* table : {"Users", "User_Groups", "User_Group_Membership",
                            "Location", "WiFi_Dataset"}) {
    EXPECT_NE(db_->catalog().Find(table), nullptr) << table;
  }
  const TableEntry* wifi = db_->catalog().Find("WiFi_Dataset");
  EXPECT_EQ(wifi->table->schema().num_columns(), 5u);
  EXPECT_GE(wifi->table->schema().FindColumn("owner"), 0);
  EXPECT_GE(wifi->table->schema().FindColumn("wifiAP"), 0);
}

TEST_F(TippersGenTest, EventCountNearTarget) {
  EXPECT_NEAR(static_cast<double>(ds_->num_events), 20000.0, 2000.0);
  const TableEntry* wifi = db_->catalog().Find("WiFi_Dataset");
  EXPECT_EQ(wifi->table->size(), ds_->num_events);
}

TEST_F(TippersGenTest, ProfileMixFollowsPaper) {
  // Paper: ~87% visitors of all devices.
  size_t visitors = ds_->DevicesWithProfile("visitor").size();
  double fraction = static_cast<double>(visitors) / 500.0;
  EXPECT_NEAR(fraction, 0.873, 0.06);
  EXPECT_FALSE(ds_->DevicesWithProfile("faculty").empty());
  EXPECT_FALSE(ds_->DevicesWithProfile("staff").empty());
}

TEST_F(TippersGenTest, ResidentsBelongToGroups) {
  for (int d : ds_->ResidentDevices()) {
    EXPECT_GE(ds_->group_of[static_cast<size_t>(d)], 0);
    auto groups = ds_->groups.GroupsOf(TippersDataset::UserName(d));
    EXPECT_GE(groups.size(), 2u);  // affinity group + profile group
  }
}

TEST_F(TippersGenTest, RequiredIndexesExist) {
  const TableEntry* wifi = db_->catalog().Find("WiFi_Dataset");
  for (const char* col : {"owner", "wifiAP", "ts_time", "ts_date"}) {
    EXPECT_TRUE(wifi->indexes.HasIndex(col)) << col;
  }
}

TEST_F(TippersGenTest, EventsWithinConfiguredWindow) {
  auto result = db_->ExecuteSql(
      "SELECT MIN(ts_date), MAX(ts_date), MIN(ts_time), MAX(ts_time) FROM "
      "WiFi_Dataset");
  ASSERT_TRUE(result.ok());
  const Row& row = result->rows[0];
  EXPECT_GE(row[0].raw(), ds_->first_day);
  EXPECT_LT(row[1].raw(), ds_->first_day + 20);
  EXPECT_GE(row[2].raw(), 6 * 3600);
  EXPECT_LE(row[3].raw(), 22 * 3600);
}

TEST_F(TippersGenTest, PolicyGeneratorInvariants) {
  Database db2;
  TippersConfig config;
  config.num_devices = 300;
  config.target_events = 5000;
  config.num_groups = 4;
  TippersGenerator gen(config);
  auto ds = gen.Populate(&db2);
  ASSERT_TRUE(ds.ok());

  PolicyStore store(&db2);
  ASSERT_TRUE(store.Init().ok());
  TippersPolicyGenerator pg;
  auto count = pg.Generate(*ds, &store);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, store.size());
  EXPECT_GT(*count, 0u);

  for (const Policy& p : store.policies()) {
    EXPECT_EQ(p.table_name, "WiFi_Dataset");
    EXPECT_FALSE(p.querier.empty());
    EXPECT_FALSE(p.purpose.empty());
    EXPECT_EQ(p.action, PolicyAction::kAllow);
    // Every policy carries the indexed owner condition (the model's
    // oc_owner guarantee).
    bool has_owner = false;
    for (const auto& oc : p.object_conditions) {
      if (oc.attr == "owner" && oc.op == CompareOp::kEq &&
          oc.value == p.owner) {
        has_owner = true;
      }
    }
    EXPECT_TRUE(has_owner) << p.ToString();
  }
}

TEST_F(TippersGenTest, QueryGeneratorSqlParsesAndOrdersSelectivity) {
  TippersQueryGenerator gen(*ds_, 3);
  size_t counts[3];
  int i = 0;
  for (QuerySelectivity sel : {QuerySelectivity::kLow, QuerySelectivity::kMid,
                               QuerySelectivity::kHigh}) {
    std::string sql = gen.Q1(sel);
    ASSERT_TRUE(Parser::Parse(sql).ok()) << sql;
    auto result = db_->ExecuteSql(sql);
    ASSERT_TRUE(result.ok()) << sql;
    counts[i++] = result->size();
  }
  EXPECT_LE(counts[0], counts[1]);
  EXPECT_LE(counts[1], counts[2]);

  for (QuerySelectivity sel : {QuerySelectivity::kLow, QuerySelectivity::kMid,
                               QuerySelectivity::kHigh}) {
    ASSERT_TRUE(Parser::Parse(gen.Q2(sel)).ok());
    ASSERT_TRUE(Parser::Parse(gen.Q3(sel, 1)).ok());
  }
}

TEST(MallGenTest, PopulateAndPolicies) {
  Database db(EngineProfile::PostgresLike());
  MallConfig config;
  config.num_customers = 300;
  config.num_shops = 12;
  config.num_days = 20;
  config.target_events = 10000;
  MallGenerator gen(config);
  auto ds = gen.Populate(&db);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_events, 10000u);
  for (const char* table : {"Shops", "Mall_Users", "WiFi_Connectivity"}) {
    EXPECT_NE(db.catalog().Find(table), nullptr) << table;
  }

  PolicyStore store(&db);
  ASSERT_TRUE(store.Init().ok());
  MallPolicyGenerator pg;
  auto count = pg.Generate(*ds, &store);
  ASSERT_TRUE(count.ok());
  EXPECT_GT(*count, 300u);  // at least ~1 policy per customer

  // Every policy names a shop as querier and the owning customer.
  for (const Policy& p : store.policies()) {
    EXPECT_EQ(p.table_name, "WiFi_Connectivity");
    EXPECT_EQ(p.querier.rfind("shop", 0), 0u) << p.querier;
  }

  // Queriers see only rows allowed by policies: enforcement sanity check.
  MapGroupResolver no_groups;
  SieveMiddleware sieve(&db, &no_groups);
  ASSERT_TRUE(sieve.Init().ok());
  // Re-add policies through the middleware store.
  for (const Policy& p : store.policies()) {
    Policy copy = p;
    copy.id = -1;
    ASSERT_TRUE(sieve.AddPolicy(std::move(copy)).ok());
  }
  auto visible = sieve.Execute("SELECT * FROM WiFi_Connectivity",
                               {MallDataset::ShopName(0), "Marketing"});
  ASSERT_TRUE(visible.ok());
  auto reference = sieve.ExecuteReference("SELECT * FROM WiFi_Connectivity",
                                          {MallDataset::ShopName(0),
                                           "Marketing"});
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(visible->size(), reference->size());
  EXPECT_LT(visible->size(), ds->num_events);  // policies hide data
}

}  // namespace
}  // namespace sieve
