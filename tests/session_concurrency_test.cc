// Concurrency contract of the session API: N sessions prepare once and
// execute repeatedly while a writer thread inserts policies. Every result
// a reader observes must equal the reference answer of *some* policy
// epoch — the pre-insert corpus or any post-insert corpus — never a torn
// mix of an old rewrite and new guards (or vice versa). Runs under the
// ThreadSanitizer CI job (label: unit), which additionally proves the
// epoch/lock protocol is data-race free.

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sieve/middleware.h"
#include "sieve/session.h"
#include "tests/test_fixtures.h"

namespace sieve {
namespace {

std::multiset<std::string> Fingerprints(const ResultSet& rs) {
  std::multiset<std::string> out;
  for (const auto& row : rs.rows) {
    std::string fp;
    for (const auto& v : row) fp += v.ToString() + "|";
    out.insert(std::move(fp));
  }
  return out;
}

TEST(SessionConcurrencyTest, ReadersAlwaysSeeAConsistentEpoch) {
  MiniCampus campus;
  SieveOptions options;
  // num_threads = 2: concurrent sessions additionally share the engine's
  // partition-parallel pool, which TSan then covers too.
  options.num_threads = 2;
  SieveMiddleware sieve(&campus.db(), &campus.groups(), options);
  ASSERT_TRUE(sieve.Init().ok());
  ASSERT_TRUE(sieve.AddPolicy(campus.MakePolicy(0, "alice", "any")).ok());

  const QueryMetadata md{"alice", "any"};
  const std::string param_sql = "SELECT * FROM wifi WHERE wifiAP = ?";
  const std::string bound_sql = "SELECT * FROM wifi WHERE wifiAP = 2";

  // Reference answers per epoch, appended by the writer after each insert.
  // Readers validate against the full list after the join, so an answer
  // that is still being computed when a reader observes it is no race.
  std::mutex answers_mu;
  std::vector<std::multiset<std::string>> answers;
  {
    auto pre = sieve.ExecuteReference(bound_sql, md);
    ASSERT_TRUE(pre.ok()) << pre.status().ToString();
    answers.push_back(Fingerprints(*pre));
  }

  constexpr int kReaders = 4;
  constexpr int kInserts = 3;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::vector<std::multiset<std::string>>> observed(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      SieveSession session(&sieve, md);
      auto prepared = session.Prepare(param_sql);
      if (!prepared.ok()) {
        ++failures;
        return;
      }
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = prepared->Execute({Value::Int(2)});
        if (!result.ok()) {
          ++failures;
          return;
        }
        observed[r].push_back(Fingerprints(*result));
      }
    });
  }

  std::thread writer([&] {
    for (int k = 0; k < kInserts; ++k) {
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      // Each insert widens alice's view by one more owner.
      auto id = sieve.AddPolicy(campus.MakePolicy(k + 1, "alice", "any"));
      if (!id.ok()) {
        ++failures;
        return;
      }
      auto post = sieve.ExecuteReference(bound_sql, md);
      if (!post.ok()) {
        ++failures;
        return;
      }
      std::lock_guard<std::mutex> lock(answers_mu);
      answers.push_back(Fingerprints(*post));
    }
  });

  writer.join();
  // Let the readers observe the final epoch a little longer, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_EQ(answers.size(), static_cast<size_t>(kInserts) + 1);

  // The epochs are strictly growing row sets, so the answers are distinct
  // and a torn rewrite cannot masquerade as a valid one.
  for (size_t k = 1; k < answers.size(); ++k) {
    ASSERT_GT(answers[k].size(), answers[k - 1].size());
  }

  size_t total = 0;
  for (int r = 0; r < kReaders; ++r) {
    EXPECT_FALSE(observed[r].empty()) << "reader " << r << " never ran";
    for (const auto& result : observed[r]) {
      bool matches_an_epoch = false;
      for (const auto& answer : answers) {
        if (result == answer) {
          matches_an_epoch = true;
          break;
        }
      }
      EXPECT_TRUE(matches_an_epoch)
          << "reader " << r << " observed a row set (" << result.size()
          << " rows) matching no policy epoch — torn rewrite";
    }
    total += observed[r].size();
  }
  // Sanity: the workload actually overlapped the writer.
  EXPECT_GT(total, static_cast<size_t>(kReaders));
}

TEST(SessionConcurrencyTest, ConcurrentDistinctQueriersShareTheCache) {
  // Sessions for different queriers run concurrently, each against its own
  // cached rewrite; results must match their per-querier references.
  MiniCampus campus;
  SieveMiddleware sieve(&campus.db(), &campus.groups());
  ASSERT_TRUE(sieve.Init().ok());
  const char* queriers[] = {"alice", "bob", "carol"};
  for (int q = 0; q < 3; ++q) {
    ASSERT_TRUE(
        sieve.AddPolicy(campus.MakePolicy(q, queriers[q], "any")).ok());
    ASSERT_TRUE(
        sieve.AddPolicy(campus.MakePolicy(q + 3, queriers[q], "any", 8, 12))
            .ok());
  }
  const std::string sql = "SELECT * FROM wifi WHERE ts_time >= '07:00'";

  std::multiset<std::string> expected[3];
  for (int q = 0; q < 3; ++q) {
    auto oracle = sieve.ExecuteReference(sql, {queriers[q], "any"});
    ASSERT_TRUE(oracle.ok());
    expected[q] = Fingerprints(*oracle);
  }

  // Warm the cache to a stable corpus: the first rewrite per querier
  // regenerates guards, and each regeneration (GuardStore::Put) fires a
  // keyed invalidation for that querier's entries. Two serial rounds
  // converge (round two rewrites without regenerating), after which
  // nothing mutates.
  for (int round = 0; round < 2; ++round) {
    for (int q = 0; q < 3; ++q) {
      SieveSession session(&sieve, {queriers[q], "any"});
      ASSERT_TRUE(session.Execute(sql).ok());
    }
  }
  RewriteCacheStats warm = sieve.rewrite_cache_stats();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int q = 0; q < 3; ++q) {
    threads.emplace_back([&, q] {
      SieveSession session(&sieve, {queriers[q], "any"});
      // session.Execute re-prepares each time: after the first call the
      // rewrite comes from the shared cache, so this loop measures the
      // cache-through path under concurrency (a PreparedQuery would skip
      // the cache entirely after Prepare).
      for (int i = 0; i < 20; ++i) {
        auto result = session.Execute(sql);
        if (!result.ok() || Fingerprints(*result) != expected[q]) {
          ++mismatches;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // With the corpus stable, every one of the 3 × 20 concurrent lookups is
  // a hit and nothing invalidates.
  RewriteCacheStats stats = sieve.rewrite_cache_stats();
  EXPECT_EQ(stats.hits, warm.hits + 60u);
  EXPECT_EQ(stats.misses, warm.misses);
  EXPECT_EQ(stats.invalidations, warm.invalidations);
  EXPECT_GE(stats.HitRate(), 0.9);
}

TEST(SessionConcurrencyTest, ChurnOnOneQuerierLeavesOthersExecutingCached) {
  // Keyed invalidation under concurrency: a writer churns carol's policies
  // while alice and bob execute prepared queries. The bystanders' corpora
  // never change, so their results must stay equal to their pre-churn
  // references, their snapshots must never be marked stale, and they must
  // never re-prepare. (TSan covers the listener → cache invalidation path
  // racing the readers' stale checks.)
  MiniCampus campus;
  SieveOptions options;
  options.num_threads = 2;
  SieveMiddleware sieve(&campus.db(), &campus.groups(), options);
  ASSERT_TRUE(sieve.Init().ok());
  const char* bystanders[] = {"alice", "bob"};
  for (int q = 0; q < 2; ++q) {
    ASSERT_TRUE(
        sieve.AddPolicy(campus.MakePolicy(q, bystanders[q], "any")).ok());
  }
  ASSERT_TRUE(sieve.AddPolicy(campus.MakePolicy(5, "carol", "any")).ok());

  const std::string sql = "SELECT * FROM wifi WHERE wifiAP = 1";
  std::multiset<std::string> expected[2];
  for (int q = 0; q < 2; ++q) {
    auto oracle = sieve.ExecuteReference(sql, {bystanders[q], "any"});
    ASSERT_TRUE(oracle.ok());
    expected[q] = Fingerprints(*oracle);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> spurious_invalidations{0};
  std::vector<std::thread> readers;
  for (int q = 0; q < 2; ++q) {
    readers.emplace_back([&, q] {
      SieveSession session(&sieve, {bystanders[q], "any"});
      auto prepared = session.Prepare(sql);
      if (!prepared.ok()) {
        ++failures;
        return;
      }
      auto snapshot = prepared->rewrite();
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = prepared->Execute();
        if (!result.ok() || Fingerprints(*result) != expected[q]) {
          ++failures;
          return;
        }
      }
      if (snapshot->stale() || prepared->rewrite().get() != snapshot.get()) {
        ++spurious_invalidations;
      }
    });
  }

  std::thread writer([&] {
    for (int k = 0; k < 6; ++k) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      auto id = sieve.AddPolicy(campus.MakePolicy(k % 9, "carol", "any"));
      if (!id.ok()) {
        ++failures;
        return;
      }
    }
  });
  writer.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(spurious_invalidations.load(), 0)
      << "carol's churn must not invalidate alice's or bob's rewrites";
}

TEST(SessionConcurrencyTest, AuditLogAccountsForEveryConcurrentExecution) {
  // Readers hammer Execute and cursor drains concurrently (AuditLog::Append
  // under the shared state lock) while a writer churns an unrelated
  // querier's policies (exclusive lock). Afterwards the audit trail must
  // hold exactly one record per execution, queryable through the
  // middleware itself. TSan covers Append racing Append, Append racing
  // Flush, and cursor Finish on reader threads.
  MiniCampus campus;
  SieveOptions options;
  options.num_threads = 2;
  SieveMiddleware sieve(&campus.db(), &campus.groups(), options);
  ASSERT_TRUE(sieve.Init().ok());
  const char* queriers[] = {"alice", "bob", "carol"};
  for (int q = 0; q < 3; ++q) {
    ASSERT_TRUE(
        sieve.AddPolicy(campus.MakePolicy(q, queriers[q], "any")).ok());
  }

  constexpr int kReaders = 3;
  constexpr int kRunsPerReader = 20;   // one-shot executions
  constexpr int kCursorsPerReader = 5; // streamed executions
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int q = 0; q < kReaders; ++q) {
    readers.emplace_back([&, q] {
      SieveSession session(&sieve, {queriers[q], "any"});
      auto prepared = session.Prepare("SELECT * FROM wifi WHERE wifiAP <= 2");
      if (!prepared.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRunsPerReader; ++i) {
        if (!prepared->Execute().ok()) {
          ++failures;
          return;
        }
      }
      for (int i = 0; i < kCursorsPerReader; ++i) {
        auto cursor = prepared->OpenCursor();
        if (!cursor.ok() || !cursor->Drain().ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  std::thread writer([&] {
    for (int k = 0; k < 6; ++k) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      if (!sieve.AddPolicy(campus.MakePolicy(k % 9, "dave", "any")).ok()) {
        ++failures;
      }
    }
  });
  writer.join();
  for (auto& t : readers) t.join();
  ASSERT_EQ(failures.load(), 0);

  const size_t expected =
      static_cast<size_t>(kReaders) * (kRunsPerReader + kCursorsPerReader);
  EXPECT_EQ(sieve.audit_log().total_appended(),
            static_cast<int64_t>(expected));
  EXPECT_EQ(sieve.audit_log().dropped(), 0u);

  // The audit trail is itself queryable through the middleware: reading
  // sieve_audit auto-flushes the pending ring first, so the read sees
  // every record above (but not its own, appended after it runs).
  auto rows = sieve.Execute("SELECT querier FROM sieve_audit",
                            {"auditor", "any"});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), expected);
  EXPECT_EQ(sieve.audit_log().pending(), 1u);  // the audit read itself
  size_t per_querier[kReaders] = {0, 0, 0};
  for (const Row& row : rows->rows) {
    for (int q = 0; q < kReaders; ++q) {
      if (row[0].AsString() == queriers[q]) ++per_querier[q];
    }
  }
  for (int q = 0; q < kReaders; ++q) {
    EXPECT_EQ(per_querier[q],
              static_cast<size_t>(kRunsPerReader + kCursorsPerReader))
        << queriers[q];
  }
}

}  // namespace
}  // namespace sieve
