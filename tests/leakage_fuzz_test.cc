// Policy-leakage fuzz oracle: seeded random policy corpora and queries
// across all three scenarios (campus, mall, hospital), each execution
// checked against metamorphic invariants that catch over-sharing without
// a hand-written expected answer:
//
//   1. enforced == reference — the Sieve rewrite returns exactly the
//      tuple set of the plain policy-DNF reference semantics;
//   2. enforced ⊆ unrestricted — the querier never receives a row the raw
//      table scan would not produce (no fabricated rows);
//   3. row-level permission — for single-table SELECT-ALL shapes, the
//      visible rows are *exactly* the unrestricted rows on which some
//      applicable policy's object conditions evaluate true (both
//      directions: nothing leaks, nothing permitted is hidden);
//   4. default deny — a querier with no applicable policy sees zero rows;
//   5. audit accounting — every execution appends exactly one audit
//      record, and the flushed `sieve_audit` table is queryable through
//      the middleware with one entry per execution;
//   6. revocation (hospital) — after revoking a patient's research
//      consent, the researcher's view contains no row of that patient.
//
// Seed budget: SIEVE_FUZZ_SEEDS seeds per scenario (default 50; CI runs a
// smaller budget), starting at SIEVE_FUZZ_SEED_BASE (default 1000). On a
// failure the trace names the seed; reproduce with
//   SIEVE_FUZZ_SEED_BASE=<seed> SIEVE_FUZZ_SEEDS=1 ./leakage_fuzz_test

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "expr/eval.h"
#include "plan/operators.h"
#include "sieve/session.h"
#include "tests/test_fixtures.h"
#include "workload/mall.h"
#include "workload/policy_gen.h"
#include "workload/query_gen.h"

namespace sieve {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}

int FuzzSeeds() { return EnvInt("SIEVE_FUZZ_SEEDS", 50); }
int FuzzSeedBase() { return EnvInt("SIEVE_FUZZ_SEED_BASE", 1000); }

std::string ReproHint(int seed) {
  return StrFormat(
      "seed=%d — reproduce with SIEVE_FUZZ_SEED_BASE=%d SIEVE_FUZZ_SEEDS=1",
      seed, seed);
}

std::multiset<std::string> Fingerprints(const ResultSet& rs) {
  std::multiset<std::string> out;
  for (const auto& row : rs.rows) out.insert(RowFingerprint(row));
  return out;
}

void ExpectSubset(const std::multiset<std::string>& sub,
                  const std::multiset<std::string>& super,
                  const std::string& what) {
  EXPECT_TRUE(std::includes(super.begin(), super.end(), sub.begin(),
                            sub.end()))
      << what << ": enforced result contains rows absent from the "
      << "unrestricted scan — fabricated or duplicated data";
}

/// Tracks one scenario's executions so the audit-accounting invariant can
/// be checked without instrumenting the middleware: every enforced
/// execution goes through Run().
class Enforced {
 public:
  explicit Enforced(SieveMiddleware* sieve) : sieve_(sieve) {}

  Result<ResultSet> Run(const std::string& sql, const QueryMetadata& md) {
    ++executions_;
    return sieve_->Execute(sql, md);
  }

  size_t executions() const { return executions_; }
  SieveMiddleware& sieve() { return *sieve_; }

 private:
  SieveMiddleware* sieve_;
  size_t executions_ = 0;
};

/// Invariants 1 + 2 for an arbitrary query shape.
void CheckReferenceAndSubset(Enforced& run, Database& db,
                             const std::string& sql, const QueryMetadata& md,
                             const std::string& trace) {
  auto enforced = run.Run(sql, md);
  ASSERT_TRUE(enforced.ok()) << trace << " sql=" << sql << " -> "
                             << enforced.status().ToString();
  auto reference = run.sieve().ExecuteReference(sql, md);
  ASSERT_TRUE(reference.ok()) << trace << " sql=" << sql;
  EXPECT_EQ(Fingerprints(*enforced), Fingerprints(*reference))
      << trace << " querier=" << md.querier << " purpose=" << md.purpose
      << " sql=" << sql;
  auto unrestricted = db.ExecuteSql(sql);
  ASSERT_TRUE(unrestricted.ok()) << trace << " sql=" << sql;
  ExpectSubset(Fingerprints(*enforced), Fingerprints(*unrestricted),
               trace + " querier=" + md.querier + " sql=" + sql);
}

/// Invariant 3: the enforced SELECT-ALL view of `table` equals, row for
/// row, the subset of the raw table some applicable policy permits —
/// evaluated independently of the rewriter with a plain per-row walk of
/// each policy's object conditions.
void CheckRowLevelPermission(Enforced& run, Database& db,
                             const std::string& table,
                             const QueryMetadata& md,
                             const GroupResolver* groups,
                             const std::string& trace) {
  const std::string sql = "SELECT * FROM " + table;
  auto enforced = run.Run(sql, md);
  ASSERT_TRUE(enforced.ok()) << trace << " table=" << table << " -> "
                             << enforced.status().ToString();
  auto all = db.ExecuteSql(sql);
  ASSERT_TRUE(all.ok()) << trace;
  const TableEntry* entry = db.catalog().Find(table);
  ASSERT_NE(entry, nullptr) << trace;
  const Schema& schema = entry->table->schema();

  std::vector<const Policy*> policies =
      run.sieve().policies().FilterByMetadata(md, table, groups);
  std::vector<ExprPtr> object_exprs;
  object_exprs.reserve(policies.size());
  for (const Policy* p : policies) object_exprs.push_back(p->ObjectExpr());

  ExecStats stats;
  Evaluator eval(&schema, nullptr, nullptr, &stats);
  std::multiset<std::string> permitted;
  for (const Row& row : all->rows) {
    bool pass = false;
    for (const ExprPtr& expr : object_exprs) {
      auto verdict = eval.EvalPredicate(*expr, row);
      ASSERT_TRUE(verdict.ok()) << trace;
      if (*verdict) {
        pass = true;
        break;
      }
    }
    if (pass) permitted.insert(RowFingerprint(row));
  }
  EXPECT_EQ(Fingerprints(*enforced), permitted)
      << trace << " table=" << table << " querier=" << md.querier
      << " purpose=" << md.purpose << ": the enforced view differs from "
      << "the per-row policy-permission oracle (" << policies.size()
      << " applicable policies)";
}

/// Invariant 4: no applicable policy → empty result, never an error.
void CheckDefaultDeny(Enforced& run, const std::string& sql,
                      const QueryMetadata& md, const std::string& trace) {
  auto denied = run.Run(sql, md);
  ASSERT_TRUE(denied.ok()) << trace << " sql=" << sql;
  EXPECT_EQ(denied->size(), 0u)
      << trace << " querier=" << md.querier << " purpose=" << md.purpose
      << " leaked " << denied->size() << " rows with no applicable policy";
}

/// Invariant 5: one audit record per execution, queryable through the
/// middleware. Consumes one extra execution for the audit read itself.
void CheckAuditAccounting(Enforced& run, const std::string& trace) {
  SieveMiddleware& sieve = run.sieve();
  EXPECT_EQ(sieve.audit_log().total_appended(),
            static_cast<int64_t>(run.executions()))
      << trace << ": executions and audit appends diverge";
  EXPECT_EQ(sieve.audit_log().dropped(), 0u) << trace;

  // Reading sieve_audit through the middleware auto-flushes the pending
  // ring, so the read sees every prior execution (not itself).
  const size_t expected = run.executions();
  auto rows = run.Run(
      "SELECT querier, policies, guards, denied, rows_out FROM sieve_audit",
      {"auditor", "Compliance"});
  ASSERT_TRUE(rows.ok()) << trace << " -> " << rows.status().ToString();
  EXPECT_EQ(rows->size(), expected)
      << trace << ": sieve_audit must hold exactly one entry per execution";
  for (const Row& row : rows->rows) {
    // Any entry that produced rows without being default-denied must name
    // the policies and guards that let them through.
    if (row[3].raw() == 0 && row[4].raw() > 0) {
      EXPECT_FALSE(row[1].AsString().empty())
          << trace << " querier=" << row[0].AsString()
          << ": rows released with no policy named in the audit entry";
      EXPECT_FALSE(row[2].AsString().empty())
          << trace << " querier=" << row[0].AsString()
          << ": rows released with no guard named in the audit entry";
    }
  }
}

// ---------------------------------------------------------------------------
// Campus: hand-built MiniCampus rows + a random policy corpus.
// ---------------------------------------------------------------------------

TEST(LeakageFuzz, Campus) {
  const int seeds = FuzzSeeds(), base = FuzzSeedBase();
  for (int s = 0; s < seeds; ++s) {
    const int seed = base + s;
    SCOPED_TRACE(ReproHint(seed));
    MiniCampus campus;
    SieveMiddleware sieve(&campus.db(), &campus.groups());
    ASSERT_TRUE(sieve.Init().ok());
    Rng rng(static_cast<uint64_t>(seed));

    const char* queriers[] = {"alice", "bob", "carol"};
    const char* purposes[] = {"any", "Analytics", "Social"};
    int n_policies = static_cast<int>(rng.Uniform(3, 25));
    for (int i = 0; i < n_policies; ++i) {
      int t1 = -1, t2 = -1, ap = -1;
      if (rng.Chance(0.6)) {
        t1 = static_cast<int>(rng.Uniform(6, 15));
        t2 = t1 + static_cast<int>(rng.Uniform(1, 5));
      }
      if (rng.Chance(0.4)) ap = static_cast<int>(rng.Uniform(0, 5));
      const char* grantee =
          rng.Chance(0.3) ? "students" : queriers[rng.Uniform(0, 2)];
      ASSERT_TRUE(sieve
                      .AddPolicy(campus.MakePolicy(
                          static_cast<int>(rng.Uniform(0, 9)), grantee,
                          purposes[rng.Uniform(0, 2)], t1, t2, ap))
                      .ok());
    }

    Enforced run(&sieve);
    for (const char* querier : queriers) {
      QueryMetadata md{querier, purposes[rng.Uniform(0, 2)]};
      CheckRowLevelPermission(run, campus.db(), "wifi", md, &campus.groups(),
                              "campus");
      CheckReferenceAndSubset(
          run, campus.db(),
          StrFormat("SELECT * FROM wifi WHERE wifiAP <= %lld AND ts_time >= "
                    "'%02d:00'",
                    (long long)rng.Uniform(0, 5),
                    static_cast<int>(rng.Uniform(6, 14))),
          md, "campus");
    }
    CheckDefaultDeny(run, "SELECT * FROM wifi", {"mallory", "any"}, "campus");
    CheckAuditAccounting(run, "campus");
  }
}

// ---------------------------------------------------------------------------
// Mall: generated dataset + generated per-customer policy corpus.
// ---------------------------------------------------------------------------

TEST(LeakageFuzz, Mall) {
  const int seeds = FuzzSeeds(), base = FuzzSeedBase();
  for (int s = 0; s < seeds; ++s) {
    const int seed = base + s;
    SCOPED_TRACE(ReproHint(seed));
    Database db;
    MallConfig config;
    config.num_customers = 60;
    config.num_shops = 6;
    config.num_days = 8;
    config.target_events = 1500;
    config.seed = static_cast<uint64_t>(seed);
    MallGenerator gen(config);
    auto ds = gen.Populate(&db);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();

    MapGroupResolver no_groups;
    SieveMiddleware sieve(&db, &no_groups);
    ASSERT_TRUE(sieve.Init().ok());
    MallPolicyGenerator pg(static_cast<uint64_t>(seed) * 31 + 7);
    ASSERT_TRUE(pg.Generate(*ds, &sieve.policies()).ok());

    Enforced run(&sieve);
    Rng rng(static_cast<uint64_t>(seed) * 13 + 1);
    for (int q = 0; q < 3; ++q) {
      QueryMetadata md{
          MallDataset::ShopName(static_cast<int>(
              rng.Uniform(0, config.num_shops - 1))),
          "Marketing"};
      CheckRowLevelPermission(run, db, "WiFi_Connectivity", md, &no_groups,
                              "mall");
      CheckReferenceAndSubset(
          run, db,
          StrFormat("SELECT * FROM WiFi_Connectivity WHERE shop_id = %lld",
                    (long long)rng.Uniform(0, config.num_shops - 1)),
          md, "mall");
    }
    // Wrong purpose and unknown querier both default-deny.
    CheckDefaultDeny(run, "SELECT * FROM WiFi_Connectivity",
                     {MallDataset::ShopName(0), "Espionage"}, "mall");
    CheckDefaultDeny(run, "SELECT * FROM WiFi_Connectivity",
                     {"nobody", "Marketing"}, "mall");
    CheckAuditAccounting(run, "mall");
  }
}

// ---------------------------------------------------------------------------
// Hospital: GDPR purpose limitation + consent revocation.
// ---------------------------------------------------------------------------

TEST(LeakageFuzz, Hospital) {
  const int seeds = FuzzSeeds(), base = FuzzSeedBase();
  for (int s = 0; s < seeds; ++s) {
    const int seed = base + s;
    SCOPED_TRACE(ReproHint(seed));
    Database db;
    HospitalConfig config;
    config.num_patients = 40;
    config.num_staff = 10;
    config.num_wards = 3;
    config.num_days = 12;
    config.target_encounters = 900;
    config.seed = static_cast<uint64_t>(seed);
    HospitalGenerator gen(config);
    auto ds = gen.Populate(&db);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();

    SieveMiddleware sieve(&db, &ds->groups);
    ASSERT_TRUE(sieve.Init().ok());
    HospitalPolicyGenConfig pg_config;
    pg_config.seed = static_cast<uint64_t>(seed) * 17 + 3;
    HospitalPolicyGenerator pg(pg_config);
    ASSERT_TRUE(pg.Generate(*ds, &sieve.policies()).ok());

    Enforced run(&sieve);
    Rng rng(static_cast<uint64_t>(seed) * 7 + 5);
    HospitalQueryGenerator queries(*ds, static_cast<uint64_t>(seed));

    auto pick = [&](const char* role) {
      auto ids = ds->StaffWithRole(role);
      return HospitalDataset::StaffName(
          ids[static_cast<size_t>(rng.Uniform(
              0, static_cast<int64_t>(ids.size()) - 1))]);
    };
    const std::string doctor = pick("doctor");
    const std::string nurse = pick("nurse");
    const std::string researcher = pick("researcher");
    const std::string billing = pick("billing");

    for (const auto& [querier, purpose] :
         std::vector<std::pair<std::string, std::string>>{
             {doctor, "Treatment"},
             {nurse, "Treatment"},
             {researcher, "Research"},
             {billing, "Billing"}}) {
      QueryMetadata md{querier, purpose};
      CheckRowLevelPermission(run, db, "Encounters", md, &ds->groups,
                              "hospital");
      CheckRowLevelPermission(run, db, "Diagnoses", md, &ds->groups,
                              "hospital");
    }
    for (QuerySelectivity sel :
         {QuerySelectivity::kLow, QuerySelectivity::kHigh}) {
      CheckReferenceAndSubset(run, db, queries.HQ1(sel),
                              {nurse, "Treatment"}, "hospital");
      CheckReferenceAndSubset(run, db, queries.HQ2(sel),
                              {doctor, "Treatment"}, "hospital");
    }
    // Purpose limitation: treatment staff get nothing under Research, and
    // strangers get nothing at all.
    CheckDefaultDeny(run, "SELECT * FROM Encounters", {nurse, "Research"},
                     "hospital");
    CheckDefaultDeny(run, "SELECT * FROM Encounters", {"intruder", "Treatment"},
                     "hospital");

    // Consent revocation: drop a consented patient's research grants
    // (store-level removal + guard invalidation, the churn idiom), then the
    // researcher's Diagnoses view must contain no row of that patient —
    // and still match the per-row oracle over the shrunken corpus.
    auto consented = ds->ConsentedPatients();
    ASSERT_FALSE(consented.empty());
    const int revoked = consented[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(consented.size()) - 1))];
    std::vector<int64_t> research_ids =
        ResearchPolicyIds(sieve.policies(), revoked);
    ASSERT_FALSE(research_ids.empty()) << "patient " << revoked;
    for (int64_t id : research_ids) {
      ASSERT_TRUE(sieve.policies().RemovePolicy(id).ok());
    }
    sieve.guards().MarkOutdated(researcher, "Research", "Diagnoses");

    QueryMetadata research_md{researcher, "Research"};
    auto post = run.Run("SELECT * FROM Diagnoses", research_md);
    ASSERT_TRUE(post.ok()) << post.status().ToString();
    const TableEntry* diag = db.catalog().Find("Diagnoses");
    ASSERT_NE(diag, nullptr);
    int patient_col = diag->table->schema().FindColumn("patient_id");
    ASSERT_GE(patient_col, 0);
    for (const Row& row : post->rows) {
      ASSERT_NE(row[static_cast<size_t>(patient_col)].raw(), revoked)
          << "revoked patient " << revoked
          << " still visible to researcher " << researcher;
    }
    CheckRowLevelPermission(run, db, "Diagnoses", research_md, &ds->groups,
                            "hospital-post-revocation");

    CheckAuditAccounting(run, "hospital");
  }
}

}  // namespace
}  // namespace sieve
