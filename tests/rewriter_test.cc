#include "sieve/rewriter.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "tests/test_fixtures.h"

namespace sieve {
namespace {

// Middleware over the MiniCampus with a handful of policies for "alice".
class RewriterTest : public ::testing::Test {
 protected:
  RewriterTest() : sieve_(&campus_.db(), &campus_.groups()) {
    EXPECT_TRUE(sieve_.Init().ok());
    // alice (faculty) may see owners 0..4 during 9-12h, and owner 5 at AP 2.
    for (int owner = 0; owner < 5; ++owner) {
      EXPECT_TRUE(
          sieve_
              .AddPolicy(campus_.MakePolicy(owner, "alice", "Analytics", 9, 12))
              .ok());
    }
    EXPECT_TRUE(
        sieve_.AddPolicy(campus_.MakePolicy(5, "alice", "Analytics", -1, -1, 2))
            .ok());
    // bob may see owner 7 only.
    EXPECT_TRUE(sieve_.AddPolicy(campus_.MakePolicy(7, "bob", "Social")).ok());
  }

  // Sorted row fingerprints for set comparison.
  static std::multiset<std::string> Fingerprints(const ResultSet& rs) {
    std::multiset<std::string> out;
    for (const auto& row : rs.rows) {
      std::string fp;
      for (const auto& v : row) fp += v.ToString() + "|";
      out.insert(fp);
    }
    return out;
  }

  MiniCampus campus_;
  SieveMiddleware sieve_;
};

TEST_F(RewriterTest, ProducesWithClause) {
  auto rewrite =
      sieve_.Rewrite("SELECT * FROM wifi", {"alice", "Analytics"});
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  ASSERT_EQ(rewrite->stmt->ctes.size(), 1u);
  EXPECT_EQ(rewrite->stmt->ctes[0].name, "sieve_wifi");
  EXPECT_EQ(rewrite->stmt->from[0].table_name, "sieve_wifi");
  EXPECT_FALSE(rewrite->default_denied);
  // Rendered SQL re-parses.
  EXPECT_NE(rewrite->sql.find("WITH sieve_wifi AS"), std::string::npos);
}

TEST_F(RewriterTest, KeepsAliasesSoOuterQualifiersBind) {
  auto rewrite = sieve_.Rewrite(
      "SELECT * FROM wifi AS W WHERE W.wifiAP = 1", {"alice", "Analytics"});
  ASSERT_TRUE(rewrite.ok());
  EXPECT_EQ(rewrite->stmt->from[0].alias, "W");
  auto result = sieve_.db().ExecuteStmt(*rewrite->stmt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST_F(RewriterTest, EquivalentToReferenceSemantics) {
  const char* queries[] = {
      "SELECT * FROM wifi",
      "SELECT * FROM wifi AS W WHERE W.wifiAP = 2",
      "SELECT * FROM wifi AS W WHERE W.ts_time BETWEEN '09:00' AND '11:00'",
      "SELECT * FROM wifi AS W WHERE W.owner IN (1, 3, 5, 7)",
  };
  for (const char* sql : queries) {
    auto fast = sieve_.Execute(sql, {"alice", "Analytics"});
    auto oracle = sieve_.ExecuteReference(sql, {"alice", "Analytics"});
    ASSERT_TRUE(fast.ok()) << sql << ": " << fast.status().ToString();
    ASSERT_TRUE(oracle.ok()) << sql;
    EXPECT_EQ(Fingerprints(*fast), Fingerprints(*oracle)) << sql;
    EXPECT_GT(oracle->size(), 0u) << sql;
  }
}

TEST_F(RewriterTest, DefaultDenyForUnknownQuerier) {
  auto result = sieve_.Execute("SELECT * FROM wifi", {"mallory", "Analytics"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

TEST_F(RewriterTest, PurposeMismatchDenies) {
  auto result = sieve_.Execute("SELECT * FROM wifi", {"alice", "Commercial"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

TEST_F(RewriterTest, QueriersAreIsolated) {
  auto bob = sieve_.Execute("SELECT * FROM wifi", {"bob", "Social"});
  ASSERT_TRUE(bob.ok());
  EXPECT_EQ(bob->size(), 60u);  // exactly owner 7's rows
  for (const auto& row : bob->rows) {
    EXPECT_EQ(row[2].AsInt(), 7);  // owner column
  }
}

TEST_F(RewriterTest, UnprotectedTablesAreLeftAlone) {
  ASSERT_TRUE(
      campus_.db().CreateTable("open_table", Schema({{"x", DataType::kInt}}))
          .ok());
  ASSERT_TRUE(campus_.db().Insert("open_table", Row{Value::Int(1)}).ok());
  auto rewrite =
      sieve_.Rewrite("SELECT * FROM open_table", {"alice", "Analytics"});
  ASSERT_TRUE(rewrite.ok());
  EXPECT_TRUE(rewrite->stmt->ctes.empty());
  auto result = sieve_.Execute("SELECT * FROM open_table", {"alice", "Analytics"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST_F(RewriterTest, StrategyDiagnosticsPopulated) {
  auto rewrite = sieve_.Rewrite("SELECT * FROM wifi", {"alice", "Analytics"});
  ASSERT_TRUE(rewrite.ok());
  ASSERT_EQ(rewrite->tables.size(), 1u);
  const TableRewriteInfo& info = rewrite->tables[0];
  EXPECT_EQ(info.num_policies, 6u);
  EXPECT_GE(info.num_guards, 1u);
  EXPECT_GT(info.cost_linear, 0.0);
  EXPECT_GT(info.cost_index_guards, 0.0);
  EXPECT_FALSE(info.ToString().empty());
}

TEST_F(RewriterTest, SelectAllUsesIndexGuardsOrLinear) {
  // Without a query predicate, IndexQuery is impossible.
  auto rewrite = sieve_.Rewrite("SELECT * FROM wifi", {"alice", "Analytics"});
  ASSERT_TRUE(rewrite.ok());
  EXPECT_NE(rewrite->tables[0].strategy, AccessStrategy::kIndexQuery);
}

TEST_F(RewriterTest, GuardArmDeltaForm) {
  Guard guard;
  guard.id = 77;
  guard.guard.attr = "owner";
  guard.guard.lo = Value::Int(1);
  guard.guard.hi = Value::Int(1);
  guard.guard.policy_ids = {1};
  ExprPtr arm = sieve_.rewriter().GuardArmExpr(guard, /*use_delta=*/true);
  EXPECT_NE(arm->ToSql().find("delta(77) = true"), std::string::npos);
}

TEST_F(RewriterTest, SecondRewriteReusesGuards) {
  auto first = sieve_.Rewrite("SELECT * FROM wifi", {"alice", "Analytics"});
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->tables[0].regenerated_guards);
  auto second = sieve_.Rewrite("SELECT * FROM wifi", {"alice", "Analytics"});
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->tables[0].regenerated_guards);
}

TEST_F(RewriterTest, PolicyInsertMarksGuardsOutdated) {
  ASSERT_TRUE(sieve_.Rewrite("SELECT * FROM wifi", {"alice", "Analytics"}).ok());
  ASSERT_TRUE(
      sieve_.AddPolicy(campus_.MakePolicy(8, "alice", "Analytics")).ok());
  EXPECT_TRUE(sieve_.guards().IsOutdated("alice", "Analytics", "wifi"));
  auto rewrite = sieve_.Rewrite("SELECT * FROM wifi", {"alice", "Analytics"});
  ASSERT_TRUE(rewrite.ok());
  EXPECT_TRUE(rewrite->tables[0].regenerated_guards);
  // The new policy's rows are now visible.
  auto result = sieve_.Execute("SELECT * FROM wifi", {"alice", "Analytics"});
  ASSERT_TRUE(result.ok());
  bool owner8_seen = false;
  for (const auto& row : result->rows) {
    if (row[2].AsInt() == 8) owner8_seen = true;
  }
  EXPECT_TRUE(owner8_seen);
}

TEST_F(RewriterTest, AggregationOverRewrittenTable) {
  auto result = sieve_.Execute(
      "SELECT owner, COUNT(*) AS n FROM wifi GROUP BY owner",
      {"alice", "Analytics"});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Only owners 0..5 can appear.
  for (const auto& row : result->rows) {
    EXPECT_LE(row[0].AsInt(), 5);
  }
}

// The same semantics must hold on a PostgreSQL-like engine (no hints,
// bitmap-OR scans).
TEST(RewriterPostgresTest, EquivalenceOnPostgresProfile) {
  MiniCampus campus(EngineProfile::PostgresLike());
  SieveMiddleware sieve(&campus.db(), &campus.groups());
  ASSERT_TRUE(sieve.Init().ok());
  for (int owner = 0; owner < 6; ++owner) {
    ASSERT_TRUE(
        sieve.AddPolicy(campus.MakePolicy(owner, "alice", "Analytics", 8, 14))
            .ok());
  }
  auto fast = sieve.Execute("SELECT * FROM wifi", {"alice", "Analytics"});
  auto oracle =
      sieve.ExecuteReference("SELECT * FROM wifi", {"alice", "Analytics"});
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(fast->size(), oracle->size());
  EXPECT_GT(fast->size(), 0u);
}

}  // namespace
}  // namespace sieve
