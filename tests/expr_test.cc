#include "expr/expr.h"

#include <gtest/gtest.h>

#include "expr/eval.h"
#include "parser/parser.h"
#include "plan/row_batch.h"

namespace sieve {
namespace {

Schema TestSchema() {
  return Schema({{"owner", DataType::kInt},
                 {"wifiAP", DataType::kInt},
                 {"ts_time", DataType::kTime},
                 {"ts_date", DataType::kDate},
                 {"name", DataType::kString}});
}

Row TestRow() {
  return Row{Value::Int(7), Value::Int(1200), Value::Time(9 * 3600 + 1800),
             Value::Date(18000), Value::String("john")};
}

class ExprEvalTest : public ::testing::Test {
 protected:
  Result<Value> Eval(const std::string& text) {
    auto expr = Parser::ParseExpression(text);
    EXPECT_TRUE(expr.ok()) << text;
    Status bound = BindExpr(expr->get(), schema_);
    EXPECT_TRUE(bound.ok()) << bound.ToString();
    Evaluator evaluator(&schema_, nullptr, nullptr, &stats_);
    return evaluator.Eval(**expr, row_);
  }

  bool EvalBool(const std::string& text) {
    auto v = Eval(text);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return !v->is_null() && v->AsBool();
  }

  Schema schema_ = TestSchema();
  Row row_ = TestRow();
  ExecStats stats_;
};

TEST_F(ExprEvalTest, Comparisons) {
  EXPECT_TRUE(EvalBool("owner = 7"));
  EXPECT_FALSE(EvalBool("owner = 8"));
  EXPECT_TRUE(EvalBool("owner != 8"));
  EXPECT_TRUE(EvalBool("wifiAP >= 1200"));
  EXPECT_FALSE(EvalBool("wifiAP > 1200"));
  EXPECT_TRUE(EvalBool("owner < 100"));
}

TEST_F(ExprEvalTest, TimeCoercion) {
  // The binder coerces '09:00' to a Time value for the ts_time column.
  EXPECT_TRUE(EvalBool("ts_time >= '09:00'"));
  EXPECT_TRUE(EvalBool("ts_time BETWEEN '09:00' AND '10:00'"));
  EXPECT_FALSE(EvalBool("ts_time BETWEEN '10:00' AND '11:00'"));
}

TEST_F(ExprEvalTest, DateCoercion) {
  std::string date = Value::Date(18000).ToString();
  EXPECT_TRUE(EvalBool("ts_date = '" + date + "'"));
}

TEST_F(ExprEvalTest, InList) {
  EXPECT_TRUE(EvalBool("wifiAP IN (1100, 1200, 1300)"));
  EXPECT_FALSE(EvalBool("wifiAP IN (1, 2)"));
  EXPECT_TRUE(EvalBool("wifiAP NOT IN (1, 2)"));
}

TEST_F(ExprEvalTest, BooleanConnectives) {
  EXPECT_TRUE(EvalBool("owner = 7 AND wifiAP = 1200"));
  EXPECT_FALSE(EvalBool("owner = 7 AND wifiAP = 1"));
  EXPECT_TRUE(EvalBool("owner = 0 OR wifiAP = 1200"));
  EXPECT_TRUE(EvalBool("NOT owner = 8"));
}

TEST_F(ExprEvalTest, StringCompare) {
  EXPECT_TRUE(EvalBool("name = 'john'"));
  EXPECT_FALSE(EvalBool("name = 'John'"));  // case sensitive values
}

TEST_F(ExprEvalTest, ComparisonCounterIncrements) {
  stats_ = ExecStats();
  EvalBool("owner = 7 AND wifiAP = 1200");
  EXPECT_EQ(stats_.comparisons, 2u);
}

TEST_F(ExprEvalTest, OrShortCircuits) {
  stats_ = ExecStats();
  EvalBool("owner = 7 OR wifiAP = 1200 OR name = 'john'");
  EXPECT_EQ(stats_.comparisons, 1u);  // first disjunct matched
}

TEST_F(ExprEvalTest, UnknownColumnFailsBinding) {
  auto expr = Parser::ParseExpression("nosuch = 1");
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(BindExpr(expr->get(), schema_).ok());
}

TEST(ExprBindTest, QualifiedSuffixMatching) {
  Schema qualified({{"W.owner", DataType::kInt}, {"W.wifiAP", DataType::kInt}});
  auto plain = Parser::ParseExpression("owner = 1");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(BindExpr(plain->get(), qualified).ok());

  auto exact = Parser::ParseExpression("W.owner = 1");
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(BindExpr(exact->get(), qualified).ok());

  auto wrong_qual = Parser::ParseExpression("X.owner = 1");
  ASSERT_TRUE(wrong_qual.ok());
  EXPECT_FALSE(BindExpr(wrong_qual->get(), qualified).ok());
}

TEST(ExprBindTest, AmbiguousSuffixRejected) {
  Schema joined({{"W.id", DataType::kInt}, {"U.id", DataType::kInt}});
  auto plain = Parser::ParseExpression("id = 1");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(BindExpr(plain->get(), joined).ok());
  auto qualified = Parser::ParseExpression("U.id = 1");
  ASSERT_TRUE(qualified.ok());
  EXPECT_TRUE(BindExpr(qualified->get(), joined).ok());
}

TEST(ExprUtilTest, FlattenConjuncts) {
  auto expr = Parser::ParseExpression("a = 1 AND b = 2 AND (c = 3 OR d = 4)");
  ASSERT_TRUE(expr.ok());
  std::vector<ExprPtr> out;
  FlattenConjuncts(*expr, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2]->kind(), ExprKind::kOr);
}

TEST(ExprUtilTest, MakeAndOrSimplify) {
  EXPECT_EQ(MakeAnd({})->kind(), ExprKind::kLiteral);
  ExprPtr single = MakeColumnCompare("a", CompareOp::kEq, Value::Int(1));
  EXPECT_EQ(MakeAnd({single}), single);
  EXPECT_EQ(MakeOr({})->kind(), ExprKind::kLiteral);
}

TEST(ExprUtilTest, CloneIsDeep) {
  auto expr = Parser::ParseExpression("a = 1 AND b BETWEEN 2 AND 3");
  ASSERT_TRUE(expr.ok());
  ExprPtr clone = (*expr)->Clone();
  EXPECT_TRUE(ExprEquals(**expr, *clone));
  EXPECT_NE(expr->get(), clone.get());
}

TEST(ExprUtilTest, ToSqlRoundTrips) {
  const char* cases[] = {
      "owner = 7",
      "a = 1 AND (b = 2 OR c = 3)",
      "x BETWEEN 1 AND 10",
      "y IN (1, 2, 3)",
      "NOT (a = 1)",
      "delta(42) = true",
  };
  for (const char* text : cases) {
    auto expr = Parser::ParseExpression(text);
    ASSERT_TRUE(expr.ok()) << text;
    auto reparsed = Parser::ParseExpression((*expr)->ToSql());
    ASSERT_TRUE(reparsed.ok()) << (*expr)->ToSql();
    EXPECT_TRUE(ExprEquals(**expr, **reparsed)) << text;
  }
}

// Differential contract of the vectorized predicate path: for any batch
// of rows (NULL-riddled included), EvalPredicateBatch must produce the
// exact per-row verdicts of EvalPredicate AND the exact ExecStats
// comparison counts — the active-set narrowing of AND/OR has to mirror
// row-at-a-time short-circuiting (node, row) pair for pair.
TEST(EvalPredicateBatchTest, MatchesRowAtATimeVerdictsAndStats) {
  Schema schema({{"a", DataType::kInt},
                 {"b", DataType::kInt},
                 {"s", DataType::kString}});
  std::vector<Row> rows;
  for (int i = 0; i < 57; ++i) {
    Row row;
    row.push_back(i % 11 == 0 ? Value::Null() : Value::Int(i % 7));
    row.push_back(i % 13 == 0 ? Value::Null() : Value::Int(i % 5));
    row.push_back(Value::String("x" + std::to_string(i % 4)));
    rows.push_back(std::move(row));
  }

  const char* predicates[] = {
      "a = 3",
      "a < b",
      "a = 3 AND b = 2",
      "a = 3 OR b = 2 OR a = 5",
      "NOT (a = 3)",
      "a BETWEEN 2 AND 5",
      "a IN (1, 2, 3)",
      "a IN (1, 2, 3) AND NOT (b = 0 OR s = 'x2')",
      "s = 'x3'",
      "a = 1 OR (b = 2 AND s = 'x1') OR a BETWEEN 5 AND 6",
  };
  for (const char* text : predicates) {
    auto expr = Parser::ParseExpression(text);
    ASSERT_TRUE(expr.ok()) << text;
    ASSERT_TRUE(BindExpr(expr->get(), schema).ok()) << text;

    ExecStats row_stats;
    Evaluator row_eval(&schema, nullptr, nullptr, &row_stats);
    std::vector<uint8_t> expected;
    for (const Row& row : rows) {
      auto verdict = row_eval.EvalPredicate(**expr, row);
      ASSERT_TRUE(verdict.ok()) << text;
      expected.push_back(*verdict ? 1 : 0);
    }

    ExecStats batch_stats;
    Evaluator batch_eval(&schema, nullptr, nullptr, &batch_stats);
    std::vector<uint8_t> got;
    ASSERT_TRUE(batch_eval
                    .EvalPredicateBatch(**expr, rows.data(), rows.size(), &got)
                    .ok())
        << text;

    EXPECT_EQ(got, expected) << text;
    EXPECT_EQ(batch_stats, row_stats)
        << text << " row=" << row_stats.ToString()
        << " batch=" << batch_stats.ToString();
  }
}

// Evaluates `text` over `rows` through the columnar RowBatch overload and
// asserts verdicts + ExecStats match per-row EvalPredicate exactly.
void ExpectColumnarMatchesRows(const Schema& schema,
                               const std::vector<Row>& rows,
                               const std::string& text) {
  auto expr = Parser::ParseExpression(text);
  ASSERT_TRUE(expr.ok()) << text;
  ASSERT_TRUE(BindExpr(expr->get(), schema).ok()) << text;

  ExecStats row_stats;
  Evaluator row_eval(&schema, nullptr, nullptr, &row_stats);
  std::vector<uint8_t> expected;
  for (const Row& row : rows) {
    auto verdict = row_eval.EvalPredicate(**expr, row);
    ASSERT_TRUE(verdict.ok()) << text;
    expected.push_back(*verdict ? 1 : 0);
  }

  RowBatch batch(rows.size() == 0 ? 1 : rows.size());
  for (const Row& row : rows) {
    Row copy = row;
    batch.PushRow(std::move(copy));
  }
  ExecStats batch_stats;
  Evaluator batch_eval(&schema, nullptr, nullptr, &batch_stats);
  std::vector<uint8_t> got;
  ASSERT_TRUE(batch_eval.EvalPredicateBatch(**expr, batch, &got).ok()) << text;

  EXPECT_EQ(got, expected) << text;
  EXPECT_EQ(batch_stats, row_stats)
      << text << " row=" << row_stats.ToString()
      << " batch=" << batch_stats.ToString();
}

// The typed comparison kernels (int/double/string/time columns, constants
// on either side, column-vs-column, NULL-heavy and all-NULL inputs) must
// reproduce Value::Compare verdict for verdict over every operator.
TEST(EvalPredicateBatchTest, ColumnarKernelsCoverEveryComparisonOperator) {
  Schema schema({{"i", DataType::kInt},
                 {"j", DataType::kInt},
                 {"d", DataType::kDouble},
                 {"s", DataType::kString},
                 {"t", DataType::kTime},
                 {"z", DataType::kInt}});  // all-NULL column
  std::vector<Row> rows;
  for (int k = 0; k < 77; ++k) {
    Row row;
    row.push_back(k % 9 == 0 ? Value::Null() : Value::Int(k % 6));
    row.push_back(k % 7 == 0 ? Value::Null() : Value::Int(k % 4));
    row.push_back(k % 5 == 0 ? Value::Null() : Value::Double(k * 0.25));
    row.push_back(k % 6 == 0 ? Value::Null()
                             : Value::String("s" + std::to_string(k % 3)));
    row.push_back(Value::Time((6 + k % 12) * 3600));
    row.push_back(Value::Null());
    rows.push_back(std::move(row));
  }

  const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
  for (const char* op : ops) {
    std::string o = op;
    // Column vs constant, both orders; every payload type.
    ExpectColumnarMatchesRows(schema, rows, "i " + o + " 3");
    ExpectColumnarMatchesRows(schema, rows, "3 " + o + " i");
    ExpectColumnarMatchesRows(schema, rows, "d " + o + " 7.5");
    ExpectColumnarMatchesRows(schema, rows, "7.5 " + o + " d");
    ExpectColumnarMatchesRows(schema, rows, "s " + o + " 's1'");
    ExpectColumnarMatchesRows(schema, rows, "t " + o + " '09:00'");
    // Int column vs double constant (mixed-family numeric comparison).
    ExpectColumnarMatchesRows(schema, rows, "i " + o + " 2.5");
    // Column vs column: same type and mixed int/double.
    ExpectColumnarMatchesRows(schema, rows, "i " + o + " j");
    ExpectColumnarMatchesRows(schema, rows, "i " + o + " d");
    // All-NULL column and cross-family operands.
    ExpectColumnarMatchesRows(schema, rows, "z " + o + " 1");
    ExpectColumnarMatchesRows(schema, rows, "s " + o + " 5");
    // Constant vs constant folds to one broadcast verdict.
    ExpectColumnarMatchesRows(schema, rows, "2 " + o + " 3");
  }

  // BETWEEN / IN / boolean composition over the same NULL-heavy data.
  ExpectColumnarMatchesRows(schema, rows, "i BETWEEN 1 AND 4");
  ExpectColumnarMatchesRows(schema, rows, "d BETWEEN 2.0 AND 9.0");
  ExpectColumnarMatchesRows(schema, rows, "i IN (0, 2, 5)");
  ExpectColumnarMatchesRows(schema, rows, "z IN (1, 2)");
  ExpectColumnarMatchesRows(schema, rows,
                            "i < j AND (d > 3.0 OR s = 's0') AND NOT (i = 2)");
}

// Chained filtering through selection vectors: narrowing a batch and
// evaluating the next predicate over the survivors must agree with
// running both predicates row-at-a-time — including the comparison
// counts, which only cover still-active rows.
TEST(EvalPredicateBatchTest, SelectionVectorChainMatchesRowAtATime) {
  Schema schema({{"a", DataType::kInt},
                 {"b", DataType::kDouble},
                 {"s", DataType::kString}});
  std::vector<Row> rows;
  for (int k = 0; k < 101; ++k) {
    Row row;
    row.push_back(k % 8 == 0 ? Value::Null() : Value::Int(k % 10));
    row.push_back(k % 3 == 0 ? Value::Null() : Value::Double(k * 0.5));
    row.push_back(Value::String("g" + std::to_string(k % 5)));
    rows.push_back(std::move(row));
  }
  const std::string stages[] = {"a >= 2", "b < 30.0 OR s = 'g1'",
                                "NOT (a = 7) AND a IN (2, 3, 5, 8)"};

  // Row-at-a-time reference: apply each stage to the survivors of the
  // previous one.
  ExecStats row_stats;
  Evaluator row_eval(&schema, nullptr, nullptr, &row_stats);
  std::vector<Row> surviving = rows;
  std::vector<std::vector<std::string>> expected_stage_rows;
  for (const std::string& text : stages) {
    auto expr = Parser::ParseExpression(text);
    ASSERT_TRUE(expr.ok()) << text;
    ASSERT_TRUE(BindExpr(expr->get(), schema).ok()) << text;
    std::vector<Row> next;
    for (const Row& row : surviving) {
      auto verdict = row_eval.EvalPredicate(**expr, row);
      ASSERT_TRUE(verdict.ok()) << text;
      if (*verdict) next.push_back(row);
    }
    surviving = std::move(next);
    std::vector<std::string> fps;
    for (const Row& row : surviving) {
      std::string fp;
      for (const Value& v : row) fp += v.ToString() + "|";
      fps.push_back(std::move(fp));
    }
    expected_stage_rows.push_back(std::move(fps));
  }

  // Columnar path: one batch, narrowed in place after each stage.
  ExecStats batch_stats;
  Evaluator batch_eval(&schema, nullptr, nullptr, &batch_stats);
  RowBatch batch(rows.size());
  for (const Row& row : rows) {
    Row copy = row;
    batch.PushRow(std::move(copy));
  }
  for (size_t stage = 0; stage < 3; ++stage) {
    auto expr = Parser::ParseExpression(stages[stage]);
    ASSERT_TRUE(expr.ok());
    ASSERT_TRUE(BindExpr(expr->get(), schema).ok());
    std::vector<uint8_t> pass;
    ASSERT_TRUE(batch_eval.EvalPredicateBatch(**expr, batch, &pass).ok());
    batch.NarrowToPassing(pass.data());
    if (stage > 0) {
      EXPECT_NE(batch.selection(), nullptr) << "stage " << stage;
    }
    std::vector<std::string> fps;
    for (size_t k = 0; k < batch.size(); ++k) {
      Row row;
      batch.MaterializeRow(k, &row);
      std::string fp;
      for (const Value& v : row) fp += v.ToString() + "|";
      fps.push_back(std::move(fp));
    }
    EXPECT_EQ(fps, expected_stage_rows[stage]) << "stage " << stage;
  }
  EXPECT_EQ(batch_stats, row_stats)
      << " row=" << row_stats.ToString()
      << " batch=" << batch_stats.ToString();
}

}  // namespace
}  // namespace sieve
