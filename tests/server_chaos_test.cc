// Chaos suite for the server path: every fault point in the catalog is
// driven against a live loopback server, asserting the degradation
// contract — failures surface as clean wire errors, nothing leaks
// (cursor pins, admission slots, the state gate), transparently
// recoverable faults stay invisible, and successful results under chaos
// are row-identical to an in-process SieveSession (which doubles as the
// policy-leakage oracle). Also home of the per-request deadline tests,
// the slow-reader write-timeout test and the graceful-drain tests.
//
// The closed-loop test honors SIEVE_CHAOS_SEEDS (default 2) the same way
// the fuzz suites honor SIEVE_FUZZ_SEEDS.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "sieve/session.h"
#include "tests/server_test_util.h"

namespace sieve::server {
namespace {

using namespace std::chrono_literals;

uint16_t Code(WireError e) { return static_cast<uint16_t>(e); }

bool RowsMatch(const std::vector<Row>& got, const std::vector<Row>& want) {
  if (got.size() != want.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].size() != want[i].size()) return false;
    for (size_t j = 0; j < got[i].size(); ++j) {
      if (!(got[i][j] == want[i][j])) return false;
    }
  }
  return true;
}

/// Keep harness teardown snappy in tests that may leave a cursor behind
/// on a failure path.
ServerOptions FastStop() {
  ServerOptions o;
  o.drain_grace_seconds = 1.0;
  return o;
}

/// Every test must leave the process-wide injector clean, including on
/// early ASSERT exits.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().DisarmAll(); }
  void TearDown() override { FaultInjector::Instance().DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Middleware fault points: fail cleanly, leave state retryable
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, RewriteFaultFailsCleanlyAndIsRetryable) {
  ServerHarness h(FastStop());
  auto c = h.Client("tok-alice");
  {
    ScopedFault f("mw.rewrite.fail", FaultTrigger::Always());
    auto stmt = c->Prepare("SELECT id FROM wifi");
    ASSERT_FALSE(stmt.ok());
    EXPECT_EQ(c->last_wire_error(), Code(WireError::kPrepareFailed));
    EXPECT_NE(stmt.status().message().find("injected fault"),
              std::string::npos);
  }
  // The failure released the state gate and cached nothing: the same
  // statement prepares and runs on the same connection.
  auto stmt = c->Prepare("SELECT id FROM wifi");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto rows = c->Execute(stmt->id);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 300u);
}

TEST_F(ChaosTest, GuardRegenFaultLeavesGuardsRetryable) {
  ServerHarness h(FastStop());
  auto c = h.Client("tok-alice");
  // Build alice's guards once.
  auto s1 = c->Prepare("SELECT id FROM wifi");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(c->Execute(s1->id).ok());
  // A policy insertion marks them outdated (lazy regeneration mode).
  ASSERT_TRUE(h.mw().AddPolicy(h.campus().MakePolicy(7, "alice", "any")).ok());
  {
    ScopedFault f("mw.guard_regen.fail", FaultTrigger::Always());
    auto s2 = c->Prepare("SELECT owner FROM wifi");
    ASSERT_FALSE(s2.ok());
    EXPECT_EQ(c->last_wire_error(), Code(WireError::kPrepareFailed));
    EXPECT_NE(s2.status().message().find("injected fault"),
              std::string::npos);
  }
  // The guard store was left outdated, not torn: the retry regenerates
  // and the new policy is visible (owners 0..4 plus 7 -> 360 rows).
  auto s3 = c->Prepare("SELECT owner FROM wifi");
  ASSERT_TRUE(s3.ok()) << s3.status().ToString();
  auto rows = c->Execute(s3->id);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 360u);
}

TEST_F(ChaosTest, AuditFlushFaultCountsUnflushedRecords) {
  ServerHarness h(FastStop());
  auto c = h.Client("tok-alice");
  auto stmt = c->Prepare("SELECT id FROM wifi");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(c->Execute(stmt->id).ok());
  ASSERT_GT(h.mw().Health().audit_pending, 0u);
  {
    ScopedFault f("mw.audit_flush.fail", FaultTrigger::Always());
    EXPECT_FALSE(h.mw().FlushAuditLog().ok());
  }
  MiddlewareHealth health = h.mw().Health();
  EXPECT_EQ(health.audit_pending, 0u);   // ring drained either way
  EXPECT_GT(health.audit_unflushed, 0u); // ...and the loss is accounted
  // Later records flush normally.
  ASSERT_TRUE(c->Execute(stmt->id).ok());
  EXPECT_TRUE(h.mw().FlushAuditLog().ok());
}

// ---------------------------------------------------------------------------
// Execution fault points
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, MorselFaultFailsExecuteWithoutLeaking) {
  SieveOptions so;
  so.num_threads = 2;  // morsel-parallel path
  ServerHarness h(FastStop(), EngineProfile::MySqlLike(), so);
  auto c = h.Client("tok-alice");
  auto stmt = c->Prepare("SELECT id, owner FROM wifi");
  ASSERT_TRUE(stmt.ok());
  {
    ScopedFault f("exec.morsel.fail", FaultTrigger::Always());
    auto r = c->Execute(stmt->id);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(c->last_wire_error(), Code(WireError::kExecFailed));
    EXPECT_NE(r.status().message().find("injected fault"), std::string::npos);
  }
  // The admission slot came back and the next run succeeds.
  EXPECT_EQ(h.server().admission().InFlight("alice"), 0);
  auto r2 = c->Execute(stmt->id);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->rows.size(), 300u);
}

TEST_F(ChaosTest, InterruptFaultTearsDownCursorCleanly) {
  SieveOptions so;
  so.batch_size = 1;  // a timeout/interrupt check per row
  ServerHarness h(FastStop(), EngineProfile::MySqlLike(), so);
  auto c = h.Client("tok-alice");
  auto stmt = c->Prepare("SELECT id FROM wifi");
  ASSERT_TRUE(stmt.ok());
  auto first = c->Execute(stmt->id, {}, /*chunk_rows=*/10);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_FALSE(first->done);
  {
    ScopedFault f("exec.interrupt", FaultTrigger::Nth(1));
    auto r = c->Fetch(first->cursor_id, 10);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(c->last_wire_error(), Code(WireError::kExecFailed));
  }
  // The failed fetch finished the cursor: its pin and admission slot are
  // gone, the id is dead, the connection stays usable.
  auto gone = c->Fetch(first->cursor_id, 10);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(c->last_wire_error(), Code(WireError::kBadCursor));
  EXPECT_EQ(h.server().stats().open_cursors, 0u);
  EXPECT_EQ(h.server().admission().InFlight("alice"), 0);
  auto again = c->Execute(stmt->id);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->rows.size(), 300u);
}

// ---------------------------------------------------------------------------
// Transport fault points
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, ShortReadsAndEintrAreInvisible) {
  ServerHarness h(FastStop());
  // Reference rows from an in-process session.
  SieveSession ref(&h.mw(), MakeMd("alice", "any"));
  auto prep = ref.Prepare("SELECT id, owner FROM wifi WHERE wifiAP = 3");
  ASSERT_TRUE(prep.ok());
  auto want = prep->Execute();
  ASSERT_TRUE(want.ok());
  ASSERT_FALSE(want->rows.empty());

  ScopedFault short_read("server.io.short_read",
                         FaultTrigger::Probability(0.5, 11));
  ScopedFault eintr("server.io.read_eintr",
                    FaultTrigger::Probability(0.3, 12));
  auto c = h.Client("tok-alice");
  auto stmt = c->Prepare("SELECT id, owner FROM wifi WHERE wifiAP = 3");
  ASSERT_TRUE(stmt.ok());
  for (int i = 0; i < 5; ++i) {
    auto r = c->Execute(stmt->id);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(RowsMatch(r->rows, want->rows));
  }
}

TEST_F(ChaosTest, DisconnectRecoversViaClientRetry) {
  ServerHarness h(FastStop());
  SieveClient c;
  RetryPolicy rp;
  rp.initial_backoff_ms = 1.0;
  rp.max_backoff_ms = 10.0;
  c.enable_retry(rp);
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());
  ASSERT_TRUE(c.Hello("tok-alice").ok());
  auto stmt = c.Prepare("SELECT id FROM wifi");
  ASSERT_TRUE(stmt.ok());
  auto baseline = c.Execute(stmt->id);
  ASSERT_TRUE(baseline.ok());

  // The next inbound read is treated as a peer hang-up; the retry layer
  // reconnects, re-prepares the handle and re-runs the SELECT.
  FaultInjector::Instance().Arm("server.io.disconnect", FaultTrigger::Nth(1));
  auto r = c.Execute(stmt->id);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(RowsMatch(r->rows, baseline->rows));
  EXPECT_GE(c.reconnects(), 1u);
  EXPECT_GE(c.retries(), 1u);
}

TEST_F(ChaosTest, WriteErrorRecoversViaClientRetry) {
  ServerHarness h(FastStop());
  SieveClient c;
  RetryPolicy rp;
  rp.initial_backoff_ms = 1.0;
  rp.max_backoff_ms = 10.0;
  c.enable_retry(rp);
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());
  ASSERT_TRUE(c.Hello("tok-alice").ok());
  auto stmt = c.Prepare("SELECT COUNT(*) FROM wifi");
  ASSERT_TRUE(stmt.ok());

  // The server's next reply write dies with EPIPE; that connection is
  // torn down and the client recovers on a fresh one.
  FaultInjector::Instance().Arm("server.io.write_error", FaultTrigger::Nth(1));
  auto r = c.Execute(stmt->id);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0], Value::Int(300));
  EXPECT_GE(c.reconnects(), 1u);
}

TEST_F(ChaosTest, AcceptFaultRecoversViaClientRetry) {
  ServerHarness h(FastStop());
  FaultInjector::Instance().Arm("server.accept.fail", FaultTrigger::Nth(1));
  SieveClient c;
  RetryPolicy rp;
  rp.initial_backoff_ms = 1.0;
  rp.max_backoff_ms = 10.0;
  c.enable_retry(rp);
  // The TCP connect lands in the backlog, but the server drops the
  // connection at accept; HELLO fails in transit and is retried on a
  // reconnect.
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());
  auto md = c.Hello("tok-alice");
  ASSERT_TRUE(md.ok()) << md.status().ToString();
  EXPECT_EQ(md->querier, "alice");
  EXPECT_GE(c.reconnects(), 1u);
}

// ---------------------------------------------------------------------------
// Per-request deadlines
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, ExecuteDeadlineExceededLeavesConnectionUsable) {
  SieveOptions so;
  so.batch_size = 1;  // per-row deadline checks; exec.stall adds 1ms each
  ServerHarness h(FastStop(), EngineProfile::MySqlLike(), so);
  auto c = h.Client("tok-alice");
  auto stmt = c->Prepare("SELECT id FROM wifi");
  ASSERT_TRUE(stmt.ok());
  {
    ScopedFault slow("exec.stall", FaultTrigger::Always());
    auto r = c->Execute(stmt->id, {}, /*chunk_rows=*/0, /*deadline_ms=*/30);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(c->last_wire_error(), Code(WireError::kDeadlineExceeded));
    EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  }
  // The deadline consumed nothing durable: same connection, same
  // statement, no deadline -> full result.
  auto ok = c->Execute(stmt->id);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->rows.size(), 300u);
  EXPECT_EQ(h.server().admission().InFlight("alice"), 0);
}

TEST_F(ChaosTest, FetchDeadlineTightensCursorBudget) {
  SieveOptions so;
  so.batch_size = 1;
  ServerHarness h(FastStop(), EngineProfile::MySqlLike(), so);
  auto c = h.Client("tok-alice");
  auto stmt = c->Prepare("SELECT id FROM wifi");
  ASSERT_TRUE(stmt.ok());
  auto first = c->Execute(stmt->id, {}, /*chunk_rows=*/10);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->done);
  {
    ScopedFault slow("exec.stall", FaultTrigger::Always());
    auto r = c->Fetch(first->cursor_id, 200, /*deadline_ms=*/30);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(c->last_wire_error(), Code(WireError::kDeadlineExceeded));
  }
  // The timed-out cursor was finished server-side...
  EXPECT_EQ(h.server().stats().open_cursors, 0u);
  EXPECT_EQ(h.server().admission().InFlight("alice"), 0);
  // ...and the connection is immediately reusable.
  auto again = c->Execute(stmt->id);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->rows.size(), 300u);
}

// ---------------------------------------------------------------------------
// Slow-reader write timeout
// ---------------------------------------------------------------------------

/// RawConnect with a tiny receive buffer (set before connect so the
/// window never opens wide).
int SlowReaderConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  int rcvbuf = 2048;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

TEST_F(ChaosTest, WriteTimeoutDropsOnlyTheSlowReader) {
  ServerOptions opts;
  opts.write_timeout_seconds = 0.3;
  opts.drain_grace_seconds = 1.0;
  opts.so_sndbuf = 4096;  // so a ~150 KB chunk cannot fit in flight
  ServerHarness h(opts);

  int fd = SlowReaderConnect(h.port());
  WireWriter hello;
  hello.PutU8(kProtocolVersion);
  hello.PutString("tok-alice");
  ASSERT_TRUE(WriteFrame(fd, MsgType::kHello, hello.payload()).ok());
  auto hr = ReadFrame(fd);
  ASSERT_TRUE(hr.ok());
  ASSERT_EQ(hr->type, MsgType::kHelloOk);

  // A self-join alice sees ~15000 pairs of: big enough that the first
  // cursor chunk overflows both socket buffers.
  WireWriter prep;
  prep.PutString(
      "SELECT w.id, v.id FROM wifi w, wifi v WHERE w.wifiAP = v.wifiAP");
  ASSERT_TRUE(WriteFrame(fd, MsgType::kPrepare, prep.payload()).ok());
  auto pr = ReadFrame(fd);
  ASSERT_TRUE(pr.ok());
  ASSERT_EQ(pr->type, MsgType::kPrepared);
  WireReader rd(pr->payload);
  auto stmt_id = rd.U32();
  ASSERT_TRUE(stmt_id.ok());

  // EXECUTE with a large chunk, then never read the reply.
  WireWriter exec;
  exec.PutU32(*stmt_id);
  exec.PutU32(8192);
  exec.PutU16(0);
  ASSERT_TRUE(WriteFrame(fd, MsgType::kExecute, exec.payload()).ok());

  // Meanwhile the rest of the server keeps serving.
  auto other = h.Client("tok-bob");
  auto os = other->Prepare("SELECT COUNT(*) FROM wifi");
  ASSERT_TRUE(os.ok());
  ASSERT_TRUE(other->Execute(os->id).ok());

  // The blocked reply write times out; only the slow connection dies,
  // and it takes its cursor pin and admission slot with it. The counter
  // bumps before the teardown runs, so poll for the whole outcome.
  bool cleaned_up = false;
  SieveServer::Stats st{};
  for (int i = 0; i < 200 && !cleaned_up; ++i) {
    st = h.server().stats();
    cleaned_up = st.write_timeouts >= 1 && st.open_cursors == 0 &&
                 h.server().admission().InFlight("alice") == 0;
    if (!cleaned_up) std::this_thread::sleep_for(25ms);
  }
  EXPECT_TRUE(cleaned_up);
  EXPECT_GE(st.write_timeouts, 1u);
  EXPECT_EQ(st.open_cursors, 0u);
  EXPECT_EQ(h.server().admission().InFlight("alice"), 0);
  ::close(fd);

  // The surviving connection never noticed.
  auto after = other->Execute(os->id);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

// The acceptance test for Stop(): an in-flight cursor must be allowed to
// finish during the grace period. Under the old abandon-on-stop behavior
// the FETCHes below fail immediately, so this test fails loudly there.
TEST_F(ChaosTest, GracefulDrainCompletesOpenCursor) {
  ServerOptions opts;
  opts.drain_grace_seconds = 10.0;
  ServerHarness h(opts);
  auto c = h.Client("tok-alice");
  auto stmt = c->Prepare("SELECT id, owner FROM wifi");
  ASSERT_TRUE(stmt.ok());
  auto chunk = c->Execute(stmt->id, {}, /*chunk_rows=*/32);
  ASSERT_TRUE(chunk.ok());
  ASSERT_FALSE(chunk->done);

  std::thread stopper([&] { h.server().Stop(); });
  // Wait until the drain gate is visibly closed: EXECUTE flips from the
  // one-cursor-per-connection refusal to SERVER_SHUTDOWN.
  for (;;) {
    auto refused = c->Execute(stmt->id);
    ASSERT_FALSE(refused.ok());
    if (c->last_wire_error() == Code(WireError::kServerShutdown)) break;
    ASSERT_EQ(c->last_wire_error(), Code(WireError::kCursorOpen));
    std::this_thread::sleep_for(2ms);
  }
  // New connections are refused while draining.
  {
    SieveClient fresh;
    ASSERT_TRUE(fresh.Connect("127.0.0.1", h.port()).ok());
    EXPECT_FALSE(fresh.Hello("tok-bob").ok());
  }
  // But the in-flight cursor drains to completion.
  size_t total = chunk->rows.size();
  bool done = chunk->done;
  while (!done) {
    auto next = c->Fetch(chunk->cursor_id, 32);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    total += next->rows.size();
    done = next->done;
  }
  stopper.join();
  EXPECT_EQ(total, 300u);
  SieveServer::Stats st = h.server().stats();
  EXPECT_GE(st.cursors_drained, 1u);
  EXPECT_EQ(st.cursors_aborted, 0u);
  EXPECT_EQ(st.open_cursors, 0u);
  EXPECT_GE(st.drain_rejected, 1u);
}

TEST_F(ChaosTest, DrainGraceExpiryAbortsAbandonedCursor) {
  ServerOptions opts;
  opts.drain_grace_seconds = 0.3;
  ServerHarness h(opts);
  auto c = h.Client("tok-alice");
  auto stmt = c->Prepare("SELECT id FROM wifi");
  ASSERT_TRUE(stmt.ok());
  auto chunk = c->Execute(stmt->id, {}, /*chunk_rows=*/16);
  ASSERT_TRUE(chunk.ok());
  ASSERT_FALSE(chunk->done);

  // Nobody ever fetches: Stop must wait out the grace period, then
  // force-close the cursor rather than hang.
  auto t0 = std::chrono::steady_clock::now();
  h.server().Stop();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  EXPECT_GE(elapsed, 0.25);
  EXPECT_LT(elapsed, 5.0);
  SieveServer::Stats st = h.server().stats();
  EXPECT_GE(st.cursors_aborted, 1u);
  EXPECT_EQ(st.open_cursors, 0u);
  EXPECT_EQ(st.active_connections, 0u);
}

TEST_F(ChaosTest, StopFlushesPendingAuditRecords) {
  ServerHarness h(FastStop());
  {
    auto c = h.Client("tok-alice");
    auto stmt = c->Prepare("SELECT id FROM wifi");
    ASSERT_TRUE(stmt.ok());
    ASSERT_TRUE(c->Execute(stmt->id).ok());
  }
  ASSERT_GT(h.mw().Health().audit_pending, 0u);
  h.server().Stop();
  MiddlewareHealth health = h.mw().Health();
  EXPECT_EQ(health.audit_pending, 0u);
  EXPECT_EQ(health.audit_unflushed, 0u);
}

// ---------------------------------------------------------------------------
// Closed loop under the full catalog
// ---------------------------------------------------------------------------

int ChaosSeeds() {
  const char* env = std::getenv("SIEVE_CHAOS_SEEDS");
  if (env != nullptr && *env != '\0') {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 2;
}

std::string Prob(const char* point, double p, uint64_t seed) {
  return std::string(point) + "=prob:" + std::to_string(p) + ":" +
         std::to_string(seed) + ";";
}

TEST_F(ChaosTest, ClosedLoopUnderFaultsMatchesInProcessResults) {
  const int seeds = ChaosSeeds();
  const std::vector<std::string> queries = {
      "SELECT id, owner FROM wifi WHERE ts_time >= 28800",
      "SELECT COUNT(*) FROM wifi",
      "SELECT owner, COUNT(*) FROM wifi GROUP BY owner",
  };
  struct Actor {
    const char* token;
    const char* querier;
    const char* purpose;
  };
  const std::vector<Actor> actors = {{"tok-alice", "alice", "any"},
                                     {"tok-bob", "bob", "Analytics"},
                                     {"tok-carol", "carol", "Social"}};

  for (int seed = 0; seed < seeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    ServerOptions opts;
    opts.drain_grace_seconds = 2.0;
    SieveOptions so;
    so.num_threads = 2;  // include the morsel-parallel path
    ServerHarness h(opts, EngineProfile::MySqlLike(), so);

    // Reference rows per (actor, query) from in-process sessions — the
    // leakage oracle for everything the wire path returns under chaos.
    std::vector<std::vector<std::vector<Row>>> expected(actors.size());
    for (size_t a = 0; a < actors.size(); ++a) {
      SieveSession session(&h.mw(),
                           MakeMd(actors[a].querier, actors[a].purpose));
      for (const std::string& sql : queries) {
        auto prep = session.Prepare(sql);
        ASSERT_TRUE(prep.ok()) << prep.status().ToString();
        auto rs = prep->Execute();
        ASSERT_TRUE(rs.ok()) << rs.status().ToString();
        expected[a].push_back(rs->rows);
      }
    }

    // Arm the whole catalog at low probabilities. read_eintr and
    // short_read are transparent; everything else surfaces as clean
    // errors the retry client absorbs. disconnect stays rare because
    // short reads multiply the recv count (each recv rolls its dice).
    const uint64_t base = 1000 + static_cast<uint64_t>(seed) * 97;
    std::string spec;
    spec += Prob("server.io.short_read", 0.02, base + 1);
    spec += Prob("server.io.read_eintr", 0.05, base + 2);
    spec += Prob("server.io.disconnect", 0.002, base + 3);
    spec += Prob("server.io.write_short", 0.02, base + 4);
    spec += Prob("server.io.write_error", 0.002, base + 5);
    spec += Prob("server.accept.fail", 0.05, base + 6);
    spec += Prob("server.worker.stall", 0.05, base + 7);
    spec += Prob("pool.task.stall", 0.02, base + 8);
    spec += Prob("mw.rewrite.fail", 0.05, base + 9);
    spec += Prob("mw.audit_flush.fail", 0.2, base + 10);
    spec += Prob("exec.morsel.fail", 0.01, base + 11);
    spec += Prob("exec.interrupt", 0.005, base + 12);
    spec += Prob("exec.stall", 0.01, base + 13);
    spec.pop_back();  // trailing ';'
    ASSERT_TRUE(FaultInjector::Instance().LoadSpec(spec).ok());

    std::atomic<int> wire_ok{0};
    std::atomic<int> wire_failed{0};
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (size_t a = 0; a < actors.size(); ++a) {
      threads.emplace_back([&, a] {
        SieveClient c;
        RetryPolicy rp;
        rp.max_attempts = 6;
        rp.initial_backoff_ms = 1.0;
        rp.max_backoff_ms = 20.0;
        rp.seed = base + 50 + a;
        c.enable_retry(rp);
        if (!c.Connect("127.0.0.1", h.port()).ok()) return;
        if (!c.Hello(actors[a].token).ok()) {
          wire_failed.fetch_add(1);
          return;
        }
        std::vector<uint32_t> handles(queries.size(), 0);
        Rng rng(base + 80 + a);
        for (int op = 0; op < 40; ++op) {
          size_t q = static_cast<size_t>(
              rng.Uniform(0, static_cast<int64_t>(queries.size()) - 1));
          if (handles[q] == 0) {
            auto st = c.Prepare(queries[q]);
            if (!st.ok()) {
              wire_failed.fetch_add(1);
              continue;
            }
            handles[q] = st->id;
          }
          int64_t kind = rng.Uniform(0, 5);
          if (kind == 0) {
            // Health snapshot round-trip.
            if (c.Stats().ok()) {
              wire_ok.fetch_add(1);
            } else {
              wire_failed.fetch_add(1);
            }
          } else if (kind <= 3) {
            // Materialized execute.
            auto r = c.Execute(handles[q]);
            if (!r.ok()) {
              wire_failed.fetch_add(1);
              continue;
            }
            wire_ok.fetch_add(1);
            if (!RowsMatch(r->rows, expected[a][q])) mismatches.fetch_add(1);
          } else {
            // Cursor + fetch loop with a small chunk.
            auto r = c.Execute(handles[q], {}, /*chunk_rows=*/7);
            if (!r.ok()) {
              wire_failed.fetch_add(1);
              continue;
            }
            std::vector<Row> rows = r->rows;
            bool done = r->done;
            bool failed = false;
            while (!done) {
              auto next = c.Fetch(r->cursor_id, 7);
              if (!next.ok()) {
                failed = true;
                break;
              }
              rows.insert(rows.end(), next->rows.begin(), next->rows.end());
              done = next->done;
            }
            if (failed) {
              // Best effort: release the server-side cursor so later
              // EXECUTEs on this connection are not refused.
              (void)c.CloseCursor(r->cursor_id);
              wire_failed.fetch_add(1);
              continue;
            }
            wire_ok.fetch_add(1);
            if (!RowsMatch(rows, expected[a][q])) mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    FaultInjector::Instance().DisarmAll();

    // Row-identity of every successful wire result is the leakage oracle.
    EXPECT_EQ(mismatches.load(), 0);
    // The loop must have made real progress despite the chaos.
    EXPECT_GT(wire_ok.load(), 0) << "failed ops: " << wire_failed.load();

    // Post-chaos invariants: nothing leaked. Dropped connections are
    // reaped asynchronously, so poll briefly.
    SieveServer::Stats st{};
    for (int i = 0; i < 100; ++i) {
      st = h.server().stats();
      if (st.open_cursors == 0) break;
      std::this_thread::sleep_for(20ms);
    }
    EXPECT_EQ(st.open_cursors, 0u);
    for (const Actor& actor : actors) {
      EXPECT_EQ(h.server().admission().InFlight(actor.querier), 0)
          << actor.querier << " leaked an admission slot";
    }
    // The state gate is free: a policy mutation completes promptly
    // (a leaked shared pin would wedge this forever).
    auto fut = std::async(std::launch::async, [&] {
      return h.mw().AddPolicy(h.campus().MakePolicy(8, "alice", "any"));
    });
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "AddPolicy wedged: a cursor pin leaked through the chaos run";
    EXPECT_TRUE(fut.get().ok());
    // And a fresh, fault-free client sees correct results again.
    auto c = h.Client("tok-bob");
    auto stmt = c->Prepare(queries[1]);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto r = c->Execute(stmt->id);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(RowsMatch(r->rows, expected[1][1]));
  }
}

}  // namespace
}  // namespace sieve::server
