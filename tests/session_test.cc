// Unit tests for the session-oriented middleware API: SieveSession /
// PreparedQuery / ResultCursor, parameter binding edge cases, the keyed
// (per-dependency) rewrite-cache invalidation, LRU eviction and the
// validated SieveOptions update path.

#include "sieve/session.h"

#include <set>

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "sieve/middleware.h"
#include "sieve/rewrite_cache.h"
#include "tests/test_fixtures.h"

namespace sieve {
namespace {

std::vector<std::string> OrderedFingerprints(const ResultSet& rs) {
  std::vector<std::string> out;
  out.reserve(rs.rows.size());
  for (const auto& row : rs.rows) {
    std::string fp;
    for (const auto& v : row) fp += v.ToString() + "|";
    out.push_back(std::move(fp));
  }
  return out;
}

// Order-insensitive view, for comparing across *different* SQL texts
// (e.g. `?` vs inlined literal): the strategy selector may pick different
// access paths for them, which legitimately reorders rows.
std::multiset<std::string> Fingerprints(const ResultSet& rs) {
  std::vector<std::string> ordered = OrderedFingerprints(rs);
  return {ordered.begin(), ordered.end()};
}

TEST(NormalizeSqlTest, StripsLineAndBlockComments) {
  EXPECT_EQ(NormalizeSql("SELECT 1 -- trailing\n+ 2"), "SELECT 1 + 2");
  EXPECT_EQ(NormalizeSql("SELECT /* inline */ 1"), "SELECT 1");
  EXPECT_EQ(NormalizeSql("SELECT /* spans\nlines */ 1"), "SELECT 1");
  // A block comment separates tokens like whitespace does.
  EXPECT_EQ(NormalizeSql("SELECT a/*x*/FROM t"), "SELECT a FROM t");
  // Leading comment leaves no leading space.
  EXPECT_EQ(NormalizeSql("/* header */ SELECT 1"), "SELECT 1");
  // Comment markers inside string literals survive verbatim.
  EXPECT_EQ(NormalizeSql("SELECT '/* kept */' FROM t"),
            "SELECT '/* kept */' FROM t");
  EXPECT_EQ(NormalizeSql("SELECT '-- kept' FROM t"), "SELECT '-- kept' FROM t");
}

TEST(NormalizeSqlTest, UnterminatedBlockCommentStaysInvalid) {
  // The lexer rejects an unterminated block comment; normalization must
  // not silently swallow it and make the text parseable.
  std::string normalized = NormalizeSql("SELECT 1 /* oops");
  EXPECT_NE(normalized.find("/*"), std::string::npos);
  EXPECT_FALSE(Parser::Parse(normalized).ok());
}

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : sieve_(&campus_.db(), &campus_.groups()) {
    EXPECT_TRUE(sieve_.Init().ok());
    // alice sees owners 0 and 1; owner 1 only 9:00-14:00.
    EXPECT_TRUE(sieve_.AddPolicy(campus_.MakePolicy(0, "alice", "any")).ok());
    EXPECT_TRUE(
        sieve_.AddPolicy(campus_.MakePolicy(1, "alice", "any", 9, 14)).ok());
  }

  MiniCampus campus_;
  SieveMiddleware sieve_;
  QueryMetadata md_{"alice", "any"};
};

TEST_F(SessionTest, PrepareOnceExecuteManyMatchesOneShot) {
  const std::string sql = "SELECT * FROM wifi WHERE wifiAP = 2";
  auto one_shot = sieve_.Execute(sql, md_);
  ASSERT_TRUE(one_shot.ok()) << one_shot.status().ToString();

  SieveSession session(&sieve_, md_);
  auto prepared = session.Prepare(sql);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared->parameter_count(), 0u);
  for (int run = 0; run < 3; ++run) {
    auto repeated = prepared->Execute();
    ASSERT_TRUE(repeated.ok()) << repeated.status().ToString();
    EXPECT_EQ(OrderedFingerprints(*one_shot), OrderedFingerprints(*repeated))
        << "run " << run;
    EXPECT_EQ(one_shot->stats, repeated->stats) << "run " << run;
  }
}

TEST_F(SessionTest, PositionalParametersMatchInlinedLiterals) {
  SieveSession session(&sieve_, md_);
  auto prepared = session.Prepare("SELECT * FROM wifi WHERE wifiAP = ?");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_EQ(prepared->parameter_count(), 1u);
  EXPECT_EQ(prepared->parameter_names()[0], "");

  for (int ap = 0; ap < 4; ++ap) {
    auto bound = prepared->Execute({Value::Int(ap)});
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    // Same rows and order as inlined literals. Stats may legitimately
    // differ: at rewrite time a `?` is not sargable, so the strategy
    // selector can pick a different (equally correct) access path than it
    // would for the literal query.
    auto literal = sieve_.Execute(
        "SELECT * FROM wifi WHERE wifiAP = " + std::to_string(ap), md_);
    ASSERT_TRUE(literal.ok());
    EXPECT_EQ(Fingerprints(*literal), Fingerprints(*bound)) << "ap=" << ap;
    // Re-binding the same value must be fully deterministic, stats included.
    auto again = prepared->Execute({Value::Int(ap)});
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(OrderedFingerprints(*bound), OrderedFingerprints(*again));
    EXPECT_EQ(bound->stats, again->stats) << "ap=" << ap;
  }
}

TEST_F(SessionTest, NamedParametersShareSlotsAndIgnoreCase) {
  SieveSession session(&sieve_, md_);
  // :lo appears twice and must share one slot; names are case-insensitive.
  auto prepared = session.Prepare(
      "SELECT * FROM wifi WHERE ts_time BETWEEN :lo AND :hi AND "
      "ts_time >= :LO");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_EQ(prepared->parameter_count(), 2u);
  EXPECT_EQ(prepared->parameter_names()[0], "lo");
  EXPECT_EQ(prepared->parameter_names()[1], "hi");

  auto named = prepared->ExecuteNamed(
      {{"HI", Value::String("12:00")}, {"lo", Value::String("09:00")}});
  ASSERT_TRUE(named.ok()) << named.status().ToString();
  auto literal = sieve_.Execute(
      "SELECT * FROM wifi WHERE ts_time BETWEEN '09:00' AND '12:00' AND "
      "ts_time >= '09:00'",
      md_);
  ASSERT_TRUE(literal.ok());
  EXPECT_EQ(Fingerprints(*literal), Fingerprints(*named));
}

TEST_F(SessionTest, StringParameterCoercesToTimeColumn) {
  // Binding a string against a time column goes through the same literal
  // coercion as an inlined quoted literal.
  SieveSession session(&sieve_, md_);
  auto prepared =
      session.Prepare("SELECT * FROM wifi WHERE ts_time BETWEEN ? AND ?");
  ASSERT_TRUE(prepared.ok());
  auto bound =
      prepared->Execute({Value::String("09:00"), Value::String("11:00")});
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  auto literal = sieve_.Execute(
      "SELECT * FROM wifi WHERE ts_time BETWEEN '09:00' AND '11:00'", md_);
  ASSERT_TRUE(literal.ok());
  EXPECT_EQ(Fingerprints(*literal), Fingerprints(*bound));
  EXPECT_GT(bound->size(), 0u);
}

TEST_F(SessionTest, MissingBindIsAnError) {
  SieveSession session(&sieve_, md_);
  auto prepared =
      session.Prepare("SELECT * FROM wifi WHERE wifiAP = ? AND owner = ?");
  ASSERT_TRUE(prepared.ok());
  ASSERT_EQ(prepared->parameter_count(), 2u);

  auto too_few = prepared->Execute({Value::Int(1)});
  ASSERT_FALSE(too_few.ok());
  EXPECT_EQ(too_few.status().code(), StatusCode::kInvalidArgument);

  auto too_many =
      prepared->Execute({Value::Int(1), Value::Int(2), Value::Int(3)});
  ASSERT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.status().code(), StatusCode::kInvalidArgument);

  auto none = prepared->Execute();
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SessionTest, NamedBindingErrors) {
  SieveSession session(&sieve_, md_);
  auto prepared =
      session.Prepare("SELECT * FROM wifi WHERE wifiAP = :ap AND owner = ?");
  ASSERT_TRUE(prepared.ok());

  // The positional slot cannot be addressed by name.
  auto positional_by_name = prepared->ExecuteNamed({{"ap", Value::Int(1)}});
  ASSERT_FALSE(positional_by_name.ok());
  EXPECT_EQ(positional_by_name.status().code(), StatusCode::kInvalidArgument);

  auto all_named = session.Prepare(
      "SELECT * FROM wifi WHERE wifiAP = :ap AND owner = :who");
  ASSERT_TRUE(all_named.ok());
  auto unknown = all_named->ExecuteNamed(
      {{"ap", Value::Int(1)}, {"nobody", Value::Int(0)}});
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);

  auto missing = all_named->ExecuteNamed({{"ap", Value::Int(1)}});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);

  auto twice = all_named->ExecuteNamed({{"ap", Value::Int(1)},
                                        {"AP", Value::Int(2)},
                                        {"who", Value::Int(0)}});
  ASSERT_FALSE(twice.ok());
  EXPECT_EQ(twice.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SessionTest, NullBindMatchesNothing) {
  SieveSession session(&sieve_, md_);
  auto prepared = session.Prepare("SELECT * FROM wifi WHERE owner = ?");
  ASSERT_TRUE(prepared.ok());
  auto result = prepared->Execute({Value::Null()});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 0u);  // SQL NULL comparison is never true
}

TEST_F(SessionTest, TypeMismatchedBindComparesFalseNotCrash) {
  SieveSession session(&sieve_, md_);
  auto prepared = session.Prepare("SELECT * FROM wifi WHERE owner = ?");
  ASSERT_TRUE(prepared.ok());
  // Values order across type families; an int column never equals a string.
  auto result = prepared->Execute({Value::String("bob")});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 0u);
}

TEST_F(SessionTest, RewriteCacheHitsOnRepeatAndInvalidatesOnAddPolicy) {
  const std::string sql = "SELECT * FROM wifi WHERE wifiAP = ?";
  SieveSession session(&sieve_, md_);
  auto prepared = session.Prepare(sql);
  ASSERT_TRUE(prepared.ok());
  RewriteCacheStats before = sieve_.rewrite_cache_stats();

  // Same SQL, different whitespace, same querier: cache hits.
  for (int i = 0; i < 5; ++i) {
    auto again = session.Prepare("SELECT *   FROM wifi\n WHERE wifiAP = ?");
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->rewrite().get(), prepared->rewrite().get())
        << "expected the shared cached rewrite";
  }
  RewriteCacheStats after = sieve_.rewrite_cache_stats();
  EXPECT_GE(after.hits, before.hits + 5);

  // Comments — line and block — normalize away too (regression: block
  // comments used to produce a distinct cache key).
  auto commented = session.Prepare(
      "SELECT * /* projection */ FROM wifi -- table\n WHERE wifiAP = ?");
  ASSERT_TRUE(commented.ok());
  EXPECT_EQ(commented->rewrite().get(), prepared->rewrite().get())
      << "comment-only variants must share the cached rewrite";

  // AddPolicy for alice touches this rewrite's dependency key: the next
  // Execute transparently re-prepares and reflects the new corpus.
  uint64_t epoch_before = sieve_.policy_epoch();
  ASSERT_TRUE(sieve_.AddPolicy(campus_.MakePolicy(5, "alice", "any")).ok());
  EXPECT_GT(sieve_.policy_epoch(), epoch_before);

  auto result = prepared->Execute({Value::Int(3)});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto oracle =
      sieve_.ExecuteReference("SELECT * FROM wifi WHERE wifiAP = 3", md_);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(result->size(), oracle->size());
  bool saw_owner5 = false;
  for (const auto& row : result->rows) saw_owner5 |= row[2].AsInt() == 5;
  EXPECT_TRUE(saw_owner5) << "post-epoch execute must see the new policy";
  EXPECT_GT(prepared->rewrite()->epoch, epoch_before)
      << "prepared query must have refreshed its snapshot";
  EXPECT_GE(sieve_.rewrite_cache_stats().invalidations, 1u);
}

TEST_F(SessionTest, CursorStreamsIdenticalRowsAndStats) {
  const std::string sql = "SELECT * FROM wifi WHERE ts_time >= '08:00'";
  auto one_shot = sieve_.Execute(sql, md_);
  ASSERT_TRUE(one_shot.ok());
  ASSERT_GT(one_shot->size(), 10u);

  SieveSession session(&sieve_, md_);
  auto prepared = session.Prepare(sql);
  ASSERT_TRUE(prepared.ok());
  auto cursor = prepared->OpenCursor();
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  EXPECT_EQ(cursor->schema().ToString(), one_shot->schema.ToString());

  ResultSet chunked;
  chunked.schema = cursor->schema();
  size_t batches = 0;
  while (true) {
    auto more = cursor->Next(&chunked.rows, /*max_rows=*/7);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    ++batches;
  }
  EXPECT_TRUE(cursor->exhausted());
  EXPECT_GT(batches, 1u) << "batch size 7 must take several pulls";
  EXPECT_EQ(OrderedFingerprints(*one_shot), OrderedFingerprints(chunked));
  EXPECT_EQ(one_shot->stats, cursor->stats());
}

TEST_F(SessionTest, CursorDrainMatchesExecute) {
  const std::string sql = "SELECT * FROM wifi WHERE wifiAP = 1";
  auto one_shot = sieve_.Execute(sql, md_);
  ASSERT_TRUE(one_shot.ok());

  SieveSession session(&sieve_, md_);
  auto prepared = session.Prepare(sql);
  ASSERT_TRUE(prepared.ok());
  auto cursor = prepared->OpenCursor();
  ASSERT_TRUE(cursor.ok());
  auto drained = cursor->Drain();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(OrderedFingerprints(*one_shot), OrderedFingerprints(*drained));
  EXPECT_EQ(one_shot->stats, drained->stats);
}

TEST_F(SessionTest, ExhaustedCursorReleasesEpochPinForWriters) {
  // A drained-but-still-alive cursor must not hold the shared state lock:
  // AddPolicy on the same thread would otherwise deadlock.
  SieveSession session(&sieve_, md_);
  auto prepared = session.Prepare("SELECT * FROM wifi WHERE wifiAP = 0");
  ASSERT_TRUE(prepared.ok());
  auto cursor = prepared->OpenCursor();
  ASSERT_TRUE(cursor.ok());
  std::vector<Row> batch;
  while (true) {
    auto more = cursor->Next(&batch);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
  }
  ASSERT_TRUE(cursor->exhausted());
  // Cursor still in scope; this must complete without blocking.
  ASSERT_TRUE(sieve_.AddPolicy(campus_.MakePolicy(7, "alice", "any")).ok());
}

TEST_F(SessionTest, ClosedCursorReleasesEpochPinEarly) {
  // The LIMIT-style exit: read a few rows, Close(), then resume normal
  // session work (AddPolicy would deadlock if the pin were still held).
  SieveSession session(&sieve_, md_);
  auto prepared = session.Prepare("SELECT * FROM wifi");
  ASSERT_TRUE(prepared.ok());
  auto cursor = prepared->OpenCursor();
  ASSERT_TRUE(cursor.ok());
  std::vector<Row> batch;
  auto more = cursor->Next(&batch, /*max_rows=*/5);
  ASSERT_TRUE(more.ok());
  EXPECT_TRUE(*more);
  EXPECT_EQ(batch.size(), 5u);
  cursor->Close();
  EXPECT_TRUE(cursor->exhausted());
  EXPECT_EQ(cursor->stats().rows_output, 5u);  // frozen at emitted rows
  // Abandoned stream stays ended, and the writer path is unblocked.
  auto after_close = cursor->Next(&batch);
  ASSERT_TRUE(after_close.ok());
  EXPECT_FALSE(*after_close);
  ASSERT_TRUE(sieve_.AddPolicy(campus_.MakePolicy(8, "alice", "any")).ok());
}

TEST_F(SessionTest, CursorRejectsZeroBatchWithoutEndingStream) {
  SieveSession session(&sieve_, md_);
  auto prepared = session.Prepare("SELECT * FROM wifi WHERE wifiAP = 0");
  ASSERT_TRUE(prepared.ok());
  auto cursor = prepared->OpenCursor();
  ASSERT_TRUE(cursor.ok());
  std::vector<Row> batch;
  auto zero = cursor->Next(&batch, /*max_rows=*/0);
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(cursor->exhausted());  // caller bug, not end of stream
  auto rest = cursor->Drain();
  ASSERT_TRUE(rest.ok());
  EXPECT_GT(rest->size(), 0u);
}

TEST_F(SessionTest, OutOfOrderInsertIsDroppedNotAdopted) {
  // Regression: Insert used to *adopt* an older entry's epoch (rolling the
  // cache epoch backward, clearing valid entries, and serving a
  // pre-policy-change rewrite as current). An out-of-order insert must be
  // refused instead.
  RewriteCache cache;
  auto fresh = std::make_shared<PreparedRewrite>();
  fresh->epoch = 5;
  cache.Insert("k", fresh);
  auto stale = std::make_shared<PreparedRewrite>();
  stale->epoch = 3;  // produced before a mutation the cache already saw
  cache.Insert("k2", stale);
  EXPECT_EQ(cache.size(), 1u) << "stale-epoch entry must be dropped";
  EXPECT_NE(cache.Lookup("k"), nullptr) << "fresh entry must survive";
  EXPECT_EQ(cache.Lookup("k2"), nullptr);
  EXPECT_EQ(cache.stats().stale_drops, 1u);
  EXPECT_EQ(cache.stats().invalidations, 0u);
  // The refused entry is non-resident and thus invisible to keyed
  // invalidation — it must come back marked stale so its holder
  // re-prepares instead of executing the pre-mutation rewrite.
  EXPECT_TRUE(stale->stale());
  EXPECT_FALSE(fresh->stale());
}

TEST_F(SessionTest, ReinsertMarksDisplacedRewriteStale) {
  // If a key is ever re-inserted, holders of the displaced shared_ptr must
  // re-prepare rather than diverge from what the cache now serves.
  RewriteCache cache;
  auto first = std::make_shared<PreparedRewrite>();
  first->epoch = 1;
  auto second = std::make_shared<PreparedRewrite>();
  second->epoch = 2;
  cache.Insert("k", first);
  cache.Insert("k", second);
  EXPECT_TRUE(first->stale());
  EXPECT_FALSE(second->stale());
  EXPECT_EQ(cache.Lookup("k").get(), second.get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(SessionTest, NonAuthoritativeProbeMissIsNotCounted) {
  // The optimistic pre-lock probe must not double-count misses: only the
  // authoritative retry records one.
  RewriteCache cache;
  EXPECT_EQ(cache.Lookup("absent", /*authoritative=*/false), nullptr);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.Lookup("absent"), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(SessionTest, LruEvictionSparesJustHitEntry) {
  // Regression: capacity eviction used to erase(begin()) on an
  // unordered_map — an arbitrary, possibly hottest, entry. True LRU must
  // evict the least recently used entry, never one that just hit.
  RewriteCache cache(/*capacity=*/2);
  auto mk = [] {
    auto e = std::make_shared<PreparedRewrite>();
    e->epoch = 1;
    return e;
  };
  cache.Insert("a", mk());
  cache.Insert("b", mk());
  ASSERT_NE(cache.Lookup("a"), nullptr);  // refreshes a's recency
  cache.Insert("c", mk());                // evicts b (LRU), not a
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup("a"), nullptr) << "just-hit entry must survive";
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Eviction is capacity management, not invalidation.
  EXPECT_EQ(cache.stats().invalidations, 0u);
}

TEST_F(SessionTest, EvictedHeldEntryStillReachableByKeyedInvalidation) {
  // Regression: eviction removed an entry from the per-table index while a
  // PreparedQuery still held it, so a policy mutation *after* eviction
  // could never mark the held entry stale — the holder silently executed
  // a pre-mutation rewrite forever. Evicted-but-held entries must stay
  // reachable by keyed invalidation.
  RewriteCache cache(/*capacity=*/1);
  auto mk = [](std::string querier, std::vector<std::string> tables) {
    auto e = std::make_shared<PreparedRewrite>();
    e->epoch = 1;
    e->querier = std::move(querier);
    e->purpose = "any";
    e->dep_tables = std::move(tables);
    return e;
  };
  auto held = mk("alice", {"wifi"});
  cache.Insert("a", held);
  cache.Insert("b", mk("bob", {"wifi"}));  // evicts a; `held` lives on
  ASSERT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(held->stale()) << "eviction alone must not invalidate";

  // A mutation on alice's grant key reaches the evicted-but-held entry and
  // spares the resident non-matching one.
  size_t n = cache.InvalidateTable("wifi", [](const PreparedRewrite& rw) {
    return rw.querier == "alice";
  });
  EXPECT_EQ(n, 1u);
  EXPECT_TRUE(held->stale());
  EXPECT_NE(cache.Lookup("b"), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST_F(SessionTest, EvictedHeldEntryReachedByWholesaleInvalidation) {
  RewriteCache cache(/*capacity=*/1);
  auto mk = [](std::vector<std::string> tables) {
    auto e = std::make_shared<PreparedRewrite>();
    e->epoch = 1;
    e->dep_tables = std::move(tables);
    return e;
  };
  auto held = mk({"wifi", "sensors"});  // multi-table: must count once
  cache.Insert("a", held);
  cache.Insert("b", mk({"wifi"}));  // evicts a
  EXPECT_EQ(cache.InvalidateAll(), 2u) << "resident + evicted-held, no dup";
  EXPECT_TRUE(held->stale());
}

TEST_F(SessionTest, DroppedHolderEndsEvictedEntrysInvalidationReach) {
  // Once the last holder releases an evicted entry there is nothing left
  // to invalidate: the weak slot expires and must not be counted.
  RewriteCache cache(/*capacity=*/1);
  auto mk = [](std::vector<std::string> tables) {
    auto e = std::make_shared<PreparedRewrite>();
    e->epoch = 1;
    e->dep_tables = std::move(tables);
    return e;
  };
  auto held = mk({"wifi"});
  cache.Insert("a", held);
  cache.Insert("b", mk({"wifi"}));  // evicts a while `held` references it
  held.reset();                     // last holder gone; weak slot expires
  EXPECT_EQ(cache.InvalidateTable("wifi"), 1u) << "only the resident entry";
}

TEST_F(SessionTest, KeyedInvalidationOnlyTouchesMatchingEntries) {
  RewriteCache cache;
  auto mk = [](std::string querier, std::vector<std::string> tables) {
    auto e = std::make_shared<PreparedRewrite>();
    e->epoch = 1;
    e->querier = std::move(querier);
    e->purpose = "any";
    e->dep_tables = std::move(tables);
    return e;
  };
  auto alice = mk("alice", {"wifi"});
  auto bob = mk("bob", {"wifi"});
  auto carol = mk("carol", {"sensors"});
  cache.Insert("a", alice);
  cache.Insert("b", bob);
  cache.Insert("c", carol);

  size_t n = cache.InvalidateTable("wifi", [](const PreparedRewrite& rw) {
    return rw.querier == "alice";
  });
  EXPECT_EQ(n, 1u);
  EXPECT_TRUE(alice->stale());
  EXPECT_FALSE(bob->stale());
  EXPECT_FALSE(carol->stale());
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);

  // Null predicate: every entry on the table (protection transitions).
  EXPECT_EQ(cache.InvalidateTable("wifi"), 1u);
  EXPECT_TRUE(bob->stale());
  EXPECT_FALSE(carol->stale()) << "other table's entries stay untouched";
}

TEST_F(SessionTest, UnrelatedAddPolicyKeepsOtherQueriersRewrites) {
  ASSERT_TRUE(sieve_.AddPolicy(campus_.MakePolicy(2, "bob", "any")).ok());
  SieveSession alice_session(&sieve_, md_);
  SieveSession bob_session(&sieve_, QueryMetadata{"bob", "any"});
  auto pa = alice_session.Prepare("SELECT * FROM wifi WHERE wifiAP = 1");
  auto pb = bob_session.Prepare("SELECT * FROM wifi WHERE wifiAP = 1");
  ASSERT_TRUE(pa.ok() && pb.ok());
  auto a_before = pa->rewrite();
  auto b_before = pb->rewrite();

  // A policy granted to bob invalidates bob's snapshot, not alice's.
  ASSERT_TRUE(sieve_.AddPolicy(campus_.MakePolicy(3, "bob", "any")).ok());
  EXPECT_FALSE(a_before->stale());
  EXPECT_TRUE(b_before->stale());

  RewriteCacheStats before = sieve_.rewrite_cache_stats();
  ASSERT_TRUE(pa->Execute().ok());
  EXPECT_EQ(sieve_.rewrite_cache_stats().misses, before.misses)
      << "alice must execute without re-preparing";
  EXPECT_EQ(pa->rewrite().get(), a_before.get());

  // bob transparently re-prepares and sees the new corpus.
  auto rb = pb->Execute();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_NE(pb->rewrite().get(), b_before.get());
  auto oracle =
      sieve_.ExecuteReference("SELECT * FROM wifi WHERE wifiAP = 1",
                              QueryMetadata{"bob", "any"});
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(rb->size(), oracle->size());
}

TEST_F(SessionTest, AddPolicyAfterEvictionStillInvalidatesHeldRewrite) {
  // End-to-end shape of the eviction-reach regression: alice prepares, cache
  // churn (here synthetic one-shot entries) evicts her resident entry, and
  // only THEN a policy for alice lands. Her PreparedQuery must re-prepare
  // and serve the post-mutation rows, not the snapshot it prepared under.
  SieveSession session(&sieve_, md_);
  auto pa = session.Prepare("SELECT * FROM wifi WHERE wifiAP = 1");
  ASSERT_TRUE(pa.ok());
  auto before = pa->rewrite();

  RewriteCache& cache = sieve_.rewrite_cache();
  const uint64_t epoch = sieve_.policy_epoch();
  for (size_t i = 0; cache.stats().evictions == 0; ++i) {
    ASSERT_LT(i, 2 * RewriteCache::kMaxEntries) << "churn never evicted";
    auto filler = std::make_shared<PreparedRewrite>();
    filler->epoch = epoch;
    cache.Insert("churn-" + std::to_string(i), filler);
  }
  EXPECT_FALSE(before->stale()) << "eviction alone must not invalidate";

  ASSERT_TRUE(sieve_.AddPolicy(campus_.MakePolicy(5, "alice", "any")).ok());
  EXPECT_TRUE(before->stale())
      << "post-eviction AddPolicy must reach the held rewrite";

  auto rows = pa->Execute();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_NE(pa->rewrite().get(), before.get()) << "must have re-prepared";
  auto oracle = sieve_.ExecuteReference("SELECT * FROM wifi WHERE wifiAP = 1",
                                        md_);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(rows->size(), oracle->size());
}

TEST_F(SessionTest, GroupGrantInvalidatesMemberQueriersRewrites) {
  // bob ∈ students: a policy granted to the group must invalidate bob's
  // cached rewrite (the grant reaches him through membership) while
  // leaving alice's (faculty) untouched.
  ASSERT_TRUE(sieve_.AddPolicy(campus_.MakePolicy(2, "bob", "any")).ok());
  SieveSession alice_session(&sieve_, md_);
  SieveSession bob_session(&sieve_, QueryMetadata{"bob", "any"});
  auto pa = alice_session.Prepare("SELECT * FROM wifi WHERE wifiAP = 2");
  auto pb = bob_session.Prepare("SELECT * FROM wifi WHERE wifiAP = 2");
  ASSERT_TRUE(pa.ok() && pb.ok());

  ASSERT_TRUE(sieve_.AddPolicy(campus_.MakePolicy(4, "students", "any")).ok());
  EXPECT_FALSE(pa->rewrite()->stale());
  EXPECT_TRUE(pb->rewrite()->stale());

  auto rb = pb->Execute();
  ASSERT_TRUE(rb.ok());
  auto oracle =
      sieve_.ExecuteReference("SELECT * FROM wifi WHERE wifiAP = 2",
                              QueryMetadata{"bob", "any"});
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(rb->size(), oracle->size());
}

TEST_F(SessionTest, DefaultDenyVisibleInRewriteDiagnostics) {
  SieveSession session(&sieve_, QueryMetadata{"eve", "any"});
  auto prepared = session.Prepare("SELECT * FROM wifi");
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(prepared->rewrite()->default_denied);
  auto result = prepared->Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

TEST_F(SessionTest, SetOptionsValidates) {
  SieveOptions bad = sieve_.options();
  bad.num_threads = 0;
  auto st = sieve_.set_options(bad);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  bad = sieve_.options();
  bad.timeout_seconds = -1.0;
  st = sieve_.set_options(bad);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  SieveOptions good = sieve_.options();
  good.num_threads = 4;
  good.timeout_seconds = 12.5;
  ASSERT_TRUE(sieve_.set_options(good).ok());
  EXPECT_EQ(sieve_.options().num_threads, 4);
  EXPECT_EQ(sieve_.options().timeout_seconds, 12.5);
}

TEST_F(SessionTest, SetOptionsTimeoutAppliesToPreparedExecution) {
  SieveSession session(&sieve_, md_);
  auto prepared = session.Prepare("SELECT * FROM wifi");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Execute().ok());

  SieveOptions options = sieve_.options();
  options.timeout_seconds = 1e-7;  // effectively instant
  ASSERT_TRUE(sieve_.set_options(options).ok());
  auto timed_out = prepared->Execute();
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kTimeout);
}

TEST_F(SessionTest, UnboundParameterInsideScalarSubqueryFailsCleanly) {
  // Placeholders inside scalar subqueries are documented as unsupported:
  // the subquery text is re-parsed per outer row after binding happened.
  SieveSession session(&sieve_, md_);
  auto prepared = session.Prepare(
      "SELECT * FROM wifi WHERE owner = "
      "(SELECT MAX(w2.owner) FROM wifi AS w2 WHERE w2.wifiAP = ?)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  // The outer statement has no visible slot; the stray inner placeholder
  // surfaces as a clean execution error, not a crash.
  EXPECT_EQ(prepared->parameter_count(), 0u);
  auto result = prepared->Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
}

}  // namespace
}  // namespace sieve
