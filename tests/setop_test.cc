// EXCEPT/MINUS support and the Section 3.1 order-sensitivity argument:
// with non-monotonic operators, enforcing policies on base tables before the
// query operator is required for correct (sound + secure) results.

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "tests/test_fixtures.h"

namespace sieve {
namespace {

class SetOpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema({{"id", DataType::kInt}, {"v", DataType::kInt}});
    ASSERT_TRUE(db_.CreateTable("r1", schema).ok());
    ASSERT_TRUE(db_.CreateTable("r2", schema).ok());
    // r1 = {0..9}, r2 = {5..14} (values equal to ids).
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(db_.Insert("r1", Row{Value::Int(i), Value::Int(i)}).ok());
    }
    for (int i = 5; i < 15; ++i) {
      ASSERT_TRUE(db_.Insert("r2", Row{Value::Int(i), Value::Int(i)}).ok());
    }
  }
  Database db_;
};

TEST_F(SetOpTest, ParserAcceptsExceptAndMinus) {
  auto except = Parser::Parse("SELECT * FROM r1 EXCEPT SELECT * FROM r2");
  ASSERT_TRUE(except.ok());
  EXPECT_EQ((*except)->set_op, SetOpKind::kExcept);
  auto minus = Parser::Parse("SELECT * FROM r1 MINUS SELECT * FROM r2");
  ASSERT_TRUE(minus.ok());
  EXPECT_EQ((*minus)->set_op, SetOpKind::kExcept);
  // Round trip prints EXCEPT.
  EXPECT_NE((*minus)->ToSql().find(" EXCEPT "), std::string::npos);
}

TEST_F(SetOpTest, ExceptSubtractsRows) {
  auto result =
      db_.ExecuteSql("SELECT * FROM r1 EXCEPT SELECT * FROM r2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);  // ids 0..4
  for (const auto& row : result->rows) {
    EXPECT_LT(row[0].AsInt(), 5);
  }
}

TEST_F(SetOpTest, ExceptEmitsDistinctRows) {
  // Duplicate left rows collapse (SQL EXCEPT distinct semantics).
  ASSERT_TRUE(db_.Insert("r1", Row{Value::Int(0), Value::Int(0)}).ok());
  auto result = db_.ExecuteSql("SELECT * FROM r1 EXCEPT SELECT * FROM r2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
}

TEST_F(SetOpTest, ChainedSetOpsLeftAssociative) {
  // (r1 EXCEPT r2) UNION r2-slice.
  auto result = db_.ExecuteSql(
      "SELECT * FROM r1 EXCEPT SELECT * FROM r2 UNION SELECT * FROM r2 WHERE "
      "id = 14");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 6u);  // {0..4} ∪ {14}
}

TEST_F(SetOpTest, MixedUnionAllAndUnionDedupPerLink) {
  auto result = db_.ExecuteSql(
      "SELECT * FROM r1 WHERE id = 1 UNION ALL SELECT * FROM r1 WHERE id = 1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
  auto dedup = db_.ExecuteSql(
      "SELECT * FROM r1 WHERE id = 1 UNION SELECT * FROM r1 WHERE id = 1");
  ASSERT_TRUE(dedup.ok());
  EXPECT_EQ(dedup->size(), 1u);
}

// The paper's Section 3.1 scenario: rj MINUS rk where a policy denies the
// querier a tuple t_k ∈ r_k that also exists in r_j. Applying policies to
// the base table first keeps t_j in the result; applying them after the set
// difference would lose it.
TEST(SetOpPolicyTest, PolicyAppliedBeforeSetDifference) {
  MiniCampus campus;
  Database& db = campus.db();
  // A second table holding a copy of owner 3's rows plus extras.
  Schema schema({{"id", DataType::kInt},
                 {"wifiAP", DataType::kInt},
                 {"owner", DataType::kInt},
                 {"ts_time", DataType::kTime},
                 {"ts_date", DataType::kDate}});
  ASSERT_TRUE(db.CreateTable("wifi_archive", schema).ok());
  const TableEntry* wifi = db.catalog().Find("wifi");
  wifi->table->ForEach([&](RowId, const Row& row) {
    if (row[2].AsInt() == 3) {
      (void)db.Insert("wifi_archive", row);
    }
  });
  ASSERT_TRUE(db.CreateIndex("wifi_archive", "owner").ok());
  ASSERT_TRUE(db.Analyze().ok());

  SieveMiddleware sieve(&db, &campus.groups());
  ASSERT_TRUE(sieve.Init().ok());
  // alice may see everything in the archive but nothing of owner 3 in the
  // live table (only owner 5).
  Policy archive_policy;
  archive_policy.table_name = "wifi_archive";
  archive_policy.owner = Value::Int(3);
  archive_policy.querier = "alice";
  archive_policy.purpose = "any";
  archive_policy.object_conditions.push_back(
      ObjectCondition::Eq("owner", Value::Int(3)));
  ASSERT_TRUE(sieve.AddPolicy(std::move(archive_policy)).ok());
  ASSERT_TRUE(sieve.AddPolicy(campus.MakePolicy(5, "alice", "any")).ok());

  // Archive rows minus live rows: because alice cannot see owner 3 in the
  // live table, the subtraction removes nothing — all 60 archive rows
  // survive. If policies were applied after the MINUS, the duplicates would
  // cancel and the result would be empty (the paper's inconsistency).
  auto result = sieve.Execute(
      "SELECT * FROM wifi_archive EXCEPT SELECT * FROM wifi",
      {"alice", "any"});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 60u);

  // Sanity: without Sieve, the raw subtraction is empty.
  auto raw = db.ExecuteSql(
      "SELECT * FROM wifi_archive EXCEPT SELECT * FROM wifi");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->size(), 0u);
}

}  // namespace
}  // namespace sieve
