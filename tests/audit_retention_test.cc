// Audit-log retention: SieveOptions::audit_max_rows bounds the queryable
// `sieve_audit` table, truncating oldest-first (lowest seq) at flush;
// truncation is counted and surfaced through MiddlewareHealth and the
// server STATS document.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "tests/server_test_util.h"

namespace sieve {
namespace {

using server::AddCampusPolicies;
using server::MakeMd;

std::unique_ptr<SieveMiddleware> MakeSieve(MiniCampus* campus,
                                           int64_t audit_max_rows) {
  SieveOptions options;
  options.audit_max_rows = audit_max_rows;
  auto mw = std::make_unique<SieveMiddleware>(&campus->db(), &campus->groups(),
                                              options);
  EXPECT_TRUE(mw->Init().ok());
  AddCampusPolicies(campus, mw.get());
  return mw;
}

int64_t RunQueries(SieveMiddleware* mw, int n, int offset = 0) {
  QueryMetadata md = MakeMd("alice", "any");
  for (int i = 0; i < n; ++i) {
    // Distinct SQL per execution so each audit record is identifiable by
    // its seq alone.
    auto rs = mw->Execute(
        "SELECT COUNT(*) FROM wifi WHERE wifiAP = " +
            std::to_string((offset + i) % 6),
        md);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
  }
  return n;
}

TEST(AuditRetentionTest, FlushTruncatesOldestFirst) {
  MiniCampus campus;
  auto mw = MakeSieve(&campus, /*audit_max_rows=*/5);
  RunQueries(mw.get(), 8);
  ASSERT_TRUE(mw->FlushAuditLog().ok());

  // Reading sieve_audit through the middleware sees the post-retention
  // table: only the newest 5 of 8 records survive.
  QueryMetadata md = MakeMd("alice", "any");
  auto rows = mw->Execute("SELECT seq FROM sieve_audit", md);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // Only the newest 5 of the 8 flushed records survive (the scan's own
  // record is appended after it executes, so it is still pending here).
  ASSERT_EQ(rows->rows.size(), 5u);
  int64_t min_seq = rows->rows[0][0].raw();
  int64_t max_seq = min_seq;
  for (const Row& r : rows->rows) {
    min_seq = std::min(min_seq, r[0].raw());
    max_seq = std::max(max_seq, r[0].raw());
  }
  EXPECT_EQ(max_seq, 8);
  EXPECT_EQ(min_seq, 4);  // contiguous newest window
  EXPECT_GE(mw->audit_log().truncated(), 3u);
}

TEST(AuditRetentionTest, UnboundedByDefault) {
  MiniCampus campus;
  auto mw = MakeSieve(&campus, /*audit_max_rows=*/0);
  RunQueries(mw.get(), 8);
  ASSERT_TRUE(mw->FlushAuditLog().ok());
  QueryMetadata md = MakeMd("alice", "any");
  auto rows = mw->Execute("SELECT seq FROM sieve_audit", md);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 8u);
  EXPECT_EQ(mw->audit_log().truncated(), 0u);
}

TEST(AuditRetentionTest, SetOptionsValidatesAndRetargetsBound) {
  MiniCampus campus;
  auto mw = MakeSieve(&campus, 0);

  SieveOptions bad;
  bad.audit_max_rows = -3;
  EXPECT_FALSE(mw->set_options(bad).ok());

  RunQueries(mw.get(), 10);
  ASSERT_TRUE(mw->FlushAuditLog().ok());
  EXPECT_EQ(mw->audit_log().truncated(), 0u);

  // Tightening the bound at runtime applies at the next flush.
  SieveOptions tight;
  tight.audit_max_rows = 4;
  ASSERT_TRUE(mw->set_options(tight).ok());
  RunQueries(mw.get(), 2);
  ASSERT_TRUE(mw->FlushAuditLog().ok());
  EXPECT_EQ(mw->audit_log().max_table_rows(), 4u);
  EXPECT_GE(mw->audit_log().truncated(), 8u);  // 12 flushed, 4 kept

  QueryMetadata md = MakeMd("alice", "any");
  auto rows = mw->Execute("SELECT seq FROM sieve_audit", md);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 4u);
}

TEST(AuditRetentionTest, HealthSurfacesAuditAndCacheCounters) {
  MiniCampus campus;
  auto mw = MakeSieve(&campus, 3);
  RunQueries(mw.get(), 6);

  MiddlewareHealth before = mw->Health();
  EXPECT_EQ(before.audit_pending, 6u);
  EXPECT_EQ(before.audit_total, 6);
  EXPECT_EQ(before.audit_truncated, 0u);
  EXPECT_GE(before.cache.misses, 1u);
  EXPECT_GT(before.policy_epoch, 0u);

  ASSERT_TRUE(mw->FlushAuditLog().ok());
  MiddlewareHealth after = mw->Health();
  EXPECT_EQ(after.audit_pending, 0u);
  EXPECT_EQ(after.audit_truncated, 3u);
  EXPECT_EQ(after.audit_dropped, 0u);
}

}  // namespace
}  // namespace sieve
