#include "policy/policy_store.h"

#include <algorithm>

#include "common/string_util.h"

namespace sieve {

Status PolicyStore::Init() {
  if (db_->catalog().Find(kPolicyTable) == nullptr) {
    Schema rp({{"id", DataType::kInt},
               {"owner", DataType::kString},
               {"querier", DataType::kString},
               {"associated_table", DataType::kString},
               {"purpose", DataType::kString},
               {"action", DataType::kString},
               {"inserted_at", DataType::kInt}});
    SIEVE_RETURN_IF_ERROR(db_->CreateTable(kPolicyTable, std::move(rp)));
    SIEVE_RETURN_IF_ERROR(db_->CreateIndex(kPolicyTable, "querier"));
  }
  if (db_->catalog().Find(kConditionTable) == nullptr) {
    Schema roc({{"id", DataType::kInt},
                {"policy_id", DataType::kInt},
                {"attr", DataType::kString},
                {"op", DataType::kString},
                {"val", DataType::kString}});
    SIEVE_RETURN_IF_ERROR(db_->CreateTable(kConditionTable, std::move(roc)));
    SIEVE_RETURN_IF_ERROR(db_->CreateIndex(kConditionTable, "policy_id"));
  }
  return Status::OK();
}

namespace {

// Case-insensitive grant key: lower-cased fields joined by '\x1f' (unit
// separator, which cannot appear in identifiers).
std::string LowerKey(const std::string& querier, const std::string& purpose,
                     const std::string& table) {
  std::string key;
  key.reserve(querier.size() + purpose.size() + table.size() + 2);
  key += ToLower(querier);
  key += '\x1f';
  key += ToLower(purpose);
  key += '\x1f';
  key += ToLower(table);
  return key;
}

// Serializes a value for the rOC.val column, keeping the logical type tag so
// LoadFromTables can round-trip it.
std::string EncodeValue(const Value& v) {
  return std::string(DataTypeName(v.type())) + ":" + v.ToString();
}

Result<Value> DecodeValue(const std::string& text) {
  size_t colon = text.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("malformed rOC value: " + text);
  }
  std::string tag = text.substr(0, colon);
  std::string body = text.substr(colon + 1);
  if (tag == "int") return Value::Int(std::strtoll(body.c_str(), nullptr, 10));
  if (tag == "double") return Value::Double(std::strtod(body.c_str(), nullptr));
  if (tag == "string") return Value::String(body);
  if (tag == "bool") return Value::Bool(body == "true");
  if (tag == "time") return Value::ParseTime(body);
  if (tag == "date") return Value::ParseDate(body);
  return Status::InvalidArgument("unknown rOC value tag: " + tag);
}

}  // namespace

Status PolicyStore::PersistPolicy(const Policy& policy) {
  Row rp_row{Value::Int(policy.id),
             Value::String(policy.owner.ToString()),
             Value::String(policy.querier),
             Value::String(policy.table_name),
             Value::String(policy.purpose),
             Value::String(policy.action == PolicyAction::kAllow ? "allow"
                                                                 : "deny"),
             Value::Int(policy.inserted_at)};
  auto inserted = db_->Insert(kPolicyTable, std::move(rp_row));
  if (!inserted.ok()) return inserted.status();

  for (const auto& oc : policy.object_conditions) {
    if (oc.is_derived()) {
      Row row{Value::Int(next_oc_id_++), Value::Int(policy.id),
              Value::String(oc.attr), Value::String(CompareOpSymbol(oc.op)),
              Value::String("sql:" + oc.subquery_sql)};
      auto st = db_->Insert(kConditionTable, std::move(row));
      if (!st.ok()) return st.status();
      continue;
    }
    Row row{Value::Int(next_oc_id_++), Value::Int(policy.id), Value::String(oc.attr),
            Value::String(CompareOpSymbol(oc.op)),
            Value::String(EncodeValue(oc.value))};
    auto st = db_->Insert(kConditionTable, std::move(row));
    if (!st.ok()) return st.status();
    if (oc.is_range()) {
      Row row2{Value::Int(next_oc_id_++), Value::Int(policy.id),
               Value::String(oc.attr), Value::String(CompareOpSymbol(oc.op2)),
               Value::String(EncodeValue(*oc.value2))};
      auto st2 = db_->Insert(kConditionTable, std::move(row2));
      if (!st2.ok()) return st2.status();
    }
  }
  return Status::OK();
}

Result<int64_t> PolicyStore::AddPolicy(Policy policy) {
  if (policy.id < 0) policy.id = next_id_;
  next_id_ = std::max(next_id_, policy.id + 1);
  if (policy.inserted_at == 0) policy.inserted_at = logical_clock_++;
  SIEVE_RETURN_IF_ERROR(PersistPolicy(policy));
  by_id_[policy.id] = policies_.size();
  int64_t id = policy.id;
  policies_.push_back(std::move(policy));
  const Policy& stored = policies_.back();
  ++key_versions_[LowerKey(stored.querier, stored.purpose, stored.table_name)];
  size_t& table_count = table_policy_counts_[ToLower(stored.table_name)];
  bool protection_changed = (table_count == 0);
  ++table_count;
  BumpVersion();
  NotifyMutation(stored, protection_changed);
  return id;
}

Status PolicyStore::RemovePolicy(int64_t id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound(StrFormat("no policy with id %lld",
                                      static_cast<long long>(id)));
  }
  size_t pos = it->second;
  Policy removed = policies_[pos];
  by_id_.erase(it);
  policies_.erase(policies_.begin() + static_cast<long>(pos));
  // Rebuild the id map (positions shifted).
  for (size_t i = 0; i < policies_.size(); ++i) by_id_[policies_[i].id] = i;

  // Tombstone the persisted rows.
  TableEntry* rp = db_->catalog().Find(kPolicyTable);
  if (rp != nullptr) {
    std::vector<RowId> doomed;
    rp->table->ForEach([&](RowId rid, const Row& row) {
      if (row[0].AsInt() == id) doomed.push_back(rid);
    });
    for (RowId rid : doomed) SIEVE_RETURN_IF_ERROR(db_->Delete(kPolicyTable, rid));
  }
  TableEntry* roc = db_->catalog().Find(kConditionTable);
  if (roc != nullptr) {
    std::vector<RowId> doomed;
    roc->table->ForEach([&](RowId rid, const Row& row) {
      if (row[1].AsInt() == id) doomed.push_back(rid);
    });
    for (RowId rid : doomed) {
      SIEVE_RETURN_IF_ERROR(db_->Delete(kConditionTable, rid));
    }
  }
  ++key_versions_[LowerKey(removed.querier, removed.purpose,
                           removed.table_name)];
  std::string table_lower = ToLower(removed.table_name);
  bool protection_changed = false;
  auto count_it = table_policy_counts_.find(table_lower);
  if (count_it != table_policy_counts_.end() && count_it->second > 0) {
    --count_it->second;
    protection_changed = (count_it->second == 0);
  }
  BumpVersion();
  NotifyMutation(removed, protection_changed);
  return Status::OK();
}

Status PolicyStore::LoadFromTables() {
  policies_.clear();
  by_id_.clear();
  TableEntry* rp = db_->catalog().Find(kPolicyTable);
  TableEntry* roc = db_->catalog().Find(kConditionTable);
  if (rp == nullptr || roc == nullptr) {
    return Status::NotFound("policy tables are missing; call Init() first");
  }

  std::unordered_map<int64_t, Policy> loaded;
  rp->table->ForEach([&](RowId, const Row& row) {
    Policy p;
    p.id = row[0].AsInt();
    p.owner = row[1];  // owner round-trips as string; exprs live in rOC
    p.querier = row[2].AsString();
    p.table_name = row[3].AsString();
    p.purpose = row[4].AsString();
    p.action = row[5].AsString() == "deny" ? PolicyAction::kDeny
                                           : PolicyAction::kAllow;
    p.inserted_at = row[6].AsInt();
    loaded.emplace(p.id, std::move(p));
  });

  // Group rOC rows per policy and reassemble conditions (two one-sided
  // comparisons on the same attr fold back into one range condition).
  Status status = Status::OK();
  roc->table->ForEach([&](RowId, const Row& row) {
    if (!status.ok()) return;
    int64_t policy_id = row[1].AsInt();
    auto it = loaded.find(policy_id);
    if (it == loaded.end()) return;
    std::string attr = row[2].AsString();
    auto op = ParseCompareOp(row[3].AsString());
    if (!op.ok()) {
      status = op.status();
      return;
    }
    const std::string& text = row[4].AsString();
    if (text.rfind("sql:", 0) == 0) {
      it->second.object_conditions.push_back(
          ObjectCondition::Derived(attr, text.substr(4)));
      return;
    }
    auto value = DecodeValue(text);
    if (!value.ok()) {
      status = value.status();
      return;
    }
    // Try folding into an existing one-sided condition on the same attr.
    for (auto& oc : it->second.object_conditions) {
      if (!EqualsIgnoreCase(oc.attr, attr) || oc.is_range() ||
          oc.is_derived()) {
        continue;
      }
      bool oc_is_lower = oc.op == CompareOp::kGe || oc.op == CompareOp::kGt;
      bool new_is_upper = *op == CompareOp::kLe || *op == CompareOp::kLt;
      if (oc_is_lower && new_is_upper) {
        oc.op2 = *op;
        oc.value2 = std::move(value).value();
        return;
      }
    }
    ObjectCondition oc;
    oc.attr = attr;
    oc.op = *op;
    oc.value = std::move(value).value();
    it->second.object_conditions.push_back(std::move(oc));
  });
  SIEVE_RETURN_IF_ERROR(status);

  for (auto& [id, policy] : loaded) {
    by_id_[id] = policies_.size();
    next_id_ = std::max(next_id_, id + 1);
    policies_.push_back(std::move(policy));
  }
  std::sort(policies_.begin(), policies_.end(),
            [](const Policy& a, const Policy& b) { return a.id < b.id; });
  for (size_t i = 0; i < policies_.size(); ++i) by_id_[policies_[i].id] = i;
  // Corpus-wide change: rebuild the protection counts, bump every loaded
  // key's version, and report one wholesale event (per-key attribution is
  // meaningless across a reload).
  table_policy_counts_.clear();
  for (const Policy& p : policies_) {
    ++key_versions_[LowerKey(p.querier, p.purpose, p.table_name)];
    ++table_policy_counts_[ToLower(p.table_name)];
  }
  BumpVersion();
  if (listener_) {
    PolicyMutationEvent event;
    event.wholesale = true;
    listener_(event);
  }
  return Status::OK();
}

uint64_t PolicyStore::KeyVersion(const std::string& querier,
                                 const std::string& purpose,
                                 const std::string& table) const {
  auto it = key_versions_.find(LowerKey(querier, purpose, table));
  return it == key_versions_.end() ? 0 : it->second;
}

size_t PolicyStore::PolicyCountForTable(const std::string& table) const {
  auto it = table_policy_counts_.find(ToLower(table));
  return it == table_policy_counts_.end() ? 0 : it->second;
}

void PolicyStore::NotifyMutation(const Policy& policy,
                                 bool protection_changed) {
  if (!listener_) return;
  PolicyMutationEvent event;
  event.querier = ToLower(policy.querier);
  event.purpose = ToLower(policy.purpose);
  event.table = ToLower(policy.table_name);
  event.protection_changed = protection_changed;
  listener_(event);
}

const Policy* PolicyStore::FindPolicy(int64_t id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &policies_[it->second];
}

std::vector<const Policy*> PolicyStore::FilterByMetadata(
    const QueryMetadata& md, const std::string& table,
    const GroupResolver* resolver) const {
  std::vector<const Policy*> out;
  for (const Policy& p : policies_) {
    if (!EqualsIgnoreCase(p.table_name, table)) continue;
    if (PolicyMatchesMetadata(p, md, resolver)) out.push_back(&p);
  }
  return out;
}

std::vector<const Policy*> PolicyStore::PoliciesForQuerier(
    const std::string& querier, const std::string& purpose,
    const std::string& table) const {
  std::vector<const Policy*> out;
  for (const Policy& p : policies_) {
    if (EqualsIgnoreCase(p.querier, querier) &&
        EqualsIgnoreCase(p.purpose, purpose) &&
        EqualsIgnoreCase(p.table_name, table)) {
      out.push_back(&p);
    }
  }
  return out;
}

std::vector<QueryMetadata> PolicyStore::DistinctQueriers(
    const std::string& table) const {
  std::vector<QueryMetadata> out;
  for (const Policy& p : policies_) {
    if (!EqualsIgnoreCase(p.table_name, table)) continue;
    bool seen = false;
    for (const auto& md : out) {
      if (EqualsIgnoreCase(md.querier, p.querier) &&
          EqualsIgnoreCase(md.purpose, p.purpose)) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back({p.querier, p.purpose});
  }
  return out;
}

}  // namespace sieve
