#include "policy/policy.h"

#include "common/string_util.h"

namespace sieve {

ObjectCondition ObjectCondition::Eq(std::string attr, Value v) {
  ObjectCondition oc;
  oc.attr = std::move(attr);
  oc.op = CompareOp::kEq;
  oc.value = std::move(v);
  return oc;
}

ObjectCondition ObjectCondition::Range(std::string attr, Value lo, Value hi) {
  ObjectCondition oc;
  oc.attr = std::move(attr);
  oc.op = CompareOp::kGe;
  oc.value = std::move(lo);
  oc.op2 = CompareOp::kLe;
  oc.value2 = std::move(hi);
  return oc;
}

ObjectCondition ObjectCondition::Derived(std::string attr,
                                         std::string subquery) {
  ObjectCondition oc;
  oc.attr = std::move(attr);
  oc.op = CompareOp::kEq;
  oc.subquery_sql = std::move(subquery);
  return oc;
}

bool ObjectCondition::AsInterval(Value* lo, Value* hi) const {
  if (is_derived()) return false;
  if (is_range()) {
    // Only closed ranges participate in merging (generator emits >=, <=).
    if (op != CompareOp::kGe || op2 != CompareOp::kLe) return false;
    *lo = value;
    *hi = *value2;
    return true;
  }
  if (op == CompareOp::kEq) {
    *lo = value;
    *hi = value;
    return true;
  }
  return false;
}

ExprPtr ObjectCondition::ToExpr() const {
  if (is_derived()) {
    return MakeCompare(op, MakeColumn(attr),
                       std::make_shared<SubqueryExpr>(subquery_sql));
  }
  if (is_range()) {
    if (op == CompareOp::kGe && op2 == CompareOp::kLe) {
      return MakeBetween(attr, value, *value2);
    }
    std::vector<ExprPtr> parts;
    parts.push_back(MakeColumnCompare(attr, op, value));
    parts.push_back(MakeColumnCompare(attr, op2, *value2));
    return MakeAnd(std::move(parts));
  }
  return MakeColumnCompare(attr, op, value);
}

ExprPtr Policy::ObjectExpr() const {
  std::vector<ExprPtr> parts;
  parts.reserve(object_conditions.size());
  for (const auto& oc : object_conditions) parts.push_back(oc.ToExpr());
  return MakeAnd(std::move(parts));
}

std::string Policy::ToString() const {
  return StrFormat("policy{id=%lld table=%s owner=%s querier=%s purpose=%s "
                   "action=%s oc=[%s]}",
                   static_cast<long long>(id), table_name.c_str(),
                   owner.ToString().c_str(), querier.c_str(), purpose.c_str(),
                   action == PolicyAction::kAllow ? "allow" : "deny",
                   ObjectExpr()->ToSql().c_str());
}

std::vector<std::string> MapGroupResolver::GroupsOf(
    const std::string& user) const {
  std::vector<std::string> out;
  for (const auto& [member, group] : memberships_) {
    if (EqualsIgnoreCase(member, user)) out.push_back(group);
  }
  return out;
}

bool PolicyMatchesMetadata(const Policy& policy, const QueryMetadata& md,
                           const GroupResolver* resolver) {
  return GrantMatchesMetadata(policy.querier, policy.purpose, md, resolver);
}

bool GrantMatchesMetadata(const std::string& grant_querier,
                          const std::string& grant_purpose,
                          const QueryMetadata& md,
                          const GroupResolver* resolver) {
  if (!EqualsIgnoreCase(grant_purpose, md.purpose) &&
      !EqualsIgnoreCase(grant_purpose, "any")) {
    return false;
  }
  if (EqualsIgnoreCase(grant_querier, md.querier)) return true;
  if (resolver != nullptr) {
    for (const std::string& group : resolver->GroupsOf(md.querier)) {
      if (EqualsIgnoreCase(grant_querier, group)) return true;
    }
  }
  return false;
}

std::vector<Policy> FoldDenyIntoAllow(const Policy& allow, const Policy& deny) {
  std::vector<Policy> out;
  if (allow.owner != deny.owner ||
      !EqualsIgnoreCase(allow.table_name, deny.table_name)) {
    out.push_back(allow);
    return out;
  }
  // Find a shared range attribute present in both policies.
  for (size_t ai = 0; ai < allow.object_conditions.size(); ++ai) {
    const ObjectCondition& a = allow.object_conditions[ai];
    Value a_lo, a_hi;
    if (!a.AsInterval(&a_lo, &a_hi) || a_lo.Compare(a_hi) == 0) continue;
    for (const ObjectCondition& d : deny.object_conditions) {
      if (!EqualsIgnoreCase(d.attr, a.attr)) continue;
      Value d_lo, d_hi;
      if (!d.AsInterval(&d_lo, &d_hi)) continue;
      // No overlap: the deny does not restrict this allow.
      if (d_hi.Compare(a_lo) < 0 || d_lo.Compare(a_hi) > 0) continue;
      // Left remainder [a_lo, d_lo) and right remainder (d_hi, a_hi].
      // Ordered value domains here are integral (time seconds, date days,
      // ints), so open bounds step by one unit.
      auto step = [](const Value& v, int64_t delta) {
        switch (v.type()) {
          case DataType::kInt:
            return Value::Int(v.raw() + delta);
          case DataType::kTime:
            return Value::Time(v.raw() + delta);
          case DataType::kDate:
            return Value::Date(v.raw() + delta);
          default:
            return v;
        }
      };
      if (a_lo.Compare(d_lo) < 0) {
        Policy left = allow;
        left.object_conditions[ai] =
            ObjectCondition::Range(a.attr, a_lo, step(d_lo, -1));
        out.push_back(std::move(left));
      }
      if (d_hi.Compare(a_hi) < 0) {
        Policy right = allow;
        right.object_conditions[ai] =
            ObjectCondition::Range(a.attr, step(d_hi, 1), a_hi);
        out.push_back(std::move(right));
      }
      return out;  // possibly empty: fully denied
    }
  }
  // Structurally incompatible: keep the allow unchanged.
  out.push_back(allow);
  return out;
}

}  // namespace sieve
