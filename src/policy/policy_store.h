#ifndef SIEVE_POLICY_POLICY_STORE_H_
#define SIEVE_POLICY_POLICY_STORE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/database.h"
#include "policy/policy.h"

namespace sieve {

/// One corpus mutation, reported to the registered listener so the
/// middleware can invalidate only the cached rewrites whose dependency keys
/// the mutation touches. All strings are lower-cased at the source.
struct PolicyMutationEvent {
  std::string querier;  ///< grant querier of the policy (user or group)
  std::string purpose;  ///< grant purpose of the policy
  std::string table;    ///< protected relation
  /// True when the mutation flipped the table between unprotected and
  /// protected (first policy added / last removed): that changes the rewrite
  /// of *every* querier touching the table, not just the grant's.
  bool protection_changed = false;
  /// True for corpus-wide changes (reload) where per-key attribution is
  /// meaningless; listeners should invalidate everything.
  bool wholesale = false;
};

/// Persistent policy corpus. Policies live both in memory (the working set
/// used by guard generation and the Δ operator) and in two catalog tables,
/// exactly as Section 5.1 describes:
///   rP  (id, owner, querier, associated_table, purpose, action, inserted_at)
///   rOC (id, policy_id, attr, op, val)
/// Range conditions persist as two rOC rows (>= lo, <= hi); derived values
/// persist their SQL text in `val`.
class PolicyStore {
 public:
  static constexpr const char* kPolicyTable = "rP";
  static constexpr const char* kConditionTable = "rOC";

  explicit PolicyStore(Database* db) : db_(db) {}

  /// Creates rP / rOC (idempotent).
  Status Init();

  /// Assigns an id, persists the policy and keeps it in memory.
  Result<int64_t> AddPolicy(Policy policy);

  /// Drops a policy by id from memory and marks its rows deleted.
  Status RemovePolicy(int64_t id);

  /// Reloads the in-memory corpus from rP / rOC (round-trip check and
  /// recovery path).
  Status LoadFromTables();

  size_t size() const { return policies_.size(); }
  /// Stable container: references remain valid across AddPolicy calls
  /// (the Δ cache and guard partitions rely on this).
  const std::deque<Policy>& policies() const { return policies_; }

  const Policy* FindPolicy(int64_t id) const;

  /// P_QM: policies relevant to query metadata `md` on `table`
  /// (Section 3.2, "Reducing Number of Policies").
  std::vector<const Policy*> FilterByMetadata(const QueryMetadata& md,
                                              const std::string& table,
                                              const GroupResolver* resolver) const;

  /// All policies for an exact (querier, purpose, table) key, without group
  /// expansion (used by guard persistence bookkeeping).
  std::vector<const Policy*> PoliciesForQuerier(const std::string& querier,
                                                const std::string& purpose,
                                                const std::string& table) const;

  /// Distinct (querier, purpose) pairs appearing on `table`.
  std::vector<QueryMetadata> DistinctQueriers(const std::string& table) const;

  /// Monotonic mutation counter, bumped by every corpus change (add,
  /// remove, reload). Together with GuardStore::version it forms the
  /// middleware's policy epoch — kept as a monotonicity watermark and
  /// diagnostic; cache validity itself is per-key (see KeyVersion and the
  /// mutation listener).
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Per-(querier, purpose, table) mutation counter (case-insensitive key):
  /// how many times policies under that exact grant key changed. 0 when the
  /// key was never touched.
  uint64_t KeyVersion(const std::string& querier, const std::string& purpose,
                      const std::string& table) const;

  /// Number of live policies protecting `table` (case-insensitive).
  size_t PolicyCountForTable(const std::string& table) const;

  /// Registers the callback fired synchronously inside every corpus
  /// mutation (AddPolicy, RemovePolicy, LoadFromTables), after the change is
  /// applied and versions are bumped. At most one listener; the middleware
  /// owns it. The callback runs under whatever lock the mutator holds and
  /// must not call back into the store.
  void set_mutation_listener(std::function<void(const PolicyMutationEvent&)> l) {
    listener_ = std::move(l);
  }

 private:
  void BumpVersion() { version_.fetch_add(1, std::memory_order_release); }
  Status PersistPolicy(const Policy& policy);
  void NotifyMutation(const Policy& policy, bool protection_changed);

  Database* db_;
  std::deque<Policy> policies_;
  std::unordered_map<int64_t, size_t> by_id_;
  int64_t next_id_ = 1;
  int64_t next_oc_id_ = 1;
  int64_t logical_clock_ = 1;
  std::atomic<uint64_t> version_{0};
  /// Lower-cased "querier\x1fpurpose\x1ftable" -> mutation count.
  std::unordered_map<std::string, uint64_t> key_versions_;
  /// Lower-cased table -> live policy count (protection transitions).
  std::unordered_map<std::string, size_t> table_policy_counts_;
  std::function<void(const PolicyMutationEvent&)> listener_;
};

}  // namespace sieve

#endif  // SIEVE_POLICY_POLICY_STORE_H_
