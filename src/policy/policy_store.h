#ifndef SIEVE_POLICY_POLICY_STORE_H_
#define SIEVE_POLICY_POLICY_STORE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/database.h"
#include "policy/policy.h"

namespace sieve {

/// Persistent policy corpus. Policies live both in memory (the working set
/// used by guard generation and the Δ operator) and in two catalog tables,
/// exactly as Section 5.1 describes:
///   rP  (id, owner, querier, associated_table, purpose, action, inserted_at)
///   rOC (id, policy_id, attr, op, val)
/// Range conditions persist as two rOC rows (>= lo, <= hi); derived values
/// persist their SQL text in `val`.
class PolicyStore {
 public:
  static constexpr const char* kPolicyTable = "rP";
  static constexpr const char* kConditionTable = "rOC";

  explicit PolicyStore(Database* db) : db_(db) {}

  /// Creates rP / rOC (idempotent).
  Status Init();

  /// Assigns an id, persists the policy and keeps it in memory.
  Result<int64_t> AddPolicy(Policy policy);

  /// Drops a policy by id from memory and marks its rows deleted.
  Status RemovePolicy(int64_t id);

  /// Reloads the in-memory corpus from rP / rOC (round-trip check and
  /// recovery path).
  Status LoadFromTables();

  size_t size() const { return policies_.size(); }
  /// Stable container: references remain valid across AddPolicy calls
  /// (the Δ cache and guard partitions rely on this).
  const std::deque<Policy>& policies() const { return policies_; }

  const Policy* FindPolicy(int64_t id) const;

  /// P_QM: policies relevant to query metadata `md` on `table`
  /// (Section 3.2, "Reducing Number of Policies").
  std::vector<const Policy*> FilterByMetadata(const QueryMetadata& md,
                                              const std::string& table,
                                              const GroupResolver* resolver) const;

  /// All policies for an exact (querier, purpose, table) key, without group
  /// expansion (used by guard persistence bookkeeping).
  std::vector<const Policy*> PoliciesForQuerier(const std::string& querier,
                                                const std::string& purpose,
                                                const std::string& table) const;

  /// Distinct (querier, purpose) pairs appearing on `table`.
  std::vector<QueryMetadata> DistinctQueriers(const std::string& table) const;

  /// Monotonic mutation counter, bumped by every corpus change (add,
  /// remove, reload). Together with GuardStore::version it forms the
  /// middleware's policy epoch that validates cached rewrites.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

 private:
  void BumpVersion() { version_.fetch_add(1, std::memory_order_release); }
  Status PersistPolicy(const Policy& policy);

  Database* db_;
  std::deque<Policy> policies_;
  std::unordered_map<int64_t, size_t> by_id_;
  int64_t next_id_ = 1;
  int64_t next_oc_id_ = 1;
  int64_t logical_clock_ = 1;
  std::atomic<uint64_t> version_{0};
};

}  // namespace sieve

#endif  // SIEVE_POLICY_POLICY_STORE_H_
