#ifndef SIEVE_POLICY_POLICY_H_
#define SIEVE_POLICY_POLICY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/metadata.h"
#include "common/status.h"
#include "common/value.h"
#include "expr/expr.h"

namespace sieve {

/// One object condition oc_c of a policy (Section 3.1):
///  * comparison  — attr op value                    (constant value)
///  * range       — value <= attr <= value2          (two bounds, inclusive
///                   or exclusive per op/op2)
///  * derived     — attr = (SELECT ...)              (expensive operator /
///                   correlated subquery value)
struct ObjectCondition {
  std::string attr;
  CompareOp op = CompareOp::kEq;
  Value value;
  /// When set, the condition is the range op(value) AND op2(value2),
  /// normally value <= attr <= value2.
  std::optional<Value> value2;
  CompareOp op2 = CompareOp::kLe;
  /// When non-empty, the condition is `attr = (subquery)`.
  std::string subquery_sql;

  static ObjectCondition Eq(std::string attr, Value v);
  static ObjectCondition Range(std::string attr, Value lo, Value hi);
  static ObjectCondition Derived(std::string attr, std::string subquery);

  bool is_range() const { return value2.has_value(); }
  bool is_derived() const { return !subquery_sql.empty(); }

  /// Closed-interval view [lo, hi] for guard generation. Equality becomes
  /// [v, v]; one-sided comparisons and derived conditions return false.
  bool AsInterval(Value* lo, Value* hi) const;

  /// Builds the boolean expression for this condition.
  ExprPtr ToExpr() const;

  std::string ToString() const { return ToExpr()->ToSql(); }
};

enum class PolicyAction { kAllow, kDeny };

/// Access control policy p = <OC, QC, AC> (Section 3.1). Querier conditions
/// follow Purpose-BAC: a querier (user or group) plus a purpose. The object
/// conditions always include the owner condition oc_owner.
struct Policy {
  int64_t id = -1;
  std::string table_name;      // relation the policy protects
  Value owner;                 // owner user id (oc_owner value)
  std::string querier;         // user or group the access is granted to
  std::string purpose;         // declared purpose the grant applies to
  PolicyAction action = PolicyAction::kAllow;
  int64_t inserted_at = 0;     // logical timestamp
  std::vector<ObjectCondition> object_conditions;  // includes oc_owner

  /// Conjunction of all object conditions.
  ExprPtr ObjectExpr() const;

  std::string ToString() const;
};

/// Resolves the groups a user belongs to; used for querier-condition
/// matching (policies granted to a group apply to all its members) and for
/// group-owned data.
class GroupResolver {
 public:
  virtual ~GroupResolver() = default;
  virtual std::vector<std::string> GroupsOf(const std::string& user) const = 0;
};

/// GroupResolver backed by an explicit map.
class MapGroupResolver : public GroupResolver {
 public:
  void AddMembership(const std::string& user, const std::string& group) {
    memberships_.emplace_back(user, group);
  }
  std::vector<std::string> GroupsOf(const std::string& user) const override;

 private:
  std::vector<std::pair<std::string, std::string>> memberships_;
};

/// True when `policy` applies to a query with metadata `md`: purposes match
/// (or the policy purpose is "any") and the policy's querier is md.querier
/// or one of md.querier's groups.
bool PolicyMatchesMetadata(const Policy& policy, const QueryMetadata& md,
                           const GroupResolver* resolver);

/// Core of PolicyMatchesMetadata without needing a whole Policy: does a
/// grant addressed to (grant_querier, grant_purpose) apply to a query with
/// metadata `md`? Keyed cache invalidation uses this so "which cached
/// rewrites does this policy affect" shares exact semantics (case-insensitive
/// match, "any" purpose, group membership) with policy filtering at rewrite
/// time.
bool GrantMatchesMetadata(const std::string& grant_querier,
                          const std::string& grant_purpose,
                          const QueryMetadata& md,
                          const GroupResolver* resolver);

/// Folds an overlapping deny policy into an allow policy (Section 3.1's
/// deny-factoring). Both policies must target the same owner and table.
/// Returns the replacement allow policies (0, 1, or 2 of them): the deny's
/// interval on a shared range attribute is cut out of the allow's interval.
/// When the deny cannot be folded structurally, the allow policy is returned
/// unchanged.
std::vector<Policy> FoldDenyIntoAllow(const Policy& allow, const Policy& deny);

}  // namespace sieve

#endif  // SIEVE_POLICY_POLICY_H_
