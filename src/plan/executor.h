#ifndef SIEVE_PLAN_EXECUTOR_H_
#define SIEVE_PLAN_EXECUTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "plan/operators.h"

namespace sieve {

/// Fully materialized query result plus run statistics.
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;
  ExecStats stats;
  double elapsed_ms = 0.0;

  size_t size() const { return rows.size(); }

  /// Rendered table (for examples and debugging).
  std::string ToString(size_t max_rows = 20) const;
};

/// Fans `body` out as `n` workers on ctx->pool: body(i, worker) runs under
/// a private worker context — own ExecStats (merged into ctx->stats at the
/// barrier; partial work is counted even on failure), shared timeout
/// epoch, CTE cache and pool, and a shared cancel flag (inherited from ctx
/// when nested, created for this fan-out otherwise). On failure the cancel
/// flag is flipped so sibling workers stop at their next cooperative
/// check, and the lowest-index failure is returned. Requires ctx->pool;
/// safe to call from inside a pool task (ParallelFor help-runs its batch).
/// This is the one fan-out scaffold shared by pipeline partitioning and
/// the interior operators (UNION children, hash-join probe, hash-aggregate
/// partials).
Status RunWorkers(ExecContext* ctx, size_t n,
                  const std::function<Status(size_t, ExecContext*)>& body);

/// Pulls a plan to completion under the ExecContext's timeout.
class Executor {
 public:
  static Result<ResultSet> Run(Operator* root, ExecContext* ctx);

  /// Drains `root` to completion into *schema / *rows. When
  /// ctx->num_threads > 1, ctx->pool is set and the pipeline supports
  /// partitioning (Operator::CreatePartitions), the partitions run on the
  /// pool under per-worker contexts; per-worker ExecStats are merged into
  /// ctx->stats at the barrier and the per-partition row vectors are
  /// concatenated in partition order, so rows, row order and stat totals
  /// are identical to a serial run. Falls back to a serial pull otherwise
  /// — in which case interior operators (UNION, hash join, hash
  /// aggregate) still parallelize themselves from inside Open using the
  /// same pool (see the operator comments in plan/operators.h).
  static Status Materialize(Operator* root, ExecContext* ctx, Schema* schema,
                            std::vector<Row>* rows);
};

}  // namespace sieve

#endif  // SIEVE_PLAN_EXECUTOR_H_
