#ifndef SIEVE_PLAN_EXECUTOR_H_
#define SIEVE_PLAN_EXECUTOR_H_

#include <string>
#include <vector>

#include "plan/operators.h"

namespace sieve {

/// Fully materialized query result plus run statistics.
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;
  ExecStats stats;
  double elapsed_ms = 0.0;

  size_t size() const { return rows.size(); }

  /// Rendered table (for examples and debugging).
  std::string ToString(size_t max_rows = 20) const;
};

/// Pulls a plan to completion under the ExecContext's timeout.
class Executor {
 public:
  static Result<ResultSet> Run(Operator* root, ExecContext* ctx);

  /// Drains `root` to completion into *schema / *rows. When
  /// ctx->num_threads > 1, ctx->pool is set and the pipeline supports
  /// partitioning (Operator::CreatePartitions), the partitions run on the
  /// pool under per-worker contexts; per-worker ExecStats are merged into
  /// ctx->stats at the barrier and the per-partition row vectors are
  /// concatenated in partition order, so rows, row order and stat totals
  /// are identical to a serial run. Falls back to serial pull otherwise.
  static Status Materialize(Operator* root, ExecContext* ctx, Schema* schema,
                            std::vector<Row>* rows);
};

}  // namespace sieve

#endif  // SIEVE_PLAN_EXECUTOR_H_
