#ifndef SIEVE_PLAN_EXECUTOR_H_
#define SIEVE_PLAN_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "plan/operators.h"

namespace sieve {

/// Fully materialized query result plus run statistics.
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;
  ExecStats stats;
  double elapsed_ms = 0.0;

  size_t size() const { return rows.size(); }

  /// Rendered table (for examples and debugging).
  std::string ToString(size_t max_rows = 20) const;
};

/// Fans `body` out as `n` workers on ctx->pool: body(i, worker) runs under
/// a private worker context — own ExecStats (merged into ctx->stats at the
/// barrier; partial work is counted even on failure), shared timeout
/// epoch, CTE cache and pool, and a shared cancel flag (inherited from ctx
/// when nested, created for this fan-out otherwise). On failure the cancel
/// flag is flipped so sibling workers stop at their next cooperative
/// check, and the lowest-index failure is returned. Requires ctx->pool;
/// safe to call from inside a pool task (ParallelFor help-runs its batch).
/// This is the one fan-out scaffold shared by pipeline partitioning and
/// the interior operators (UNION children, hash-join probe, hash-aggregate
/// partials).
Status RunWorkers(ExecContext* ctx, size_t n,
                  const std::function<Status(size_t, ExecContext*)>& body);

/// Number of partition morsels a parallel drain should split `root`
/// into: several per worker thread (capped so each morsel covers at least
/// ~a batch of rows), handed out dynamically through ThreadPool::
/// ParallelFor's shared atomic claim counter. A skewed guard branch or a
/// highly selective filter then occupies one thread for one morsel at a
/// time instead of pinning a whole static 1/num_threads slice to it while
/// the other workers idle. Sizing uses Operator::EstimatedPartitionRows;
/// a subtree that cannot size itself before Open (a not-yet-materialized
/// CTE) gets one static slice per worker, and tiny inputs collapse to a
/// single morsel instead of paying dozens of near-empty clone Opens.
/// Morsels are contiguous slices stitched back in source order, so rows,
/// row order and ExecStats stay identical to a serial run at any count.
size_t PlanPartitionCount(const Operator& root, const ExecContext& ctx);

/// Incremental (pull-based) execution of one planned query: rows are
/// emitted in chunks through Next instead of materializing the whole
/// result up front. This is what backs the session API's ResultCursor.
///
/// Serial execution streams: each Next call pulls at most `max_rows` rows
/// from the operator tree, so the peak footprint is one batch (plus
/// whatever blocking operators buffer internally). Partition-parallel
/// execution reuses the partition machinery wholesale: when the pipeline
/// supports Operator::CreatePartitions, Open drains all partitions on the
/// pool (exactly like Executor::Materialize) and Next serves slices of the
/// buffer — rows, row order and ExecStats totals stay identical to a
/// serial drain either way.
///
/// The timeout clock starts at Open and keeps running between Next calls;
/// a cursor held open counts against the query's budget. Stats() totals
/// (including rows_output) are final once the cursor is exhausted.
/// Single-threaded use only; not movable (the ExecContext points into the
/// cursor's own counters).
class QueryCursor {
 public:
  /// Takes ownership of the plan root; `base` supplies catalog/hooks/
  /// metadata/timeout/parallelism (its `stats` pointer is ignored — the
  /// cursor accumulates into its own counters). Opens the plan: blocking
  /// work (CTE materialization, hash builds, parallel partition drains)
  /// happens here.
  static Result<std::unique_ptr<QueryCursor>> Open(OperatorPtr root,
                                                   const ExecContext& base);

  QueryCursor(const QueryCursor&) = delete;
  QueryCursor& operator=(const QueryCursor&) = delete;

  const Schema& schema() const { return schema_; }

  /// Appends up to `max_rows` rows to *batch (which is not cleared).
  /// Returns true when rows were appended, false when the cursor is
  /// exhausted. Execution errors (timeout, failure) are sticky;
  /// `max_rows` must be > 0 (rejected non-stickily otherwise, since a
  /// zero batch would be indistinguishable from exhaustion).
  Result<bool> Next(std::vector<Row>* batch, size_t max_rows);

  /// Pulls everything remaining into a ResultSet whose stats/elapsed match
  /// a one-shot Executor::Run of the same plan.
  Result<ResultSet> Drain();

  /// Abandons the rest of the stream: the cursor reports exhaustion from
  /// now on and stats() totals freeze at what was actually emitted.
  void Abandon();

  bool exhausted() const { return done_; }
  /// Counter totals so far; final (and equal to the one-shot run's stats)
  /// once exhausted() is true.
  const ExecStats& stats() const { return stats_; }
  double elapsed_ms() const;

  /// Shrinks the remaining time budget so the cursor times out at most
  /// `seconds_from_now` from this call (measured on the cursor's shared
  /// timer epoch). Only ever tightens: a budget longer than what is
  /// already configured is ignored. Non-positive values are ignored.
  /// Backs the per-FETCH wire deadline.
  void TightenDeadline(double seconds_from_now);

 private:
  QueryCursor() = default;

  OperatorPtr root_;
  ExecContext ctx_;
  ExecStats stats_;
  Schema schema_;
  Timer timer_;
  RowBatch fetch_batch_;  // serial path: rows pulled but not yet served
  size_t fetch_pos_ = 0;
  std::vector<Row> buffered_;  // partition-parallel path
  size_t buffered_pos_ = 0;
  bool partitioned_ = false;
  bool done_ = false;
  bool finalized_ = false;  // rows_output folded into stats_ exactly once
  uint64_t rows_emitted_ = 0;
  Status error_ = Status::OK();  // sticky first failure

  void Finalize();
};

/// Pulls a plan to completion under the ExecContext's timeout.
class Executor {
 public:
  static Result<ResultSet> Run(Operator* root, ExecContext* ctx);

  /// Drains `root` to completion into *schema / *rows. When
  /// ctx->num_threads > 1, ctx->pool is set and the pipeline supports
  /// partitioning (Operator::CreatePartitions), the partitions run on the
  /// pool under per-worker contexts; per-worker ExecStats are merged into
  /// ctx->stats at the barrier and the per-partition row vectors are
  /// concatenated in partition order, so rows, row order and stat totals
  /// are identical to a serial run. Falls back to a serial pull otherwise
  /// — in which case interior operators (UNION, hash join, hash
  /// aggregate) still parallelize themselves from inside Open using the
  /// same pool (see the operator comments in plan/operators.h).
  static Status Materialize(Operator* root, ExecContext* ctx, Schema* schema,
                            std::vector<Row>* rows);
};

}  // namespace sieve

#endif  // SIEVE_PLAN_EXECUTOR_H_
