#ifndef SIEVE_PLAN_EXEC_CONTEXT_H_
#define SIEVE_PLAN_EXEC_CONTEXT_H_

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "common/exec_stats.h"
#include "common/metadata.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "expr/eval.h"
#include "storage/catalog.h"

namespace sieve {

/// Fully evaluated intermediate result (CTE bodies, subquery scans).
struct MaterializedResult {
  Schema schema;
  std::vector<Row> rows;
};

/// Per-query execution state threaded through every operator: catalog and
/// engine hooks, query metadata (for the Δ UDF), stat counters, the timeout
/// budget (the paper's experiments use a 30 s timeout, reported as "TO"),
/// the cache of materialized CTEs, and the partition-parallelism knobs.
///
/// Parallel execution fans one pipeline out into `num_threads` partitions,
/// each driven under its own worker ExecContext (own ExecStats, shared
/// timer epoch, shared cancel flag); the workers' stats are merged back at
/// the barrier, so the counters here are never mutated concurrently.
struct ExecContext {
  Catalog* catalog = nullptr;
  EngineHooks* hooks = nullptr;
  const QueryMetadata* metadata = nullptr;
  ExecStats* stats = nullptr;
  double timeout_seconds = 0.0;  // 0 disables the timeout
  Timer timer;
  std::map<std::string, MaterializedResult> ctes;

  /// Partition parallelism: 1 (the default) is today's serial behavior.
  /// When > 1, `pool` must point at a live thread pool.
  int num_threads = 1;
  ThreadPool* pool = nullptr;
  /// Set when a sibling partition failed; checked cooperatively so the
  /// surviving workers abandon their scans instead of running to the end.
  std::atomic<bool>* cancel = nullptr;

  Status CheckTimeout() const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return Status::Timeout("query cancelled: a sibling partition failed");
    }
    if (timeout_seconds > 0.0 && timer.ElapsedSeconds() > timeout_seconds) {
      return Status::Timeout("query exceeded timeout");
    }
    return Status::OK();
  }

  /// A context for one parallel worker: shares the read-only engine state
  /// and the timeout epoch, but gets its own stat counters so accumulation
  /// is race-free. Workers never nest parallelism (num_threads = 1).
  ExecContext MakeWorkerContext(ExecStats* worker_stats,
                                std::atomic<bool>* cancel_flag) const {
    ExecContext worker;
    worker.catalog = catalog;
    worker.hooks = hooks;
    worker.metadata = metadata;
    worker.stats = worker_stats;
    worker.timeout_seconds = timeout_seconds;
    worker.timer = timer;  // same epoch: the deadline is shared
    worker.cancel = cancel_flag;
    return worker;
  }
};

}  // namespace sieve

#endif  // SIEVE_PLAN_EXEC_CONTEXT_H_
