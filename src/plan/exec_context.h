#ifndef SIEVE_PLAN_EXEC_CONTEXT_H_
#define SIEVE_PLAN_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/exec_stats.h"
#include "common/fault_injection.h"
#include "common/metadata.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "expr/eval.h"
#include "plan/row_batch.h"
#include "storage/catalog.h"

namespace sieve {

/// Fully evaluated intermediate result (CTE bodies, subquery scans).
struct MaterializedResult {
  Schema schema;
  std::vector<Row> rows;
};

/// One materialize-once slot: the first caller's producer runs under
/// std::call_once; the outcome — result or error — is cached for every
/// later caller (a failed production fails all consumers, matching the
/// serial behavior of one failing materialization failing the query).
/// Concurrent callers block until the producer finishes; the produced
/// result is immutable and address-stable afterwards, so readers need no
/// further locking. Because a blocked caller does not help run pool
/// tasks, producers must not depend on their own slot — the two users
/// (CTE keys, which form a DAG by construction, and per-CreatePartitions
/// shared scans) cannot cycle.
struct OnceMaterialized {
  using Producer = std::function<Status(MaterializedResult*)>;

  Result<const MaterializedResult*> GetOrProduce(const Producer& produce) {
    std::call_once(once, [this, &produce] { status = produce(&result); });
    SIEVE_RETURN_IF_ERROR(status);
    return static_cast<const MaterializedResult*>(&result);
  }

  std::once_flag once;
  Status status = Status::OK();
  MaterializedResult result;
};

/// Thread-safe materialize-once cache of named CTE results, shared by the
/// root ExecContext and every worker context of one query.
///
/// Threading contract: GetOrMaterialize may be called concurrently from
/// any number of workers. The producer for a given key runs exactly once
/// across the whole query; concurrent callers for the same key block
/// until it finishes, callers for different keys proceed independently
/// (per-key OnceMaterialized slots, see above).
class CteCache {
 public:
  using Producer = OnceMaterialized::Producer;

  /// Returns the result for `key`, invoking `produce` at most once per key
  /// across all threads of the query.
  Result<const MaterializedResult*> GetOrMaterialize(const std::string& key,
                                                     const Producer& produce) {
    OnceMaterialized* entry;
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::unique_ptr<OnceMaterialized>& slot = entries_[key];
      if (slot == nullptr) slot = std::make_unique<OnceMaterialized>();
      entry = slot.get();
    }
    return entry->GetOrProduce(produce);
  }

 private:
  std::mutex mu_;
  // unique_ptr entries: addresses stay stable while the map grows.
  std::map<std::string, std::unique_ptr<OnceMaterialized>> entries_;
};

/// Per-query execution state threaded through every operator: catalog and
/// engine hooks, query metadata (for the Δ UDF), stat counters, the timeout
/// budget (the paper's experiments use a 30 s timeout, reported as "TO"),
/// the shared cache of materialized CTEs, and the partition-parallelism
/// knobs.
///
/// Parallel execution fans work out at two levels, both sharing one
/// ThreadPool: Executor::Materialize splits partitionable pipelines into
/// `num_threads` partitions, and interior operators (UNION children, the
/// hash-join probe side, hash-aggregate partials) fan out again from
/// inside Open. Each unit of parallel work runs under its own worker
/// ExecContext (own ExecStats, shared timer epoch, shared cancel flag,
/// shared CTE cache); the workers' stats are merged back at the barrier,
/// so the counters here are never mutated concurrently.
struct ExecContext {
  Catalog* catalog = nullptr;
  EngineHooks* hooks = nullptr;
  const QueryMetadata* metadata = nullptr;
  ExecStats* stats = nullptr;
  double timeout_seconds = 0.0;  // 0 disables the timeout
  Timer timer;
  /// Materialized CTE results, shared across all worker contexts of the
  /// query so each CTE body runs (and is counted in ExecStats) exactly
  /// once no matter which worker first references it. Created once at the
  /// query root (Database::ExecuteStmt, or lazily by the first serial
  /// Executor::Materialize / materialized-scan Open on bare contexts);
  /// worker contexts share the root's cache, never allocate their own —
  /// a fan-out therefore requires the cache to exist already, which
  /// every pool-carrying context guarantees.
  std::shared_ptr<CteCache> ctes;

  /// Rows per execution batch (Operator::NextBatch). The default is the
  /// vectorized fast path; 1 reproduces the legacy row-at-a-time behavior
  /// (same rows, order and ExecStats at every value — only the
  /// amortization changes); 0 selects an adaptive per-operator size from
  /// the row width (see EffectiveBatchSize). Never negative.
  int batch_size = static_cast<int>(kDefaultBatchSize);

  /// Partition parallelism: 1 (the default) is today's serial behavior.
  /// When > 1, `pool` must point at a live thread pool, and partitionable
  /// pipelines split into several morsels per worker that the pool's
  /// claim queue hands out dynamically (see Executor::Materialize).
  int num_threads = 1;
  ThreadPool* pool = nullptr;
  /// Set when a sibling partition failed; checked cooperatively so the
  /// surviving workers abandon their scans instead of running to the end.
  std::atomic<bool>* cancel = nullptr;

  Status CheckTimeout() const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return Status::Timeout("query cancelled: a sibling partition failed");
    }
    // exec.stall slows the query down (1ms per check) so deadline tests can
    // force a timeout deterministically; exec.interrupt simulates an engine
    // failure surfacing mid-execution (including mid-cursor).
    if (SIEVE_FAULT_POINT("exec.stall")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (SIEVE_FAULT_POINT("exec.interrupt")) {
      return SIEVE_INJECT_FAULT("exec.interrupt");
    }
    if (timeout_seconds > 0.0 && timer.ElapsedSeconds() > timeout_seconds) {
      return Status::Timeout("query exceeded timeout");
    }
    return Status::OK();
  }

  /// A context for one parallel worker: shares the read-only engine state,
  /// the timeout epoch, the CTE cache and the thread pool, but gets its own
  /// stat counters so accumulation is race-free. Keeping the pool lets
  /// nested fan-out compose (a UNION child whose pipeline partitions, a CTE
  /// body materialized from inside a worker); ThreadPool::ParallelFor's
  /// help-running makes that reuse deadlock-free.
  ExecContext MakeWorkerContext(ExecStats* worker_stats,
                                std::atomic<bool>* cancel_flag) const {
    ExecContext worker;
    worker.catalog = catalog;
    worker.hooks = hooks;
    worker.metadata = metadata;
    worker.stats = worker_stats;
    worker.timeout_seconds = timeout_seconds;
    worker.timer = timer;  // same epoch: the deadline is shared
    worker.ctes = ctes;    // shared: CTEs materialize once per query
    worker.batch_size = batch_size;
    worker.num_threads = num_threads;
    worker.pool = pool;
    worker.cancel = cancel_flag;
    return worker;
  }
};

}  // namespace sieve

#endif  // SIEVE_PLAN_EXEC_CONTEXT_H_
