#ifndef SIEVE_PLAN_EXEC_CONTEXT_H_
#define SIEVE_PLAN_EXEC_CONTEXT_H_

#include <map>
#include <string>
#include <vector>

#include "common/exec_stats.h"
#include "common/metadata.h"
#include "common/status.h"
#include "common/timer.h"
#include "expr/eval.h"
#include "storage/catalog.h"

namespace sieve {

/// Fully evaluated intermediate result (CTE bodies, subquery scans).
struct MaterializedResult {
  Schema schema;
  std::vector<Row> rows;
};

/// Per-query execution state threaded through every operator: catalog and
/// engine hooks, query metadata (for the Δ UDF), stat counters, the timeout
/// budget (the paper's experiments use a 30 s timeout, reported as "TO"),
/// and the cache of materialized CTEs.
struct ExecContext {
  Catalog* catalog = nullptr;
  EngineHooks* hooks = nullptr;
  const QueryMetadata* metadata = nullptr;
  ExecStats* stats = nullptr;
  double timeout_seconds = 0.0;  // 0 disables the timeout
  Timer timer;
  std::map<std::string, MaterializedResult> ctes;

  Status CheckTimeout() const {
    if (timeout_seconds > 0.0 && timer.ElapsedSeconds() > timeout_seconds) {
      return Status::Timeout("query exceeded timeout");
    }
    return Status::OK();
  }
};

}  // namespace sieve

#endif  // SIEVE_PLAN_EXEC_CONTEXT_H_
