#include "plan/operators.h"

#include "common/string_util.h"

namespace sieve {

namespace {

// Collects row ids matching `range` through the index on range.column.
Result<std::vector<RowId>> ProbeIndex(const TableEntry* entry,
                                      const IndexRange& range) {
  const Index* index = entry->indexes.Find(range.column);
  if (index == nullptr) {
    return Status::ExecutionError("no index on column " + range.column +
                                  " of table " + entry->table->name());
  }
  return index->tree().LookupRange(range.lo, range.lo_inclusive, range.hi,
                                   range.hi_inclusive);
}

std::string RangeToString(const IndexRange& r) {
  std::string out = r.column + "[";
  out += r.lo.has_value() ? (r.lo_inclusive ? "[" : "(") + r.lo->ToString()
                          : std::string("(-inf");
  out += " .. ";
  out += r.hi.has_value() ? r.hi->ToString() + (r.hi_inclusive ? "]" : ")")
                          : std::string("+inf)");
  out += "]";
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SeqScanOperator
// ---------------------------------------------------------------------------

SeqScanOperator::SeqScanOperator(const TableEntry* entry, std::string qualifier)
    : entry_(entry), qualifier_(std::move(qualifier)) {
  schema_ = QualifySchema(entry_->table->schema(), qualifier_);
}

Status SeqScanOperator::Open(ExecContext* ctx) {
  (void)ctx;
  next_id_ = 0;
  return Status::OK();
}

Result<bool> SeqScanOperator::Next(ExecContext* ctx, Row* out) {
  const Table& table = *entry_->table;
  while (static_cast<size_t>(next_id_) < table.num_slots()) {
    RowId id = next_id_++;
    if ((id & 4095) == 0) {
      SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    }
    if (!table.IsLive(id)) continue;
    *out = table.Get(id);
    if (ctx->stats != nullptr) ++ctx->stats->tuples_scanned;
    return true;
  }
  return false;
}

std::string SeqScanOperator::name() const {
  return "SeqScan(" + entry_->table->name() +
         (qualifier_.empty() ? "" : " AS " + qualifier_) + ")";
}

// ---------------------------------------------------------------------------
// IndexRangeScanOperator
// ---------------------------------------------------------------------------

IndexRangeScanOperator::IndexRangeScanOperator(const TableEntry* entry,
                                               std::string qualifier,
                                               IndexRange range)
    : entry_(entry), qualifier_(std::move(qualifier)), range_(std::move(range)) {
  schema_ = QualifySchema(entry_->table->schema(), qualifier_);
}

Status IndexRangeScanOperator::Open(ExecContext* ctx) {
  (void)ctx;
  pos_ = 0;
  SIEVE_ASSIGN_OR_RETURN(row_ids_, ProbeIndex(entry_, range_));
  return Status::OK();
}

Result<bool> IndexRangeScanOperator::Next(ExecContext* ctx, Row* out) {
  const Table& table = *entry_->table;
  while (pos_ < row_ids_.size()) {
    if ((pos_ & 4095) == 0) {
      SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    }
    RowId id = row_ids_[pos_++];
    if (!table.IsLive(id)) continue;
    *out = table.Get(id);
    if (ctx->stats != nullptr) ++ctx->stats->index_probe_rows;
    return true;
  }
  return false;
}

std::string IndexRangeScanOperator::name() const {
  return "IndexRangeScan(" + entry_->table->name() + " " +
         RangeToString(range_) + ")";
}

// ---------------------------------------------------------------------------
// IndexUnionBitmapScanOperator
// ---------------------------------------------------------------------------

IndexUnionBitmapScanOperator::IndexUnionBitmapScanOperator(
    const TableEntry* entry, std::string qualifier,
    std::vector<IndexRange> ranges)
    : entry_(entry),
      qualifier_(std::move(qualifier)),
      ranges_(std::move(ranges)) {
  schema_ = QualifySchema(entry_->table->schema(), qualifier_);
}

Status IndexUnionBitmapScanOperator::Open(ExecContext* ctx) {
  (void)ctx;
  pos_ = 0;
  Bitmap bitmap(entry_->table->num_slots());
  for (const IndexRange& range : ranges_) {
    SIEVE_ASSIGN_OR_RETURN(std::vector<RowId> ids, ProbeIndex(entry_, range));
    for (RowId id : ids) bitmap.Set(id);
  }
  row_ids_ = bitmap.ToVector();
  return Status::OK();
}

Result<bool> IndexUnionBitmapScanOperator::Next(ExecContext* ctx, Row* out) {
  const Table& table = *entry_->table;
  while (pos_ < row_ids_.size()) {
    if ((pos_ & 4095) == 0) {
      SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    }
    RowId id = row_ids_[pos_++];
    if (!table.IsLive(id)) continue;
    *out = table.Get(id);
    if (ctx->stats != nullptr) ++ctx->stats->index_probe_rows;
    return true;
  }
  return false;
}

std::string IndexUnionBitmapScanOperator::name() const {
  std::vector<std::string> parts;
  parts.reserve(ranges_.size());
  for (const auto& r : ranges_) parts.push_back(RangeToString(r));
  return "IndexUnionBitmapScan(" + entry_->table->name() + " " +
         Join(parts, " OR ") + ")";
}

}  // namespace sieve
