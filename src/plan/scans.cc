#include <algorithm>

#include "common/string_util.h"
#include "plan/operators.h"

namespace sieve {

namespace {

// Collects row ids matching `range` through the index on range.column.
Result<std::vector<RowId>> ProbeIndex(const TableEntry* entry,
                                      const IndexRange& range) {
  const Index* index = entry->indexes.Find(range.column);
  if (index == nullptr) {
    return Status::ExecutionError("no index on column " + range.column +
                                  " of table " + entry->table->name());
  }
  return index->tree().LookupRange(range.lo, range.lo_inclusive, range.hi,
                                   range.hi_inclusive);
}

std::string RangeToString(const IndexRange& r) {
  std::string out = r.column + "[";
  out += r.lo.has_value() ? (r.lo_inclusive ? "[" : "(") + r.lo->ToString()
                          : std::string("(-inf");
  out += " .. ";
  out += r.hi.has_value() ? r.hi->ToString() + (r.hi_inclusive ? "]" : ")")
                          : std::string("+inf)");
  out += "]";
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SeqScanOperator
// ---------------------------------------------------------------------------

SeqScanOperator::SeqScanOperator(const TableEntry* entry, std::string qualifier)
    : entry_(entry), qualifier_(std::move(qualifier)) {
  schema_ = QualifySchema(entry_->table->schema(), qualifier_);
}

SeqScanOperator::SeqScanOperator(const TableEntry* entry, std::string qualifier,
                                 RowId begin_slot, RowId end_slot)
    : entry_(entry),
      qualifier_(std::move(qualifier)),
      begin_slot_(begin_slot),
      end_slot_(end_slot) {
  schema_ = QualifySchema(entry_->table->schema(), qualifier_);
}

Status SeqScanOperator::Open(ExecContext* ctx) {
  (void)ctx;
  next_id_ = begin_slot_;
  scan_end_ = end_slot_ >= 0 ? end_slot_
                             : static_cast<RowId>(entry_->table->num_slots());
  ticks_ = 0;
  return Status::OK();
}

Result<bool> SeqScanOperator::Next(ExecContext* ctx, Row* out) {
  const Table& table = *entry_->table;
  while (next_id_ < scan_end_) {
    if ((ticks_++ & 4095) == 0) {
      SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    }
    RowId id = next_id_++;
    if (!table.IsLive(id)) continue;
    *out = table.Get(id);
    if (ctx->stats != nullptr) ++ctx->stats->tuples_scanned;
    return true;
  }
  return false;
}

Result<bool> SeqScanOperator::NextBatch(ExecContext* ctx, RowBatch* out) {
  out->clear();
  SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
  const Table& table = *entry_->table;
  uint64_t scanned = 0;
  while (next_id_ < scan_end_ && !out->full()) {
    RowId id = next_id_++;
    if (!table.IsLive(id)) continue;
    // Views into the base table: its rows are stable for the whole query,
    // so string cells are never copied on the scan path.
    out->AppendExternalRow(table.Get(id));
    ++scanned;
  }
  if (ctx->stats != nullptr) ctx->stats->tuples_scanned += scanned;
  return !out->empty();
}

bool SeqScanOperator::CreatePartitions(size_t num_parts,
                                       std::vector<OperatorPtr>* out) const {
  size_t slots = entry_->table->num_slots();
  for (size_t i = 0; i < num_parts; ++i) {
    size_t begin = 0, end = 0;
    PartitionSlice(slots, i, num_parts, &begin, &end);
    out->push_back(OperatorPtr(new SeqScanOperator(
        entry_, qualifier_, static_cast<RowId>(begin),
        static_cast<RowId>(end))));
  }
  return true;
}

size_t SeqScanOperator::EstimatedPartitionRows() const {
  return entry_->table->num_slots();
}

std::string SeqScanOperator::name() const {
  return "SeqScan(" + entry_->table->name() +
         (qualifier_.empty() ? "" : " AS " + qualifier_) + ")";
}

// ---------------------------------------------------------------------------
// RowIdListScanOperator
// ---------------------------------------------------------------------------

RowIdListScanOperator::RowIdListScanOperator(
    const TableEntry* entry, std::string qualifier,
    std::shared_ptr<SharedIndexProbe> shared, size_t part, size_t num_parts)
    : entry_(entry),
      qualifier_(std::move(qualifier)),
      shared_(std::move(shared)),
      part_(part),
      num_parts_(num_parts) {
  schema_ = QualifySchema(entry_->table->schema(), qualifier_);
}

Status RowIdListScanOperator::Open(ExecContext* ctx) {
  (void)ctx;
  ticks_ = 0;
  if (shared_ != nullptr) {
    // Partition clone: the first opener runs the probe, everyone slices it.
    std::call_once(shared_->once, [this] {
      Result<std::vector<RowId>> probed = Probe();
      if (probed.ok()) {
        shared_->row_ids = std::move(probed).value();
      } else {
        shared_->status = probed.status();
      }
    });
    SIEVE_RETURN_IF_ERROR(shared_->status);
    ids_ = &shared_->row_ids;
    PartitionSlice(shared_->row_ids.size(), part_, num_parts_, &pos_, &end_);
    return Status::OK();
  }
  SIEVE_ASSIGN_OR_RETURN(row_ids_, Probe());
  ids_ = &row_ids_;
  pos_ = 0;
  end_ = row_ids_.size();
  return Status::OK();
}

Result<bool> RowIdListScanOperator::Next(ExecContext* ctx, Row* out) {
  const Table& table = *entry_->table;
  while (pos_ < end_) {
    if ((ticks_++ & 4095) == 0) {
      SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    }
    RowId id = (*ids_)[pos_++];
    if (!table.IsLive(id)) continue;
    *out = table.Get(id);
    if (ctx->stats != nullptr) ++ctx->stats->index_probe_rows;
    return true;
  }
  return false;
}

Result<bool> RowIdListScanOperator::NextBatch(ExecContext* ctx,
                                              RowBatch* out) {
  out->clear();
  SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
  const Table& table = *entry_->table;
  uint64_t fetched = 0;
  while (pos_ < end_ && !out->full()) {
    RowId id = (*ids_)[pos_++];
    if (!table.IsLive(id)) continue;
    out->AppendExternalRow(table.Get(id));
    ++fetched;
  }
  if (ctx->stats != nullptr) ctx->stats->index_probe_rows += fetched;
  return !out->empty();
}

size_t RowIdListScanOperator::EstimatedPartitionRows() const {
  return entry_->table->num_slots();
}

// ---------------------------------------------------------------------------
// IndexRangeScanOperator
// ---------------------------------------------------------------------------

IndexRangeScanOperator::IndexRangeScanOperator(const TableEntry* entry,
                                               std::string qualifier,
                                               IndexRange range)
    : RowIdListScanOperator(entry, std::move(qualifier), nullptr, 0, 1),
      range_(std::move(range)) {}

IndexRangeScanOperator::IndexRangeScanOperator(
    const TableEntry* entry, std::string qualifier, IndexRange range,
    std::shared_ptr<SharedIndexProbe> shared, size_t part, size_t num_parts)
    : RowIdListScanOperator(entry, std::move(qualifier), std::move(shared),
                            part, num_parts),
      range_(std::move(range)) {}

Result<std::vector<RowId>> IndexRangeScanOperator::Probe() const {
  return ProbeIndex(entry_, range_);
}

bool IndexRangeScanOperator::CreatePartitions(
    size_t num_parts, std::vector<OperatorPtr>* out) const {
  auto shared = std::make_shared<SharedIndexProbe>();
  for (size_t i = 0; i < num_parts; ++i) {
    out->push_back(OperatorPtr(new IndexRangeScanOperator(
        entry_, qualifier_, range_, shared, i, num_parts)));
  }
  return true;
}

std::string IndexRangeScanOperator::name() const {
  return "IndexRangeScan(" + entry_->table->name() + " " +
         RangeToString(range_) + ")";
}

// ---------------------------------------------------------------------------
// IndexUnionBitmapScanOperator
// ---------------------------------------------------------------------------

IndexUnionBitmapScanOperator::IndexUnionBitmapScanOperator(
    const TableEntry* entry, std::string qualifier,
    std::vector<IndexRange> ranges)
    : RowIdListScanOperator(entry, std::move(qualifier), nullptr, 0, 1),
      ranges_(std::move(ranges)) {}

IndexUnionBitmapScanOperator::IndexUnionBitmapScanOperator(
    const TableEntry* entry, std::string qualifier,
    std::vector<IndexRange> ranges, std::shared_ptr<SharedIndexProbe> shared,
    size_t part, size_t num_parts)
    : RowIdListScanOperator(entry, std::move(qualifier), std::move(shared),
                            part, num_parts),
      ranges_(std::move(ranges)) {}

Result<std::vector<RowId>> IndexUnionBitmapScanOperator::Probe() const {
  Bitmap bitmap(entry_->table->num_slots());
  for (const IndexRange& range : ranges_) {
    SIEVE_ASSIGN_OR_RETURN(std::vector<RowId> ids, ProbeIndex(entry_, range));
    for (RowId id : ids) bitmap.Set(id);
  }
  return bitmap.ToVector();
}

bool IndexUnionBitmapScanOperator::CreatePartitions(
    size_t num_parts, std::vector<OperatorPtr>* out) const {
  auto shared = std::make_shared<SharedIndexProbe>();
  for (size_t i = 0; i < num_parts; ++i) {
    out->push_back(OperatorPtr(new IndexUnionBitmapScanOperator(
        entry_, qualifier_, ranges_, shared, i, num_parts)));
  }
  return true;
}

std::string IndexUnionBitmapScanOperator::name() const {
  std::vector<std::string> parts;
  parts.reserve(ranges_.size());
  for (const auto& r : ranges_) parts.push_back(RangeToString(r));
  return "IndexUnionBitmapScan(" + entry_->table->name() + " " +
         Join(parts, " OR ") + ")";
}

}  // namespace sieve
