#ifndef SIEVE_PLAN_ROW_BATCH_H_
#define SIEVE_PLAN_ROW_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string_view>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "storage/table.h"

namespace sieve {

/// Default rows per batch for batch-at-a-time execution. Exposed as the
/// `SieveOptions::batch_size` knob; 1 reproduces the legacy row-at-a-time
/// behavior (every NextBatch call degenerates to one Next call), 0 selects
/// an adaptive size (see EffectiveBatchSize).
inline constexpr size_t kDefaultBatchSize = 1024;

/// Rows per batch for a configured batch_size knob: positive values pass
/// through; 0 picks an adaptive size from the row width, targeting a
/// fixed cell-payload footprint per batch so narrow rows run at the full
/// default and wide rows shrink toward cache-resident batches
/// (BENCH_fig6.json shows batch 64 beating 1024 on some shapes). Results
/// are identical at every size — only the amortization changes.
inline size_t EffectiveBatchSize(int configured, size_t num_columns) {
  if (configured > 0) return static_cast<size_t>(configured);
  constexpr size_t kTargetBytes = 48 << 10;
  constexpr size_t kBytesPerCell = 24;  // null byte + payload + slack
  size_t width = num_columns == 0 ? 1 : num_columns;
  size_t rows = kTargetBytes / (kBytesPerCell * width);
  if (rows < 64) return 64;
  if (rows > kDefaultBatchSize) return kDefaultBatchSize;
  return rows;
}

/// Reusable columnar buffer of rows — the unit of work of the
/// batch-at-a-time executor (Operator::NextBatch). Cells are stored as
/// typed column vectors: a null byte array plus one contiguous primitive
/// array per column (int64 payloads for int/bool/time/date, doubles,
/// string_views), all carved from a per-batch bump-allocator Arena. The
/// guard-predicate kernels in Evaluator::EvalPredicateBatch run directly
/// over these arrays as tight branch-free loops the auto-vectorizer can
/// SIMD, instead of walking Value variants cell by cell.
///
/// A selection vector replaces row copying on the filter path: dropping
/// rows narrows an index list over the physical rows (NarrowToPassing),
/// and whole batches change hands by SwapWith — the arena, string pool
/// and column arrays travel with the batch, so ownership is never split.
///
/// Column typing is inferred per fill: the first non-null cell fixes a
/// column's runtime type; a later cell of a different type demotes the
/// column to a generic Value vector (kernels then take the general
/// cell-view path, keeping Value::Compare semantics exactly).
///
/// String ownership has two modes, chosen per appended row:
///   - AppendExternalRow stores views into the source row's cells. Callers
///     use it only for provably stable storage: base-table rows and
///     materialized results live for the whole query, and buffered
///     operator outputs outlive every batch served from them.
///   - PushRow steals the row's string cells into a per-batch pool (a
///     deque of Values, address-stable, slots recycled across refills), so
///     the batch owns what it references. Used whenever the source row
///     dies before the batch does (join outputs, adapter-pulled rows).
///
/// clear() rewinds the arena and the pool without releasing memory, so a
/// scan that refills the same batch reuses every allocation. Batches are
/// single-threaded like the operator that fills them; each parallel worker
/// drives its own batch.
class RowBatch {
 public:
  /// One column's payload arrays; valid entries are gated by `nulls` and,
  /// when `generic` is set, the payloads live in `cells` instead. Exposed
  /// read-only to the predicate kernels.
  struct Column {
    DataType type = DataType::kNull;  // runtime type; kNull until a non-null cell
    bool generic = false;             // demoted: read `cells`, not the arrays
    uint8_t* nulls = nullptr;         // 1 = NULL, physical-row indexed
    int64_t* i64 = nullptr;           // int/bool/time/date payloads
    double* f64 = nullptr;            // double payloads
    std::string_view* str = nullptr;  // string payloads
    std::vector<Value> cells;         // demoted cells (physical-row indexed)
  };

  explicit RowBatch(size_t capacity = kDefaultBatchSize)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  RowBatch(RowBatch&&) = default;
  RowBatch& operator=(RowBatch&&) = default;
  RowBatch(const RowBatch&) = delete;
  RowBatch& operator=(const RowBatch&) = delete;

  size_t capacity() const { return capacity_; }
  /// Active rows (after any selection); what consumers iterate.
  size_t size() const { return has_sel_ ? sel_size_ : phys_rows_; }
  /// Physical rows appended since the last clear().
  size_t phys_rows() const { return phys_rows_; }
  bool empty() const { return size() == 0; }
  bool full() const { return phys_rows_ >= capacity_; }

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t c) const { return columns_[c]; }

  /// Selection vector (physical indices of the active rows) or nullptr
  /// when the batch is dense.
  const uint32_t* selection() const { return has_sel_ ? sel_ : nullptr; }

  /// Physical index of active row `k`.
  uint32_t RowIndexAt(size_t k) const {
    return has_sel_ ? sel_[k] : static_cast<uint32_t>(k);
  }

  /// Resets to an empty dense batch; keeps arena blocks and pool slots.
  void clear() {
    phys_rows_ = 0;
    has_sel_ = false;
    sel_ = nullptr;
    sel_size_ = 0;
    configured_ = false;
    pool_used_ = 0;
    arena_.Clear();
  }

  /// Ensures the batch's capacity is `capacity` (used when the configured
  /// batch size only becomes known at Open); clears the batch.
  void reset(size_t capacity) {
    capacity_ = capacity == 0 ? 1 : capacity;
    clear();
  }

  /// Appends a row whose string cells remain owned by stable external
  /// storage (a base table, a materialized result, an operator's buffered
  /// output): strings are stored as views, nothing is copied.
  void AppendExternalRow(const Row& row) {
    if (!configured_) Configure(row.size());
    const size_t idx = phys_rows_++;
    for (size_t c = 0; c < columns_.size(); ++c) {
      AppendCell(columns_[c], idx, row[c], /*steal=*/false);
    }
  }

  /// Appends by move: string cells are stolen into the batch's pool, so
  /// the batch owns everything it references. The moved-from row keeps
  /// its vector buffer (clear and reuse it).
  void PushRow(Row&& row) {
    if (!configured_) Configure(row.size());
    const size_t idx = phys_rows_++;
    for (size_t c = 0; c < columns_.size(); ++c) {
      AppendCell(columns_[c], idx, row[c], /*steal=*/true);
    }
  }

  /// Value of active row `k`, column `c` (reconstructed; strings copied).
  Value ValueAt(size_t k, size_t c) const {
    return PhysValueAt(RowIndexAt(k), c);
  }

  /// Materializes active row `k` into *out (cleared first). The produced
  /// Values are bit-identical to the appended originals.
  void MaterializeRow(size_t k, Row* out) const {
    out->clear();
    const size_t p = RowIndexAt(k);
    if (out->capacity() < columns_.size()) out->reserve(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      out->push_back(PhysValueAt(p, c));
    }
  }

  /// Keeps exactly the active rows whose pass byte is non-zero; `pass` is
  /// indexed by active position (0..size()). Builds/narrows the selection
  /// vector — no cell data moves.
  void NarrowToPassing(const uint8_t* pass) {
    const size_t n = size();
    uint32_t* next = arena_.AllocateArray<uint32_t>(n);
    size_t m = 0;
    if (has_sel_) {
      for (size_t k = 0; k < n; ++k) {
        if (pass[k]) next[m++] = sel_[k];
      }
    } else {
      for (size_t k = 0; k < n; ++k) {
        if (pass[k]) next[m++] = static_cast<uint32_t>(k);
      }
    }
    sel_ = next;
    sel_size_ = m;
    has_sel_ = true;
  }

  /// Reorders (and possibly duplicates) columns: new column j becomes old
  /// column `sources[j]`. Used by pure-column projections after SwapWith —
  /// data arrays are shared within the batch's own arena, so this is a
  /// descriptor shuffle, not a copy.
  void PermuteColumns(const std::vector<int>& sources) {
    std::vector<Column> next(sources.size());
    for (size_t j = 0; j < sources.size(); ++j) {
      next[j] = columns_[static_cast<size_t>(sources[j])];
    }
    columns_ = std::move(next);
  }

  /// Exchanges full contents (columns, arena, pool, selection, capacity).
  void SwapWith(RowBatch* other) { std::swap(*this, *other); }

 private:
  void Configure(size_t num_columns) {
    configured_ = true;
    columns_.resize(num_columns);
    for (Column& col : columns_) {
      col.type = DataType::kNull;
      col.generic = false;
      col.nulls = arena_.AllocateArray<uint8_t>(capacity_);
      col.i64 = nullptr;
      col.f64 = nullptr;
      col.str = nullptr;
      col.cells.clear();
    }
  }

  Value PhysValueAt(size_t p, size_t c) const {
    const Column& col = columns_[c];
    if (col.generic) return col.cells[p];
    if (col.nulls[p]) return Value::Null();
    switch (col.type) {
      case DataType::kBool:
        return Value::Bool(col.i64[p] != 0);
      case DataType::kInt:
        return Value::Int(col.i64[p]);
      case DataType::kTime:
        return Value::Time(col.i64[p]);
      case DataType::kDate:
        return Value::Date(col.i64[p]);
      case DataType::kDouble:
        return Value::Double(col.f64[p]);
      case DataType::kString:
        return Value::String(std::string(col.str[p]));
      case DataType::kNull:
        break;
    }
    return Value::Null();
  }

  /// Demotes `col` to generic storage, reconstructing the cells appended
  /// so far (physical rows [0, upto)) from the typed arrays.
  void Demote(Column& col, size_t c, size_t upto) {
    col.cells.clear();
    col.cells.reserve(capacity_);
    for (size_t p = 0; p < upto; ++p) col.cells.push_back(PhysValueAt(p, c));
    col.generic = true;
  }

  /// Steals `v`'s string payload into the pool and returns a stable view.
  std::string_view PoolString(const Value& v, bool steal) {
    if (!steal) return std::string_view(v.AsString());
    Value* slot;
    if (pool_used_ < pool_.size()) {
      slot = &pool_[pool_used_];
      *slot = std::move(const_cast<Value&>(v));
    } else {
      pool_.push_back(std::move(const_cast<Value&>(v)));
      slot = &pool_.back();
    }
    ++pool_used_;
    return std::string_view(slot->AsString());
  }

  void AppendCell(Column& col, size_t idx, const Value& v, bool steal) {
    if (col.generic) {
      col.nulls[idx] = v.is_null() ? 1 : 0;
      if (steal) {
        col.cells.push_back(std::move(const_cast<Value&>(v)));
      } else {
        col.cells.push_back(v);
      }
      return;
    }
    if (v.is_null()) {
      col.nulls[idx] = 1;
      return;
    }
    col.nulls[idx] = 0;
    const DataType t = v.type();
    if (col.type == DataType::kNull) {
      // First non-null cell fixes the column's runtime type.
      col.type = t;
      switch (t) {
        case DataType::kDouble:
          col.f64 = arena_.AllocateArray<double>(capacity_);
          break;
        case DataType::kString:
          col.str = arena_.AllocateArray<std::string_view>(capacity_);
          break;
        default:
          col.i64 = arena_.AllocateArray<int64_t>(capacity_);
          break;
      }
    } else if (t != col.type) {
      size_t c = static_cast<size_t>(&col - columns_.data());
      Demote(col, c, idx);
      AppendCell(col, idx, v, steal);
      return;
    }
    switch (t) {
      case DataType::kDouble:
        col.f64[idx] = v.AsDouble();
        break;
      case DataType::kString:
        col.str[idx] = PoolString(v, steal);
        break;
      default:
        col.i64[idx] = v.raw();
        break;
    }
  }

  size_t capacity_;
  size_t phys_rows_ = 0;
  bool configured_ = false;
  std::vector<Column> columns_;
  // Selection vector: physical indices of active rows, arena-allocated.
  bool has_sel_ = false;
  const uint32_t* sel_ = nullptr;
  size_t sel_size_ = 0;
  // Stolen string cells (PushRow); deque = address-stable views even for
  // short (SSO) strings, slots recycled across refills via pool_used_.
  std::deque<Value> pool_;
  size_t pool_used_ = 0;
  Arena arena_;
};

}  // namespace sieve

#endif  // SIEVE_PLAN_ROW_BATCH_H_
