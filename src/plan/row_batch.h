#ifndef SIEVE_PLAN_ROW_BATCH_H_
#define SIEVE_PLAN_ROW_BATCH_H_

#include <cstddef>
#include <vector>

#include "storage/table.h"

namespace sieve {

/// Default rows per batch for batch-at-a-time execution. Exposed as the
/// `SieveOptions::batch_size` knob; 1 reproduces the legacy row-at-a-time
/// behavior (every NextBatch call degenerates to one Next call).
inline constexpr size_t kDefaultBatchSize = 1024;

/// Reusable, capacity-bounded buffer of rows — the unit of work of the
/// batch-at-a-time executor (Operator::NextBatch). A batch amortizes the
/// per-tuple middleware overhead the row-at-a-time interpreter pays on
/// every row: one virtual dispatch, one timeout/cancel check and one
/// predicate-tree interpretation now cover up to `capacity` rows.
///
/// Row slots are recycled: clear() resets the live count without
/// destroying the underlying Row vectors, so a scan that refills the same
/// batch reuses each slot's heap allocation (and, via Value copy
/// assignment, each string cell's buffer) instead of reallocating per
/// row. Single-threaded like the operator that fills it; each parallel
/// worker drives its own batch.
class RowBatch {
 public:
  explicit RowBatch(size_t capacity = kDefaultBatchSize)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }

  Row& operator[](size_t i) { return slots_[i]; }
  const Row& operator[](size_t i) const { return slots_[i]; }

  /// Live prefix as a contiguous span (for batch expression evaluation).
  const Row* data() const { return slots_.data(); }

  /// Resets the live count; keeps every slot's allocation for reuse.
  void clear() { size_ = 0; }

  /// Ensures the batch's capacity is `capacity` (used when the configured
  /// batch size only becomes known at Open). Does not shrink live rows.
  void reset(size_t capacity) {
    capacity_ = capacity == 0 ? 1 : capacity;
    size_ = 0;
  }

  /// Appends and returns a cleared row slot, reusing its prior heap
  /// allocation when the slot was filled before.
  Row* AddRow() {
    if (size_ == slots_.size()) slots_.emplace_back();
    Row* row = &slots_[size_++];
    row->clear();
    return row;
  }

  /// Drops the most recently added row (used by the row-at-a-time adapter
  /// when Next reports end-of-stream into a fresh slot).
  void PopBack() { --size_; }

  /// Appends by move.
  void PushBack(Row&& row) {
    if (size_ == slots_.size()) {
      slots_.push_back(std::move(row));
      ++size_;
      return;
    }
    slots_[size_++] = std::move(row);
  }

 private:
  size_t capacity_;
  size_t size_ = 0;
  std::vector<Row> slots_;
};

}  // namespace sieve

#endif  // SIEVE_PLAN_ROW_BATCH_H_
