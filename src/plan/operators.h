#ifndef SIEVE_PLAN_OPERATORS_H_
#define SIEVE_PLAN_OPERATORS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "expr/eval.h"
#include "index/bitmap.h"
#include "parser/ast.h"
#include "plan/exec_context.h"
#include "plan/row_batch.h"
#include "storage/catalog.h"

namespace sieve {

class Operator;
using OperatorPtr = std::unique_ptr<Operator>;

/// Physical operator. Open() prepares state; rows are pulled either one
/// at a time (Next, the legacy Volcano interface) or — the default
/// executor path — a batch at a time (NextBatch). Operators own their
/// children.
///
/// Batch contract: NextBatch clears *out, appends rows in stream order
/// and returns false exactly when the stream is exhausted and nothing was
/// appended. A true return with a partially filled (or, for expanding
/// operators such as joins, occasionally over-filled) batch is valid —
/// callers must keep pulling until false. The hot operators override
/// NextBatch natively (whole-morsel scans, one predicate-tree walk per
/// filter batch, batched join probes and aggregate updates); everything
/// else inherits the row-at-a-time adapter below, so the two interfaces
/// always produce identical rows, row order and ExecStats. Timeout/cancel
/// checks are per batch, not per row; a batch capacity of 1 therefore
/// reproduces the legacy row-at-a-time behavior exactly.
///
/// Threading contract (applies to every subclass unless it says otherwise):
/// Open, Next and NextBatch are driven by a single thread per operator
/// instance. Parallelism enters in two ways, both preserving exact serial
/// rows, row order and ExecStats totals:
///   1. CreatePartitions (below) hands out clones that concurrent workers
///      drive independently; the executor creates several morsels per
///      worker and hands them out dynamically (see Executor::Materialize).
///   2. Interior operators (UnionOperator, HashJoinOperator,
///      HashAggregateOperator, ExceptOperator) fan their own input out
///      across ExecContext::pool from inside Open when ctx->num_threads
///      > 1, then serve the merged result on the calling thread.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator for a full drain; binds expressions, opens
  /// children, and (for blocking operators) may consume the whole input.
  virtual Status Open(ExecContext* ctx) = 0;
  /// Produces the next row into *out; returns false at end of stream.
  virtual Result<bool> Next(ExecContext* ctx, Row* out) = 0;
  /// Clears *out and appends up to out->capacity() rows (see the batch
  /// contract in the class comment). The default adapter drives Next row
  /// by row; hot operators override it with native batch loops.
  virtual Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) {
    out->clear();
    Row scratch;
    while (!out->full()) {
      SIEVE_ASSIGN_OR_RETURN(bool has, Next(ctx, &scratch));
      if (!has) break;
      // Steal the row's cells: the adapter owns `scratch`, which dies (is
      // overwritten) before the batch does.
      out->PushRow(std::move(scratch));
    }
    return !out->empty();
  }
  /// Output schema; valid after Open (leaf scans over base tables also
  /// know it at construction).
  virtual const Schema& schema() const = 0;
  /// One-line description for EXPLAIN output.
  virtual std::string name() const = 0;

  /// Partition-parallel support: when this operator's pipeline can be split
  /// into disjoint row partitions, fills *out with `num_parts` clones,
  /// where clone i produces exactly partition i's rows and concatenating
  /// partitions 0..num_parts-1 in order reproduces the serial row stream
  /// (so results, including row order, are identical to a serial run).
  /// Clones may be opened and driven on concurrent threads. They share no
  /// mutable state with each other or with this operator except
  /// exactly-once seeding guarded by std::call_once (a shared index probe,
  /// a shared CTE materialization); when partitioning succeeds the
  /// original operator must not itself be opened. Returns false (leaving
  /// *out untouched) when the subtree cannot be partitioned.
  virtual bool CreatePartitions(size_t num_parts,
                                std::vector<OperatorPtr>* out) const {
    (void)num_parts;
    (void)out;
    return false;
  }

  /// Sentinel for EstimatedPartitionRows: the subtree cannot size itself
  /// before Open.
  static constexpr size_t kUnknownRows = static_cast<size_t>(-1);

  /// Best-effort row-count hint for partition planning: how many input
  /// rows a partitioned drain of this subtree covers (an upper bound is
  /// fine — leaf scans report table slots, filters forward their child's
  /// hint). PlanPartitionCount uses it to size morsels so tiny inputs are
  /// not split into dozens of near-empty clones; kUnknownRows (e.g. a
  /// not-yet-materialized CTE) falls back to one static slice per worker.
  virtual size_t EstimatedPartitionRows() const { return kUnknownRows; }
};

/// Qualifies every column of `schema` with `qualifier` (stripping any
/// existing qualifier), e.g. (id, owner) with "W" -> (W.id, W.owner).
Schema QualifySchema(const Schema& schema, const std::string& qualifier);

/// Contiguous slice [*begin, *end) of `total` items assigned to partition
/// `part` of `num_parts`. Handles empty inputs and total < num_parts (the
/// tail partitions come out empty). Shared by every partitioned scan so
/// all of them slice identically.
void PartitionSlice(size_t total, size_t part, size_t num_parts, size_t* begin,
                    size_t* end);

/// 64-bit hash of a full row (used by UNION/EXCEPT dedup).
uint64_t RowHash64(const Row& row);

/// Value-equality of two rows (SQL semantics via Value::Compare).
bool RowsEqual(const Row& a, const Row& b);

/// Fingerprints a row for hashing/dedup (stable across runs).
std::string RowFingerprint(const Row& row);

/// Deep-copies a SELECT list (expressions cloned) so partition workers can
/// bind their own copies — binding mutates expression nodes in place.
std::vector<SelectItem> CloneItems(const std::vector<SelectItem>& items);

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

/// Probe state shared by the partition clones of one index scan: the first
/// partition to open runs the (single) index probe, the rest reuse its
/// row-id list and each iterates a disjoint contiguous slice of it.
struct SharedIndexProbe {
  std::once_flag once;
  Status status = Status::OK();
  std::vector<RowId> row_ids;
};

/// Full table scan (counts tuples_scanned). Partition clones cover
/// contiguous, disjoint slot ranges of the table.
class SeqScanOperator : public Operator {
 public:
  SeqScanOperator(const TableEntry* entry, std::string qualifier);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  /// Native batch path: emits a whole morsel of live rows per call (one
  /// timeout check, one stats update).
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;
  bool CreatePartitions(size_t num_parts,
                        std::vector<OperatorPtr>* out) const override;
  size_t EstimatedPartitionRows() const override;

 private:
  SeqScanOperator(const TableEntry* entry, std::string qualifier,
                  RowId begin_slot, RowId end_slot);

  const TableEntry* entry_;
  std::string qualifier_;
  Schema schema_;
  RowId begin_slot_ = 0;
  RowId end_slot_ = -1;  // -1: the full table (resolved at Open)
  RowId next_id_ = 0;
  RowId scan_end_ = 0;
  uint64_t ticks_ = 0;  // timeout-check cadence, local to this partition
};

/// One contiguous key range probed on one index.
struct IndexRange {
  std::string column;
  std::optional<Value> lo;
  bool lo_inclusive = true;
  std::optional<Value> hi;
  bool hi_inclusive = true;
};

/// Common machinery for scans that fetch an explicit row-id list computed
/// by an index probe: runs the probe at Open (partition clones share one
/// probe through SharedIndexProbe and each fetch a disjoint contiguous
/// slice of its row ids), then iterates live rows counting
/// index_probe_rows. Subclasses supply the probe and the display name.
class RowIdListScanOperator : public Operator {
 public:
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  /// Native batch path: fetches a whole morsel of row ids per call.
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  const Schema& schema() const override { return schema_; }
  /// Upper bound: the probe has not run yet, so report the table's slots.
  size_t EstimatedPartitionRows() const override;

 protected:
  RowIdListScanOperator(const TableEntry* entry, std::string qualifier,
                        std::shared_ptr<SharedIndexProbe> shared, size_t part,
                        size_t num_parts);

  /// Computes the row ids to fetch; run once per scan (shared across the
  /// partition clones of one CreatePartitions call).
  virtual Result<std::vector<RowId>> Probe() const = 0;

  const TableEntry* entry_;
  std::string qualifier_;
  Schema schema_;

 private:
  std::shared_ptr<SharedIndexProbe> shared_;  // set only on partition clones
  size_t part_ = 0;
  size_t num_parts_ = 1;
  std::vector<RowId> row_ids_;               // used when not partitioned
  const std::vector<RowId>* ids_ = nullptr;  // row-id source for Next
  size_t pos_ = 0;
  size_t end_ = 0;
  uint64_t ticks_ = 0;
};

/// Index range scan over a single range — the access path behind a guard's
/// indexable condition (paper Section 4: guards are chosen precisely
/// because they index-scan a small superset of the allowed tuples).
class IndexRangeScanOperator : public RowIdListScanOperator {
 public:
  IndexRangeScanOperator(const TableEntry* entry, std::string qualifier,
                         IndexRange range);

  std::string name() const override;
  bool CreatePartitions(size_t num_parts,
                        std::vector<OperatorPtr>* out) const override;

 protected:
  Result<std::vector<RowId>> Probe() const override;

 private:
  IndexRangeScanOperator(const TableEntry* entry, std::string qualifier,
                         IndexRange range,
                         std::shared_ptr<SharedIndexProbe> shared, size_t part,
                         size_t num_parts);

  IndexRange range_;
};

/// OR of several index ranges merged through an in-memory row-id bitmap,
/// then fetched in row-id order — the PostgreSQL "BitmapOr + Bitmap Heap
/// Scan" plan shape that makes many-guard queries cheap (Experiments 4, 5).
class IndexUnionBitmapScanOperator : public RowIdListScanOperator {
 public:
  IndexUnionBitmapScanOperator(const TableEntry* entry, std::string qualifier,
                               std::vector<IndexRange> ranges);

  std::string name() const override;
  bool CreatePartitions(size_t num_parts,
                        std::vector<OperatorPtr>* out) const override;

 protected:
  Result<std::vector<RowId>> Probe() const override;

 private:
  IndexUnionBitmapScanOperator(const TableEntry* entry, std::string qualifier,
                               std::vector<IndexRange> ranges,
                               std::shared_ptr<SharedIndexProbe> shared,
                               size_t part, size_t num_parts);

  std::vector<IndexRange> ranges_;
};

/// Scan over a materialized result (CTE reference or derived table). In
/// Sieve plans this is how the policy-filtered CTE (`sieve_<table>`) is
/// consumed: the CTE body — guards plus the Δ operator over the base
/// table — materializes on first Open through the query-wide CteCache and
/// every other reference reuses the rows.
///
/// Threading: materialization happens exactly once per cache key per
/// query, no matter which worker gets there first (CteCache). Partition
/// clones additionally slice the materialized rows into contiguous ranges
/// — this is what lets the probe side of a hash join over the policy-
/// filtered CTE partition across workers. Clones of one CreatePartitions
/// call share the producer subtree guarded by exactly-once semantics.
class MaterializedScanOperator : public Operator {
 public:
  /// `child` produces the data on first Open (allows CTE sharing via the
  /// ExecContext's CteCache). An empty `cache_key` always materializes
  /// privately (derived tables).
  MaterializedScanOperator(std::string cache_key, std::string qualifier,
                           OperatorPtr child);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  /// Native batch path: copies a whole slice of the materialized rows.
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;
  bool CreatePartitions(size_t num_parts,
                        std::vector<OperatorPtr>* out) const override;

 private:
  /// Materialization state shared by the partition clones of one
  /// CreatePartitions call: `producer` points into the original operator's
  /// child subtree and is driven by exactly one clone (the OnceMaterialized
  /// slot for the private path; the CteCache's slot for named CTEs).
  struct SharedMaterialization {
    Operator* producer = nullptr;
    OnceMaterialized slot;
  };

  MaterializedScanOperator(std::string cache_key, std::string qualifier,
                           std::shared_ptr<SharedMaterialization> shared,
                           size_t part, size_t num_parts);

  std::string cache_key_;  // empty -> always materialize privately
  std::string qualifier_;
  OperatorPtr child_;
  Schema schema_;
  std::shared_ptr<SharedMaterialization> shared_;  // partition clones only
  size_t part_ = 0;
  size_t num_parts_ = 1;
  const std::vector<Row>* rows_ = nullptr;
  MaterializedResult private_result_;
  size_t pos_ = 0;
  size_t end_ = 0;
};

// ---------------------------------------------------------------------------
// Relational operators
// ---------------------------------------------------------------------------

/// WHERE filter; binds `predicate` against the child schema at Open.
/// Partitionable when its child is: each partition filters its own slice
/// with a private deep clone of the predicate (binding mutates expression
/// nodes, so partitions must not share them).
///
/// The batch path is where policy checks batch across tuples: one
/// Evaluator::EvalPredicateBatch call walks the guard/Δ predicate tree
/// once and drives column-wise inner loops over the whole child batch,
/// instead of re-interpreting the tree per row.
class FilterOperator : public Operator {
 public:
  FilterOperator(OperatorPtr child, ExprPtr predicate);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override;
  bool CreatePartitions(size_t num_parts,
                        std::vector<OperatorPtr>* out) const override;
  size_t EstimatedPartitionRows() const override {
    return child_->EstimatedPartitionRows();
  }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
  std::unique_ptr<Evaluator> evaluator_;
  uint64_t rows_seen_ = 0;
  RowBatch child_batch_;        // batch path: reused input buffer
  std::vector<uint8_t> pass_;   // batch path: per-row predicate verdicts
};

/// Projection of scalar expressions (no aggregates). Partitionable when its
/// child is (expressions are deep-cloned per partition, like FilterOperator).
///
/// Pure column projections (every item a bound column ref) move values out
/// of the consumed input row instead of copying — a column's last
/// referencing item steals the cell, so wide string columns are never
/// duplicated on the scan→project hot path.
class ProjectOperator : public Operator {
 public:
  ProjectOperator(OperatorPtr child, std::vector<SelectItem> items);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;
  bool CreatePartitions(size_t num_parts,
                        std::vector<OperatorPtr>* out) const override;
  size_t EstimatedPartitionRows() const override {
    return child_->EstimatedPartitionRows();
  }

 private:
  /// Builds one output row from `input` (moving cells when allowed).
  Status ProjectRow(Row* input, Row* out);

  OperatorPtr child_;
  std::vector<SelectItem> items_;
  Schema schema_;
  std::unique_ptr<Evaluator> evaluator_;
  /// move_source_[j] >= 0: item j is a bound column ref whose cell may be
  /// moved out of the input row (no later item reads the same column);
  /// -(col + 1): copy of column `col` (an earlier duplicate reference).
  /// Non-empty only when every item is a bound column ref.
  std::vector<int> move_source_;
  int move_max_col_ = -1;  // largest column index the move path touches
  /// Column permutation for the pure-column batch path (move_source_ with
  /// the copy encoding flattened): output column j reads input permute_[j].
  std::vector<int> permute_;
  RowBatch child_batch_;  // batch path: reused input buffer
  Row scratch_in_;        // batch fallback: materialized input row
  Row scratch_out_;       // batch fallback: projected row before PushRow
};

/// Hash join on equi-key expressions (build = right side). This is the
/// join at the heart of Sieve's rewrite when a query combines a protected
/// table with other relations: the probe side is then the policy-filtered
/// CTE whose tuples already passed the guards and the Δ operator.
///
/// Parallel interior: Open always builds the hash table once (serial pull
/// of the build side; its own CTE inputs still materialize in parallel).
/// When ctx->num_threads > 1 and the probe side supports
/// CreatePartitions, the probe fans out across workers — each partition
/// probes the shared read-only hash table with privately cloned key
/// expressions and buffers its joined rows; buffers are concatenated in
/// partition order, reproducing the serial output order exactly (probe
/// rows in input order, matches in build-insertion order). Falls back to
/// streaming serial probing otherwise.
class HashJoinOperator : public Operator {
 public:
  HashJoinOperator(OperatorPtr left, OperatorPtr right,
                   std::vector<ExprPtr> left_keys,
                   std::vector<ExprPtr> right_keys);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  /// Native batch path: probes a whole input batch per key-expression
  /// bind, emitting joined rows batch-at-a-time (buffered slices in
  /// parallel-probe mode).
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  struct VecValueHash {
    size_t operator()(const std::vector<Value>& key) const;
  };
  struct VecValueEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };
  using BuildTable = std::unordered_map<std::vector<Value>, std::vector<Row>,
                                        VecValueHash, VecValueEq>;

  /// Drains the build (right) side into build_; serial, run once per Open.
  Status BuildHashTable(ExecContext* ctx);
  /// Drives `parts` (partitions of the probe side) on the pool; fills
  /// joined_ with the concatenated per-partition outputs.
  Status ParallelProbe(ExecContext* ctx, std::vector<OperatorPtr>* parts);

  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  Schema schema_;
  BuildTable build_;
  Row current_left_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_pos_ = 0;
  std::unique_ptr<Evaluator> left_eval_;
  std::unique_ptr<Evaluator> right_eval_;
  RowBatch probe_batch_;   // batch path: reused probe-side input buffer
  size_t probe_pos_ = 0;   // next unconsumed row of probe_batch_
  // Parallel-probe mode: the joined output, buffered at Open.
  bool buffered_ = false;
  std::vector<Row> joined_;
  size_t out_pos_ = 0;
};

/// Nested-loop cross join (right side materialized). Residual predicates are
/// applied by a FilterOperator above.
///
/// Batch path and partitioning: NextBatch crosses a whole outer batch
/// against the materialized right side natively, and CreatePartitions
/// splits the outer (left) side whenever the outer pipeline can partition
/// — clone i crosses outer partition i against the full right side, which
/// materializes exactly once across all clones (call_once), so
/// concatenating the clones in order reproduces the serial cross-product
/// order and every ExecStats counter.
class NestedLoopJoinOperator : public Operator {
 public:
  NestedLoopJoinOperator(OperatorPtr left, OperatorPtr right);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  /// Native batch path: crosses outer rows against the right side a whole
  /// output batch at a time.
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;
  bool CreatePartitions(size_t num_parts,
                        std::vector<OperatorPtr>* out) const override;
  size_t EstimatedPartitionRows() const override {
    return left_->EstimatedPartitionRows();
  }

 private:
  /// Right-side materialization shared by the partition clones of one
  /// CreatePartitions call: `producer` points into the original operator's
  /// right subtree and is driven by exactly one clone.
  struct SharedRight {
    Operator* producer = nullptr;
    OnceMaterialized slot;
  };

  NestedLoopJoinOperator(OperatorPtr left, std::shared_ptr<SharedRight> shared);

  OperatorPtr left_;
  OperatorPtr right_;
  Schema schema_;
  std::shared_ptr<SharedRight> shared_;  // set only on partition clones
  MaterializedResult private_right_;
  const std::vector<Row>* right_rows_ = nullptr;
  Row current_left_;
  bool left_valid_ = false;
  size_t right_pos_ = 0;
  uint64_t ticks_ = 0;       // row-path timeout cadence
  RowBatch left_batch_;      // batch path: reused outer-side input buffer
  size_t left_pos_ = 0;      // next unconsumed row of left_batch_
};

/// Hash aggregation implementing GROUP BY + COUNT/SUM/AVG/MIN/MAX.
///
/// Parallel interior: when ctx->num_threads > 1 and the child pipeline
/// supports CreatePartitions, Open computes per-partition partial
/// aggregates on the pool (each worker accumulates its slice with private
/// clones of the group-by and aggregate expressions) and merges them at
/// the barrier with per-function logic: COUNT/SUM add, MIN/MAX compare,
/// AVG derives from merged sum and count at output time. Groups are merged
/// in partition order, so group output order (first-occurrence order of
/// the serial input stream) and each group's representative row are
/// preserved exactly. SUM/AVG merge adds per-partition partial sums, which
/// is bit-exact for integer-valued inputs (all workload datasets) and may
/// differ from serial in the last ulp for arbitrary floating-point data.
class HashAggregateOperator : public Operator {
 public:
  HashAggregateOperator(OperatorPtr child, std::vector<ExprPtr> group_by,
                        std::vector<SelectItem> items);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  struct AggState {
    int64_t count = 0;
    double sum = 0.0;
    bool saw_value = false;
    Value min;
    Value max;

    /// Folds another partition's partial state into this one.
    void Merge(const AggState& other);
  };
  struct GroupState {
    Row key;
    Row first_row;  // representative row for group-key output expressions
    std::vector<AggState> aggs;
  };

  /// Pulls `child` (already opened) to exhaustion, accumulating into
  /// *groups / *group_index. `group_by` and `items` must be bound against
  /// the child's schema. Used by both the serial path (on the members) and
  /// each parallel worker (on private clones + local group tables).
  static Status Accumulate(Operator* child, ExecContext* ctx,
                           const std::vector<ExprPtr>& group_by,
                           const std::vector<SelectItem>& items,
                           size_t num_aggs, std::vector<GroupState>* groups,
                           std::unordered_map<std::string, size_t>* group_index);

  /// Computes the output schema from the bound items_ and `input` schema.
  void BuildOutputSchema(const Schema& input);

  /// Per-partition partial aggregation + ordered merge; fills groups_.
  Status OpenParallel(ExecContext* ctx, std::vector<OperatorPtr>* parts);

  OperatorPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<SelectItem> items_;
  Schema schema_;
  Schema input_schema_;  // child schema used to evaluate output expressions
  size_t num_aggs_ = 0;
  std::vector<GroupState> groups_;
  std::unordered_map<std::string, size_t> group_index_;
  size_t pos_ = 0;
};

/// Concurrency-safe exact dedup set used by the parallel UNION interior.
/// Each offered row carries a tag encoding (child index, sequence in
/// child) — i.e. its position in the serial output stream. Offer keeps the
/// row iff its tag is the smallest seen so far for that row value, so
/// after all offers the surviving tag per distinct row is exactly the
/// serial first occurrence. Internally striped: concurrent offers for
/// different hash stripes do not contend.
///
/// Threading: Offer may be called from any number of threads. IsWinner is
/// called after every producing thread reached the barrier.
class ConcurrentDedupSet {
 public:
  ConcurrentDedupSet();

  /// Records `row` under `tag`; returns false when an equal row with a
  /// smaller (earlier) tag already exists — the caller can drop the row
  /// immediately, its earlier twin is guaranteed to be emitted.
  bool Offer(const Row& row, uint64_t tag);

  /// True when `tag` is the final (smallest) tag recorded for `row`; only
  /// such rows are emitted, in tag order, reproducing the serial stream.
  bool IsWinner(const Row& row, uint64_t tag) const;

 private:
  struct Entry {
    Row row;
    uint64_t min_tag;
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::vector<Entry>> buckets;
  };

  static constexpr size_t kNumStripes = 16;  // power of two
  std::vector<Stripe> stripes_;
};

/// UNION / UNION ALL over any number of children (schemas must have equal
/// arity; names follow the first child). This is the shape of the MySQL-
/// profile IndexGuards rewrite (paper Section 5.3): one arm per guard,
/// each forcing its guard's index, deduped because two guards can admit
/// the same tuple.
///
/// Parallel interior: when ctx->num_threads > 1, Open drains all children
/// concurrently on the pool (each child under its own worker context, its
/// pipeline free to partition further), pre-filtering duplicates through a
/// ConcurrentDedupSet keyed by serial stream position. The per-child
/// buffers are concatenated in child order and, for UNION, reduced to the
/// first-occurrence winners — reproducing the serial rows, row order and
/// ExecStats totals exactly. UNION ALL skips the dedup set and just
/// concatenates in child order.
class UnionOperator : public Operator {
 public:
  UnionOperator(std::vector<OperatorPtr> children, bool all);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  /// Native batch path: dedups a whole child batch per call.
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  /// Concurrent child drain + ordered dedup merge; fills out_rows_.
  Status OpenParallel(ExecContext* ctx);

  std::vector<OperatorPtr> children_;
  bool all_;
  Schema schema_;
  RowBatch child_batch_;  // serial batch path: reused input buffer
  size_t current_ = 0;
  // Hash-bucketed exact dedup for the serial path: candidate rows compare
  // against the rows already emitted under the same hash.
  std::unordered_map<uint64_t, std::vector<Row>> seen_;
  // Parallel-interior mode: the merged output, buffered at Open.
  bool buffered_ = false;
  std::vector<Row> out_rows_;
  size_t out_pos_ = 0;
};

/// EXCEPT / MINUS: distinct rows of the left input that do not appear in the
/// right input. Section 3.1 uses this non-monotonic operator to argue that
/// policies must be applied to base tables *before* query operators — which
/// the rewriter guarantees by replacing table refs with policy-filtered
/// CTEs.
///
/// Parallel interior: Open always builds the subtrahend (right) hash set
/// once on the calling thread. When ctx->num_threads > 1 and the minuend
/// (left) pipeline supports CreatePartitions, the probe fans out across
/// workers — each morsel filters its rows against the shared read-only
/// right set and buffers the survivors; buffers are concatenated in
/// morsel order and reduced to distinct first occurrences on the calling
/// thread, reproducing the serial rows, row order and ExecStats exactly.
/// Falls back to streaming serial probing otherwise.
class ExceptOperator : public Operator {
 public:
  ExceptOperator(OperatorPtr left, OperatorPtr right);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  /// Native batch path: probes a whole minuend batch per call.
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "Except"; }

 private:
  bool Contains(const std::unordered_map<uint64_t, std::vector<Row>>& set,
                const Row& row) const;

  /// Drains the (already opened) right side into right_rows_.
  Status DrainRightSet(ExecContext* ctx);
  /// Parallel minuend probe + ordered distinct merge; fills out_rows_.
  Status OpenParallel(ExecContext* ctx, std::vector<OperatorPtr>* parts);

  OperatorPtr left_;
  OperatorPtr right_;
  Schema schema_;
  std::unordered_map<uint64_t, std::vector<Row>> right_rows_;
  std::unordered_map<uint64_t, std::vector<Row>> emitted_;
  RowBatch left_batch_;  // serial batch path: reused input buffer
  // Parallel-interior mode: the surviving rows, buffered at Open.
  bool buffered_ = false;
  std::vector<Row> out_rows_;
  size_t out_pos_ = 0;
};

}  // namespace sieve

#endif  // SIEVE_PLAN_OPERATORS_H_
