#ifndef SIEVE_PLAN_OPERATORS_H_
#define SIEVE_PLAN_OPERATORS_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "expr/eval.h"
#include "index/bitmap.h"
#include "parser/ast.h"
#include "plan/exec_context.h"
#include "storage/catalog.h"

namespace sieve {

/// Volcano-style physical operator. Open() prepares state; Next() produces
/// one row at a time. Operators own their children.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open(ExecContext* ctx) = 0;
  /// Produces the next row into *out; returns false at end of stream.
  virtual Result<bool> Next(ExecContext* ctx, Row* out) = 0;
  virtual const Schema& schema() const = 0;
  /// One-line description for EXPLAIN output.
  virtual std::string name() const = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Qualifies every column of `schema` with `qualifier` (stripping any
/// existing qualifier), e.g. (id, owner) with "W" -> (W.id, W.owner).
Schema QualifySchema(const Schema& schema, const std::string& qualifier);

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

/// Full table scan (counts tuples_scanned).
class SeqScanOperator : public Operator {
 public:
  SeqScanOperator(const TableEntry* entry, std::string qualifier);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  const TableEntry* entry_;
  std::string qualifier_;
  Schema schema_;
  RowId next_id_ = 0;
};

/// One contiguous key range probed on one index.
struct IndexRange {
  std::string column;
  std::optional<Value> lo;
  bool lo_inclusive = true;
  std::optional<Value> hi;
  bool hi_inclusive = true;
};

/// Index range scan over a single range (counts index_probe_rows).
class IndexRangeScanOperator : public Operator {
 public:
  IndexRangeScanOperator(const TableEntry* entry, std::string qualifier,
                         IndexRange range);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  const TableEntry* entry_;
  std::string qualifier_;
  IndexRange range_;
  Schema schema_;
  std::vector<RowId> row_ids_;
  size_t pos_ = 0;
};

/// OR of several index ranges merged through an in-memory row-id bitmap,
/// then fetched in row-id order — the PostgreSQL "BitmapOr + Bitmap Heap
/// Scan" plan shape that makes many-guard queries cheap (Experiments 4, 5).
class IndexUnionBitmapScanOperator : public Operator {
 public:
  IndexUnionBitmapScanOperator(const TableEntry* entry, std::string qualifier,
                               std::vector<IndexRange> ranges);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  const TableEntry* entry_;
  std::string qualifier_;
  std::vector<IndexRange> ranges_;
  Schema schema_;
  std::vector<RowId> row_ids_;
  size_t pos_ = 0;
};

/// Scan over a materialized result (CTE reference or derived table).
class MaterializedScanOperator : public Operator {
 public:
  /// `materialize` produces the data on first Open (allows CTE sharing via
  /// the ExecContext cache).
  MaterializedScanOperator(std::string cache_key, std::string qualifier,
                           OperatorPtr child);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  std::string cache_key_;  // empty -> always materialize privately
  std::string qualifier_;
  OperatorPtr child_;
  Schema schema_;
  const std::vector<Row>* rows_ = nullptr;
  MaterializedResult private_result_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Relational operators
// ---------------------------------------------------------------------------

/// WHERE filter; binds `predicate` against the child schema at Open.
class FilterOperator : public Operator {
 public:
  FilterOperator(OperatorPtr child, ExprPtr predicate);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override;

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
  std::unique_ptr<Evaluator> evaluator_;
  uint64_t rows_seen_ = 0;
};

/// Projection of scalar expressions (no aggregates).
class ProjectOperator : public Operator {
 public:
  ProjectOperator(OperatorPtr child, std::vector<SelectItem> items);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  OperatorPtr child_;
  std::vector<SelectItem> items_;
  Schema schema_;
  std::unique_ptr<Evaluator> evaluator_;
};

/// Hash join on equi-key expressions (build = right side).
class HashJoinOperator : public Operator {
 public:
  HashJoinOperator(OperatorPtr left, OperatorPtr right,
                   std::vector<ExprPtr> left_keys,
                   std::vector<ExprPtr> right_keys);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  struct VecValueHash {
    size_t operator()(const std::vector<Value>& key) const;
  };
  struct VecValueEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };

  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  Schema schema_;
  std::unordered_map<std::vector<Value>, std::vector<Row>, VecValueHash,
                     VecValueEq>
      build_;
  Row current_left_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_pos_ = 0;
  std::unique_ptr<Evaluator> left_eval_;
  std::unique_ptr<Evaluator> right_eval_;
};

/// Nested-loop cross join (right side materialized). Residual predicates are
/// applied by a FilterOperator above.
class NestedLoopJoinOperator : public Operator {
 public:
  NestedLoopJoinOperator(OperatorPtr left, OperatorPtr right);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  Schema schema_;
  std::vector<Row> right_rows_;
  Row current_left_;
  bool left_valid_ = false;
  size_t right_pos_ = 0;
};

/// Hash aggregation implementing GROUP BY + COUNT/SUM/AVG/MIN/MAX.
class HashAggregateOperator : public Operator {
 public:
  HashAggregateOperator(OperatorPtr child, std::vector<ExprPtr> group_by,
                        std::vector<SelectItem> items);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  struct AggState {
    int64_t count = 0;
    double sum = 0.0;
    bool saw_value = false;
    Value min;
    Value max;
  };
  struct GroupState {
    Row key;
    Row first_row;  // representative row for group-key output expressions
    std::vector<AggState> aggs;
  };

  OperatorPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<SelectItem> items_;
  Schema schema_;
  std::vector<GroupState> groups_;
  std::unordered_map<std::string, size_t> group_index_;
  size_t pos_ = 0;
};

/// UNION / UNION ALL over any number of children (schemas must have equal
/// arity; names follow the first child).
class UnionOperator : public Operator {
 public:
  UnionOperator(std::vector<OperatorPtr> children, bool all);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  std::vector<OperatorPtr> children_;
  bool all_;
  Schema schema_;
  size_t current_ = 0;
  // Hash-bucketed exact dedup: candidate rows compare against the rows
  // already emitted under the same hash.
  std::unordered_map<uint64_t, std::vector<Row>> seen_;
};

/// 64-bit hash of a full row (used by UNION dedup).
uint64_t RowHash64(const Row& row);

/// EXCEPT / MINUS: distinct rows of the left input that do not appear in the
/// right input. Section 3.1 uses this non-monotonic operator to argue that
/// policies must be applied to base tables *before* query operators — which
/// the rewriter guarantees by replacing table refs with policy-filtered CTEs.
class ExceptOperator : public Operator {
 public:
  ExceptOperator(OperatorPtr left, OperatorPtr right);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return left_->schema(); }
  std::string name() const override { return "Except"; }

 private:
  bool Contains(const std::unordered_map<uint64_t, std::vector<Row>>& set,
                const Row& row) const;

  OperatorPtr left_;
  OperatorPtr right_;
  std::unordered_map<uint64_t, std::vector<Row>> right_rows_;
  std::unordered_map<uint64_t, std::vector<Row>> emitted_;
};

/// Fingerprints a row for hashing/dedup (stable across runs).
std::string RowFingerprint(const Row& row);

}  // namespace sieve

#endif  // SIEVE_PLAN_OPERATORS_H_
