#ifndef SIEVE_PLAN_OPERATORS_H_
#define SIEVE_PLAN_OPERATORS_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "expr/eval.h"
#include "index/bitmap.h"
#include "parser/ast.h"
#include "plan/exec_context.h"
#include "storage/catalog.h"

namespace sieve {

class Operator;
using OperatorPtr = std::unique_ptr<Operator>;

/// Volcano-style physical operator. Open() prepares state; Next() produces
/// one row at a time. Operators own their children.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open(ExecContext* ctx) = 0;
  /// Produces the next row into *out; returns false at end of stream.
  virtual Result<bool> Next(ExecContext* ctx, Row* out) = 0;
  virtual const Schema& schema() const = 0;
  /// One-line description for EXPLAIN output.
  virtual std::string name() const = 0;

  /// Partition-parallel support: when this operator's pipeline can be split
  /// into disjoint row partitions, fills *out with `num_parts` self-contained
  /// clones, where clone i produces exactly partition i's rows and
  /// concatenating partitions 0..num_parts-1 in order reproduces the serial
  /// row stream (so results, including row order, are identical to a serial
  /// run). Clones share no mutable state with this operator and may be
  /// opened and driven on concurrent threads. Returns false (leaving *out
  /// untouched) when the subtree cannot be partitioned.
  virtual bool CreatePartitions(size_t num_parts,
                                std::vector<OperatorPtr>* out) const {
    (void)num_parts;
    (void)out;
    return false;
  }
};

/// Qualifies every column of `schema` with `qualifier` (stripping any
/// existing qualifier), e.g. (id, owner) with "W" -> (W.id, W.owner).
Schema QualifySchema(const Schema& schema, const std::string& qualifier);

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

/// Probe state shared by the partition clones of one index scan: the first
/// partition to open runs the (single) index probe, the rest reuse its
/// row-id list and each iterates a disjoint contiguous slice of it.
struct SharedIndexProbe {
  std::once_flag once;
  Status status = Status::OK();
  std::vector<RowId> row_ids;
};

/// Full table scan (counts tuples_scanned). Partition clones cover
/// contiguous, disjoint slot ranges of the table.
class SeqScanOperator : public Operator {
 public:
  SeqScanOperator(const TableEntry* entry, std::string qualifier);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;
  bool CreatePartitions(size_t num_parts,
                        std::vector<OperatorPtr>* out) const override;

 private:
  SeqScanOperator(const TableEntry* entry, std::string qualifier,
                  RowId begin_slot, RowId end_slot);

  const TableEntry* entry_;
  std::string qualifier_;
  Schema schema_;
  RowId begin_slot_ = 0;
  RowId end_slot_ = -1;  // -1: the full table (resolved at Open)
  RowId next_id_ = 0;
  RowId scan_end_ = 0;
  uint64_t ticks_ = 0;  // timeout-check cadence, local to this partition
};

/// One contiguous key range probed on one index.
struct IndexRange {
  std::string column;
  std::optional<Value> lo;
  bool lo_inclusive = true;
  std::optional<Value> hi;
  bool hi_inclusive = true;
};

/// Common machinery for scans that fetch an explicit row-id list computed
/// by an index probe: runs the probe at Open (partition clones share one
/// probe through SharedIndexProbe and each fetch a disjoint contiguous
/// slice of its row ids), then iterates live rows counting
/// index_probe_rows. Subclasses supply the probe and the display name.
class RowIdListScanOperator : public Operator {
 public:
  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }

 protected:
  RowIdListScanOperator(const TableEntry* entry, std::string qualifier,
                        std::shared_ptr<SharedIndexProbe> shared, size_t part,
                        size_t num_parts);

  /// Computes the row ids to fetch; run once per scan (shared across the
  /// partition clones of one CreatePartitions call).
  virtual Result<std::vector<RowId>> Probe() const = 0;

  const TableEntry* entry_;
  std::string qualifier_;
  Schema schema_;

 private:
  std::shared_ptr<SharedIndexProbe> shared_;  // set only on partition clones
  size_t part_ = 0;
  size_t num_parts_ = 1;
  std::vector<RowId> row_ids_;               // used when not partitioned
  const std::vector<RowId>* ids_ = nullptr;  // row-id source for Next
  size_t pos_ = 0;
  size_t end_ = 0;
  uint64_t ticks_ = 0;
};

/// Index range scan over a single range.
class IndexRangeScanOperator : public RowIdListScanOperator {
 public:
  IndexRangeScanOperator(const TableEntry* entry, std::string qualifier,
                         IndexRange range);

  std::string name() const override;
  bool CreatePartitions(size_t num_parts,
                        std::vector<OperatorPtr>* out) const override;

 protected:
  Result<std::vector<RowId>> Probe() const override;

 private:
  IndexRangeScanOperator(const TableEntry* entry, std::string qualifier,
                         IndexRange range,
                         std::shared_ptr<SharedIndexProbe> shared, size_t part,
                         size_t num_parts);

  IndexRange range_;
};

/// OR of several index ranges merged through an in-memory row-id bitmap,
/// then fetched in row-id order — the PostgreSQL "BitmapOr + Bitmap Heap
/// Scan" plan shape that makes many-guard queries cheap (Experiments 4, 5).
class IndexUnionBitmapScanOperator : public RowIdListScanOperator {
 public:
  IndexUnionBitmapScanOperator(const TableEntry* entry, std::string qualifier,
                               std::vector<IndexRange> ranges);

  std::string name() const override;
  bool CreatePartitions(size_t num_parts,
                        std::vector<OperatorPtr>* out) const override;

 protected:
  Result<std::vector<RowId>> Probe() const override;

 private:
  IndexUnionBitmapScanOperator(const TableEntry* entry, std::string qualifier,
                               std::vector<IndexRange> ranges,
                               std::shared_ptr<SharedIndexProbe> shared,
                               size_t part, size_t num_parts);

  std::vector<IndexRange> ranges_;
};

/// Scan over a materialized result (CTE reference or derived table).
class MaterializedScanOperator : public Operator {
 public:
  /// `materialize` produces the data on first Open (allows CTE sharing via
  /// the ExecContext cache).
  MaterializedScanOperator(std::string cache_key, std::string qualifier,
                           OperatorPtr child);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  std::string cache_key_;  // empty -> always materialize privately
  std::string qualifier_;
  OperatorPtr child_;
  Schema schema_;
  const std::vector<Row>* rows_ = nullptr;
  MaterializedResult private_result_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Relational operators
// ---------------------------------------------------------------------------

/// WHERE filter; binds `predicate` against the child schema at Open.
/// Partitionable when its child is: each partition filters its own slice
/// with a private deep clone of the predicate (binding mutates expression
/// nodes, so partitions must not share them).
class FilterOperator : public Operator {
 public:
  FilterOperator(OperatorPtr child, ExprPtr predicate);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override;
  bool CreatePartitions(size_t num_parts,
                        std::vector<OperatorPtr>* out) const override;

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
  std::unique_ptr<Evaluator> evaluator_;
  uint64_t rows_seen_ = 0;
};

/// Projection of scalar expressions (no aggregates). Partitionable when its
/// child is (expressions are deep-cloned per partition, like FilterOperator).
class ProjectOperator : public Operator {
 public:
  ProjectOperator(OperatorPtr child, std::vector<SelectItem> items);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;
  bool CreatePartitions(size_t num_parts,
                        std::vector<OperatorPtr>* out) const override;

 private:
  OperatorPtr child_;
  std::vector<SelectItem> items_;
  Schema schema_;
  std::unique_ptr<Evaluator> evaluator_;
};

/// Hash join on equi-key expressions (build = right side).
class HashJoinOperator : public Operator {
 public:
  HashJoinOperator(OperatorPtr left, OperatorPtr right,
                   std::vector<ExprPtr> left_keys,
                   std::vector<ExprPtr> right_keys);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  struct VecValueHash {
    size_t operator()(const std::vector<Value>& key) const;
  };
  struct VecValueEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };

  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  Schema schema_;
  std::unordered_map<std::vector<Value>, std::vector<Row>, VecValueHash,
                     VecValueEq>
      build_;
  Row current_left_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_pos_ = 0;
  std::unique_ptr<Evaluator> left_eval_;
  std::unique_ptr<Evaluator> right_eval_;
};

/// Nested-loop cross join (right side materialized). Residual predicates are
/// applied by a FilterOperator above.
class NestedLoopJoinOperator : public Operator {
 public:
  NestedLoopJoinOperator(OperatorPtr left, OperatorPtr right);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  Schema schema_;
  std::vector<Row> right_rows_;
  Row current_left_;
  bool left_valid_ = false;
  size_t right_pos_ = 0;
};

/// Hash aggregation implementing GROUP BY + COUNT/SUM/AVG/MIN/MAX.
class HashAggregateOperator : public Operator {
 public:
  HashAggregateOperator(OperatorPtr child, std::vector<ExprPtr> group_by,
                        std::vector<SelectItem> items);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  struct AggState {
    int64_t count = 0;
    double sum = 0.0;
    bool saw_value = false;
    Value min;
    Value max;
  };
  struct GroupState {
    Row key;
    Row first_row;  // representative row for group-key output expressions
    std::vector<AggState> aggs;
  };

  OperatorPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<SelectItem> items_;
  Schema schema_;
  std::vector<GroupState> groups_;
  std::unordered_map<std::string, size_t> group_index_;
  size_t pos_ = 0;
};

/// UNION / UNION ALL over any number of children (schemas must have equal
/// arity; names follow the first child).
class UnionOperator : public Operator {
 public:
  UnionOperator(std::vector<OperatorPtr> children, bool all);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return schema_; }
  std::string name() const override;

 private:
  std::vector<OperatorPtr> children_;
  bool all_;
  Schema schema_;
  size_t current_ = 0;
  // Hash-bucketed exact dedup: candidate rows compare against the rows
  // already emitted under the same hash.
  std::unordered_map<uint64_t, std::vector<Row>> seen_;
};

/// 64-bit hash of a full row (used by UNION dedup).
uint64_t RowHash64(const Row& row);

/// EXCEPT / MINUS: distinct rows of the left input that do not appear in the
/// right input. Section 3.1 uses this non-monotonic operator to argue that
/// policies must be applied to base tables *before* query operators — which
/// the rewriter guarantees by replacing table refs with policy-filtered CTEs.
class ExceptOperator : public Operator {
 public:
  ExceptOperator(OperatorPtr left, OperatorPtr right);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  const Schema& schema() const override { return left_->schema(); }
  std::string name() const override { return "Except"; }

 private:
  bool Contains(const std::unordered_map<uint64_t, std::vector<Row>>& set,
                const Row& row) const;

  OperatorPtr left_;
  OperatorPtr right_;
  std::unordered_map<uint64_t, std::vector<Row>> right_rows_;
  std::unordered_map<uint64_t, std::vector<Row>> emitted_;
};

/// Fingerprints a row for hashing/dedup (stable across runs).
std::string RowFingerprint(const Row& row);

}  // namespace sieve

#endif  // SIEVE_PLAN_OPERATORS_H_
