#include "plan/optimizer.h"

#include <algorithm>
#include <optional>

#include "common/string_util.h"

namespace sieve {

namespace {

// A sargable predicate on one indexed column: one range for comparisons and
// BETWEEN, several ranges for IN-lists.
struct Sarg {
  std::string column;
  std::vector<IndexRange> ranges;
  double selectivity = 1.0;
};

Value CoerceLiteral(const Value& v, DataType target) {
  if (v.type() != DataType::kString) return v;
  if (target == DataType::kTime) {
    auto parsed = Value::ParseTime(v.AsString());
    if (parsed.ok()) return std::move(parsed).value();
  } else if (target == DataType::kDate) {
    auto parsed = Value::ParseDate(v.AsString());
    if (parsed.ok()) return std::move(parsed).value();
  }
  return v;
}

// True when `ref` refers to a column of `table` (respecting the FROM alias);
// outputs the bare column name.
bool ColumnOfTable(const ColumnRefExpr& ref, const Table& table,
                   const std::string& qualifier, std::string* col_name) {
  if (!ref.qualifier().empty() &&
      !EqualsIgnoreCase(ref.qualifier(), qualifier) &&
      !EqualsIgnoreCase(ref.qualifier(), table.name())) {
    return false;
  }
  if (table.schema().FindColumn(ref.name()) < 0) return false;
  *col_name = ref.name();
  return true;
}

std::optional<Value> LiteralValue(const Expr& e) {
  if (e.kind() != ExprKind::kLiteral) return std::nullopt;
  return static_cast<const LiteralExpr&>(e).value();
}

// Extracts a sargable candidate from one conjunct against `table`; requires
// an index on the referenced column (the candidate describes an index probe).
std::optional<Sarg> ExtractSarg(const Expr& conjunct, const Table& table,
                                const std::string& qualifier,
                                const IndexManager& indexes) {
  auto make_range = [&table](const std::string& col) -> IndexRange {
    IndexRange r;
    r.column = col;
    (void)table;
    return r;
  };

  auto column_type = [&table](const std::string& col) {
    int idx = table.schema().FindColumn(col);
    return idx < 0 ? DataType::kNull
                   : table.schema().column(static_cast<size_t>(idx)).type;
  };

  switch (conjunct.kind()) {
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(conjunct);
      const Expr* col_side = cmp.left().get();
      const Expr* lit_side = cmp.right().get();
      CompareOp op = cmp.op();
      if (col_side->kind() != ExprKind::kColumnRef) {
        std::swap(col_side, lit_side);
        // Mirror the operator when the literal is on the left.
        switch (op) {
          case CompareOp::kLt:
            op = CompareOp::kGt;
            break;
          case CompareOp::kLe:
            op = CompareOp::kGe;
            break;
          case CompareOp::kGt:
            op = CompareOp::kLt;
            break;
          case CompareOp::kGe:
            op = CompareOp::kLe;
            break;
          default:
            break;
        }
      }
      if (col_side->kind() != ExprKind::kColumnRef) return std::nullopt;
      auto lit = LiteralValue(*lit_side);
      if (!lit.has_value()) return std::nullopt;
      std::string col;
      if (!ColumnOfTable(static_cast<const ColumnRefExpr&>(*col_side), table,
                         qualifier, &col)) {
        return std::nullopt;
      }
      const Index* index = indexes.Find(col);
      if (index == nullptr) return std::nullopt;
      Value v = CoerceLiteral(*lit, column_type(col));

      Sarg sarg;
      sarg.column = col;
      IndexRange r = make_range(col);
      switch (op) {
        case CompareOp::kEq:
          r.lo = v;
          r.hi = v;
          sarg.selectivity = index->EstimateEqSelectivity(v);
          break;
        case CompareOp::kLt:
          r.hi = v;
          r.hi_inclusive = false;
          sarg.selectivity =
              index->EstimateRangeSelectivity(std::nullopt, true, v, false);
          break;
        case CompareOp::kLe:
          r.hi = v;
          sarg.selectivity =
              index->EstimateRangeSelectivity(std::nullopt, true, v, true);
          break;
        case CompareOp::kGt:
          r.lo = v;
          r.lo_inclusive = false;
          sarg.selectivity =
              index->EstimateRangeSelectivity(v, false, std::nullopt, true);
          break;
        case CompareOp::kGe:
          r.lo = v;
          sarg.selectivity =
              index->EstimateRangeSelectivity(v, true, std::nullopt, true);
          break;
        case CompareOp::kNe:
          return std::nullopt;  // not sargable
      }
      sarg.ranges.push_back(std::move(r));
      return sarg;
    }

    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(conjunct);
      if (between.input()->kind() != ExprKind::kColumnRef) return std::nullopt;
      auto lo = LiteralValue(*between.lo());
      auto hi = LiteralValue(*between.hi());
      if (!lo.has_value() || !hi.has_value()) return std::nullopt;
      std::string col;
      if (!ColumnOfTable(static_cast<const ColumnRefExpr&>(*between.input()),
                         table, qualifier, &col)) {
        return std::nullopt;
      }
      const Index* index = indexes.Find(col);
      if (index == nullptr) return std::nullopt;
      DataType t = column_type(col);
      Sarg sarg;
      sarg.column = col;
      IndexRange r = make_range(col);
      r.lo = CoerceLiteral(*lo, t);
      r.hi = CoerceLiteral(*hi, t);
      sarg.selectivity =
          index->EstimateRangeSelectivity(r.lo, true, r.hi, true);
      sarg.ranges.push_back(std::move(r));
      return sarg;
    }

    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(conjunct);
      if (in.negated()) return std::nullopt;
      if (in.input()->kind() != ExprKind::kColumnRef) return std::nullopt;
      std::string col;
      if (!ColumnOfTable(static_cast<const ColumnRefExpr&>(*in.input()), table,
                         qualifier, &col)) {
        return std::nullopt;
      }
      const Index* index = indexes.Find(col);
      if (index == nullptr) return std::nullopt;
      DataType t = column_type(col);
      Sarg sarg;
      sarg.column = col;
      double sel = 0.0;
      for (const auto& item : in.items()) {
        auto lit = LiteralValue(*item);
        if (!lit.has_value()) return std::nullopt;
        Value v = CoerceLiteral(*lit, t);
        IndexRange r = make_range(col);
        r.lo = v;
        r.hi = v;
        sel += index->EstimateEqSelectivity(v);
        sarg.ranges.push_back(std::move(r));
      }
      sarg.selectivity = std::min(1.0, sel);
      return sarg;
    }

    default:
      return std::nullopt;
  }
}

// Best (most selective) sarg among the conjuncts; restricted to `allowed`
// columns when non-empty.
std::optional<Sarg> BestSarg(const std::vector<ExprPtr>& conjuncts,
                             const Table& table, const std::string& qualifier,
                             const IndexManager& indexes,
                             const std::vector<std::string>& allowed) {
  std::optional<Sarg> best;
  for (const auto& conjunct : conjuncts) {
    auto sarg = ExtractSarg(*conjunct, table, qualifier, indexes);
    if (!sarg.has_value()) continue;
    if (!allowed.empty()) {
      bool ok = false;
      for (const auto& col : allowed) {
        if (EqualsIgnoreCase(col, sarg->column)) ok = true;
      }
      if (!ok) continue;
    }
    if (!best.has_value() || sarg->selectivity < best->selectivity) {
      best = std::move(sarg);
    }
  }
  return best;
}

// Checks whether `expr` can be fully bound against `schema` (non-mutating:
// works on a clone).
bool BindsAgainst(const Expr& expr, const Schema& schema) {
  ExprPtr clone = expr.Clone();
  return BindExpr(clone.get(), schema).ok();
}

}  // namespace

std::string AccessPathInfo::ToString() const {
  const char* kind_name = kind == Kind::kSeqScan      ? "SeqScan"
                          : kind == Kind::kIndexRange ? "IndexRange"
                                                      : "IndexUnion";
  return StrFormat("%s %s%s%s: %s%s sel=%.4f rows=%.0f", kind_name,
                   table.c_str(), qualifier.empty() ? "" : " AS ",
                   qualifier.c_str(), index_column.c_str(),
                   kind == Kind::kIndexUnion
                       ? StrFormat(" (%zu ranges)", num_ranges).c_str()
                       : "",
                   selectivity, estimated_rows);
}

const AccessPathInfo* ExplainInfo::Find(const std::string& name) const {
  for (const auto& info : tables) {
    if (EqualsIgnoreCase(info.qualifier, name) ||
        EqualsIgnoreCase(info.table, name)) {
      return &info;
    }
  }
  return nullptr;
}

std::string ExplainInfo::ToString() const {
  std::string out;
  for (const auto& info : tables) {
    out += info.ToString();
    out += "\n";
  }
  return out;
}

Result<PlannedQuery> Optimizer::Plan(const SelectStmt& stmt) {
  PlannedQuery out;
  CteScope scope;
  SIEVE_ASSIGN_OR_RETURN(out.root, PlanStmt(stmt, scope, &out.explain));
  return out;
}

Result<OperatorPtr> Optimizer::PlanStmt(const SelectStmt& stmt,
                                        const CteScope& scope,
                                        ExplainInfo* explain) {
  // Register CTEs into the child scope.
  CteScope child_scope = scope;
  for (const auto& cte : stmt.ctes) {
    child_scope[ToLower(cte.name)] = cte.query;
  }

  // Left-fold the set-operation chain, honoring the per-link operator.
  SIEVE_ASSIGN_OR_RETURN(OperatorPtr result,
                         PlanCore(stmt, child_scope, explain));
  const SelectStmt* link = &stmt;
  while (link->union_next != nullptr) {
    const SelectStmt* next = link->union_next.get();
    SIEVE_ASSIGN_OR_RETURN(OperatorPtr arm,
                           PlanCore(*next, child_scope, explain));
    if (link->set_op == SetOpKind::kExcept) {
      result = std::make_unique<ExceptOperator>(std::move(result),
                                                std::move(arm));
    } else {
      std::vector<OperatorPtr> arms;
      arms.push_back(std::move(result));
      arms.push_back(std::move(arm));
      result = std::make_unique<UnionOperator>(
          std::move(arms), /*all=*/link->set_op == SetOpKind::kUnionAll);
    }
    link = next;
  }
  return result;
}

Result<OperatorPtr> Optimizer::PlanTableAccess(const TableRef& ref,
                                               const SelectStmt& stmt,
                                               const CteScope& scope,
                                               ExplainInfo* explain) {
  // Derived table.
  if (ref.subquery != nullptr) {
    SIEVE_ASSIGN_OR_RETURN(OperatorPtr child,
                           PlanStmt(*ref.subquery, scope, explain));
    return std::make_unique<MaterializedScanOperator>("", ref.EffectiveName(),
                                                      std::move(child));
  }

  // CTE reference.
  auto cte_it = scope.find(ToLower(ref.table_name));
  if (cte_it != scope.end()) {
    SIEVE_ASSIGN_OR_RETURN(OperatorPtr producer,
                           PlanStmt(*cte_it->second, scope, explain));
    return std::make_unique<MaterializedScanOperator>(
        ToLower(ref.table_name), ref.EffectiveName(), std::move(producer));
  }

  // Base table.
  SIEVE_ASSIGN_OR_RETURN(TableEntry * entry, catalog_->Get(ref.table_name));
  const Table& table = *entry->table;
  const std::string qualifier = ref.EffectiveName();
  const double n = static_cast<double>(table.size());

  AccessPathInfo info;
  info.table = table.name();
  info.qualifier = qualifier;
  info.kind = AccessPathInfo::Kind::kSeqScan;
  info.selectivity = 1.0;
  info.estimated_rows = n;

  const bool single_table = stmt.from.size() == 1;
  std::vector<ExprPtr> conjuncts;
  if (stmt.where != nullptr) FlattenConjuncts(stmt.where, &conjuncts);

  const bool hints_active = profile_->honor_index_hints;
  const bool force_seq =
      hints_active && ref.hint.kind == IndexHint::Kind::kIgnoreAllIndexes;
  const bool force_index =
      hints_active && ref.hint.kind == IndexHint::Kind::kForceIndex;

  std::optional<Sarg> chosen;
  std::vector<IndexRange> union_ranges;  // bitmap-OR candidate
  double union_selectivity = 0.0;

  if (!force_seq) {
    // Single-index candidate from the top-level conjunction.
    std::vector<std::string> allowed =
        force_index ? ref.hint.columns : std::vector<std::string>{};
    std::optional<Sarg> best =
        BestSarg(conjuncts, table, qualifier, entry->indexes, allowed);

    // Bitmap-OR candidate: top-level OR where every disjunct has a sargable
    // conjunct (the shape of Sieve's guarded policy expressions).
    bool union_ok = false;
    if (profile_->enable_bitmap_or && single_table && stmt.where != nullptr &&
        stmt.where->kind() == ExprKind::kOr) {
      union_ok = true;
      const auto& disjuncts =
          static_cast<const OrExpr&>(*stmt.where).children();
      for (const auto& disjunct : disjuncts) {
        std::vector<ExprPtr> inner;
        FlattenConjuncts(disjunct, &inner);
        std::optional<Sarg> s =
            BestSarg(inner, table, qualifier, entry->indexes, {});
        if (!s.has_value()) {
          union_ok = false;
          break;
        }
        for (auto& r : s->ranges) union_ranges.push_back(std::move(r));
        union_selectivity += s->selectivity;
      }
      union_selectivity = std::min(1.0, union_selectivity);
      if (!union_ok) {
        union_ranges.clear();
        union_selectivity = 0.0;
      }
    }

    const double seq_cost = n;
    const double penalty = profile_->random_access_penalty;
    double best_cost = seq_cost;
    enum { kSeq, kSingle, kUnion } pick = kSeq;

    if (best.has_value()) {
      double cost = best->selectivity * n * penalty;
      // FORCE INDEX semantics: the optimizer treats a table scan as very
      // expensive and uses the hinted index whenever it can.
      if (force_index || cost < best_cost) {
        best_cost = cost;
        pick = kSingle;
      }
    }
    if (union_ok) {
      double cost = union_selectivity * n * penalty;
      if (cost < best_cost) {
        best_cost = cost;
        pick = kUnion;
      }
    }

    if (pick == kSingle) {
      chosen = std::move(best);
    } else if (pick == kUnion) {
      // fallthrough with union_ranges set
    } else {
      union_ranges.clear();
    }
  }

  OperatorPtr scan;
  if (chosen.has_value()) {
    info.index_column = chosen->column;
    info.selectivity = chosen->selectivity;
    info.estimated_rows = chosen->selectivity * n;
    if (chosen->ranges.size() == 1) {
      info.kind = AccessPathInfo::Kind::kIndexRange;
      scan = std::make_unique<IndexRangeScanOperator>(
          entry, qualifier, std::move(chosen->ranges.front()));
    } else {
      info.kind = AccessPathInfo::Kind::kIndexUnion;
      info.num_ranges = chosen->ranges.size();
      scan = std::make_unique<IndexUnionBitmapScanOperator>(
          entry, qualifier, std::move(chosen->ranges));
    }
  } else if (!union_ranges.empty()) {
    info.kind = AccessPathInfo::Kind::kIndexUnion;
    info.index_column = union_ranges.front().column;
    info.num_ranges = union_ranges.size();
    info.selectivity = union_selectivity;
    info.estimated_rows = union_selectivity * n;
    scan = std::make_unique<IndexUnionBitmapScanOperator>(
        entry, qualifier, std::move(union_ranges));
  } else {
    scan = std::make_unique<SeqScanOperator>(entry, qualifier);
  }

  explain->tables.push_back(std::move(info));
  return scan;
}

Result<OperatorPtr> Optimizer::PlanCore(const SelectStmt& stmt,
                                        const CteScope& scope,
                                        ExplainInfo* explain) {
  if (stmt.from.empty()) {
    return Status::BindError("queries without a FROM clause are unsupported");
  }

  std::vector<ExprPtr> conjuncts;
  if (stmt.where != nullptr) FlattenConjuncts(stmt.where, &conjuncts);

  // Left-fold the FROM list, preferring hash joins on equi-conjuncts.
  OperatorPtr current;
  for (const auto& ref : stmt.from) {
    SIEVE_ASSIGN_OR_RETURN(OperatorPtr next,
                           PlanTableAccess(ref, stmt, scope, explain));
    if (current == nullptr) {
      current = std::move(next);
      continue;
    }
    // Probe the schemas of both sides for join keys.
    std::vector<ExprPtr> left_keys;
    std::vector<ExprPtr> right_keys;
    for (const auto& conjunct : conjuncts) {
      if (conjunct->kind() != ExprKind::kComparison) continue;
      const auto& cmp = static_cast<const ComparisonExpr&>(*conjunct);
      if (cmp.op() != CompareOp::kEq) continue;
      if (cmp.left()->kind() != ExprKind::kColumnRef ||
          cmp.right()->kind() != ExprKind::kColumnRef) {
        continue;
      }
      bool l_in_left = BindsAgainst(*cmp.left(), current->schema());
      bool l_in_right = BindsAgainst(*cmp.left(), next->schema());
      bool r_in_left = BindsAgainst(*cmp.right(), current->schema());
      bool r_in_right = BindsAgainst(*cmp.right(), next->schema());
      if (l_in_left && !l_in_right && r_in_right && !r_in_left) {
        left_keys.push_back(cmp.left()->Clone());
        right_keys.push_back(cmp.right()->Clone());
      } else if (r_in_left && !r_in_right && l_in_right && !l_in_left) {
        left_keys.push_back(cmp.right()->Clone());
        right_keys.push_back(cmp.left()->Clone());
      }
    }
    if (!left_keys.empty()) {
      current = std::make_unique<HashJoinOperator>(
          std::move(current), std::move(next), std::move(left_keys),
          std::move(right_keys));
    } else {
      current = std::make_unique<NestedLoopJoinOperator>(std::move(current),
                                                         std::move(next));
    }
  }

  // Residual filter: the full WHERE clause (access paths only pre-filter).
  if (stmt.where != nullptr) {
    current = std::make_unique<FilterOperator>(std::move(current),
                                               stmt.where->Clone());
  }

  // Aggregate / project.
  if (stmt.HasAggregates() || !stmt.group_by.empty()) {
    std::vector<ExprPtr> group_by;
    group_by.reserve(stmt.group_by.size());
    for (const auto& g : stmt.group_by) group_by.push_back(g->Clone());
    std::vector<SelectItem> items;
    items.reserve(stmt.items.size());
    for (const auto& item : stmt.items) {
      SelectItem copy = item;
      if (copy.expr != nullptr) copy.expr = copy.expr->Clone();
      items.push_back(std::move(copy));
    }
    current = std::make_unique<HashAggregateOperator>(
        std::move(current), std::move(group_by), std::move(items));
  } else if (!stmt.select_star) {
    std::vector<SelectItem> items;
    items.reserve(stmt.items.size());
    for (const auto& item : stmt.items) {
      SelectItem copy = item;
      copy.expr = copy.expr->Clone();
      items.push_back(std::move(copy));
    }
    current =
        std::make_unique<ProjectOperator>(std::move(current), std::move(items));
  }
  return current;
}

double Optimizer::EstimatePredicateSelectivity(const std::string& table,
                                               const Expr& predicate) const {
  const TableEntry* entry = catalog_->Find(table);
  if (entry == nullptr) return 1.0;
  auto sarg = ExtractSarg(predicate, *entry->table, entry->table->name(),
                          entry->indexes);
  if (!sarg.has_value()) return 1.0;
  return sarg->selectivity;
}

}  // namespace sieve
