#include "plan/operators.h"

namespace sieve {

namespace {

Schema ConcatSchemas(const Schema& left, const Schema& right) {
  Schema out = left;
  for (const auto& col : right.columns()) out.AddColumn(col);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// HashJoinOperator
// ---------------------------------------------------------------------------

size_t HashJoinOperator::VecValueHash::operator()(
    const std::vector<Value>& key) const {
  size_t h = 1469598103934665603ULL;
  for (const Value& v : key) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

bool HashJoinOperator::VecValueEq::operator()(
    const std::vector<Value>& a, const std::vector<Value>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

HashJoinOperator::HashJoinOperator(OperatorPtr left, OperatorPtr right,
                                   std::vector<ExprPtr> left_keys,
                                   std::vector<ExprPtr> right_keys)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)) {}

Status HashJoinOperator::Open(ExecContext* ctx) {
  SIEVE_RETURN_IF_ERROR(left_->Open(ctx));
  SIEVE_RETURN_IF_ERROR(right_->Open(ctx));
  schema_ = ConcatSchemas(left_->schema(), right_->schema());
  for (auto& k : left_keys_) {
    SIEVE_RETURN_IF_ERROR(BindExpr(k.get(), left_->schema()));
  }
  for (auto& k : right_keys_) {
    SIEVE_RETURN_IF_ERROR(BindExpr(k.get(), right_->schema()));
  }
  left_eval_ = std::make_unique<Evaluator>(&left_->schema(), ctx->hooks,
                                           ctx->metadata, ctx->stats);
  right_eval_ = std::make_unique<Evaluator>(&right_->schema(), ctx->hooks,
                                            ctx->metadata, ctx->stats);
  // Build side: right input.
  build_.clear();
  Row row;
  while (true) {
    SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    SIEVE_ASSIGN_OR_RETURN(bool has, right_->Next(ctx, &row));
    if (!has) break;
    std::vector<Value> key;
    key.reserve(right_keys_.size());
    for (const auto& k : right_keys_) {
      SIEVE_ASSIGN_OR_RETURN(Value v, right_eval_->Eval(*k, row));
      key.push_back(std::move(v));
    }
    build_[std::move(key)].push_back(row);
  }
  matches_ = nullptr;
  match_pos_ = 0;
  return Status::OK();
}

Result<bool> HashJoinOperator::Next(ExecContext* ctx, Row* out) {
  while (true) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      const Row& right_row = (*matches_)[match_pos_++];
      *out = current_left_;
      out->insert(out->end(), right_row.begin(), right_row.end());
      return true;
    }
    SIEVE_ASSIGN_OR_RETURN(bool has, left_->Next(ctx, &current_left_));
    if (!has) return false;
    std::vector<Value> key;
    key.reserve(left_keys_.size());
    for (const auto& k : left_keys_) {
      SIEVE_ASSIGN_OR_RETURN(Value v, left_eval_->Eval(*k, current_left_));
      key.push_back(std::move(v));
    }
    auto it = build_.find(key);
    matches_ = it == build_.end() ? nullptr : &it->second;
    match_pos_ = 0;
  }
}

std::string HashJoinOperator::name() const {
  std::string keys;
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) keys += ", ";
    keys += left_keys_[i]->ToSql() + "=" + right_keys_[i]->ToSql();
  }
  return "HashJoin(" + keys + ")";
}

// ---------------------------------------------------------------------------
// NestedLoopJoinOperator
// ---------------------------------------------------------------------------

NestedLoopJoinOperator::NestedLoopJoinOperator(OperatorPtr left,
                                               OperatorPtr right)
    : left_(std::move(left)), right_(std::move(right)) {}

Status NestedLoopJoinOperator::Open(ExecContext* ctx) {
  SIEVE_RETURN_IF_ERROR(left_->Open(ctx));
  SIEVE_RETURN_IF_ERROR(right_->Open(ctx));
  schema_ = ConcatSchemas(left_->schema(), right_->schema());
  right_rows_.clear();
  Row row;
  while (true) {
    SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    SIEVE_ASSIGN_OR_RETURN(bool has, right_->Next(ctx, &row));
    if (!has) break;
    right_rows_.push_back(row);
  }
  left_valid_ = false;
  right_pos_ = 0;
  return Status::OK();
}

Result<bool> NestedLoopJoinOperator::Next(ExecContext* ctx, Row* out) {
  while (true) {
    if (!left_valid_) {
      SIEVE_ASSIGN_OR_RETURN(bool has, left_->Next(ctx, &current_left_));
      if (!has) return false;
      left_valid_ = true;
      right_pos_ = 0;
    }
    if (right_pos_ >= right_rows_.size()) {
      left_valid_ = false;
      continue;
    }
    if ((right_pos_ & 4095) == 0) {
      SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    }
    const Row& right_row = right_rows_[right_pos_++];
    *out = current_left_;
    out->insert(out->end(), right_row.begin(), right_row.end());
    return true;
  }
}

std::string NestedLoopJoinOperator::name() const { return "NestedLoopJoin"; }

}  // namespace sieve
