#include "plan/executor.h"
#include "plan/operators.h"

namespace sieve {

namespace {

Schema ConcatSchemas(const Schema& left, const Schema& right) {
  Schema out = left;
  for (const auto& col : right.columns()) out.AddColumn(col);
  return out;
}

// Deep-copies key expressions so a probe worker can bind its own set
// (binding mutates expression nodes in place).
std::vector<ExprPtr> CloneExprs(const std::vector<ExprPtr>& exprs) {
  std::vector<ExprPtr> out;
  out.reserve(exprs.size());
  for (const auto& e : exprs) out.push_back(e->Clone());
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// HashJoinOperator
// ---------------------------------------------------------------------------

size_t HashJoinOperator::VecValueHash::operator()(
    const std::vector<Value>& key) const {
  size_t h = 1469598103934665603ULL;
  for (const Value& v : key) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

bool HashJoinOperator::VecValueEq::operator()(
    const std::vector<Value>& a, const std::vector<Value>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

HashJoinOperator::HashJoinOperator(OperatorPtr left, OperatorPtr right,
                                   std::vector<ExprPtr> left_keys,
                                   std::vector<ExprPtr> right_keys)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)) {}

Status HashJoinOperator::BuildHashTable(ExecContext* ctx) {
  SIEVE_RETURN_IF_ERROR(right_->Open(ctx));
  for (auto& k : right_keys_) {
    SIEVE_RETURN_IF_ERROR(BindExpr(k.get(), right_->schema()));
  }
  right_eval_ = std::make_unique<Evaluator>(&right_->schema(), ctx->hooks,
                                            ctx->metadata, ctx->stats);
  build_.clear();
  RowBatch batch(
      EffectiveBatchSize(ctx->batch_size, right_->schema().num_columns()));
  Row row;
  while (true) {
    SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    SIEVE_ASSIGN_OR_RETURN(bool has, right_->NextBatch(ctx, &batch));
    if (!has) break;
    for (size_t r = 0; r < batch.size(); ++r) {
      batch.MaterializeRow(r, &row);
      std::vector<Value> key;
      key.reserve(right_keys_.size());
      for (const auto& k : right_keys_) {
        SIEVE_ASSIGN_OR_RETURN(Value v, right_eval_->Eval(*k, row));
        key.push_back(std::move(v));
      }
      build_[std::move(key)].push_back(std::move(row));
    }
  }
  return Status::OK();
}

Status HashJoinOperator::Open(ExecContext* ctx) {
  buffered_ = false;
  joined_.clear();
  out_pos_ = 0;
  probe_pos_ = 0;
  // Parallel probe: the build side drains once on the calling thread (its
  // own CTE inputs still materialize in parallel inside its Open), then
  // the probe side fans out as morsels against the finished table.
  if (ctx->num_threads > 1 && ctx->pool != nullptr) {
    std::vector<OperatorPtr> parts;
    if (left_->CreatePartitions(PlanPartitionCount(*left_, *ctx),
                                &parts) &&
        !parts.empty()) {
      SIEVE_RETURN_IF_ERROR(BuildHashTable(ctx));
      SIEVE_RETURN_IF_ERROR(ParallelProbe(ctx, &parts));
      schema_ = ConcatSchemas(parts.front()->schema(), right_->schema());
      buffered_ = true;
      return Status::OK();
    }
  }

  // Serial probe: open the probe side first (so its errors surface before
  // the build drain, as they always have), then build and stream left rows
  // through Next.
  SIEVE_RETURN_IF_ERROR(left_->Open(ctx));
  SIEVE_RETURN_IF_ERROR(BuildHashTable(ctx));
  schema_ = ConcatSchemas(left_->schema(), right_->schema());
  for (auto& k : left_keys_) {
    SIEVE_RETURN_IF_ERROR(BindExpr(k.get(), left_->schema()));
  }
  left_eval_ = std::make_unique<Evaluator>(&left_->schema(), ctx->hooks,
                                           ctx->metadata, ctx->stats);
  probe_batch_.reset(
      EffectiveBatchSize(ctx->batch_size, left_->schema().num_columns()));
  matches_ = nullptr;
  match_pos_ = 0;
  return Status::OK();
}

Status HashJoinOperator::ParallelProbe(ExecContext* ctx,
                                       std::vector<OperatorPtr>* parts) {
  const size_t n = parts->size();
  std::vector<std::vector<Row>> worker_rows(n);

  // The build table is read-only from here on: concurrent probes race only
  // on immutable buckets.
  const BuildTable& build = build_;
  SIEVE_RETURN_IF_ERROR(
      RunWorkers(ctx, n, [&](size_t i, ExecContext* worker) {
        Operator* part = (*parts)[i].get();
        SIEVE_RETURN_IF_ERROR(part->Open(worker));
        std::vector<ExprPtr> keys = CloneExprs(left_keys_);
        for (auto& k : keys) {
          SIEVE_RETURN_IF_ERROR(BindExpr(k.get(), part->schema()));
        }
        Evaluator eval(&part->schema(), worker->hooks, worker->metadata,
                       worker->stats);
        RowBatch batch(EffectiveBatchSize(worker->batch_size,
                                          part->schema().num_columns()));
        Row row;
        while (true) {
          SIEVE_ASSIGN_OR_RETURN(bool has, part->NextBatch(worker, &batch));
          if (!has) return Status::OK();
          for (size_t r = 0; r < batch.size(); ++r) {
            batch.MaterializeRow(r, &row);
            std::vector<Value> key;
            key.reserve(keys.size());
            for (const auto& k : keys) {
              SIEVE_ASSIGN_OR_RETURN(Value v, eval.Eval(*k, row));
              key.push_back(std::move(v));
            }
            auto it = build.find(key);
            if (it == build.end()) continue;
            const std::vector<Row>& matches = it->second;
            for (size_t m = 0; m < matches.size(); ++m) {
              Row out;
              out.reserve(row.size() + matches[m].size());
              if (m + 1 == matches.size()) {
                // Last match: the probe row is dead — steal its cells.
                for (Value& v : row) out.push_back(std::move(v));
              } else {
                out.insert(out.end(), row.begin(), row.end());
              }
              out.insert(out.end(), matches[m].begin(), matches[m].end());
              worker_rows[i].push_back(std::move(out));
            }
          }
        }
      }));

  // Partitions cover contiguous probe slices in input order, and matches
  // are appended in build-insertion order — concatenation reproduces the
  // serial join output exactly.
  size_t total = 0;
  for (const auto& rows : worker_rows) total += rows.size();
  joined_.reserve(total);
  for (auto& rows : worker_rows) {
    for (Row& row : rows) joined_.push_back(std::move(row));
  }
  return Status::OK();
}

Result<bool> HashJoinOperator::NextBatch(ExecContext* ctx, RowBatch* out) {
  out->clear();
  if (buffered_) {
    // joined_ is owned by this operator until the next Open; serve views.
    while (out_pos_ < joined_.size() && !out->full()) {
      out->AppendExternalRow(joined_[out_pos_++]);
    }
    return !out->empty();
  }
  while (!out->full()) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      const Row& right_row = (*matches_)[match_pos_++];
      Row o;
      o.reserve(current_left_.size() + right_row.size());
      if (match_pos_ == matches_->size()) {
        // Last match of this probe row: steal its cells.
        for (Value& v : current_left_) o.push_back(std::move(v));
      } else {
        o.insert(o.end(), current_left_.begin(), current_left_.end());
      }
      o.insert(o.end(), right_row.begin(), right_row.end());
      out->PushRow(std::move(o));
      continue;
    }
    if (probe_pos_ >= probe_batch_.size()) {
      SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
      SIEVE_ASSIGN_OR_RETURN(bool has, left_->NextBatch(ctx, &probe_batch_));
      if (!has) break;
      probe_pos_ = 0;
    }
    probe_batch_.MaterializeRow(probe_pos_++, &current_left_);
    std::vector<Value> key;
    key.reserve(left_keys_.size());
    for (const auto& k : left_keys_) {
      SIEVE_ASSIGN_OR_RETURN(Value v, left_eval_->Eval(*k, current_left_));
      key.push_back(std::move(v));
    }
    auto it = build_.find(key);
    matches_ = it == build_.end() ? nullptr : &it->second;
    match_pos_ = 0;
  }
  return !out->empty();
}

Result<bool> HashJoinOperator::Next(ExecContext* ctx, Row* out) {
  if (buffered_) {
    if (out_pos_ >= joined_.size()) return false;
    *out = std::move(joined_[out_pos_++]);
    return true;
  }
  while (true) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      const Row& right_row = (*matches_)[match_pos_++];
      *out = current_left_;
      out->insert(out->end(), right_row.begin(), right_row.end());
      return true;
    }
    SIEVE_ASSIGN_OR_RETURN(bool has, left_->Next(ctx, &current_left_));
    if (!has) return false;
    std::vector<Value> key;
    key.reserve(left_keys_.size());
    for (const auto& k : left_keys_) {
      SIEVE_ASSIGN_OR_RETURN(Value v, left_eval_->Eval(*k, current_left_));
      key.push_back(std::move(v));
    }
    auto it = build_.find(key);
    matches_ = it == build_.end() ? nullptr : &it->second;
    match_pos_ = 0;
  }
}

std::string HashJoinOperator::name() const {
  std::string keys;
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) keys += ", ";
    keys += left_keys_[i]->ToSql() + "=" + right_keys_[i]->ToSql();
  }
  return "HashJoin(" + keys + ")";
}

// ---------------------------------------------------------------------------
// NestedLoopJoinOperator
// ---------------------------------------------------------------------------

NestedLoopJoinOperator::NestedLoopJoinOperator(OperatorPtr left,
                                               OperatorPtr right)
    : left_(std::move(left)), right_(std::move(right)) {}

NestedLoopJoinOperator::NestedLoopJoinOperator(
    OperatorPtr left, std::shared_ptr<SharedRight> shared)
    : left_(std::move(left)), shared_(std::move(shared)) {}

Status NestedLoopJoinOperator::Open(ExecContext* ctx) {
  SIEVE_RETURN_IF_ERROR(left_->Open(ctx));
  // The right side materializes exactly once: partition clones share one
  // slot (the first opener drives the producer, everyone reads the result),
  // the unpartitioned operator materializes privately.
  Operator* producer = shared_ != nullptr ? shared_->producer : right_.get();
  auto produce = [producer, ctx](MaterializedResult* out) -> Status {
    return Executor::Materialize(producer, ctx, &out->schema, &out->rows);
  };
  const MaterializedResult* result = nullptr;
  if (shared_ != nullptr) {
    SIEVE_ASSIGN_OR_RETURN(result, shared_->slot.GetOrProduce(produce));
  } else {
    private_right_ = MaterializedResult();
    SIEVE_RETURN_IF_ERROR(produce(&private_right_));
    result = &private_right_;
  }
  right_rows_ = &result->rows;
  schema_ = ConcatSchemas(left_->schema(), result->schema);
  left_valid_ = false;
  right_pos_ = 0;
  ticks_ = 0;
  left_batch_.reset(
      EffectiveBatchSize(ctx->batch_size, left_->schema().num_columns()));
  left_pos_ = 0;
  return Status::OK();
}

Result<bool> NestedLoopJoinOperator::Next(ExecContext* ctx, Row* out) {
  while (true) {
    if (!left_valid_) {
      SIEVE_ASSIGN_OR_RETURN(bool has, left_->Next(ctx, &current_left_));
      if (!has) return false;
      left_valid_ = true;
      right_pos_ = 0;
    }
    if (right_pos_ >= right_rows_->size()) {
      left_valid_ = false;
      continue;
    }
    if ((ticks_++ & 4095) == 0) {
      SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    }
    const Row& right_row = (*right_rows_)[right_pos_++];
    out->clear();
    out->reserve(current_left_.size() + right_row.size());
    out->insert(out->end(), current_left_.begin(), current_left_.end());
    out->insert(out->end(), right_row.begin(), right_row.end());
    return true;
  }
}

Result<bool> NestedLoopJoinOperator::NextBatch(ExecContext* ctx,
                                               RowBatch* out) {
  out->clear();
  while (!out->full()) {
    if (!left_valid_) {
      if (left_pos_ >= left_batch_.size()) {
        SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
        SIEVE_ASSIGN_OR_RETURN(bool has, left_->NextBatch(ctx, &left_batch_));
        if (!has) break;
        left_pos_ = 0;
      }
      left_batch_.MaterializeRow(left_pos_++, &current_left_);
      left_valid_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_->size() && !out->full()) {
      const Row& right_row = (*right_rows_)[right_pos_++];
      Row o;
      o.reserve(current_left_.size() + right_row.size());
      if (right_pos_ == right_rows_->size()) {
        // Last right row for this outer row: steal the outer cells.
        for (Value& v : current_left_) o.push_back(std::move(v));
      } else {
        o.insert(o.end(), current_left_.begin(), current_left_.end());
      }
      o.insert(o.end(), right_row.begin(), right_row.end());
      out->PushRow(std::move(o));
    }
    if (right_pos_ >= right_rows_->size()) left_valid_ = false;
  }
  return !out->empty();
}

bool NestedLoopJoinOperator::CreatePartitions(
    size_t num_parts, std::vector<OperatorPtr>* out) const {
  // Only the original operator partitions (clones have no right subtree).
  if (right_ == nullptr) return false;
  std::vector<OperatorPtr> left_parts;
  if (!left_->CreatePartitions(num_parts, &left_parts)) return false;
  auto shared = std::make_shared<SharedRight>();
  shared->producer = right_.get();
  for (auto& part : left_parts) {
    out->push_back(
        OperatorPtr(new NestedLoopJoinOperator(std::move(part), shared)));
  }
  return true;
}

std::string NestedLoopJoinOperator::name() const { return "NestedLoopJoin"; }

}  // namespace sieve
