#include "plan/operators.h"

#include <algorithm>

#include "common/string_util.h"
#include "plan/executor.h"

namespace sieve {

Schema QualifySchema(const Schema& schema, const std::string& qualifier) {
  Schema out;
  for (const auto& col : schema.columns()) {
    std::string base = col.name;
    size_t dot = base.rfind('.');
    if (dot != std::string::npos) base = base.substr(dot + 1);
    out.AddColumn(
        {qualifier.empty() ? base : qualifier + "." + base, col.type});
  }
  return out;
}

void PartitionSlice(size_t total, size_t part, size_t num_parts, size_t* begin,
                    size_t* end) {
  size_t chunk = num_parts == 0 ? total : (total + num_parts - 1) / num_parts;
  *begin = std::min(part * chunk, total);
  *end = std::min(*begin + chunk, total);
}

uint64_t RowHash64(const Row& row) {
  uint64_t h = 1469598103934665603ULL;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

std::string RowFingerprint(const Row& row) {
  std::string out;
  for (const Value& v : row) {
    out += static_cast<char>(v.type());
    out += v.ToString();
    out += '\x1f';
  }
  return out;
}

std::vector<SelectItem> CloneItems(const std::vector<SelectItem>& items) {
  std::vector<SelectItem> out;
  out.reserve(items.size());
  for (const auto& item : items) {
    out.push_back(SelectItem{
        item.expr != nullptr ? item.expr->Clone() : nullptr, item.agg,
        item.alias});
  }
  return out;
}

// ---------------------------------------------------------------------------
// FilterOperator
// ---------------------------------------------------------------------------

FilterOperator::FilterOperator(OperatorPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status FilterOperator::Open(ExecContext* ctx) {
  SIEVE_RETURN_IF_ERROR(child_->Open(ctx));
  SIEVE_RETURN_IF_ERROR(BindExpr(predicate_.get(), child_->schema()));
  evaluator_ = std::make_unique<Evaluator>(&child_->schema(), ctx->hooks,
                                           ctx->metadata, ctx->stats);
  rows_seen_ = 0;
  child_batch_.reset(
      EffectiveBatchSize(ctx->batch_size, child_->schema().num_columns()));
  return Status::OK();
}

Result<bool> FilterOperator::Next(ExecContext* ctx, Row* out) {
  while (true) {
    if ((++rows_seen_ & 1023) == 0) {
      SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    }
    SIEVE_ASSIGN_OR_RETURN(bool has, child_->Next(ctx, out));
    if (!has) return false;
    SIEVE_ASSIGN_OR_RETURN(bool pass, evaluator_->EvalPredicate(*predicate_, *out));
    if (pass) return true;
  }
}

Result<bool> FilterOperator::NextBatch(ExecContext* ctx, RowBatch* out) {
  out->clear();
  while (true) {
    SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    SIEVE_ASSIGN_OR_RETURN(bool has, child_->NextBatch(ctx, &child_batch_));
    if (!has) return false;
    // One predicate-tree walk covers the whole batch — this is where the
    // guard / Δ policy checks batch across tuples: the kernels run
    // column-wise over the batch's typed arrays.
    SIEVE_RETURN_IF_ERROR(
        evaluator_->EvalPredicateBatch(*predicate_, child_batch_, &pass_));
    child_batch_.NarrowToPassing(pass_.data());
    if (child_batch_.empty()) continue;
    // No rows move: the surviving rows travel as a selection vector over
    // the child batch's columns.
    out->SwapWith(&child_batch_);
    return true;
  }
}

std::string FilterOperator::name() const {
  return "Filter(" + predicate_->ToSql() + ")";
}

bool FilterOperator::CreatePartitions(size_t num_parts,
                                      std::vector<OperatorPtr>* out) const {
  std::vector<OperatorPtr> children;
  if (!child_->CreatePartitions(num_parts, &children)) return false;
  for (auto& child : children) {
    out->push_back(
        std::make_unique<FilterOperator>(std::move(child), predicate_->Clone()));
  }
  return true;
}

// ---------------------------------------------------------------------------
// ProjectOperator
// ---------------------------------------------------------------------------

ProjectOperator::ProjectOperator(OperatorPtr child,
                                 std::vector<SelectItem> items)
    : child_(std::move(child)), items_(std::move(items)) {}

Status ProjectOperator::Open(ExecContext* ctx) {
  SIEVE_RETURN_IF_ERROR(child_->Open(ctx));
  schema_ = Schema();
  for (auto& item : items_) {
    SIEVE_RETURN_IF_ERROR(BindExpr(item.expr.get(), child_->schema()));
    DataType type = DataType::kNull;
    if (item.expr->kind() == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(*item.expr);
      if (ref.bound_index() >= 0) {
        type = child_->schema().column(static_cast<size_t>(ref.bound_index())).type;
      }
    } else if (item.expr->kind() == ExprKind::kLiteral) {
      type = static_cast<const LiteralExpr&>(*item.expr).value().type();
    }
    schema_.AddColumn({item.OutputName(), type});
  }
  evaluator_ = std::make_unique<Evaluator>(&child_->schema(), ctx->hooks,
                                           ctx->metadata, ctx->stats);
  child_batch_.reset(
      EffectiveBatchSize(ctx->batch_size, child_->schema().num_columns()));

  // Move plan: when every item is a bound column ref, the consumed input
  // row's cells can be stolen instead of copied — a column moves at its
  // last referencing item, earlier duplicates copy.
  move_source_.clear();
  move_max_col_ = -1;
  permute_.clear();
  std::vector<int> cols;
  cols.reserve(items_.size());
  for (const auto& item : items_) {
    if (item.expr->kind() != ExprKind::kColumnRef) break;
    int idx = static_cast<const ColumnRefExpr&>(*item.expr).bound_index();
    if (idx < 0) break;
    cols.push_back(idx);
  }
  if (cols.size() == items_.size()) {
    for (size_t j = 0; j < cols.size(); ++j) {
      bool read_later = false;
      for (size_t k = j + 1; k < cols.size(); ++k) {
        if (cols[k] == cols[j]) read_later = true;
      }
      move_source_.push_back(read_later ? -(cols[j] + 1) : cols[j]);
      move_max_col_ = std::max(move_max_col_, cols[j]);
    }
    // The batch path needs only the source column per item: duplicated
    // column descriptors share the batch's arrays, so move-vs-copy is moot.
    permute_.assign(cols.begin(), cols.end());
  }
  return Status::OK();
}

Status ProjectOperator::ProjectRow(Row* input, Row* out) {
  out->clear();
  out->reserve(items_.size());
  if (!move_source_.empty() &&
      static_cast<size_t>(move_max_col_) < input->size()) {
    for (int src : move_source_) {
      if (src >= 0) {
        out->push_back(std::move((*input)[static_cast<size_t>(src)]));
      } else {
        out->push_back((*input)[static_cast<size_t>(-src - 1)]);
      }
    }
    return Status::OK();
  }
  for (const auto& item : items_) {
    SIEVE_ASSIGN_OR_RETURN(Value v, evaluator_->Eval(*item.expr, *input));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

Result<bool> ProjectOperator::Next(ExecContext* ctx, Row* out) {
  Row input;
  SIEVE_ASSIGN_OR_RETURN(bool has, child_->Next(ctx, &input));
  if (!has) return false;
  SIEVE_RETURN_IF_ERROR(ProjectRow(&input, out));
  return true;
}

Result<bool> ProjectOperator::NextBatch(ExecContext* ctx, RowBatch* out) {
  out->clear();
  SIEVE_ASSIGN_OR_RETURN(bool has, child_->NextBatch(ctx, &child_batch_));
  if (!has) return false;
  if (!permute_.empty() &&
      static_cast<size_t>(move_max_col_) < child_batch_.num_columns()) {
    // Pure column projection: take the whole batch and shuffle column
    // descriptors — no cell is copied or even touched.
    out->SwapWith(&child_batch_);
    out->PermuteColumns(permute_);
    return true;
  }
  for (size_t k = 0; k < child_batch_.size(); ++k) {
    child_batch_.MaterializeRow(k, &scratch_in_);
    SIEVE_RETURN_IF_ERROR(ProjectRow(&scratch_in_, &scratch_out_));
    out->PushRow(std::move(scratch_out_));
  }
  return true;
}

std::string ProjectOperator::name() const {
  std::vector<std::string> parts;
  parts.reserve(items_.size());
  for (const auto& item : items_) parts.push_back(item.ToSql());
  return "Project(" + Join(parts, ", ") + ")";
}

bool ProjectOperator::CreatePartitions(size_t num_parts,
                                       std::vector<OperatorPtr>* out) const {
  std::vector<OperatorPtr> children;
  if (!child_->CreatePartitions(num_parts, &children)) return false;
  for (auto& child : children) {
    out->push_back(std::make_unique<ProjectOperator>(std::move(child),
                                                     CloneItems(items_)));
  }
  return true;
}

// ---------------------------------------------------------------------------
// ConcurrentDedupSet
// ---------------------------------------------------------------------------

ConcurrentDedupSet::ConcurrentDedupSet() : stripes_(kNumStripes) {}

bool ConcurrentDedupSet::Offer(const Row& row, uint64_t tag) {
  uint64_t h = RowHash64(row);
  Stripe& stripe = stripes_[h & (kNumStripes - 1)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  std::vector<Entry>& bucket = stripe.buckets[h];
  for (Entry& entry : bucket) {
    if (!RowsEqual(entry.row, row)) continue;
    if (tag < entry.min_tag) {
      entry.min_tag = tag;
      return true;
    }
    return false;
  }
  bucket.push_back(Entry{row, tag});
  return true;
}

bool ConcurrentDedupSet::IsWinner(const Row& row, uint64_t tag) const {
  uint64_t h = RowHash64(row);
  const Stripe& stripe = stripes_[h & (kNumStripes - 1)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.buckets.find(h);
  if (it == stripe.buckets.end()) return false;
  for (const Entry& entry : it->second) {
    if (RowsEqual(entry.row, row)) return entry.min_tag == tag;
  }
  return false;
}

// ---------------------------------------------------------------------------
// UnionOperator
// ---------------------------------------------------------------------------

namespace {

// Serial position tag for parallel UNION dedup: child-major, sequence-minor
// — i.e. the row's position in the serial output stream.
uint64_t UnionTag(size_t child, size_t seq) {
  return (static_cast<uint64_t>(child) << 40) | static_cast<uint64_t>(seq);
}

}  // namespace

UnionOperator::UnionOperator(std::vector<OperatorPtr> children, bool all)
    : children_(std::move(children)), all_(all) {}

Status UnionOperator::Open(ExecContext* ctx) {
  if (children_.empty()) {
    return Status::Internal("UNION requires at least one child");
  }
  buffered_ = false;
  out_rows_.clear();
  out_pos_ = 0;
  if (ctx->num_threads > 1 && ctx->pool != nullptr) {
    return OpenParallel(ctx);
  }
  for (auto& child : children_) {
    SIEVE_RETURN_IF_ERROR(child->Open(ctx));
  }
  schema_ = children_.front()->schema();
  for (const auto& child : children_) {
    if (child->schema().num_columns() != schema_.num_columns()) {
      return Status::ExecutionError(
          "UNION arms produce different column counts");
    }
  }
  current_ = 0;
  seen_.clear();
  child_batch_.reset(
      EffectiveBatchSize(ctx->batch_size, schema_.num_columns()));
  return Status::OK();
}

Status UnionOperator::OpenParallel(ExecContext* ctx) {
  const size_t n = children_.size();
  std::vector<Schema> worker_schemas(n);
  // Per-child surviving rows with their serial-position tags; for UNION ALL
  // the tags are unused and every row survives.
  std::vector<std::vector<std::pair<Row, uint64_t>>> kept(n);
  ConcurrentDedupSet dedup;

  SIEVE_RETURN_IF_ERROR(
      RunWorkers(ctx, n, [&](size_t i, ExecContext* worker) {
        std::vector<Row> rows;
        SIEVE_RETURN_IF_ERROR(Executor::Materialize(
            children_[i].get(), worker, &worker_schemas[i], &rows));
        kept[i].reserve(rows.size());
        for (size_t seq = 0; seq < rows.size(); ++seq) {
          uint64_t tag = UnionTag(i, seq);
          if (!all_ && !dedup.Offer(rows[seq], tag)) continue;
          kept[i].emplace_back(std::move(rows[seq]), tag);
        }
        return Status::OK();
      }));

  schema_ = worker_schemas.front();
  for (const Schema& schema : worker_schemas) {
    if (schema.num_columns() != schema_.num_columns()) {
      return Status::ExecutionError(
          "UNION arms produce different column counts");
    }
  }

  // Ordered merge: children in child order, rows in sequence order. For
  // UNION, only first-occurrence winners survive — exactly the rows (and
  // row order) the serial streaming dedup would emit.
  size_t total = 0;
  for (const auto& child_rows : kept) total += child_rows.size();
  out_rows_.reserve(total);
  for (auto& child_rows : kept) {
    for (auto& [row, tag] : child_rows) {
      if (!all_ && !dedup.IsWinner(row, tag)) continue;
      out_rows_.push_back(std::move(row));
    }
  }
  buffered_ = true;
  return Status::OK();
}

Result<bool> UnionOperator::Next(ExecContext* ctx, Row* out) {
  if (buffered_) {
    if (out_pos_ >= out_rows_.size()) return false;
    *out = std::move(out_rows_[out_pos_++]);
    return true;
  }
  while (current_ < children_.size()) {
    SIEVE_ASSIGN_OR_RETURN(bool has, children_[current_]->Next(ctx, out));
    if (!has) {
      ++current_;
      continue;
    }
    if (!all_) {
      uint64_t h = RowHash64(*out);
      auto& bucket = seen_[h];
      bool duplicate = false;
      for (const Row& prev : bucket) {
        if (RowsEqual(prev, *out)) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      bucket.push_back(*out);
    }
    return true;
  }
  return false;
}

Result<bool> UnionOperator::NextBatch(ExecContext* ctx, RowBatch* out) {
  out->clear();
  if (buffered_) {
    // The buffered rows outlive every batch served from them (they are
    // owned by this operator until the next Open), so views are safe.
    while (out_pos_ < out_rows_.size() && !out->full()) {
      out->AppendExternalRow(out_rows_[out_pos_++]);
    }
    return !out->empty();
  }
  Row row;
  while (out->empty() && current_ < children_.size()) {
    SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    SIEVE_ASSIGN_OR_RETURN(bool has,
                           children_[current_]->NextBatch(ctx, &child_batch_));
    if (!has) {
      ++current_;
      continue;
    }
    for (size_t k = 0; k < child_batch_.size(); ++k) {
      child_batch_.MaterializeRow(k, &row);
      if (!all_) {
        uint64_t h = RowHash64(row);
        auto& bucket = seen_[h];
        bool duplicate = false;
        for (const Row& prev : bucket) {
          if (RowsEqual(prev, row)) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        bucket.push_back(row);
      }
      out->PushRow(std::move(row));
    }
  }
  return !out->empty();
}

std::string UnionOperator::name() const {
  return all_ ? "UnionAll" : "Union";
}

// ---------------------------------------------------------------------------
// ExceptOperator
// ---------------------------------------------------------------------------

ExceptOperator::ExceptOperator(OperatorPtr left, OperatorPtr right)
    : left_(std::move(left)), right_(std::move(right)) {}

bool ExceptOperator::Contains(
    const std::unordered_map<uint64_t, std::vector<Row>>& set,
    const Row& row) const {
  auto it = set.find(RowHash64(row));
  if (it == set.end()) return false;
  for (const Row& prev : it->second) {
    if (RowsEqual(prev, row)) return true;
  }
  return false;
}

Status ExceptOperator::DrainRightSet(ExecContext* ctx) {
  right_rows_.clear();
  RowBatch batch(
      EffectiveBatchSize(ctx->batch_size, right_->schema().num_columns()));
  Row row;
  while (true) {
    SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    SIEVE_ASSIGN_OR_RETURN(bool has, right_->NextBatch(ctx, &batch));
    if (!has) break;
    for (size_t k = 0; k < batch.size(); ++k) {
      batch.MaterializeRow(k, &row);
      right_rows_[RowHash64(row)].push_back(std::move(row));
    }
  }
  return Status::OK();
}

Status ExceptOperator::Open(ExecContext* ctx) {
  buffered_ = false;
  out_rows_.clear();
  out_pos_ = 0;
  emitted_.clear();
  left_batch_.reset(static_cast<size_t>(
      EffectiveBatchSize(ctx->batch_size, /*num_columns=*/0)));

  // Parallel interior: build the subtrahend set once, then partition the
  // minuend probe across morsels (the set is read-only from then on).
  if (ctx->num_threads > 1 && ctx->pool != nullptr) {
    std::vector<OperatorPtr> parts;
    if (left_->CreatePartitions(PlanPartitionCount(*left_, *ctx),
                                &parts) &&
        !parts.empty()) {
      SIEVE_RETURN_IF_ERROR(right_->Open(ctx));
      SIEVE_RETURN_IF_ERROR(DrainRightSet(ctx));
      SIEVE_RETURN_IF_ERROR(OpenParallel(ctx, &parts));
      buffered_ = true;
      return Status::OK();
    }
  }

  SIEVE_RETURN_IF_ERROR(left_->Open(ctx));
  SIEVE_RETURN_IF_ERROR(right_->Open(ctx));
  schema_ = left_->schema();
  if (schema_.num_columns() != right_->schema().num_columns()) {
    return Status::ExecutionError("EXCEPT arms produce different column counts");
  }
  left_batch_.reset(
      EffectiveBatchSize(ctx->batch_size, schema_.num_columns()));
  return DrainRightSet(ctx);
}

Status ExceptOperator::OpenParallel(ExecContext* ctx,
                                    std::vector<OperatorPtr>* parts) {
  const size_t n = parts->size();
  std::vector<std::vector<Row>> kept(n);
  std::vector<Schema> worker_schemas(n);
  const std::unordered_map<uint64_t, std::vector<Row>>& right = right_rows_;

  SIEVE_RETURN_IF_ERROR(
      RunWorkers(ctx, n, [&](size_t i, ExecContext* worker) {
        Operator* part = (*parts)[i].get();
        SIEVE_RETURN_IF_ERROR(part->Open(worker));
        worker_schemas[i] = part->schema();
        RowBatch batch(EffectiveBatchSize(worker->batch_size,
                                          part->schema().num_columns()));
        Row row;
        while (true) {
          SIEVE_ASSIGN_OR_RETURN(bool has, part->NextBatch(worker, &batch));
          if (!has) return Status::OK();
          for (size_t r = 0; r < batch.size(); ++r) {
            batch.MaterializeRow(r, &row);
            if (Contains(right, row)) continue;
            kept[i].push_back(std::move(row));
          }
        }
      }));

  schema_ = worker_schemas.front();
  if (schema_.num_columns() != right_->schema().num_columns()) {
    return Status::ExecutionError("EXCEPT arms produce different column counts");
  }

  // Ordered distinct merge: morsels concatenate to the serial minuend
  // stream, and this streaming dedup is exactly the serial emitted_
  // filter — so rows and row order match a serial run.
  for (std::vector<Row>& rows : kept) {
    for (Row& row : rows) {
      if (Contains(emitted_, row)) continue;
      emitted_[RowHash64(row)].push_back(row);
      out_rows_.push_back(std::move(row));
    }
  }
  return Status::OK();
}

Result<bool> ExceptOperator::Next(ExecContext* ctx, Row* out) {
  if (buffered_) {
    if (out_pos_ >= out_rows_.size()) return false;
    *out = std::move(out_rows_[out_pos_++]);
    return true;
  }
  while (true) {
    SIEVE_ASSIGN_OR_RETURN(bool has, left_->Next(ctx, out));
    if (!has) return false;
    if (Contains(right_rows_, *out)) continue;
    if (Contains(emitted_, *out)) continue;  // EXCEPT emits distinct rows
    emitted_[RowHash64(*out)].push_back(*out);
    return true;
  }
}

Result<bool> ExceptOperator::NextBatch(ExecContext* ctx, RowBatch* out) {
  out->clear();
  if (buffered_) {
    // Buffered rows are owned by this operator until the next Open, so
    // views into them are stable for the batch's lifetime.
    while (out_pos_ < out_rows_.size() && !out->full()) {
      out->AppendExternalRow(out_rows_[out_pos_++]);
    }
    return !out->empty();
  }
  Row row;
  while (out->empty()) {
    SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    SIEVE_ASSIGN_OR_RETURN(bool has, left_->NextBatch(ctx, &left_batch_));
    if (!has) return false;
    for (size_t k = 0; k < left_batch_.size(); ++k) {
      left_batch_.MaterializeRow(k, &row);
      if (Contains(right_rows_, row)) continue;
      if (Contains(emitted_, row)) continue;
      emitted_[RowHash64(row)].push_back(row);
      out->PushRow(std::move(row));
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// MaterializedScanOperator
// ---------------------------------------------------------------------------

MaterializedScanOperator::MaterializedScanOperator(std::string cache_key,
                                                   std::string qualifier,
                                                   OperatorPtr child)
    : cache_key_(std::move(cache_key)),
      qualifier_(std::move(qualifier)),
      child_(std::move(child)) {}

MaterializedScanOperator::MaterializedScanOperator(
    std::string cache_key, std::string qualifier,
    std::shared_ptr<SharedMaterialization> shared, size_t part,
    size_t num_parts)
    : cache_key_(std::move(cache_key)),
      qualifier_(std::move(qualifier)),
      shared_(std::move(shared)),
      part_(part),
      num_parts_(num_parts) {}

Status MaterializedScanOperator::Open(ExecContext* ctx) {
  // This materialization is the hot loop of the Sieve rewrite: the CTE body
  // evaluates guards and the Δ operator over the base table.
  // Executor::Materialize fans it out across partitions when the context
  // enables parallelism, and the CteCache / call_once below make it run
  // exactly once per query no matter which worker opens first.
  Operator* producer = shared_ != nullptr ? shared_->producer : child_.get();
  auto produce = [producer, ctx, this](MaterializedResult* out) -> Status {
    if (producer == nullptr) {
      return Status::Internal("materialized scan has no producer for " +
                              cache_key_);
    }
    return Executor::Materialize(producer, ctx, &out->schema, &out->rows);
  };

  const MaterializedResult* result = nullptr;
  if (!cache_key_.empty()) {
    // Bare serial contexts may open a scan directly without going through
    // Executor::Materialize; parallel contexts always carry the shared
    // query-root cache already.
    if (ctx->ctes == nullptr) ctx->ctes = std::make_shared<CteCache>();
    SIEVE_ASSIGN_OR_RETURN(result,
                           ctx->ctes->GetOrMaterialize(cache_key_, produce));
  } else if (shared_ != nullptr) {
    // Derived table shared by partition clones: the first opener drives the
    // producer, everyone slices the shared rows.
    SIEVE_ASSIGN_OR_RETURN(result, shared_->slot.GetOrProduce(produce));
  } else {
    private_result_ = MaterializedResult();
    SIEVE_RETURN_IF_ERROR(produce(&private_result_));
    result = &private_result_;
  }
  rows_ = &result->rows;
  schema_ = QualifySchema(result->schema, qualifier_);
  PartitionSlice(rows_->size(), part_, num_parts_, &pos_, &end_);
  return Status::OK();
}

Result<bool> MaterializedScanOperator::Next(ExecContext* ctx, Row* out) {
  (void)ctx;
  if (rows_ == nullptr || pos_ >= end_) return false;
  *out = (*rows_)[pos_++];
  return true;
}

Result<bool> MaterializedScanOperator::NextBatch(ExecContext* ctx,
                                                 RowBatch* out) {
  out->clear();
  if (rows_ == nullptr || pos_ >= end_) return false;
  SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
  while (pos_ < end_ && !out->full()) {
    // Views, not copies: the materialized result is shared, immutable and
    // alive for the whole query, so the batch references it directly.
    out->AppendExternalRow((*rows_)[pos_++]);
  }
  return !out->empty();
}

bool MaterializedScanOperator::CreatePartitions(
    size_t num_parts, std::vector<OperatorPtr>* out) const {
  auto shared = std::make_shared<SharedMaterialization>();
  shared->producer = child_.get();
  for (size_t i = 0; i < num_parts; ++i) {
    out->push_back(OperatorPtr(new MaterializedScanOperator(
        cache_key_, qualifier_, shared, i, num_parts)));
  }
  return true;
}

std::string MaterializedScanOperator::name() const {
  return "MaterializedScan(" +
         (cache_key_.empty() ? std::string("derived") : cache_key_) + ")";
}

}  // namespace sieve
