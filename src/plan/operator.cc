#include "plan/operators.h"

#include "common/string_util.h"
#include "plan/executor.h"

namespace sieve {

Schema QualifySchema(const Schema& schema, const std::string& qualifier) {
  Schema out;
  for (const auto& col : schema.columns()) {
    std::string base = col.name;
    size_t dot = base.rfind('.');
    if (dot != std::string::npos) base = base.substr(dot + 1);
    out.AddColumn(
        {qualifier.empty() ? base : qualifier + "." + base, col.type});
  }
  return out;
}

uint64_t RowHash64(const Row& row) {
  uint64_t h = 1469598103934665603ULL;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

std::string RowFingerprint(const Row& row) {
  std::string out;
  for (const Value& v : row) {
    out += static_cast<char>(v.type());
    out += v.ToString();
    out += '\x1f';
  }
  return out;
}

// ---------------------------------------------------------------------------
// FilterOperator
// ---------------------------------------------------------------------------

FilterOperator::FilterOperator(OperatorPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status FilterOperator::Open(ExecContext* ctx) {
  SIEVE_RETURN_IF_ERROR(child_->Open(ctx));
  SIEVE_RETURN_IF_ERROR(BindExpr(predicate_.get(), child_->schema()));
  evaluator_ = std::make_unique<Evaluator>(&child_->schema(), ctx->hooks,
                                           ctx->metadata, ctx->stats);
  rows_seen_ = 0;
  return Status::OK();
}

Result<bool> FilterOperator::Next(ExecContext* ctx, Row* out) {
  while (true) {
    if ((++rows_seen_ & 1023) == 0) {
      SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    }
    SIEVE_ASSIGN_OR_RETURN(bool has, child_->Next(ctx, out));
    if (!has) return false;
    SIEVE_ASSIGN_OR_RETURN(bool pass, evaluator_->EvalPredicate(*predicate_, *out));
    if (pass) return true;
  }
}

std::string FilterOperator::name() const {
  return "Filter(" + predicate_->ToSql() + ")";
}

bool FilterOperator::CreatePartitions(size_t num_parts,
                                      std::vector<OperatorPtr>* out) const {
  std::vector<OperatorPtr> children;
  if (!child_->CreatePartitions(num_parts, &children)) return false;
  for (auto& child : children) {
    out->push_back(
        std::make_unique<FilterOperator>(std::move(child), predicate_->Clone()));
  }
  return true;
}

// ---------------------------------------------------------------------------
// ProjectOperator
// ---------------------------------------------------------------------------

ProjectOperator::ProjectOperator(OperatorPtr child,
                                 std::vector<SelectItem> items)
    : child_(std::move(child)), items_(std::move(items)) {}

Status ProjectOperator::Open(ExecContext* ctx) {
  SIEVE_RETURN_IF_ERROR(child_->Open(ctx));
  schema_ = Schema();
  for (auto& item : items_) {
    SIEVE_RETURN_IF_ERROR(BindExpr(item.expr.get(), child_->schema()));
    DataType type = DataType::kNull;
    if (item.expr->kind() == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(*item.expr);
      if (ref.bound_index() >= 0) {
        type = child_->schema().column(static_cast<size_t>(ref.bound_index())).type;
      }
    } else if (item.expr->kind() == ExprKind::kLiteral) {
      type = static_cast<const LiteralExpr&>(*item.expr).value().type();
    }
    schema_.AddColumn({item.OutputName(), type});
  }
  evaluator_ = std::make_unique<Evaluator>(&child_->schema(), ctx->hooks,
                                           ctx->metadata, ctx->stats);
  return Status::OK();
}

Result<bool> ProjectOperator::Next(ExecContext* ctx, Row* out) {
  Row input;
  SIEVE_ASSIGN_OR_RETURN(bool has, child_->Next(ctx, &input));
  if (!has) return false;
  out->clear();
  out->reserve(items_.size());
  for (const auto& item : items_) {
    SIEVE_ASSIGN_OR_RETURN(Value v, evaluator_->Eval(*item.expr, input));
    out->push_back(std::move(v));
  }
  return true;
}

std::string ProjectOperator::name() const {
  std::vector<std::string> parts;
  parts.reserve(items_.size());
  for (const auto& item : items_) parts.push_back(item.ToSql());
  return "Project(" + Join(parts, ", ") + ")";
}

bool ProjectOperator::CreatePartitions(size_t num_parts,
                                       std::vector<OperatorPtr>* out) const {
  std::vector<OperatorPtr> children;
  if (!child_->CreatePartitions(num_parts, &children)) return false;
  for (auto& child : children) {
    std::vector<SelectItem> items;
    items.reserve(items_.size());
    for (const auto& item : items_) {
      items.push_back(SelectItem{
          item.expr != nullptr ? item.expr->Clone() : nullptr, item.agg,
          item.alias});
    }
    out->push_back(
        std::make_unique<ProjectOperator>(std::move(child), std::move(items)));
  }
  return true;
}

// ---------------------------------------------------------------------------
// UnionOperator
// ---------------------------------------------------------------------------

UnionOperator::UnionOperator(std::vector<OperatorPtr> children, bool all)
    : children_(std::move(children)), all_(all) {}

Status UnionOperator::Open(ExecContext* ctx) {
  if (children_.empty()) {
    return Status::Internal("UNION requires at least one child");
  }
  for (auto& child : children_) {
    SIEVE_RETURN_IF_ERROR(child->Open(ctx));
  }
  schema_ = children_.front()->schema();
  for (const auto& child : children_) {
    if (child->schema().num_columns() != schema_.num_columns()) {
      return Status::ExecutionError(
          "UNION arms produce different column counts");
    }
  }
  current_ = 0;
  seen_.clear();
  return Status::OK();
}

Result<bool> UnionOperator::Next(ExecContext* ctx, Row* out) {
  while (current_ < children_.size()) {
    SIEVE_ASSIGN_OR_RETURN(bool has, children_[current_]->Next(ctx, out));
    if (!has) {
      ++current_;
      continue;
    }
    if (!all_) {
      uint64_t h = RowHash64(*out);
      auto& bucket = seen_[h];
      bool duplicate = false;
      for (const Row& prev : bucket) {
        if (prev.size() != out->size()) continue;
        bool eq = true;
        for (size_t i = 0; i < prev.size(); ++i) {
          if (prev[i].Compare((*out)[i]) != 0) {
            eq = false;
            break;
          }
        }
        if (eq) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      bucket.push_back(*out);
    }
    return true;
  }
  return false;
}

std::string UnionOperator::name() const {
  return all_ ? "UnionAll" : "Union";
}

// ---------------------------------------------------------------------------
// ExceptOperator
// ---------------------------------------------------------------------------

ExceptOperator::ExceptOperator(OperatorPtr left, OperatorPtr right)
    : left_(std::move(left)), right_(std::move(right)) {}

bool ExceptOperator::Contains(
    const std::unordered_map<uint64_t, std::vector<Row>>& set,
    const Row& row) const {
  auto it = set.find(RowHash64(row));
  if (it == set.end()) return false;
  for (const Row& prev : it->second) {
    if (prev.size() != row.size()) continue;
    bool eq = true;
    for (size_t i = 0; i < prev.size(); ++i) {
      if (prev[i].Compare(row[i]) != 0) {
        eq = false;
        break;
      }
    }
    if (eq) return true;
  }
  return false;
}

Status ExceptOperator::Open(ExecContext* ctx) {
  SIEVE_RETURN_IF_ERROR(left_->Open(ctx));
  SIEVE_RETURN_IF_ERROR(right_->Open(ctx));
  if (left_->schema().num_columns() != right_->schema().num_columns()) {
    return Status::ExecutionError("EXCEPT arms produce different column counts");
  }
  right_rows_.clear();
  emitted_.clear();
  Row row;
  while (true) {
    SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    SIEVE_ASSIGN_OR_RETURN(bool has, right_->Next(ctx, &row));
    if (!has) break;
    right_rows_[RowHash64(row)].push_back(row);
  }
  return Status::OK();
}

Result<bool> ExceptOperator::Next(ExecContext* ctx, Row* out) {
  while (true) {
    SIEVE_ASSIGN_OR_RETURN(bool has, left_->Next(ctx, out));
    if (!has) return false;
    if (Contains(right_rows_, *out)) continue;
    if (Contains(emitted_, *out)) continue;  // EXCEPT emits distinct rows
    emitted_[RowHash64(*out)].push_back(*out);
    return true;
  }
}

// ---------------------------------------------------------------------------
// MaterializedScanOperator
// ---------------------------------------------------------------------------

MaterializedScanOperator::MaterializedScanOperator(std::string cache_key,
                                                   std::string qualifier,
                                                   OperatorPtr child)
    : cache_key_(std::move(cache_key)),
      qualifier_(std::move(qualifier)),
      child_(std::move(child)) {}

Status MaterializedScanOperator::Open(ExecContext* ctx) {
  pos_ = 0;
  // Served from the CTE cache when available.
  if (!cache_key_.empty()) {
    auto it = ctx->ctes.find(cache_key_);
    if (it != ctx->ctes.end()) {
      rows_ = &it->second.rows;
      schema_ = QualifySchema(it->second.schema, qualifier_);
      return Status::OK();
    }
  }
  if (child_ == nullptr) {
    return Status::Internal("materialized scan has no producer for " +
                            cache_key_);
  }
  // This drain is the hot loop of the Sieve rewrite: the CTE body evaluates
  // guards and the Δ operator over the base table. Executor::Materialize
  // fans it out across partitions when the context enables parallelism.
  MaterializedResult result;
  SIEVE_RETURN_IF_ERROR(
      Executor::Materialize(child_.get(), ctx, &result.schema, &result.rows));
  if (!cache_key_.empty()) {
    auto [it, inserted] = ctx->ctes.emplace(cache_key_, std::move(result));
    (void)inserted;
    rows_ = &it->second.rows;
    schema_ = QualifySchema(it->second.schema, qualifier_);
  } else {
    private_result_ = std::move(result);
    rows_ = &private_result_.rows;
    schema_ = QualifySchema(private_result_.schema, qualifier_);
  }
  return Status::OK();
}

Result<bool> MaterializedScanOperator::Next(ExecContext* ctx, Row* out) {
  (void)ctx;
  if (rows_ == nullptr || pos_ >= rows_->size()) return false;
  *out = (*rows_)[pos_++];
  return true;
}

std::string MaterializedScanOperator::name() const {
  return "MaterializedScan(" +
         (cache_key_.empty() ? std::string("derived") : cache_key_) + ")";
}

}  // namespace sieve
