#include "plan/executor.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>

#include "common/string_util.h"

namespace sieve {

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out;
  std::vector<std::string> header;
  header.reserve(schema.num_columns());
  for (const auto& col : schema.columns()) header.push_back(col.name);
  out += Join(header, " | ");
  out += "\n";
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ >= max_rows) {
      out += StrFormat("... (%zu more rows)\n", rows.size() - max_rows);
      break;
    }
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& v : row) cells.push_back(v.ToString());
    out += Join(cells, " | ");
    out += "\n";
  }
  return out;
}

namespace {

// Chunk size QueryCursor::Drain pulls with; large enough that the
// per-batch overhead vanishes, small enough to keep Row moves cache-warm.
constexpr size_t kDrainBatchRows = 4096;

// Morsels handed out per worker thread. Several morsels per worker is
// what turns static slicing into dynamic scheduling: ParallelFor's atomic
// claim counter is the shared work queue, and a worker that finishes a
// cheap morsel immediately claims the next one instead of idling behind a
// skewed sibling. Larger values smooth skew further but multiply
// per-morsel Open overhead (operator clones, expression binds).
constexpr size_t kMorselsPerThread = 8;

// Minimum rows a morsel should cover (one default batch): below this the
// per-morsel Open overhead outweighs any scheduling benefit, so small
// inputs get fewer (down to one) morsels.
constexpr size_t kMinMorselRows = kDefaultBatchSize;

// Serial pull loop: opens `root` and drains it batch-at-a-time into
// *schema / *rows (ctx->batch_size rows per NextBatch interpretation
// pass).
Status DrainSerial(Operator* root, ExecContext* ctx, Schema* schema,
                   std::vector<Row>* rows) {
  SIEVE_RETURN_IF_ERROR(root->Open(ctx));
  *schema = root->schema();
  RowBatch batch(
      EffectiveBatchSize(ctx->batch_size, schema->num_columns()));
  while (true) {
    SIEVE_ASSIGN_OR_RETURN(bool has, root->NextBatch(ctx, &batch));
    if (!has) break;
    // Plain push_back: letting the vector grow geometrically is O(R)
    // amortized, whereas reserving size+batch per batch would reallocate
    // (and move every drained row) once per batch.
    for (size_t i = 0; i < batch.size(); ++i) {
      rows->emplace_back();
      batch.MaterializeRow(i, &rows->back());
    }
  }
  return Status::OK();
}

// Drives one partition pipeline per RunWorkers task (see executor.h for
// the worker-context / cancellation / error contract) and concatenates the
// per-partition row buffers in partition order, so rows, row order and
// stat totals are identical to a serial drain.
Status DrainPartitioned(const std::vector<OperatorPtr>& parts,
                        ExecContext* ctx, Schema* schema,
                        std::vector<Row>* rows) {
  const size_t n = parts.size();
  std::vector<std::vector<Row>> worker_rows(n);
  std::vector<Schema> worker_schemas(n);
  SIEVE_RETURN_IF_ERROR(
      RunWorkers(ctx, n, [&](size_t i, ExecContext* worker) {
        return DrainSerial(parts[i].get(), worker, &worker_schemas[i],
                           &worker_rows[i]);
      }));
  *schema = worker_schemas.front();
  size_t total = 0;
  for (const auto& part_rows : worker_rows) total += part_rows.size();
  rows->reserve(rows->size() + total);
  for (auto& part_rows : worker_rows) {
    for (Row& row : part_rows) rows->push_back(std::move(row));
  }
  return Status::OK();
}

}  // namespace

Status RunWorkers(ExecContext* ctx, size_t n,
                  const std::function<Status(size_t, ExecContext*)>& body) {
  std::vector<ExecStats> worker_stats(n);
  std::atomic<bool> local_cancel{false};
  std::atomic<bool>* cancel =
      ctx->cancel != nullptr ? ctx->cancel : &local_cancel;
  std::mutex error_mu;
  Status first_error;
  size_t first_error_index = n;

  ctx->pool->ParallelFor(n, [&](size_t i) {
    ExecContext worker = ctx->MakeWorkerContext(&worker_stats[i], cancel);
    Status st;
    if (SIEVE_FAULT_POINT("exec.morsel.fail")) {
      // Fails this morsel before it runs; flows through the same
      // first-error/cancellation path as a genuine partition failure.
      st = SIEVE_INJECT_FAULT("exec.morsel.fail");
    } else {
      try {
        st = body(i, &worker);
      } catch (const std::exception& e) {
        // A throwing worker (a UDF raising, bad_alloc mid-drain) fails the
        // query like any erroring partition: convert to a Status naming the
        // partition and let the first-error selection below pick the winner
        // deterministically, instead of the exception unwinding past the
        // sibling workers' barrier.
        st = Status::ExecutionError(
            StrFormat("partition worker %zu threw: %s", i, e.what()));
      } catch (...) {
        st = Status::ExecutionError(
            StrFormat("partition worker %zu threw an unknown exception", i));
      }
    }
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(error_mu);
      // Report the real failure, not a cancellation artifact: once a
      // sibling flips the cancel flag, surviving workers fail with
      // Timeout at their next cooperative check, so a non-timeout error
      // always outranks a timeout; within the same class the lowest
      // partition index wins (deterministic, like a serial drain).
      bool take;
      if (first_error.ok()) {
        take = true;
      } else {
        bool new_real = st.code() != StatusCode::kTimeout;
        bool cur_real = first_error.code() != StatusCode::kTimeout;
        take = new_real != cur_real ? new_real : i < first_error_index;
      }
      if (take) {
        first_error = st;
        first_error_index = i;
      }
      cancel->store(true, std::memory_order_relaxed);
    }
  });

  if (ctx->stats != nullptr) {
    for (const ExecStats& stats : worker_stats) ctx->stats->Add(stats);
  }
  return first_error;
}

size_t PlanPartitionCount(const Operator& root, const ExecContext& ctx) {
  const size_t threads = static_cast<size_t>(ctx.num_threads);
  const size_t rows = root.EstimatedPartitionRows();
  // Unknown size: fall back to one static slice per worker (the dynamic
  // claim queue still smooths *across* pipelines sharing the pool).
  if (rows == Operator::kUnknownRows) return threads;
  const size_t by_size = rows / kMinMorselRows;
  if (by_size <= 1) return 1;
  return std::min(by_size, threads * kMorselsPerThread);
}

Result<std::unique_ptr<QueryCursor>> QueryCursor::Open(OperatorPtr root,
                                                       const ExecContext& base) {
  std::unique_ptr<QueryCursor> cursor(new QueryCursor());
  cursor->root_ = std::move(root);
  cursor->ctx_ = base;
  cursor->ctx_.stats = &cursor->stats_;
  // Bare serial contexts may arrive without a CTE cache (see Materialize).
  if (cursor->ctx_.ctes == nullptr) {
    cursor->ctx_.ctes = std::make_shared<CteCache>();
  }
  ExecContext* ctx = &cursor->ctx_;
  if (ctx->num_threads > 1 && ctx->pool != nullptr) {
    // CreatePartitions contract: partition clones replace the original
    // root, which must then never be opened itself.
    std::vector<OperatorPtr> parts;
    if (cursor->root_->CreatePartitions(
            PlanPartitionCount(*cursor->root_, *ctx), &parts) &&
        !parts.empty()) {
      SIEVE_RETURN_IF_ERROR(DrainPartitioned(parts, ctx, &cursor->schema_,
                                             &cursor->buffered_));
      cursor->partitioned_ = true;
      return cursor;
    }
  }
  SIEVE_RETURN_IF_ERROR(cursor->root_->Open(ctx));
  cursor->schema_ = cursor->root_->schema();
  cursor->fetch_batch_.reset(
      EffectiveBatchSize(ctx->batch_size, cursor->schema_.num_columns()));
  return cursor;
}

Result<bool> QueryCursor::Next(std::vector<Row>* batch, size_t max_rows) {
  // A zero batch would be indistinguishable from exhaustion for the
  // caller; reject it (non-sticky: the cursor itself is fine).
  if (max_rows == 0) {
    return Status::InvalidArgument("QueryCursor::Next requires max_rows > 0");
  }
  SIEVE_RETURN_IF_ERROR(error_);
  if (done_) return false;
  size_t emitted = 0;
  if (partitioned_) {
    while (buffered_pos_ < buffered_.size() && emitted < max_rows) {
      batch->push_back(std::move(buffered_[buffered_pos_++]));
      ++emitted;
    }
    if (buffered_pos_ >= buffered_.size()) {
      buffered_.clear();
      done_ = true;
    }
  } else {
    while (emitted < max_rows) {
      if (fetch_pos_ >= fetch_batch_.size()) {
        auto has = root_->NextBatch(&ctx_, &fetch_batch_);
        if (!has.ok()) {
          error_ = has.status();
          done_ = true;
          Finalize();
          return error_;
        }
        if (!*has) {
          done_ = true;
          break;
        }
        fetch_pos_ = 0;
      }
      batch->emplace_back();
      fetch_batch_.MaterializeRow(fetch_pos_++, &batch->back());
      ++emitted;
    }
  }
  rows_emitted_ += emitted;
  if (done_) Finalize();
  return emitted > 0;
}

// Mirror Executor::Run's accounting: rows_output counts the rows the
// plan root produced, folded in exactly once when the stream completes
// (exhaustion, sticky error, or Abandon).
void QueryCursor::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  stats_.rows_output += rows_emitted_;
}

void QueryCursor::Abandon() {
  done_ = true;
  buffered_.clear();
  buffered_pos_ = 0;
  fetch_batch_.clear();
  fetch_pos_ = 0;
  Finalize();
}

Result<ResultSet> QueryCursor::Drain() {
  ResultSet result;
  result.schema = schema_;
  while (true) {
    SIEVE_ASSIGN_OR_RETURN(bool more, Next(&result.rows, kDrainBatchRows));
    if (!more) break;
  }
  result.stats = stats_;
  result.elapsed_ms = timer_.ElapsedMillis();
  return result;
}

double QueryCursor::elapsed_ms() const { return timer_.ElapsedMillis(); }

void QueryCursor::TightenDeadline(double seconds_from_now) {
  if (seconds_from_now <= 0.0) return;
  // The timeout budget is measured from the shared timer epoch, so a
  // deadline "seconds from now" converts to elapsed-so-far + budget.
  double budget = ctx_.timer.ElapsedSeconds() + seconds_from_now;
  if (ctx_.timeout_seconds <= 0.0 || budget < ctx_.timeout_seconds) {
    ctx_.timeout_seconds = budget;
  }
}

Status Executor::Materialize(Operator* root, ExecContext* ctx, Schema* schema,
                             std::vector<Row>* rows) {
  // Bare serial contexts (tests, scalar subqueries) may arrive without a
  // CTE cache; create it here. Parallel contexts got theirs at the query
  // root — lazy creation after workers exist would split the cache.
  if (ctx->ctes == nullptr) ctx->ctes = std::make_shared<CteCache>();
  if (ctx->num_threads > 1 && ctx->pool != nullptr) {
    // Several morsels per worker, claimed dynamically from the pool's
    // shared atomic counter (see MorselCount) — skewed morsels no longer
    // pin a static slice to one thread.
    std::vector<OperatorPtr> parts;
    if (root->CreatePartitions(PlanPartitionCount(*root, *ctx), &parts) &&
        !parts.empty()) {
      return DrainPartitioned(parts, ctx, schema, rows);
    }
  }
  return DrainSerial(root, ctx, schema, rows);
}

Result<ResultSet> Executor::Run(Operator* root, ExecContext* ctx) {
  Timer timer;
  ResultSet result;
  SIEVE_RETURN_IF_ERROR(
      Materialize(root, ctx, &result.schema, &result.rows));
  if (ctx->stats != nullptr) {
    ctx->stats->rows_output += result.rows.size();
    result.stats = *ctx->stats;
  }
  result.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace sieve
