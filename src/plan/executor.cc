#include "plan/executor.h"

#include "common/string_util.h"

namespace sieve {

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out;
  std::vector<std::string> header;
  header.reserve(schema.num_columns());
  for (const auto& col : schema.columns()) header.push_back(col.name);
  out += Join(header, " | ");
  out += "\n";
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ >= max_rows) {
      out += StrFormat("... (%zu more rows)\n", rows.size() - max_rows);
      break;
    }
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& v : row) cells.push_back(v.ToString());
    out += Join(cells, " | ");
    out += "\n";
  }
  return out;
}

Result<ResultSet> Executor::Run(Operator* root, ExecContext* ctx) {
  Timer timer;
  SIEVE_RETURN_IF_ERROR(root->Open(ctx));
  ResultSet result;
  result.schema = root->schema();
  Row row;
  while (true) {
    SIEVE_ASSIGN_OR_RETURN(bool has, root->Next(ctx, &row));
    if (!has) break;
    result.rows.push_back(row);
    if (ctx->stats != nullptr) ++ctx->stats->rows_output;
  }
  if (ctx->stats != nullptr) result.stats = *ctx->stats;
  result.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace sieve
