#ifndef SIEVE_PLAN_OPTIMIZER_H_
#define SIEVE_PLAN_OPTIMIZER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "parser/ast.h"
#include "plan/operators.h"
#include "plan/profile.h"
#include "storage/catalog.h"

namespace sieve {

/// Access path the optimizer picked for one base-table reference. This is
/// what EXPLAIN surfaces; Sieve's strategy selector (Section 5.5) reads the
/// chosen access kind and estimated selectivity ρ(p) from here.
struct AccessPathInfo {
  enum class Kind { kSeqScan, kIndexRange, kIndexUnion };

  std::string table;
  std::string qualifier;
  Kind kind = Kind::kSeqScan;
  std::string index_column;     // for kIndexRange / kIndexUnion (primary)
  size_t num_ranges = 0;        // for kIndexUnion
  double selectivity = 1.0;     // estimated fraction of the table fetched
  double estimated_rows = 0.0;  // selectivity * |table|

  std::string ToString() const;
};

/// High-level view of the plan, one entry per base-table access.
struct ExplainInfo {
  std::vector<AccessPathInfo> tables;

  /// Access info for a given table reference (by alias or table name);
  /// nullptr when absent.
  const AccessPathInfo* Find(const std::string& name) const;

  std::string ToString() const;
};

/// A fully planned query.
struct PlannedQuery {
  OperatorPtr root;
  ExplainInfo explain;
};

/// Rule+cost based planner: resolves CTEs/derived tables, chooses per-table
/// access paths from histograms (honoring index hints per the engine
/// profile), extracts hash-join keys from WHERE equi-conjuncts, and stacks
/// filter/aggregate/project/union operators.
class Optimizer {
 public:
  Optimizer(Catalog* catalog, const EngineProfile* profile)
      : catalog_(catalog), profile_(profile) {}

  Result<PlannedQuery> Plan(const SelectStmt& stmt);

  /// Estimated selectivity of a single predicate over `table` using the
  /// index histogram on the predicate's column; 1.0 when not estimable.
  /// This is ρ(pred) from the paper's cost model.
  double EstimatePredicateSelectivity(const std::string& table,
                                      const Expr& predicate) const;

 private:
  using CteScope = std::map<std::string, SelectStmtPtr>;

  Result<OperatorPtr> PlanStmt(const SelectStmt& stmt, const CteScope& scope,
                               ExplainInfo* explain);
  Result<OperatorPtr> PlanCore(const SelectStmt& stmt, const CteScope& scope,
                               ExplainInfo* explain);
  Result<OperatorPtr> PlanTableAccess(const TableRef& ref,
                                      const SelectStmt& stmt,
                                      const CteScope& scope,
                                      ExplainInfo* explain);

  Catalog* catalog_;
  const EngineProfile* profile_;
};

}  // namespace sieve

#endif  // SIEVE_PLAN_OPTIMIZER_H_
