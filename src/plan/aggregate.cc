#include "plan/operators.h"

namespace sieve {

HashAggregateOperator::HashAggregateOperator(OperatorPtr child,
                                             std::vector<ExprPtr> group_by,
                                             std::vector<SelectItem> items)
    : child_(std::move(child)),
      group_by_(std::move(group_by)),
      items_(std::move(items)) {}

Status HashAggregateOperator::Open(ExecContext* ctx) {
  SIEVE_RETURN_IF_ERROR(child_->Open(ctx));
  for (auto& g : group_by_) {
    SIEVE_RETURN_IF_ERROR(BindExpr(g.get(), child_->schema()));
  }
  size_t num_aggs = 0;
  for (auto& item : items_) {
    if (item.expr != nullptr) {
      SIEVE_RETURN_IF_ERROR(BindExpr(item.expr.get(), child_->schema()));
    }
    if (item.agg != AggFn::kNone) ++num_aggs;
  }

  // Output schema mirrors the SELECT list.
  schema_ = Schema();
  for (const auto& item : items_) {
    DataType type = DataType::kNull;
    switch (item.agg) {
      case AggFn::kNone: {
        if (item.expr->kind() == ExprKind::kColumnRef) {
          const auto& ref = static_cast<const ColumnRefExpr&>(*item.expr);
          if (ref.bound_index() >= 0) {
            type = child_->schema()
                       .column(static_cast<size_t>(ref.bound_index()))
                       .type;
          }
        }
        break;
      }
      case AggFn::kCount:
      case AggFn::kCountStar:
        type = DataType::kInt;
        break;
      case AggFn::kSum:
      case AggFn::kAvg:
        type = DataType::kDouble;
        break;
      case AggFn::kMin:
      case AggFn::kMax:
        type = DataType::kNull;  // depends on input; resolved per value
        break;
    }
    schema_.AddColumn({item.OutputName(), type});
  }

  Evaluator evaluator(&child_->schema(), ctx->hooks, ctx->metadata, ctx->stats);
  groups_.clear();
  group_index_.clear();

  Row row;
  uint64_t rows_seen = 0;
  while (true) {
    if ((++rows_seen & 1023) == 0) {
      SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    }
    SIEVE_ASSIGN_OR_RETURN(bool has, child_->Next(ctx, &row));
    if (!has) break;

    Row key;
    key.reserve(group_by_.size());
    for (const auto& g : group_by_) {
      SIEVE_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*g, row));
      key.push_back(std::move(v));
    }
    std::string fp = RowFingerprint(key);
    auto it = group_index_.find(fp);
    size_t group_pos;
    if (it == group_index_.end()) {
      group_pos = groups_.size();
      GroupState state;
      state.key = key;
      state.first_row = row;
      state.aggs.resize(num_aggs);
      groups_.push_back(std::move(state));
      group_index_.emplace(std::move(fp), group_pos);
    } else {
      group_pos = it->second;
    }

    // Update aggregate states in SELECT-list order.
    size_t agg_pos = 0;
    for (const auto& item : items_) {
      if (item.agg == AggFn::kNone) continue;
      AggState& agg = groups_[group_pos].aggs[agg_pos++];
      if (item.agg == AggFn::kCountStar) {
        ++agg.count;
        continue;
      }
      SIEVE_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*item.expr, row));
      if (v.is_null()) continue;
      ++agg.count;
      agg.sum += v.AsDouble();
      if (!agg.saw_value || v.Compare(agg.min) < 0) agg.min = v;
      if (!agg.saw_value || v.Compare(agg.max) > 0) agg.max = v;
      agg.saw_value = true;
    }
  }
  // SQL semantics: a global aggregate (no GROUP BY) over an empty input
  // still yields one row (COUNT(*) = 0).
  if (group_by_.empty() && groups_.empty()) {
    bool all_aggs = true;
    for (const auto& item : items_) {
      if (item.agg == AggFn::kNone) all_aggs = false;
    }
    if (all_aggs) {
      GroupState state;
      state.aggs.resize(num_aggs);
      groups_.push_back(std::move(state));
    }
  }
  pos_ = 0;
  return Status::OK();
}

Result<bool> HashAggregateOperator::Next(ExecContext* ctx, Row* out) {
  (void)ctx;
  if (pos_ >= groups_.size()) return false;
  const GroupState& group = groups_[pos_++];
  out->clear();
  out->reserve(items_.size());
  // Group-key expressions are re-evaluated on the representative row, so
  // arbitrary scalar expressions of the group key work.
  Evaluator evaluator(&child_->schema(), nullptr, nullptr, nullptr);
  size_t agg_pos = 0;
  for (const auto& item : items_) {
    if (item.agg == AggFn::kNone) {
      SIEVE_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*item.expr, group.first_row));
      out->push_back(std::move(v));
      continue;
    }
    const AggState& agg = group.aggs[agg_pos++];
    switch (item.agg) {
      case AggFn::kCount:
      case AggFn::kCountStar:
        out->push_back(Value::Int(agg.count));
        break;
      case AggFn::kSum:
        out->push_back(agg.count == 0 ? Value::Null() : Value::Double(agg.sum));
        break;
      case AggFn::kAvg:
        out->push_back(agg.count == 0
                           ? Value::Null()
                           : Value::Double(agg.sum /
                                           static_cast<double>(agg.count)));
        break;
      case AggFn::kMin:
        out->push_back(agg.saw_value ? agg.min : Value::Null());
        break;
      case AggFn::kMax:
        out->push_back(agg.saw_value ? agg.max : Value::Null());
        break;
      case AggFn::kNone:
        break;
    }
  }
  return true;
}

std::string HashAggregateOperator::name() const {
  return "HashAggregate(groups=" + std::to_string(group_by_.size()) + ")";
}

}  // namespace sieve
