#include "plan/executor.h"
#include "plan/operators.h"

namespace sieve {

HashAggregateOperator::HashAggregateOperator(OperatorPtr child,
                                             std::vector<ExprPtr> group_by,
                                             std::vector<SelectItem> items)
    : child_(std::move(child)),
      group_by_(std::move(group_by)),
      items_(std::move(items)) {}

void HashAggregateOperator::AggState::Merge(const AggState& other) {
  count += other.count;
  sum += other.sum;
  if (other.saw_value) {
    if (!saw_value || other.min.Compare(min) < 0) min = other.min;
    if (!saw_value || other.max.Compare(max) > 0) max = other.max;
    saw_value = true;
  }
}

void HashAggregateOperator::BuildOutputSchema(const Schema& input) {
  // Output schema mirrors the SELECT list.
  schema_ = Schema();
  for (const auto& item : items_) {
    DataType type = DataType::kNull;
    switch (item.agg) {
      case AggFn::kNone: {
        if (item.expr->kind() == ExprKind::kColumnRef) {
          const auto& ref = static_cast<const ColumnRefExpr&>(*item.expr);
          if (ref.bound_index() >= 0) {
            type = input.column(static_cast<size_t>(ref.bound_index())).type;
          }
        }
        break;
      }
      case AggFn::kCount:
      case AggFn::kCountStar:
        type = DataType::kInt;
        break;
      case AggFn::kSum:
      case AggFn::kAvg:
        type = DataType::kDouble;
        break;
      case AggFn::kMin:
      case AggFn::kMax:
        type = DataType::kNull;  // depends on input; resolved per value
        break;
    }
    schema_.AddColumn({item.OutputName(), type});
  }
}

Status HashAggregateOperator::Accumulate(
    Operator* child, ExecContext* ctx, const std::vector<ExprPtr>& group_by,
    const std::vector<SelectItem>& items, size_t num_aggs,
    std::vector<GroupState>* groups,
    std::unordered_map<std::string, size_t>* group_index) {
  Evaluator evaluator(&child->schema(), ctx->hooks, ctx->metadata, ctx->stats);
  RowBatch batch(
      EffectiveBatchSize(ctx->batch_size, child->schema().num_columns()));
  Row row;
  while (true) {
    SIEVE_RETURN_IF_ERROR(ctx->CheckTimeout());
    SIEVE_ASSIGN_OR_RETURN(bool has, child->NextBatch(ctx, &batch));
    if (!has) break;
    for (size_t r = 0; r < batch.size(); ++r) {
      batch.MaterializeRow(r, &row);
      Row key;
      key.reserve(group_by.size());
      for (const auto& g : group_by) {
        SIEVE_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*g, row));
        key.push_back(std::move(v));
      }
      std::string fp = RowFingerprint(key);
      auto it = group_index->find(fp);
      size_t group_pos;
      if (it == group_index->end()) {
        group_pos = groups->size();
        GroupState state;
        state.key = key;
        state.first_row = row;
        state.aggs.resize(num_aggs);
        groups->push_back(std::move(state));
        group_index->emplace(std::move(fp), group_pos);
      } else {
        group_pos = it->second;
      }

      // Update aggregate states in SELECT-list order.
      size_t agg_pos = 0;
      for (const auto& item : items) {
        if (item.agg == AggFn::kNone) continue;
        AggState& agg = (*groups)[group_pos].aggs[agg_pos++];
        if (item.agg == AggFn::kCountStar) {
          ++agg.count;
          continue;
        }
        SIEVE_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*item.expr, row));
        if (v.is_null()) continue;
        ++agg.count;
        agg.sum += v.AsDouble();
        if (!agg.saw_value || v.Compare(agg.min) < 0) agg.min = v;
        if (!agg.saw_value || v.Compare(agg.max) > 0) agg.max = v;
        agg.saw_value = true;
      }
    }
  }
  return Status::OK();
}

Status HashAggregateOperator::Open(ExecContext* ctx) {
  num_aggs_ = 0;
  for (const auto& item : items_) {
    if (item.agg != AggFn::kNone) ++num_aggs_;
  }
  groups_.clear();
  group_index_.clear();
  pos_ = 0;

  bool accumulated = false;
  if (ctx->num_threads > 1 && ctx->pool != nullptr) {
    std::vector<OperatorPtr> parts;
    if (child_->CreatePartitions(PlanPartitionCount(*child_, *ctx),
                                 &parts) &&
        !parts.empty()) {
      SIEVE_RETURN_IF_ERROR(OpenParallel(ctx, &parts));
      accumulated = true;
    }
  }

  if (!accumulated) {
    SIEVE_RETURN_IF_ERROR(child_->Open(ctx));
    input_schema_ = child_->schema();
    for (auto& g : group_by_) {
      SIEVE_RETURN_IF_ERROR(BindExpr(g.get(), input_schema_));
    }
    for (auto& item : items_) {
      if (item.expr != nullptr) {
        SIEVE_RETURN_IF_ERROR(BindExpr(item.expr.get(), input_schema_));
      }
    }
    BuildOutputSchema(input_schema_);
    SIEVE_RETURN_IF_ERROR(Accumulate(child_.get(), ctx, group_by_, items_,
                                     num_aggs_, &groups_, &group_index_));
  }

  // SQL semantics: a global aggregate (no GROUP BY) over an empty input
  // still yields one row (COUNT(*) = 0).
  if (group_by_.empty() && groups_.empty()) {
    bool all_aggs = true;
    for (const auto& item : items_) {
      if (item.agg == AggFn::kNone) all_aggs = false;
    }
    if (all_aggs) {
      GroupState state;
      state.aggs.resize(num_aggs_);
      groups_.push_back(std::move(state));
    }
  }
  return Status::OK();
}

Status HashAggregateOperator::OpenParallel(ExecContext* ctx,
                                           std::vector<OperatorPtr>* parts) {
  const size_t n = parts->size();
  std::vector<std::vector<GroupState>> worker_groups(n);

  SIEVE_RETURN_IF_ERROR(
      RunWorkers(ctx, n, [&](size_t i, ExecContext* worker) {
        Operator* part = (*parts)[i].get();
        SIEVE_RETURN_IF_ERROR(part->Open(worker));
        // Private bound clones: binding mutates expression nodes in place,
        // so workers must not share them with each other or the members.
        std::vector<ExprPtr> group_by;
        group_by.reserve(group_by_.size());
        for (const auto& g : group_by_) group_by.push_back(g->Clone());
        for (auto& g : group_by) {
          SIEVE_RETURN_IF_ERROR(BindExpr(g.get(), part->schema()));
        }
        std::vector<SelectItem> items = CloneItems(items_);
        for (auto& item : items) {
          if (item.expr != nullptr) {
            SIEVE_RETURN_IF_ERROR(BindExpr(item.expr.get(), part->schema()));
          }
        }
        std::unordered_map<std::string, size_t> local_index;
        return Accumulate(part, worker, group_by, items, num_aggs_,
                          &worker_groups[i], &local_index);
      }));

  // Bind the member expressions once against the (shared) input schema so
  // Next can evaluate group-key output expressions; then merge the partial
  // states. Merging walks partitions in order and each partition's groups
  // in local first-occurrence order, so the global group order equals the
  // first-occurrence order of the serial input stream, and each group's
  // representative row is the serially-first one.
  input_schema_ = parts->front()->schema();
  for (auto& g : group_by_) {
    SIEVE_RETURN_IF_ERROR(BindExpr(g.get(), input_schema_));
  }
  for (auto& item : items_) {
    if (item.expr != nullptr) {
      SIEVE_RETURN_IF_ERROR(BindExpr(item.expr.get(), input_schema_));
    }
  }
  BuildOutputSchema(input_schema_);

  for (std::vector<GroupState>& partial : worker_groups) {
    for (GroupState& local : partial) {
      std::string fp = RowFingerprint(local.key);
      auto it = group_index_.find(fp);
      if (it == group_index_.end()) {
        group_index_.emplace(std::move(fp), groups_.size());
        groups_.push_back(std::move(local));
        continue;
      }
      GroupState& global = groups_[it->second];
      for (size_t a = 0; a < global.aggs.size(); ++a) {
        global.aggs[a].Merge(local.aggs[a]);
      }
    }
  }
  return Status::OK();
}

Result<bool> HashAggregateOperator::Next(ExecContext* ctx, Row* out) {
  (void)ctx;
  if (pos_ >= groups_.size()) return false;
  const GroupState& group = groups_[pos_++];
  out->clear();
  out->reserve(items_.size());
  // Group-key expressions are re-evaluated on the representative row, so
  // arbitrary scalar expressions of the group key work.
  Evaluator evaluator(&input_schema_, nullptr, nullptr, nullptr);
  size_t agg_pos = 0;
  for (const auto& item : items_) {
    if (item.agg == AggFn::kNone) {
      SIEVE_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*item.expr, group.first_row));
      out->push_back(std::move(v));
      continue;
    }
    const AggState& agg = group.aggs[agg_pos++];
    switch (item.agg) {
      case AggFn::kCount:
      case AggFn::kCountStar:
        out->push_back(Value::Int(agg.count));
        break;
      case AggFn::kSum:
        out->push_back(agg.count == 0 ? Value::Null() : Value::Double(agg.sum));
        break;
      case AggFn::kAvg:
        out->push_back(agg.count == 0
                           ? Value::Null()
                           : Value::Double(agg.sum /
                                           static_cast<double>(agg.count)));
        break;
      case AggFn::kMin:
        out->push_back(agg.saw_value ? agg.min : Value::Null());
        break;
      case AggFn::kMax:
        out->push_back(agg.saw_value ? agg.max : Value::Null());
        break;
      case AggFn::kNone:
        break;
    }
  }
  return true;
}

std::string HashAggregateOperator::name() const {
  return "HashAggregate(groups=" + std::to_string(group_by_.size()) + ")";
}

}  // namespace sieve
