#ifndef SIEVE_PLAN_PROFILE_H_
#define SIEVE_PLAN_PROFILE_H_

#include <string>

namespace sieve {

/// Behavioural profile of the underlying DBMS that Sieve is layered on.
/// The paper evaluates Sieve on MySQL 8 (honors FORCE INDEX / USE INDEX
/// hints; runs guard UNIONs as separate index scans) and PostgreSQL 13
/// (ignores index hints, picks indexes itself, and merges multiple index
/// scans with an in-memory bitmap OR). These two profiles reproduce that
/// split inside minidb.
struct EngineProfile {
  enum class Kind { kMySqlLike, kPostgresLike };

  Kind kind = Kind::kMySqlLike;
  /// FORCE INDEX / USE INDEX () hints pin the access path.
  bool honor_index_hints = true;
  /// Top-level OR of indexable disjuncts may use a bitmap-OR index union.
  bool enable_bitmap_or = false;
  /// Cost multiplier for a row fetched through an index (random access)
  /// relative to a sequentially scanned row.
  double random_access_penalty = 4.0;
  /// Simulated per-invocation UDF overhead (marshalling + dispatch), in
  /// spin-loop iterations. Real DBMSs pay microseconds to cross the UDF
  /// boundary (the paper's UDFinv); an embedded std::function call pays
  /// nanoseconds, which would flatten the inline-vs-Δ trade-off of
  /// Figure 3 and hide BaselineU's cost. The loop plus row marshalling
  /// restores a realistic invocation cost (see DESIGN.md).
  int udf_invocation_spin = 18000;  // ~25 us on a modern core

  static EngineProfile MySqlLike() {
    EngineProfile p;
    p.kind = Kind::kMySqlLike;
    p.honor_index_hints = true;
    p.enable_bitmap_or = false;
    return p;
  }

  static EngineProfile PostgresLike() {
    EngineProfile p;
    p.kind = Kind::kPostgresLike;
    p.honor_index_hints = false;
    p.enable_bitmap_or = true;
    return p;
  }

  std::string name() const {
    return kind == Kind::kMySqlLike ? "mysql-like" : "postgres-like";
  }
};

}  // namespace sieve

#endif  // SIEVE_PLAN_PROFILE_H_
