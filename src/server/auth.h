#ifndef SIEVE_SERVER_AUTH_H_
#define SIEVE_SERVER_AUTH_H_

// The server's front door: token authentication binding a connection to a
// querier/purpose identity, and per-querier admission control (token-
// bucket rate limiting + an in-flight ceiling). Authentication is
// default-deny twice over: an unknown token is rejected, and a known
// token whose querier/purpose is not a subject of the policy corpus is
// rejected too — a connection can never execute under an identity the
// policy store has never heard of (it would see only default-denied
// tables anyway, but refusing at HELLO keeps the failure loud and early).

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/metadata.h"
#include "common/status.h"

namespace sieve::server {

/// Per-querier admission limits. Zero means "unlimited" for each knob.
struct AdmissionLimits {
  /// Token-bucket refill rate for EXECUTE requests, per second.
  double rate_per_sec = 0.0;
  /// Bucket capacity (burst size). Defaults to max(rate_per_sec, 1) when
  /// left 0 with a nonzero rate.
  double burst = 0.0;
  /// Ceiling on concurrently admitted executions (an open server-side
  /// cursor stays admitted until it is drained or closed, since it pins
  /// middleware state and per-connection buffers).
  int max_in_flight = 0;

  bool unlimited() const { return rate_per_sec <= 0.0 && max_in_flight <= 0; }
};

/// A successfully authenticated connection identity.
struct AuthedIdentity {
  QueryMetadata md;
  AdmissionLimits limits;
};

/// Token -> identity map. Registrations normally happen before the server
/// starts, but the registry is fully thread-safe so operators can rotate
/// tokens on a live server.
class AuthRegistry {
 public:
  void RegisterToken(const std::string& token, QueryMetadata md,
                     AdmissionLimits limits = {});
  void RevokeToken(const std::string& token);

  /// Default-deny lookup: kAccessDenied unless `token` was registered.
  Result<AuthedIdentity> Authenticate(const std::string& token) const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, AuthedIdentity> tokens_;
};

/// Per-querier admission control shared by every connection of a server:
/// a token bucket paces EXECUTE requests and an in-flight counter bounds
/// concurrently admitted executions (cursors count until closed). The
/// clock is injectable so rate-limit tests are deterministic.
class AdmissionController {
 public:
  enum class Verdict { kAdmit, kRateLimited, kTooManyInFlight };

  /// `clock` returns monotonic seconds; defaults to steady_clock.
  explicit AdmissionController(std::function<double()> clock = {});

  /// Tries to admit one execution for `querier` under `limits`. On
  /// kAdmit the caller owes a Release(querier) once the execution (and
  /// any cursor it opened) finishes.
  Verdict TryAdmit(const std::string& querier, const AdmissionLimits& limits);

  /// Returns the in-flight slot taken by a successful TryAdmit.
  void Release(const std::string& querier);

  struct Stats {
    uint64_t admitted = 0;
    uint64_t rate_limited = 0;
    uint64_t in_flight_rejected = 0;
  };
  Stats stats() const;

  /// Current in-flight count for one querier (tests/diagnostics).
  int InFlight(const std::string& querier) const;

 private:
  struct Bucket {
    double tokens = 0.0;
    double last_refill = 0.0;
    bool initialized = false;
    int in_flight = 0;
  };

  std::function<double()> clock_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Bucket> buckets_;  // keyed by lower querier
  Stats stats_;
};

}  // namespace sieve::server

#endif  // SIEVE_SERVER_AUTH_H_
