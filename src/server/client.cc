#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/string_util.h"

namespace sieve::server {

Status SieveClient::ConnectFd() {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::ExecutionError(
        StrFormat("socket failed: %s", strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("invalid address '%s' (IPv4 only)", host_.c_str()));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::ExecutionError(
        StrFormat("connect to %s:%u failed: %s", host_.c_str(),
                  static_cast<unsigned>(port_), strerror(errno)));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  transport_error_ = false;
  return Status::OK();
}

Status SieveClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::ExecutionError("already connected");
  host_ = host;
  port_ = port;
  return ConnectFd();
}

void SieveClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void SieveClient::enable_retry(const RetryPolicy& policy) {
  retry_enabled_ = true;
  policy_ = policy;
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
  rng_ = Rng(policy_.seed);
}

void SieveClient::Backoff(int attempt) {
  double delay = policy_.initial_backoff_ms *
                 std::pow(policy_.multiplier, static_cast<double>(attempt));
  delay = std::min(delay, policy_.max_backoff_ms);
  double jitter = 1.0 + policy_.jitter * (2.0 * rng_.NextDouble() - 1.0);
  delay *= std::max(jitter, 0.0);
  if (delay <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
}

Status SieveClient::Reconnect() {
  Close();
  SIEVE_RETURN_IF_ERROR(ConnectFd());
  ++reconnects_;
  if (helloed_) {
    Result<QueryMetadata> md = HelloOnce(token_);
    if (!md.ok()) return md.status();
  }
  // Re-prepare every live handle so callers' statement ids keep working.
  for (auto& [handle, entry] : prepared_) {
    SIEVE_ASSIGN_OR_RETURN(WireStatement stmt, PrepareOnce(entry.sql));
    entry.server_id = stmt.id;
    entry.parameter_count = stmt.parameter_count;
  }
  return Status::OK();
}

bool SieveClient::RetryableWireError() const {
  WireError we = static_cast<WireError>(last_wire_error_);
  return we == WireError::kRateLimited || we == WireError::kTooManyInFlight;
}

Result<Frame> SieveClient::RoundTrip(MsgType type,
                                     const std::string& payload) {
  if (fd_ < 0) {
    transport_error_ = true;
    return Status::ExecutionError("not connected");
  }
  Status ws = WriteFrame(fd_, type, payload);
  if (!ws.ok()) {
    transport_error_ = true;
    return ws;
  }
  Result<Frame> reply = ReadFrame(fd_);
  if (!reply.ok()) transport_error_ = true;
  return reply;
}

Status SieveClient::DecodeError(const Frame& f) {
  WireReader rd(f.payload);
  auto code = rd.U16();
  auto msg = rd.String();
  if (!code.ok() || !msg.ok()) {
    return Status::ExecutionError("undecodable error reply");
  }
  last_wire_error_ = *code;
  WireError we = static_cast<WireError>(*code);
  std::string text = StrFormat("%s: %s", WireErrorName(we), msg->c_str());
  switch (we) {
    case WireError::kAuthRequired:
    case WireError::kAuthFailed:
      return Status::AccessDenied(text);
    case WireError::kDeadlineExceeded:
      return Status::Timeout(text);
    default:
      return Status::ExecutionError(text);
  }
}

Result<WireResult> SieveClient::DecodeRows(const Frame& f) {
  WireReader rd(f.payload);
  WireResult out;
  SIEVE_ASSIGN_OR_RETURN(out.cursor_id, rd.U32());
  SIEVE_ASSIGN_OR_RETURN(uint8_t done, rd.U8());
  out.done = done != 0;
  SIEVE_ASSIGN_OR_RETURN(uint16_t ncols, rd.U16());
  out.columns.reserve(ncols);
  for (uint16_t i = 0; i < ncols; ++i) {
    SIEVE_ASSIGN_OR_RETURN(std::string name, rd.String());
    SIEVE_ASSIGN_OR_RETURN(uint8_t type, rd.U8());
    out.columns.emplace_back(std::move(name), static_cast<DataType>(type));
  }
  SIEVE_ASSIGN_OR_RETURN(uint32_t nrows, rd.U32());
  out.rows.reserve(nrows);
  for (uint32_t r = 0; r < nrows; ++r) {
    Row row;
    row.reserve(ncols);
    for (uint16_t c = 0; c < ncols; ++c) {
      SIEVE_ASSIGN_OR_RETURN(Value v, rd.ReadValue());
      row.push_back(std::move(v));
    }
    out.rows.push_back(std::move(row));
  }
  if (!rd.AtEnd()) {
    return Status::ExecutionError("trailing bytes in rows reply");
  }
  return out;
}

Result<QueryMetadata> SieveClient::HelloOnce(const std::string& token) {
  WireWriter w;
  w.PutU8(kProtocolVersion);
  w.PutString(token);
  SIEVE_ASSIGN_OR_RETURN(Frame reply, RoundTrip(MsgType::kHello, w.payload()));
  if (reply.type == MsgType::kError) return DecodeError(reply);
  if (reply.type != MsgType::kHelloOk) {
    return Status::ExecutionError("unexpected reply to HELLO");
  }
  WireReader rd(reply.payload);
  QueryMetadata md;
  SIEVE_ASSIGN_OR_RETURN(md.querier, rd.String());
  SIEVE_ASSIGN_OR_RETURN(md.purpose, rd.String());
  last_wire_error_ = 0;
  return md;
}

Result<QueryMetadata> SieveClient::Hello(const std::string& token) {
  if (!retry_enabled_) return HelloOnce(token);
  Result<QueryMetadata> md = Status::ExecutionError("retry attempts exhausted");
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) ++retries_;
    if (transport_error_ || fd_ < 0) {
      Close();
      Status s = ConnectFd();
      if (!s.ok()) {
        ++reconnects_;
        Backoff(attempt);
        md = s;
        continue;
      }
      ++reconnects_;
    }
    md = HelloOnce(token);
    if (md.ok()) {
      token_ = token;
      helloed_ = true;
      return md;
    }
    if (transport_error_) continue;  // reconnect on the next attempt
    if (!RetryableWireError()) return md;
    // The server kills the connection with most HELLO errors; rate
    // limiting does not apply to HELLO, but stay uniform and back off.
    Backoff(attempt);
  }
  return md;
}

Result<WireStatement> SieveClient::PrepareOnce(const std::string& sql) {
  WireWriter w;
  w.PutString(sql);
  SIEVE_ASSIGN_OR_RETURN(Frame reply,
                         RoundTrip(MsgType::kPrepare, w.payload()));
  if (reply.type == MsgType::kError) return DecodeError(reply);
  if (reply.type != MsgType::kPrepared) {
    return Status::ExecutionError("unexpected reply to PREPARE");
  }
  WireReader rd(reply.payload);
  WireStatement stmt;
  SIEVE_ASSIGN_OR_RETURN(stmt.id, rd.U32());
  SIEVE_ASSIGN_OR_RETURN(stmt.parameter_count, rd.U16());
  last_wire_error_ = 0;
  return stmt;
}

Result<WireStatement> SieveClient::Prepare(const std::string& sql) {
  if (!retry_enabled_) return PrepareOnce(sql);
  Result<WireStatement> stmt =
      Status::ExecutionError("retry attempts exhausted");
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) ++retries_;
    if (transport_error_ || fd_ < 0) {
      Status s = Reconnect();
      if (!s.ok()) {
        Backoff(attempt);
        stmt = s;
        continue;
      }
    }
    stmt = PrepareOnce(sql);
    if (stmt.ok()) {
      uint32_t handle = next_handle_++;
      prepared_[handle] = {sql, stmt->id, stmt->parameter_count};
      return WireStatement{handle, stmt->parameter_count};
    }
    if (transport_error_) continue;
    if (!RetryableWireError()) return stmt;
    Backoff(attempt);
  }
  return stmt;
}

Result<WireResult> SieveClient::ExecuteOnce(uint32_t server_stmt_id,
                                            const std::vector<Value>& params,
                                            uint32_t chunk_rows,
                                            uint32_t deadline_ms) {
  WireWriter w;
  w.PutU32(server_stmt_id);
  w.PutU32(chunk_rows);
  w.PutU16(static_cast<uint16_t>(params.size()));
  for (const Value& v : params) w.PutValue(v);
  // Trailing optional field: omitted entirely when there is no deadline,
  // so pre-deadline servers keep accepting our frames.
  if (deadline_ms > 0) w.PutU32(deadline_ms);
  SIEVE_ASSIGN_OR_RETURN(Frame reply,
                         RoundTrip(MsgType::kExecute, w.payload()));
  if (reply.type == MsgType::kError) return DecodeError(reply);
  if (reply.type != MsgType::kRows) {
    return Status::ExecutionError("unexpected reply to EXECUTE");
  }
  SIEVE_ASSIGN_OR_RETURN(WireResult out, DecodeRows(reply));
  last_wire_error_ = 0;
  return out;
}

Result<WireResult> SieveClient::Execute(uint32_t stmt_id,
                                        const std::vector<Value>& params,
                                        uint32_t chunk_rows,
                                        uint32_t deadline_ms) {
  if (!retry_enabled_) {
    return ExecuteOnce(stmt_id, params, chunk_rows, deadline_ms);
  }
  auto it = prepared_.find(stmt_id);
  if (it == prepared_.end()) {
    return Status::InvalidArgument(
        StrFormat("unknown statement handle %u", stmt_id));
  }
  Result<WireResult> out = Status::ExecutionError("retry attempts exhausted");
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) ++retries_;
    if (transport_error_ || fd_ < 0) {
      Status s = Reconnect();
      if (!s.ok()) {
        Backoff(attempt);
        out = s;
        continue;
      }
    }
    out = ExecuteOnce(it->second.server_id, params, chunk_rows, deadline_ms);
    if (out.ok()) return out;
    if (transport_error_) continue;  // safe: every query is a SELECT
    if (!RetryableWireError()) return out;
    Backoff(attempt);
  }
  return out;
}

Result<WireResult> SieveClient::Fetch(uint32_t cursor_id, uint32_t max_rows,
                                      uint32_t deadline_ms) {
  WireWriter w;
  w.PutU32(cursor_id);
  w.PutU32(max_rows);
  if (deadline_ms > 0) w.PutU32(deadline_ms);
  SIEVE_ASSIGN_OR_RETURN(Frame reply, RoundTrip(MsgType::kFetch, w.payload()));
  if (reply.type == MsgType::kError) return DecodeError(reply);
  if (reply.type != MsgType::kRows) {
    return Status::ExecutionError("unexpected reply to FETCH");
  }
  SIEVE_ASSIGN_OR_RETURN(WireResult out, DecodeRows(reply));
  last_wire_error_ = 0;
  return out;
}

Status SieveClient::CloseCursor(uint32_t cursor_id) {
  WireWriter w;
  w.PutU32(cursor_id);
  SIEVE_ASSIGN_OR_RETURN(Frame reply,
                         RoundTrip(MsgType::kCloseCursor, w.payload()));
  if (reply.type == MsgType::kError) return DecodeError(reply);
  if (reply.type != MsgType::kOk) {
    return Status::ExecutionError("unexpected reply to CLOSE_CURSOR");
  }
  last_wire_error_ = 0;
  return Status::OK();
}

Status SieveClient::CloseStmt(uint32_t stmt_id) {
  uint32_t server_id = stmt_id;
  if (retry_enabled_) {
    auto it = prepared_.find(stmt_id);
    if (it == prepared_.end()) {
      return Status::InvalidArgument(
          StrFormat("unknown statement handle %u", stmt_id));
    }
    server_id = it->second.server_id;
    // Drop the handle regardless of the outcome: a failed close leaves
    // at worst a garbage server-side statement on a dying connection.
    prepared_.erase(it);
  }
  WireWriter w;
  w.PutU32(server_id);
  SIEVE_ASSIGN_OR_RETURN(Frame reply,
                         RoundTrip(MsgType::kCloseStmt, w.payload()));
  if (reply.type == MsgType::kError) return DecodeError(reply);
  if (reply.type != MsgType::kOk) {
    return Status::ExecutionError("unexpected reply to CLOSE_STMT");
  }
  last_wire_error_ = 0;
  return Status::OK();
}

Result<std::string> SieveClient::Stats() {
  Result<std::string> json = Status::ExecutionError("retry attempts exhausted");
  int attempts = retry_enabled_ ? policy_.max_attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) ++retries_;
    if (retry_enabled_ && (transport_error_ || fd_ < 0)) {
      Status s = Reconnect();
      if (!s.ok()) {
        Backoff(attempt);
        json = s;
        continue;
      }
    }
    Result<Frame> reply = RoundTrip(MsgType::kStats, {});
    if (!reply.ok()) {
      json = reply.status();
      if (retry_enabled_ && transport_error_) continue;
      return json;
    }
    if (reply->type == MsgType::kError) {
      json = DecodeError(*reply);
      if (retry_enabled_ && RetryableWireError()) {
        Backoff(attempt);
        continue;
      }
      return json;
    }
    if (reply->type != MsgType::kStatsOk) {
      return Status::ExecutionError("unexpected reply to STATS");
    }
    WireReader rd(reply->payload);
    SIEVE_ASSIGN_OR_RETURN(std::string out, rd.String());
    last_wire_error_ = 0;
    return out;
  }
  return json;
}

}  // namespace sieve::server
