#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/string_util.h"

namespace sieve::server {

Status SieveClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::ExecutionError("already connected");
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::ExecutionError(
        StrFormat("socket failed: %s", strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("invalid address '%s' (IPv4 only)", host.c_str()));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::ExecutionError(
        StrFormat("connect to %s:%u failed: %s", host.c_str(),
                  static_cast<unsigned>(port), strerror(errno)));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

void SieveClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Frame> SieveClient::RoundTrip(MsgType type,
                                     const std::string& payload) {
  if (fd_ < 0) return Status::ExecutionError("not connected");
  SIEVE_RETURN_IF_ERROR(WriteFrame(fd_, type, payload));
  return ReadFrame(fd_);
}

Status SieveClient::DecodeError(const Frame& f) {
  WireReader rd(f.payload);
  auto code = rd.U16();
  auto msg = rd.String();
  if (!code.ok() || !msg.ok()) {
    return Status::ExecutionError("undecodable error reply");
  }
  last_wire_error_ = *code;
  WireError we = static_cast<WireError>(*code);
  std::string text = StrFormat("%s: %s", WireErrorName(we), msg->c_str());
  switch (we) {
    case WireError::kAuthRequired:
    case WireError::kAuthFailed:
      return Status::AccessDenied(text);
    default:
      return Status::ExecutionError(text);
  }
}

Result<WireResult> SieveClient::DecodeRows(const Frame& f) {
  WireReader rd(f.payload);
  WireResult out;
  SIEVE_ASSIGN_OR_RETURN(out.cursor_id, rd.U32());
  SIEVE_ASSIGN_OR_RETURN(uint8_t done, rd.U8());
  out.done = done != 0;
  SIEVE_ASSIGN_OR_RETURN(uint16_t ncols, rd.U16());
  out.columns.reserve(ncols);
  for (uint16_t i = 0; i < ncols; ++i) {
    SIEVE_ASSIGN_OR_RETURN(std::string name, rd.String());
    SIEVE_ASSIGN_OR_RETURN(uint8_t type, rd.U8());
    out.columns.emplace_back(std::move(name), static_cast<DataType>(type));
  }
  SIEVE_ASSIGN_OR_RETURN(uint32_t nrows, rd.U32());
  out.rows.reserve(nrows);
  for (uint32_t r = 0; r < nrows; ++r) {
    Row row;
    row.reserve(ncols);
    for (uint16_t c = 0; c < ncols; ++c) {
      SIEVE_ASSIGN_OR_RETURN(Value v, rd.ReadValue());
      row.push_back(std::move(v));
    }
    out.rows.push_back(std::move(row));
  }
  if (!rd.AtEnd()) {
    return Status::ExecutionError("trailing bytes in rows reply");
  }
  return out;
}

Result<QueryMetadata> SieveClient::Hello(const std::string& token) {
  WireWriter w;
  w.PutU8(kProtocolVersion);
  w.PutString(token);
  SIEVE_ASSIGN_OR_RETURN(Frame reply, RoundTrip(MsgType::kHello, w.payload()));
  if (reply.type == MsgType::kError) return DecodeError(reply);
  if (reply.type != MsgType::kHelloOk) {
    return Status::ExecutionError("unexpected reply to HELLO");
  }
  WireReader rd(reply.payload);
  QueryMetadata md;
  SIEVE_ASSIGN_OR_RETURN(md.querier, rd.String());
  SIEVE_ASSIGN_OR_RETURN(md.purpose, rd.String());
  last_wire_error_ = 0;
  return md;
}

Result<WireStatement> SieveClient::Prepare(const std::string& sql) {
  WireWriter w;
  w.PutString(sql);
  SIEVE_ASSIGN_OR_RETURN(Frame reply,
                         RoundTrip(MsgType::kPrepare, w.payload()));
  if (reply.type == MsgType::kError) return DecodeError(reply);
  if (reply.type != MsgType::kPrepared) {
    return Status::ExecutionError("unexpected reply to PREPARE");
  }
  WireReader rd(reply.payload);
  WireStatement stmt;
  SIEVE_ASSIGN_OR_RETURN(stmt.id, rd.U32());
  SIEVE_ASSIGN_OR_RETURN(stmt.parameter_count, rd.U16());
  last_wire_error_ = 0;
  return stmt;
}

Result<WireResult> SieveClient::Execute(uint32_t stmt_id,
                                        const std::vector<Value>& params,
                                        uint32_t chunk_rows) {
  WireWriter w;
  w.PutU32(stmt_id);
  w.PutU32(chunk_rows);
  w.PutU16(static_cast<uint16_t>(params.size()));
  for (const Value& v : params) w.PutValue(v);
  SIEVE_ASSIGN_OR_RETURN(Frame reply,
                         RoundTrip(MsgType::kExecute, w.payload()));
  if (reply.type == MsgType::kError) return DecodeError(reply);
  if (reply.type != MsgType::kRows) {
    return Status::ExecutionError("unexpected reply to EXECUTE");
  }
  SIEVE_ASSIGN_OR_RETURN(WireResult out, DecodeRows(reply));
  last_wire_error_ = 0;
  return out;
}

Result<WireResult> SieveClient::Fetch(uint32_t cursor_id, uint32_t max_rows) {
  WireWriter w;
  w.PutU32(cursor_id);
  w.PutU32(max_rows);
  SIEVE_ASSIGN_OR_RETURN(Frame reply, RoundTrip(MsgType::kFetch, w.payload()));
  if (reply.type == MsgType::kError) return DecodeError(reply);
  if (reply.type != MsgType::kRows) {
    return Status::ExecutionError("unexpected reply to FETCH");
  }
  SIEVE_ASSIGN_OR_RETURN(WireResult out, DecodeRows(reply));
  last_wire_error_ = 0;
  return out;
}

Status SieveClient::CloseCursor(uint32_t cursor_id) {
  WireWriter w;
  w.PutU32(cursor_id);
  SIEVE_ASSIGN_OR_RETURN(Frame reply,
                         RoundTrip(MsgType::kCloseCursor, w.payload()));
  if (reply.type == MsgType::kError) return DecodeError(reply);
  if (reply.type != MsgType::kOk) {
    return Status::ExecutionError("unexpected reply to CLOSE_CURSOR");
  }
  last_wire_error_ = 0;
  return Status::OK();
}

Status SieveClient::CloseStmt(uint32_t stmt_id) {
  WireWriter w;
  w.PutU32(stmt_id);
  SIEVE_ASSIGN_OR_RETURN(Frame reply,
                         RoundTrip(MsgType::kCloseStmt, w.payload()));
  if (reply.type == MsgType::kError) return DecodeError(reply);
  if (reply.type != MsgType::kOk) {
    return Status::ExecutionError("unexpected reply to CLOSE_STMT");
  }
  last_wire_error_ = 0;
  return Status::OK();
}

Result<std::string> SieveClient::Stats() {
  SIEVE_ASSIGN_OR_RETURN(Frame reply, RoundTrip(MsgType::kStats, {}));
  if (reply.type == MsgType::kError) return DecodeError(reply);
  if (reply.type != MsgType::kStatsOk) {
    return Status::ExecutionError("unexpected reply to STATS");
  }
  WireReader rd(reply.payload);
  SIEVE_ASSIGN_OR_RETURN(std::string json, rd.String());
  last_wire_error_ = 0;
  return json;
}

}  // namespace sieve::server
