#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace sieve::server {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// kRows payload: cursor_id, done, schema, row block.
std::string EncodeRowsPayload(uint32_t cursor_id, bool done,
                              const Schema& schema,
                              const std::vector<Row>& rows) {
  WireWriter w;
  w.PutU32(cursor_id);
  w.PutU8(done ? 1 : 0);
  const auto& cols = schema.columns();
  w.PutU16(static_cast<uint16_t>(cols.size()));
  for (const ColumnDef& c : cols) {
    w.PutString(c.name);
    w.PutU8(static_cast<uint8_t>(c.type));
  }
  w.PutU32(static_cast<uint32_t>(rows.size()));
  for (const Row& row : rows) {
    for (const Value& v : row) w.PutValue(v);
  }
  return w.TakePayload();
}

void AppendJsonKV(std::string* out, const char* key, uint64_t v, bool last) {
  out->append("\"").append(key).append("\":");
  out->append(std::to_string(v));
  if (!last) out->push_back(',');
}

/// Wire error class for a failed execution: a deadline / timeout overrun
/// is a clean, retryable DEADLINE_EXCEEDED (the connection and its
/// admission slot stay usable); everything else is EXEC_FAILED.
WireError ExecWireError(const Status& s) {
  return s.code() == StatusCode::kTimeout ? WireError::kDeadlineExceeded
                                          : WireError::kExecFailed;
}

}  // namespace

SieveServer::SieveServer(SieveMiddleware* middleware, AuthRegistry* auth,
                         ServerOptions options)
    : mw_(middleware),
      auth_(auth),
      options_(std::move(options)),
      admission_(options_.admission_clock) {
  options_.num_workers = std::max(2, options_.num_workers);
  if (options_.max_frame_bytes == 0) options_.max_frame_bytes = kMaxFrameBytes;
  if (options_.max_fetch_rows == 0) options_.max_fetch_rows = 8192;
  if (options_.max_queued_frames == 0) options_.max_queued_frames = 1;
}

SieveServer::~SieveServer() { Stop(); }

Status SieveServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::ExecutionError("server already started");
  }
  // Operator-facing chaos hook: a malformed SIEVE_FAULT_SPEC fails Start
  // loudly instead of silently running without the requested faults.
  SIEVE_RETURN_IF_ERROR(FaultInjector::Instance().LoadFromEnv());

  // Non-blocking listener: the accept loop drains until EAGAIN.
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::ExecutionError(
        StrFormat("socket failed: %s", strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrFormat("invalid listen address '%s' (IPv4 only)",
                  options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Status::ExecutionError(
        StrFormat("bind to %s:%u failed: %s", options_.host.c_str(),
                  static_cast<unsigned>(options_.port), strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status s = Status::ExecutionError(
        StrFormat("listen failed: %s", strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  if (::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
    Status s = Status::ExecutionError(
        StrFormat("pipe2 failed: %s", strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return Status::OK();
}

void SieveServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stop_requested_) return;
    stop_requested_ = true;
  }

  // Phase 1 — drain. New connections and work-starting requests (HELLO /
  // PREPARE / EXECUTE) are refused with SERVER_SHUTDOWN; requests already
  // queued or running finish, and open cursors keep serving the cursor
  // lane. Wait (bounded by the grace period) until no connection holds
  // work: lanes empty, nobody busy, inboxes empty, cursors closed.
  draining_.store(true, std::memory_order_release);
  WakeIo();
  const double grace = options_.drain_grace_seconds;
  const double grace_deadline = grace > 0.0 ? NowSeconds() + grace : 0.0;
  while (grace > 0.0 && NowSeconds() < grace_deadline) {
    bool idle = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      idle = cursor_lane_.empty() && general_lane_.empty();
      if (idle) {
        for (auto& [fd, c] : conns_) {
          if (c->busy || c->cursor || !c->inbox.empty()) {
            idle = false;
            break;
          }
        }
      }
    }
    if (idle) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Phase 2 — hard stop: whatever survived the grace period is torn down.
  hard_stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  WakeIo();
  if (io_thread_.joinable()) io_thread_.join();

  // Workers exit as soon as they finish their current request — except a
  // worker blocked inside a gate-exclusive acquisition (cache-miss
  // PREPARE / stale refresh) waiting on cursor pins that nobody will
  // drain anymore. Assist: abandon every idle connection's cursor (the
  // blocked worker's own connection cannot hold one — protocol rule), so
  // the writer unblocks and the worker exits.
  for (;;) {
    std::vector<std::unique_ptr<ResultCursor>> orphans;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (workers_exited_ == static_cast<int>(workers_.size())) break;
      for (Connection* c : cursor_lane_) c->busy = false;
      for (Connection* c : general_lane_) c->busy = false;
      cursor_lane_.clear();
      general_lane_.clear();
      for (auto& [fd, c] : conns_) {
        if (c->busy || !c->cursor) continue;
        orphans.push_back(std::move(c->cursor));
        c->cursor_id = 0;
        cursors_aborted_.fetch_add(1, std::memory_order_relaxed);
        if (c->admitted) {
          admission_.Release(c->ident.md.querier);
          c->admitted = false;
        }
      }
    }
    work_cv_.notify_all();
    for (auto& cur : orphans) cur->Close();
    orphans.clear();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }

  // Single-threaded from here: tear down every surviving connection
  // (closing cursors releases their middleware pins).
  std::vector<std::unique_ptr<Connection>> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [fd, c] : conns_) doomed.push_back(std::move(c));
    conns_.clear();
    cursor_lane_.clear();
    general_lane_.clear();
  }
  for (auto& c : doomed) DestroyConnection(std::move(c));

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }

  // Every cursor is closed now, so the exclusive state gate is free:
  // materialize the enforcement records of the final requests instead of
  // dropping them with the server (failures stay counted in
  // MiddlewareHealth::audit_unflushed).
  [[maybe_unused]] Status flushed = mw_->FlushAuditLog();
}

SieveServer::Stats SieveServer::stats() const {
  Stats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_rejected = rejected_.load(std::memory_order_relaxed);
  s.auth_failures = auth_failures_.load(std::memory_order_relaxed);
  s.frames_received = frames_.load(std::memory_order_relaxed);
  s.queries_executed = queries_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  AdmissionController::Stats a = admission_.stats();
  s.rate_limited = a.rate_limited;
  s.in_flight_rejected = a.in_flight_rejected;
  s.write_timeouts = write_timeouts_.load(std::memory_order_relaxed);
  s.drain_rejected = drain_rejected_.load(std::memory_order_relaxed);
  s.cursors_drained = cursors_drained_.load(std::memory_order_relaxed);
  s.cursors_aborted = cursors_aborted_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.active_connections = conns_.size();
  for (const auto& [fd, c] : conns_) {
    if (c->cursor) ++s.open_cursors;
  }
  return s;
}

std::string SieveServer::StatsJson() const {
  Stats s = stats();
  MiddlewareHealth h = mw_->Health();
  std::string j = "{\"server\":{";
  AppendJsonKV(&j, "active_connections", s.active_connections, false);
  AppendJsonKV(&j, "open_cursors", s.open_cursors, false);
  AppendJsonKV(&j, "connections_accepted", s.connections_accepted, false);
  AppendJsonKV(&j, "connections_rejected", s.connections_rejected, false);
  AppendJsonKV(&j, "auth_failures", s.auth_failures, false);
  AppendJsonKV(&j, "frames_received", s.frames_received, false);
  AppendJsonKV(&j, "queries_executed", s.queries_executed, false);
  AppendJsonKV(&j, "protocol_errors", s.protocol_errors, false);
  AppendJsonKV(&j, "rate_limited", s.rate_limited, false);
  AppendJsonKV(&j, "in_flight_rejected", s.in_flight_rejected, false);
  AppendJsonKV(&j, "write_timeouts", s.write_timeouts, false);
  AppendJsonKV(&j, "drain_rejected", s.drain_rejected, false);
  AppendJsonKV(&j, "cursors_drained", s.cursors_drained, false);
  AppendJsonKV(&j, "cursors_aborted", s.cursors_aborted, true);
  j += "},\"cache\":{";
  AppendJsonKV(&j, "hits", h.cache.hits, false);
  AppendJsonKV(&j, "misses", h.cache.misses, false);
  AppendJsonKV(&j, "invalidations", h.cache.invalidations, false);
  AppendJsonKV(&j, "evictions", h.cache.evictions, false);
  AppendJsonKV(&j, "stale_drops", h.cache.stale_drops, true);
  j += "},\"audit\":{";
  AppendJsonKV(&j, "pending", h.audit_pending, false);
  AppendJsonKV(&j, "dropped", h.audit_dropped, false);
  AppendJsonKV(&j, "unflushed", h.audit_unflushed, false);
  AppendJsonKV(&j, "total_appended", static_cast<uint64_t>(h.audit_total),
               false);
  AppendJsonKV(&j, "truncated", h.audit_truncated, true);
  j += "},";
  AppendJsonKV(&j, "policy_epoch", h.policy_epoch, true);
  j += "}";
  return j;
}

// ---------------------------------------------------------------------------
// IO thread
// ---------------------------------------------------------------------------

void SieveServer::WakeIo() {
  char b = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

void SieveServer::IoLoop() {
  std::vector<pollfd> pfds;
  std::vector<Connection*> pconns;  // parallel to pfds[2..]
  for (;;) {
    pfds.clear();
    pconns.clear();
    std::vector<std::unique_ptr<Connection>> reaped;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      // Reap connections nobody holds anymore.
      for (auto it = conns_.begin(); it != conns_.end();) {
        if (it->second->dead && !it->second->busy) {
          reaped.push_back(std::move(it->second));
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      pfds.push_back({wake_pipe_[0], POLLIN, 0});
      // Always poll the listener: over-capacity connects are accepted and
      // immediately rejected with kTooManyConnections rather than left to
      // rot in the backlog.
      pfds.push_back({listen_fd_, POLLIN, 0});
      for (auto& [fd, c] : conns_) {
        if (c->dead) continue;  // busy worker still holds it; skip polling
        short events = 0;
        if (!c->stop_reading && c->inbox.size() < options_.max_queued_frames) {
          events = POLLIN;
        }
        pfds.push_back({fd, events, 0});
        pconns.push_back(c.get());
      }
    }
    for (auto& c : reaped) DestroyConnection(std::move(c));
    reaped.clear();

    if (::poll(pfds.data(), pfds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      return;  // unrecoverable poll failure
    }

    if (pfds[0].revents != 0) {
      char buf[256];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }

    for (size_t i = 2; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      Connection* conn = pconns[i - 2];
      if (!DrainSocket(conn)) {
        std::lock_guard<std::mutex> lock(mu_);
        conn->dead = true;  // reaped at the top of the next iteration
      }
    }

    // Accept last so a just-closed fd can't be confused with a reused one
    // within the same iteration.
    if (pfds[1].revents != 0) {
      for (;;) {
        int fd = ::accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
          if (errno == EINTR) continue;
          break;  // EAGAIN or transient accept failure
        }
        if (SIEVE_FAULT_POINT("server.accept.fail")) {
          // Simulated transient accept-path failure (fd exhaustion,
          // aborted handshake): the connection is dropped on the floor.
          rejected_.fetch_add(1, std::memory_order_relaxed);
          ::close(fd);
          continue;
        }
        WireError refuse = WireError::kMalformed;
        const char* refuse_msg = nullptr;
        if (draining_.load(std::memory_order_acquire)) {
          refuse = WireError::kServerShutdown;
          refuse_msg = "server is shutting down";
        } else {
          std::lock_guard<std::mutex> lock(mu_);
          if (conns_.size() >= options_.max_connections) {
            refuse = WireError::kTooManyConnections;
            refuse_msg = "server at connection capacity";
          }
        }
        if (refuse_msg != nullptr) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          WireWriter w;
          w.PutU16(static_cast<uint16_t>(refuse));
          w.PutString(refuse_msg);
          std::string frame = EncodeFrame(MsgType::kError, w.payload());
          // Best-effort courtesy reply; the socket buffer is empty.
          [[maybe_unused]] ssize_t n =
              ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
          ::close(fd);
          continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        if (options_.so_sndbuf > 0) {
          ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                       sizeof(options_.so_sndbuf));
        }
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        accepted_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu_);
        conns_.emplace(fd, std::move(conn));
      }
    }
  }
}

bool SieveServer::DrainSocket(Connection* conn) {
  // Read whatever is buffered (bounded per pass so one firehose client
  // cannot starve the poll loop).
  constexpr size_t kMaxBytesPerPass = 256 * 1024;
  char buf[16 * 1024];
  size_t taken = 0;
  bool eof = false;
  while (taken < kMaxBytesPerPass) {
    ssize_t n;
    if (SIEVE_FAULT_POINT("server.io.disconnect")) {
      n = 0;  // peer vanished mid-frame
    } else if (SIEVE_FAULT_POINT("server.io.read_eintr")) {
      n = -1;
      errno = EINTR;  // interrupted syscall; the retry path must absorb it
    } else {
      // A short read clamps the request to one byte: frames arrive one
      // byte at a time and must reassemble across passes.
      size_t want =
          SIEVE_FAULT_POINT("server.io.short_read") ? 1 : sizeof(buf);
      n = ::recv(conn->fd, buf, want, 0);
    }
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      taken += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    eof = true;  // hard socket error: same teardown as EOF
    break;
  }

  std::vector<Request> parsed;
  if (!conn->stop_reading) {
    for (;;) {
      Frame f;
      FrameParse p = ExtractFrame(&conn->inbuf, options_.max_frame_bytes, &f);
      if (p == FrameParse::kFrame) {
        frames_.fetch_add(1, std::memory_order_relaxed);
        Request r;
        r.frame = std::move(f);
        parsed.push_back(std::move(r));
        continue;
      }
      if (p == FrameParse::kNeedMore) break;
      // Framing-level failure: the byte stream is unrecoverable. Queue a
      // synthetic error so a worker replies in-order, and stop reading.
      Request r;
      r.synthetic = true;
      r.err = p == FrameParse::kTooLarge ? WireError::kFrameTooLarge
                                         : WireError::kMalformed;
      r.err_msg = p == FrameParse::kTooLarge
                      ? StrFormat("frame exceeds limit of %u bytes",
                                  options_.max_frame_bytes)
                      : "zero-length frame";
      parsed.push_back(std::move(r));
      conn->stop_reading = true;
      ::shutdown(conn->fd, SHUT_RD);
      break;
    }
  }

  if (!parsed.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (Request& r : parsed) conn->inbox.push_back(std::move(r));
    if (!conn->busy && !conn->dead) ScheduleLocked(conn);
  }
  return !eof;
}

// ---------------------------------------------------------------------------
// Worker scheduling
// ---------------------------------------------------------------------------

bool SieveServer::IsCursorLane(const Request& r) {
  if (r.synthetic) return true;  // error reply + close: never touches the gate
  switch (r.frame.type) {
    case MsgType::kFetch:
    case MsgType::kCloseCursor:
    case MsgType::kCloseStmt:
    case MsgType::kStats:
      return true;
    default:
      return false;
  }
}

void SieveServer::ScheduleLocked(Connection* conn) {
  if (conn->busy || conn->inbox.empty()) return;
  conn->busy = true;
  if (IsCursorLane(conn->inbox.front())) {
    cursor_lane_.push_back(conn);
  } else {
    general_lane_.push_back(conn);
  }
  // notify_all: worker 0 refuses general work, so notify_one could wake
  // the one worker that cannot take the queued request.
  work_cv_.notify_all();
}

void SieveServer::WorkerLoop(int worker_index) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] {
      return stopping_ || !cursor_lane_.empty() ||
             (worker_index != 0 && !general_lane_.empty());
    });
    if (stopping_) break;
    Connection* conn = nullptr;
    if (!cursor_lane_.empty()) {
      conn = cursor_lane_.front();
      cursor_lane_.pop_front();
    } else if (worker_index != 0 && !general_lane_.empty()) {
      conn = general_lane_.front();
      general_lane_.pop_front();
    }
    if (conn == nullptr) continue;
    if (conn->dead || conn->inbox.empty()) {
      conn->busy = false;
      lk.unlock();
      WakeIo();  // let the IO thread reap it
      lk.lock();
      continue;
    }
    Request req = std::move(conn->inbox.front());
    conn->inbox.pop_front();
    lk.unlock();
    if (SIEVE_FAULT_POINT("server.worker.stall")) {
      // Scheduling jitter: shakes out request-ordering assumptions.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ProcessRequest(conn, std::move(req));
    lk.lock();
    conn->busy = false;
    if (!conn->dead && !conn->inbox.empty()) ScheduleLocked(conn);
    lk.unlock();
    WakeIo();  // re-arm reading (inbox drained below cap) or reap
    lk.lock();
  }
  ++workers_exited_;
}

// ---------------------------------------------------------------------------
// Request processing (no server lock held)
// ---------------------------------------------------------------------------

void SieveServer::ProcessRequest(Connection* conn, Request req) {
  if (req.synthetic) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, req.err, req.err_msg);
    KillConnection(conn);
    return;
  }
  const MsgType type = req.frame.type;
  // Drain gate: once Stop() is underway, no new work starts — but the
  // cursor lane (FETCH / CLOSE_* / STATS) keeps serving so open cursors
  // can finish within the grace period.
  if (draining_.load(std::memory_order_acquire) &&
      (type == MsgType::kHello || type == MsgType::kPrepare ||
       type == MsgType::kExecute)) {
    drain_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, WireError::kServerShutdown,
              "server is shutting down; no new work accepted");
    return;
  }
  if (!conn->authed && type != MsgType::kHello) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, WireError::kAuthRequired,
              "authenticate with HELLO first");
    KillConnection(conn);
    return;
  }
  // Protocol rule: an open cursor admits only cursor-lane commands, so a
  // connection can never wedge itself (or a worker) behind its own pin.
  if (conn->cursor && type != MsgType::kFetch &&
      type != MsgType::kCloseCursor && type != MsgType::kCloseStmt &&
      type != MsgType::kStats) {
    SendError(conn, WireError::kCursorOpen,
              "drain or close the open cursor first");
    return;
  }
  WireReader rd(req.frame.payload);
  switch (type) {
    case MsgType::kHello:
      HandleHello(conn, &rd);
      return;
    case MsgType::kPrepare:
      HandlePrepare(conn, &rd);
      return;
    case MsgType::kExecute:
      HandleExecute(conn, &rd);
      return;
    case MsgType::kFetch:
      HandleFetch(conn, &rd);
      return;
    case MsgType::kCloseCursor:
      HandleCloseCursor(conn, &rd);
      return;
    case MsgType::kCloseStmt:
      HandleCloseStmt(conn, &rd);
      return;
    case MsgType::kStats:
      HandleStats(conn);
      return;
    default:
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, WireError::kMalformed,
                StrFormat("unknown message type %u",
                          static_cast<unsigned>(type)));
      return;
  }
}

void SieveServer::HandleHello(Connection* conn, WireReader* rd) {
  if (conn->authed) {
    SendError(conn, WireError::kMalformed, "already authenticated");
    return;
  }
  auto version = rd->U8();
  auto token = rd->String();
  if (!version.ok() || !token.ok() || !rd->AtEnd()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, WireError::kMalformed, "bad HELLO payload");
    KillConnection(conn);
    return;
  }
  if (*version != kProtocolVersion) {
    SendError(conn, WireError::kMalformed,
              StrFormat("unsupported protocol version %u",
                        static_cast<unsigned>(*version)));
    KillConnection(conn);
    return;
  }
  Result<AuthedIdentity> ident = auth_->Authenticate(*token);
  if (!ident.ok()) {
    auth_failures_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, WireError::kAuthFailed, ident.status().message());
    KillConnection(conn);
    return;
  }
  if (options_.require_known_subject && !mw_->IsKnownSubject(ident->md)) {
    // Same deliberately unspecific message as an unknown token.
    auth_failures_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, WireError::kAuthFailed, "authentication failed");
    KillConnection(conn);
    return;
  }
  conn->authed = true;
  conn->ident = std::move(*ident);
  if (conn->ident.limits.unlimited()) {
    conn->ident.limits = options_.default_limits;
  }
  conn->session = std::make_unique<SieveSession>(mw_, conn->ident.md);
  WireWriter w;
  w.PutString(conn->ident.md.querier);
  w.PutString(conn->ident.md.purpose);
  SendFrame(conn, MsgType::kHelloOk, w.payload());
}

void SieveServer::HandlePrepare(Connection* conn, WireReader* rd) {
  auto sql = rd->String();
  if (!sql.ok() || !rd->AtEnd()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, WireError::kMalformed, "bad PREPARE payload");
    return;
  }
  if (conn->stmts.size() >= options_.max_prepared_per_conn) {
    SendError(conn, WireError::kTooManyStatements,
              StrFormat("connection holds %zu prepared statements (limit)",
                        conn->stmts.size()));
    return;
  }
  Result<PreparedQuery> pq = conn->session->Prepare(*sql);
  if (!pq.ok()) {
    SendError(conn, WireError::kPrepareFailed, pq.status().message());
    return;
  }
  uint32_t id = conn->next_stmt_id++;
  uint16_t nparams = static_cast<uint16_t>(pq->parameter_count());
  conn->stmts.emplace(id, std::move(*pq));
  WireWriter w;
  w.PutU32(id);
  w.PutU16(nparams);
  SendFrame(conn, MsgType::kPrepared, w.payload());
}

void SieveServer::HandleExecute(Connection* conn, WireReader* rd) {
  auto stmt_id = rd->U32();
  auto chunk_rows = rd->U32();
  auto nparams = rd->U16();
  if (!stmt_id.ok() || !chunk_rows.ok() || !nparams.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, WireError::kMalformed, "bad EXECUTE payload");
    return;
  }
  std::vector<Value> params;
  params.reserve(*nparams);
  for (uint16_t i = 0; i < *nparams; ++i) {
    Result<Value> v = rd->ReadValue();
    if (!v.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, WireError::kMalformed, v.status().message());
      return;
    }
    params.push_back(std::move(*v));
  }
  // Optional trailing per-request deadline (0 = none). Clients predating
  // the field simply omit it.
  uint32_t deadline_ms = 0;
  if (!rd->AtEnd()) {
    auto dl = rd->U32();
    if (!dl.ok() || !rd->AtEnd()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, WireError::kMalformed,
                "trailing bytes after parameters");
      return;
    }
    deadline_ms = *dl;
  }
  auto it = conn->stmts.find(*stmt_id);
  if (it == conn->stmts.end()) {
    SendError(conn, WireError::kBadStatement,
              StrFormat("unknown statement id %u", *stmt_id));
    return;
  }

  switch (admission_.TryAdmit(conn->ident.md.querier, conn->ident.limits)) {
    case AdmissionController::Verdict::kRateLimited:
      SendError(conn, WireError::kRateLimited,
                "per-querier rate limit exceeded; retry later");
      return;
    case AdmissionController::Verdict::kTooManyInFlight:
      SendError(conn, WireError::kTooManyInFlight,
                "per-querier in-flight limit reached");
      return;
    case AdmissionController::Verdict::kAdmit:
      break;
  }
  conn->admitted = true;

  const double deadline_seconds = deadline_ms / 1000.0;
  if (*chunk_rows == 0) {
    // Materialized execution: admission covers just the execution.
    Result<ResultSet> rs = it->second.Execute(params, deadline_seconds);
    admission_.Release(conn->ident.md.querier);
    conn->admitted = false;
    if (!rs.ok()) {
      SendError(conn, ExecWireError(rs.status()), rs.status().message());
      return;
    }
    std::string payload = EncodeRowsPayload(0, true, rs->schema, rs->rows);
    if (payload.size() + 1 > options_.max_frame_bytes) {
      SendError(conn, WireError::kExecFailed,
                "result exceeds the frame limit; execute with chunk_rows > 0");
      return;
    }
    queries_.fetch_add(1, std::memory_order_relaxed);
    SendFrame(conn, MsgType::kRows, payload);
    return;
  }

  // Cursor execution: the admission slot is held until the cursor is
  // drained or closed (it pins middleware state and per-connection
  // buffering the whole time).
  Result<ResultCursor> cur = it->second.OpenCursor(params, deadline_seconds);
  if (!cur.ok()) {
    admission_.Release(conn->ident.md.querier);
    conn->admitted = false;
    SendError(conn, ExecWireError(cur.status()), cur.status().message());
    return;
  }
  conn->cursor = std::make_unique<ResultCursor>(std::move(*cur));
  conn->cursor_id = conn->next_cursor_id++;
  queries_.fetch_add(1, std::memory_order_relaxed);
  ReplyCursorChunk(conn, *chunk_rows);
}

void SieveServer::HandleFetch(Connection* conn, WireReader* rd) {
  auto cursor_id = rd->U32();
  auto max_rows = rd->U32();
  if (!cursor_id.ok() || !max_rows.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, WireError::kMalformed, "bad FETCH payload");
    return;
  }
  // Optional trailing per-chunk deadline (0 = none).
  uint32_t deadline_ms = 0;
  if (!rd->AtEnd()) {
    auto dl = rd->U32();
    if (!dl.ok() || !rd->AtEnd()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, WireError::kMalformed, "bad FETCH payload");
      return;
    }
    deadline_ms = *dl;
  }
  if (!conn->cursor || *cursor_id != conn->cursor_id) {
    SendError(conn, WireError::kBadCursor,
              StrFormat("no open cursor with id %u", *cursor_id));
    return;
  }
  if (deadline_ms > 0) {
    conn->cursor->TightenDeadline(deadline_ms / 1000.0);
  }
  ReplyCursorChunk(conn, *max_rows);
}

void SieveServer::ReplyCursorChunk(Connection* conn, uint32_t want) {
  want = std::min(std::max(want, 1u), options_.max_fetch_rows);
  std::vector<Row> rows;
  while (rows.size() < want && !conn->cursor->exhausted()) {
    Result<bool> more =
        conn->cursor->Next(&rows, want - static_cast<uint32_t>(rows.size()));
    if (!more.ok()) {
      WireError code = ExecWireError(more.status());
      std::string msg(more.status().message());
      FinishCursor(conn, /*abandon=*/true);
      SendError(conn, code, msg);
      return;
    }
    if (!*more) break;
  }
  bool done = conn->cursor->exhausted();
  std::string payload = EncodeRowsPayload(conn->cursor_id, done,
                                          conn->cursor->schema(), rows);
  if (payload.size() + 1 > options_.max_frame_bytes) {
    // The pulled rows cannot be pushed back; the stream is unrecoverable.
    FinishCursor(conn, /*abandon=*/true);
    SendError(conn, WireError::kExecFailed,
              "chunk exceeds the frame limit; fetch fewer rows at a time");
    return;
  }
  if (done) FinishCursor(conn, /*abandon=*/false);
  SendFrame(conn, MsgType::kRows, payload);
}

void SieveServer::FinishCursor(Connection* conn, bool abandon) {
  if (conn->cursor) {
    if (abandon) conn->cursor->Close();
    conn->cursor.reset();
    // Drain bookkeeping: cursors that close while Stop() waits count as
    // drained; those still alive at the hard stop count as aborted.
    if (hard_stop_.load(std::memory_order_acquire)) {
      cursors_aborted_.fetch_add(1, std::memory_order_relaxed);
    } else if (draining_.load(std::memory_order_acquire)) {
      cursors_drained_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  conn->cursor_id = 0;
  if (conn->admitted) {
    admission_.Release(conn->ident.md.querier);
    conn->admitted = false;
  }
}

void SieveServer::HandleCloseCursor(Connection* conn, WireReader* rd) {
  auto cursor_id = rd->U32();
  if (!cursor_id.ok() || !rd->AtEnd()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, WireError::kMalformed, "bad CLOSE_CURSOR payload");
    return;
  }
  if (!conn->cursor || *cursor_id != conn->cursor_id) {
    SendError(conn, WireError::kBadCursor,
              StrFormat("no open cursor with id %u", *cursor_id));
    return;
  }
  FinishCursor(conn, /*abandon=*/true);
  SendFrame(conn, MsgType::kOk, {});
}

void SieveServer::HandleCloseStmt(Connection* conn, WireReader* rd) {
  auto stmt_id = rd->U32();
  if (!stmt_id.ok() || !rd->AtEnd()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, WireError::kMalformed, "bad CLOSE_STMT payload");
    return;
  }
  if (conn->stmts.erase(*stmt_id) == 0) {
    SendError(conn, WireError::kBadStatement,
              StrFormat("unknown statement id %u", *stmt_id));
    return;
  }
  SendFrame(conn, MsgType::kOk, {});
}

void SieveServer::HandleStats(Connection* conn) {
  WireWriter w;
  w.PutString(StatsJson());
  SendFrame(conn, MsgType::kStatsOk, w.payload());
}

// ---------------------------------------------------------------------------
// Replies and teardown
// ---------------------------------------------------------------------------

void SieveServer::SendError(Connection* conn, WireError code,
                            const std::string& msg) {
  WireWriter w;
  w.PutU16(static_cast<uint16_t>(code));
  w.PutString(msg);
  SendFrame(conn, MsgType::kError, w.payload());
}

void SieveServer::SendFrame(Connection* conn, MsgType type,
                            const std::string& payload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (conn->dead) return;
  }
  std::string frame = EncodeFrame(type, payload);
  const double deadline =
      options_.write_timeout_seconds > 0
          ? NowSeconds() + options_.write_timeout_seconds
          : 0.0;
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n;
    if (SIEVE_FAULT_POINT("server.io.write_error")) {
      n = -1;
      errno = EPIPE;  // peer reset mid-reply
    } else {
      // A short write clamps to one byte: the partial-write loop must
      // finish the frame across many sends.
      size_t len = SIEVE_FAULT_POINT("server.io.write_short")
                       ? 1
                       : frame.size() - off;
      n = ::send(conn->fd, frame.data() + off, len, MSG_NOSIGNAL);
    }
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Slow reader: wait for the socket to drain, bounded by the write
      // timeout (a stuck reader must not pin a worker forever). Only this
      // connection is torn down — its cursor closes and its admission
      // slot frees immediately, rather than waiting for the reaper.
      if (deadline > 0.0 && NowSeconds() >= deadline) {
        write_timeouts_.fetch_add(1, std::memory_order_relaxed);
        FinishCursor(conn, /*abandon=*/true);
        KillConnection(conn);
        return;
      }
      pollfd p{conn->fd, POLLOUT, 0};
      ::poll(&p, 1, 100);
      continue;
    }
    FinishCursor(conn, /*abandon=*/true);  // EPIPE / ECONNRESET / ...
    KillConnection(conn);
    return;
  }
}

void SieveServer::KillConnection(Connection* conn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (conn->dead) return;
    conn->dead = true;
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  WakeIo();
}

void SieveServer::DestroyConnection(std::unique_ptr<Connection> conn) {
  FinishCursor(conn.get(), /*abandon=*/true);  // releases the epoch pin
  conn->stmts.clear();
  conn->session.reset();
  if (conn->fd >= 0) ::close(conn->fd);
}

}  // namespace sieve::server
