#include "server/wire.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/string_util.h"

namespace sieve::server {

const char* WireErrorName(WireError e) {
  switch (e) {
    case WireError::kAuthRequired: return "AUTH_REQUIRED";
    case WireError::kAuthFailed: return "AUTH_FAILED";
    case WireError::kRateLimited: return "RATE_LIMITED";
    case WireError::kTooManyInFlight: return "TOO_MANY_IN_FLIGHT";
    case WireError::kMalformed: return "MALFORMED";
    case WireError::kFrameTooLarge: return "FRAME_TOO_LARGE";
    case WireError::kBadStatement: return "BAD_STATEMENT";
    case WireError::kBadCursor: return "BAD_CURSOR";
    case WireError::kCursorOpen: return "CURSOR_OPEN";
    case WireError::kPrepareFailed: return "PREPARE_FAILED";
    case WireError::kExecFailed: return "EXEC_FAILED";
    case WireError::kTooManyConnections: return "TOO_MANY_CONNECTIONS";
    case WireError::kTooManyStatements: return "TOO_MANY_STATEMENTS";
    case WireError::kServerShutdown: return "SERVER_SHUTDOWN";
    case WireError::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

// ---------------------------------------------------------------------------
// WireWriter
// ---------------------------------------------------------------------------

void WireWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v & 0xff));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void WireWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

void WireWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

void WireWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void WireWriter::PutValue(const Value& v) {
  PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      PutU8(v.AsBool() ? 1 : 0);
      break;
    case DataType::kInt:
    case DataType::kTime:
    case DataType::kDate:
      PutI64(v.raw());
      break;
    case DataType::kDouble:
      PutDouble(v.AsDouble());
      break;
    case DataType::kString:
      PutString(v.AsString());
      break;
  }
}

// ---------------------------------------------------------------------------
// WireReader
// ---------------------------------------------------------------------------

Status WireReader::Need(size_t n) const {
  if (data_.size() - pos_ < n) {
    return Status::InvalidArgument(
        StrFormat("truncated payload: need %zu byte(s) at offset %zu of %zu",
                  n, pos_, data_.size()));
  }
  return Status::OK();
}

Result<uint8_t> WireReader::U8() {
  SIEVE_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint16_t> WireReader::U16() {
  SIEVE_RETURN_IF_ERROR(Need(2));
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

Result<uint32_t> WireReader::U32() {
  SIEVE_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

Result<uint64_t> WireReader::U64() {
  SIEVE_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

Result<int64_t> WireReader::I64() {
  SIEVE_ASSIGN_OR_RETURN(uint64_t bits, U64());
  return static_cast<int64_t>(bits);
}

Result<double> WireReader::Double() {
  SIEVE_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> WireReader::String() {
  SIEVE_ASSIGN_OR_RETURN(uint32_t len, U32());
  SIEVE_RETURN_IF_ERROR(Need(len));
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

Result<Value> WireReader::ReadValue() {
  SIEVE_ASSIGN_OR_RETURN(uint8_t tag, U8());
  switch (static_cast<DataType>(tag)) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool: {
      SIEVE_ASSIGN_OR_RETURN(uint8_t b, U8());
      return Value::Bool(b != 0);
    }
    case DataType::kInt: {
      SIEVE_ASSIGN_OR_RETURN(int64_t v, I64());
      return Value::Int(v);
    }
    case DataType::kTime: {
      SIEVE_ASSIGN_OR_RETURN(int64_t v, I64());
      return Value::Time(v);
    }
    case DataType::kDate: {
      SIEVE_ASSIGN_OR_RETURN(int64_t v, I64());
      return Value::Date(v);
    }
    case DataType::kDouble: {
      SIEVE_ASSIGN_OR_RETURN(double v, Double());
      return Value::Double(v);
    }
    case DataType::kString: {
      SIEVE_ASSIGN_OR_RETURN(std::string s, String());
      return Value::String(std::move(s));
    }
  }
  return Status::InvalidArgument(
      StrFormat("unknown value type tag %u", static_cast<unsigned>(tag)));
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::string EncodeFrame(MsgType type, std::string_view payload) {
  std::string out;
  out.reserve(5 + payload.size());
  uint32_t len = static_cast<uint32_t>(payload.size()) + 1;  // + type byte
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  out.push_back(static_cast<char>(type));
  out.append(payload.data(), payload.size());
  return out;
}

FrameParse ExtractFrame(std::string* buf, uint32_t max_frame_bytes,
                        Frame* out) {
  if (buf->size() < 4) return FrameParse::kNeedMore;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>((*buf)[i])) << (8 * i);
  }
  if (len == 0) return FrameParse::kMalformed;
  if (len > max_frame_bytes) return FrameParse::kTooLarge;
  if (buf->size() < 4u + len) return FrameParse::kNeedMore;
  out->type = static_cast<MsgType>(static_cast<uint8_t>((*buf)[4]));
  out->payload.assign(*buf, 5, len - 1);
  buf->erase(0, 4u + len);
  return FrameParse::kFrame;
}

Status WriteFrame(int fd, MsgType type, std::string_view payload) {
  std::string frame = EncodeFrame(type, payload);
  size_t off = 0;
  while (off < frame.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE
    // (a Status the caller's retry layer can act on), not kill the
    // process with SIGPIPE.
    ssize_t n =
        ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::ExecutionError(
          StrFormat("wire write failed: %s", strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

namespace {

Status ReadExactly(int fd, char* dst, size_t n, bool* clean_eof_at_start) {
  size_t off = 0;
  while (off < n) {
    ssize_t got = ::read(fd, dst + off, n - off);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::ExecutionError(
          StrFormat("wire read failed: %s", strerror(errno)));
    }
    if (got == 0) {
      if (off == 0 && clean_eof_at_start != nullptr) {
        *clean_eof_at_start = true;
        return Status::NotFound("connection closed");
      }
      return Status::ExecutionError("connection closed mid-frame");
    }
    off += static_cast<size_t>(got);
  }
  return Status::OK();
}

}  // namespace

Result<Frame> ReadFrame(int fd, uint32_t max_frame_bytes) {
  char hdr[4];
  bool clean_eof = false;
  SIEVE_RETURN_IF_ERROR(ReadExactly(fd, hdr, 4, &clean_eof));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(hdr[i])) << (8 * i);
  }
  if (len == 0) return Status::InvalidArgument("zero-length frame");
  if (len > max_frame_bytes) {
    return Status::InvalidArgument(
        StrFormat("frame of %u bytes exceeds limit %u", len, max_frame_bytes));
  }
  std::string body(len, '\0');
  SIEVE_RETURN_IF_ERROR(ReadExactly(fd, body.data(), len, nullptr));
  Frame frame;
  frame.type = static_cast<MsgType>(static_cast<uint8_t>(body[0]));
  frame.payload = body.substr(1);
  return frame;
}

}  // namespace sieve::server
