#ifndef SIEVE_SERVER_CLIENT_H_
#define SIEVE_SERVER_CLIENT_H_

// Blocking reference client for the Sieve wire protocol: one TCP
// connection, synchronous request/reply. It is the counterpart the
// loopback tests, the closed-loop bench and the example speak through —
// deliberately simple (no pipelining, no reconnect) so a transcript of
// its calls reads like the protocol conversation itself.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/metadata.h"
#include "common/status.h"
#include "common/value.h"
#include "server/wire.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace sieve::server {

/// One reply's worth of rows (a materialized result or a cursor chunk).
struct WireResult {
  std::vector<std::pair<std::string, DataType>> columns;
  std::vector<Row> rows;
  /// 0 for a materialized result; otherwise the server-side cursor to
  /// FETCH from until `done`.
  uint32_t cursor_id = 0;
  bool done = true;
};

/// A prepared statement handle returned by Prepare.
struct WireStatement {
  uint32_t id = 0;
  uint16_t parameter_count = 0;
};

class SieveClient {
 public:
  SieveClient() = default;
  ~SieveClient() { Close(); }
  SieveClient(const SieveClient&) = delete;
  SieveClient& operator=(const SieveClient&) = delete;

  /// Connects (IPv4). No protocol traffic yet — follow with Hello.
  Status Connect(const std::string& host, uint16_t port);

  /// Authenticates with `token`; returns the identity the server bound
  /// the connection to. kAccessDenied on auth failure (default-deny).
  Result<QueryMetadata> Hello(const std::string& token);

  Result<WireStatement> Prepare(const std::string& sql);

  /// Executes with positional parameters. chunk_rows == 0 materializes
  /// the full result in one reply; chunk_rows > 0 opens a server-side
  /// cursor and returns the first chunk (continue with Fetch until
  /// done). On a kError reply the wire code is retained in
  /// last_wire_error() — RATE_LIMITED etc. are programmatically
  /// distinguishable from execution failures.
  Result<WireResult> Execute(uint32_t stmt_id,
                             const std::vector<Value>& params = {},
                             uint32_t chunk_rows = 0);

  Result<WireResult> Fetch(uint32_t cursor_id, uint32_t max_rows);

  Status CloseCursor(uint32_t cursor_id);
  Status CloseStmt(uint32_t stmt_id);

  /// The server's JSON health snapshot (STATS).
  Result<std::string> Stats();

  /// Closes the socket. Idempotent; implied by destruction. The server
  /// treats a close with an open cursor as abandonment and releases the
  /// cursor's resources.
  void Close();

  bool connected() const { return fd_ >= 0; }

  /// Wire error code of the most recent kError reply (undefined before
  /// the first error). Reset to 0 by each successful call.
  uint16_t last_wire_error() const { return last_wire_error_; }

 private:
  /// Sends one frame and reads the reply frame.
  Result<Frame> RoundTrip(MsgType type, const std::string& payload);
  /// Decodes a kError reply into a Status, stashing the wire code.
  Status DecodeError(const Frame& f);
  Result<WireResult> DecodeRows(const Frame& f);

  int fd_ = -1;
  uint16_t last_wire_error_ = 0;
};

}  // namespace sieve::server

#endif  // SIEVE_SERVER_CLIENT_H_
