#ifndef SIEVE_SERVER_CLIENT_H_
#define SIEVE_SERVER_CLIENT_H_

// Blocking reference client for the Sieve wire protocol: one TCP
// connection, synchronous request/reply. It is the counterpart the
// loopback tests, the closed-loop bench and the example speak through —
// deliberately simple (no pipelining) so a transcript of its calls reads
// like the protocol conversation itself.
//
// Resilience is opt-in: enable_retry() turns on reconnect-and-retry with
// capped exponential backoff and deterministic jitter for *idempotent*
// requests (HELLO / PREPARE / EXECUTE / STATS — every query is a SELECT,
// so re-running one is safe) and for RATE_LIMITED / TOO_MANY_IN_FLIGHT
// replies. FETCH is never retried: a lost chunk cannot be re-pulled, the
// caller must re-EXECUTE. SERVER_SHUTDOWN is never retried either — a
// draining server wants its clients gone, not hammering. In retry mode
// Prepare returns client-side statement handles that survive reconnects
// (the client re-prepares transparently); without it, ids pass through
// untranslated and behavior is exactly the historical one.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/metadata.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/value.h"
#include "server/wire.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace sieve::server {

/// One reply's worth of rows (a materialized result or a cursor chunk).
struct WireResult {
  std::vector<std::pair<std::string, DataType>> columns;
  std::vector<Row> rows;
  /// 0 for a materialized result; otherwise the server-side cursor to
  /// FETCH from until `done`.
  uint32_t cursor_id = 0;
  bool done = true;
};

/// A prepared statement handle returned by Prepare. In retry mode the id
/// is a client-side handle stable across reconnects; otherwise it is the
/// server's statement id verbatim.
struct WireStatement {
  uint32_t id = 0;
  uint16_t parameter_count = 0;
};

/// Reconnect/backoff tuning for enable_retry. Backoff for attempt k is
/// min(initial_backoff_ms * multiplier^k, max_backoff_ms), scaled by a
/// uniform jitter factor in [1 - jitter, 1 + jitter] drawn from a seeded
/// PRNG (deterministic given the seed).
struct RetryPolicy {
  int max_attempts = 5;            ///< total tries per request (>= 1)
  double initial_backoff_ms = 5.0;
  double max_backoff_ms = 200.0;
  double multiplier = 2.0;
  double jitter = 0.25;            ///< fraction of the delay, [0, 1]
  uint64_t seed = 42;              ///< jitter PRNG seed
};

class SieveClient {
 public:
  SieveClient() = default;
  ~SieveClient() { Close(); }
  SieveClient(const SieveClient&) = delete;
  SieveClient& operator=(const SieveClient&) = delete;

  /// Connects (IPv4). No protocol traffic yet — follow with Hello.
  Status Connect(const std::string& host, uint16_t port);

  /// Authenticates with `token`; returns the identity the server bound
  /// the connection to. kAccessDenied on auth failure (default-deny).
  Result<QueryMetadata> Hello(const std::string& token);

  Result<WireStatement> Prepare(const std::string& sql);

  /// Executes with positional parameters. chunk_rows == 0 materializes
  /// the full result in one reply; chunk_rows > 0 opens a server-side
  /// cursor and returns the first chunk (continue with Fetch until
  /// done). deadline_ms > 0 attaches a per-request deadline: the server
  /// aborts the execution cleanly with DEADLINE_EXCEEDED (surfaced as
  /// kTimeout) once the budget is spent, leaving the connection usable.
  /// On a kError reply the wire code is retained in last_wire_error() —
  /// RATE_LIMITED etc. are programmatically distinguishable from
  /// execution failures.
  Result<WireResult> Execute(uint32_t stmt_id,
                             const std::vector<Value>& params = {},
                             uint32_t chunk_rows = 0,
                             uint32_t deadline_ms = 0);

  /// Pulls the next chunk. deadline_ms > 0 tightens the cursor's
  /// remaining time budget. Never retried (see file comment).
  Result<WireResult> Fetch(uint32_t cursor_id, uint32_t max_rows,
                           uint32_t deadline_ms = 0);

  Status CloseCursor(uint32_t cursor_id);
  Status CloseStmt(uint32_t stmt_id);

  /// The server's JSON health snapshot (STATS).
  Result<std::string> Stats();

  /// Closes the socket. Idempotent; implied by destruction. The server
  /// treats a close with an open cursor as abandonment and releases the
  /// cursor's resources.
  void Close();

  bool connected() const { return fd_ >= 0; }

  /// Turns on reconnect-and-retry (see file comment). Call before the
  /// first Prepare: statement ids handed out earlier are server ids and
  /// will not survive a reconnect.
  void enable_retry(const RetryPolicy& policy = {});

  /// Times the transport was re-established (retry mode).
  uint64_t reconnects() const { return reconnects_; }
  /// Requests that needed more than one attempt (retry mode).
  uint64_t retries() const { return retries_; }

  /// Wire error code of the most recent kError reply (undefined before
  /// the first error). Reset to 0 by each successful call.
  uint16_t last_wire_error() const { return last_wire_error_; }

 private:
  /// Client-side view of one prepared statement (retry mode).
  struct PreparedEntry {
    std::string sql;
    uint32_t server_id = 0;
    uint16_t parameter_count = 0;
  };

  /// Sends one frame and reads the reply frame; records a transport
  /// failure so the retry layer knows the connection is unusable.
  Result<Frame> RoundTrip(MsgType type, const std::string& payload);
  /// Decodes a kError reply into a Status, stashing the wire code.
  Status DecodeError(const Frame& f);
  Result<WireResult> DecodeRows(const Frame& f);

  /// Single-attempt request bodies (shared by the plain and retry paths).
  Result<QueryMetadata> HelloOnce(const std::string& token);
  Result<WireStatement> PrepareOnce(const std::string& sql);
  Result<WireResult> ExecuteOnce(uint32_t server_stmt_id,
                                 const std::vector<Value>& params,
                                 uint32_t chunk_rows, uint32_t deadline_ms);

  /// True for kError replies worth a backoff-and-retry (RATE_LIMITED,
  /// TOO_MANY_IN_FLIGHT). SERVER_SHUTDOWN and semantic errors are not.
  bool RetryableWireError() const;
  /// Sleeps the jittered exponential backoff for attempt k (0-based).
  void Backoff(int attempt);
  /// Tears down and re-establishes the transport: connect, HELLO with
  /// the remembered token, re-PREPARE every live handle.
  Status Reconnect();
  /// Raw socket connect to the remembered endpoint.
  Status ConnectFd();

  int fd_ = -1;
  uint16_t last_wire_error_ = 0;
  /// The last RoundTrip died on the socket (as opposed to a server
  /// error reply): the connection must be re-established before reuse.
  bool transport_error_ = false;

  // Retry state (inert until enable_retry).
  bool retry_enabled_ = false;
  RetryPolicy policy_;
  Rng rng_{42};
  std::string host_;
  uint16_t port_ = 0;
  std::string token_;
  bool helloed_ = false;
  uint64_t reconnects_ = 0;
  uint64_t retries_ = 0;
  std::map<uint32_t, PreparedEntry> prepared_;  ///< by client handle
  uint32_t next_handle_ = 1;
};

}  // namespace sieve::server

#endif  // SIEVE_SERVER_CLIENT_H_
