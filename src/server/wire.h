#ifndef SIEVE_SERVER_WIRE_H_
#define SIEVE_SERVER_WIRE_H_

// The Sieve wire protocol: a small length-prefixed binary protocol the
// network front-end speaks over TCP. Every message is one frame:
//
//   +----------------+-----------+------------------+
//   | u32 len (LE)   | u8 type   | payload (len-1)  |
//   +----------------+-----------+------------------+
//
// `len` counts the type byte plus the payload, so the smallest legal
// frame is len == 1 (a bare type). Integers are little-endian; strings
// are u32-length-prefixed UTF-8 bytes; values are a DataType tag byte
// followed by the type's payload (nothing for NULL). A frame whose
// announced length exceeds the configured maximum is a protocol error —
// the server replies kFrameTooLarge and closes, it never allocates the
// announced size first.
//
// Conversation: HELLO (token) authenticates the connection and binds it
// to a querier/purpose; PREPARE caches a parameterized statement;
// EXECUTE binds parameters and either materializes (chunk_rows = 0) or
// opens a server-side cursor and returns the first chunk; FETCH pulls
// subsequent chunks (pull-based — this is the cursor backpressure: the
// server never buffers more than one chunk per connection); CLOSE_*
// release resources; STATS returns a JSON health snapshot.
//
// EXECUTE and FETCH may carry an optional trailing u32 deadline_ms: a
// per-request time budget that tightens (never extends) the middleware's
// configured query timeout. Overrunning it yields a clean
// kDeadlineExceeded error reply; the connection, its statements and its
// admission slot all remain usable. Absent or zero means no per-request
// deadline — old clients interoperate unchanged.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace sieve::server {

/// Default ceiling on one frame (type byte + payload). The server and
/// client both enforce it on receive; the server's copy is configurable
/// (ServerOptions::max_frame_bytes).
inline constexpr uint32_t kMaxFrameBytes = 4u * 1024 * 1024;

/// Protocol revision carried in HELLO; bumped on incompatible change.
inline constexpr uint8_t kProtocolVersion = 1;

/// Frame types. Client-to-server requests are < 0x80, server-to-client
/// replies have the high bit set.
enum class MsgType : uint8_t {
  kHello = 1,        ///< u8 version, str token
  kPrepare = 2,      ///< str sql
  kExecute = 3,      ///< u32 stmt_id, u32 chunk_rows (0 = materialize),
                     ///< u16 nparams, values,
                     ///< [u32 deadline_ms] (optional; 0 = none)
  kFetch = 4,        ///< u32 cursor_id, u32 max_rows,
                     ///< [u32 deadline_ms] (optional; 0 = none)
  kCloseCursor = 5,  ///< u32 cursor_id
  kCloseStmt = 6,    ///< u32 stmt_id
  kStats = 7,        ///< (empty)

  kHelloOk = 0x81,   ///< str querier, str purpose
  kError = 0x82,     ///< u16 code (WireError), str message
  kPrepared = 0x83,  ///< u32 stmt_id, u16 nparams
  kRows = 0x84,      ///< u32 cursor_id (0 = complete), u8 done,
                     ///< u16 ncols, [str name, u8 type]*, u32 nrows, rows
  kStatsOk = 0x85,   ///< str json
  kOk = 0x86,        ///< (empty)
};

/// Machine-readable error classes carried in kError frames.
enum class WireError : uint16_t {
  kAuthRequired = 1,    ///< request before a successful HELLO
  kAuthFailed = 2,      ///< unknown token or unknown policy subject
  kRateLimited = 3,     ///< per-querier token bucket empty
  kTooManyInFlight = 4, ///< per-querier in-flight ceiling reached
  kMalformed = 5,       ///< frame payload failed to decode
  kFrameTooLarge = 6,   ///< announced frame length over the limit
  kBadStatement = 7,    ///< unknown statement id
  kBadCursor = 8,       ///< unknown cursor id
  kCursorOpen = 9,      ///< PREPARE/EXECUTE while a cursor is open
  kPrepareFailed = 10,  ///< parse/rewrite error (message has details)
  kExecFailed = 11,     ///< execution error (timeout, bind error, ...)
  kTooManyConnections = 12,
  kTooManyStatements = 13,
  kServerShutdown = 14,
  kDeadlineExceeded = 15,  ///< per-request deadline (or query timeout) hit;
                           ///< the connection and its admission slot stay
                           ///< usable
};

const char* WireErrorName(WireError e);

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

/// Appends protocol primitives to a payload buffer.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutString(std::string_view s);
  void PutValue(const Value& v);

  const std::string& payload() const { return buf_; }
  std::string TakePayload() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reads over a payload. Every getter fails with
/// kInvalidArgument on truncation instead of reading past the end, so a
/// malformed frame can never walk off the buffer.
class WireReader {
 public:
  explicit WireReader(std::string_view payload) : data_(payload) {}

  Result<uint8_t> U8();
  Result<uint16_t> U16();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<double> Double();
  Result<std::string> String();
  Result<Value> ReadValue();

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

/// Serializes `type` + `payload` into one length-prefixed frame.
std::string EncodeFrame(MsgType type, std::string_view payload);

// ---------------------------------------------------------------------------
// Incremental frame extraction (server read path)
// ---------------------------------------------------------------------------

enum class FrameParse {
  kNeedMore,      ///< not enough buffered bytes yet
  kFrame,         ///< *out holds one complete frame (consumed from *buf)
  kTooLarge,      ///< announced length exceeds max_frame_bytes
  kMalformed,     ///< structurally impossible frame (len == 0)
};

/// Extracts one complete frame from the front of *buf, erasing the
/// consumed bytes. Never allocates based on the announced length before
/// validating it against `max_frame_bytes`.
FrameParse ExtractFrame(std::string* buf, uint32_t max_frame_bytes,
                        Frame* out);

// ---------------------------------------------------------------------------
// Blocking socket framing (client + tests)
// ---------------------------------------------------------------------------

/// Writes one frame to `fd`, retrying partial writes. Fails on EPIPE etc.
Status WriteFrame(int fd, MsgType type, std::string_view payload);

/// Reads one complete frame from `fd` (blocking). kNotFound on orderly
/// EOF before any byte of a frame, kExecutionError on mid-frame EOF /
/// IO error, kInvalidArgument on oversized or zero-length frames.
Result<Frame> ReadFrame(int fd, uint32_t max_frame_bytes = kMaxFrameBytes);

}  // namespace sieve::server

#endif  // SIEVE_SERVER_WIRE_H_
