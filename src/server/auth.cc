#include "server/auth.h"

#include <algorithm>
#include <chrono>

#include "common/string_util.h"

namespace sieve::server {

void AuthRegistry::RegisterToken(const std::string& token, QueryMetadata md,
                                 AdmissionLimits limits) {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_[token] = AuthedIdentity{std::move(md), limits};
}

void AuthRegistry::RevokeToken(const std::string& token) {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_.erase(token);
}

Result<AuthedIdentity> AuthRegistry::Authenticate(
    const std::string& token) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tokens_.find(token);
  if (it == tokens_.end()) {
    // Default deny; deliberately does not say whether the token exists.
    return Status::AccessDenied("authentication failed");
  }
  return it->second;
}

size_t AuthRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_.size();
}

AdmissionController::AdmissionController(std::function<double()> clock)
    : clock_(std::move(clock)) {
  if (!clock_) {
    clock_ = [] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
  }
}

AdmissionController::Verdict AdmissionController::TryAdmit(
    const std::string& querier, const AdmissionLimits& limits) {
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = buckets_[ToLower(querier)];
  if (limits.max_in_flight > 0 && b.in_flight >= limits.max_in_flight) {
    ++stats_.in_flight_rejected;
    return Verdict::kTooManyInFlight;
  }
  if (limits.rate_per_sec > 0.0) {
    double now = clock_();
    double burst = limits.burst > 0.0 ? limits.burst
                                      : std::max(limits.rate_per_sec, 1.0);
    if (!b.initialized) {
      b.tokens = burst;  // buckets start full: a fresh querier may burst
      b.last_refill = now;
      b.initialized = true;
    }
    b.tokens = std::min(
        burst, b.tokens + (now - b.last_refill) * limits.rate_per_sec);
    b.last_refill = now;
    if (b.tokens < 1.0) {
      ++stats_.rate_limited;
      return Verdict::kRateLimited;
    }
    b.tokens -= 1.0;
  }
  ++b.in_flight;
  ++stats_.admitted;
  return Verdict::kAdmit;
}

void AdmissionController::Release(const std::string& querier) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(ToLower(querier));
  if (it != buckets_.end() && it->second.in_flight > 0) {
    --it->second.in_flight;
  }
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int AdmissionController::InFlight(const std::string& querier) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(ToLower(querier));
  return it == buckets_.end() ? 0 : it->second.in_flight;
}

}  // namespace sieve::server
