#ifndef SIEVE_SERVER_SERVER_H_
#define SIEVE_SERVER_SERVER_H_

// Concurrent TCP front-end over SieveMiddleware: the serving layer that
// turns the in-process session API into something "heavy traffic from
// millions of users" can hit. One IO thread multiplexes every connection
// (poll + non-blocking reads + incremental frame extraction); complete
// requests are dispatched to a small bounded worker set — many more
// connections than threads — with per-connection ordering (at most one
// request of a connection is in flight at a time, so the single-threaded
// SieveSession contract holds even though consecutive requests may run
// on different workers; the middleware's SharedGate makes the cursor pin
// transferable between them).
//
// ## Two dispatch lanes (liveness under writer pressure)
//
// A cache-miss PREPARE or a stale-refresh EXECUTE takes the middleware
// state gate *exclusively*, which waits for every open cursor's shared
// pin. If all workers could block there while the FETCHes that would
// drain those cursors sat queued, the server would deadlock against
// itself. Requests are therefore split into two lanes:
//   * cursor lane  — FETCH / CLOSE_CURSOR / CLOSE_STMT / STATS and
//     protocol-error replies: none of these ever block on the state
//     gate. Worker 0 serves ONLY this lane; every other worker prefers
//     it before taking general work.
//   * general lane — HELLO / PREPARE / EXECUTE: may execute queries and
//     may block on the gate. Served by workers 1..N-1.
// With >= 2 workers (enforced), pinned cursors always drain, so every
// exclusive acquisition eventually proceeds.
//
// ## Protocol rule: one cursor per connection
//
// While a connection has an open server-side cursor, only cursor-lane
// commands are accepted (anything else gets CURSOR_OPEN). This bounds
// the server's buffering to one chunk per connection (the cursor
// backpressure story — a slow reader holds a cursor, not result rows)
// and makes the self-deadlock of "PREPARE while my own cursor pins the
// gate" unrepresentable.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/auth.h"
#include "server/wire.h"
#include "sieve/middleware.h"
#include "sieve/session.h"

namespace sieve::server {

struct ServerOptions {
  /// Listen address; the reproduction serves loopback benches/tests.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port, reported by SieveServer::port().
  uint16_t port = 0;
  /// Bounded worker set; clamped to >= 2 (worker 0 is the cursor lane).
  int num_workers = 4;
  size_t max_connections = 1024;
  /// Receive-side frame ceiling (see wire.h). Also bounds reply frames:
  /// a materialized result that would overflow it is refused with a hint
  /// to use a cursor.
  uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Hard cap on rows per EXECUTE chunk / FETCH (requests clamp to it):
  /// bounds the outstanding batch a slow reader can pin.
  uint32_t max_fetch_rows = 8192;
  /// Prepared statements one connection may hold.
  size_t max_prepared_per_conn = 64;
  /// Frames queued per connection before the IO thread stops reading its
  /// socket (pipelining backpressure).
  size_t max_queued_frames = 32;
  /// Reject HELLO identities that are not subjects of the policy corpus
  /// (see IsKnownSubject). Default-deny posture.
  bool require_known_subject = true;
  /// Give up on a reply write blocked this long (slow/stuck reader) and
  /// drop the connection — only that connection: its cursor is closed and
  /// its admission slot released, everything else keeps serving. 0 = wait
  /// forever.
  double write_timeout_seconds = 30.0;
  /// Grace period Stop() grants in-flight requests and open cursors
  /// before the hard teardown (see Stop). 0 = tear down immediately.
  double drain_grace_seconds = 5.0;
  /// SO_SNDBUF applied to accepted sockets when > 0. Test knob: a tiny
  /// send buffer makes the write-timeout path reachable with small
  /// results.
  int so_sndbuf = 0;
  /// Admission limits applied when a token was registered without any.
  AdmissionLimits default_limits;
  /// Monotonic-seconds clock for the admission controller's token
  /// buckets; empty = steady_clock. Injectable so rate-limit tests are
  /// deterministic.
  std::function<double()> admission_clock;
};

class SieveServer {
 public:
  /// `middleware` and `auth` must outlive the server.
  SieveServer(SieveMiddleware* middleware, AuthRegistry* auth,
              ServerOptions options = {});
  ~SieveServer();

  SieveServer(const SieveServer&) = delete;
  SieveServer& operator=(const SieveServer&) = delete;

  /// Binds, listens and spawns the IO + worker threads.
  Status Start();

  /// Graceful drain, then stop. Phase 1 (drain): new connections and new
  /// work-starting requests (HELLO / PREPARE / EXECUTE) are refused with
  /// SERVER_SHUTDOWN while in-flight requests finish and open cursors
  /// keep serving FETCH / CLOSE_* until drained — bounded by
  /// drain_grace_seconds. Phase 2 (hard stop): whatever remains is torn
  /// down (open cursors are closed, releasing their middleware pins),
  /// all threads join, and the pending audit ring is flushed. Drain
  /// outcomes are counted in Stats (cursors_drained / cursors_aborted /
  /// drain_rejected). Idempotent.
  void Stop();

  /// Bound port (valid after Start; useful with port 0).
  uint16_t port() const { return port_; }

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;
    uint64_t auth_failures = 0;
    uint64_t frames_received = 0;
    uint64_t queries_executed = 0;
    uint64_t protocol_errors = 0;
    uint64_t rate_limited = 0;       ///< token-bucket rejections
    uint64_t in_flight_rejected = 0; ///< in-flight-ceiling rejections
    uint64_t write_timeouts = 0;     ///< connections dropped by a blocked write
    uint64_t drain_rejected = 0;     ///< requests refused during Stop() drain
    uint64_t cursors_drained = 0;    ///< cursors that finished during drain
    uint64_t cursors_aborted = 0;    ///< cursors force-closed at hard stop
    size_t active_connections = 0;
    size_t open_cursors = 0;
  };
  Stats stats() const;

  /// The JSON health document the STATS command returns (server counters
  /// + MiddlewareHealth). Exposed for benches running in-process.
  std::string StatsJson() const;

  AdmissionController& admission() { return admission_; }

 private:
  struct Request {
    Frame frame;
    /// Synthetic protocol-error request injected by the IO thread
    /// (framing-level failure): the worker replies `err` and closes.
    bool synthetic = false;
    WireError err = WireError::kMalformed;
    std::string err_msg;
  };

  struct Connection {
    int fd = -1;
    std::string inbuf;            ///< raw bytes; IO thread only
    std::deque<Request> inbox;    ///< parsed requests; guarded by server mu_
    bool busy = false;            ///< queued for or held by a worker
    bool dead = false;            ///< tear down at the next safe point
    bool stop_reading = false;    ///< framing error: ignore further input
    bool authed = false;
    AuthedIdentity ident;
    std::unique_ptr<SieveSession> session;
    std::unordered_map<uint32_t, PreparedQuery> stmts;
    uint32_t next_stmt_id = 1;
    std::unique_ptr<ResultCursor> cursor;  ///< at most one (see protocol rule)
    uint32_t cursor_id = 0;
    uint32_t next_cursor_id = 1;
    bool admitted = false;        ///< owes admission_.Release on finish
  };

  void IoLoop();
  void WorkerLoop(int worker_index);

  /// Reads whatever is available on `conn`, extracts complete frames into
  /// its inbox and schedules it. Returns false when the connection hit
  /// EOF / a fatal error and should be considered dead. IO thread only.
  bool DrainSocket(Connection* conn);

  /// Queues `conn` on the lane its head request belongs to (mu_ held).
  void ScheduleLocked(Connection* conn);
  static bool IsCursorLane(const Request& r);

  /// Processes one request outside any server lock; writes replies.
  void ProcessRequest(Connection* conn, Request req);
  void HandleHello(Connection* conn, WireReader* rd);
  void HandlePrepare(Connection* conn, WireReader* rd);
  void HandleExecute(Connection* conn, WireReader* rd);
  void HandleFetch(Connection* conn, WireReader* rd);
  void HandleCloseCursor(Connection* conn, WireReader* rd);
  void HandleCloseStmt(Connection* conn, WireReader* rd);
  void HandleStats(Connection* conn);

  /// Serves up to `want` rows from the open cursor as a kRows reply,
  /// closing the cursor (and releasing admission) once exhausted.
  void ReplyCursorChunk(Connection* conn, uint32_t want);
  /// Closes the connection's cursor and releases its admission slot.
  void FinishCursor(Connection* conn, bool abandon);

  void SendError(Connection* conn, WireError code, const std::string& msg);
  void SendFrame(Connection* conn, MsgType type, const std::string& payload);
  /// Marks `conn` dead and shuts its socket down so the IO thread reaps it.
  void KillConnection(Connection* conn);

  /// Destroys a connection object (cursor, statements, session, fd,
  /// admission slot). Caller must have removed it from conns_ already.
  void DestroyConnection(std::unique_ptr<Connection> conn);

  void WakeIo();

  SieveMiddleware* mw_;
  AuthRegistry* auth_;
  ServerOptions options_;
  AdmissionController admission_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  bool stopping_ = false;        ///< hard stop: threads exit (phase 2)
  bool stop_requested_ = false;  ///< Stop() entered (idempotency latch)
  bool started_ = false;
  /// Drain phase flags, readable without mu_ from the IO and worker
  /// threads' hot paths. draining_: refuse work-starting requests and new
  /// connections; hard_stop_: remaining cursors count as aborted.
  std::atomic<bool> draining_{false};
  std::atomic<bool> hard_stop_{false};
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;  // by fd
  std::deque<Connection*> cursor_lane_;
  std::deque<Connection*> general_lane_;
  int workers_exited_ = 0;

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> auth_failures_{0};
  std::atomic<uint64_t> frames_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> write_timeouts_{0};
  std::atomic<uint64_t> drain_rejected_{0};
  std::atomic<uint64_t> cursors_drained_{0};
  std::atomic<uint64_t> cursors_aborted_{0};
};

}  // namespace sieve::server

#endif  // SIEVE_SERVER_SERVER_H_
