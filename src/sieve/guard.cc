#include "sieve/guard.h"

#include "common/string_util.h"

namespace sieve {

ExprPtr CandidateGuard::ToExpr() const {
  if (IsEquality()) {
    return MakeColumnCompare(attr, CompareOp::kEq, lo);
  }
  return MakeBetween(attr, lo, hi);
}

std::string CandidateGuard::ToString() const {
  return StrFormat("guard{%s in [%s..%s] |P|=%zu rho=%.4f}", attr.c_str(),
                   lo.ToString().c_str(), hi.ToString().c_str(),
                   policy_ids.size(), selectivity);
}

}  // namespace sieve
