#include "sieve/guard_store.h"

#include "common/string_util.h"

namespace sieve {

GuardStore::Key GuardStore::Key::Make(const std::string& querier,
                                      const std::string& purpose,
                                      const std::string& table) {
  return Key{ToLower(querier), ToLower(purpose), ToLower(table)};
}

bool GuardStore::Key::operator<(const Key& other) const {
  if (querier != other.querier) return querier < other.querier;
  if (purpose != other.purpose) return purpose < other.purpose;
  return table < other.table;
}

void GuardStore::BumpKey(const Key& key) {
  std::string joined;
  joined.reserve(key.querier.size() + key.purpose.size() + key.table.size() + 2);
  joined += key.querier;
  joined += '\x1f';
  joined += key.purpose;
  joined += '\x1f';
  joined += key.table;
  ++key_versions_[joined];
  if (listener_) listener_(GuardMutationEvent{key.querier, key.purpose, key.table});
}

uint64_t GuardStore::KeyVersion(const std::string& querier,
                                const std::string& purpose,
                                const std::string& table) const {
  Key key = Key::Make(querier, purpose, table);
  std::string joined = key.querier + '\x1f' + key.purpose + '\x1f' + key.table;
  auto it = key_versions_.find(joined);
  return it == key_versions_.end() ? 0 : it->second;
}

Status GuardStore::Init() {
  if (db_->catalog().Find("rGE") == nullptr) {
    Schema rge({{"id", DataType::kInt},
                {"querier", DataType::kString},
                {"associated_table", DataType::kString},
                {"purpose", DataType::kString},
                {"action", DataType::kString},
                {"outdated", DataType::kBool},
                {"ts_inserted_at", DataType::kInt}});
    SIEVE_RETURN_IF_ERROR(db_->CreateTable("rGE", std::move(rge)));
  }
  if (db_->catalog().Find("rGG") == nullptr) {
    Schema rgg({{"id", DataType::kInt},
                {"guard_expression_id", DataType::kInt},
                {"attr", DataType::kString},
                {"op", DataType::kString},
                {"val", DataType::kString}});
    SIEVE_RETURN_IF_ERROR(db_->CreateTable("rGG", std::move(rgg)));
  }
  if (db_->catalog().Find("rGP") == nullptr) {
    Schema rgp({{"guard_id", DataType::kInt}, {"policy_id", DataType::kInt}});
    SIEVE_RETURN_IF_ERROR(db_->CreateTable("rGP", std::move(rgp)));
  }
  return Status::OK();
}

Status GuardStore::Persist(const GuardedExpression& ge) {
  Row rge_row{Value::Int(ge.id),
              Value::String(ge.querier),
              Value::String(ge.table_name),
              Value::String(ge.purpose),
              Value::String("allow"),
              Value::Bool(false),
              Value::Int(logical_clock_++)};
  auto st = db_->Insert("rGE", std::move(rge_row));
  if (!st.ok()) return st.status();

  for (const Guard& guard : ge.guards) {
    const CandidateGuard& g = guard.guard;
    // Ranges persist as two rGG rows (>= lo, <= hi), equalities as one,
    // mirroring the rOC encoding.
    if (g.IsEquality()) {
      Row row{Value::Int(next_gg_row_id_++), Value::Int(ge.id),
              Value::String(g.attr), Value::String("="),
              Value::String(g.lo.ToString())};
      auto s = db_->Insert("rGG", std::move(row));
      if (!s.ok()) return s.status();
    } else {
      Row row1{Value::Int(next_gg_row_id_++), Value::Int(ge.id),
               Value::String(g.attr), Value::String(">="),
               Value::String(g.lo.ToString())};
      auto s1 = db_->Insert("rGG", std::move(row1));
      if (!s1.ok()) return s1.status();
      Row row2{Value::Int(next_gg_row_id_++), Value::Int(ge.id),
               Value::String(g.attr), Value::String("<="),
               Value::String(g.hi.ToString())};
      auto s2 = db_->Insert("rGG", std::move(row2));
      if (!s2.ok()) return s2.status();
    }
    for (int64_t policy_id : g.policy_ids) {
      Row row{Value::Int(guard.id), Value::Int(policy_id)};
      auto s = db_->Insert("rGP", std::move(row));
      if (!s.ok()) return s.status();
    }
  }
  return Status::OK();
}

Result<int64_t> GuardStore::Put(GuardedExpression ge) {
  ge.id = next_ge_id_++;
  Key key = Key::Make(ge.querier, ge.purpose, ge.table_name);

  // Invalidate previous guards of this key.
  auto old = memory_.find(key);
  if (old != memory_.end()) {
    for (const Guard& g : old->second.ge.guards) {
      guard_owner_.erase(g.id);
      std::lock_guard<std::mutex> lock(delta_mu_);
      delta_cache_.erase(g.id);
    }
  }

  for (Guard& guard : ge.guards) {
    guard.id = next_guard_id_++;
    guard_owner_[guard.id] = key;
  }
  SIEVE_RETURN_IF_ERROR(Persist(ge));
  int64_t id = ge.id;
  memory_[key] = Entry{std::move(ge), /*outdated=*/false};
  BumpVersion();
  BumpKey(key);
  return id;
}

const GuardedExpression* GuardStore::Get(const std::string& querier,
                                         const std::string& purpose,
                                         const std::string& table) const {
  auto it = memory_.find(Key::Make(querier, purpose, table));
  return it == memory_.end() ? nullptr : &it->second.ge;
}

bool GuardStore::IsOutdated(const std::string& querier,
                            const std::string& purpose,
                            const std::string& table) const {
  auto it = memory_.find(Key::Make(querier, purpose, table));
  if (it == memory_.end()) return true;  // never generated counts as stale
  return it->second.outdated;
}

void GuardStore::MarkOutdated(const std::string& querier,
                              const std::string& purpose,
                              const std::string& table) {
  Key key = Key::Make(querier, purpose, table);
  auto it = memory_.find(key);
  if (it != memory_.end()) it->second.outdated = true;
  // Bump even when the key has no guards yet: the policy insert that
  // triggered this call changes what a cached rewrite would produce.
  BumpVersion();
  BumpKey(key);
}

std::vector<GuardKey> GuardStore::MarkOutdatedWhere(
    const std::string& table,
    const std::function<bool(const GuardedExpression&)>& pred) {
  std::string table_lower = ToLower(table);
  std::vector<GuardKey> affected;
  bool bumped = false;
  for (auto& [key, entry] : memory_) {
    if (key.table != table_lower) continue;
    if (pred && !pred(entry.ge)) continue;
    entry.outdated = true;
    if (!bumped) {
      BumpVersion();
      bumped = true;
    }
    BumpKey(key);
    affected.push_back(GuardKey{key.querier, key.purpose, key.table});
  }
  return affected;
}

const Guard* GuardStore::FindGuard(int64_t guard_id) const {
  auto owner = guard_owner_.find(guard_id);
  if (owner == guard_owner_.end()) return nullptr;
  auto entry = memory_.find(owner->second);
  if (entry == memory_.end()) return nullptr;
  for (const Guard& g : entry->second.ge.guards) {
    if (g.id == guard_id) return &g;
  }
  return nullptr;
}

Result<const GuardStore::DeltaPartition*> GuardStore::GetDeltaPartition(
    int64_t guard_id) {
  // Called from the Δ UDF on every worker thread of a parallel scan; the
  // lock serializes the lazy build. DeltaPartition values live behind
  // unique_ptr, so the returned pointer stays valid across later inserts.
  std::lock_guard<std::mutex> lock(delta_mu_);
  auto cached = delta_cache_.find(guard_id);
  if (cached != delta_cache_.end()) return cached->second.get();

  const Guard* guard = FindGuard(guard_id);
  if (guard == nullptr) {
    return Status::NotFound(StrFormat("no guard with id %lld",
                                      static_cast<long long>(guard_id)));
  }
  auto partition = std::make_unique<DeltaPartition>();
  for (int64_t policy_id : guard->guard.policy_ids) {
    const Policy* policy = policies_->FindPolicy(policy_id);
    if (policy == nullptr) continue;  // revoked since generation
    partition->by_owner[policy->owner.ToString()].push_back(
        DeltaPolicyEntry{policy_id, policy->ObjectExpr()});
  }
  auto [it, inserted] = delta_cache_.emplace(guard_id, std::move(partition));
  (void)inserted;
  return it->second.get();
}

}  // namespace sieve
