#include "sieve/session.h"

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "parser/parser.h"

namespace sieve {

namespace {

/// Writer-vs-reader livelock guard: an Execute retries when a policy
/// writer invalidated its freshly re-prepared snapshot before the staleness
/// re-check. Each retry re-prepares authoritatively, so this bound is only
/// reachable under a pathological back-to-back AddPolicy storm targeting
/// this query's own dependency keys.
constexpr int kMaxRefreshRetries = 100;

// Clones the rewrite template and substitutes the positional parameters.
// The clone is what executes — the shared template is never mutated, so
// concurrent sessions can execute the same cached rewrite.
Result<SelectStmtPtr> BindTemplate(const PreparedRewrite& rewrite,
                                   const std::vector<Value>& params) {
  if (params.size() != rewrite.params.size()) {
    return Status::InvalidArgument(
        StrFormat("query expects %zu parameter(s), got %zu",
                  rewrite.params.size(), params.size()));
  }
  SelectStmtPtr bound = rewrite.stmt->Clone();
  SIEVE_RETURN_IF_ERROR(BindParameters(bound.get(), params));
  return bound;
}

// Per-request deadline folded into the configured budget: the effective
// timeout is whichever is tighter (0 means "no bound" on either side).
double EffectiveTimeout(double configured, double deadline_seconds) {
  if (deadline_seconds <= 0.0) return configured;
  if (configured <= 0.0 || deadline_seconds < configured) {
    return deadline_seconds;
  }
  return configured;
}

}  // namespace

Result<std::shared_ptr<const PreparedRewrite>> SieveSession::PrepareRewrite(
    SieveMiddleware* mw, const QueryMetadata& md,
    const std::string& normalized_sql, bool optimistic, bool* from_cache) {
  const std::string key = RewriteCache::MakeKey(
      md.querier, md.purpose, mw->db_->profile().name(), normalized_sql);
  if (from_cache != nullptr) *from_cache = true;

  if (optimistic) {
    // Lock-free fast path. Non-authoritative: a hit is only a hint —
    // Execute re-validates the entry's stale flag under the shared state
    // lock before running it — and its miss is not recorded; the
    // authoritative retry below counts it.
    if (auto hit = mw->rewrite_cache_.Lookup(key, /*authoritative=*/false)) {
      return hit;
    }
  }

  // Authoritative path: the writer lock both excludes policy mutations and
  // allows EnsureGuards to regenerate outdated guards (a GuardStore
  // mutation) while no query is executing.
  std::unique_lock<SharedGate> lock(mw->state_mu_);
  if (auto hit = mw->rewrite_cache_.Lookup(key)) {
    return hit;
  }
  if (from_cache != nullptr) *from_cache = false;

  // Chaos hook: a cache-miss rewrite failing under the writer lock must
  // release the gate cleanly and leave cache/guard state untouched (the
  // point sits before any mutation).
  if (SIEVE_FAULT_POINT("mw.rewrite.fail")) {
    return SIEVE_INJECT_FAULT("mw.rewrite.fail");
  }

  SIEVE_ASSIGN_OR_RETURN(SelectStmtPtr stmt, Parser::Parse(normalized_sql));
  auto entry = std::make_shared<PreparedRewrite>();
  SIEVE_ASSIGN_OR_RETURN(entry->params, CollectParameterSlots(*stmt));
  // Dependency set, from the *original* statement before rewriting (the
  // rewrite replaces table refs with CTEs): every base table it references,
  // plus the metadata it is prepared for — the keys whose policy/guard
  // mutations must invalidate this entry.
  entry->querier = ToLower(md.querier);
  entry->purpose = ToLower(md.purpose);
  for (const std::string& table : CollectReferencedTables(*stmt)) {
    entry->dep_tables.push_back(ToLower(table));
  }
  SIEVE_ASSIGN_OR_RETURN(RewriteResult rewrite,
                         mw->rewriter_.Rewrite(*stmt, md));
  entry->normalized_sql = normalized_sql;
  entry->stmt = std::move(rewrite.stmt);
  entry->rewritten_sql = std::move(rewrite.sql);
  entry->tables = std::move(rewrite.tables);
  entry->default_denied = rewrite.default_denied;
  // Epoch is read *after* the rewrite: regenerating guards bumped the
  // guard-store version, and the cache orders entries by the epoch they
  // were produced under. Stable here — mutations need this same lock.
  entry->epoch = mw->policy_epoch();
  mw->rewrite_cache_.Insert(key, entry);
  return std::shared_ptr<const PreparedRewrite>(std::move(entry));
}

Result<PreparedQuery> SieveSession::Prepare(const std::string& sql) {
  bool from_cache = false;
  SIEVE_ASSIGN_OR_RETURN(
      std::shared_ptr<const PreparedRewrite> rewrite,
      PrepareRewrite(mw_, md_, NormalizeSql(sql), /*optimistic=*/true,
                     &from_cache));
  return PreparedQuery(mw_, md_, std::move(rewrite), from_cache);
}

Result<ResultSet> SieveSession::Execute(const std::string& sql,
                                        const std::vector<Value>& params) {
  SIEVE_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(sql));
  return prepared.Execute(params);
}

Status PreparedQuery::Refresh() {
  SIEVE_ASSIGN_OR_RETURN(
      rewrite_, SieveSession::PrepareRewrite(mw_, md_, rewrite_->normalized_sql,
                                             /*optimistic=*/false));
  return Status::OK();
}

Result<std::vector<Value>> PreparedQuery::ResolveNamed(
    const std::vector<std::pair<std::string, Value>>& named) const {
  const std::vector<std::string>& slots = rewrite_->params;
  std::vector<Value> positional(slots.size(), Value::Null());
  std::vector<bool> bound(slots.size(), false);
  for (const auto& [name, value] : named) {
    std::string key = ToLower(name);
    bool found = false;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i] != key) continue;
      if (bound[i]) {
        return Status::InvalidArgument("parameter :" + key + " bound twice");
      }
      positional[i] = value;
      bound[i] = true;
      found = true;
    }
    if (!found) {
      return Status::InvalidArgument("query has no parameter named :" + key);
    }
  }
  for (size_t i = 0; i < slots.size(); ++i) {
    if (bound[i]) continue;
    if (slots[i].empty()) {
      return Status::InvalidArgument(
          "positional parameter ? (slot " + std::to_string(i) +
          ") cannot be bound by name; use Execute");
    }
    return Status::InvalidArgument("no binding for parameter :" + slots[i]);
  }
  return positional;
}

Status PreparedQuery::MaybeFlushAuditReads() {
  if (!mw_->options_.audit_log) return Status::OK();
  for (const std::string& table : rewrite_->dep_tables) {
    if (table == AuditLog::kTableName) return mw_->FlushAuditLog();
  }
  return Status::OK();
}

Result<ResultSet> PreparedQuery::Execute(const std::vector<Value>& params,
                                         double deadline_seconds) {
  // Queries over the audit trail see every prior enforcement decision:
  // drain the pending ring into sieve_audit first (exclusive lock — must
  // happen before we take the state lock shared below).
  SIEVE_RETURN_IF_ERROR(MaybeFlushAuditReads());
  for (int attempt = 0; attempt < kMaxRefreshRetries; ++attempt) {
    {
      std::shared_lock<SharedGate> lock(mw_->state_mu_);
      // Keyed invalidation: only a mutation touching one of *this*
      // rewrite's dependency keys marks it stale — unrelated AddPolicy
      // churn leaves the snapshot valid and execution proceeds.
      if (!rewrite_->stale()) {
        SIEVE_ASSIGN_OR_RETURN(SelectStmtPtr bound,
                               BindTemplate(*rewrite_, params));
        mw_->dynamics_.ObserveQuery();
        const SieveOptions& opts = mw_->options_;
        auto result = mw_->db_->ExecuteStmt(
            *bound, &md_,
            EffectiveTimeout(opts.timeout_seconds, deadline_seconds),
            opts.num_threads, opts.batch_size);
        if (opts.audit_log && result.ok()) {
          // Leaf-locked append while still holding the state lock shared:
          // the record names exactly the policies/guards of the snapshot
          // this execution ran with.
          mw_->audit_log_.Append(
              AuditLog::MakeRecord(md_, *rewrite_, TakeCacheState(attempt > 0),
                                   result.value().stats));
        }
        return result;
      }
    }
    // A policy mutation outdated the snapshot; re-prepare and try again.
    SIEVE_RETURN_IF_ERROR(Refresh());
  }
  return Status::Internal(
      "prepared query could not observe a stable rewrite snapshot");
}

Result<ResultSet> PreparedQuery::ExecuteNamed(
    const std::vector<std::pair<std::string, Value>>& named) {
  SIEVE_ASSIGN_OR_RETURN(std::vector<Value> positional, ResolveNamed(named));
  return Execute(positional);
}

Result<ResultCursor> PreparedQuery::OpenCursor(
    const std::vector<Value>& params, double deadline_seconds) {
  SIEVE_RETURN_IF_ERROR(MaybeFlushAuditReads());
  for (int attempt = 0; attempt < kMaxRefreshRetries; ++attempt) {
    {
      std::shared_lock<SharedGate> lock(mw_->state_mu_);
      if (!rewrite_->stale()) {
        SIEVE_ASSIGN_OR_RETURN(SelectStmtPtr bound,
                               BindTemplate(*rewrite_, params));
        mw_->dynamics_.ObserveQuery();
        const SieveOptions& opts = mw_->options_;
        // The cursor owns its metadata copy: the engine context keeps a
        // pointer to it across Next calls, and the cursor may outlive
        // this PreparedQuery.
        auto md = std::make_unique<QueryMetadata>(md_);
        SIEVE_ASSIGN_OR_RETURN(
            std::unique_ptr<QueryCursor> cursor,
            mw_->db_->OpenCursor(
                *bound, md.get(),
                EffectiveTimeout(opts.timeout_seconds, deadline_seconds),
                opts.num_threads, opts.batch_size));
        // The audit record travels with the cursor and is appended once
        // the stream finishes, carrying the cursor's final stats.
        std::unique_ptr<AuditRecord> record;
        if (opts.audit_log) {
          record = std::make_unique<AuditRecord>(
              AuditLog::MakeRecord(md_, *rewrite_, TakeCacheState(attempt > 0),
                                   ExecStats{}));
        }
        // The shared lock transfers into the cursor: the policy corpus
        // stays pinned until the cursor is drained or destroyed.
        return ResultCursor(std::move(lock), std::move(md), std::move(bound),
                            std::move(cursor),
                            opts.audit_log ? &mw_->audit_log_ : nullptr,
                            std::move(record));
      }
    }
    SIEVE_RETURN_IF_ERROR(Refresh());
  }
  return Status::Internal(
      "prepared query could not observe a stable rewrite snapshot");
}

}  // namespace sieve
