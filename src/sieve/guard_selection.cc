#include "sieve/guard_selection.h"

#include <algorithm>
#include <unordered_set>

#include "common/timer.h"

namespace sieve {

std::vector<CandidateGuard> GuardSelector::Select(
    std::vector<CandidateGuard> candidates, double table_rows) const {
  std::vector<CandidateGuard> selected;

  // The candidate pool is modest (one candidate per distinct condition plus
  // merges), so a recompute-and-scan loop is simpler than a lazy heap and
  // has the same output.
  while (true) {
    double best_utility = -1.0;
    size_t best_idx = SIZE_MAX;
    for (size_t i = 0; i < candidates.size(); ++i) {
      const CandidateGuard& cand = candidates[i];
      if (cand.policy_ids.empty()) continue;
      double utility = cost_->GuardUtility(
          table_rows, cand.selectivity * table_rows, cand.policy_ids.size());
      if (utility > best_utility) {
        best_utility = utility;
        best_idx = i;
      }
    }
    if (best_idx == SIZE_MAX) break;

    CandidateGuard winner = std::move(candidates[best_idx]);
    candidates.erase(candidates.begin() + static_cast<long>(best_idx));

    // Remove the winner's policies from every remaining candidate so each
    // policy is covered exactly once.
    std::unordered_set<int64_t> covered(winner.policy_ids.begin(),
                                        winner.policy_ids.end());
    for (auto& cand : candidates) {
      auto last = std::remove_if(
          cand.policy_ids.begin(), cand.policy_ids.end(),
          [&covered](int64_t id) { return covered.count(id) > 0; });
      cand.policy_ids.erase(last, cand.policy_ids.end());
    }
    selected.push_back(std::move(winner));
  }
  return selected;
}

Result<GuardedExpression> GuardedExpressionBuilder::Build(
    const QueryMetadata& md, const std::string& table) const {
  std::vector<const Policy*> relevant =
      policies_->FilterByMetadata(md, table, resolver_);
  return BuildFromPolicies(relevant, md, table);
}

Result<GuardedExpression> GuardedExpressionBuilder::BuildFromPolicies(
    const std::vector<const Policy*>& policies, const QueryMetadata& md,
    const std::string& table) const {
  Timer timer;
  GuardedExpression ge;
  ge.querier = md.querier;
  ge.purpose = md.purpose;
  ge.table_name = table;

  const TableEntry* entry = db_->catalog().Find(table);
  if (entry == nullptr) {
    return Status::NotFound("no such table: " + table);
  }
  double table_rows = static_cast<double>(entry->table->size());

  CandidateGuardGenerator generator(db_, cost_);
  std::vector<CandidateGuard> candidates = generator.Generate(policies, table);
  GuardSelector selector(cost_);
  std::vector<CandidateGuard> cover =
      selector.Select(std::move(candidates), table_rows);

  ge.guards.reserve(cover.size());
  for (auto& cand : cover) {
    Guard guard;
    guard.guard = std::move(cand);
    guard.use_delta = cost_->PreferDelta(guard.guard.policy_ids.size());
    ge.guards.push_back(std::move(guard));
  }
  ge.generation_ms = timer.ElapsedMillis();
  return ge;
}

}  // namespace sieve
