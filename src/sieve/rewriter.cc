#include "sieve/rewriter.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "parser/parser.h"
#include "sieve/delta.h"

namespace sieve {

const char* AccessStrategyName(AccessStrategy s) {
  switch (s) {
    case AccessStrategy::kLinearScan:
      return "LinearScan";
    case AccessStrategy::kIndexQuery:
      return "IndexQuery";
    case AccessStrategy::kIndexGuards:
      return "IndexGuards";
  }
  return "?";
}

std::string TableRewriteInfo::ToString() const {
  return StrFormat(
      "table=%s strategy=%s policies=%zu guards=%zu delta=%zu "
      "cost{lin=%.3g, idxq=%.3g, idxg=%.3g}%s",
      table.c_str(), AccessStrategyName(strategy), num_policies, num_guards,
      num_delta_guards, cost_linear, cost_index_query, cost_index_guards,
      regenerated_guards ? " (guards regenerated)" : "");
}

ExprPtr QueryRewriter::GuardArmExpr(const Guard& guard, bool use_delta) const {
  std::vector<ExprPtr> conj;
  conj.push_back(guard.guard.ToExpr());
  if (use_delta) {
    std::vector<ExprPtr> args;
    args.push_back(MakeLiteral(Value::Int(guard.id)));
    conj.push_back(MakeCompare(
        CompareOp::kEq,
        std::make_shared<UdfCallExpr>(kDeltaUdfName, std::move(args)),
        MakeLiteral(Value::Bool(true))));
  } else {
    std::vector<ExprPtr> policy_exprs;
    policy_exprs.reserve(guard.guard.policy_ids.size());
    for (int64_t pid : guard.guard.policy_ids) {
      const Policy* policy = policies_->FindPolicy(pid);
      if (policy == nullptr) continue;
      policy_exprs.push_back(policy->ObjectExpr());
    }
    conj.push_back(MakeOr(std::move(policy_exprs)));
  }
  return MakeAnd(std::move(conj));
}

Result<const GuardedExpression*> QueryRewriter::EnsureGuards(
    const QueryMetadata& md, const std::string& table,
    TableRewriteInfo* info) {
  if (!guards_->IsOutdated(md.querier, md.purpose, table)) {
    return guards_->Get(md.querier, md.purpose, table);
  }
  // Chaos hook: regeneration failing must leave the guard store outdated
  // (not torn) so the next query retries it — the point sits before Build.
  if (SIEVE_FAULT_POINT("mw.guard_regen.fail")) {
    return SIEVE_INJECT_FAULT("mw.guard_regen.fail");
  }
  // Regenerate at query time — the paper's trigger-on-outdated behaviour.
  SIEVE_ASSIGN_OR_RETURN(GuardedExpression ge, builder_.Build(md, table));
  info->regenerated_guards = true;
  info->guard_generation_ms = ge.generation_ms;
  auto put = guards_->Put(std::move(ge));
  if (!put.ok()) return put.status();
  return guards_->Get(md.querier, md.purpose, table);
}

std::vector<ExprPtr> QueryRewriter::TableLocalConjuncts(
    const SelectStmt& query, const std::string& table) const {
  std::vector<ExprPtr> out;
  if (query.where == nullptr) return out;
  const TableEntry* entry = db_->catalog().Find(table);
  if (entry == nullptr) return out;

  // Qualified schema as the query sees this table.
  std::string qualifier = table;
  for (const auto& ref : query.from) {
    if (EqualsIgnoreCase(ref.table_name, table)) {
      qualifier = ref.EffectiveName();
      break;
    }
  }
  Schema qualified = QualifySchema(entry->table->schema(), qualifier);

  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(query.where, &conjuncts);
  for (const auto& conjunct : conjuncts) {
    ExprPtr probe = conjunct->Clone();
    if (BindExpr(probe.get(), qualified).ok()) {
      // Strip the query's alias qualifier: inside the WITH body the table
      // appears under its own name.
      out.push_back(std::move(probe));
    }
  }
  return out;
}

namespace {

// Removes alias qualifiers from every column reference so the conjunct can
// bind inside the WITH body, where the table appears under its own name.
void StripQualifiersInPlace(Expr* e) {
  switch (e->kind()) {
    case ExprKind::kColumnRef: {
      auto* ref = static_cast<ColumnRefExpr*>(e);
      if (!ref->qualifier().empty()) {
        // Rebuild without a qualifier by assigning through a fresh node.
        *ref = ColumnRefExpr("", ref->name());
      }
      return;
    }
    case ExprKind::kComparison: {
      auto* c = static_cast<ComparisonExpr*>(e);
      StripQualifiersInPlace(c->mutable_left().get());
      StripQualifiersInPlace(c->mutable_right().get());
      return;
    }
    case ExprKind::kBetween: {
      auto* b = static_cast<BetweenExpr*>(e);
      StripQualifiersInPlace(b->mutable_input().get());
      StripQualifiersInPlace(b->mutable_lo().get());
      StripQualifiersInPlace(b->mutable_hi().get());
      return;
    }
    case ExprKind::kInList: {
      auto* in = static_cast<InListExpr*>(e);
      StripQualifiersInPlace(in->mutable_input().get());
      for (auto& item : in->mutable_items()) StripQualifiersInPlace(item.get());
      return;
    }
    case ExprKind::kAnd:
      for (auto& c : static_cast<AndExpr*>(e)->mutable_children()) {
        StripQualifiersInPlace(c.get());
      }
      return;
    case ExprKind::kOr:
      for (auto& c : static_cast<OrExpr*>(e)->mutable_children()) {
        StripQualifiersInPlace(c.get());
      }
      return;
    case ExprKind::kNot:
      StripQualifiersInPlace(static_cast<NotExpr*>(e)->mutable_child().get());
      return;
    case ExprKind::kUdfCall:
      for (auto& a : static_cast<UdfCallExpr*>(e)->mutable_args()) {
        StripQualifiersInPlace(a.get());
      }
      return;
    default:
      return;
  }
}

ExprPtr StripBinding(const ExprPtr& e) {
  ExprPtr clone = e->Clone();
  StripQualifiersInPlace(clone.get());
  return clone;
}

// Strategy selection for parameterized queries (prepared statements): a
// `?` has no value at rewrite time, so EXPLAIN cannot cost an index probe
// on it. Real engines plan generic prepared statements with value-free
// estimates; we use the index histogram's average per-key selectivity
// (1 / distinct keys) for equality and IN parameters and the textbook
// quarter default for ranges. The strategy selector can then still prefer
// kIndexQuery for a selective-looking parameter predicate — the
// execute-time planner builds the actual index range from the bound
// literal.
struct ParamSargEstimate {
  std::string column;
  double selectivity = 1.0;
};

double AverageEqSelectivity(const Index& index) {
  size_t distinct = index.histogram().distinct_count();
  if (distinct == 0) return 0.1;  // no statistics: Selinger default
  return 1.0 / static_cast<double>(distinct);
}

bool ExprHasParameter(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kParameter:
      return true;
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(e);
      return ExprHasParameter(*c.left()) || ExprHasParameter(*c.right());
    }
    case ExprKind::kBetween: {
      const auto& b = static_cast<const BetweenExpr&>(e);
      return ExprHasParameter(*b.input()) || ExprHasParameter(*b.lo()) ||
             ExprHasParameter(*b.hi());
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      if (ExprHasParameter(*in.input())) return true;
      for (const auto& item : in.items()) {
        if (ExprHasParameter(*item)) return true;
      }
      return false;
    }
    default:
      return false;
  }
}

// Index on the column `ref` names, when it belongs to `table` (respecting
// the query's alias for it); outputs the bare column name.
const Index* IndexedColumnOfTable(const ColumnRefExpr& ref,
                                  const TableEntry& entry,
                                  const std::string& qualifier,
                                  std::string* column) {
  if (!ref.qualifier().empty() &&
      !EqualsIgnoreCase(ref.qualifier(), qualifier) &&
      !EqualsIgnoreCase(ref.qualifier(), entry.table->name())) {
    return nullptr;
  }
  if (entry.table->schema().FindColumn(ref.name()) < 0) return nullptr;
  const Index* index = entry.indexes.Find(ref.name());
  if (index == nullptr) return nullptr;
  *column = ref.name();
  return index;
}

std::optional<ParamSargEstimate> BestParameterSarg(
    const SelectStmt& query, const TableEntry& entry,
    const std::string& qualifier) {
  if (query.where == nullptr) return std::nullopt;
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(query.where, &conjuncts);
  std::optional<ParamSargEstimate> best;
  auto consider = [&best](std::string column, double selectivity) {
    if (!best.has_value() || selectivity < best->selectivity) {
      best = ParamSargEstimate{std::move(column), selectivity};
    }
  };
  for (const auto& conjunct : conjuncts) {
    if (!ExprHasParameter(*conjunct)) continue;
    std::string column;
    switch (conjunct->kind()) {
      case ExprKind::kComparison: {
        const auto& cmp = static_cast<const ComparisonExpr&>(*conjunct);
        const Expr* col_side = cmp.left().get();
        const Expr* val_side = cmp.right().get();
        if (col_side->kind() != ExprKind::kColumnRef) {
          std::swap(col_side, val_side);
        }
        if (col_side->kind() != ExprKind::kColumnRef ||
            val_side->kind() != ExprKind::kParameter ||
            cmp.op() == CompareOp::kNe) {
          break;
        }
        if (const Index* index = IndexedColumnOfTable(
                static_cast<const ColumnRefExpr&>(*col_side), entry,
                qualifier, &column)) {
          consider(std::move(column), cmp.op() == CompareOp::kEq
                                          ? AverageEqSelectivity(*index)
                                          : 0.25);
        }
        break;
      }
      case ExprKind::kBetween: {
        const auto& between = static_cast<const BetweenExpr&>(*conjunct);
        if (between.input()->kind() != ExprKind::kColumnRef) break;
        if (IndexedColumnOfTable(
                static_cast<const ColumnRefExpr&>(*between.input()), entry,
                qualifier, &column) != nullptr) {
          consider(std::move(column), 0.25);
        }
        break;
      }
      case ExprKind::kInList: {
        const auto& in = static_cast<const InListExpr&>(*conjunct);
        if (in.negated() || in.input()->kind() != ExprKind::kColumnRef) break;
        if (const Index* index = IndexedColumnOfTable(
                static_cast<const ColumnRefExpr&>(*in.input()), entry,
                qualifier, &column)) {
          double per_key = AverageEqSelectivity(*index);
          consider(std::move(column),
                   std::min(1.0, per_key *
                                     static_cast<double>(in.items().size())));
        }
        break;
      }
      default:
        break;
    }
  }
  return best;
}

// Replaces references to `table` with the CTE `cte_name` in every UNION arm.
void ReplaceTableRefs(SelectStmt* stmt, const std::string& table,
                      const std::string& cte_name) {
  for (SelectStmt* arm = stmt; arm != nullptr; arm = arm->union_next.get()) {
    for (auto& ref : arm->from) {
      if (ref.subquery != nullptr) {
        ReplaceTableRefs(ref.subquery.get(), table, cte_name);
        continue;
      }
      if (EqualsIgnoreCase(ref.table_name, table)) {
        if (ref.alias.empty()) ref.alias = ref.table_name;
        ref.table_name = cte_name;
        ref.hint = IndexHint{};  // hints do not apply to derived tables
      }
    }
  }
}

// Number of references to `table` anywhere in the statement (every UNION
// arm, derived tables, nested CTE bodies).
size_t CountTableRefs(const SelectStmt& stmt, const std::string& table) {
  size_t n = 0;
  for (const SelectStmt* arm = &stmt; arm != nullptr;
       arm = arm->union_next.get()) {
    for (const auto& ref : arm->from) {
      if (ref.subquery != nullptr) {
        n += CountTableRefs(*ref.subquery, table);
      } else if (EqualsIgnoreCase(ref.table_name, table)) {
        ++n;
      }
    }
    for (const auto& cte : arm->ctes) n += CountTableRefs(*cte.query, table);
  }
  return n;
}

// Collects distinct base-table names referenced anywhere in the statement.
void CollectTables(const SelectStmt& stmt, std::vector<std::string>* out) {
  for (const SelectStmt* arm = &stmt; arm != nullptr;
       arm = arm->union_next.get()) {
    for (const auto& ref : arm->from) {
      if (ref.subquery != nullptr) {
        CollectTables(*ref.subquery, out);
        continue;
      }
      bool seen = false;
      for (const auto& t : *out) {
        if (EqualsIgnoreCase(t, ref.table_name)) seen = true;
      }
      if (!seen) out->push_back(ref.table_name);
    }
    for (const auto& cte : arm->ctes) CollectTables(*cte.query, out);
  }
}

}  // namespace

std::vector<std::string> CollectReferencedTables(const SelectStmt& stmt) {
  std::vector<std::string> tables;
  CollectTables(stmt, &tables);
  return tables;
}

Result<RewriteResult> QueryRewriter::RewriteSql(const std::string& sql,
                                                const QueryMetadata& md) {
  SIEVE_ASSIGN_OR_RETURN(SelectStmtPtr stmt, Parser::Parse(sql));
  return Rewrite(*stmt, md);
}

Result<RewriteResult> QueryRewriter::Rewrite(const SelectStmt& query,
                                             const QueryMetadata& md) {
  RewriteResult result;
  result.stmt = query.Clone();

  std::vector<std::string> tables;
  CollectTables(query, &tables);

  const double cr_seq = cost_->params().cr_seq;
  const double cr_random = cost_->params().cr_random;
  const bool mysql_like = db_->profile().honor_index_hints;

  for (const std::string& table : tables) {
    // A table is protected iff any policy (for any querier) targets it.
    bool protected_table = false;
    for (const Policy& p : policies_->policies()) {
      if (EqualsIgnoreCase(p.table_name, table)) {
        protected_table = true;
        break;
      }
    }
    if (!protected_table) continue;

    const TableEntry* entry = db_->catalog().Find(table);
    if (entry == nullptr) continue;
    const double n = static_cast<double>(entry->table->size());
    const std::string cte_name = "sieve_" + ToLower(table);

    TableRewriteInfo info;
    info.table = table;

    std::vector<const Policy*> relevant =
        policies_->FilterByMetadata(md, table, resolver_);
    info.num_policies = relevant.size();
    info.policy_ids.reserve(relevant.size());
    for (const Policy* p : relevant) info.policy_ids.push_back(p->id);

    auto cte_body = std::make_shared<SelectStmt>();
    cte_body->select_star = true;
    TableRef base;
    base.table_name = table;
    cte_body->from.push_back(base);

    if (relevant.empty()) {
      // Default-deny: no policy allows this querier anything on the table.
      result.default_denied = true;
      cte_body->where = MakeLiteral(Value::Bool(false));
      result.stmt->ctes.push_back({cte_name, cte_body});
      ReplaceTableRefs(result.stmt.get(), table, cte_name);
      result.tables.push_back(std::move(info));
      continue;
    }

    SIEVE_ASSIGN_OR_RETURN(const GuardedExpression* ge,
                           EnsureGuards(md, table, &info));
    info.num_guards = ge->guards.size();
    info.guard_ids.reserve(ge->guards.size());
    for (const Guard& g : ge->guards) info.guard_ids.push_back(g.id);

    if (ge->guards.empty()) {
      // No indexable condition on any policy: fall back to a plain policy
      // filter (equivalent to BaselineP for this table).
      std::vector<ExprPtr> policy_exprs;
      policy_exprs.reserve(relevant.size());
      for (const Policy* p : relevant) policy_exprs.push_back(p->ObjectExpr());
      cte_body->where = MakeOr(std::move(policy_exprs));
      info.strategy = AccessStrategy::kLinearScan;
      result.stmt->ctes.push_back({cte_name, cte_body});
      ReplaceTableRefs(result.stmt.get(), table, cte_name);
      result.tables.push_back(std::move(info));
      continue;
    }

    // ---- Strategy selection (Section 5.5) ----
    info.cost_linear = n * cr_seq;
    info.cost_index_guards = ge->TotalSelectivity() * n * cr_random;
    info.cost_index_query = std::numeric_limits<double>::infinity();
    std::string query_index_column;
    {
      auto explain = db_->ExplainStmt(query);
      if (explain.ok()) {
        for (const auto& path : explain->tables) {
          if (!EqualsIgnoreCase(path.table, table)) continue;
          if (path.kind != AccessPathInfo::Kind::kSeqScan) {
            info.cost_index_query = path.selectivity * n * cr_random;
            query_index_column = path.index_column;
          }
          break;
        }
      }
      if (info.cost_index_query ==
          std::numeric_limits<double>::infinity()) {
        // EXPLAIN found no index probe — but a parameterized predicate on
        // an indexed column still supports kIndexQuery at execute time;
        // cost it with default selectivities (see BestParameterSarg).
        std::string qualifier = table;
        for (const auto& ref : query.from) {
          if (EqualsIgnoreCase(ref.table_name, table)) {
            qualifier = ref.EffectiveName();
            break;
          }
        }
        if (auto param_sarg = BestParameterSarg(query, *entry, qualifier)) {
          info.cost_index_query = param_sarg->selectivity * n * cr_random;
          query_index_column = param_sarg->column;
        }
      }
    }
    AccessStrategy strategy = AccessStrategy::kIndexGuards;
    double best = info.cost_index_guards;
    if (info.cost_index_query < best) {
      strategy = AccessStrategy::kIndexQuery;
      best = info.cost_index_query;
    }
    if (info.cost_linear < best) {
      strategy = AccessStrategy::kLinearScan;
    }
    info.strategy = strategy;

    // ---- Build guard arms ----
    // Query-local predicate ride-along (Section 5.5) is only sound when the
    // policy CTE has a single consumer: every reference to the table scans
    // the same CTE, so predicates taken from the first arm's WHERE must not
    // be folded in when another UNION arm or a second alias (self-join)
    // also reads it — those consumers would silently lose rows.
    const bool single_consumer =
        query.union_next == nullptr && CountTableRefs(query, table) == 1;
    std::vector<ExprPtr> local;
    if (single_consumer) local = TableLocalConjuncts(query, table);
    std::vector<ExprPtr> arms;
    arms.reserve(ge->guards.size());
    for (const Guard& guard : ge->guards) {
      bool use_delta = guard.use_delta;
      if (use_delta) ++info.num_delta_guards;
      arms.push_back(GuardArmExpr(guard, use_delta));
    }

    if (strategy == AccessStrategy::kIndexGuards && mysql_like) {
      // One UNION arm per guard, each forcing the guard's index
      // (Section 5.3's MySQL rewrite). Query-local predicates ride along in
      // every arm (Section 5.5).
      SelectStmtPtr head;
      SelectStmt* tail = nullptr;
      for (size_t i = 0; i < ge->guards.size(); ++i) {
        auto arm_stmt = std::make_shared<SelectStmt>();
        arm_stmt->select_star = true;
        TableRef ref;
        ref.table_name = table;
        ref.hint.kind = IndexHint::Kind::kForceIndex;
        ref.hint.columns.push_back(ge->guards[i].guard.attr);
        arm_stmt->from.push_back(ref);
        std::vector<ExprPtr> conj;
        conj.push_back(arms[i]);
        for (const auto& c : local) conj.push_back(StripBinding(c));
        arm_stmt->where = MakeAnd(std::move(conj));
        if (head == nullptr) {
          head = arm_stmt;
        } else {
          tail->union_next = arm_stmt;
          tail->union_all = false;  // UNION dedups rows hit by two guards
        }
        tail = arm_stmt.get();
      }
      cte_body = head;
    } else {
      // Single SELECT. For PostgreSQL-like engines the top-level OR of
      // indexable guard arms is what triggers the bitmap-OR plan; pushing
      // the query-local predicates *into* each arm keeps that shape.
      std::vector<ExprPtr> or_arms;
      or_arms.reserve(arms.size());
      for (auto& arm : arms) {
        if (strategy == AccessStrategy::kIndexGuards && !local.empty()) {
          std::vector<ExprPtr> conj;
          conj.push_back(arm);
          for (const auto& c : local) conj.push_back(StripBinding(c));
          or_arms.push_back(MakeAnd(std::move(conj)));
        } else {
          or_arms.push_back(arm);
        }
      }
      ExprPtr guards_or = MakeOr(std::move(or_arms));

      TableRef& ref = cte_body->from.front();
      if (strategy == AccessStrategy::kIndexQuery) {
        // Index on the query predicate; guards become residual filters.
        std::vector<ExprPtr> conj;
        for (const auto& c : local) conj.push_back(StripBinding(c));
        conj.push_back(std::move(guards_or));
        cte_body->where = MakeAnd(std::move(conj));
        if (mysql_like && !query_index_column.empty()) {
          ref.hint.kind = IndexHint::Kind::kForceIndex;
          ref.hint.columns.push_back(query_index_column);
        }
      } else if (strategy == AccessStrategy::kLinearScan) {
        std::vector<ExprPtr> conj;
        for (const auto& c : local) conj.push_back(StripBinding(c));
        conj.push_back(std::move(guards_or));
        cte_body->where = MakeAnd(std::move(conj));
        if (mysql_like) {
          ref.hint.kind = IndexHint::Kind::kIgnoreAllIndexes;
        }
      } else {
        cte_body->where = std::move(guards_or);
      }
    }

    result.stmt->ctes.push_back({cte_name, cte_body});
    ReplaceTableRefs(result.stmt.get(), table, cte_name);
    result.tables.push_back(std::move(info));
  }

  result.sql = result.stmt->ToSql();
  return result;
}

}  // namespace sieve
