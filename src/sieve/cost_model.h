#ifndef SIEVE_SIEVE_COST_MODEL_H_
#define SIEVE_SIEVE_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "engine/database.h"

namespace sieve {

/// Calibrated constants of the paper's cost model (Sections 4, 5.4, 6).
/// All times are seconds per unit.
struct CostParams {
  /// α: average fraction of a policy partition a tuple is checked against
  /// before the disjunction short-circuits (Eq. 2). Most tuples match no
  /// policy, so the whole partition is usually checked.
  double alpha = 0.8;
  /// ce: cost of evaluating one policy's object conditions on one tuple.
  double ce = 2.7e-7;
  /// cr: cost of reading one tuple sequentially.
  double cr_seq = 4.0e-8;
  /// Random (index) read cost of one tuple — the cr used in guard costing.
  double cr_random = 1.6e-7;
  /// UDFinv: fixed cost of invoking a UDF once (dominated by the marshalling
  /// /dispatch boundary; see EngineProfile::udf_invocation_spin).
  double udf_invocation = 2.5e-5;
  /// Per-policy evaluation cost inside the Δ UDF (post context filter).
  double udf_per_policy = 2.7e-7;
  /// Fraction of a partition's policies that survive Δ's context filter
  /// (owner + metadata) for a given tuple.
  double delta_filter_selectivity = 0.05;
};

/// Cost model driving all of Sieve's choices: guard merging (Theorem 1),
/// guard selection utility (Algorithm 1), inline-vs-Δ (Section 5.4),
/// LinearScan/IndexQuery/IndexGuards strategy (Section 5.5) and the
/// dynamic regeneration rate (Section 6).
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostParams params) : params_(params) {}

  const CostParams& params() const { return params_; }
  void set_params(CostParams p) { params_ = p; }

  /// Eq. 2: cost of evaluating one tuple against an inlined partition of
  /// `partition_size` policies.
  double InlineEvalCostPerTuple(size_t partition_size) const {
    return params_.alpha * static_cast<double>(partition_size) * params_.ce;
  }

  /// Section 5.4: per-tuple cost of Guard&Δ — UDF invocation plus the
  /// checks that survive the context filter.
  double DeltaEvalCostPerTuple(size_t partition_size) const {
    return params_.udf_invocation +
           params_.alpha * static_cast<double>(partition_size) *
               params_.delta_filter_selectivity * params_.udf_per_policy;
  }

  /// True when the Δ operator is cheaper than inlining for this partition.
  bool PreferDelta(size_t partition_size) const {
    return DeltaEvalCostPerTuple(partition_size) <
           InlineEvalCostPerTuple(partition_size);
  }

  /// Smallest partition size at which Δ wins (paper reports ≈120).
  size_t DeltaCrossover() const;

  /// Eq. 3: cost(Gi) = ρ(guard)·(cr + α·|P_Gi|·ce), with ρ in rows.
  double GuardCost(double guard_rows, size_t partition_size) const {
    return guard_rows *
           (params_.cr_random + InlineEvalCostPerTuple(partition_size));
  }

  /// benefit(Gi) = ce·|P_Gi|·(|r| − ρ(guard)) (Section 4.2).
  double GuardBenefit(double table_rows, double guard_rows,
                      size_t partition_size) const {
    double saved = table_rows - guard_rows;
    if (saved < 0) saved = 0;
    return params_.ce * static_cast<double>(partition_size) * saved;
  }

  /// read_cost(Gi) = ρ(guard)·cr.
  double GuardReadCost(double guard_rows) const {
    return guard_rows * params_.cr_random;
  }

  /// utility(Gi) = benefit / read_cost (Algorithm 1's priority).
  double GuardUtility(double table_rows, double guard_rows,
                      size_t partition_size) const;

  /// Theorem 1 threshold: merging overlapping candidates x, y is beneficial
  /// iff ρ(x∩y)/ρ(x∪y) > ce/(cr+ce).
  double MergeThreshold() const {
    return params_.ce / (params_.cr_random + params_.ce);
  }

  /// Eq. 19: optimal number of policy insertions before regenerating the
  /// guarded expression: k* = sqrt(4·C_G / (ρ(oc_G)·α·ce·r_pq)).
  /// `guard_rows` is ρ(oc_G) in rows, `regen_cost_seconds` is C_G, and
  /// `queries_per_insert` is r_pq = r_q / r_p.
  double OptimalRegenerationK(double guard_rows, double regen_cost_seconds,
                              double queries_per_insert) const;

  /// Measures α on a sample: fraction of the partition actually evaluated
  /// per tuple before the disjunction resolves, averaged over `rows`.
  static Result<double> MeasureAlpha(Database* db, const std::string& table,
                                     const std::vector<ExprPtr>& policy_exprs,
                                     size_t sample_rows = 2000);

  /// Runs micro-benchmarks on a scratch table inside `db` to estimate
  /// cr_seq, cr_random, ce and udf_invocation experimentally (the paper
  /// obtains these constants the same way, Section 5.4).
  static Result<CostParams> Calibrate(Database* db, uint64_t seed = 42);

 private:
  CostParams params_;
};

}  // namespace sieve

#endif  // SIEVE_SIEVE_COST_MODEL_H_
