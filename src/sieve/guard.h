#ifndef SIEVE_SIEVE_GUARD_H_
#define SIEVE_SIEVE_GUARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"
#include "expr/expr.h"

namespace sieve {

/// A candidate guard (Section 4.1): a closed interval on one indexed
/// attribute, together with the ids of the policies whose object condition
/// on that attribute is implied by the interval (the policy partition if the
/// candidate is selected).
struct CandidateGuard {
  std::string attr;
  Value lo;
  Value hi;
  std::vector<int64_t> policy_ids;
  /// ρ(oc_g): estimated fraction of the table's rows matching the guard.
  double selectivity = 0.0;

  bool IsEquality() const { return lo.Compare(hi) == 0; }

  /// attr = v or attr BETWEEN lo AND hi.
  ExprPtr ToExpr() const;

  std::string ToString() const;
};

/// A selected guard Gi = oc_g ∧ P_Gi with its chosen partition strategy.
struct Guard {
  int64_t id = -1;  ///< key in rGG; the Δ UDF receives this id
  CandidateGuard guard;
  /// True when the partition is evaluated through the Δ operator instead of
  /// inlining its DNF (Section 5.4).
  bool use_delta = false;
};

/// The guarded policy expression G(P) = G1 ∨ … ∨ Gn for one
/// (querier, purpose, table) key (Section 3.2). Plain immutable data once
/// stored in the GuardStore: the rewriter and concurrent Δ evaluations
/// only read it (the Δ partition's one-time expression bind is handled
/// separately in GuardStore::DeltaPartition).
struct GuardedExpression {
  int64_t id = -1;  ///< key in rGE
  std::string querier;
  std::string purpose;
  std::string table_name;
  std::vector<Guard> guards;
  double generation_ms = 0.0;  ///< time spent generating (Figure 2's metric)

  size_t TotalPolicies() const {
    size_t n = 0;
    for (const auto& g : guards) n += g.guard.policy_ids.size();
    return n;
  }

  /// Σ ρ(Gi): total estimated fraction of the table read through guards.
  double TotalSelectivity() const {
    double s = 0.0;
    for (const auto& g : guards) s += g.guard.selectivity;
    return s;
  }
};

}  // namespace sieve

#endif  // SIEVE_SIEVE_GUARD_H_
