#include "sieve/dynamic.h"

#include <cmath>

#include "common/string_util.h"

namespace sieve {

DynamicPolicyManager::Key DynamicPolicyManager::Key::Make(
    const std::string& querier, const std::string& purpose,
    const std::string& table) {
  return Key{ToLower(querier), ToLower(purpose), ToLower(table)};
}

double DynamicPolicyManager::QueriesPerInsert() const {
  if (inserts_seen_ <= 0) return 1.0;
  double r =
      static_cast<double>(queries_seen_.load(std::memory_order_relaxed)) /
      static_cast<double>(inserts_seen_);
  return r > 0 ? r : 1.0;
}

Result<int64_t> DynamicPolicyManager::InsertPolicy(Policy policy) {
  std::string querier = policy.querier;
  std::string purpose = policy.purpose;
  std::string table = policy.table_name;

  SIEVE_ASSIGN_OR_RETURN(int64_t id, policies_->AddPolicy(std::move(policy)));
  ++inserts_seen_;

  // Incremental invalidation: flip only the guarded expressions whose
  // candidate sets the new policy changes. That is every stored GE on this
  // table whose metadata the grant reaches — the grant key itself, and (for
  // group grants) each member querier's GE, which a same-key MarkOutdated
  // would miss entirely.
  std::vector<GuardKey> affected = guards_->MarkOutdatedWhere(
      table, [&](const GuardedExpression& ge) {
        return GrantMatchesMetadata(querier, purpose,
                                    QueryMetadata{ge.querier, ge.purpose},
                                    resolver_);
      });

  // The grant's own key is affected even when it has no stored GE yet
  // (IsOutdated treats absence as stale, but pending bookkeeping and cache
  // invalidation still need the event).
  Key own = Key::Make(querier, purpose, table);
  bool own_seen = false;
  for (const GuardKey& k : affected) {
    if (k.querier == own.querier && k.purpose == own.purpose &&
        k.table == own.table) {
      own_seen = true;
      break;
    }
  }
  if (!own_seen) {
    guards_->MarkOutdated(querier, purpose, table);
    affected.push_back(GuardKey{own.querier, own.purpose, own.table});
  }

  for (const GuardKey& k : affected) {
    int64_t pending = ++pending_[Key{k.querier, k.purpose, k.table}];
    if (mode_ != RegenerationMode::kEagerEveryK) continue;
    double kstar = CurrentOptimalK(k.querier, k.purpose, k.table);
    if (static_cast<double>(pending) < kstar) continue;
    // Regenerate this key only. Lower-cased metadata is fine: policy
    // filtering, group resolution and catalog lookup are case-insensitive.
    QueryMetadata md{k.querier, k.purpose};
    SIEVE_ASSIGN_OR_RETURN(GuardedExpression ge, builder_.Build(md, k.table));
    auto put = guards_->Put(std::move(ge));
    if (!put.ok()) return put.status();
    pending_[Key{k.querier, k.purpose, k.table}] = 0;
  }
  return id;
}

double DynamicPolicyManager::CurrentOptimalK(const std::string& querier,
                                             const std::string& purpose,
                                             const std::string& table) const {
  const GuardedExpression* ge = guards_->Get(querier, purpose, table);
  if (ge == nullptr || ge->guards.empty()) return 1.0;
  // ρ(oc_G): mean per-guard cardinality in rows. Guard selectivities are
  // stored as fractions, so scale by the protected table's real cardinality
  // from the catalog (Section 6's ρ counts tuples).
  double mean_rho = ge->TotalSelectivity() /
                    static_cast<double>(ge->guards.size());
  double table_rows = 0.0;
  if (db_ != nullptr) {
    const TableEntry* entry = db_->catalog().Find(ge->table_name);
    if (entry != nullptr && entry->table != nullptr) {
      table_rows = static_cast<double>(entry->table->size());
    }
  }
  if (table_rows <= 0) table_rows = 1.0;
  double rho_rows = mean_rho * table_rows;
  double regen_cost_s = ge->generation_ms / 1e3;
  if (regen_cost_s <= 0) regen_cost_s = 1e-3;
  double k = cost_->OptimalRegenerationK(rho_rows <= 0 ? 1.0 : rho_rows,
                                         regen_cost_s, QueriesPerInsert());
  return k < 1.0 ? 1.0 : k;
}

int64_t DynamicPolicyManager::PendingInsertions(const std::string& querier,
                                                const std::string& purpose,
                                                const std::string& table) const {
  auto it = pending_.find(Key::Make(querier, purpose, table));
  return it == pending_.end() ? 0 : it->second;
}

}  // namespace sieve
