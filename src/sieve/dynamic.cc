#include "sieve/dynamic.h"

#include <cmath>

namespace sieve {

double DynamicPolicyManager::QueriesPerInsert() const {
  if (inserts_seen_ <= 0) return 1.0;
  double r =
      static_cast<double>(queries_seen_.load(std::memory_order_relaxed)) /
      static_cast<double>(inserts_seen_);
  return r > 0 ? r : 1.0;
}

Result<int64_t> DynamicPolicyManager::InsertPolicy(Policy policy) {
  Key key{policy.querier, policy.purpose, policy.table_name};
  QueryMetadata md{policy.querier, policy.purpose};
  std::string table = policy.table_name;

  SIEVE_ASSIGN_OR_RETURN(int64_t id, policies_->AddPolicy(std::move(policy)));
  ++inserts_seen_;
  int64_t pending = ++pending_[key];
  guards_->MarkOutdated(key.querier, key.purpose, key.table);

  if (mode_ == RegenerationMode::kEagerEveryK) {
    double k = CurrentOptimalK(key.querier, key.purpose, key.table);
    if (static_cast<double>(pending) >= k) {
      SIEVE_ASSIGN_OR_RETURN(GuardedExpression ge, builder_.Build(md, table));
      auto put = guards_->Put(std::move(ge));
      if (!put.ok()) return put.status();
      pending_[key] = 0;
    }
  }
  return id;
}

double DynamicPolicyManager::CurrentOptimalK(const std::string& querier,
                                             const std::string& purpose,
                                             const std::string& table) const {
  const GuardedExpression* ge = guards_->Get(querier, purpose, table);
  if (ge == nullptr || ge->guards.empty()) return 1.0;
  // ρ(oc_G): use the mean per-guard cardinality in rows. The derivation in
  // Section 6 assumes a representative guard selectivity.
  double mean_rho = ge->TotalSelectivity() /
                    static_cast<double>(ge->guards.size());
  // Convert to rows: the paper's ρ counts tuples.
  // We do not know the table size here without the catalog; the guarded
  // expression's cardinality semantics store fractions, so scale by an
  // approximate table size derived from generation cost bookkeeping.
  // Callers that need exact k pass through CostModel::OptimalRegenerationK.
  double regen_cost_s = ge->generation_ms / 1e3;
  if (regen_cost_s <= 0) regen_cost_s = 1e-3;
  double k = cost_->OptimalRegenerationK(mean_rho <= 0 ? 1.0 : mean_rho * 1e5,
                                         regen_cost_s, QueriesPerInsert());
  return k < 1.0 ? 1.0 : k;
}

int64_t DynamicPolicyManager::PendingInsertions(const std::string& querier,
                                                const std::string& purpose,
                                                const std::string& table) const {
  auto it = pending_.find(Key{querier, purpose, table});
  return it == pending_.end() ? 0 : it->second;
}

}  // namespace sieve
