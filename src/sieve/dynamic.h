#ifndef SIEVE_SIEVE_DYNAMIC_H_
#define SIEVE_SIEVE_DYNAMIC_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "policy/policy_store.h"
#include "sieve/cost_model.h"
#include "sieve/guard_selection.h"
#include "sieve/guard_store.h"

namespace sieve {

/// Regeneration policy for dynamic policy corpora (Section 6).
enum class RegenerationMode {
  /// Flip the outdated flag on insert; the rewriter regenerates lazily at
  /// query time (the paper's trigger-based default).
  kLazy,
  /// Regenerate immediately after every k-th insertion for the affected
  /// querier key, with k from Eq. 19 (Theorem 2: regenerate right at k).
  kEagerEveryK,
};

/// Handles policy insertions in dynamic scenarios — incrementally: an insert
/// marks outdated only the guarded expressions whose candidate sets the new
/// policy actually changes (the policy's own grant key, plus every stored GE
/// whose querier the grant reaches through group membership), and in eager
/// mode regenerates exactly those keys once their per-key insertion count
/// reaches k* = sqrt(4·C_G / (ρ(oc_G)·α·ce·r_pq)) (Eq. 19).
///
/// Threading: mutates the policy and guard stores — call from the single
/// control thread only, never while a query is executing in parallel.
class DynamicPolicyManager {
 public:
  DynamicPolicyManager(Database* db, PolicyStore* policies, GuardStore* guards,
                       const CostModel* cost, const GroupResolver* resolver)
      : db_(db),
        policies_(policies),
        guards_(guards),
        cost_(cost),
        resolver_(resolver),
        builder_(db, policies, cost, resolver) {}

  void set_mode(RegenerationMode mode) { mode_ = mode; }
  RegenerationMode mode() const { return mode_; }

  /// r_pq: observed queries per policy insertion, used by Eq. 19. Defaults
  /// to 1 until told otherwise (call ObserveQuery per executed query).
  /// Atomic: concurrent sessions count their executions in parallel.
  void ObserveQuery() { queries_seen_.fetch_add(1, std::memory_order_relaxed); }

  /// Inserts the policy, marks the affected guarded expressions outdated,
  /// bumps each affected key's insertion counter and applies the
  /// regeneration mode per key. Returns the policy id.
  Result<int64_t> InsertPolicy(Policy policy);

  /// Eq. 19's k* for a key, from that key's current guarded expression
  /// (ρ(oc_G) scaled by the protected table's real cardinality from the
  /// catalog, and measured generation cost) and the observed r_pq.
  double CurrentOptimalK(const std::string& querier, const std::string& purpose,
                         const std::string& table) const;

  /// Insertions since the last regeneration for a key (case-insensitive).
  int64_t PendingInsertions(const std::string& querier,
                            const std::string& purpose,
                            const std::string& table) const;

 private:
  /// Case-insensitive key: fields are lower-cased at construction so a
  /// policy on `WifiData` and a query on `wifidata` hit the same entry
  /// (the rest of the engine compares identifiers with EqualsIgnoreCase).
  struct Key {
    std::string querier, purpose, table;
    static Key Make(const std::string& querier, const std::string& purpose,
                    const std::string& table);
    bool operator<(const Key& other) const {
      if (querier != other.querier) return querier < other.querier;
      if (purpose != other.purpose) return purpose < other.purpose;
      return table < other.table;
    }
  };

  double QueriesPerInsert() const;

  Database* db_;
  PolicyStore* policies_;
  GuardStore* guards_;
  const CostModel* cost_;
  const GroupResolver* resolver_;
  GuardedExpressionBuilder builder_;
  RegenerationMode mode_ = RegenerationMode::kLazy;
  std::map<Key, int64_t> pending_;
  int64_t inserts_seen_ = 0;
  std::atomic<int64_t> queries_seen_{0};
};

}  // namespace sieve

#endif  // SIEVE_SIEVE_DYNAMIC_H_
