#ifndef SIEVE_SIEVE_REWRITE_CACHE_H_
#define SIEVE_SIEVE_REWRITE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "parser/ast.h"
#include "sieve/rewriter.h"

namespace sieve {

/// Whitespace-normalizes SQL for cache keying: runs of whitespace outside
/// quoted strings collapse to one space, leading/trailing whitespace is
/// trimmed, `--` line comments are dropped. Case is deliberately preserved
/// — folding it would conflate queries that differ only in string-literal
/// case; a differently-cased keyword merely misses the cache.
std::string NormalizeSql(const std::string& sql);

/// One cached, immutable rewrite: everything a session needs to execute a
/// prepared query without touching the rewriter again. `stmt` is a shared
/// template (it may contain ParameterExpr placeholders) — executions must
/// Clone() it and bind the clone; nothing may mutate it in place.
///
/// Beyond the rewrite itself, an entry carries its **dependency set**: the
/// normalized (lower-cased) querier/purpose it was prepared for and the
/// base tables its statement references. Policy or guard mutations that
/// touch one of those dependency keys mark the entry stale (an atomic flag
/// — the only mutable member); a PreparedQuery holding the entry re-prepares
/// on its next Execute, while entries whose dependencies did not change keep
/// executing untouched.
struct PreparedRewrite {
  std::string normalized_sql;            ///< cache-key form of the input
  SelectStmtPtr stmt;                    ///< rewritten statement template
  std::string rewritten_sql;             ///< rendered SQL of `stmt`
  std::vector<TableRewriteInfo> tables;  ///< per-table rewrite diagnostics
  bool default_denied = false;
  /// Parameter signature of the *original* query, in slot order: the
  /// lower-cased name for `:name` slots, "" for positional `?`.
  std::vector<std::string> params;
  /// Policy epoch the rewrite was produced under (Σ store versions at
  /// prepare time). Monotonicity watermark: the cache refuses to adopt an
  /// entry older than one it already absorbed. Validity, however, is the
  /// stale flag below, not an epoch comparison.
  uint64_t epoch = 0;

  // -- dependency set (normalized, lower-case) --
  std::string querier;                 ///< metadata querier at prepare time
  std::string purpose;                 ///< metadata purpose at prepare time
  std::vector<std::string> dep_tables; ///< base tables the statement reads

  /// True once a policy/guard mutation invalidated one of this entry's
  /// dependency keys. Set exactly once, never cleared.
  bool stale() const { return stale_.load(std::memory_order_acquire); }
  void mark_stale() const { stale_.store(true, std::memory_order_release); }

 private:
  mutable std::atomic<bool> stale_{false};
};

/// Cumulative counters of one RewriteCache (snapshot semantics).
struct RewriteCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;  ///< entries marked stale by keyed invalidation
  uint64_t evictions = 0;      ///< entries dropped by LRU capacity pressure
  uint64_t stale_drops = 0;    ///< out-of-order inserts refused (epoch < max)

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Shared, lock-protected cache of prepared rewrites keyed by
/// (querier, purpose, engine profile, normalized SQL), invalidated
/// **per dependency key**: every entry is indexed by the base tables it
/// references, and a policy/guard mutation removes only the entries whose
/// (querier, purpose, table) dependencies it affects — unaffected queriers'
/// rewrites keep hitting through sustained policy churn. Capacity is
/// bounded with true LRU eviction (a lookup refreshes recency; the least
/// recently used entry is evicted at capacity).
///
/// Threading: all methods are safe to call concurrently; returned entries
/// are immutable shared_ptrs that stay valid after invalidation or
/// eviction (holders observe invalidation through PreparedRewrite::stale).
/// Eviction does not end an entry's invalidation reach: entries evicted
/// while still held by a PreparedQuery stay registered in a weak
/// per-table index, so a later policy/guard mutation on one of their
/// dependency keys still marks them stale — a holder never keeps
/// executing a pre-mutation rewrite just because cache churn evicted its
/// entry.
class RewriteCache {
 public:
  explicit RewriteCache(size_t capacity = kMaxEntries)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  static std::string MakeKey(const std::string& querier,
                             const std::string& purpose,
                             const std::string& profile,
                             const std::string& normalized_sql);

  /// Returns the entry for `key` if present (and not stale), refreshing its
  /// LRU recency. `authoritative` only controls miss accounting: the
  /// optimistic pre-lock probe passes false so its miss is not counted (the
  /// authoritative retry right after counts it). A probe hit is only a hint
  /// — Execute re-validates the entry's stale flag under the middleware's
  /// shared state lock before running it.
  std::shared_ptr<const PreparedRewrite> Lookup(const std::string& key,
                                                bool authoritative = true);

  /// Inserts `entry` (which must carry its dependency set). An entry whose
  /// epoch is older than the newest epoch the cache has absorbed is an
  /// out-of-order insert from a rewrite that raced a policy mutation: it is
  /// dropped (counted in stats().stale_drops) and marked stale — adopting
  /// it would serve a pre-mutation rewrite as current, and the preparing
  /// session holding it must re-prepare rather than keep executing it
  /// outside invalidation's reach. At capacity the least recently used
  /// entry is evicted first; if a key is re-inserted, the displaced
  /// rewrite is marked stale so old holders converge on the new one.
  void Insert(const std::string& key,
              std::shared_ptr<const PreparedRewrite> entry);

  /// Keyed invalidation: marks stale and removes every entry that depends
  /// on `table_lower` (a lower-cased base-table name) and whose
  /// querier/purpose satisfies `affects`. A null `affects` matches every
  /// entry on the table (used when the table's protection status itself
  /// changed, which alters rewrites for all queriers). Returns the number
  /// of entries invalidated.
  size_t InvalidateTable(
      const std::string& table_lower,
      const std::function<bool(const PreparedRewrite&)>& affects = nullptr);

  /// Wholesale invalidation (corpus reload): marks every entry stale.
  size_t InvalidateAll();

  /// Upper bound on cached rewrites. A one-shot Execute path with
  /// inlined literals creates one entry per distinct SQL text; without a
  /// bound a long-lived server under a stable policy corpus would grow
  /// without limit.
  static constexpr size_t kMaxEntries = 1024;

  RewriteCacheStats stats() const;
  size_t size() const;
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const PreparedRewrite> rewrite;
    std::list<std::string>::iterator lru_it;  // position in lru_
  };

  // All require mu_ held.
  void IndexEntry(const std::string& key, const PreparedRewrite& rewrite);
  void UnindexEntry(const std::string& key, const PreparedRewrite& rewrite);
  void EraseLocked(
      std::unordered_map<std::string, Entry>::iterator it);
  /// Registers an eviction victim in evicted_by_table_ if external holders
  /// still reference it (no-op otherwise).
  void TrackEvictedLocked(
      const std::shared_ptr<const PreparedRewrite>& rewrite);

  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t max_epoch_ = 0;  ///< newest entry epoch absorbed (watermark)
  std::unordered_map<std::string, Entry> entries_;
  /// LRU order, most recent first; holds cache keys.
  std::list<std::string> lru_;
  /// Secondary index: lower-cased dependency table -> cache keys of the
  /// entries referencing it. Drives keyed invalidation without a full scan.
  std::unordered_map<std::string, std::unordered_set<std::string>> by_table_;
  /// Evicted-but-still-held entries, indexed like by_table_. Eviction is
  /// capacity management and must not force holders to re-prepare, but a
  /// *later* mutation on an evicted entry's dependency keys must still
  /// reach it — without this index a long-lived PreparedQuery whose entry
  /// was evicted by churn would execute a pre-mutation rewrite forever.
  /// weak_ptrs expire when the last holder drops the entry; expired slots
  /// are purged during eviction and invalidation walks, so the index is
  /// bounded by the number of live external holders, not by eviction
  /// history.
  std::unordered_map<std::string,
                     std::vector<std::weak_ptr<const PreparedRewrite>>>
      evicted_by_table_;
  RewriteCacheStats stats_;
};

}  // namespace sieve

#endif  // SIEVE_SIEVE_REWRITE_CACHE_H_
