#ifndef SIEVE_SIEVE_REWRITE_CACHE_H_
#define SIEVE_SIEVE_REWRITE_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "parser/ast.h"
#include "sieve/rewriter.h"

namespace sieve {

/// Whitespace-normalizes SQL for cache keying: runs of whitespace outside
/// quoted strings collapse to one space, leading/trailing whitespace is
/// trimmed, `--` line comments are dropped. Case is deliberately preserved
/// — folding it would conflate queries that differ only in string-literal
/// case; a differently-cased keyword merely misses the cache.
std::string NormalizeSql(const std::string& sql);

/// One cached, immutable rewrite: everything a session needs to execute a
/// prepared query without touching the rewriter again. `stmt` is a shared
/// template (it may contain ParameterExpr placeholders) — executions must
/// Clone() it and bind the clone; nothing may mutate it in place.
struct PreparedRewrite {
  std::string normalized_sql;            ///< cache-key form of the input
  SelectStmtPtr stmt;                    ///< rewritten statement template
  std::string rewritten_sql;             ///< rendered SQL of `stmt`
  std::vector<TableRewriteInfo> tables;  ///< per-table rewrite diagnostics
  bool default_denied = false;
  /// Parameter signature of the *original* query, in slot order: the
  /// lower-cased name for `:name` slots, "" for positional `?`.
  std::vector<std::string> params;
  /// Policy epoch the rewrite was produced under; stale when it no longer
  /// matches SieveMiddleware::policy_epoch().
  uint64_t epoch = 0;
};

/// Cumulative counters of one RewriteCache (snapshot semantics).
struct RewriteCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;  ///< wholesale clears on epoch change

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Shared, lock-protected cache of prepared rewrites keyed by
/// (querier, purpose, engine profile, normalized SQL), validated by the
/// policy epoch. The cache holds entries of exactly one epoch at a time:
/// the first lookup or insert under a newer epoch drops every entry
/// wholesale (the paper's guarded expressions are per-querier, but a
/// policy insert can change group resolution and default-deny outcomes
/// for any querier, so fine-grained invalidation is not worth the risk).
///
/// Threading: all methods are safe to call concurrently; returned entries
/// are immutable shared_ptrs that stay valid after invalidation.
class RewriteCache {
 public:
  static std::string MakeKey(const std::string& querier,
                             const std::string& purpose,
                             const std::string& profile,
                             const std::string& normalized_sql);

  /// Returns the entry for `key` if present and produced under `epoch`.
  /// When `authoritative` (the default — callers hold the middleware's
  /// state lock, so `epoch` is exact), a mismatched epoch advances the
  /// cache and clears stale entries, and a miss is counted. The
  /// non-authoritative form is for the optimistic pre-lock probe: its
  /// `epoch` may be a torn read, so it never mutates the cache (a stale
  /// probe must not wipe entries that are in fact current) and its miss
  /// is silent — the authoritative retry right after counts it.
  std::shared_ptr<const PreparedRewrite> Lookup(const std::string& key,
                                                uint64_t epoch,
                                                bool authoritative = true);

  /// Inserts `entry` under its own epoch, clearing the cache first when
  /// the epoch advanced (e.g. the rewrite itself regenerated guards).
  /// The cache is bounded at kMaxEntries: inserting a new key at
  /// capacity evicts an arbitrary entry (bounding memory matters more
  /// than eviction quality here — entries are cheap to rebuild and hot
  /// keys are re-inserted on their next prepare).
  void Insert(const std::string& key,
              std::shared_ptr<const PreparedRewrite> entry);

  /// Upper bound on cached rewrites. A one-shot Execute path with
  /// inlined literals creates one entry per distinct SQL text; without a
  /// bound a long-lived server under a stable policy corpus would grow
  /// without limit.
  static constexpr size_t kMaxEntries = 1024;

  RewriteCacheStats stats() const;
  size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  std::unordered_map<std::string, std::shared_ptr<const PreparedRewrite>>
      entries_;
  RewriteCacheStats stats_;
};

}  // namespace sieve

#endif  // SIEVE_SIEVE_REWRITE_CACHE_H_
