#include "sieve/candidate_guards.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace sieve {

namespace {

// Interval helpers over Value (closed intervals).
bool Overlaps(const CandidateGuard& a, const CandidateGuard& b) {
  return a.hi.Compare(b.lo) >= 0 && b.hi.Compare(a.lo) >= 0;
}

Value MinV(const Value& a, const Value& b) { return a.Compare(b) <= 0 ? a : b; }
Value MaxV(const Value& a, const Value& b) { return a.Compare(b) >= 0 ? a : b; }

double RangeRho(const Index& index, const Value& lo, const Value& hi) {
  if (lo.Compare(hi) == 0) return index.EstimateEqSelectivity(lo);
  return index.EstimateRangeSelectivity(lo, true, hi, true);
}

}  // namespace

bool CandidateGuardGenerator::MergeBeneficial(const CandidateGuard& x,
                                              const CandidateGuard& y,
                                              const Index& index) const {
  if (!Overlaps(x, y)) return false;  // Theorem 1: disjoint never merges
  // ρ(x ∩ y) / ρ(x ∪ y) > ce / (cr + ce)   (Eq. 8)
  Value ilo = MaxV(x.lo, y.lo);
  Value ihi = MinV(x.hi, y.hi);
  Value ulo = MinV(x.lo, y.lo);
  Value uhi = MaxV(x.hi, y.hi);
  double inter = RangeRho(index, ilo, ihi);
  double uni = RangeRho(index, ulo, uhi);
  if (uni <= 0.0) return true;  // both empty: merging costs nothing
  return inter / uni > cost_->MergeThreshold();
}

std::vector<CandidateGuard> CandidateGuardGenerator::Generate(
    const std::vector<const Policy*>& policies,
    const std::string& table) const {
  std::vector<CandidateGuard> out;
  const TableEntry* entry = db_->catalog().Find(table);
  if (entry == nullptr) return out;

  // Step 1: collect interval candidates per indexed attribute.
  // Key: attr -> list of (interval, policy id).
  std::map<std::string, std::vector<CandidateGuard>> per_attr;
  for (const Policy* policy : policies) {
    for (const auto& oc : policy->object_conditions) {
      Value lo, hi;
      if (!oc.AsInterval(&lo, &hi)) continue;
      const Index* index = entry->indexes.Find(oc.attr);
      if (index == nullptr) continue;
      CandidateGuard cand;
      cand.attr = ToLower(oc.attr);
      cand.lo = std::move(lo);
      cand.hi = std::move(hi);
      cand.policy_ids.push_back(policy->id);
      per_attr[cand.attr].push_back(std::move(cand));
    }
  }

  for (auto& [attr, cands] : per_attr) {
    const Index* index = entry->indexes.Find(attr);

    // Step 2: coalesce identical intervals (e.g. owner = u, or the same
    // wifiAP value across many policies) — these group policies "for free".
    std::sort(cands.begin(), cands.end(),
              [](const CandidateGuard& a, const CandidateGuard& b) {
                int c = a.lo.Compare(b.lo);
                if (c != 0) return c < 0;
                return a.hi.Compare(b.hi) < 0;
              });
    std::vector<CandidateGuard> uniq;
    for (auto& cand : cands) {
      if (!uniq.empty() && uniq.back().lo.Compare(cand.lo) == 0 &&
          uniq.back().hi.Compare(cand.hi) == 0) {
        uniq.back().policy_ids.push_back(cand.policy_ids.front());
        continue;
      }
      uniq.push_back(std::move(cand));
    }
    for (auto& cand : uniq) {
      cand.selectivity = RangeRho(*index, cand.lo, cand.hi);
    }

    // Step 3: Theorem 1 sweep — candidates are sorted by left endpoint; try
    // to extend each candidate with its successors while the merge stays
    // beneficial; stop at the first disjoint successor (Corollary 1.2).
    size_t base_count = uniq.size();
    for (size_t i = 0; i < base_count; ++i) {
      CandidateGuard acc = uniq[i];
      bool merged_any = false;
      for (size_t j = i + 1; j < base_count; ++j) {
        const CandidateGuard& next = uniq[j];
        if (!Overlaps(acc, next)) break;  // Corollary 1.1/1.2 cutoff
        if (!MergeBeneficial(acc, next, *index)) continue;
        CandidateGuard merged;
        merged.attr = acc.attr;
        merged.lo = MinV(acc.lo, next.lo);
        merged.hi = MaxV(acc.hi, next.hi);
        merged.policy_ids = acc.policy_ids;
        merged.policy_ids.insert(merged.policy_ids.end(),
                                 next.policy_ids.begin(),
                                 next.policy_ids.end());
        merged.selectivity = RangeRho(*index, merged.lo, merged.hi);
        acc = std::move(merged);
        merged_any = true;
      }
      if (merged_any) {
        // Dedup policy ids accumulated across merges.
        std::sort(acc.policy_ids.begin(), acc.policy_ids.end());
        acc.policy_ids.erase(
            std::unique(acc.policy_ids.begin(), acc.policy_ids.end()),
            acc.policy_ids.end());
        uniq.push_back(std::move(acc));
      }
    }

    for (auto& cand : uniq) out.push_back(std::move(cand));
  }
  return out;
}

}  // namespace sieve
