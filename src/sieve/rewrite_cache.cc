#include "sieve/rewrite_cache.h"

#include <cctype>

namespace sieve {

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  size_t i = 0;
  const size_t n = sql.size();
  bool pending_space = false;
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      pending_space = !out.empty();
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      // Block comment: stripped like the lexer strips it. If unterminated,
      // copy the tail verbatim so the lexer still reports the error on the
      // normalized text (normalization must not make invalid SQL valid).
      size_t start = i;
      i += 2;
      while (i + 1 < n && !(sql[i] == '*' && sql[i + 1] == '/')) ++i;
      if (i + 1 >= n) {
        if (pending_space) out += ' ';
        out.append(sql, start, std::string::npos);
        break;
      }
      i += 2;
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    if (c == '\'' || c == '"') {
      // Copy quoted strings verbatim, honoring doubled-quote escapes; the
      // lexer rejects unterminated literals later, so a lone quote just
      // passes through untouched.
      char quote = c;
      out += sql[i++];
      while (i < n) {
        out += sql[i];
        if (sql[i] == quote) {
          if (i + 1 < n && sql[i + 1] == quote) {
            out += sql[i + 1];
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

std::string RewriteCache::MakeKey(const std::string& querier,
                                  const std::string& purpose,
                                  const std::string& profile,
                                  const std::string& normalized_sql) {
  // '\x1f' (unit separator) cannot appear in identifiers or survive
  // normalization, so the concatenation is unambiguous.
  std::string key;
  key.reserve(querier.size() + purpose.size() + profile.size() +
              normalized_sql.size() + 3);
  key += querier;
  key += '\x1f';
  key += purpose;
  key += '\x1f';
  key += profile;
  key += '\x1f';
  key += normalized_sql;
  return key;
}

std::shared_ptr<const PreparedRewrite> RewriteCache::Lookup(
    const std::string& key, uint64_t epoch, bool authoritative) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_) {
    if (authoritative) {
      if (!entries_.empty()) {
        entries_.clear();
        ++stats_.invalidations;
      }
      epoch_ = epoch;
      ++stats_.misses;
    }
    return nullptr;
  }
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (authoritative) ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

void RewriteCache::Insert(const std::string& key,
                          std::shared_ptr<const PreparedRewrite> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entry->epoch != epoch_) {
    if (!entries_.empty()) {
      entries_.clear();
      ++stats_.invalidations;
    }
    epoch_ = entry->epoch;
  }
  if (entries_.size() >= kMaxEntries && entries_.find(key) == entries_.end()) {
    entries_.erase(entries_.begin());
  }
  entries_[key] = std::move(entry);
}

RewriteCacheStats RewriteCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t RewriteCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void RewriteCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace sieve
