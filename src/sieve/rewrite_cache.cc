#include "sieve/rewrite_cache.h"

#include <algorithm>
#include <cctype>

namespace sieve {

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  size_t i = 0;
  const size_t n = sql.size();
  bool pending_space = false;
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      pending_space = !out.empty();
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      // Block comment: stripped like the lexer strips it. If unterminated,
      // copy the tail verbatim so the lexer still reports the error on the
      // normalized text (normalization must not make invalid SQL valid).
      size_t start = i;
      i += 2;
      while (i + 1 < n && !(sql[i] == '*' && sql[i + 1] == '/')) ++i;
      if (i + 1 >= n) {
        if (pending_space) out += ' ';
        out.append(sql, start, std::string::npos);
        break;
      }
      i += 2;
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    if (c == '\'' || c == '"') {
      // Copy quoted strings verbatim, honoring doubled-quote escapes; the
      // lexer rejects unterminated literals later, so a lone quote just
      // passes through untouched.
      char quote = c;
      out += sql[i++];
      while (i < n) {
        out += sql[i];
        if (sql[i] == quote) {
          if (i + 1 < n && sql[i + 1] == quote) {
            out += sql[i + 1];
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

std::string RewriteCache::MakeKey(const std::string& querier,
                                  const std::string& purpose,
                                  const std::string& profile,
                                  const std::string& normalized_sql) {
  // '\x1f' (unit separator) cannot appear in identifiers or survive
  // normalization, so the concatenation is unambiguous.
  std::string key;
  key.reserve(querier.size() + purpose.size() + profile.size() +
              normalized_sql.size() + 3);
  key += querier;
  key += '\x1f';
  key += purpose;
  key += '\x1f';
  key += profile;
  key += '\x1f';
  key += normalized_sql;
  return key;
}

std::shared_ptr<const PreparedRewrite> RewriteCache::Lookup(
    const std::string& key, bool authoritative) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (authoritative) ++stats_.misses;
    return nullptr;
  }
  if (it->second.rewrite->stale()) {
    // Invalidation marks entries stale before erasing them, so a stale
    // resident entry should not normally exist — but a concurrent holder
    // could re-Insert one (watermark permitting). Treat it as a miss and
    // drop it so the slot is re-prepared.
    EraseLocked(it);
    if (authoritative) ++stats_.misses;
    return nullptr;
  }
  // Refresh recency: move to MRU position.
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  return it->second.rewrite;
}

void RewriteCache::Insert(const std::string& key,
                          std::shared_ptr<const PreparedRewrite> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entry->epoch < max_epoch_) {
    // Out-of-order insert: this rewrite was produced before a policy
    // mutation the cache has already seen. Caching it would serve a
    // pre-mutation rewrite as current; refuse it — and mark it stale, so
    // the preparing session that still holds it re-prepares on its next
    // Execute. A refused entry is non-resident and therefore invisible to
    // keyed invalidation; left unmarked it could execute its pre-mutation
    // rewrite indefinitely.
    entry->mark_stale();
    ++stats_.stale_drops;
    return;
  }
  max_epoch_ = entry->epoch;
  if (entry->stale()) {
    ++stats_.stale_drops;
    return;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Replace in place; recency refreshes to MRU. The displaced rewrite is
    // marked stale (mirroring InvalidateTable) so any holder of the old
    // shared_ptr re-prepares instead of diverging from what the cache now
    // serves for this key.
    it->second.rewrite->mark_stale();
    UnindexEntry(key, *it->second.rewrite);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    it->second.rewrite = std::move(entry);
    IndexEntry(key, *it->second.rewrite);
    return;
  }
  while (entries_.size() >= capacity_ && !lru_.empty()) {
    auto victim = entries_.find(lru_.back());
    if (victim != entries_.end()) {
      // Eviction is capacity management, not invalidation: the entry is
      // NOT marked stale — a PreparedQuery still holding it keeps
      // executing it validly. It does stay reachable by *future* keyed
      // invalidation through the weak evicted index, so a policy mutation
      // after eviction still marks it stale for its holders.
      TrackEvictedLocked(victim->second.rewrite);
      EraseLocked(victim);
      ++stats_.evictions;
    } else {
      lru_.pop_back();
    }
  }
  lru_.push_front(key);
  Entry e;
  e.rewrite = std::move(entry);
  e.lru_it = lru_.begin();
  IndexEntry(key, *e.rewrite);
  entries_.emplace(key, std::move(e));
}

size_t RewriteCache::InvalidateTable(
    const std::string& table_lower,
    const std::function<bool(const PreparedRewrite&)>& affects) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  auto idx = by_table_.find(table_lower);
  if (idx != by_table_.end()) {
    // Collect first: EraseLocked mutates by_table_ buckets.
    std::vector<std::string> keys(idx->second.begin(), idx->second.end());
    for (const auto& key : keys) {
      auto it = entries_.find(key);
      if (it == entries_.end()) continue;
      const PreparedRewrite& rw = *it->second.rewrite;
      if (affects && !affects(rw)) continue;
      rw.mark_stale();
      EraseLocked(it);
      ++count;
    }
  }
  // Evicted-but-held entries depend on this table too: their holders keep
  // executing them past eviction, so the mutation must reach them as well.
  auto ev = evicted_by_table_.find(table_lower);
  if (ev != evicted_by_table_.end()) {
    auto& bucket = ev->second;
    for (auto wit = bucket.begin(); wit != bucket.end();) {
      std::shared_ptr<const PreparedRewrite> held = wit->lock();
      if (!held) {
        wit = bucket.erase(wit);  // last holder dropped it; purge the slot
        continue;
      }
      if (held->stale()) {
        // Already invalidated through another dependency table; don't
        // double-count.
        wit = bucket.erase(wit);
        continue;
      }
      if (affects && !affects(*held)) {
        ++wit;
        continue;
      }
      held->mark_stale();
      ++count;
      wit = bucket.erase(wit);
    }
    if (bucket.empty()) evicted_by_table_.erase(ev);
  }
  stats_.invalidations += count;
  return count;
}

size_t RewriteCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = entries_.size();
  for (auto& kv : entries_) kv.second.rewrite->mark_stale();
  for (auto& [table, bucket] : evicted_by_table_) {
    for (auto& weak : bucket) {
      std::shared_ptr<const PreparedRewrite> held = weak.lock();
      if (held && !held->stale()) {  // skip expired and multi-table repeats
        held->mark_stale();
        ++count;
      }
    }
  }
  entries_.clear();
  lru_.clear();
  by_table_.clear();
  evicted_by_table_.clear();
  stats_.invalidations += count;
  return count;
}

RewriteCacheStats RewriteCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t RewriteCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void RewriteCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  by_table_.clear();
  evicted_by_table_.clear();
}

void RewriteCache::TrackEvictedLocked(
    const std::shared_ptr<const PreparedRewrite>& rewrite) {
  // use_count() == 1 under mu_ means the cache's reference is the only
  // one left, and no new external holder can be minted concurrently
  // (holders only obtain copies through Lookup/Insert, which require mu_):
  // nothing to keep invalidatable. This keeps the common one-shot-SQL
  // eviction path free of weak-index growth.
  if (rewrite.use_count() == 1) return;
  for (const auto& table : rewrite->dep_tables) {
    auto& bucket = evicted_by_table_[table];
    // Purge expired slots so the bucket tracks live holders, not eviction
    // history.
    bucket.erase(
        std::remove_if(bucket.begin(), bucket.end(),
                       [](const std::weak_ptr<const PreparedRewrite>& w) {
                         return w.expired();
                       }),
        bucket.end());
    bucket.push_back(rewrite);
  }
}

void RewriteCache::IndexEntry(const std::string& key,
                              const PreparedRewrite& rewrite) {
  for (const auto& table : rewrite.dep_tables) {
    by_table_[table].insert(key);
  }
}

void RewriteCache::UnindexEntry(const std::string& key,
                                const PreparedRewrite& rewrite) {
  for (const auto& table : rewrite.dep_tables) {
    auto it = by_table_.find(table);
    if (it == by_table_.end()) continue;
    it->second.erase(key);
    if (it->second.empty()) by_table_.erase(it);
  }
}

void RewriteCache::EraseLocked(
    std::unordered_map<std::string, Entry>::iterator it) {
  UnindexEntry(it->first, *it->second.rewrite);
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

}  // namespace sieve
