#ifndef SIEVE_SIEVE_AUDIT_LOG_H_
#define SIEVE_SIEVE_AUDIT_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/exec_stats.h"
#include "common/metadata.h"
#include "engine/database.h"
#include "sieve/rewrite_cache.h"

namespace sieve {

/// How the rewrite an execution ran with was obtained (the cache
/// disposition the audit trail records):
///   kMiss    — freshly rewritten (first Prepare of this key, or a one-shot
///              Execute whose normalized SQL was not cached);
///   kHit     — served from the shared RewriteCache / an already-held
///              PreparedQuery snapshot, still valid;
///   kRefresh — the held snapshot had been marked stale by keyed
///              invalidation and this execution transparently re-prepared.
enum class AuditCacheState { kMiss, kHit, kRefresh };

const char* AuditCacheStateName(AuditCacheState s);

/// One enforcement decision: for one query execution, which policies
/// matched, which guards fired, what access strategies the rewrite chose,
/// how the rewrite cache behaved, and what the engine reported back
/// (ExecStats totals). Produced by the session layer after every
/// execution — one record per Execute / drained cursor — and queryable
/// once flushed into the `sieve_audit` engine table.
struct AuditRecord {
  int64_t seq = 0;           ///< monotonic per middleware, assigned by Append
  std::string querier;       ///< metadata the query executed under
  std::string purpose;
  std::string sql;           ///< normalized original SQL (pre-rewrite)
  std::string tables;        ///< comma-joined protected tables rewritten
  std::string policy_ids;    ///< comma-joined ids of the policies that matched
  std::string guard_ids;     ///< comma-joined ids of the guards that fired
  int64_t num_policies = 0;  ///< Σ matched policies across protected tables
  int64_t num_guards = 0;    ///< Σ guards across protected tables
  int64_t num_delta_guards = 0;  ///< guards evaluated through the Δ operator
  std::string strategies;    ///< comma-joined per-table access strategies
  bool default_denied = false;   ///< some protected table had no applicable policy
  AuditCacheState cache = AuditCacheState::kMiss;
  int64_t rows_out = 0;      ///< rows the querier actually received
  int64_t comparisons = 0;   ///< ExecStats.comparisons of the run
  int64_t policy_evals = 0;  ///< ExecStats.policy_evals of the run
};

/// Enforcement audit log (GDPR Art. 30-style record of processing): a
/// bounded in-memory ring of AuditRecords, flushed on demand into a real
/// engine table (`sieve_audit`) so the audit trail is itself queryable
/// through the middleware like any other relation.
///
/// ## Lifecycle
///
/// The session layer Appends one record per execution (leaf mutex — safe
/// from any number of concurrent sessions holding the middleware state
/// lock shared). Records accumulate in the pending ring; when the ring is
/// full the oldest pending record is dropped and counted (`dropped()`),
/// bounding memory under a flush-starved firehose. Flush() drains the
/// pending ring into `sieve_audit` — it mutates an engine table, so the
/// caller must hold the middleware state lock exclusively (queries must
/// not scan the table mid-insert); SieveMiddleware::FlushAuditLog does
/// exactly that, and the session layer auto-flushes before executing any
/// query that reads `sieve_audit`.
///
/// Threading: Append/pending()/dropped()/total_appended() take the leaf
/// mutex and never call out; Init/Flush additionally touch the engine and
/// rely on the caller's exclusive middleware lock for table consistency.
class AuditLog {
 public:
  static constexpr const char* kTableName = "sieve_audit";
  /// Pending-ring capacity: bounds memory between flushes, not the table.
  static constexpr size_t kDefaultCapacity = 8192;

  explicit AuditLog(Database* db, size_t capacity = kDefaultCapacity)
      : db_(db), capacity_(capacity == 0 ? 1 : capacity) {}

  /// Creates the `sieve_audit` table and its seq/querier indexes
  /// (idempotent).
  Status Init();

  /// Builds the record for one execution from the rewrite snapshot it ran
  /// with and the stats it produced. Does not assign `seq` — Append does.
  static AuditRecord MakeRecord(const QueryMetadata& md,
                                const PreparedRewrite& rewrite,
                                AuditCacheState cache, const ExecStats& stats);

  /// Appends a record to the pending ring, assigning and returning its
  /// sequence number. Thread-safe; never blocks on the engine.
  int64_t Append(AuditRecord record);

  /// Drains every pending record into `sieve_audit`. Caller must exclude
  /// concurrent query execution (see class comment). Records are gone from
  /// the ring whether or not the insert succeeds (a failed flush is
  /// reported, not retried); records lost to a failed flush are counted in
  /// unflushed().
  Status Flush();

  /// Retention bound on the `sieve_audit` table itself: when a Flush
  /// leaves more than `n` live rows, the oldest rows (lowest seq) are
  /// deleted first until the bound holds. 0 = unbounded. Thread-safe;
  /// takes effect at the next Flush.
  void set_max_table_rows(size_t n);
  size_t max_table_rows() const;

  /// Records appended and not yet flushed (nor dropped).
  size_t pending() const;
  /// Records lost to ring overflow since construction.
  uint64_t dropped() const;
  /// Records drained by a Flush that could not be inserted into
  /// `sieve_audit` (the flush failed partway): they are gone, and this
  /// counter is the only trace. Surfaced as MiddlewareHealth::
  /// audit_unflushed so shutdown-time flush failures are visible.
  uint64_t unflushed() const;
  /// `sieve_audit` rows removed by the retention bound since construction.
  uint64_t truncated() const;
  /// Total records ever appended (= the last assigned seq).
  int64_t total_appended() const;

  /// Snapshot of the newest `n` pending records (in-memory inspection
  /// without flushing; newest last).
  std::vector<AuditRecord> PendingTail(size_t n) const;

 private:
  /// Deletes oldest rows until <= max_table_rows_ remain (caller holds the
  /// middleware state lock exclusively, like Flush itself).
  Status EnforceRetention();

  Database* db_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<AuditRecord> pending_;
  int64_t next_seq_ = 1;
  uint64_t dropped_ = 0;
  uint64_t unflushed_ = 0;
  uint64_t truncated_ = 0;
  size_t max_table_rows_ = 0;  ///< 0 = unbounded
};

}  // namespace sieve

#endif  // SIEVE_SIEVE_AUDIT_LOG_H_
