#ifndef SIEVE_SIEVE_GUARD_STORE_H_
#define SIEVE_SIEVE_GUARD_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/database.h"
#include "policy/policy_store.h"
#include "sieve/guard.h"

namespace sieve {

/// One guarded-expression mutation (Put or MarkOutdated), reported to the
/// registered listener for keyed cache invalidation. Strings are
/// lower-cased.
struct GuardMutationEvent {
  std::string querier;
  std::string purpose;
  std::string table;
};

/// Identifies a guarded expression, lower-cased (GuardStore keys are
/// case-insensitive — the engine matches table and querier names with
/// EqualsIgnoreCase everywhere else, so differently-cased spellings must hit
/// the same entry).
struct GuardKey {
  std::string querier;
  std::string purpose;
  std::string table;
};

/// Persistence and caching of guarded policy expressions (Section 5.1):
///   rGE (id, querier, associated_table, purpose, action, outdated,
///        ts_inserted_at)
///   rGG (id, guard_expression_id, attr, op, val)        — the guards
///   rGP (guard_id, policy_id)                            — the partitions
/// The in-memory map is authoritative at query time; the `outdated` flag
/// implements the paper's lazy regeneration: policy inserts only flip the
/// flag, and the guarded expression is rebuilt when its querier next poses
/// a query.
class GuardStore {
 public:
  GuardStore(Database* db, const PolicyStore* policies)
      : db_(db), policies_(policies) {}

  /// Creates rGE / rGG / rGP (idempotent).
  Status Init();

  /// Stores a freshly generated guarded expression (assigning guard ids),
  /// persists it, clears the outdated flag and invalidates Δ caches.
  Result<int64_t> Put(GuardedExpression ge);

  /// The cached guarded expression for a key; nullptr when never generated.
  const GuardedExpression* Get(const std::string& querier,
                               const std::string& purpose,
                               const std::string& table) const;

  bool IsOutdated(const std::string& querier, const std::string& purpose,
                  const std::string& table) const;

  /// Flips the outdated flag (called on policy insertions for the key).
  void MarkOutdated(const std::string& querier, const std::string& purpose,
                    const std::string& table);

  /// Marks outdated every stored guarded expression on `table`
  /// (case-insensitive) whose GE satisfies `pred`, and returns the
  /// lower-cased keys of the entries flipped. Used by incremental
  /// regeneration to invalidate exactly the candidate sets a policy insert
  /// changed — including group grants, where the affected GEs belong to the
  /// group's members rather than to the policy's own querier string.
  std::vector<GuardKey> MarkOutdatedWhere(
      const std::string& table,
      const std::function<bool(const GuardedExpression&)>& pred);

  /// Guard lookup by id (the Δ UDF's entry point).
  const Guard* FindGuard(int64_t guard_id) const;

  /// Policies of a guard's partition grouped by owner value — the context
  /// filter the Δ operator applies before evaluating object conditions.
  struct DeltaPolicyEntry {
    int64_t policy_id;
    ExprPtr object_expr;  // self-contained clone; survives policy mutations
  };
  struct DeltaPartition {
    std::unordered_map<std::string, std::vector<DeltaPolicyEntry>> by_owner;
    /// The object expressions above are shared by every worker evaluating
    /// this guard, and binding them mutates expression nodes in place — so
    /// the Δ UDF binds them against the tuple schema exactly once (under
    /// this flag) and treats them as immutable afterwards.
    mutable std::once_flag bind_once;
    mutable Status bind_status = Status::OK();
  };
  /// Thread-safe: concurrent scan partitions evaluating Δ race to build the
  /// same partition; the cache is mutex-guarded and the returned pointer is
  /// stable for the partition's lifetime (invalidated only by Put).
  Result<const DeltaPartition*> GetDeltaPartition(int64_t guard_id);

  size_t size() const { return memory_.size(); }

  /// Monotonic mutation counter, bumped when guarded expressions change
  /// (Put) or are invalidated (MarkOutdated). Together with
  /// PolicyStore::version it forms the middleware's policy epoch — a
  /// monotonicity watermark; cache validity is per-key.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Per-(querier, purpose, table) mutation counter (case-insensitive).
  uint64_t KeyVersion(const std::string& querier, const std::string& purpose,
                      const std::string& table) const;

  /// Registers the callback fired synchronously by Put / MarkOutdated /
  /// MarkOutdatedWhere after the change is applied. At most one listener
  /// (the middleware); runs under the mutator's lock and must not call back
  /// into the store.
  void set_mutation_listener(std::function<void(const GuardMutationEvent&)> l) {
    listener_ = std::move(l);
  }

 private:
  void BumpVersion() { version_.fetch_add(1, std::memory_order_release); }
  /// Internal map key. Always constructed through Make(), which lower-cases
  /// every field: lookups and mutations reach the same entry regardless of
  /// the casing callers use (the engine compares identifiers with
  /// EqualsIgnoreCase everywhere else — a case-sensitive key here made
  /// MarkOutdated("WifiData") miss the entry IsOutdated("wifidata") checks,
  /// serving stale guards).
  struct Key {
    std::string querier, purpose, table;
    static Key Make(const std::string& querier, const std::string& purpose,
                    const std::string& table);
    bool operator<(const Key& other) const;
  };
  struct Entry {
    GuardedExpression ge;
    bool outdated = false;
  };

  Status Persist(const GuardedExpression& ge);

  Database* db_;
  const PolicyStore* policies_;
  std::map<Key, Entry> memory_;
  std::unordered_map<int64_t, Key> guard_owner_;  // guard id -> GE key
  std::unordered_map<int64_t, std::unique_ptr<DeltaPartition>> delta_cache_;
  mutable std::mutex delta_mu_;  // guards delta_cache_ during execution
  int64_t next_ge_id_ = 1;
  int64_t next_guard_id_ = 1;
  int64_t next_gg_row_id_ = 1;
  int64_t logical_clock_ = 1;
  std::atomic<uint64_t> version_{0};
  /// Lower-cased "querier\x1fpurpose\x1ftable" -> mutation count.
  std::unordered_map<std::string, uint64_t> key_versions_;
  std::function<void(const GuardMutationEvent&)> listener_;

  void BumpKey(const Key& key);    // bump key version + notify listener
};

}  // namespace sieve

#endif  // SIEVE_SIEVE_GUARD_STORE_H_
