#ifndef SIEVE_SIEVE_SESSION_H_
#define SIEVE_SIEVE_SESSION_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "sieve/middleware.h"
#include "sieve/rewrite_cache.h"

namespace sieve {

/// Streaming result of one prepared-query execution: rows are pulled in
/// chunks through Next instead of materializing a full ResultSet, reusing
/// the engine's partition machinery (serial executions stream; parallel
/// ones buffer once and serve slices — rows and order are identical).
///
/// An open cursor pins the policy corpus it was opened under: it holds the
/// middleware's state lock shared, so AddPolicy/set_options block until
/// the cursor finishes. The pin is released as soon as the stream ends —
/// exhaustion, a sticky execution error, Close(), or destruction,
/// whichever comes first — so a finished cursor may outlive its scope
/// without blocking writers.
///
/// IMPORTANT — while a cursor is live (opened, not yet finished), its
/// owner must not call back into the middleware: no Prepare of new SQL
/// (a cache miss takes the state lock exclusively and would wait forever
/// on this cursor's own pin), no AddPolicy/set_options, and no concurrent
/// Execute or second cursor (recursive shared acquisition of the state
/// gate deadlocks once a writer queues). Drain the cursor or Close() it
/// first; interleaving work belongs in a different session. Use from one
/// thread at a time, but not thread-affine: the pin is a SharedGate
/// token, so a cursor may be handed between threads (opened by one server
/// worker, fetched by another, torn down by the reaper) — exactly what
/// the network front-end does. Movable.
class ResultCursor {
 public:
  static constexpr size_t kDefaultBatchRows = 1024;

  ResultCursor(ResultCursor&&) = default;
  ResultCursor& operator=(ResultCursor&& other) {
    if (this != &other) {
      Finish();
      epoch_lock_ = std::move(other.epoch_lock_);
      metadata_ = std::move(other.metadata_);
      bound_stmt_ = std::move(other.bound_stmt_);
      cursor_ = std::move(other.cursor_);
      audit_ = other.audit_;
      audit_record_ = std::move(other.audit_record_);
    }
    return *this;
  }
  /// A dropped cursor still finishes its audit record (stats as of the
  /// last Next) — every execution leaves exactly one audit entry.
  ~ResultCursor() { Finish(); }

  const Schema& schema() const { return cursor_->schema(); }

  /// Appends up to `max_rows` (> 0) rows to *batch (not cleared).
  /// Returns true when rows were appended, false once exhausted.
  /// Execution errors are sticky.
  Result<bool> Next(std::vector<Row>* batch,
                    size_t max_rows = kDefaultBatchRows) {
    auto more = cursor_->Next(batch, max_rows);
    if (cursor_->exhausted()) Finish();
    return more;
  }

  /// Pulls everything remaining into a ResultSet (stats finalized).
  Result<ResultSet> Drain() {
    auto result = cursor_->Drain();
    Finish();
    return result;
  }

  /// Abandons the rest of the stream and releases the epoch pin early —
  /// the LIMIT-style exit: read the first rows, Close(), then resume
  /// normal session work. The cursor only reports exhaustion afterwards;
  /// stats() keeps the totals accumulated so far.
  void Close() {
    cursor_->Abandon();
    Finish();
  }

  bool exhausted() const { return cursor_->exhausted(); }
  /// Counter totals so far; final — and byte-identical to a one-shot
  /// Execute of the same query — once exhausted() is true.
  const ExecStats& stats() const { return cursor_->stats(); }

  /// Shrinks the remaining execution budget so the stream times out at
  /// most `seconds_from_now` from this call; never extends it. Backs the
  /// per-FETCH wire deadline (see server/wire.h).
  void TightenDeadline(double seconds_from_now) {
    cursor_->TightenDeadline(seconds_from_now);
  }

 private:
  friend class PreparedQuery;
  ResultCursor(std::shared_lock<SharedGate> epoch_lock,
               std::unique_ptr<QueryMetadata> metadata, SelectStmtPtr bound,
               std::unique_ptr<QueryCursor> cursor, AuditLog* audit,
               std::unique_ptr<AuditRecord> audit_record)
      : epoch_lock_(std::move(epoch_lock)),
        metadata_(std::move(metadata)),
        bound_stmt_(std::move(bound)),
        cursor_(std::move(cursor)),
        audit_(audit),
        audit_record_(std::move(audit_record)) {}

  /// First finish wins (exhaustion, Drain, Close or destruction): stamps
  /// the cursor's final ExecStats totals into the pending audit record,
  /// appends it (leaf lock — safe while still holding the epoch pin
  /// shared), then releases the pin.
  void Finish() {
    if (audit_record_ != nullptr && audit_ != nullptr) {
      const ExecStats& s = cursor_->stats();
      audit_record_->rows_out = static_cast<int64_t>(s.rows_output);
      audit_record_->comparisons = static_cast<int64_t>(s.comparisons);
      audit_record_->policy_evals = static_cast<int64_t>(s.policy_evals);
      audit_->Append(std::move(*audit_record_));
    }
    audit_record_.reset();
    if (epoch_lock_.owns_lock()) epoch_lock_.unlock();
  }

  std::shared_lock<SharedGate> epoch_lock_;  // pins the policy epoch
  std::unique_ptr<QueryMetadata> metadata_;         // referenced by cursor_
  SelectStmtPtr bound_stmt_;                        // keeps the plan's source alive
  std::unique_ptr<QueryCursor> cursor_;
  AuditLog* audit_ = nullptr;                  // null when auditing is off
  std::unique_ptr<AuditRecord> audit_record_;  // pending until Finish
};

/// A query prepared once through SieveSession::Prepare: parsed, rewritten
/// against the querier's policies and cached, ready to execute repeatedly
/// with different parameter bindings. Holds an immutable snapshot of the
/// rewrite; when a policy or guard mutation touches one of *this* query's
/// dependency keys — its querier/purpose or a table it references — the
/// snapshot is marked stale and the next Execute transparently re-prepares
/// (through the shared cache). Mutations on other queriers' keys leave the
/// snapshot valid, so results always reflect a consistent policy corpus
/// without paying for unrelated churn.
///
/// Single-threaded like its session; movable. Results are byte-identical
/// — rows, row order and ExecStats — to a one-shot
/// SieveMiddleware::Execute of the same SQL with literals in place of
/// parameters bound to the same values.
class PreparedQuery {
 public:
  PreparedQuery(PreparedQuery&&) = default;
  PreparedQuery& operator=(PreparedQuery&&) = default;

  /// Executes with positional bindings: params[i] replaces slot i (each
  /// `?` in parse order; every occurrence of one `:name` shares a slot).
  /// Requires exactly parameter_count() values; binding NULL is allowed
  /// and compares as SQL NULL (matches nothing).
  ///
  /// `deadline_seconds` > 0 caps this execution's time budget: the
  /// effective timeout is the smaller of it and the middleware's
  /// configured SieveOptions::timeout_seconds, and overrunning it returns
  /// Status::Timeout like any other query timeout. 0 keeps the configured
  /// budget. This is how a per-request wire deadline reaches the
  /// ExecContext timeout epoch.
  Result<ResultSet> Execute(const std::vector<Value>& params = {},
                            double deadline_seconds = 0.0);

  /// Executes with named bindings. Every slot must carry a name (prepare
  /// with `:name` placeholders, not `?`); names are case-insensitive, and
  /// unknown or duplicate names are errors.
  Result<ResultSet> ExecuteNamed(
      const std::vector<std::pair<std::string, Value>>& named);

  /// Opens a streaming cursor instead of materializing the result. The
  /// cursor blocks policy mutations while open — see ResultCursor.
  /// `deadline_seconds` caps the stream's total budget exactly as in
  /// Execute (the cursor's clock starts at open and keeps running between
  /// Next calls); ResultCursor::TightenDeadline can shrink it further.
  Result<ResultCursor> OpenCursor(const std::vector<Value>& params = {},
                                  double deadline_seconds = 0.0);

  /// Number of parameter slots in the prepared statement.
  size_t parameter_count() const { return rewrite_->params.size(); }
  /// Slot names in slot order: lower-cased for `:name`, "" for `?`.
  const std::vector<std::string>& parameter_names() const {
    return rewrite_->params;
  }

  /// Whitespace-normalized original SQL.
  const std::string& sql() const { return rewrite_->normalized_sql; }
  /// Rewrite snapshot this query currently executes (diagnostics: per-table
  /// strategy, default-deny flag, rewritten SQL, epoch). Refreshed when an
  /// Execute finds the snapshot marked stale by keyed invalidation.
  std::shared_ptr<const PreparedRewrite> rewrite() const { return rewrite_; }
  const QueryMetadata& metadata() const { return md_; }

 private:
  friend class SieveSession;
  PreparedQuery(SieveMiddleware* middleware, QueryMetadata md,
                std::shared_ptr<const PreparedRewrite> rewrite, bool from_cache)
      : mw_(middleware),
        md_(std::move(md)),
        rewrite_(std::move(rewrite)),
        next_cache_(from_cache ? AuditCacheState::kHit
                               : AuditCacheState::kMiss) {}

  /// Re-prepares against the current policy corpus (authoritative: takes
  /// the middleware's writer lock on a cache miss).
  Status Refresh();
  /// Maps named bindings onto the positional signature.
  Result<std::vector<Value>> ResolveNamed(
      const std::vector<std::pair<std::string, Value>>& named) const;
  /// Flushes pending audit records before executing a query that reads
  /// `sieve_audit` (before taking the shared state lock, to avoid a
  /// shared→exclusive upgrade).
  Status MaybeFlushAuditReads();
  /// Cache disposition of the execution about to run: kRefresh when this
  /// Execute re-prepared a stale snapshot (`refreshed`), else the pending
  /// state — kMiss on the first run of a freshly rewritten snapshot, kHit
  /// afterwards.
  AuditCacheState TakeCacheState(bool refreshed) {
    AuditCacheState s =
        refreshed ? AuditCacheState::kRefresh : next_cache_;
    next_cache_ = AuditCacheState::kHit;
    return s;
  }

  SieveMiddleware* mw_;
  QueryMetadata md_;
  std::shared_ptr<const PreparedRewrite> rewrite_;
  /// Audit attribution of the next execution (see TakeCacheState).
  AuditCacheState next_cache_ = AuditCacheState::kMiss;
};

/// One querier's connection to the middleware (Section 5 casts Sieve as a
/// middleware in front of the DBMS; the session is the unit a connection
/// pool hands out). Sessions are cheap — a pointer and the querier's
/// metadata — so a server creates one per connection; any number may
/// prepare and execute concurrently against one SieveMiddleware, sharing
/// its rewrite cache and keyed-invalidation machinery.
///
/// Use one session (and its prepared queries) from one thread at a time.
class SieveSession {
 public:
  SieveSession(SieveMiddleware* middleware, QueryMetadata md)
      : mw_(middleware), md_(std::move(md)) {}

  /// Parses and rewrites `sql` once (served from the shared RewriteCache
  /// when the same querier prepared the same normalized SQL and no mutation
  /// has touched its dependency keys since). `?` and `:name` placeholders
  /// become parameter slots bound at Execute time.
  Result<PreparedQuery> Prepare(const std::string& sql);

  /// Prepare + Execute in one call (still cache-amortized).
  Result<ResultSet> Execute(const std::string& sql,
                            const std::vector<Value>& params = {});

  const QueryMetadata& metadata() const { return md_; }
  SieveMiddleware& middleware() { return *mw_; }

 private:
  friend class PreparedQuery;

  /// Cache-through rewrite: optimistic lock-free lookup, then the
  /// authoritative path under the middleware's writer lock (rewriting may
  /// regenerate outdated guards, which mutates the guard store). Sets
  /// *from_cache (when non-null) to whether the rewrite was served from
  /// the shared cache rather than freshly produced — the audit log's
  /// hit/miss attribution.
  static Result<std::shared_ptr<const PreparedRewrite>> PrepareRewrite(
      SieveMiddleware* mw, const QueryMetadata& md,
      const std::string& normalized_sql, bool optimistic,
      bool* from_cache = nullptr);

  SieveMiddleware* mw_;
  QueryMetadata md_;
};

}  // namespace sieve

#endif  // SIEVE_SIEVE_SESSION_H_
