#ifndef SIEVE_SIEVE_MIDDLEWARE_H_
#define SIEVE_SIEVE_MIDDLEWARE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/shared_gate.h"
#include "engine/database.h"
#include "policy/policy_store.h"
#include "sieve/audit_log.h"
#include "sieve/cost_model.h"
#include "sieve/dynamic.h"
#include "sieve/guard_store.h"
#include "sieve/rewrite_cache.h"
#include "sieve/rewriter.h"

namespace sieve {

class SieveSession;
class PreparedQuery;
class ResultCursor;

/// Tuning knobs of the middleware. Snapshotted at construction; updated
/// atomically afterwards through SieveMiddleware::set_options.
struct SieveOptions {
  /// Query timeout in seconds (the paper's experiments use 30 s; 0 = none).
  double timeout_seconds = 30.0;
  /// Run cost-model calibration micro-benchmarks at Init (otherwise the
  /// compiled-in defaults are used). Only honored at Init.
  bool calibrate_cost_model = false;
  /// Regeneration mode for dynamic policy insertions.
  RegenerationMode regeneration_mode = RegenerationMode::kLazy;
  /// Partition-parallel execution: guarded scans *and* the interiors of
  /// UNION / hash join / hash aggregate / EXCEPT run on this many worker
  /// threads (morsel-scheduled — see ARCHITECTURE.md). 1 (the default)
  /// preserves serial behavior; parallel runs return the same rows in the
  /// same order with the same ExecStats totals, just faster on multi-core
  /// hardware.
  int num_threads = 1;
  /// Rows per execution batch of the vectorized executor: scans emit
  /// whole morsels, guard/Δ predicates run as column kernels once per
  /// batch, timeout checks amortize across the batch. 1 reproduces the
  /// legacy row-at-a-time execution; 0 picks an adaptive per-operator
  /// size from the row width (EffectiveBatchSize). Every value returns
  /// identical rows, order and ExecStats. Must be >= 0 (validated by
  /// set_options).
  int batch_size = static_cast<int>(kDefaultBatchSize);
  /// Record every enforcement decision in the audit log (sessions append
  /// one AuditRecord per execution; FlushAuditLog materializes them into
  /// the queryable `sieve_audit` table). Off saves the per-execution
  /// bookkeeping for microbenchmarks.
  bool audit_log = true;
  /// Retention bound on the queryable `sieve_audit` table: when a flush
  /// leaves more than this many live rows, the oldest rows (lowest seq)
  /// are truncated first until the bound holds. 0 (the default) keeps the
  /// table unbounded — the pre-retention behavior. Must be >= 0; truncated
  /// rows are counted in AuditLog::truncated().
  int64_t audit_max_rows = 0;
};

/// One-stop health snapshot for operational surfaces (the server STATS
/// command, bench metadata): rewrite-cache behavior, audit-log pressure
/// and the policy epoch, read from their leaf-locked counters without
/// touching the state gate.
struct MiddlewareHealth {
  RewriteCacheStats cache;
  size_t audit_pending = 0;       ///< records appended, not yet flushed
  uint64_t audit_dropped = 0;     ///< pending-ring overflow losses
  uint64_t audit_unflushed = 0;   ///< records lost to failed flushes
  int64_t audit_total = 0;        ///< records ever appended
  uint64_t audit_truncated = 0;   ///< sieve_audit rows removed by retention
  uint64_t policy_epoch = 0;
};

/// The Sieve middleware facade (Section 5): intercepts queries, rewrites
/// them into policy-compliant queries using guarded expressions and the Δ
/// operator, and submits them to the underlying engine. One instance per
/// Database.
///
/// ## Sessions, keyed invalidation and the rewrite cache
///
/// The middleware is session-oriented: each querier/connection opens a
/// cheap SieveSession (see sieve/session.h) and prepares its queries once
/// — `Prepare` parses and rewrites, `Execute` binds parameters and runs
/// the cached rewrite, amortizing guard selection across the query
/// stream. Rewrites live in a shared RewriteCache keyed by (querier,
/// purpose, engine profile, normalized SQL) and invalidated **per
/// dependency key**: the middleware registers mutation listeners on the
/// policy and guard stores, and each mutation event names the
/// (querier, purpose, table) grant key it touched — only cached rewrites
/// that reference that table *and* whose metadata the grant reaches
/// (directly or via group membership, GrantMatchesMetadata) are marked
/// stale. Unaffected queriers' rewrites keep hitting through sustained
/// policy churn; the global policy_epoch() remains as a monotonicity
/// watermark and diagnostic, not as the validity check.
///
/// ## Threading
///
/// Many sessions may prepare and execute concurrently. Internally a
/// reader-writer lock partitions the work: executions (and open cursors)
/// hold it shared; store mutations (AddPolicy, set_options) and
/// cache-miss rewrites (which may regenerate guards) hold it exclusively.
/// Consequently AddPolicy blocks until in-flight executions and open
/// cursors finish, and vice versa — a query observes either the pre- or
/// the post-insert policy corpus, never a torn mix. Each individual
/// session (and its PreparedQuery/ResultCursor objects) is single-
/// threaded; concurrency is across sessions.
class SieveMiddleware {
 public:
  SieveMiddleware(Database* db, const GroupResolver* resolver,
                  SieveOptions options = {})
      : db_(db),
        resolver_(resolver),
        options_(options),
        policies_(db),
        guards_(db, &policies_),
        rewriter_(db, &policies_, &guards_, &cost_, resolver),
        dynamics_(db, &policies_, &guards_, &cost_, resolver),
        audit_log_(db) {
    audit_log_.set_max_table_rows(
        options_.audit_max_rows < 0 ? 0
                                    : static_cast<size_t>(options_.audit_max_rows));
    RegisterInvalidationListeners();
  }

  /// Best-effort flush of the pending audit ring: enforcement records
  /// produced just before the middleware goes away are materialized into
  /// `sieve_audit` rather than silently dropped (a failure leaves them
  /// counted in AuditLog::unflushed(), though the middleware is gone to
  /// report it).
  ~SieveMiddleware();

  /// Creates the policy/guard catalog tables (including the `sieve_audit`
  /// audit table), registers the Δ UDF and (optionally) calibrates the
  /// cost model.
  Status Init();

  /// Adds a policy through the dynamic manager (marks affected guards
  /// outdated / regenerates per the configured mode). The store mutation
  /// listeners invalidate exactly the cached rewrites whose dependency keys
  /// the insert touches; blocks while queries are executing.
  Result<int64_t> AddPolicy(Policy policy);

  /// Rewrites without executing (inspection, tests, benches). Bypasses
  /// the rewrite cache; may regenerate outdated guards.
  Result<RewriteResult> Rewrite(const std::string& sql,
                                const QueryMetadata& md);

  /// One-shot compatibility path: equivalent to opening a temporary
  /// SieveSession, preparing `sql` (through the shared rewrite cache) and
  /// executing it without parameters. Prefer SieveSession for repeated
  /// queries.
  Result<ResultSet> Execute(const std::string& sql, const QueryMetadata& md);

  /// Reference enforcement: appends the plain DNF of the querier's policies
  /// (no guards, no Δ, no hints) — the textbook query-rewrite semantics used
  /// as the correctness oracle in tests. Runs under the same
  /// timeout/num_threads options as Execute so differential comparisons
  /// measure the rewrite, not the configuration.
  Result<ResultSet> ExecuteReference(const std::string& sql,
                                     const QueryMetadata& md);

  /// Atomically replaces the tuning options for subsequent executions.
  /// Rejects invalid settings (num_threads < 1, negative timeout).
  /// `calibrate_cost_model` changes are ignored after Init.
  Status set_options(const SieveOptions& options);

  /// Current policy epoch: the sum of the policy- and guard-store version
  /// counters. Cached rewrites carry the epoch they were produced under —
  /// used only as a monotonicity watermark (the cache refuses to absorb an
  /// entry older than one it has seen); validity is the per-entry stale
  /// flag driven by keyed invalidation.
  uint64_t policy_epoch() const {
    return policies_.version() + guards_.version();
  }

  /// Hit/miss/invalidation counters of the shared rewrite cache.
  RewriteCacheStats rewrite_cache_stats() const {
    return rewrite_cache_.stats();
  }

  /// Health snapshot (cache + audit counters + epoch) for operational
  /// surfaces. Lock-light: reads leaf-locked counters only, safe to call
  /// from any thread at any time (server STATS, bench metadata).
  MiddlewareHealth Health() const {
    MiddlewareHealth h;
    h.cache = rewrite_cache_.stats();
    h.audit_pending = audit_log_.pending();
    h.audit_dropped = audit_log_.dropped();
    h.audit_unflushed = audit_log_.unflushed();
    h.audit_total = audit_log_.total_appended();
    h.audit_truncated = audit_log_.truncated();
    h.policy_epoch = policy_epoch();
    return h;
  }

  /// True when (querier, purpose) is a subject of the policy corpus: some
  /// policy's grant reaches this metadata directly or through group
  /// membership — the same GrantMatchesMetadata semantics the rewriter and
  /// keyed invalidation use, so authentication and enforcement can never
  /// disagree about who a policy addresses. Takes the state gate shared
  /// (the server's HELLO check runs on the general lane).
  bool IsKnownSubject(const QueryMetadata& md) const;

  /// The shared prepared-rewrite cache (benches/tests: Clear() emulates
  /// wholesale invalidation for comparison runs).
  RewriteCache& rewrite_cache() { return rewrite_cache_; }

  /// The enforcement audit log. Sessions Append to it during execution
  /// (leaf-locked); use FlushAuditLog — not AuditLog::Flush directly — to
  /// materialize pending records into the queryable `sieve_audit` table.
  AuditLog& audit_log() { return audit_log_; }

  /// Drains pending audit records into the `sieve_audit` engine table
  /// under the exclusive state lock (no query may scan the table
  /// mid-insert). Sessions call this automatically before executing any
  /// query that reads `sieve_audit`, so `SELECT ... FROM sieve_audit`
  /// through the middleware always sees a complete trail.
  Status FlushAuditLog();

  Database& db() { return *db_; }
  PolicyStore& policies() { return policies_; }
  GuardStore& guards() { return guards_; }
  CostModel& cost_model() { return cost_; }
  QueryRewriter& rewriter() { return rewriter_; }
  DynamicPolicyManager& dynamics() { return dynamics_; }
  /// Options snapshot. Do not call concurrently with set_options.
  const SieveOptions& options() const { return options_; }

 private:
  friend class SieveSession;
  friend class PreparedQuery;
  friend class ResultCursor;

  /// Hooks the policy/guard stores' mutation listeners to keyed rewrite-
  /// cache invalidation. Registered at construction so even direct store
  /// mutations (tests, benches) invalidate correctly.
  void RegisterInvalidationListeners();

  Database* db_;
  const GroupResolver* resolver_;
  SieveOptions options_;
  CostModel cost_;
  PolicyStore policies_;
  GuardStore guards_;
  QueryRewriter rewriter_;
  DynamicPolicyManager dynamics_;
  RewriteCache rewrite_cache_;
  AuditLog audit_log_;
  /// Readers: executions and open cursors. Writers: policy/guard/options
  /// mutations and cache-miss rewrites. See the class comment. A
  /// SharedGate (not a shared_mutex) so a cursor's pin can be released
  /// from a different thread than acquired it — the server multiplexes
  /// one connection's requests across workers and tears connections down
  /// from its reaper path.
  mutable SharedGate state_mu_;
};

}  // namespace sieve

#endif  // SIEVE_SIEVE_MIDDLEWARE_H_
