#ifndef SIEVE_SIEVE_MIDDLEWARE_H_
#define SIEVE_SIEVE_MIDDLEWARE_H_

#include <memory>
#include <string>

#include "engine/database.h"
#include "policy/policy_store.h"
#include "sieve/cost_model.h"
#include "sieve/dynamic.h"
#include "sieve/guard_store.h"
#include "sieve/rewriter.h"

namespace sieve {

/// Tuning knobs of the middleware.
struct SieveOptions {
  /// Query timeout in seconds (the paper's experiments use 30 s; 0 = none).
  double timeout_seconds = 30.0;
  /// Run cost-model calibration micro-benchmarks at Init (otherwise the
  /// compiled-in defaults are used).
  bool calibrate_cost_model = false;
  /// Regeneration mode for dynamic policy insertions.
  RegenerationMode regeneration_mode = RegenerationMode::kLazy;
  /// Partition-parallel execution: guarded scans *and* the interiors of
  /// UNION / hash join / hash aggregate run on this many worker threads.
  /// 1 (the default) preserves today's serial behavior; parallel runs
  /// return the same rows in the same order with the same ExecStats
  /// totals, just faster on multi-core hardware.
  int num_threads = 1;
};

/// The Sieve middleware facade (Section 5): intercepts queries, rewrites
/// them into policy-compliant queries using guarded expressions and the Δ
/// operator, and submits them to the underlying engine. One instance per
/// Database.
///
/// Threading: one query at a time per instance — rewrite and policy
/// mutation are not internally synchronized. Within one Execute call the
/// engine parallelizes per SieveOptions::num_threads; everything the
/// workers share (guard partitions, the CTE cache, indexes) is immutable
/// or lock-protected during execution.
class SieveMiddleware {
 public:
  SieveMiddleware(Database* db, const GroupResolver* resolver,
                  SieveOptions options = {})
      : db_(db),
        resolver_(resolver),
        options_(options),
        policies_(db),
        guards_(db, &policies_),
        rewriter_(db, &policies_, &guards_, &cost_, resolver),
        dynamics_(db, &policies_, &guards_, &cost_, resolver) {}

  /// Creates the policy/guard catalog tables, registers the Δ UDF and
  /// (optionally) calibrates the cost model.
  Status Init();

  /// Adds a policy through the dynamic manager (marks guards outdated /
  /// regenerates per the configured mode).
  Result<int64_t> AddPolicy(Policy policy);

  /// Rewrites without executing (inspection, tests, benches).
  Result<RewriteResult> Rewrite(const std::string& sql,
                                const QueryMetadata& md);

  /// Full middleware path: rewrite + execute under the timeout.
  Result<ResultSet> Execute(const std::string& sql, const QueryMetadata& md);

  /// Reference enforcement: appends the plain DNF of the querier's policies
  /// (no guards, no Δ, no hints) — the textbook query-rewrite semantics used
  /// as the correctness oracle in tests.
  Result<ResultSet> ExecuteReference(const std::string& sql,
                                     const QueryMetadata& md);

  Database& db() { return *db_; }
  PolicyStore& policies() { return policies_; }
  GuardStore& guards() { return guards_; }
  CostModel& cost_model() { return cost_; }
  QueryRewriter& rewriter() { return rewriter_; }
  DynamicPolicyManager& dynamics() { return dynamics_; }
  const SieveOptions& options() const { return options_; }
  /// Adjusts the parallelism degree for subsequent Execute calls (used by
  /// thread-sweep benches and the serial-vs-parallel equivalence tests).
  void set_num_threads(int num_threads) { options_.num_threads = num_threads; }

 private:
  Database* db_;
  const GroupResolver* resolver_;
  SieveOptions options_;
  CostModel cost_;
  PolicyStore policies_;
  GuardStore guards_;
  QueryRewriter rewriter_;
  DynamicPolicyManager dynamics_;
};

}  // namespace sieve

#endif  // SIEVE_SIEVE_MIDDLEWARE_H_
