#include "sieve/cost_model.h"

#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "expr/eval.h"

namespace sieve {

size_t CostModel::DeltaCrossover() const {
  // Closed form: α·n·ce = udf_inv + α·n·sel·udf_pp
  double denom = params_.alpha * (params_.ce - params_.delta_filter_selectivity *
                                                   params_.udf_per_policy);
  if (denom <= 0) return SIZE_MAX;
  double n = params_.udf_invocation / denom;
  return static_cast<size_t>(std::ceil(n));
}

double CostModel::GuardUtility(double table_rows, double guard_rows,
                               size_t partition_size) const {
  double read = GuardReadCost(guard_rows);
  double benefit = GuardBenefit(table_rows, guard_rows, partition_size);
  if (read <= 0) read = params_.cr_random;  // zero-cardinality guard
  return benefit / read;
}

double CostModel::OptimalRegenerationK(double guard_rows,
                                       double regen_cost_seconds,
                                       double queries_per_insert) const {
  double denom =
      guard_rows * params_.alpha * params_.ce * queries_per_insert;
  if (denom <= 0) return 1.0;
  return std::sqrt(4.0 * regen_cost_seconds / denom);
}

Result<double> CostModel::MeasureAlpha(Database* db, const std::string& table,
                                       const std::vector<ExprPtr>& policy_exprs,
                                       size_t sample_rows) {
  if (policy_exprs.empty()) return 0.0;
  const TableEntry* entry = db->catalog().Find(table);
  if (entry == nullptr) return Status::NotFound("no such table: " + table);
  const Table& t = *entry->table;
  Evaluator evaluator(&t.schema(), db, nullptr, nullptr);

  size_t sampled = 0;
  double checked_total = 0.0;
  Status failure = Status::OK();
  t.ForEach([&](RowId, const Row& row) {
    if (!failure.ok() || sampled >= sample_rows) return;
    ++sampled;
    size_t checked = 0;
    for (const auto& expr : policy_exprs) {
      ++checked;
      auto match = evaluator.EvalPredicate(*expr, row);
      if (!match.ok()) {
        failure = match.status();
        return;
      }
      if (*match) break;  // short-circuit like the OR evaluator
    }
    checked_total +=
        static_cast<double>(checked) / static_cast<double>(policy_exprs.size());
  });
  SIEVE_RETURN_IF_ERROR(failure);
  if (sampled == 0) return 0.0;
  return checked_total / static_cast<double>(sampled);
}

Result<CostParams> CostModel::Calibrate(Database* db, uint64_t seed) {
  CostParams params;  // defaults as fallback
  const char* kTable = "sieve_calibration_scratch";
  const int kRows = 40000;

  if (db->catalog().Find(kTable) == nullptr) {
    Schema schema({{"id", DataType::kInt},
                   {"owner", DataType::kInt},
                   {"v", DataType::kInt}});
    SIEVE_RETURN_IF_ERROR(db->CreateTable(kTable, std::move(schema)));
    Rng rng(seed);
    for (int i = 0; i < kRows; ++i) {
      Row row{Value::Int(i), Value::Int(rng.Uniform(0, 499)),
              Value::Int(rng.Uniform(0, 99999))};
      auto st = db->Insert(kTable, std::move(row));
      if (!st.ok()) return st.status();
    }
    SIEVE_RETURN_IF_ERROR(db->CreateIndex(kTable, "owner"));
    SIEVE_RETURN_IF_ERROR(db->Analyze());
  }

  auto run = [db](const std::string& sql) -> Result<double> {
    // Best of three to smooth out noise.
    double best = 1e18;
    for (int i = 0; i < 3; ++i) {
      Timer timer;
      auto result = db->ExecuteSql(sql);
      if (!result.ok()) return result.status();
      double s = timer.ElapsedSeconds();
      if (s < best) best = s;
    }
    return best;
  };

  // cr_seq: full scan time per row.
  SIEVE_ASSIGN_OR_RETURN(
      double scan_s,
      run(StrFormat("SELECT * FROM %s USE INDEX () WHERE v >= 0", kTable)));
  params.cr_seq = scan_s / kRows;

  // cr_random: index-driven fetch of ~20% of rows.
  SIEVE_ASSIGN_OR_RETURN(
      double index_s,
      run(StrFormat("SELECT * FROM %s FORCE INDEX (owner) WHERE owner < 100",
                    kTable)));
  double fetched = kRows * 0.2;
  params.cr_random = index_s / fetched;
  if (params.cr_random < params.cr_seq) params.cr_random = params.cr_seq * 2;

  // ce: scan with a 32-arm policy-shaped disjunction that never matches;
  // every arm is checked for every row.
  {
    std::vector<std::string> arms;
    for (int i = 0; i < 32; ++i) {
      arms.push_back(StrFormat("(owner = %d AND v < 0)", 1000 + i));
    }
    SIEVE_ASSIGN_OR_RETURN(
        double dnf_s, run(StrFormat("SELECT * FROM %s USE INDEX () WHERE %s",
                                    kTable, Join(arms, " OR ").c_str())));
    double extra = dnf_s - scan_s;
    if (extra < 0) extra = dnf_s * 0.5;
    params.ce = extra / (static_cast<double>(kRows) * 32.0);
  }

  // udf_invocation: scan calling a no-op UDF per row.
  {
    if (!db->udfs().Contains("sieve_calibration_noop")) {
      SIEVE_RETURN_IF_ERROR(db->udfs().Register(
          "sieve_calibration_noop",
          [](const std::vector<Value>&, UdfContext&) -> Result<Value> {
            return Value::Bool(true);
          }));
    }
    SIEVE_ASSIGN_OR_RETURN(
        double udf_s,
        run(StrFormat(
            "SELECT * FROM %s USE INDEX () WHERE sieve_calibration_noop() = "
            "true AND v < 0",
            kTable)));
    double extra = udf_s - scan_s;
    if (extra < 0) extra = udf_s * 0.5;
    params.udf_invocation = extra / kRows;
  }
  params.udf_per_policy = params.ce;

  return params;
}

}  // namespace sieve
