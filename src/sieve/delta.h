#ifndef SIEVE_SIEVE_DELTA_H_
#define SIEVE_SIEVE_DELTA_H_

#include "engine/database.h"
#include "sieve/guard_store.h"

namespace sieve {

/// Name of the Δ operator UDF as referenced in rewritten SQL:
///   ... AND delta(<guard_id>) = true
inline constexpr char kDeltaUdfName[] = "delta";

/// Registers the Δ operator (Section 5.2) as a UDF on `db`. For each tuple
/// the UDF:
///   1. retrieves the guard's policy partition P_Gi from `guards`,
///   2. filters it down to the policies whose oc_owner matches the tuple's
///      owner attribute (the context filter — query metadata was already
///      applied when the guarded expression was generated),
///   3. evaluates the surviving policies' object conditions and returns true
///      iff one allows the tuple.
/// Both the UDF invocation and the per-policy checks are counted in
/// ExecStats, which is what the inline-vs-Δ calibration (Figure 3) measures.
///
/// Threading: the registered UDF is evaluated concurrently by parallel scan
/// partitions and interior-operator workers. It is race-free because the
/// guard's policy partition is bound against the tuple schema exactly once
/// (GuardStore::DeltaPartition::bind_once) and treated as immutable
/// afterwards, and each worker counts into its own ExecStats.
Status RegisterDeltaUdf(Database* db, GuardStore* guards);

}  // namespace sieve

#endif  // SIEVE_SIEVE_DELTA_H_
